// Quickstart: plan a conference-call paging strategy with the public API.
//
// Scenario: a location area with 12 cells, a conference call between three
// devices with different location profiles, and a delay budget of 3 paging
// rounds. We plan with the paper's Fig. 1 algorithm, inspect the strategy,
// and compare against the GSM-style blanket page.
//
//   ./examples/quickstart [--cells N] [--rounds D] [--seed S]
#include <cstdio>
#include <iostream>

#include "core/adaptive.h"
#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace confcall;

  const support::Cli cli(argc, argv);
  const auto cells = static_cast<std::size_t>(cli.get_int("cells", 12));
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  for (const auto& flag : cli.unused()) {
    std::cerr << "unknown flag --" << flag << "\n";
    return 1;
  }

  // Three devices with different location knowledge: one usually at a home
  // cell, one skewed (Zipf), one we know little about (uniform).
  prob::Rng rng(seed);
  const core::Instance instance = core::Instance::from_rows({
      prob::peaked_vector(cells, 0.7, rng),
      prob::zipf_vector(cells, 1.2, rng),
      prob::uniform_vector(cells),
  });

  std::cout << "Conference call: m=3 devices, c=" << cells
            << " cells, delay budget d=" << rounds << " rounds\n\n";

  // Plan with the paper's e/(e-1)-approximation (Fig. 1).
  const core::PlanResult plan = core::plan_greedy(instance, rounds);
  std::cout << "planned strategy : " << plan.strategy.to_string() << "\n";
  std::cout << "group sizes      :";
  for (const std::size_t s : plan.group_sizes) std::cout << ' ' << s;
  std::cout << "\n";

  const double blanket = static_cast<double>(cells);
  std::printf("expected paging  : %.3f cells (blanket pages %.0f)\n",
              plan.expected_paging, blanket);
  std::printf("expected rounds  : %.3f of %zu allowed\n",
              core::expected_rounds(instance, plan.strategy), rounds);
  std::printf("lower bound      : %.3f (no strategy can do better)\n",
              core::lower_bound_conference(instance, rounds));

  // Cross-check the analytic expectation by simulating the strategy.
  prob::Rng sim_rng(seed + 1);
  const auto estimate =
      core::monte_carlo_paging(instance, plan.strategy, 20000, sim_rng);
  std::printf("simulated paging : %.3f +/- %.3f (20000 trials)\n",
              estimate.mean, 2 * estimate.std_error);

  // The Section 5 adaptive variant can only help.
  prob::Rng adaptive_rng(seed + 2);
  const auto adaptive =
      core::adaptive_expected_paging(instance, rounds, 20000, adaptive_rng);
  std::printf("adaptive variant : %.3f +/- %.3f\n", adaptive.mean,
              2 * adaptive.std_error);

  std::printf("\nsavings vs blanket: %.1f%%\n",
              100.0 * (blanket - plan.expected_paging) / blanket);
  return 0;
}
