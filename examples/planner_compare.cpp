// Side-by-side planner comparison on the named simulation scenarios'
// location areas, via the polymorphic Planner interface.
//
//   ./examples/planner_compare [--cells N] [--devices M] [--rounds D]
//                              [--csv] [--seed S]
//
// With --csv the table is emitted as CSV (for plotting) instead of text.
#include <iostream>

#include "core/planner.h"
#include "prob/distribution.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace confcall;

  const support::Cli cli(argc, argv);
  const auto cells = static_cast<std::size_t>(cli.get_int("cells", 16));
  const auto devices = static_cast<std::size_t>(cli.get_int("devices", 3));
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));
  const bool csv = cli.get_bool("csv", false);
  for (const auto& flag : cli.unused()) {
    std::cerr << "unknown flag --" << flag << "\n";
    return 1;
  }

  prob::Rng rng(seed);
  std::vector<prob::ProbabilityVector> rows;
  for (std::size_t i = 0; i < devices; ++i) {
    rows.push_back(prob::zipf_vector(cells, 1.1, rng));
  }
  const core::Instance instance = core::Instance::from_rows(rows);

  const core::BlanketPlanner blanket;
  const core::GreedyPlanner greedy;
  const core::BandwidthLimitedPlanner half_cap(cells / 2);
  const core::BandwidthLimitedPlanner quarter_cap(std::max<std::size_t>(
      1, cells / 4));
  const core::ExactPlanner exact;  // exponential; fine at these sizes
  const core::Planner* planners[] = {&blanket, &greedy, &half_cap,
                                     &quarter_cap, &exact};

  const auto comparisons =
      core::compare_planners(instance, rounds, planners);

  support::TextTable table(
      {"planner", "expected paging", "expected rounds", "group sizes"});
  table.set_align(0, support::Align::kLeft);
  table.set_align(3, support::Align::kLeft);
  for (const auto& row : comparisons) {
    std::string sizes;
    for (const auto& group : row.strategy.groups()) {
      if (!sizes.empty()) sizes += '+';
      sizes += std::to_string(group.size());
    }
    table.add_row({row.name, support::TextTable::fmt(row.expected_paging, 3),
                   support::TextTable::fmt(row.expected_rounds, 3), sizes});
  }

  if (!csv) {
    std::cout << "Planner comparison: m=" << devices << ", c=" << cells
              << ", d=" << rounds << " (Zipf profiles)\n\n";
  }
  std::cout << (csv ? table.to_csv() : table.to_string());
  if (!csv) {
    std::cout << "\nSkipped planners were infeasible for this shape "
                 "(e.g. cap too tight for d).\n";
  }
  return 0;
}
