// NP-hardness, demonstrated by computation (Section 3 of the paper).
//
// Builds the Lemma 3.2 transformation from a Quasipartition1 instance to a
// Conference Call instance with m = 2 devices and d = 2 rounds, solves the
// latter exactly in rational arithmetic, and shows the equivalence: the
// optimal expected paging equals the closed-form bound iff the partition
// exists — and the optimal first-round cell set IS the partition.
//
//   ./examples/hardness_demo [--cells C] [--max-size K] [--seed S]
#include <iostream>
#include <numeric>

#include "core/exact.h"
#include "reduction/partition.h"
#include "reduction/reduce.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace confcall;

  const support::Cli cli(argc, argv);
  const auto cells = static_cast<std::size_t>(cli.get_int("cells", 9));
  const auto max_size = cli.get_int("max-size", 15);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  for (const auto& flag : cli.unused()) {
    std::cerr << "unknown flag --" << flag << "\n";
    return 1;
  }
  if (cells % 3 != 0 || cells < 3 || cells > 15) {
    std::cerr << "--cells must be a multiple of 3 in [3, 15]\n";
    return 1;
  }

  const auto show = [&](const std::vector<std::int64_t>& sizes) {
    std::cout << "sizes:";
    for (const auto s : sizes) std::cout << ' ' << s;
    const auto total = std::accumulate(sizes.begin(), sizes.end(),
                                       std::int64_t{0});
    std::cout << "  (sum " << total << ", need " << 2 * sizes.size() / 3
              << " of them summing to " << total << "/2)\n";

    const auto witness = reduction::solve_quasipartition1(sizes);
    std::cout << "quasipartition exists: " << (witness ? "YES" : "no")
              << "\n";

    const auto reduction =
        reduction::reduce_quasipartition1_to_conference_call(sizes);
    std::cout << "closed-form optimum if solvable: "
              << reduction.quasipartition_optimum.to_string() << " = "
              << reduction.quasipartition_optimum.to_double() << "\n";

    const auto optimum = core::solve_exact_d2_exact(reduction.instance);
    std::cout << "exact Conference Call optimum:   "
              << optimum.expected_paging.to_string() << " = "
              << optimum.expected_paging.to_double() << "\n";

    const bool attains =
        optimum.expected_paging == reduction.quasipartition_optimum;
    std::cout << "optimum attains the bound: " << (attains ? "YES" : "no")
              << (attains == witness.has_value()
                      ? "  (matches the decision problem)"
                      : "  (MISMATCH - bug!)")
              << "\n";
    if (attains) {
      std::cout << "optimal first-round cells (= partition witness):";
      std::int64_t sum = 0;
      for (const auto cell : optimum.first_round) {
        std::cout << ' ' << cell;
        sum += sizes[cell];
      }
      std::cout << "  -> sizes sum " << sum << "\n";
    }
    std::cout << "\n";
  };

  std::cout << "== A solvable instance (planted partition) ==\n";
  show(reduction::make_quasipartition1_yes_instance(cells, max_size, seed));

  std::cout << "== An unsolvable instance (one dominating size) ==\n";
  std::vector<std::int64_t> no_instance(cells, 1);
  no_instance[0] = 3 * static_cast<std::int64_t>(cells);  // > half the total
  if ((no_instance[0] + static_cast<std::int64_t>(cells) - 1) % 2 != 0) {
    no_instance[1] = 2;  // keep the total even so parity is not the reason
  }
  show(no_instance);

  std::cout << "Because the optimal two-round strategy decides "
               "Quasipartition1 (NP-complete),\nno polynomial algorithm can "
               "find it unless P = NP (paper, Lemma 3.2).\n";
  return 0;
}
