// The delay/paging tradeoff (the paper's Section 1.2 framing): sweep the
// delay budget d from 1 (blanket, maximal paging) to c (sequential,
// minimal paging) for several location-profile families and report the
// expected paging of the Fig. 1 strategy.
//
// Includes the paper's Section 1.1 example: uniform single device, d = 2
// gives exactly 3c/4 — a c/4 saving over the GSM MAP / IS-41 blanket.
//
//   ./examples/delay_tradeoff [--cells N] [--devices M] [--seed S]
#include <iostream>
#include <vector>

#include "core/evaluator.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace confcall;

  const support::Cli cli(argc, argv);
  const auto cells = static_cast<std::size_t>(cli.get_int("cells", 32));
  const auto devices = static_cast<std::size_t>(cli.get_int("devices", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  for (const auto& flag : cli.unused()) {
    std::cerr << "unknown flag --" << flag << "\n";
    return 1;
  }

  // The Section 1.1 example first.
  const core::Instance single_uniform = core::Instance::uniform(1, cells);
  const double two_round =
      core::plan_greedy(single_uniform, 2).expected_paging;
  std::cout << "Section 1.1 example (m=1, uniform, c=" << cells << "):\n"
            << "  d=1 blanket pages " << cells << " cells;"
            << " d=2 optimal pages " << two_round << " = 3c/4\n\n";

  const auto make_rows = [&](const char* family,
                             std::uint64_t s) -> std::vector<prob::ProbabilityVector> {
    prob::Rng rng(s);
    std::vector<prob::ProbabilityVector> rows;
    for (std::size_t i = 0; i < devices; ++i) {
      if (std::string(family) == "uniform") {
        rows.push_back(prob::uniform_vector(cells));
      } else if (std::string(family) == "zipf") {
        rows.push_back(prob::zipf_vector(cells, 1.2, rng));
      } else if (std::string(family) == "geometric") {
        rows.push_back(prob::geometric_vector(cells, 0.8, rng));
      } else {
        rows.push_back(prob::peaked_vector(cells, 0.6, rng));
      }
    }
    return rows;
  };

  std::cout << "Expected paging of the Fig. 1 strategy, m=" << devices
            << ", c=" << cells << " (lower is better):\n\n";
  support::TextTable table(
      {"d", "uniform", "zipf(1.2)", "geometric(0.8)", "peaked(0.6)"});
  std::vector<std::size_t> delays;
  for (std::size_t d = 1; d <= cells; d *= 2) delays.push_back(d);
  if (delays.back() != cells) delays.push_back(cells);

  std::vector<core::Instance> instances;
  for (const char* family : {"uniform", "zipf", "geometric", "peaked"}) {
    instances.push_back(core::Instance::from_rows(make_rows(family, seed)));
  }
  for (const std::size_t d : delays) {
    std::vector<std::string> row = {support::TextTable::fmt(d)};
    for (const auto& instance : instances) {
      row.push_back(support::TextTable::fmt(
          core::plan_greedy(instance, d).expected_paging, 2));
    }
    table.add_row(std::move(row));
  }
  std::cout << table;
  std::cout << "\nReading: d=1 is the blanket (pages all " << cells
            << " cells); skewed profiles gain the most from extra delay.\n";
  return 0;
}
