// The Section 5 search variants: Yellow Pages (find any one device) and
// Signature (find k of m — "k managers must sign a document").
//
// Scenario: m managers roam a location area; the system needs signatures
// from k of them within d paging rounds. We sweep k from 1 (yellow pages)
// to m (conference call) and compare cell-ordering scores.
//
//   ./examples/signature_search [--cells N] [--managers M] [--rounds D]
//                               [--seed S]
#include <iostream>

#include "core/evaluator.h"
#include "core/greedy.h"
#include "core/signature.h"
#include "prob/distribution.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace confcall;

  const support::Cli cli(argc, argv);
  const auto cells = static_cast<std::size_t>(cli.get_int("cells", 24));
  const auto managers = static_cast<std::size_t>(cli.get_int("managers", 5));
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
  for (const auto& flag : cli.unused()) {
    std::cerr << "unknown flag --" << flag << "\n";
    return 1;
  }

  // Each manager has a home-office profile (mass at one cell, rest spread).
  prob::Rng rng(seed);
  std::vector<prob::ProbabilityVector> rows;
  for (std::size_t i = 0; i < managers; ++i) {
    rows.push_back(prob::peaked_vector(cells, 0.5 + 0.08 * (i % 4), rng));
  }
  const core::Instance instance = core::Instance::from_rows(rows);

  std::cout << "Signature search: m=" << managers << " managers, c=" << cells
            << " cells, d=" << rounds << " rounds\n\n";

  support::TextTable table({"k (signatures needed)", "top-k score",
                            "sum score", "max score", "blanket"});
  for (std::size_t k = 1; k <= managers; ++k) {
    const double topk =
        core::plan_signature(instance, rounds, k, core::CellScore::kTopK)
            .expected_paging;
    const double sum =
        core::plan_signature(instance, rounds, k, core::CellScore::kSumProb)
            .expected_paging;
    const double max =
        core::plan_signature(instance, rounds, k, core::CellScore::kMaxProb)
            .expected_paging;
    table.add_row({
        support::TextTable::fmt(k),
        support::TextTable::fmt(topk, 2),
        support::TextTable::fmt(sum, 2),
        support::TextTable::fmt(max, 2),
        support::TextTable::fmt(static_cast<double>(cells), 0),
    });
  }
  std::cout << table;

  const double yellow =
      core::plan_yellow_pages(instance, rounds).expected_paging;
  const double conference = core::plan_greedy(instance, rounds).expected_paging;
  std::cout << "\nyellow pages (k=1, max score): " << yellow
            << "\nconference call (k=m)        : " << conference
            << "\n\nReading: finding one signer is far cheaper than "
               "finding all; the top-k score\ninterpolates between the "
               "max score (k=1) and the paper's sum score (k=m).\n";
  return 0;
}
