// Driving the LocationService facade directly — the integration surface a
// wireless-core application would use (the simulator is itself a client
// of this API).
//
// A small operator story: devices attach, roam and report; the network
// sets up conference calls through service.locate(); we print the ledger
// and show how the delay budget changes the bill.
//
//   ./examples/location_service [--steps N] [--rounds D] [--seed S]
#include <cstdio>
#include <iostream>

#include "cellular/service.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace confcall;
  using namespace confcall::cellular;

  const support::Cli cli(argc, argv);
  const auto steps = static_cast<std::size_t>(cli.get_int("steps", 500));
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));
  for (const auto& flag : cli.unused()) {
    std::cerr << "unknown flag --" << flag << "\n";
    return 1;
  }

  const GridTopology grid(8, 8, /*toroidal=*/true);
  const LocationAreas areas = LocationAreas::tiles(grid, 4, 4);
  const MarkovMobility mobility(grid, 0.55);
  prob::Rng rng(seed);

  // Eight devices attach at random cells.
  std::vector<CellId> cells(8);
  for (auto& cell : cells) {
    cell = static_cast<CellId>(rng.next_below(grid.num_cells()));
  }

  LocationService::Config config;
  config.max_paging_rounds = rounds;
  config.profile_kind = ProfileKind::kLastSeen;
  LocationService service(grid, areas, mobility, config, cells);

  std::cout << "LocationService on an 8x8 torus, four 16-cell areas, 8 "
               "devices, d=" << rounds << "\n\n";

  std::size_t reports = 0;
  std::size_t pages = 0;
  std::size_t calls = 0;
  std::size_t fallback = 0;
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t u = 0; u < cells.size(); ++u) {
      cells[u] = mobility.step(cells[u], rng);
      if (service.observe_move(static_cast<UserId>(u), cells[u])) {
        ++reports;
      }
    }
    service.tick();
    if (t % 5 == 4) {  // a three-way conference every five steps
      const UserId participants[] = {
          static_cast<UserId>(rng.next_below(8)),
          static_cast<UserId>((rng.next_below(7) + 1 +
                               rng.next_below(8)) % 8),
          static_cast<UserId>(rng.next_below(8))};
      // Dedup quickly: skip degenerate draws.
      if (participants[0] == participants[1] ||
          participants[1] == participants[2] ||
          participants[0] == participants[2]) {
        continue;
      }
      const CellId truth[] = {cells[participants[0]],
                              cells[participants[1]],
                              cells[participants[2]]};
      const auto outcome = service.locate(participants, truth, rng);
      pages += outcome.cells_paged;
      fallback += outcome.fallback_pages;
      ++calls;
    }
  }

  support::TextTable ledger({"metric", "value"});
  ledger.set_align(0, support::Align::kLeft);
  ledger.add_row({"steps", support::TextTable::fmt(steps)});
  ledger.add_row({"conference calls", support::TextTable::fmt(calls)});
  ledger.add_row({"uplink reports", support::TextTable::fmt(reports)});
  ledger.add_row({"cells paged", support::TextTable::fmt(pages)});
  ledger.add_row({"recovery pages", support::TextTable::fmt(fallback)});
  ledger.add_row(
      {"pages per call",
       support::TextTable::fmt(
           calls > 0 ? static_cast<double>(pages) / calls : 0.0, 2)});
  std::cout << ledger;

  // Peek at what the service believes about device 0 right now.
  const std::size_t area = service.database().reported_area(0);
  const auto profile = service.profile_for(0, area);
  std::cout << "\nservice's current profile for device 0 over its reported "
               "area (" << profile.size() << " cells):\n ";
  for (const double p : profile) std::printf(" %.3f", p);
  std::cout << "\n\nEach 16-cell area blanket would pay 16 pages per "
               "callee; the d-round planner\npays the 'pages per call' "
               "ledger line for all three callees together.\n";
  return 0;
}
