// A campus-scale end-to-end scenario (the workload the paper's intro
// motivates): devices roam a gridded campus partitioned into GSM-style
// location areas, conference calls arrive, and the operator chooses a
// paging policy under a delay constraint.
//
// Compares the GSM MAP / IS-41 blanket against the paper's Fig. 1 planner
// and the Section 5 adaptive variant, for the same mobility, reporting and
// call workload.
//
//   ./examples/conference_campus [--steps N] [--users N] [--rounds D]
//                                [--rate R] [--seed S]
#include <iostream>

#include "cellular/simulator.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace confcall;
  using cellular::PagingPolicy;

  const support::Cli cli(argc, argv);
  cellular::SimConfig base;
  base.grid_rows = 12;
  base.grid_cols = 12;
  base.la_tile_rows = 6;
  base.la_tile_cols = 6;  // four 36-cell location areas
  base.num_users = 48;
  base.stay_probability = 0.55;
  base.call_rate = cli.get_double("rate", 0.3);
  base.group_min = 2;
  base.group_max = 4;
  base.max_paging_rounds =
      static_cast<std::size_t>(cli.get_int("rounds", 3));
  base.steps = static_cast<std::size_t>(cli.get_int("steps", 1500));
  base.warmup_steps = 200;
  base.num_users = static_cast<std::size_t>(cli.get_int("users", 48));
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));
  for (const auto& flag : cli.unused()) {
    std::cerr << "unknown flag --" << flag << "\n";
    return 1;
  }

  std::cout << "Campus: 12x12 cells, 4 location areas, " << base.num_users
            << " users, conference size 2-4, d=" << base.max_paging_rounds
            << "\n\n";

  support::TextTable table({"paging policy", "calls", "pages/call",
                            "rounds/call", "reports", "total pages",
                            "wireless cost"});
  table.set_align(0, support::Align::kLeft);

  const struct {
    const char* name;
    PagingPolicy policy;
  } policies[] = {
      {"LA blanket (GSM/IS-41)", PagingPolicy::kBlanketArea},
      {"greedy d-round (Fig. 1)", PagingPolicy::kGreedy},
      {"adaptive (Sec. 5)", PagingPolicy::kAdaptive},
  };
  for (const auto& [name, policy] : policies) {
    cellular::SimConfig config = base;
    config.paging_policy = policy;
    const cellular::SimReport report = cellular::run_simulation(config);
    table.add_row({
        name,
        support::TextTable::fmt(report.calls_served),
        support::TextTable::fmt(report.pages_per_call.mean(), 2),
        support::TextTable::fmt(report.rounds_per_call.mean(), 2),
        support::TextTable::fmt(report.reports_sent),
        support::TextTable::fmt(report.cells_paged_total),
        support::TextTable::fmt(report.wireless_cost(1.0, 1.0), 0),
    });
  }
  std::cout << table;

  std::cout << "\nSame workload, varying the delay constraint d "
               "(greedy policy):\n\n";
  support::TextTable sweep({"d", "pages/call", "rounds/call"});
  for (const std::size_t d : {1u, 2u, 3u, 4u, 6u}) {
    cellular::SimConfig config = base;
    config.paging_policy = PagingPolicy::kGreedy;
    config.max_paging_rounds = d;
    const cellular::SimReport report = cellular::run_simulation(config);
    sweep.add_row({
        support::TextTable::fmt(d),
        support::TextTable::fmt(report.pages_per_call.mean(), 2),
        support::TextTable::fmt(report.rounds_per_call.mean(), 2),
    });
  }
  std::cout << sweep;
  return 0;
}
