// Experiment E19 — crash-safe serving: durable checkpoints and warm
// restart.
//
// PR8 added the versioned, checksummed state_io checkpoint format and
// threaded save_state / restore_state through LocationService, the
// SloController and confcall_serve. This harness gates the four claims
// that make the crash-safety story real, and emits BENCH_E19.json:
//
//   * Warm restart recovers the SLO faster than a cold start. A plant
//     model on a ManualClock closes the loop around a REAL
//     SloController + AdmissionController: the plant's p99 is 8 ms
//     while the admission token rate is above its capacity knee and
//     2 ms once the rate has been cut below it (target 4 ms). A cold
//     start at the deployment default rate needs several AIMD halvings
//     to reach the knee; a warm start restores the converged actuators
//     from a checkpoint and must re-attain the SLO within <= 2 control
//     periods (the ISSUE gate), strictly faster than cold.
//   * Checkpointing is cheap: the E18 batched locate loop with a
//     checkpoint written on a 100 ms wall-clock grid (the daemon's
//     --checkpoint-every-ms model) must keep >= 95% of the
//     checkpoint-free throughput (checkpoint_throughput_ratio).
//   * Checkpoints are a pure function of state: after an identical
//     deterministic drive, serializing from ThreadPool sizes 1/2/8
//     (every task under the same mutex the daemon uses) must produce
//     byte-identical files across tasks AND across pool sizes.
//   * The loader rejects damage: a truncation + bit-flip + magic +
//     version sweep over a real checkpoint file must come back 100%
//     rejected as typed cold starts — never a crash, never a silent
//     acceptance.
//
// Flags (shared bench set): --smoke, --threads N (unused, accepted for
// uniformity), --out FILE (default BENCH_E19.json).
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "cellular/service.h"
#include "cellular/topology.h"
#include "prob/rng.h"
#include "support/cli.h"
#include "support/metrics.h"
#include "support/overload.h"
#include "support/slo_controller.h"
#include "support/state_io.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace {

using namespace confcall;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---- 1. Warm vs cold SLO recovery (plant model, ManualClock). ---------

constexpr std::uint64_t kRoundNs = 1'000'000;          // 1 ms per round
constexpr std::uint64_t kTargetP99Ns = 4'000'000;      // 4 ms SLO
constexpr std::uint64_t kControlPeriodNs = 100'000'000;  // 100 ms
/// The plant's capacity knee: token rates above this overload it.
constexpr double kKneeRefillPerSec = 17.0;
/// The deployment-default token rate a cold start boots with.
constexpr double kColdRefillPerSec = 256.0;

/// One control stand: a real controller + admission pair around a
/// synthetic plant whose p99 is a function of the token-rate actuator.
struct Stand {
  explicit Stand(double initial_refill)
      : rounds(registry.histogram("confcall_locate_rounds",
                                  support::HistogramSpec::integers(16),
                                  "rounds")),
        admission(make_admission(initial_refill), clock),
        slo(make_options(), registry, admission, clock, kRoundNs) {}

  static support::AdmissionOptions make_admission(double refill) {
    support::AdmissionOptions options;
    options.refill_per_sec = refill;
    return options;
  }

  static support::SloOptions make_options() {
    support::SloOptions options;
    options.target_p99_ns = kTargetP99Ns;
    options.control_period_ns = kControlPeriodNs;
    options.min_interval_calls = 4;
    return options;
  }

  /// Overloaded above the knee (8 ms p99, breach), healthy below it
  /// (2 ms, within SLO).
  double plant_rounds() const {
    return slo.refill_per_sec() > kKneeRefillPerSec ? 8.0 : 2.0;
  }

  /// Runs control periods until the measured interval p99 is within the
  /// SLO; returns how many periods that took. When `checkpoint_out` is
  /// given, captures the controller state at the START of the recovered
  /// period — the converged operating point a steady-state daemon
  /// checkpoint records.
  std::size_t periods_to_slo(std::size_t max_periods,
                             std::string* checkpoint_out = nullptr) {
    for (std::size_t period = 1; period <= max_periods; ++period) {
      const std::string before = slo.save_state();
      const double rounds_used = plant_rounds();
      for (int call = 0; call < 32; ++call) rounds.observe(rounds_used);
      clock.advance(kControlPeriodNs);
      slo.step();
      if (slo.observed_p99_ns() <= kTargetP99Ns) {
        if (checkpoint_out != nullptr) *checkpoint_out = before;
        return period;
      }
    }
    return max_periods + 1;  // never recovered
  }

  support::MetricRegistry registry;
  support::ManualClock clock;
  support::Histogram rounds;
  support::AdmissionController admission;
  support::SloController slo;
};

// ---- 2/3. Checkpoint overhead + byte-identity on the E18 harness. -----

struct Harness {
  cellular::GridTopology grid{12, 12, true,
                              cellular::Neighborhood::kVonNeumann};
  cellular::LocationAreas areas = cellular::LocationAreas::tiles(grid, 3, 3);
  cellular::MarkovMobility mobility{grid, 0.9};
  prob::Rng rng{1313};
  std::vector<cellular::CellId> cells;
  cellular::LocationService service;

  explicit Harness(support::MetricRegistry& registry)
      : cells(make_cells(rng, grid)),
        service(grid, areas, mobility, make_config(registry), cells) {}

  static std::vector<cellular::CellId> make_cells(
      prob::Rng& rng, const cellular::GridTopology& grid) {
    std::vector<cellular::CellId> cells(96);
    for (auto& cell : cells) {
      cell = static_cast<cellular::CellId>(rng.next_below(grid.num_cells()));
    }
    return cells;
  }

  static cellular::LocationService::Config make_config(
      support::MetricRegistry& registry) {
    cellular::LocationService::Config config;
    config.profile_kind = cellular::ProfileKind::kStationary;
    config.max_paging_rounds = 3;
    config.enable_plan_cache = true;
    config.metrics = cellular::ServiceMetrics::create(registry);
    return config;
  }
};

struct CallFixture {
  std::array<cellular::UserId, 3> users;
  std::array<cellular::CellId, 3> truth;
};

/// Locates/sec through locate_many at batch size 8 (the E18 throughput
/// shape). When `checkpoint_path` is non-empty, a full service
/// checkpoint is written through save_state_file on a `period_ms`
/// wall-clock grid, exactly like the daemon's --checkpoint-every-ms
/// loop; `checkpoints_out` / `bytes_out` report what was written.
double run_locate_loop(std::size_t n_calls, const std::string& checkpoint_path,
                       double period_ms, std::size_t* checkpoints_out,
                       std::size_t* bytes_out) {
  constexpr std::size_t kBatch = 8;
  support::MetricRegistry registry;
  Harness harness(registry);
  std::vector<CallFixture> fixtures(kBatch);
  std::vector<cellular::LocationService::LocateRequest> requests(kBatch);
  for (std::size_t b = 0; b < kBatch; ++b) {
    requests[b] = {fixtures[b].users, fixtures[b].truth, {}};
  }
  std::size_t done = 0;
  std::size_t checkpoints = 0;
  std::size_t bytes = 0;
  const auto start = Clock::now();
  const auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(std::max(period_ms, 1.0)));
  auto next_checkpoint = start + period;  // daemon grid: one period in
  std::size_t batches = 0;
  while (done < n_calls) {
    for (std::size_t b = 0; b < kBatch; ++b) {
      for (std::size_t i = 0; i < 3; ++i) {
        fixtures[b].users[i] = static_cast<cellular::UserId>(
            i * 32 + harness.rng.next_below(32));
        fixtures[b].truth[i] = harness.cells[fixtures[b].users[i]];
      }
    }
    (void)harness.service.locate_many(requests, harness.rng);
    done += kBatch;
    // Poll the grid every 16 batches: a clock read per batch is loop
    // overhead the daemon (which checkpoints per serve step) never pays.
    if (checkpoint_path.empty() || (++batches & 15) != 0) continue;
    if (Clock::now() >= next_checkpoint) {
      while (Clock::now() >= next_checkpoint) next_checkpoint += period;
      support::StateBundle bundle;
      bundle.add(cellular::LocationService::kStateSection,
                 cellular::LocationService::kStateVersion,
                 harness.service.save_state());
      bytes = support::save_state_file(checkpoint_path, bundle);
      ++checkpoints;
    }
  }
  const double elapsed = seconds_since(start);
  if (checkpoints_out != nullptr) *checkpoints_out = checkpoints;
  if (bytes_out != nullptr) *bytes_out = bytes;
  return static_cast<double>(done) / elapsed;
}

/// Drives a fresh harness through a fixed deterministic request stream
/// so its post-drive state is reproducible run over run.
void deterministic_drive(Harness& harness, std::size_t n_calls) {
  constexpr std::size_t kBatch = 8;
  prob::Rng fixture_rng(4242);
  std::vector<CallFixture> fixtures(kBatch);
  std::vector<cellular::LocationService::LocateRequest> requests(kBatch);
  for (std::size_t b = 0; b < kBatch; ++b) {
    requests[b] = {fixtures[b].users, fixtures[b].truth, {}};
  }
  for (std::size_t done = 0; done < n_calls; done += kBatch) {
    for (std::size_t b = 0; b < kBatch; ++b) {
      for (std::size_t i = 0; i < 3; ++i) {
        fixtures[b].users[i] = static_cast<cellular::UserId>(
            i * 32 + fixture_rng.next_below(32));
        fixtures[b].truth[i] = harness.cells[fixtures[b].users[i]];
      }
    }
    (void)harness.service.locate_many(requests, harness.rng);
  }
}

/// After identical drives, checkpoint files produced from ThreadPool
/// sizes 1/2/8 (every serialization under one mutex, the daemon's
/// sim_mutex discipline) must be byte-identical across tasks and across
/// pool sizes.
bool check_thread_byte_identity(std::size_t drive_calls,
                                const std::string& path_prefix,
                                std::string* reference_file_out) {
  std::string reference;
  bool identical = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    support::MetricRegistry registry;
    Harness harness(registry);
    deterministic_drive(harness, drive_calls);
    std::vector<std::string> blobs(threads);
    std::mutex sim_mutex;
    support::ThreadPool pool(threads);
    pool.parallel_for(threads, [&](std::size_t task) {
      std::lock_guard<std::mutex> lock(sim_mutex);
      support::StateBundle bundle;
      bundle.add(cellular::LocationService::kStateSection,
                 cellular::LocationService::kStateVersion,
                 harness.service.save_state());
      const std::string path =
          path_prefix + "." + std::to_string(threads) + "." +
          std::to_string(task) + ".bin";
      (void)support::save_state_file(path, bundle);
      std::ifstream in(path, std::ios::binary);
      blobs[task] = std::string(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
      (void)std::remove(path.c_str());
    });
    for (const std::string& blob : blobs) {
      if (reference.empty()) {
        reference = blob;
        continue;
      }
      identical = identical && blob == reference;
    }
  }
  if (reference_file_out != nullptr) *reference_file_out = reference;
  return identical && !reference.empty();
}

// ---- 4. Corruption sweep over a real checkpoint file. -----------------

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Every damaged variant must load as a typed failure. Returns how many
/// of `total` variants were correctly rejected (pass needs all).
std::size_t corruption_sweep(const std::string& path, const std::string& whole,
                             bool smoke, std::size_t* total_out) {
  std::size_t total = 0;
  std::size_t rejected = 0;
  const auto probe = [&](const std::string& bytes) {
    write_raw(path, bytes);
    ++total;
    if (!support::load_state_file(path).ok()) ++rejected;
  };
  const std::size_t stride = smoke ? 31 : 7;
  for (std::size_t len = 0; len < whole.size(); len += stride) {
    probe(whole.substr(0, len));  // torn write / truncation
  }
  for (std::size_t pos = 0; pos < whole.size(); pos += stride) {
    std::string bent = whole;
    bent[pos] = static_cast<char>(bent[pos] ^ (1 << (pos % 8)));
    probe(bent);  // single-bit flip
  }
  probe(std::string("NOTCONFC") + whole.substr(8));  // foreign magic
  {
    std::string bent = whole;
    bent[8] = static_cast<char>(support::kStateFileVersion + 1);
    probe(bent);  // version skew
  }
  probe(whole + "x");  // trailing garbage
  // And the pristine bytes must still load (counted separately: an
  // over-eager loader that rejects everything would "pass" the sweep).
  write_raw(path, whole);
  const bool pristine_ok = support::load_state_file(path).ok();
  (void)std::remove(path.c_str());
  *total_out = total;
  return pristine_ok ? rejected : 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::BenchFlags flags;
  try {
    flags = support::parse_bench_flags(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "bench_e19_state: " << error.what() << "\n";
    return 2;
  }
  const bool smoke = flags.smoke;
  const std::string out_path =
      flags.out.empty() ? "BENCH_E19.json" : flags.out;
  const std::string scratch =
      "bench_e19_scratch_" + std::to_string(::getpid());
  std::cout << "E19: crash-safe serving — durable checkpoints, warm restart"
            << (smoke ? " (smoke)" : "") << "\n";

  // ---- 1. Warm vs cold recovery (always gated).
  Stand cold(kColdRefillPerSec);
  std::string converged_checkpoint;
  const std::size_t cold_periods =
      cold.periods_to_slo(64, &converged_checkpoint);

  Stand warm(kColdRefillPerSec);
  const bool restored = warm.slo.restore_state(
      converged_checkpoint, support::SloController::kStateVersion);
  const std::size_t warm_periods =
      restored ? warm.periods_to_slo(64) : std::size_t{65};
  const bool recovery_ok =
      restored && warm_periods <= 2 && cold_periods > warm_periods;

  // ---- 2. Checkpoint overhead on the E18 batched locate loop
  // (best-of-3 interleaved passes, same noise defence as E18). The run
  // must span several 100 ms checkpoint windows, or one checkpoint's
  // fixed cost dominates a run shorter than its amortization period.
  const std::size_t n = smoke ? 300000 : 600000;
  double best_plain = 0.0;
  double best_checkpointed = 0.0;
  std::size_t checkpoints_written = 0;
  std::size_t checkpoint_bytes = 0;
  for (int pass = 0; pass < 3; ++pass) {
    best_plain = std::max(best_plain,
                          run_locate_loop(n, "", 0.0, nullptr, nullptr));
    std::size_t written = 0;
    std::size_t bytes = 0;
    best_checkpointed = std::max(
        best_checkpointed,
        run_locate_loop(n, scratch + ".ckpt.bin", 100.0, &written, &bytes));
    checkpoints_written = std::max(checkpoints_written, written);
    if (bytes != 0) checkpoint_bytes = bytes;
  }
  (void)std::remove((scratch + ".ckpt.bin").c_str());
  const double ratio = best_checkpointed / best_plain;
  const bool overhead_ok = ratio >= 0.95 && checkpoints_written >= 1;

  // ---- 3. Byte-identity across ThreadPool sizes 1/2/8.
  std::string reference_file;
  const bool threads_identical = check_thread_byte_identity(
      smoke ? 512 : 4096, scratch, &reference_file);

  // ---- 4. Corruption sweep over the reference checkpoint.
  std::size_t corrupt_total = 0;
  const std::size_t corrupt_rejected = corruption_sweep(
      scratch + ".sweep.bin", reference_file, smoke, &corrupt_total);
  const bool corruption_ok =
      corrupt_total > 0 && corrupt_rejected == corrupt_total;

  // ---- Report.
  support::TextTable table({"metric", "value"});
  table.add_row({"cold-start recovery (control periods)",
                 support::TextTable::fmt(cold_periods)});
  table.add_row({"warm-restart recovery (control periods)",
                 support::TextTable::fmt(warm_periods) + " (need <= 2)"});
  table.add_row(
      {"locates/sec (no checkpoints)", support::TextTable::fmt(best_plain, 0)});
  table.add_row({"locates/sec (100 ms checkpoint grid)",
                 support::TextTable::fmt(best_checkpointed, 0)});
  table.add_row({"checkpoint throughput ratio",
                 support::TextTable::fmt(ratio, 3) + "x (need >= 0.95x)"});
  table.add_row({"checkpoints written / bytes each",
                 support::TextTable::fmt(checkpoints_written) + " / " +
                     support::TextTable::fmt(checkpoint_bytes)});
  table.add_row({"checkpoint bytes identical @1/2/8 threads",
                 threads_identical ? "yes" : "NO"});
  table.add_row({"corrupt variants rejected",
                 support::TextTable::fmt(corrupt_rejected) + " / " +
                     support::TextTable::fmt(corrupt_total)});
  std::cout << "\n" << table;

  const bool ok =
      recovery_ok && overhead_ok && threads_identical && corruption_ok;
  std::cout << "\ninvariants (warm restart <= 2 periods and faster than "
            << "cold, checkpointing keeps >= 95% throughput, checkpoints "
            << "byte-identical across thread counts, all damage rejected): "
            << (ok ? "PASS" : "FAIL (BUG)") << "\n";

  // ---- Machine-readable trajectory record.
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"experiment\": \"E19\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"recovery\": {\n"
       << "    \"cold_recovery_periods\": " << cold_periods << ",\n"
       << "    \"warm_recovery_periods\": " << warm_periods << ",\n"
       << "    \"restore_applied\": " << (restored ? "true" : "false")
       << "\n  },\n"
       << "  \"checkpointing\": {\n"
       << "    \"locates_per_sec_plain\": " << best_plain << ",\n"
       << "    \"locates_per_sec_checkpointed\": " << best_checkpointed
       << ",\n"
       << "    \"checkpoints_written\": " << checkpoints_written << ",\n"
       << "    \"checkpoint_bytes\": " << checkpoint_bytes << "\n  },\n"
       << "  \"checkpoint_throughput_ratio\": " << ratio << ",\n"
       << "  \"warm_recovery_periods\": " << warm_periods << ",\n"
       << "  \"byte_identical_across_threads\": "
       << (threads_identical ? "true" : "false") << ",\n"
       << "  \"corrupt_files_rejected\": " << corrupt_rejected << ",\n"
       << "  \"corrupt_files_total\": " << corrupt_total << ",\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";

  return ok ? 0 : 1;
}
