// Experiment E11 — location-area sizing: the report/page U-curve.
//
// Section 1.1: GSM MAP / IS-41 balance reporting and paging through the
// location-area size, and "the choice of location areas affects the
// reporting traffic [1,5]". This harness sweeps square tilings of a
// toroidal grid for three mobility speeds and prints the analytic
// per-user-step wireless cost — the classic U-curve whose minimum shifts
// toward larger LAs as users move faster. It also shows how the paper's
// multi-round paging (d = 3 vs the d = 1 blanket) shifts the optimum
// toward LARGER areas: cheaper searches make paging-heavy designs viable.
#include <iostream>

#include "cellular/la_design.h"
#include "support/table.h"

int main() {
  using namespace confcall;
  using cellular::GridTopology;
  using cellular::MarkovMobility;
  using cellular::TilingEvaluation;

  const GridTopology grid(16, 16, /*toroidal=*/true);
  constexpr double kCalleeRate = 0.05;  // calls per user-step

  std::cout << "E11: wireless cost per user-step vs LA size (16x16 torus, "
               "cost weights 1:1,\ncallee rate "
            << kCalleeRate << ")\n\n";

  for (const std::size_t d : {1u, 3u}) {
    std::cout << "paging delay budget d = " << d << ":\n\n";
    support::TextTable table({"LA size", "areas", "reports/step",
                              "pages/callee", "cost slow(0.8)",
                              "cost mid(0.5)", "cost fast(0.2)"});
    const MarkovMobility slow(grid, 0.8);
    const MarkovMobility mid(grid, 0.5);
    const MarkovMobility fast(grid, 0.2);
    double best_cost[3] = {1e300, 1e300, 1e300};
    std::size_t best_size[3] = {0, 0, 0};
    for (const std::size_t tile : {1u, 2u, 4u, 8u, 16u}) {
      const TilingEvaluation rows[] = {
          evaluate_tiling(grid, slow, tile, tile, d),
          evaluate_tiling(grid, mid, tile, tile, d),
          evaluate_tiling(grid, fast, tile, tile, d),
      };
      double costs[3];
      for (int k = 0; k < 3; ++k) {
        costs[k] = rows[k].cost_per_user_step(1.0, 1.0, kCalleeRate);
        if (costs[k] < best_cost[k]) {
          best_cost[k] = costs[k];
          best_size[k] = tile * tile;
        }
      }
      table.add_row({
          support::TextTable::fmt(tile * tile),
          support::TextTable::fmt(rows[0].num_areas),
          support::TextTable::fmt(rows[1].report_rate, 4),
          support::TextTable::fmt(rows[1].pages_per_callee, 2),
          support::TextTable::fmt(costs[0], 4),
          support::TextTable::fmt(costs[1], 4),
          support::TextTable::fmt(costs[2], 4),
      });
    }
    std::cout << table;
    std::cout << "\nbest LA size: slow " << best_size[0] << ", mid "
              << best_size[1] << ", fast " << best_size[2] << "\n\n";
  }

  std::cout << "Reading: faster users push the optimum toward larger areas "
               "(reports dominate);\nmulti-round paging (d = 3) makes "
               "large areas cheaper to search, moving every\noptimum "
               "further right than under the d = 1 blanket.\n";
  return 0;
}
