// Experiment E21 — fleet-wide SLO sensing over the label algebra, with
// trace exemplars.
//
// PR10 taught the SLO controller to sense the LABEL-SUMMED rounds
// window (RegistrySnapshot::sum_by — PromQL `sum without (shard)`), so
// one controller closes the loop over a whole ServiceFleet: the
// per-shard confcall_locate_rounds{shard="s"} series fold into one
// fleet-wide interval histogram that is invariant under resharding.
// This harness gates the claims that make that composition sound, and
// emits BENCH_E21.json:
//
//   * Control works fleet-wide: a deterministic quiet/burst cycle is
//     served twice per burst level — static admission thresholds vs the
//     controller — and the controlled admitted p99 must be <= the
//     static baseline's at EVERY level. (The physics is E17's, one
//     level up: the controller pins the token refill under the
//     quiet-hour demand, holding admits in the degraded band where the
//     single-round blanket plan serves them.)
//   * Sensing does not break fleet determinism: the identical
//     controlled drive at shards 1/2/8 must produce bit-identical
//     outcome digests AND identical control trajectories (steps,
//     breaches, final actuator positions) — the label-erased sum the
//     controller reads is the same histogram at any shard count.
//     Recorded as the numeric determinism_identical 1/0.
//   * Sensing is cheap: fleet locate throughput with the controller
//     snapshotting + label-summing every control period must stay
//     within 5% of the same drive without it (aggregation_throughput_
//     ratio >= 0.95, strict-pathed by bench_compare.py).
//   * Exemplars flow end to end: with a SamplingTracer attached, the
//     rounds histogram must carry at least one valid exemplar trace id
//     after the drive, the opt-in exposition must render the
//     OpenMetrics `# {trace_id="..."}` suffix, and the DEFAULT
//     exposition must stay exemplar-free byte for byte (the E16
//     contract). The default scrape size and series cardinality are
//     recorded so growth shows up in review.
//
// Flags (shared bench set): --smoke, --threads N (unused, accepted for
// uniformity), --out FILE (default BENCH_E21.json).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cellular/service.h"
#include "cellular/service_fleet.h"
#include "cellular/topology.h"
#include "prob/rng.h"
#include "support/cli.h"
#include "support/metrics.h"
#include "support/overload.h"
#include "support/slo_controller.h"
#include "support/table.h"
#include "support/trace.h"

namespace {

using namespace confcall;
using WallClock = std::chrono::steady_clock;

constexpr std::size_t kNumAreas = 8;
constexpr std::size_t kNumUsers = 96;
constexpr std::size_t kUsersPerCall = 3;
constexpr std::uint64_t kRoundNs = 1'000'000;       // 1 ms rounds
constexpr std::uint64_t kStepNs = 10'000'000;       // 10 ms steps
constexpr std::uint64_t kControlPeriodNs = 100'000'000;  // 100 ms
constexpr double kSloTargetMs = 2.0;
// One traffic cycle: 70 quiet steps (one call every 10th step, served
// at full quality once the bucket recovers) then 30 burst steps
// (multiplier calls per step, draining the bucket through degraded
// into shedding). Deterministic — no arrival randomness, so the
// admission sequence is a pure function of the control trajectory.
constexpr std::size_t kCycleSteps = 100;
constexpr std::size_t kQuietSteps = 70;
constexpr std::size_t kWarmupSteps = 400;

double wall_seconds_since(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

/// The world every fleet serves (the E20 fixture): one topology, one
/// mobility law, one initial-cell draw, stationary profiles so every
/// area plans the same Fig. 1 strategy.
struct World {
  cellular::GridTopology grid{12, 12, true,
                              cellular::Neighborhood::kVonNeumann};
  cellular::LocationAreas areas = cellular::LocationAreas::tiles(grid, 3, 3);
  cellular::MarkovMobility mobility{grid, 0.9};
  std::vector<cellular::CellId> initial_cells;

  World() {
    prob::Rng rng(1313);
    initial_cells.resize(kNumUsers);
    for (auto& cell : initial_cells) {
      cell = static_cast<cellular::CellId>(rng.next_below(grid.num_cells()));
    }
  }

  static cellular::LocationService::Config service_config() {
    cellular::LocationService::Config config;
    config.profile_kind = cellular::ProfileKind::kStationary;
    config.max_paging_rounds = 3;
    config.enable_plan_cache = true;
    return config;
  }

  [[nodiscard]] cellular::ServiceFleet make_fleet(
      std::size_t num_shards, support::MetricRegistry* registry,
      cellular::LocationService::Config config) const {
    cellular::FleetConfig fleet_config;
    fleet_config.num_shards = num_shards;
    fleet_config.num_areas = kNumAreas;
    fleet_config.seed = 1313;
    fleet_config.registry = registry;
    fleet_config.pin_threads = false;  // shared CI runners
    return cellular::ServiceFleet(grid, areas, mobility, std::move(config),
                                  initial_cells, fleet_config);
  }
};

/// The fixed call stream: `n` three-user calls round-robined over the
/// areas, a pure function of `n` — every arm and every shard count
/// consumes the exact same calls in the exact same order.
std::vector<cellular::ServiceFleet::Request> make_stream(std::size_t n) {
  prob::Rng fixture_rng(4242);
  std::vector<cellular::ServiceFleet::Request> stream(n);
  for (std::size_t i = 0; i < n; ++i) {
    stream[i].area = i % kNumAreas;
    stream[i].users.reserve(kUsersPerCall);
    for (std::size_t k = 0; k < kUsersPerCall; ++k) {
      stream[i].users.push_back(static_cast<cellular::UserId>(
          k * 32 + fixture_rng.next_below(32)));
    }
  }
  return stream;
}

/// Calls offered at virtual step `t` of the quiet/burst cycle.
std::size_t calls_at_step(std::size_t t, std::size_t burst_multiplier) {
  const std::size_t phase = t % kCycleSteps;
  if (phase < kQuietSteps) return phase % 10 == 0 ? 1 : 0;
  return burst_multiplier;
}

std::uint64_t outcome_digest(
    const std::vector<cellular::LocationService::LocateOutcome>& outcomes) {
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ULL;
  };
  for (const auto& outcome : outcomes) {
    mix(outcome.cells_paged);
    mix(outcome.rounds_used);
    mix(outcome.retries);
    mix(outcome.abandoned ? 1 : 0);
    mix(outcome.degraded ? 1 : 0);
    mix(outcome.deadline_limited ? 1 : 0);
  }
  return hash;
}

struct ArmResult {
  bool controller = false;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  double p99_ms = 0.0;       ///< measured-window admitted rounds p99
  std::uint64_t window_calls = 0;
  std::uint64_t slo_steps = 0;
  std::uint64_t slo_breaches = 0;
  double final_refill = 0.0;
  double final_degrade = 0.0;
  std::uint64_t digest = 0;  ///< whole-drive outcome fold
  bool conservation_ok = false;
  bool exemplar_seen = false;
};

/// One arm: the cycle workload against a fresh fleet at `num_shards`,
/// with admission gating every offered call (cost = callees), served
/// on a hand-advanced clock. `controller` attaches the SloController
/// sensing the label-summed rounds family; `tracer_every > 0` attaches
/// a SamplingTracer so the rounds histogram collects exemplars.
ArmResult run_arm(const World& world, std::size_t num_shards,
                  std::size_t burst_multiplier, bool controller,
                  std::size_t measured_steps, std::size_t tracer_every) {
  support::ManualClock clock(1);
  support::MetricRegistry registry;
  std::optional<support::SamplingTracer> tracer;
  if (tracer_every > 0) tracer.emplace(tracer_every, 256, clock);

  support::AdmissionOptions admission_options;
  admission_options.bucket_capacity = 48.0;
  admission_options.refill_per_sec = 80.0;  // 0.8 tokens per 10 ms step
  support::AdmissionController admission(admission_options, clock);
  admission.bind_metrics(registry);

  cellular::LocationService::Config service_cfg = World::service_config();
  service_cfg.tracer = tracer ? &*tracer : nullptr;
  cellular::ServiceFleet fleet =
      world.make_fleet(num_shards, &registry, std::move(service_cfg));

  std::unique_ptr<support::SloController> slo;
  if (controller) {
    support::SloOptions options;
    options.enabled = true;
    options.target_p99_ns =
        static_cast<std::uint64_t>(kSloTargetMs * 1e6);
    options.control_period_ns = kControlPeriodNs;
    // Quiet-phase traffic is ~0.7 calls per period; without this floor
    // the anti-windup hold would blind the controller between bursts.
    options.min_interval_calls = 2;
    // Actuator ceiling below the quiet-hour token demand (~21/s at 3
    // tokens per call) plus slack: AIMD converges to the ceiling while
    // under SLO instead of refilling back into the healthy band.
    options.max_refill_per_sec = 24.0;
    slo = std::make_unique<support::SloController>(
        options, registry, admission, clock, kRoundNs);
    slo->bind_metrics(registry);
  }

  const std::size_t total_steps = kWarmupSteps + measured_steps;
  std::size_t max_calls = 0;
  for (std::size_t t = 0; t < total_steps; ++t) {
    max_calls += calls_at_step(t, burst_multiplier);
  }
  const std::vector<cellular::ServiceFleet::Request> stream =
      make_stream(max_calls);

  ArmResult arm;
  arm.controller = controller;
  std::size_t next_call = 0;
  support::RegistrySnapshot window_start;
  std::vector<cellular::ServiceFleet::Request> batch;
  for (std::size_t t = 0; t < total_steps; ++t) {
    if (t == kWarmupSteps) window_start = registry.snapshot();
    clock.advance(kStepNs);
    fleet.step_all();
    batch.clear();
    const std::size_t offered = calls_at_step(t, burst_multiplier);
    for (std::size_t c = 0; c < offered; ++c) {
      cellular::ServiceFleet::Request request = stream[next_call++];
      ++arm.offered;
      const support::AdmissionController::Decision decision =
          admission.admit(static_cast<double>(request.users.size()));
      if (decision == support::AdmissionController::Decision::kShed) {
        ++arm.shed;
        continue;
      }
      if (decision ==
          support::AdmissionController::Decision::kAdmitDegraded) {
        request.context.plan_cheap = true;
        ++arm.degraded;
      }
      ++arm.admitted;
      batch.push_back(std::move(request));
    }
    if (!batch.empty()) {
      const std::vector<cellular::LocationService::LocateOutcome> outcomes =
          fleet.locate_many(batch);
      arm.digest ^= outcome_digest(outcomes) + t;  // order-sensitive fold
    }
    if (slo) (void)slo->maybe_step();
  }

  // The measured window, sensed exactly the way the controller senses:
  // delta against the window-open snapshot, label-summed over every
  // shard's series.
  const support::RegistrySnapshot window =
      registry.snapshot().delta(window_start);
  const std::optional<support::MetricSnapshot> rounds =
      window.sum_by("confcall_locate_rounds");
  arm.window_calls = rounds ? rounds->histogram.count : 0;
  arm.p99_ms = rounds ? rounds->histogram.quantile(0.99) *
                            (static_cast<double>(kRoundNs) * 1e-6)
                      : 0.0;
  if (slo) {
    arm.slo_steps = slo->control_steps();
    arm.slo_breaches = slo->breaches();
    arm.final_refill = slo->refill_per_sec();
    arm.final_degrade = slo->degrade_threshold();
  }
  arm.conservation_ok = arm.offered == arm.admitted + arm.shed &&
                        admission.shed() == arm.shed;
  const std::optional<support::MetricSnapshot> lifetime_rounds =
      registry.snapshot().sum_by("confcall_locate_rounds");
  if (lifetime_rounds) {
    for (const support::Exemplar& exemplar :
         lifetime_rounds->histogram.exemplars) {
      arm.exemplar_seen = arm.exemplar_seen || exemplar.valid();
    }
  }
  return arm;
}

/// Locates/sec over `stream` through a fresh un-gated fleet; when
/// `sense` is set, a full SloController runs its sensing (snapshot +
/// delta + sum_by) on the daemon's production cadence — the clock
/// advances one 10 ms step per batch against the default 1 s control
/// period, so one sensing pass covers ~100 dispatched batches, exactly
/// the duty cycle `confcall_serve --control-period-ms 1000` runs at.
/// The SLO target sits far above any observable p99 so the actuators
/// never move: both arms serve the identical call sequence.
double run_aggregation_throughput(
    const World& world,
    std::span<const cellular::ServiceFleet::Request> stream, bool sense) {
  constexpr std::size_t kBatch = 64;
  constexpr std::uint64_t kProductionPeriodNs = 1'000'000'000;  // 1 s
  support::ManualClock clock(1);
  support::MetricRegistry registry;
  support::AdmissionOptions admission_options;
  support::AdmissionController admission(admission_options, clock);
  cellular::ServiceFleet fleet =
      world.make_fleet(2, &registry, World::service_config());
  std::unique_ptr<support::SloController> slo;
  if (sense) {
    support::SloOptions options;
    options.enabled = true;
    options.target_p99_ns = 1'000'000'000'000ULL;  // never breached
    options.control_period_ns = kProductionPeriodNs;
    slo = std::make_unique<support::SloController>(
        options, registry, admission, clock, kRoundNs);
  }
  const auto start = WallClock::now();
  std::size_t done = 0;
  while (done < stream.size()) {
    const std::size_t take = std::min(kBatch, stream.size() - done);
    (void)fleet.locate_many(stream.subspan(done, take));
    done += take;
    clock.advance(kStepNs);
    if (slo) (void)slo->maybe_step();
  }
  return static_cast<double>(done) / wall_seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  support::BenchFlags flags;
  try {
    flags = support::parse_bench_flags(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "bench_e21_fleet_slo: " << error.what() << "\n";
    return 2;
  }
  const bool smoke = flags.smoke;
  const std::string out_path =
      flags.out.empty() ? "BENCH_E21.json" : flags.out;
  std::cout << "E21: fleet-wide SLO sensing over the label algebra"
            << (smoke ? " (smoke)" : "") << ", target p99 " << kSloTargetMs
            << " ms\n";

  const World world;
  const std::size_t measured_steps = smoke ? 600 : 2000;

  // ---- 1. Burst sweep at 2 shards: controlled p99 <= static p99 at
  // every level. The tracer rides along on the controlled arm so the
  // exemplar path is exercised under real fleet traffic.
  struct Cell {
    std::size_t burst = 1;
    ArmResult baseline;
    ArmResult controlled;
  };
  const std::vector<std::size_t> burst_multipliers{1, 2, 4, 10};
  std::vector<Cell> cells;
  bool controller_not_worse = true;
  bool conservation_ok = true;
  bool exemplar_captured = false;
  for (const std::size_t burst : burst_multipliers) {
    Cell cell;
    cell.burst = burst;
    cell.baseline = run_arm(world, 2, burst, false, measured_steps, 0);
    cell.controlled = run_arm(world, 2, burst, true, measured_steps, 4);
    controller_not_worse &=
        cell.controlled.p99_ms <= cell.baseline.p99_ms;
    conservation_ok &= cell.baseline.conservation_ok &&
                       cell.controlled.conservation_ok;
    exemplar_captured |= cell.controlled.exemplar_seen;
    cells.push_back(cell);
  }

  // ---- 2. Determinism with the controller in the loop: shards 1/2/8
  // must agree on the outcome digest AND the control trajectory — the
  // label-erased window the controller senses is shard-invariant.
  bool determinism_identical = true;
  {
    const ArmResult reference =
        run_arm(world, 1, 4, true, measured_steps, 0);
    for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
      const ArmResult other =
          run_arm(world, shards, 4, true, measured_steps, 0);
      determinism_identical =
          determinism_identical && other.digest == reference.digest &&
          other.admitted == reference.admitted &&
          other.shed == reference.shed &&
          other.slo_steps == reference.slo_steps &&
          other.slo_breaches == reference.slo_breaches &&
          other.final_refill == reference.final_refill &&
          other.final_degrade == reference.final_degrade &&
          other.window_calls == reference.window_calls &&
          other.p99_ms == reference.p99_ms;
    }
  }

  // ---- 3. Sensing overhead: best-of-5 throughput with and without
  // the controller's per-period snapshot + delta + sum_by.
  const std::vector<cellular::ServiceFleet::Request> throughput_stream =
      make_stream(smoke ? 20000 : 100000);
  double plain_rate = 0.0;
  double sensed_rate = 0.0;
  for (int pass = 0; pass < 5; ++pass) {
    plain_rate = std::max(
        plain_rate, run_aggregation_throughput(world, throughput_stream,
                                               false));
    sensed_rate = std::max(
        sensed_rate, run_aggregation_throughput(world, throughput_stream,
                                                true));
  }
  const double aggregation_ratio =
      plain_rate > 0.0 ? sensed_rate / plain_rate : 0.0;
  const bool aggregation_ok = aggregation_ratio >= 0.95;

  // ---- 4. Exposition: the opt-in render carries the exemplar suffix,
  // the default render must not (the E16 byte-identity contract), and
  // the default scrape size + cardinality are recorded.
  bool exposition_ok = false;
  std::size_t scrape_bytes = 0;
  std::size_t series_count = 0;
  {
    support::ManualClock clock(1);
    support::MetricRegistry registry;
    support::SamplingTracer tracer(1, 64, clock);  // sample every root
    cellular::LocationService::Config cfg = World::service_config();
    cfg.tracer = &tracer;
    cellular::ServiceFleet fleet = world.make_fleet(2, &registry, cfg);
    (void)fleet.locate_many(make_stream(64));
    const support::RegistrySnapshot snapshot = registry.snapshot();
    const std::string plain = support::to_prometheus(snapshot);
    support::PrometheusOptions with_exemplars;
    with_exemplars.exemplars = true;
    const std::string annotated =
        support::to_prometheus(snapshot, with_exemplars);
    exposition_ok =
        plain.find("# {trace_id=") == std::string::npos &&
        annotated.find("# {trace_id=\"") != std::string::npos;
    scrape_bytes = plain.size();
    series_count = snapshot.metrics.size();
  }

  // ---- Report.
  support::TextTable table({"burst", "arm", "offered", "shed", "degr",
                            "p99 ms", "slo steps", "refill/s"});
  for (const Cell& cell : cells) {
    for (const ArmResult* arm : {&cell.baseline, &cell.controlled}) {
      table.add_row({std::to_string(cell.burst) + "x",
                     arm->controller ? "slo" : "static",
                     std::to_string(arm->offered),
                     std::to_string(arm->shed),
                     std::to_string(arm->degraded),
                     support::TextTable::fmt(arm->p99_ms, 1),
                     std::to_string(arm->slo_steps),
                     arm->controller
                         ? support::TextTable::fmt(arm->final_refill, 1)
                         : "-"});
    }
  }
  std::cout << "\n" << table;
  std::cout << "\ncontrolled p99 <= static p99 at every burst level: "
            << (controller_not_worse ? "PASS" : "FAIL") << "\n"
            << "bit-identical digests + control trajectory @1/2/8 shards: "
            << (determinism_identical ? "PASS" : "FAIL (BUG)") << "\n"
            << "label-aggregation throughput ratio "
            << support::TextTable::fmt(aggregation_ratio, 3)
            << " (>= 0.95): " << (aggregation_ok ? "PASS" : "FAIL") << "\n"
            << "exemplar captured + opt-in exposition gated: "
            << (exemplar_captured && exposition_ok ? "PASS" : "FAIL")
            << "\n"
            << "conservation (offered = admitted + shed, every arm): "
            << (conservation_ok ? "PASS" : "FAIL (BUG)") << "\n";

  const bool ok = controller_not_worse && determinism_identical &&
                  aggregation_ok && exemplar_captured && exposition_ok &&
                  conservation_ok;

  // ---- Machine-readable record.
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"experiment\": \"E21\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"slo_target_p99_ms\": " << kSloTargetMs << ",\n"
       << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const auto emit_arm = [&json](const ArmResult& arm,
                                  const char* indent) {
      json << indent << "\"offered\": " << arm.offered << ",\n"
           << indent << "\"admitted\": " << arm.admitted << ",\n"
           << indent << "\"shed\": " << arm.shed << ",\n"
           << indent << "\"degraded\": " << arm.degraded << ",\n"
           << indent << "\"window_calls\": " << arm.window_calls << ",\n"
           << indent << "\"p99_ms\": " << arm.p99_ms << ",\n"
           << indent << "\"slo_control_steps\": " << arm.slo_steps << ",\n"
           << indent << "\"slo_breaches\": " << arm.slo_breaches << "\n";
    };
    json << "    {\n"
         << "      \"burst_multiplier\": " << cell.burst << ",\n"
         << "      \"baseline\": {\n";
    emit_arm(cell.baseline, "        ");
    json << "      },\n"
         << "      \"controlled\": {\n";
    emit_arm(cell.controlled, "        ");
    json << "      }\n"
         << "    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"controller_not_worse\": "
       << (controller_not_worse ? "true" : "false") << ",\n"
       << "  \"determinism_identical\": " << (determinism_identical ? 1 : 0)
       << ",\n"
       << "  \"aggregation_throughput_ratio\": " << aggregation_ratio
       << ",\n"
       << "  \"plain_locates_per_sec\": " << plain_rate << ",\n"
       << "  \"sensed_locates_per_sec\": " << sensed_rate << ",\n"
       << "  \"exemplar_captured\": " << (exemplar_captured ? 1 : 0)
       << ",\n"
       << "  \"exposition_gated\": " << (exposition_ok ? 1 : 0) << ",\n"
       << "  \"scrape_bytes\": " << scrape_bytes << ",\n"
       << "  \"series_count\": " << series_count << ",\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";

  return ok ? 0 : 1;
}
