// Ablation A1 — how much of the Fig. 1 heuristic is the cell ORDER?
//
// The algorithm has two parts: (1) sequence cells by non-increasing
// expected number of sought devices, (2) DP the split into d rounds
// (Lemma 4.7, optimal for ANY fixed order). The approximation guarantee
// is proved about the combination; this ablation runs the SAME DP over
// different orders to isolate the ordering's contribution:
//   * paper order (non-increasing weight),
//   * reversed order (the adversarial worst case of the family),
//   * random orders (mean over 20 shuffles),
//   * single-device-optimal order of the heaviest device only.
// Expectation: the DP alone cannot rescue a bad order — the paper order
// should win across families, with large margins on skewed instances.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "core/evaluator.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "prob/stats.h"
#include "support/table.h"

namespace {

using namespace confcall;

core::Instance make_instance(int family, std::size_t m, std::size_t c,
                             std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<prob::ProbabilityVector> rows;
  for (std::size_t i = 0; i < m; ++i) {
    switch (family) {
      case 0:
        rows.push_back(prob::zipf_vector(c, 1.4, rng));
        break;
      case 1:
        rows.push_back(prob::peaked_vector(c, 0.7, rng));
        break;
      case 2:
        rows.push_back(prob::dirichlet_vector(c, 0.4, rng));
        break;
      default:
        rows.push_back(prob::geometric_vector(c, 0.8, rng));
        break;
    }
  }
  return core::Instance::from_rows(rows);
}

const char* kFamilyNames[] = {"zipf(1.4)", "peaked(0.7)", "dirichlet(0.4)",
                              "geom(0.8)"};

}  // namespace

int main() {
  constexpr std::size_t kCells = 20;
  constexpr std::size_t kDevices = 3;
  constexpr std::size_t kRounds = 4;
  constexpr int kInstances = 20;

  std::cout << "A1: Lemma 4.7 DP over different cell orders (m = "
            << kDevices << ", c = " << kCells << ", d = " << kRounds
            << ", mean over " << kInstances << " instances)\n\n";

  support::TextTable table({"family", "paper order", "reversed", "random",
                            "heaviest-device order", "exact OPT (c=8)"});
  table.set_align(0, support::Align::kLeft);
  bool paper_always_best = true;
  for (int family = 0; family < 4; ++family) {
    prob::RunningStats paper, reversed, random_mean, heaviest;
    for (int k = 0; k < kInstances; ++k) {
      const auto instance =
          make_instance(family, kDevices, kCells, 100 * family + k);
      const auto order = core::greedy_cell_order(instance);
      paper.add(core::plan_dp_over_order(instance, order, kRounds)
                    .expected_paging);

      auto rev = order;
      std::reverse(rev.begin(), rev.end());
      reversed.add(core::plan_dp_over_order(instance, rev, kRounds)
                       .expected_paging);

      prob::Rng rng(7000 + k);
      prob::RunningStats shuffles;
      for (int s = 0; s < 20; ++s) {
        auto shuffled = order;
        rng.shuffle(shuffled);
        shuffles.add(core::plan_dp_over_order(instance, shuffled, kRounds)
                         .expected_paging);
      }
      random_mean.add(shuffles.mean());

      // Order by the single heaviest device's probabilities only (what a
      // system reusing the m = 1 machinery naively would do).
      std::size_t heavy = 0;
      double heavy_mass = -1.0;
      for (std::size_t i = 0; i < kDevices; ++i) {
        double top = 0.0;
        for (std::size_t j = 0; j < kCells; ++j) {
          top = std::max(top, instance.prob(static_cast<core::DeviceId>(i),
                                            static_cast<core::CellId>(j)));
        }
        if (top > heavy_mass) {
          heavy_mass = top;
          heavy = i;
        }
      }
      std::vector<core::CellId> by_device(kCells);
      std::iota(by_device.begin(), by_device.end(), core::CellId{0});
      std::stable_sort(by_device.begin(), by_device.end(),
                       [&](core::CellId a, core::CellId b) {
                         return instance.prob(
                                    static_cast<core::DeviceId>(heavy), a) >
                                instance.prob(
                                    static_cast<core::DeviceId>(heavy), b);
                       });
      heaviest.add(core::plan_dp_over_order(instance, by_device, kRounds)
                       .expected_paging);
    }
    paper_always_best &= paper.mean() <= reversed.mean() + 1e-9 &&
                         paper.mean() <= random_mean.mean() + 1e-9;

    // Exact reference at a solvable size.
    prob::RunningStats opt;
    for (int k = 0; k < 10; ++k) {
      const auto small = make_instance(family, kDevices, 8, 500 + k);
      opt.add(core::solve_branch_and_bound(small, 3).expected_paging /
              core::plan_greedy(small, 3).expected_paging);
    }
    table.add_row({
        kFamilyNames[family],
        support::TextTable::fmt(paper.mean(), 3),
        support::TextTable::fmt(reversed.mean(), 3),
        support::TextTable::fmt(random_mean.mean(), 3),
        support::TextTable::fmt(heaviest.mean(), 3),
        "OPT/greedy=" + support::TextTable::fmt(opt.mean(), 4),
    });
  }
  std::cout << table;
  std::cout << "\npaper order beats reversed and random everywhere: "
            << (paper_always_best ? "YES" : "NO (UNEXPECTED)")
            << "\nReading: the DP is order-optimal but cannot rescue a bad "
               "order; the weight\nordering is what earns Theorem 4.8.\n";
  return paper_always_best ? 0 : 1;
}
