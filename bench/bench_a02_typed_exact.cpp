// Ablation A2 — the Section 5 approximation-scheme idea, operationalized.
//
// Paper (Section 5): "we assume that the set of probabilities ... can be
// covered by a constant number of real intervals of constant length. This
// allows us to search the space of solutions exhaustively in polynomial
// time." With T distinct probability columns the typed solver enumerates
// prod_t C(n_t + d - 1, d - 1) compositions instead of d^c ordered
// partitions. This harness shows:
//   (a) agreement with brute force where both run,
//   (b) node counts: compositions vs d^c as c grows (T fixed),
//   (c) exact optima at sizes brute force cannot touch, and the greedy
//       heuristic's true ratio against them.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/exact.h"
#include "core/scheme.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "support/table.h"

namespace {

using namespace confcall;

/// A T-type instance: cells carry one of T probability levels per device,
/// multiplicities as equal as possible.
core::Instance typed_instance(std::size_t m, std::size_t c, std::size_t T) {
  std::vector<double> level(T);
  double total = 0.0;
  for (std::size_t t = 0; t < T; ++t) {
    level[t] = static_cast<double>(T - t);  // weights T, T-1, ..., 1
  }
  std::vector<double> row(c);
  for (std::size_t j = 0; j < c; ++j) {
    row[j] = level[j % T];
    total += row[j];
  }
  for (double& p : row) p /= total;
  std::vector<prob::ProbabilityVector> rows(m, row);
  return core::Instance::from_rows(rows);
}

}  // namespace

int main() {
  std::cout << "A2: typed exact search vs brute force (m = 2, d = 3, "
               "T = 3 column types)\n\n";

  support::TextTable agree({"c", "d^c leaves", "typed nodes", "typed EP",
                            "brute EP", "agree"});
  bool all_agree = true;
  for (const std::size_t c : {6u, 9u, 12u}) {
    const core::Instance instance = typed_instance(2, c, 3);
    const auto typed = core::solve_exact_typed(instance, 3);
    const auto brute = core::solve_exact(instance, 3);
    const bool same =
        std::abs(typed.expected_paging - brute.expected_paging) < 1e-9;
    all_agree &= same;
    agree.add_row({
        support::TextTable::fmt(c),
        support::TextTable::fmt(
            static_cast<std::size_t>(std::pow(3.0, c))),
        support::TextTable::fmt(typed.nodes_explored),
        support::TextTable::fmt(typed.expected_paging, 6),
        support::TextTable::fmt(brute.expected_paging, 6),
        same ? "yes" : "NO",
    });
  }
  std::cout << agree;

  std::cout << "\nExact optima beyond the brute-force wall (T = 2, d = 3), "
               "and the heuristic's true ratio:\n\n";
  support::TextTable scale({"c", "typed nodes", "time (ms)", "exact OPT",
                            "greedy EP", "greedy/OPT"});
  for (const std::size_t c : {24u, 48u, 96u, 192u}) {
    const core::Instance instance = typed_instance(2, c, 2);
    const auto start = std::chrono::steady_clock::now();
    const auto typed = core::solve_exact_typed(instance, 3,
                                               core::Objective::all_of(),
                                               200'000'000);
    const double ms =
        1000.0 * std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    const double greedy = core::plan_greedy(instance, 3).expected_paging;
    scale.add_row({
        support::TextTable::fmt(c),
        support::TextTable::fmt(typed.nodes_explored),
        support::TextTable::fmt(ms, 1),
        support::TextTable::fmt(typed.expected_paging, 4),
        support::TextTable::fmt(greedy, 4),
        support::TextTable::fmt(greedy / typed.expected_paging, 6),
    });
  }
  std::cout << scale;

  // The full Section 5 scheme on ARBITRARY instances: quantize to L
  // levels, solve the typed instance exactly, pay the plan on the
  // original. Sweep L to show the cost/accuracy dial.
  std::cout << "\nQuantize-then-solve scheme on random instances "
               "(m = 2, c = 10, d = 3, mean of 15):\n\n";
  support::TextTable scheme_table({"levels", "columns after quantize",
                                   "scheme EP", "exact OPT", "greedy EP"});
  for (const std::size_t levels : {1u, 2u, 4u, 16u}) {
    double scheme_total = 0.0;
    double opt_total = 0.0;
    double greedy_total = 0.0;
    double columns_total = 0.0;
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      prob::Rng rng(700 + seed);
      std::vector<prob::ProbabilityVector> rows = {
          prob::dirichlet_vector(10, 0.6, rng),
          prob::dirichlet_vector(10, 0.6, rng)};
      const core::Instance instance = core::Instance::from_rows(rows);
      const auto scheme = core::plan_quantized_exact(instance, 3, levels);
      scheme_total += scheme.expected_paging;
      columns_total += static_cast<double>(scheme.distinct_columns);
      opt_total += core::solve_branch_and_bound(instance, 3).expected_paging;
      greedy_total += core::plan_greedy(instance, 3).expected_paging;
    }
    scheme_table.add_row({
        support::TextTable::fmt(levels),
        support::TextTable::fmt(columns_total / 15.0, 1),
        support::TextTable::fmt(scheme_total / 15.0, 4),
        support::TextTable::fmt(opt_total / 15.0, 4),
        support::TextTable::fmt(greedy_total / 15.0, 4),
    });
  }
  std::cout << scheme_table;

  std::cout << "\ntyped solver agrees with brute force everywhere: "
            << (all_agree ? "YES" : "NO (BUG)")
            << "\nReading: with constantly many probability values the "
               "search space is polynomial\n(paper Section 5); the greedy "
               "heuristic is near-optimal on such instances.\n";
  return all_agree ? 0 : 1;
}
