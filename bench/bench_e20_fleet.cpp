// Experiment E20 — fleet serving: multi-area sharding with core-aware
// placement and cross-shard plan sharing.
//
// PR9 added cellular::ServiceFleet (DESIGN.md §14): N serving areas on
// M per-core shard lanes, a bounded queue per shard with back-stealing
// past a limit, and a process-wide signature -> strategy table so
// identically-distributed areas plan once per process. This harness
// gates the claims that make sharding worth having, and emits
// BENCH_E20.json:
//
//   * Aggregate throughput scales with the shard count. The same fixed
//     request stream is served at shards 1/2/4/8 over a fixed 8-area
//     fleet; the JSON records locates/sec per shard count and the
//     max-over-1 scaling ratio. The >= 1M locates/sec aggregate gate
//     self-arms on hardware with >= 8 cores (hardware_concurrency) —
//     on smaller machines the numbers are recorded, not gated, because
//     lanes beyond the core count only add scheduling overhead.
//   * Per-shard latency is observable: the per-shard
//     confcall_fleet_task_ns{shard} histograms must all have mass after
//     the widest run, and their p99s are recorded per shard.
//   * Results are a pure function of the request stream. An identical
//     deterministic drive (steps interleaved with locate batches) at
//     shards 1/2/8 must produce bit-identical outcome streams AND
//     byte-identical fleet checkpoint files — shards are execution,
//     not state. Recorded as the numeric determinism_identical 1/0 so
//     bench_compare.py can strict-path it.
//   * Cross-shard plan sharing works: with every area identically
//     distributed (kStationary profiles over the same grid), the
//     process-wide signature table must answer at least one area's
//     plan from another area's publish.
//
// Flags (shared bench set): --smoke, --threads N (unused, accepted for
// uniformity), --out FILE (default BENCH_E20.json).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cellular/service.h"
#include "cellular/service_fleet.h"
#include "cellular/topology.h"
#include "prob/rng.h"
#include "support/cli.h"
#include "support/metrics.h"
#include "support/state_io.h"
#include "support/table.h"

namespace {

using namespace confcall;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kNumAreas = 8;  // fixed: only the lane count varies
constexpr std::size_t kNumUsers = 96;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The world every fleet in this bench serves: one topology, one
/// mobility law, one initial-cell draw — so runs differ only in the
/// shard count under test.
struct World {
  cellular::GridTopology grid{12, 12, true,
                              cellular::Neighborhood::kVonNeumann};
  cellular::LocationAreas areas = cellular::LocationAreas::tiles(grid, 3, 3);
  cellular::MarkovMobility mobility{grid, 0.9};
  std::vector<cellular::CellId> initial_cells;

  World() {
    prob::Rng rng(1313);
    initial_cells.resize(kNumUsers);
    for (auto& cell : initial_cells) {
      cell = static_cast<cellular::CellId>(rng.next_below(grid.num_cells()));
    }
  }

  static cellular::LocationService::Config service_config() {
    cellular::LocationService::Config config;
    // Stationary profiles: every area's planning inputs are identical,
    // which is exactly the workload the shared signature table exists
    // for (one Fig. 1 plan per distinct signature per PROCESS).
    config.profile_kind = cellular::ProfileKind::kStationary;
    config.max_paging_rounds = 3;
    config.enable_plan_cache = true;
    return config;
  }

  [[nodiscard]] cellular::ServiceFleet make_fleet(
      std::size_t num_shards, support::MetricRegistry* registry) const {
    cellular::FleetConfig config;
    config.num_shards = num_shards;
    config.num_areas = kNumAreas;
    config.seed = 1313;
    config.registry = registry;
    config.pin_threads = false;  // shared CI runners: placement off
    return cellular::ServiceFleet(grid, areas, mobility, service_config(),
                                  initial_cells, config);
  }
};

/// The fixed request stream: `n` three-user calls round-robined over
/// the areas, participants drawn from a dedicated fixture rng. The
/// stream is a pure function of `n` — every shard count serves the
/// exact same calls in the exact same order.
std::vector<cellular::ServiceFleet::Request> make_stream(std::size_t n) {
  prob::Rng fixture_rng(4242);
  std::vector<cellular::ServiceFleet::Request> stream(n);
  for (std::size_t i = 0; i < n; ++i) {
    stream[i].area = i % kNumAreas;
    stream[i].users.reserve(3);
    for (std::size_t k = 0; k < 3; ++k) {
      stream[i].users.push_back(static_cast<cellular::UserId>(
          k * 32 + fixture_rng.next_below(32)));
    }
  }
  return stream;
}

/// Locates/sec serving `stream` in dispatches of `batch` through a
/// fresh fleet at `num_shards`. `p99_out`, when given, receives each
/// shard's task-latency p99 (ns) from the per-shard histograms, and
/// `hits_out` the shared-table hit count.
double run_throughput(const World& world, std::size_t num_shards,
                      std::span<const cellular::ServiceFleet::Request> stream,
                      std::vector<double>* p99_out, std::uint64_t* hits_out) {
  constexpr std::size_t kBatch = 64;
  support::MetricRegistry registry;
  cellular::ServiceFleet fleet = world.make_fleet(num_shards, &registry);
  const auto start = Clock::now();
  std::size_t done = 0;
  while (done < stream.size()) {
    const std::size_t take = std::min(kBatch, stream.size() - done);
    (void)fleet.locate_many(stream.subspan(done, take));
    done += take;
  }
  const double elapsed = seconds_since(start);
  if (p99_out != nullptr) {
    p99_out->assign(num_shards, 0.0);
    for (const support::MetricSnapshot& metric :
         registry.snapshot().metrics) {
      if (metric.name != "confcall_fleet_task_ns") continue;
      for (const auto& [key, value] : metric.labels) {
        if (key != "shard") continue;
        const std::size_t shard = static_cast<std::size_t>(
            std::stoul(value));
        if (shard < p99_out->size() && metric.histogram.count > 0) {
          (*p99_out)[shard] = metric.histogram.quantile(0.99);
        }
      }
    }
  }
  if (hits_out != nullptr) *hits_out = fleet.shared_table().stats().hits;
  return static_cast<double>(done) / elapsed;
}

/// FNV-1a over every outcome field the endpoint reports: two runs with
/// equal digests served every call identically.
std::uint64_t outcome_digest(
    const std::vector<cellular::LocationService::LocateOutcome>& outcomes) {
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ULL;
  };
  for (const auto& outcome : outcomes) {
    mix(outcome.cells_paged);
    mix(outcome.rounds_used);
    mix(outcome.retries);
    mix(outcome.abandoned ? 1 : 0);
    mix(outcome.degraded ? 1 : 0);
    mix(outcome.deadline_limited ? 1 : 0);
  }
  return hash;
}

/// Drives a fresh fleet through the identical mixed workload (steps
/// interleaved with locate batches) and returns the outcome digest plus
/// the checkpoint file bytes.
void deterministic_drive(const World& world, std::size_t num_shards,
                         std::size_t n_batches, const std::string& path,
                         std::uint64_t* digest_out, std::string* bytes_out) {
  constexpr std::size_t kBatch = 32;
  cellular::ServiceFleet fleet = world.make_fleet(num_shards, nullptr);
  const std::vector<cellular::ServiceFleet::Request> stream =
      make_stream(n_batches * kBatch);
  std::uint64_t digest = 0;
  for (std::size_t b = 0; b < n_batches; ++b) {
    fleet.step_all();
    const std::vector<cellular::LocationService::LocateOutcome> outcomes =
        fleet.locate_many(
            std::span<const cellular::ServiceFleet::Request>(stream).subspan(
                b * kBatch, kBatch));
    digest ^= outcome_digest(outcomes) + b;  // order-sensitive fold
  }
  support::StateBundle bundle;
  fleet.add_state_sections(bundle);
  (void)support::save_state_file(path, bundle);
  std::ifstream in(path, std::ios::binary);
  *bytes_out = std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
  (void)std::remove(path.c_str());
  *digest_out = digest;
}

}  // namespace

int main(int argc, char** argv) {
  support::BenchFlags flags;
  try {
    flags = support::parse_bench_flags(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "bench_e20_fleet: " << error.what() << "\n";
    return 2;
  }
  const bool smoke = flags.smoke;
  const std::string out_path =
      flags.out.empty() ? "BENCH_E20.json" : flags.out;
  const std::string scratch =
      "bench_e20_scratch_" + std::to_string(::getpid()) + ".bin";
  std::cout << "E20: fleet serving — sharded areas, core-aware placement"
            << (smoke ? " (smoke)" : "") << "\n";

  const World world;
  const unsigned cores = std::thread::hardware_concurrency();

  // ---- 1/2. Throughput scaling + per-shard p99 (best-of-3 passes).
  const std::size_t n_calls = smoke ? 20000 : 200000;
  const std::vector<cellular::ServiceFleet::Request> stream =
      make_stream(n_calls);
  const std::vector<std::size_t> shard_counts{1, 2, 4, 8};
  std::vector<double> locates_per_sec(shard_counts.size(), 0.0);
  std::vector<double> widest_p99;
  std::uint64_t shared_hits = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < shard_counts.size(); ++i) {
      const bool widest = i + 1 == shard_counts.size();
      std::vector<double> p99;
      std::uint64_t hits = 0;
      const double rate =
          run_throughput(world, shard_counts[i], stream,
                         widest ? &p99 : nullptr, widest ? &hits : nullptr);
      if (rate > locates_per_sec[i]) {
        locates_per_sec[i] = rate;
        if (widest) {
          widest_p99 = p99;
          shared_hits = hits;
        }
      }
    }
  }
  const double aggregate_best =
      *std::max_element(locates_per_sec.begin(), locates_per_sec.end());
  const double scaling =
      locates_per_sec.back() / std::max(locates_per_sec.front(), 1.0);
  // The 1M/s aggregate gate arms only where the lanes have cores to
  // land on; the scaling ratio itself is recorded, never gated (a
  // 1-core container legitimately shows <= 1x).
  const bool throughput_gated = cores >= 8;
  const bool throughput_ok = !throughput_gated || aggregate_best >= 1.0e6;
  bool p99_ok = widest_p99.size() == shard_counts.back();
  for (const double p99 : widest_p99) p99_ok = p99_ok && p99 > 0.0;

  // ---- 3. Bit-identical outcomes + checkpoints at shards 1/2/8.
  const std::size_t n_batches = smoke ? 24 : 96;
  std::uint64_t reference_digest = 0;
  std::string reference_bytes;
  bool identical = true;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    std::uint64_t digest = 0;
    std::string bytes;
    deterministic_drive(world, shards, n_batches, scratch, &digest, &bytes);
    if (reference_bytes.empty()) {
      reference_digest = digest;
      reference_bytes = bytes;
      continue;
    }
    identical =
        identical && digest == reference_digest && bytes == reference_bytes;
  }
  identical = identical && !reference_bytes.empty();

  // ---- 4. Cross-shard plan sharing.
  const bool sharing_ok = shared_hits >= 1;

  // ---- Report.
  support::TextTable table({"metric", "value"});
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    table.add_row({"locates/sec @" + std::to_string(shard_counts[i]) +
                       " shards",
                   support::TextTable::fmt(locates_per_sec[i], 0)});
  }
  table.add_row({"scaling (8 shards / 1 shard)",
                 support::TextTable::fmt(scaling, 2) + "x"});
  table.add_row({"aggregate gate (>= 1M/s)",
                 throughput_gated
                     ? (throughput_ok ? "armed: PASS" : "armed: FAIL")
                     : "unarmed (" + std::to_string(cores) + " cores)"});
  for (std::size_t s = 0; s < widest_p99.size(); ++s) {
    table.add_row({"task p99 ns, shard " + std::to_string(s),
                   support::TextTable::fmt(widest_p99[s], 0)});
  }
  table.add_row({"outcomes+checkpoints identical @1/2/8 shards",
                 identical ? "yes" : "NO"});
  table.add_row(
      {"shared-plan hits", support::TextTable::fmt(shared_hits)});
  std::cout << "\n" << table;

  const bool ok = throughput_ok && p99_ok && identical && sharing_ok;
  std::cout << "\ninvariants (aggregate throughput gate where armed, "
            << "per-shard p99 observable, bit-identical results and "
            << "checkpoints across shard counts, cross-shard plan "
            << "sharing): " << (ok ? "PASS" : "FAIL (BUG)") << "\n";

  // ---- Machine-readable record.
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"experiment\": \"E20\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_cores\": " << cores << ",\n"
       << "  \"throughput\": {\n";
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    json << "    \"locates_per_sec_shards_" << shard_counts[i]
         << "\": " << locates_per_sec[i]
         << (i + 1 < shard_counts.size() ? ",\n" : "\n");
  }
  json << "  },\n"
       << "  \"aggregate_locates_per_sec\": " << aggregate_best << ",\n"
       << "  \"scaling_8_over_1\": " << scaling << ",\n"
       << "  \"throughput_gate_armed\": "
       << (throughput_gated ? "true" : "false") << ",\n"
       << "  \"per_shard_task_p99_ns\": [";
  for (std::size_t s = 0; s < widest_p99.size(); ++s) {
    json << (s == 0 ? "" : ", ") << widest_p99[s];
  }
  json << "],\n"
       << "  \"determinism_identical\": " << (identical ? 1 : 0) << ",\n"
       << "  \"shared_plan_hits\": " << shared_hits << ",\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";

  return ok ? 0 : 1;
}
