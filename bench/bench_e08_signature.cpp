// Experiment E8 — Yellow Pages and Signature searches (Section 5).
//
// Paper: the Yellow Pages problem (find 1 of m) and the Signature problem
// (find k of m) generalize the Conference Call problem; the conference
// heuristic's ordering is NOT constant-factor for yellow pages. This
// harness (a) sweeps k and compares the three cell-ordering scores,
// (b) verifies the k = m column coincides with the conference planner and
// k = 1 with yellow pages, and (c) compares against the exact optimum on a
// small instance to show the sum-score ordering degrading as k shrinks.
#include <cstdio>
#include <iostream>

#include "core/evaluator.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "core/signature.h"
#include "prob/distribution.h"
#include "prob/stats.h"
#include "support/table.h"

int main() {
  using namespace confcall;

  constexpr std::size_t kCells = 20;
  constexpr std::size_t kDevices = 6;
  constexpr std::size_t kRounds = 3;
  prob::Rng rng(23);
  std::vector<prob::ProbabilityVector> rows;
  for (std::size_t i = 0; i < kDevices; ++i) {
    rows.push_back(prob::peaked_vector(kCells, 0.55, rng));
  }
  const core::Instance instance = core::Instance::from_rows(rows);

  std::cout << "E8: signature search, m = " << kDevices << ", c = " << kCells
            << ", d = " << kRounds << "\n\n";
  support::TextTable table(
      {"k", "top-k score EP", "sum score EP", "max score EP"});
  for (std::size_t k = 1; k <= kDevices; ++k) {
    table.add_row({
        support::TextTable::fmt(k),
        support::TextTable::fmt(
            core::plan_signature(instance, kRounds, k, core::CellScore::kTopK)
                .expected_paging,
            3),
        support::TextTable::fmt(
            core::plan_signature(instance, kRounds, k,
                                 core::CellScore::kSumProb)
                .expected_paging,
            3),
        support::TextTable::fmt(
            core::plan_signature(instance, kRounds, k,
                                 core::CellScore::kMaxProb)
                .expected_paging,
            3),
    });
  }
  std::cout << table;

  const double conference = core::plan_greedy(instance, kRounds).expected_paging;
  const double yellow =
      core::plan_yellow_pages(instance, kRounds).expected_paging;
  std::printf(
      "\nconsistency: k=m top-k EP vs conference planner: %.6f vs %.6f\n"
      "             k=1 top-k EP vs yellow pages       : %.6f vs %.6f\n",
      core::plan_signature(instance, kRounds, kDevices).expected_paging,
      conference,
      core::plan_signature(instance, kRounds, 1).expected_paging, yellow);

  // Against the exact optimum on a small instance: ratio of each score's
  // plan to OPT, per k.
  std::cout << "\nvs exact optimum (m = 3, c = 8, d = 2, 30 random "
               "instances):\n";
  support::TextTable ratios({"k", "top-k worst ratio", "sum worst ratio",
                             "max worst ratio"});
  for (std::size_t k = 1; k <= 3; ++k) {
    prob::RunningStats topk, sum, max;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
      prob::Rng inner(seed + 1000 * k);
      std::vector<prob::ProbabilityVector> small_rows;
      for (int i = 0; i < 3; ++i) {
        small_rows.push_back(prob::dirichlet_vector(8, 0.5, inner));
      }
      const core::Instance small = core::Instance::from_rows(small_rows);
      const double optimal =
          core::solve_exact_d2(small, core::Objective::k_of_m(k))
              .expected_paging;
      topk.add(core::plan_signature(small, 2, k, core::CellScore::kTopK)
                   .expected_paging /
               optimal);
      sum.add(core::plan_signature(small, 2, k, core::CellScore::kSumProb)
                  .expected_paging /
              optimal);
      max.add(core::plan_signature(small, 2, k, core::CellScore::kMaxProb)
                  .expected_paging /
              optimal);
    }
    ratios.add_row({
        support::TextTable::fmt(k),
        support::TextTable::fmt(topk.max(), 4),
        support::TextTable::fmt(sum.max(), 4),
        support::TextTable::fmt(max.max(), 4),
    });
  }
  std::cout << ratios;

  // The paper's "no constant factor" claim for the conference-call
  // ordering on Yellow Pages, witnessed on the constructive family.
  std::cout << "\nYellow-pages hard family (device 0 pinned; decoy sums > "
               "1), d = 2:\n\n";
  support::TextTable family({"m", "c", "sum-score EP", "max-score EP",
                             "ratio"});
  for (const std::size_t m : {6u, 12u, 24u, 48u, 96u}) {
    const core::Instance hard = core::yellow_pages_hard_instance(m);
    const double sum_ep =
        core::plan_yellow_pages(hard, 2, core::CellScore::kSumProb)
            .expected_paging;
    const double max_ep =
        core::plan_yellow_pages(hard, 2, core::CellScore::kMaxProb)
            .expected_paging;
    family.add_row({
        support::TextTable::fmt(m),
        support::TextTable::fmt(m - 1),
        support::TextTable::fmt(sum_ep, 3),
        support::TextTable::fmt(max_ep, 3),
        support::TextTable::fmt(sum_ep / max_ep, 3),
    });
  }
  std::cout << family;
  std::cout << "\nReading: the sum-score ratio grows ~ln m along the family "
               "— the paper's Section 5\nclaim that the conference-call "
               "heuristic has no constant factor for yellow pages;\nthe "
               "max-score ordering is optimal here (EP = 1).\n";
  return 0;
}
