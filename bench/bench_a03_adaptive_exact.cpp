// Ablation A3 — the exact value of adaptivity (no sampling noise).
//
// The paper leaves the adaptive scheme's performance ratio open
// (Section 5). On instances small enough to enumerate all c^m location
// vectors, the adaptive expectation is computable EXACTLY, so we can pin
// down three quantities per instance:
//     OPT  <=  E[adaptive]  <=  E[oblivious greedy]
// and report the adaptive gap closure: how much of the oblivious-vs-OPT
// gap the adaptive scheme recovers. (OPT here is the best OBLIVIOUS
// strategy; an optimal adaptive policy could be cheaper still, so closure
// can exceed 100%.)
#include <cstdio>
#include <iostream>

#include "core/adaptive.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "prob/stats.h"
#include "support/table.h"

namespace {

using namespace confcall;

core::Instance make_instance(int family, std::size_t m, std::size_t c,
                             std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<prob::ProbabilityVector> rows;
  for (std::size_t i = 0; i < m; ++i) {
    switch (family) {
      case 0:
        rows.push_back(prob::dirichlet_vector(c, 0.4, rng));
        break;
      case 1:
        rows.push_back(prob::clustered_vector(c, c / 2, rng));
        break;
      default:
        rows.push_back(prob::zipf_vector(c, 1.5, rng));
        break;
    }
  }
  return core::Instance::from_rows(rows);
}

const char* kFamilies[] = {"dirichlet(0.4)", "clustered(c/2)", "zipf(1.5)"};

}  // namespace

int main() {
  constexpr std::size_t kCells = 9;
  constexpr int kInstances = 12;
  std::cout << "A3: exact adaptive expectation vs oblivious and OPT "
               "(c = " << kCells << ", exhaustive location enumeration)\n\n";

  support::TextTable table({"family", "m", "d", "OPT (oblivious)",
                            "greedy (oblivious)", "adaptive (exact)",
                            "gap closed %"});
  table.set_align(0, support::Align::kLeft);
  int violations = 0;
  for (int family = 0; family < 3; ++family) {
    for (const std::size_t m : {2u, 3u}) {
      for (const std::size_t d : {2u, 3u}) {
        prob::RunningStats opt_s, greedy_s, adaptive_s, closure_s;
        for (int k = 0; k < kInstances; ++k) {
          const auto instance =
              make_instance(family, m, kCells, 200 * family + 10 * m + k);
          const double opt =
              core::solve_branch_and_bound(instance, d).expected_paging;
          const double greedy =
              core::plan_greedy(instance, d).expected_paging;
          const double adaptive =
              core::adaptive_expected_paging_exact(instance, d);
          if (adaptive > greedy + 1e-9) ++violations;
          opt_s.add(opt);
          greedy_s.add(greedy);
          adaptive_s.add(adaptive);
          if (greedy - opt > 1e-9) {
            closure_s.add(100.0 * (greedy - adaptive) / (greedy - opt));
          }
        }
        table.add_row({
            kFamilies[family],
            support::TextTable::fmt(m),
            support::TextTable::fmt(d),
            support::TextTable::fmt(opt_s.mean(), 4),
            support::TextTable::fmt(greedy_s.mean(), 4),
            support::TextTable::fmt(adaptive_s.mean(), 4),
            closure_s.count() > 0
                ? support::TextTable::fmt(closure_s.mean(), 1)
                : "n/a (greedy=OPT)",
        });
      }
    }
  }
  std::cout << table;
  std::cout << "\nadaptive worse than oblivious on any instance: "
            << violations
            << (violations == 0 ? " (never — matches Section 5's intuition)"
                                : " (UNEXPECTED)")
            << "\nNote: 'gap closed' can exceed 100% — the adaptive policy "
               "is not restricted\nto oblivious strategies, so it can beat "
               "the oblivious OPT.\n";
  return violations == 0 ? 0 : 1;
}
