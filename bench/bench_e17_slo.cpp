// Experiment E17 — closed-loop SLO control across a burst sweep.
//
// E14 froze the overload stack's knobs (token refill, degrade
// threshold) at values tuned once against a single operating point; the
// SLO controller closes the loop instead, sensing the admitted-rounds
// histogram over each control period and steering the same knobs with
// an AIMD law to hold a configured p99. This harness proves the
// difference: the same burst sweep is run twice per level — once with
// the static E14 thresholds and once with the controller enabled — and
// the exit code gates on the controller holding admitted p99 within the
// SLO at every burst level while the static baseline breaches it on at
// least one.
//
// The measured window opens after a traffic-carrying warmup
// (SimConfig::warmup_calls): the controller needs a few seconds of
// virtual time for the multiplicative cuts to drain the token bucket to
// its converged operating point, and steady state — not the transient —
// is what an SLO is a statement about. Both arms get the identical
// warmup so the windows stay comparable.
//
// Why the controller wins here: the static thresholds let the bucket
// refill into the healthy band between bursts, so a steady ~1/3 of
// admitted calls are planned greedily over max_paging_rounds = 3 rounds
// and the admitted p99 sits at 3 ms against a 2 ms SLO at every load.
// The controller's breach cuts pin the refill rate at the actuator
// ceiling (set below the offered token demand) and raise the degrade
// threshold, holding the admission state in the degraded band where
// every admitted call gets the single-round blanket plan — p99 1 ms —
// at the price of a higher shed rate. Latency is bought with
// throughput, which is exactly the trade an SLO controller exists to
// make explicit.
//
// Gates on the exit code:
//   * SLO        — controller-arm admitted p99 <= target at EVERY burst
//                  level, and the static arm breaches at >= 1 level;
//   * conservation — arrived == completed + abandoned + shed, per arm;
//   * determinism  — bit-identical overload + SLO counters on a repeat
//                  run and across batch thread counts 1 / 2 / 8.
//
// Flags (shared bench set): --smoke, --threads N (0 = hardware),
// --out FILE (default BENCH_E17.json).
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cellular/simulator.h"
#include "cellular/workload.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace {

using namespace confcall;

constexpr double kSloTargetMs = 2.0;

struct ArmResult {
  bool controller = false;
  std::uint64_t arrived = 0;
  std::uint64_t completed = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded_admits = 0;
  std::uint64_t slo_steps = 0;
  std::uint64_t slo_breaches = 0;
  std::uint64_t slo_pre_breach = 0;
  double shed_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool within_slo = false;
  bool conservation_ok = false;
  bool deterministic = false;
};

struct CellResult {
  double burst_multiplier = 1.0;
  ArmResult baseline;
  ArmResult slo;
};

/// The fingerprint the determinism gate compares across repeat runs and
/// thread counts: E14's overload counters plus the controller's own
/// telemetry, so a thread-dependent control trajectory cannot hide.
bool overload_identical(const cellular::SimReport& a,
                        const cellular::SimReport& b) {
  return a.calls_arrived == b.calls_arrived &&
         a.calls_served == b.calls_served &&
         a.calls_completed == b.calls_completed &&
         a.calls_shed == b.calls_shed &&
         a.calls_degraded_admit == b.calls_degraded_admit &&
         a.calls_abandoned == b.calls_abandoned &&
         a.cells_paged_total == b.cells_paged_total &&
         a.slo_control_steps == b.slo_control_steps &&
         a.slo_breaches == b.slo_breaches &&
         a.slo_pre_breach_signals == b.slo_pre_breach_signals &&
         a.rounds_histogram == b.rounds_histogram;
}

cellular::SimConfig arm_config(bool smoke, double burst_multiplier,
                               bool controller) {
  cellular::SimConfig config = cellular::overloaded_urban_scenario(17).config;
  config.steps = smoke ? 600 : 2000;
  // The warmup carries traffic so the controller's AIMD cuts converge
  // before the measured window opens (~2.5 s of virtual time to drain
  // the bucket from full to the degraded band). Identical for the
  // static arm: same window, same comparison. Not shortened in smoke
  // mode — convergence time is controller physics, not sample size.
  config.warmup_steps = 400;
  config.warmup_calls = true;
  config.burst.burst_rate =
      std::min(1.0, config.burst.base_rate * burst_multiplier);
  // The sweep isolates the plan-choice lever. Cell outages add a tail
  // of deadline-capped calls whose callees are unreachable no matter
  // which plan is used — E14 already covers that regime.
  config.faults.cell_outage_rate = 0.0;
  if (controller) {
    config.overload.slo.enabled = true;
    config.overload.slo.target_p99_ns =
        static_cast<std::uint64_t>(kSloTargetMs * 1e6);
    config.overload.slo.control_period_ns = 100'000'000;  // 100 ms
    // Quiet-hour traffic is ~2 calls per period; without a lower floor
    // the anti-windup hold would blind the controller between bursts.
    config.overload.slo.min_interval_calls = 2;
    // Actuator ceiling for the additive raises: just below the
    // quiet-hour token demand (~30 tokens/s), i.e. the operating
    // envelope the operator knows cannot refill the bucket back into
    // the healthy (greedy-plan) band. AIMD converges to the ceiling
    // while under SLO instead of sawtooth-probing past the breach
    // point — the standard way to keep an AIMD loop off a cliff edge.
    config.overload.slo.max_refill_per_sec = 24.0;
  }
  return config;
}

ArmResult run_arm(const cellular::SimConfig& config, bool controller,
                  std::size_t replications, std::size_t threads) {
  const cellular::SimBatchReport batch =
      cellular::run_simulation_batch(config, replications, threads);
  // Determinism gate: a repeat run plus thread counts 1 / 2 / 8 must
  // reproduce the aggregate bit-for-bit (replication order is pinned).
  const cellular::SimBatchReport repeat =
      cellular::run_simulation_batch(config, replications, threads);
  const cellular::SimBatchReport narrow =
      cellular::run_simulation_batch(config, replications, 1);
  const cellular::SimBatchReport pair =
      cellular::run_simulation_batch(config, replications, 2);
  const cellular::SimBatchReport wide =
      cellular::run_simulation_batch(config, replications, 8);

  const cellular::SimReport& agg = batch.aggregate;
  ArmResult arm;
  arm.controller = controller;
  arm.arrived = agg.calls_arrived;
  arm.completed = agg.calls_completed;
  arm.abandoned = agg.calls_abandoned;
  arm.shed = agg.calls_shed;
  arm.degraded_admits = agg.calls_degraded_admit;
  arm.slo_steps = agg.slo_control_steps;
  arm.slo_breaches = agg.slo_breaches;
  arm.slo_pre_breach = agg.slo_pre_breach_signals;
  arm.shed_rate = arm.arrived == 0 ? 0.0
                                   : static_cast<double>(arm.shed) /
                                         static_cast<double>(arm.arrived);
  const double round_ms =
      static_cast<double>(config.overload.round_duration_ns) * 1e-6;
  arm.p50_ms = static_cast<double>(agg.rounds_percentile(0.50)) * round_ms;
  arm.p99_ms = static_cast<double>(agg.rounds_percentile(0.99)) * round_ms;
  arm.within_slo = arm.p99_ms <= kSloTargetMs;
  arm.conservation_ok =
      agg.calls_arrived ==
          agg.calls_completed + agg.calls_abandoned + agg.calls_shed &&
      agg.calls_served == agg.calls_completed + agg.calls_abandoned;
  arm.deterministic = overload_identical(agg, repeat.aggregate) &&
                      overload_identical(agg, narrow.aggregate) &&
                      overload_identical(agg, pair.aggregate) &&
                      overload_identical(agg, wide.aggregate);
  return arm;
}

void emit_arm_json(std::ostream& json, const ArmResult& arm,
                   const char* indent) {
  json << indent << "\"calls_arrived\": " << arm.arrived << ",\n"
       << indent << "\"calls_completed\": " << arm.completed << ",\n"
       << indent << "\"calls_abandoned\": " << arm.abandoned << ",\n"
       << indent << "\"calls_shed\": " << arm.shed << ",\n"
       << indent << "\"shed_rate\": " << arm.shed_rate << ",\n"
       << indent << "\"degraded_admits\": " << arm.degraded_admits << ",\n"
       << indent << "\"latency_p50_ms\": " << arm.p50_ms << ",\n"
       << indent << "\"latency_p99_ms\": " << arm.p99_ms << ",\n"
       << indent << "\"slo_control_steps\": " << arm.slo_steps << ",\n"
       << indent << "\"slo_breaches\": " << arm.slo_breaches << ",\n"
       << indent << "\"slo_pre_breach_signals\": " << arm.slo_pre_breach
       << ",\n"
       << indent << "\"within_slo\": " << (arm.within_slo ? "true" : "false")
       << ",\n"
       << indent << "\"conservation_ok\": "
       << (arm.conservation_ok ? "true" : "false") << ",\n"
       << indent << "\"deterministic\": "
       << (arm.deterministic ? "true" : "false") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  support::BenchFlags flags;
  try {
    flags = support::parse_bench_flags(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "bench_e17_slo: " << error.what() << "\n";
    return 2;
  }
  const bool smoke = flags.smoke;
  const std::size_t threads = flags.threads;
  const std::string out_path =
      flags.out.empty() ? "BENCH_E17.json" : flags.out;
  const std::size_t replications = smoke ? 4 : 8;
  std::cout << "E17: closed-loop SLO control across a burst sweep"
            << (smoke ? " (smoke)" : "") << ", target p99 " << kSloTargetMs
            << " ms\n";

  const std::vector<double> burst_multipliers = {1.0, 2.0, 4.0, 10.0};

  std::vector<CellResult> cells;
  bool invariants_ok = true;   // conservation + determinism, every arm
  bool controller_holds = true;  // controller within SLO at every level
  bool baseline_breaches = false;  // static misses it somewhere
  for (const double burst : burst_multipliers) {
    CellResult cell;
    cell.burst_multiplier = burst;
    cell.baseline = run_arm(arm_config(smoke, burst, false), false,
                            replications, threads);
    cell.slo = run_arm(arm_config(smoke, burst, true), true, replications,
                       threads);
    invariants_ok &= cell.baseline.conservation_ok &&
                     cell.baseline.deterministic &&
                     cell.slo.conservation_ok && cell.slo.deterministic;
    controller_holds &= cell.slo.within_slo;
    baseline_breaches |= !cell.baseline.within_slo;
    cells.push_back(cell);
  }
  const bool all_ok = invariants_ok && controller_holds && baseline_breaches;

  support::TextTable table({"burst", "arm", "arrived", "shed%", "degr%",
                            "p50 ms", "p99 ms", "slo", "breaches", "ok"});
  for (const CellResult& cell : cells) {
    for (const ArmResult* arm : {&cell.baseline, &cell.slo}) {
      const double degraded_rate =
          arm->arrived == 0 ? 0.0
                            : 100.0 * static_cast<double>(arm->degraded_admits) /
                                  static_cast<double>(arm->arrived);
      table.add_row(
          {support::TextTable::fmt(cell.burst_multiplier, 0) + "x",
           arm->controller ? "slo" : "static",
           std::to_string(arm->arrived),
           support::TextTable::fmt(100.0 * arm->shed_rate, 1),
           support::TextTable::fmt(degraded_rate, 1),
           support::TextTable::fmt(arm->p50_ms, 1),
           support::TextTable::fmt(arm->p99_ms, 1),
           arm->within_slo ? "held" : "BREACH",
           std::to_string(arm->slo_breaches),
           arm->conservation_ok && arm->deterministic ? "yes" : "NO"});
    }
  }
  std::cout << "\n" << table;
  std::cout << "\ncontroller holds p99 <= " << kSloTargetMs
            << " ms at every burst level: "
            << (controller_holds ? "PASS" : "FAIL") << "\n"
            << "static baseline breaches at >= 1 level: "
            << (baseline_breaches ? "PASS" : "FAIL") << "\n"
            << "invariants (conservation exact, seed+thread determinism): "
            << (invariants_ok ? "PASS" : "FAIL (BUG)") << "\n";

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"experiment\": \"E17\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_concurrency\": " << support::resolve_threads(0)
       << ",\n"
       << "  \"replications\": " << replications << ",\n"
       << "  \"slo_target_p99_ms\": " << kSloTargetMs << ",\n"
       << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    json << "    {\n"
         << "      \"burst_multiplier\": " << cell.burst_multiplier << ",\n"
         << "      \"baseline\": {\n";
    emit_arm_json(json, cell.baseline, "        ");
    json << "      },\n"
         << "      \"slo\": {\n";
    emit_arm_json(json, cell.slo, "        ");
    json << "      }\n"
         << "    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"controller_holds\": "
       << (controller_holds ? "true" : "false") << ",\n"
       << "  \"baseline_breaches\": "
       << (baseline_breaches ? "true" : "false") << ",\n"
       << "  \"pass\": " << (all_ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";

  return all_ok ? 0 : 1;
}
