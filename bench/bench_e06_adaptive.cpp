// Experiment E6 — adaptive vs oblivious strategies (Section 5).
//
// Paper: "One can easily extend the heuristic ... to form an adaptive
// strategy where, in each round, we calculate conditional probabilities
// and ... determine the group of cells to page in the next round"; its
// performance ratio is an open problem. This harness measures the gain of
// adaptivity over the oblivious Fig. 1 strategy across profile families,
// device counts and delay budgets. Expectation: adaptive <= oblivious in
// expectation, with the gap growing with m and d (more observations to
// exploit), and both well below the blanket.
#include <iostream>

#include "core/adaptive.h"
#include "core/evaluator.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "support/table.h"

namespace {

using namespace confcall;

core::Instance make_instance(const std::string& family, std::size_t m,
                             std::size_t c, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<prob::ProbabilityVector> rows;
  for (std::size_t i = 0; i < m; ++i) {
    if (family == "uniform") {
      rows.push_back(prob::uniform_vector(c));
    } else if (family == "zipf") {
      rows.push_back(prob::zipf_vector(c, 1.3, rng));
    } else if (family == "clustered") {
      rows.push_back(prob::clustered_vector(c, c / 4, rng));
    } else {
      rows.push_back(prob::peaked_vector(c, 0.6, rng));
    }
  }
  return core::Instance::from_rows(rows);
}

}  // namespace

int main() {
  constexpr std::size_t kCells = 24;
  constexpr std::size_t kTrials = 20000;
  std::cout << "E6: adaptive re-planning vs oblivious Fig. 1 (c = " << kCells
            << ", " << kTrials << " trials per cell)\n\n";

  support::TextTable table({"family", "m", "d", "oblivious EP",
                            "adaptive EP", "gain %", "blanket"});
  table.set_align(0, support::Align::kLeft);
  int regressions = 0;
  for (const std::string family : {"uniform", "zipf", "clustered",
                                   "peaked"}) {
    for (const std::size_t m : {2u, 4u}) {
      for (const std::size_t d : {2u, 4u}) {
        const core::Instance instance =
            make_instance(family, m, kCells, 31 * m + d);
        const core::PlanResult oblivious = core::plan_greedy(instance, d);
        prob::Rng rng(97 * m + d);
        const auto adaptive =
            core::adaptive_expected_paging(instance, d, kTrials, rng);
        const double gain = 100.0 *
                            (oblivious.expected_paging - adaptive.mean) /
                            oblivious.expected_paging;
        if (adaptive.mean >
            oblivious.expected_paging + 4.0 * adaptive.std_error) {
          ++regressions;
        }
        table.add_row({
            family,
            support::TextTable::fmt(m),
            support::TextTable::fmt(d),
            support::TextTable::fmt(oblivious.expected_paging, 3),
            support::TextTable::fmt(adaptive.mean, 3),
            support::TextTable::fmt(gain, 2),
            support::TextTable::fmt(static_cast<double>(kCells), 0),
        });
      }
    }
  }
  std::cout << table;
  std::cout << "\nstatistically significant regressions (adaptive worse): "
            << regressions
            << (regressions == 0 ? " (adaptivity never hurts, as expected)"
                                 : " (UNEXPECTED)")
            << "\n";
  return regressions == 0 ? 0 : 1;
}
