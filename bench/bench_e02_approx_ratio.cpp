// Experiment E2 — empirical approximation ratio of the Fig. 1 heuristic.
//
// Paper claim (Theorem 4.8): EP_greedy <= e/(e-1) * EP_opt ~ 1.582, and
// the heuristic's ratio is at least 320/317 ~ 1.0095 in the worst case
// (Section 4.3). For m = 2, d = 2 the bound sharpens to 4/3 (Section 4.1).
//
// This harness solves small instances exactly (exhaustive search) across
// distribution families and reports the observed ratio distribution per
// (m, d) shape. Expectation: every ratio <= the theorem bound, most
// ratios ~ 1, the max well below e/(e-1).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/bounds.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "prob/stats.h"
#include "support/table.h"

namespace {

confcall::core::Instance random_instance(std::size_t m, std::size_t c,
                                         std::uint64_t seed, int family) {
  using namespace confcall;
  prob::Rng rng(seed);
  std::vector<prob::ProbabilityVector> rows;
  for (std::size_t i = 0; i < m; ++i) {
    switch (family) {
      case 0:
        rows.push_back(prob::dirichlet_vector(c, 1.0, rng));
        break;
      case 1:
        rows.push_back(prob::zipf_vector(c, 1.5, rng));
        break;
      case 2:
        rows.push_back(prob::peaked_vector(c, 0.75, rng));
        break;
      default:
        rows.push_back(prob::dirichlet_vector(c, 0.3, rng));
        break;
    }
  }
  return core::Instance::from_rows(rows);
}

}  // namespace

int main() {
  using namespace confcall;

  constexpr std::size_t kCells = 8;
  constexpr int kTrialsPerFamily = 25;
  std::cout << "E2: greedy/OPT ratio on exhaustively solved instances, c = "
            << kCells << " (paper bound e/(e-1) = "
            << core::kApproximationFactor << ")\n\n";

  support::TextTable table({"m", "d", "instances", "mean ratio", "p99-ish",
                            "max ratio", "bound", "violations"});
  double global_max = 1.0;
  int total_violations = 0;
  for (const std::size_t m : {2u, 3u, 4u}) {
    for (const std::size_t d : {2u, 3u}) {
      prob::RunningStats ratios;
      std::vector<double> all;
      int violations = 0;
      for (int family = 0; family < 4; ++family) {
        for (int trial = 0; trial < kTrialsPerFamily; ++trial) {
          const auto instance = random_instance(
              m, kCells, 1000 * m + 100 * d + 10 * family + trial, family);
          const double greedy =
              core::plan_greedy(instance, d).expected_paging;
          const double optimal =
              d == 2 ? core::solve_exact_d2(instance).expected_paging
                     : core::solve_branch_and_bound(instance, d)
                           .expected_paging;
          const double ratio = greedy / optimal;
          ratios.add(ratio);
          all.push_back(ratio);
          if (ratio > core::kApproximationFactor + 1e-9) ++violations;
        }
      }
      std::sort(all.begin(), all.end());
      global_max = std::max(global_max, ratios.max());
      total_violations += violations;
      table.add_row({
          support::TextTable::fmt(m),
          support::TextTable::fmt(d),
          support::TextTable::fmt(ratios.count()),
          support::TextTable::fmt(ratios.mean(), 5),
          support::TextTable::fmt(all[all.size() - 2], 5),
          support::TextTable::fmt(ratios.max(), 5),
          support::TextTable::fmt(
              d == 2 && m == 2 ? 4.0 / 3.0 : core::kApproximationFactor, 4),
          support::TextTable::fmt(static_cast<std::size_t>(violations)),
      });
    }
  }
  std::cout << table;

  // At sizes exact search cannot reach, certify the ratio against the
  // computable lower bounds (single-user + AM-GM; see core/bounds.h).
  std::cout << "\nCertified ratio bounds at scale (greedy EP / lower "
               "bound, 40 instances each):\n\n";
  support::TextTable certified({"c", "m", "d", "mean cert. ratio",
                                "max cert. ratio"});
  for (const std::size_t c : {32u, 64u}) {
    for (const std::size_t m : {2u, 8u}) {
      prob::RunningStats ratios;
      for (int family = 0; family < 4; ++family) {
        for (int trial = 0; trial < 10; ++trial) {
          const auto instance = random_instance(
              m, c, 5000 + 100 * c + 10 * family + trial, family);
          const double greedy =
              core::plan_greedy(instance, 4).expected_paging;
          const double bound = core::lower_bound_conference(instance, 4);
          ratios.add(greedy / bound);
        }
      }
      certified.add_row({
          support::TextTable::fmt(c),
          support::TextTable::fmt(m),
          "4",
          support::TextTable::fmt(ratios.mean(), 4),
          support::TextTable::fmt(ratios.max(), 4),
      });
    }
  }
  std::cout << certified;
  std::cout << "\n(certified ratios overstate the true gap: the bound "
               "itself is below OPT)\n";

  std::printf(
      "\nworst observed ratio %.5f vs theorem bound %.4f; paper's "
      "Section 4.3\nlower bound for the heuristic is 320/317 = %.5f\n",
      global_max, core::kApproximationFactor, 320.0 / 317.0);
  std::cout << "bound violations: " << total_violations
            << (total_violations == 0 ? " (matches Theorem 4.8)" : " (BUG)")
            << "\n";
  return total_violations == 0 ? 0 : 1;
}
