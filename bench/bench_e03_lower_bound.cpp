// Experiment E3 — the Section 4.3 lower-bound instance.
//
// Paper claim: on the instance with m = 2, c = 8, d = 2,
//   p1 = (2/7, 1/7, 1/7, 1/7, 1/7, 1/7, 0, 0),
//   p2 = (0, 1/7, 1/7, 1/7, 1/7, 1/7, 1/7, 1/7),
// the optimal strategy pages cells 2..6 first with EP = 317/49, while the
// heuristic pages cells 1..5 with EP = 320/49 — performance ratio 320/317.
// An epsilon-perturbation forces the same choice under any tie-breaking.
//
// This harness reproduces all of it, in exact rational arithmetic.
#include <cstdio>
#include <iostream>

#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "prob/rational.h"
#include "support/table.h"

int main() {
  using namespace confcall;
  using prob::Rational;

  std::cout << "E3: Section 4.3 hard instance (m=2, c=8, d=2)\n\n";

  const core::RationalInstance exact = core::hard_instance_8cells_exact();
  const core::Instance instance = core::hard_instance_8cells();

  const auto optimum = core::solve_exact_d2_exact(exact);
  const core::PlanResult greedy = core::plan_greedy(instance, 2);
  // Exact EP of the greedy strategy.
  const Rational greedy_exact =
      core::expected_paging_exact(exact, greedy.strategy);

  support::TextTable table(
      {"strategy", "first-round cells", "EP (exact)", "EP (double)"});
  table.set_align(0, support::Align::kLeft);
  table.set_align(1, support::Align::kLeft);
  auto cells_text = [](const std::vector<core::CellId>& cells) {
    std::string text;
    for (const auto cell : cells) {
      if (!text.empty()) text += ',';
      text += std::to_string(cell + 1);  // paper is 1-based
    }
    return text;
  };
  table.add_row({"optimal (exhaustive)", cells_text(optimum.first_round),
                 optimum.expected_paging.to_string(),
                 support::TextTable::fmt(optimum.expected_paging.to_double(),
                                         6)});
  table.add_row({"heuristic (Fig. 1)", cells_text(greedy.strategy.group(0)),
                 greedy_exact.to_string(),
                 support::TextTable::fmt(greedy.expected_paging, 6)});
  std::cout << table;

  const Rational ratio = greedy_exact / optimum.expected_paging;
  std::cout << "\nperformance ratio: " << ratio.to_string() << " = "
            << ratio.to_double() << " (paper: 320/317 = "
            << 320.0 / 317.0 << ")\n";

  std::cout << "\nepsilon-perturbed variant (forces the heuristic's choice "
               "under any tie-break):\n";
  support::TextTable perturbed({"epsilon", "greedy EP", "optimal EP",
                                "ratio"});
  for (const double eps : {1e-3, 1e-6, 1e-9}) {
    const core::Instance p = core::hard_instance_8cells_perturbed(eps);
    const double g = core::plan_greedy(p, 2).expected_paging;
    const double o = core::solve_exact_d2(p).expected_paging;
    perturbed.add_row({
        support::TextTable::fmt(eps, 9),
        support::TextTable::fmt(g, 6),
        support::TextTable::fmt(o, 6),
        support::TextTable::fmt(g / o, 6),
    });
  }
  std::cout << perturbed;

  const bool matches = optimum.expected_paging == Rational(317, 49) &&
                       greedy_exact == Rational(320, 49);
  std::cout << "\nexact values match the paper (317/49 and 320/49): "
            << (matches ? "YES" : "NO (MISMATCH)") << "\n";
  return matches ? 0 : 1;
}
