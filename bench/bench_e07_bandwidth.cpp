// Experiment E7 — bandwidth-limited paging (Section 5).
//
// Paper: "due to bandwidth limitations ... at most a fixed number of b
// cells can be paged at any unit of time. ... our approximation result
// generalizes". This harness sweeps the per-round cap b and compares the
// capped Fig. 1 planner against the naive chunked blanket a system without
// profiles would use. Expectations: tighter caps cost more pages (and more
// rounds of delay); the planner dominates the chunked blanket everywhere;
// the uncapped planner is the b = c column.
#include <iostream>

#include "core/bandwidth.h"
#include "core/evaluator.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "support/table.h"

int main() {
  using namespace confcall;

  constexpr std::size_t kCells = 32;
  constexpr std::size_t kDevices = 3;
  prob::Rng rng(41);
  std::vector<prob::ProbabilityVector> rows;
  for (std::size_t i = 0; i < kDevices; ++i) {
    rows.push_back(prob::zipf_vector(kCells, 1.2, rng));
  }
  const core::Instance instance = core::Instance::from_rows(rows);

  std::cout << "E7: per-round cap b on a Zipf instance (m = " << kDevices
            << ", c = " << kCells << ")\n\n";

  support::TextTable table({"b (cells/round)", "min rounds", "d used",
                            "planned EP", "chunked blanket EP",
                            "planner gain %"});
  bool planner_dominates = true;
  for (const std::size_t b : {4u, 8u, 12u, 16u, 24u, 32u}) {
    const std::size_t min_rounds =
        core::min_rounds_for_bandwidth(kCells, b);
    // Allow a little slack over the minimum so the planner can shape
    // groups (the delay constraint of the paper's model).
    const std::size_t d = std::min(kCells, min_rounds + 2);
    const core::PlanResult plan =
        core::plan_bandwidth_limited(instance, d, b);
    const double blanket =
        core::expected_paging(instance, core::chunked_blanket(kCells, b));
    planner_dominates &= plan.expected_paging <= blanket + 1e-9;
    table.add_row({
        support::TextTable::fmt(b),
        support::TextTable::fmt(min_rounds),
        support::TextTable::fmt(d),
        support::TextTable::fmt(plan.expected_paging, 3),
        support::TextTable::fmt(blanket, 3),
        support::TextTable::fmt(
            100.0 * (blanket - plan.expected_paging) / blanket, 1),
    });
  }
  std::cout << table;

  std::cout << "\nCap vs delay interaction (EP of the capped planner):\n";
  support::TextTable grid({"d \\ b", "4", "8", "16", "32"});
  for (const std::size_t d : {8u, 12u, 16u, 24u}) {
    std::vector<std::string> row = {support::TextTable::fmt(d)};
    for (const std::size_t b : {4u, 8u, 16u, 32u}) {
      if (d * b < kCells) {
        row.push_back("infeasible");
      } else {
        row.push_back(support::TextTable::fmt(
            core::plan_bandwidth_limited(instance, d, b).expected_paging,
            2));
      }
    }
    grid.add_row(std::move(row));
  }
  std::cout << grid;

  std::cout << "\nplanner dominates chunked blanket for every b: "
            << (planner_dominates ? "YES" : "NO (BUG)") << "\n";
  return planner_dominates ? 0 : 1;
}
