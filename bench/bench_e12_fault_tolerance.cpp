// Experiment E12 — fault tolerance and degraded-mode paging.
//
// The paper's Section 5 already allows for unanswered pages; this harness
// layers structured faults (cell outages, uplink report loss, dead paging
// rounds) on top and measures how gracefully the location service
// degrades: the cost of each fault class, the cross product of outage and
// report-loss rates, and what a bounded RetryPolicy (backoff, page
// budget, deadline) buys compared with unbounded sweeping. Every run also
// proves fault conservation — the injection-side counters must match the
// observation-side ones exactly.
//
// Pass --smoke for the CI-sized run (same sweep, shorter horizon).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "cellular/simulator.h"
#include "support/cli.h"
#include "support/table.h"

namespace {

using namespace confcall;

cellular::SimConfig base_config(bool smoke) {
  cellular::SimConfig config;
  config.grid_rows = 12;
  config.grid_cols = 12;
  config.la_tile_rows = 3;
  config.la_tile_cols = 3;
  config.num_users = 60;
  config.stay_probability = 0.4;
  config.call_rate = 0.4;
  config.group_min = 2;
  config.group_max = 4;
  config.max_paging_rounds = 3;
  config.detection_probability = 0.9;
  config.steps = smoke ? 250 : 1500;
  config.warmup_steps = smoke ? 50 : 150;
  config.seed = 12;
  return config;
}

double pct(std::size_t part, std::size_t whole) {
  if (whole == 0) return 0.0;
  return 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

/// Conservation + sanity invariants every run must satisfy.
bool check_invariants(const cellular::SimReport& report, bool faulted) {
  bool ok = true;
  ok &= report.reports_lost == report.faults_injected.reports_dropped;
  ok &= report.dropped_rounds == report.faults_injected.rounds_dropped;
  ok &= report.calls_abandoned <= report.calls_served;
  ok &= report.calls_degraded <= report.calls_served;
  ok &= report.calls_abandoned <= report.calls_degraded;
  if (!faulted) {
    ok &= report.reports_lost == 0 && report.outage_pages == 0 &&
          report.dropped_rounds == 0;
    ok &= report.faults_injected.outages_started == 0;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  try {
    smoke = support::parse_bench_flags(argc, argv).smoke;
  } catch (const std::exception& error) {
    std::cerr << "bench_e12_fault_tolerance: " << error.what() << "\n";
    return 2;
  }
  std::cout << "E12: degraded-mode paging under structured faults"
            << (smoke ? " (smoke)" : "") << "\n";

  bool ok = true;

  // ---- Sweep 1: outage rate x report-loss rate, default retry policy.
  std::cout << "\noutage rate x report-loss rate (round drops off, "
               "retry: 8 immediate sweeps):\n\n";
  support::TextTable sweep({"outage", "rep-loss", "pages/call",
                            "rounds/call", "degraded%", "abandoned%",
                            "outage-pg", "lost-reps"});
  double fault_free_pages = 0.0;
  double worst_pages = 0.0;
  for (const double outage : {0.0, 0.02, 0.05, 0.10}) {
    for (const double loss : {0.0, 0.10, 0.30}) {
      cellular::SimConfig config = base_config(smoke);
      config.faults.cell_outage_rate = outage;
      config.faults.outage_duration = 25;
      config.faults.report_loss_rate = loss;
      config.faults.seed = 0xe12;
      const cellular::SimReport report = cellular::run_simulation(config);
      ok &= check_invariants(report, outage > 0.0 || loss > 0.0);
      if (outage == 0.0 && loss == 0.0) {
        fault_free_pages = report.pages_per_call.mean();
      }
      worst_pages = std::max(worst_pages, report.pages_per_call.mean());
      sweep.add_row({
          support::TextTable::fmt(outage, 2),
          support::TextTable::fmt(loss, 2),
          support::TextTable::fmt(report.pages_per_call.mean(), 2),
          support::TextTable::fmt(report.rounds_per_call.mean(), 2),
          support::TextTable::fmt(
              pct(report.calls_degraded, report.calls_served), 1),
          support::TextTable::fmt(
              pct(report.calls_abandoned, report.calls_served), 1),
          support::TextTable::fmt(report.outage_pages),
          support::TextTable::fmt(report.reports_lost),
      });
    }
  }
  std::cout << sweep;
  // Faults must actually cost something, or the injection is broken.
  ok &= worst_pages > fault_free_pages;

  // ---- Sweep 2: retry policies under one fixed hostile fault mix.
  std::cout << "\nretry policies under a fixed fault mix (outage 0.05, "
               "report loss 0.15, round drop 0.05):\n\n";
  struct NamedPolicy {
    const char* name;
    cellular::RetryPolicy retry;
  };
  std::vector<NamedPolicy> policies;
  policies.push_back({"immediate x8 (default)", {}});
  {
    cellular::RetryPolicy retry;
    retry.max_retries = 4;
    retry.backoff_base = 1;
    retry.backoff_cap = 8;
    policies.push_back({"backoff 1<<k, 4 tries", retry});
  }
  {
    cellular::RetryPolicy retry;
    retry.max_retries = 8;
    retry.page_budget = 300;
    policies.push_back({"page budget 300", retry});
  }
  {
    cellular::RetryPolicy retry;
    retry.max_retries = 8;
    retry.backoff_base = 2;
    retry.backoff_cap = 16;
    retry.round_deadline = 12;
    policies.push_back({"deadline 12 rounds", retry});
  }
  {
    cellular::RetryPolicy retry;
    retry.max_retries = 0;
    policies.push_back({"no recovery", retry});
  }

  support::TextTable table({"policy", "pages/call", "rounds/call",
                            "retries", "backoff-rds", "abandoned%",
                            "budget-exh", "forced-reg"});
  double default_pages = 0.0;
  double no_recovery_pages = 0.0;
  std::size_t deadline_exhaustions = 0;
  for (const NamedPolicy& policy : policies) {
    cellular::SimConfig config = base_config(smoke);
    config.faults.cell_outage_rate = 0.05;
    config.faults.outage_duration = 25;
    config.faults.report_loss_rate = 0.15;
    config.faults.round_drop_rate = 0.05;
    config.faults.seed = 0xe12;
    config.retry = policy.retry;
    const cellular::SimReport report = cellular::run_simulation(config);
    ok &= check_invariants(report, true);
    if (std::strcmp(policy.name, "no recovery") == 0) {
      no_recovery_pages = report.pages_per_call.mean();
      ok &= report.retries_total == 0;
      ok &= report.calls_abandoned > 0;
    }
    if (std::strncmp(policy.name, "immediate", 9) == 0) {
      default_pages = report.pages_per_call.mean();
    }
    if (std::strncmp(policy.name, "deadline", 8) == 0) {
      deadline_exhaustions = report.budget_exhaustions;
    }
    table.add_row({
        policy.name,
        support::TextTable::fmt(report.pages_per_call.mean(), 2),
        support::TextTable::fmt(report.rounds_per_call.mean(), 2),
        support::TextTable::fmt(report.retries_total),
        support::TextTable::fmt(report.backoff_rounds),
        support::TextTable::fmt(
            pct(report.calls_abandoned, report.calls_served), 1),
        support::TextTable::fmt(report.budget_exhaustions),
        support::TextTable::fmt(report.forced_registrations),
    });
  }
  std::cout << table;
  // Cutting recovery entirely must save pages (paid for in abandonment),
  // and the deadline policy must actually fire.
  ok &= no_recovery_pages < default_pages;
  ok &= deadline_exhaustions > 0;

  std::cout << "\nconservation and degradation invariants: "
            << (ok ? "PASS" : "FAIL (BUG)") << "\n"
            << "Reading: report loss is the cheap fault (stale entries "
               "mean one extra\nsweep); outages are the expensive one "
               "(every retry re-pages the dark cell\nuntil the clock "
               "expires). Bounded policies trade a small abandonment\n"
               "rate for a hard cap on the per-call paging bill.\n";
  return ok ? 0 : 1;
}
