// Experiment E14 — overload protection under burst x outage chaos.
//
// The paper prices call setup under a delay constraint d; a deployed
// service must also survive the days when demand transiently exceeds
// capacity. This harness drives the full overload stack — Markov-
// modulated call bursts, token-bucket admission with the three-state
// health machine, per-call deadlines propagated into locate(), and the
// breaker-guarded resilient planner chain — across a burst-multiplier x
// outage-rate grid, and emits a machine-readable BENCH_E14.json with the
// admitted-call latency percentiles (p50/p99 setup rounds priced in ms),
// shed rate, degraded-admit rate and breaker telemetry per cell.
//
// Three invariants gate the exit code on every grid cell:
//   * determinism — the pinned seed reproduces bit-identical overload
//     counters across repeat runs AND across batch thread counts;
//   * conservation — every arrival is exactly one of completed /
//     abandoned / shed;
//   * deadline — no admitted call ever used more rounds than its
//     propagated deadline afforded.
//
// Flags (shared bench set): --smoke, --threads N (0 = hardware),
// --out FILE (default BENCH_E14.json).
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cellular/simulator.h"
#include "cellular/workload.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace {

using namespace confcall;

struct CellResult {
  double burst_multiplier = 1.0;
  double outage_rate = 0.0;
  std::uint64_t arrived = 0;
  std::uint64_t completed = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded_admits = 0;
  std::uint64_t deadline_limited = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_skips = 0;
  std::uint64_t failovers = 0;
  std::uint64_t health_transitions = 0;
  std::uint64_t bursts = 0;
  double shed_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool conservation_ok = false;
  bool deadline_ok = false;
  bool deterministic = false;
};

/// The overload fingerprint of a batch: everything the determinism gate
/// compares across repeat runs and thread counts.
bool overload_identical(const cellular::SimReport& a,
                        const cellular::SimReport& b) {
  return a.calls_arrived == b.calls_arrived &&
         a.calls_served == b.calls_served &&
         a.calls_completed == b.calls_completed &&
         a.calls_shed == b.calls_shed &&
         a.calls_degraded_admit == b.calls_degraded_admit &&
         a.calls_deadline_limited == b.calls_deadline_limited &&
         a.calls_abandoned == b.calls_abandoned &&
         a.breaker_trips == b.breaker_trips &&
         a.breaker_skips == b.breaker_skips &&
         a.planner_failovers == b.planner_failovers &&
         a.health_transitions == b.health_transitions &&
         a.bursts_entered == b.bursts_entered &&
         a.cells_paged_total == b.cells_paged_total &&
         a.rounds_histogram == b.rounds_histogram;
}

cellular::SimConfig grid_cell_config(bool smoke, double burst_multiplier,
                                     double outage_rate) {
  cellular::SimConfig config = cellular::overloaded_urban_scenario(14).config;
  config.steps = smoke ? 400 : 2000;
  config.warmup_steps = 50;
  config.burst.burst_rate =
      std::min(1.0, config.burst.base_rate * burst_multiplier);
  config.faults.cell_outage_rate = outage_rate;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  support::BenchFlags flags;
  try {
    flags = support::parse_bench_flags(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "bench_e14_overload: " << error.what() << "\n";
    return 2;
  }
  const bool smoke = flags.smoke;
  const std::size_t threads = flags.threads;
  const std::string out_path =
      flags.out.empty() ? "BENCH_E14.json" : flags.out;
  const std::size_t replications = smoke ? 4 : 8;
  std::cout << "E14: overload protection under burst x outage chaos"
            << (smoke ? " (smoke)" : "") << "\n";

  const std::vector<double> burst_multipliers = {1.0, 10.0};
  const std::vector<double> outage_rates = {0.0, 0.05};

  std::vector<CellResult> cells;
  bool all_ok = true;
  for (const double burst : burst_multipliers) {
    for (const double outage : outage_rates) {
      const cellular::SimConfig config =
          grid_cell_config(smoke, burst, outage);
      const std::uint64_t round_cap =
          config.overload.call_deadline_ns / config.overload.round_duration_ns;

      const cellular::SimBatchReport batch =
          cellular::run_simulation_batch(config, replications, threads);
      // Determinism gate: identical counters on a repeat run and on a
      // different thread count (1 vs 2 exercises the scheduling seams).
      const cellular::SimBatchReport repeat =
          cellular::run_simulation_batch(config, replications, threads);
      const cellular::SimBatchReport narrow =
          cellular::run_simulation_batch(config, replications, 1);
      const cellular::SimBatchReport pair =
          cellular::run_simulation_batch(config, replications, 2);

      CellResult cell;
      cell.burst_multiplier = burst;
      cell.outage_rate = outage;
      const cellular::SimReport& agg = batch.aggregate;
      cell.arrived = agg.calls_arrived;
      cell.completed = agg.calls_completed;
      cell.abandoned = agg.calls_abandoned;
      cell.shed = agg.calls_shed;
      cell.degraded_admits = agg.calls_degraded_admit;
      cell.deadline_limited = agg.calls_deadline_limited;
      cell.breaker_trips = agg.breaker_trips;
      cell.breaker_skips = agg.breaker_skips;
      cell.failovers = agg.planner_failovers;
      cell.health_transitions = agg.health_transitions;
      cell.bursts = agg.bursts_entered;
      cell.shed_rate = cell.arrived == 0
                           ? 0.0
                           : static_cast<double>(cell.shed) /
                                 static_cast<double>(cell.arrived);
      const double round_ms =
          static_cast<double>(config.overload.round_duration_ns) * 1e-6;
      cell.p50_ms =
          static_cast<double>(agg.rounds_percentile(0.50)) * round_ms;
      cell.p99_ms =
          static_cast<double>(agg.rounds_percentile(0.99)) * round_ms;

      cell.conservation_ok =
          agg.calls_arrived ==
              agg.calls_completed + agg.calls_abandoned + agg.calls_shed &&
          agg.calls_served == agg.calls_completed + agg.calls_abandoned;
      // No admitted call may appear in a histogram bucket past the
      // deadline's round budget — in any individual replication.
      cell.deadline_ok = true;
      for (const cellular::SimReport& run : batch.runs) {
        for (std::size_t r = round_cap + 1; r < run.rounds_histogram.size();
             ++r) {
          cell.deadline_ok &= run.rounds_histogram[r] == 0;
        }
      }
      cell.deterministic = overload_identical(agg, repeat.aggregate) &&
                           overload_identical(agg, narrow.aggregate) &&
                           overload_identical(agg, pair.aggregate);
      all_ok &= cell.conservation_ok && cell.deadline_ok && cell.deterministic;
      cells.push_back(cell);
    }
  }

  support::TextTable table({"burst", "outage", "arrived", "shed%", "degr%",
                            "p50 ms", "p99 ms", "trips", "skips", "ok"});
  for (const CellResult& cell : cells) {
    const double degraded_rate =
        cell.arrived == 0 ? 0.0
                          : 100.0 * static_cast<double>(cell.degraded_admits) /
                                static_cast<double>(cell.arrived);
    table.add_row(
        {support::TextTable::fmt(cell.burst_multiplier, 0) + "x",
         support::TextTable::fmt(100.0 * cell.outage_rate, 0) + "%",
         std::to_string(cell.arrived),
         support::TextTable::fmt(100.0 * cell.shed_rate, 1),
         support::TextTable::fmt(degraded_rate, 1),
         support::TextTable::fmt(cell.p50_ms, 1),
         support::TextTable::fmt(cell.p99_ms, 1),
         std::to_string(cell.breaker_trips),
         std::to_string(cell.breaker_skips),
         cell.conservation_ok && cell.deadline_ok && cell.deterministic
             ? "yes"
             : "NO"});
  }
  std::cout << "\n" << table;
  std::cout << "\ninvariants (conservation exact, no deadline overrun, "
               "seed+thread determinism): "
            << (all_ok ? "PASS" : "FAIL (BUG)") << "\n";

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"experiment\": \"E14\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_concurrency\": " << support::resolve_threads(0)
       << ",\n"
       << "  \"replications\": " << replications << ",\n"
       << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    json << "    {\n"
         << "      \"burst_multiplier\": " << cell.burst_multiplier << ",\n"
         << "      \"outage_rate\": " << cell.outage_rate << ",\n"
         << "      \"calls_arrived\": " << cell.arrived << ",\n"
         << "      \"calls_completed\": " << cell.completed << ",\n"
         << "      \"calls_abandoned\": " << cell.abandoned << ",\n"
         << "      \"calls_shed\": " << cell.shed << ",\n"
         << "      \"shed_rate\": " << cell.shed_rate << ",\n"
         << "      \"degraded_admits\": " << cell.degraded_admits << ",\n"
         << "      \"deadline_limited\": " << cell.deadline_limited << ",\n"
         << "      \"latency_p50_ms\": " << cell.p50_ms << ",\n"
         << "      \"latency_p99_ms\": " << cell.p99_ms << ",\n"
         << "      \"breaker_trips\": " << cell.breaker_trips << ",\n"
         << "      \"breaker_skips\": " << cell.breaker_skips << ",\n"
         << "      \"planner_failovers\": " << cell.failovers << ",\n"
         << "      \"health_transitions\": " << cell.health_transitions
         << ",\n"
         << "      \"bursts_entered\": " << cell.bursts << ",\n"
         << "      \"conservation_ok\": "
         << (cell.conservation_ok ? "true" : "false") << ",\n"
         << "      \"deadline_ok\": " << (cell.deadline_ok ? "true" : "false")
         << ",\n"
         << "      \"deterministic\": "
         << (cell.deterministic ? "true" : "false") << "\n"
         << "    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"pass\": " << (all_ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";

  return all_ok ? 0 : 1;
}
