// Ablation A5 — how much does the location-profile ESTIMATE matter?
//
// The paper takes the probability matrix as given and points to [15,16]
// for obtaining it. In the full system the estimate is imperfect; this
// ablation runs the same workload under the three estimators (last-seen
// prediction / empirical counts / stationary prior) across mobility
// speeds, plus an oracle-free baseline (the LA blanket, which needs no
// estimate at all). Expectations:
//   * last-seen dominates when users are slow (reports stay informative),
//     and degrades toward the stationary prior as mobility rises;
//   * the empirical profile needs history: with the long horizon here it
//     sits between the two;
//   * EVERY estimator beats the blanket — even a flat prior lets the
//     d-round planner save pages (it exploits the group structure).
#include <iostream>

#include "cellular/simulator.h"
#include "support/table.h"

int main() {
  using namespace confcall;
  using cellular::PagingPolicy;
  using cellular::ProfileKind;

  cellular::SimConfig base;
  base.grid_rows = 10;
  base.grid_cols = 10;
  base.la_tile_rows = 5;
  base.la_tile_cols = 5;
  base.num_users = 40;
  base.call_rate = 0.3;
  base.group_min = 2;
  base.group_max = 4;
  base.max_paging_rounds = 3;
  base.steps = 2000;
  base.warmup_steps = 300;
  base.seed = 404;

  std::cout << "A5: pages/call by profile estimator (10x10 grid, four "
               "25-cell LAs, d = 3)\n\n";
  support::TextTable table({"mobility", "last-seen", "empirical",
                            "stationary", "LA blanket"});
  table.set_align(0, support::Align::kLeft);
  bool estimators_beat_blanket = true;
  const struct {
    const char* name;
    double stay;
  } mobilities[] = {{"slow (stay 0.9)", 0.9},
                    {"medium (stay 0.6)", 0.6},
                    {"fast (stay 0.2)", 0.2}};
  for (const auto& [name, stay] : mobilities) {
    double results[3];
    int idx = 0;
    for (const ProfileKind kind :
         {ProfileKind::kLastSeen, ProfileKind::kEmpirical,
          ProfileKind::kStationary}) {
      cellular::SimConfig config = base;
      config.stay_probability = stay;
      config.profile_kind = kind;
      results[idx++] =
          cellular::run_simulation(config).pages_per_call.mean();
    }
    cellular::SimConfig blanket = base;
    blanket.stay_probability = stay;
    blanket.paging_policy = PagingPolicy::kBlanketArea;
    const double blanket_pages =
        cellular::run_simulation(blanket).pages_per_call.mean();
    for (const double r : results) {
      estimators_beat_blanket &= r < blanket_pages;
    }
    table.add_row({
        name,
        support::TextTable::fmt(results[0], 2),
        support::TextTable::fmt(results[1], 2),
        support::TextTable::fmt(results[2], 2),
        support::TextTable::fmt(blanket_pages, 2),
    });
  }
  std::cout << table;
  std::cout << "\nevery estimator beats the LA blanket: "
            << (estimators_beat_blanket ? "YES" : "NO (UNEXPECTED)")
            << "\nReading: even the flat stationary prior saves ~30% over "
               "the blanket (the d-round\nstructure alone); an informative "
               "last-seen profile roughly doubles that saving and\ndegrades "
               "gracefully as mobility erodes its information.\n";
  return estimators_beat_blanket ? 0 : 1;
}
