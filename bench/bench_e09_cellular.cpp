// Experiment E9 — the reporting/paging tradeoff in the full system
// (Section 1.1's framing of location management).
//
// Paper: "The location tracking problem exhibits an inherent tradeoff
// between the usage of wireless links because of devices reporting their
// locations and the usage because of the system searching for devices."
// This harness runs the end-to-end simulator and sweeps
//   (a) the report policy (never / on LA crossing / every cell) crossed
//       with mobility speed — reproducing the tradeoff curve, and
//   (b) the paging policy (GSM blanket / Fig. 1 greedy / adaptive)
//       under the standard LA-crossing policy.
// Expected shape: silence is cheap in reports but catastrophic in pages;
// per-cell reporting kills paging but floods the uplink; LA-crossing sits
// between, and the Fig. 1 planner shrinks its paging share further.
#include <iostream>

#include "cellular/simulator.h"
#include "support/table.h"

namespace {

confcall::cellular::SimConfig base_config() {
  confcall::cellular::SimConfig config;
  config.grid_rows = 10;
  config.grid_cols = 10;
  config.la_tile_rows = 5;
  config.la_tile_cols = 5;
  config.num_users = 40;
  config.call_rate = 0.25;
  config.group_min = 2;
  config.group_max = 4;
  config.max_paging_rounds = 3;
  config.steps = 2000;
  config.warmup_steps = 200;
  config.seed = 2002;  // PODC'02
  return config;
}

}  // namespace

int main() {
  using namespace confcall;
  using cellular::PagingPolicy;
  using cellular::ReportPolicy;

  std::cout << "E9: reporting vs paging wireless cost (10x10 grid, four "
               "25-cell LAs,\n40 users, conference size 2-4, 2000 steps, "
               "cost weights 1:1)\n\n";

  support::TextTable tradeoff({"mobility", "report policy", "reports",
                               "pages", "pages/call", "total cost"});
  tradeoff.set_align(0, support::Align::kLeft);
  tradeoff.set_align(1, support::Align::kLeft);
  const struct {
    const char* name;
    double stay;
  } mobilities[] = {{"slow (stay 0.9)", 0.9},
                    {"medium (stay 0.6)", 0.6},
                    {"fast (stay 0.2)", 0.2}};
  const struct {
    const char* name;
    ReportPolicy policy;
  } reports[] = {{"never", ReportPolicy::kNever},
                 {"LA crossing", ReportPolicy::kOnAreaCrossing},
                 {"every cell", ReportPolicy::kOnCellCrossing},
                 {"timer T=16", ReportPolicy::kEveryTSteps},
                 {"distance D=3", ReportPolicy::kDistanceThreshold}};
  for (const auto& [mob_name, stay] : mobilities) {
    for (const auto& [rep_name, policy] : reports) {
      cellular::SimConfig config = base_config();
      config.stay_probability = stay;
      config.report_policy = policy;
      config.timer_period = 16;
      config.distance_threshold = 3;
      const cellular::SimReport report = cellular::run_simulation(config);
      tradeoff.add_row({
          mob_name,
          rep_name,
          support::TextTable::fmt(report.reports_sent),
          support::TextTable::fmt(report.cells_paged_total),
          support::TextTable::fmt(report.pages_per_call.mean(), 1),
          support::TextTable::fmt(report.wireless_cost(1.0, 1.0), 0),
      });
    }
    tradeoff.add_separator();
  }
  std::cout << tradeoff;

  std::cout << "\nPaging policy under the GSM-style LA-crossing report "
               "policy:\n\n";
  support::TextTable policies({"paging policy", "pages/call", "rounds/call",
                               "total cost"});
  policies.set_align(0, support::Align::kLeft);
  const struct {
    const char* name;
    PagingPolicy policy;
  } pagings[] = {{"LA blanket (GSM/IS-41)", PagingPolicy::kBlanketArea},
                 {"greedy Fig. 1", PagingPolicy::kGreedy},
                 {"adaptive Sec. 5", PagingPolicy::kAdaptive}};
  double blanket_pages = 0.0;
  double greedy_pages = 0.0;
  for (const auto& [name, policy] : pagings) {
    cellular::SimConfig config = base_config();
    config.paging_policy = policy;
    const cellular::SimReport report = cellular::run_simulation(config);
    if (policy == PagingPolicy::kBlanketArea) {
      blanket_pages = report.pages_per_call.mean();
    }
    if (policy == PagingPolicy::kGreedy) {
      greedy_pages = report.pages_per_call.mean();
    }
    policies.add_row({
        name,
        support::TextTable::fmt(report.pages_per_call.mean(), 2),
        support::TextTable::fmt(report.rounds_per_call.mean(), 2),
        support::TextTable::fmt(report.wireless_cost(1.0, 1.0), 0),
    });
  }
  std::cout << policies;
  const bool greedy_wins = greedy_pages < blanket_pages;
  std::cout << "\ngreedy pages less than the GSM blanket: "
            << (greedy_wins ? "YES" : "NO (BUG)") << "\n";
  return greedy_wins ? 0 : 1;
}
