// Experiment E15 — cost and determinism of the observability layer.
//
// The metrics registry (support/metrics.h) and span tracer
// (support/trace.h) are only acceptable if they are effectively free on
// the hot path and change nothing about simulation results. This harness
// measures and gates both claims, and emits BENCH_E15.json so the
// overhead trajectory is recorded run over run:
//
//   * locate() throughput on the E13 steady-profile workload, three
//     ways: uninstrumented, with every ServiceMetrics handle bound to a
//     live registry, and with metrics + a span Tracer attached. The
//     sides are interleaved (round-robin, best-of-N per side) so a
//     background hiccup on a small container cannot masquerade as
//     instrument overhead. Gate: metric updates cost <= 250 ns/call
//     (absolute, derived from the off/on throughput difference — a
//     RATIO gate would punish every speedup of the locate path itself,
//     as E18's batching did by 4x; the ratio is still recorded). The
//     tracing side is reported, not gated — spans pay two clock reads
//     each and are opt-in per deployment.
//   * snapshot-merge determinism: run_simulation_batch with
//     collect_metrics on, at 1, 2 and N threads; the merged aggregate
//     registry must serialize to BIT-IDENTICAL JSON for every thread
//     count (the simulator drives all metrics off the virtual clock and
//     merges in replication order, so this is exact, not approximate).
//     This gate is unconditional, like E13/E14's determinism gates.
//
// Flags (shared bench set): --smoke, --threads N (0 = hardware),
// --out FILE (default BENCH_E15.json).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cellular/simulator.h"
#include "cellular/workload.h"
#include "prob/rng.h"
#include "support/cli.h"
#include "support/metrics.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace {

using namespace confcall;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Which observability hooks a timing side binds.
enum class Side { kOff, kMetrics, kMetricsAndTrace };

/// One timed pass of the E13 steady-profile locate workload with the
/// given instrumentation bound. Returns locates per second. Every side
/// runs the identical call sequence (same seed, same users), so the only
/// difference is the instrumentation itself.
double run_side(Side side, bool smoke, std::size_t* calls_out) {
  const cellular::GridTopology grid(12, 12, true,
                                    cellular::Neighborhood::kVonNeumann);
  const cellular::LocationAreas areas =
      cellular::LocationAreas::tiles(grid, 3, 3);
  const cellular::MarkovMobility mobility(grid, 0.9);

  support::MetricRegistry registry;
  support::Tracer tracer(/*capacity=*/4096);

  cellular::LocationService::Config config;
  config.profile_kind = cellular::ProfileKind::kStationary;
  config.max_paging_rounds = 3;
  config.enable_plan_cache = true;
  if (side != Side::kOff) {
    config.metrics = cellular::ServiceMetrics::create(registry);
  }
  if (side == Side::kMetricsAndTrace) {
    config.tracer = &tracer;
  }

  prob::Rng rng(1313);
  std::vector<cellular::CellId> cells(96);
  for (auto& cell : cells) {
    cell = static_cast<cellular::CellId>(rng.next_below(grid.num_cells()));
  }
  cellular::LocationService service(grid, areas, mobility, config, cells);

  const std::size_t n = smoke ? 2000 : 20000;
  const auto loop_start = Clock::now();
  for (std::size_t t = 0; t < n; ++t) {
    cellular::UserId users[3];
    cellular::CellId truth[3];
    for (std::size_t i = 0; i < 3; ++i) {
      users[i] =
          static_cast<cellular::UserId>(i * 32 + rng.next_below(32));
      truth[i] = cells[users[i]];
    }
    (void)service.locate(users, truth, rng);
  }
  const double elapsed = seconds_since(loop_start);
  *calls_out = n;
  return elapsed > 0.0 ? static_cast<double>(n) / elapsed : 0.0;
}

/// Scenario for the snapshot-determinism sweep: the E14 overloaded
/// deployment (admission + deadlines + resilient planner chain) so every
/// metric family — locate, planner, admission — is exercised, with
/// collect_metrics on.
cellular::SimConfig metrics_batch_config(bool smoke) {
  cellular::SimConfig config =
      cellular::overloaded_urban_scenario(15).config;
  config.steps = smoke ? 300 : 1200;
  config.warmup_steps = 50;
  config.collect_metrics = true;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  support::BenchFlags flags;
  try {
    flags = support::parse_bench_flags(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "bench_e15_observability: " << error.what() << "\n";
    return 2;
  }
  const bool smoke = flags.smoke;
  const std::size_t hw = support::resolve_threads(0);
  const std::size_t wide = flags.threads != 0 ? flags.threads : 8;
  const std::string out_path =
      flags.out.empty() ? "BENCH_E15.json" : flags.out;
  std::cout << "E15: observability layer overhead and determinism"
            << (smoke ? " (smoke)" : "") << " — hardware threads: " << hw
            << "\n";

  // ---- 1. Overhead: interleaved best-of-N per side. Taking the best
  // (not the mean) of interleaved passes is the standard defence against
  // one-sided interference on shared machines: any external slowdown
  // inflates SOME passes of EVERY side, and the best pass of each side
  // approaches that side's true cost.
  const int passes = 3;
  std::size_t calls = 0;
  double best_off = 0.0, best_metrics = 0.0, best_traced = 0.0;
  for (int pass = 0; pass < passes; ++pass) {
    best_off = std::max(best_off, run_side(Side::kOff, smoke, &calls));
    best_metrics =
        std::max(best_metrics, run_side(Side::kMetrics, smoke, &calls));
    best_traced = std::max(
        best_traced, run_side(Side::kMetricsAndTrace, smoke, &calls));
  }
  const double metrics_ratio =
      best_off > 0.0 ? best_metrics / best_off : 0.0;
  const double traced_ratio =
      best_off > 0.0 ? best_traced / best_off : 0.0;
  // The gate is the instrumentation's ABSOLUTE cost per call, not the
  // throughput ratio: a ratio gate punishes every speedup of the
  // protected path (E18's batched/SoA locate cut the call from ~2 us
  // to ~0.5 us, which quadruples the same ~0.1 us of metric work as a
  // fraction). The ratio stays recorded for the trajectory.
  const double metrics_overhead_us_per_call =
      best_off > 0.0 && best_metrics > 0.0
          ? 1e6 * (1.0 / best_metrics - 1.0 / best_off)
          : 1e9;
  const bool overhead_ok = metrics_overhead_us_per_call <= 0.25;

  // ---- 2. Snapshot-merge determinism across thread counts.
  const cellular::SimConfig base = metrics_batch_config(smoke);
  const std::size_t reps = 8;
  bool snapshots_identical = true;
  std::string reference_json;
  double t1_sec = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, wide}) {
    const auto batch_start = Clock::now();
    const cellular::SimBatchReport batch =
        cellular::run_simulation_batch(base, reps, threads);
    if (threads == 1) t1_sec = seconds_since(batch_start);
    const std::string json = support::to_json(batch.aggregate.metrics);
    if (reference_json.empty()) {
      reference_json = json;
      if (batch.aggregate.metrics.empty()) snapshots_identical = false;
    } else {
      snapshots_identical &= json == reference_json;
    }
  }

  // ---- Report.
  support::TextTable table({"metric", "value"});
  table.add_row({"locates/sec (off)",
                 support::TextTable::fmt(best_off, 0)});
  table.add_row({"locates/sec (metrics)",
                 support::TextTable::fmt(best_metrics, 0)});
  table.add_row({"locates/sec (metrics+trace)",
                 support::TextTable::fmt(best_traced, 0)});
  table.add_row({"metrics throughput ratio",
                 support::TextTable::fmt(100.0 * metrics_ratio, 2) + "%"});
  table.add_row({"metrics+trace ratio",
                 support::TextTable::fmt(100.0 * traced_ratio, 2) + "%"});
  table.add_row(
      {"metrics overhead/call",
       support::TextTable::fmt(1000.0 * metrics_overhead_us_per_call, 0) +
           " ns (gate <= 250)"});
  table.add_row({"snapshot thread-invariant",
                 snapshots_identical ? "yes" : "NO"});
  std::cout << "\n" << table;

  const bool ok = overhead_ok && snapshots_identical;
  std::cout << "\ninvariants (metrics cost <= 250 ns/call over "
            << "metrics-off, merged snapshots bit-identical at 1/2/"
            << wide << " threads): " << (ok ? "PASS" : "FAIL (BUG)")
            << "\n";

  // ---- Machine-readable trajectory record.
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"experiment\": \"E15\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"locate_calls_per_side\": " << calls << ",\n"
       << "  \"overhead\": {\n"
       << "    \"locates_per_sec_off\": " << best_off << ",\n"
       << "    \"locates_per_sec_metrics\": " << best_metrics << ",\n"
       << "    \"locates_per_sec_traced\": " << best_traced << ",\n"
       << "    \"metrics_throughput_ratio\": " << metrics_ratio << ",\n"
       << "    \"traced_throughput_ratio\": " << traced_ratio << ",\n"
       << "    \"metrics_overhead_us_per_call\": "
       << metrics_overhead_us_per_call << "\n"
       << "  },\n"
       << "  \"determinism\": {\n"
       << "    \"batch_t1_sec\": " << t1_sec << ",\n"
       << "    \"snapshots_bit_identical\": "
       << (snapshots_identical ? "true" : "false") << "\n  },\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";

  return ok ? 0 : 1;
}
