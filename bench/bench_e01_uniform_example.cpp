// Experiment E1 — the Section 1.1 worked example.
//
// Paper claim: for one uniformly distributed device over c cells (c even)
// and a delay budget of d = 2, the optimal strategy pages half the cells
// per round and achieves expected paging 3c/4 — a c/4 improvement over the
// GSM MAP / IS-41 blanket.
//
// This harness sweeps c, plans with the library, and prints planned vs
// closed-form values, plus the d = 2 optimal group split.
#include <cstdio>
#include <iostream>

#include "core/evaluator.h"
#include "core/greedy.h"
#include "core/single_user.h"
#include "prob/rng.h"
#include "support/table.h"

int main() {
  using namespace confcall;

  std::cout << "E1: uniform single device, d = 2 (paper Section 1.1: EP = "
               "3c/4, saving c/4)\n\n";
  support::TextTable table({"c", "blanket (d=1)", "planned EP", "3c/4",
                            "first group", "saving", "simulated EP"});
  bool all_match = true;
  for (const std::size_t c : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    const core::Instance instance = core::Instance::uniform(1, c);
    const core::PlanResult plan = core::plan_greedy(instance, 2);
    const double closed_form = 3.0 * static_cast<double>(c) / 4.0;
    prob::Rng rng(c);
    const auto sim =
        core::monte_carlo_paging(instance, plan.strategy, 20000, rng);
    all_match &= std::abs(plan.expected_paging - closed_form) < 1e-6;
    table.add_row({
        support::TextTable::fmt(c),
        support::TextTable::fmt(static_cast<double>(c), 0),
        support::TextTable::fmt(plan.expected_paging, 2),
        support::TextTable::fmt(closed_form, 2),
        support::TextTable::fmt(plan.group_sizes[0]),
        support::TextTable::fmt(static_cast<double>(c) / 4.0, 2),
        support::TextTable::fmt(sim.mean, 2),
    });
  }
  std::cout << table;
  std::cout << "\nplanned EP == 3c/4 for every c: "
            << (all_match ? "YES (matches paper)" : "NO (MISMATCH)") << "\n";
  return all_match ? 0 : 1;
}
