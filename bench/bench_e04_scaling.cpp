// Experiment E4 — running time of the Fig. 1 planner.
//
// Paper claim (Theorem 4.8): the approximation strategy is found in
// O(c(m + dc)) time and O(m + dc) space. With m and d fixed the cost is
// quadratic in c; with c and m fixed it is linear in d; with c and d fixed
// it is linear in m.
//
// google-benchmark harness with asymptotic-complexity fits for each sweep.
#include <benchmark/benchmark.h>

#include "core/greedy.h"
#include "prob/distribution.h"
#include "prob/rng.h"

namespace {

using namespace confcall;

core::Instance make_instance(std::size_t m, std::size_t c,
                             std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<prob::ProbabilityVector> rows;
  rows.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    rows.push_back(prob::dirichlet_vector(c, 1.0, rng));
  }
  return core::Instance::from_rows(rows);
}

void BM_PlanGreedy_SweepCells(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  const core::Instance instance = make_instance(4, c, c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::plan_greedy(instance, 8));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(c));
}
BENCHMARK(BM_PlanGreedy_SweepCells)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Complexity(benchmark::oNSquared);

void BM_PlanGreedy_SweepRounds(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const core::Instance instance = make_instance(4, 512, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::plan_greedy(instance, d));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(d));
}
BENCHMARK(BM_PlanGreedy_SweepRounds)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity(benchmark::oN);

void BM_PlanGreedy_SweepDevices(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const core::Instance instance = make_instance(m, 256, m);
  // d = 2 keeps the dc^2 term small so the mc term is visible.
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::plan_greedy(instance, 2));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}
BENCHMARK(BM_PlanGreedy_SweepDevices)
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Complexity(benchmark::oN);

// The prefix stop-probability table is the O(mc) term of Theorem 4.8;
// measured alone it must stay linear in c (flat column layout, one
// compensated accumulation pass — no per-entry recompute).
void BM_StopByPrefix(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  const core::Instance instance = make_instance(8, c, c + 5);
  const auto order = core::greedy_cell_order(instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::stop_by_prefix(instance, order, core::Objective::all_of()));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(c));
}
BENCHMARK(BM_StopByPrefix)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Complexity(benchmark::oN);

// The DP dominates end-to-end planning; measure it in isolation too.
void BM_DpOverOrder(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  const core::Instance instance = make_instance(2, c, c + 9);
  const auto order = core::greedy_cell_order(instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::plan_dp_over_order(instance, order, 4));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(c));
}
BENCHMARK(BM_DpOverOrder)
    ->RangeMultiplier(2)
    ->Range(64, 2048)
    ->Complexity(benchmark::oNSquared);

}  // namespace

BENCHMARK_MAIN();
