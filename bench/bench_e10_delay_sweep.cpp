// Experiment E10 — the delay-constraint sweep (Section 1.2's model knob).
//
// The whole point of the model is trading search delay d against expected
// paging: d = 1 is the blanket, d = c the fully sequential search. This
// harness sweeps d over four profile families and three device counts,
// verifies monotonicity (more delay never pages more), cross-checks the
// analytic EP by simulation at selected points, and reports where the
// curve flattens (the useful delay budget).
#include <cstdio>
#include <iostream>

#include "core/evaluator.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "support/table.h"

namespace {

using namespace confcall;

core::Instance make_instance(int family, std::size_t m, std::size_t c,
                             std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<prob::ProbabilityVector> rows;
  for (std::size_t i = 0; i < m; ++i) {
    switch (family) {
      case 0:
        rows.push_back(prob::uniform_vector(c));
        break;
      case 1:
        rows.push_back(prob::zipf_vector(c, 1.2, rng));
        break;
      case 2:
        rows.push_back(prob::geometric_vector(c, 0.82, rng));
        break;
      default:
        rows.push_back(prob::dirichlet_vector(c, 0.4, rng));
        break;
    }
  }
  return core::Instance::from_rows(rows);
}

const char* kFamilies[] = {"uniform", "zipf(1.2)", "geom(0.82)",
                           "dirichlet(0.4)"};

}  // namespace

int main() {
  constexpr std::size_t kCells = 48;
  std::cout << "E10: expected paging vs delay budget d (c = " << kCells
            << ")\n";

  bool monotone = true;
  for (const std::size_t m : {1u, 2u, 4u}) {
    std::printf("\nm = %zu devices:\n\n", m);
    support::TextTable table({"d", kFamilies[0], kFamilies[1], kFamilies[2],
                              kFamilies[3]});
    std::vector<core::Instance> instances;
    for (int family = 0; family < 4; ++family) {
      instances.push_back(make_instance(family, m, kCells, 7 * m + family));
    }
    std::vector<double> previous(4, 1e300);
    for (const std::size_t d : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u,
                                48u}) {
      std::vector<std::string> row = {support::TextTable::fmt(d)};
      for (int family = 0; family < 4; ++family) {
        const double ep =
            core::plan_greedy(instances[family], d).expected_paging;
        monotone &= ep <= previous[family] + 1e-9;
        previous[family] = ep;
        row.push_back(support::TextTable::fmt(ep, 2));
      }
      table.add_row(std::move(row));
    }
    std::cout << table;
  }

  // Spot-check the analytic numbers by executing the strategies.
  std::cout << "\nsimulation cross-check (m = 2, zipf, 20000 trials):\n\n";
  support::TextTable check({"d", "analytic EP", "simulated EP", "+/-"});
  const core::Instance instance = make_instance(1, 2, kCells, 7 * 2 + 1);
  for (const std::size_t d : {2u, 4u, 8u}) {
    const core::PlanResult plan = core::plan_greedy(instance, d);
    prob::Rng rng(d);
    const auto sim =
        core::monte_carlo_paging(instance, plan.strategy, 20000, rng);
    check.add_row({
        support::TextTable::fmt(d),
        support::TextTable::fmt(plan.expected_paging, 3),
        support::TextTable::fmt(sim.mean, 3),
        support::TextTable::fmt(2 * sim.std_error, 3),
    });
  }
  std::cout << check;

  std::cout << "\nEP non-increasing in d everywhere: "
            << (monotone ? "YES" : "NO (BUG)") << "\n"
            << "Reading: most of the paging saving arrives by d ~ 4-8; "
               "skewed profiles\nsaturate faster (the paper's motivation "
               "for small delay budgets).\n";
  return monotone ? 0 : 1;
}
