// Ablation A4 — the adaptivity gap and the Section 5 open problem,
// measured exactly.
//
// Paper (Section 5): the performance ratio of the conditional re-planning
// adaptive heuristic "stands as an open problem", and even the complexity
// of OPTIMAL adaptive search is unresolved. With solve_optimal_adaptive
// (exact value iteration over information states) we can measure, per
// instance:
//
//   adaptivity gap   = oblivious OPT / adaptive OPT   (>= 1)
//   heuristic ratio  = Section-5 heuristic adaptive / adaptive OPT (>= 1)
//
// Both are exact (no sampling). Observations worth recording: at d = 2
// both ratios are 1 (any 2-round adaptive strategy is oblivious — the
// paper says so); the gap opens at d >= 3 and grows with m and skew; the
// Section 5 heuristic tracks the adaptive optimum closely.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/adaptive.h"
#include "core/adaptive_optimal.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "prob/stats.h"
#include "support/table.h"

namespace {

using namespace confcall;

core::Instance make_instance(int family, std::size_t m, std::size_t c,
                             std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<prob::ProbabilityVector> rows;
  for (std::size_t i = 0; i < m; ++i) {
    switch (family) {
      case 0:
        rows.push_back(prob::dirichlet_vector(c, 1.0, rng));
        break;
      case 1:
        rows.push_back(prob::dirichlet_vector(c, 0.3, rng));
        break;
      default:
        rows.push_back(prob::zipf_vector(c, 1.5, rng));
        break;
    }
  }
  return core::Instance::from_rows(rows);
}

const char* kFamilies[] = {"dirichlet(1.0)", "dirichlet(0.3)", "zipf(1.5)"};

}  // namespace

int main() {
  constexpr std::size_t kCells = 8;
  constexpr int kInstances = 10;
  std::cout << "A4: exact adaptivity gap (c = " << kCells
            << ", value-iterated adaptive optimum)\n\n";

  support::TextTable table({"family", "m", "d", "oblivious OPT",
                            "adaptive OPT", "max gap",
                            "Sec.5 heuristic worst ratio"});
  table.set_align(0, support::Align::kLeft);
  bool d2_gap_zero = true;
  for (int family = 0; family < 3; ++family) {
    for (const std::size_t m : {2u, 3u}) {
      for (const std::size_t d : {2u, 3u, 4u}) {
        prob::RunningStats oblivious_s, adaptive_s;
        double max_gap = 1.0;
        double worst_heuristic = 1.0;
        for (int k = 0; k < kInstances; ++k) {
          const auto instance = make_instance(
              family, m, kCells, 900 + 100 * family + 10 * m + k);
          const double oblivious =
              core::solve_branch_and_bound(instance, d).expected_paging;
          const auto adaptive = core::solve_optimal_adaptive(instance, d);
          const double heuristic =
              core::adaptive_expected_paging_exact(instance, d);
          oblivious_s.add(oblivious);
          adaptive_s.add(adaptive.expected_paging);
          max_gap = std::max(max_gap, oblivious / adaptive.expected_paging);
          worst_heuristic = std::max(
              worst_heuristic, heuristic / adaptive.expected_paging);
        }
        if (d == 2 && max_gap > 1.0 + 1e-9) d2_gap_zero = false;
        table.add_row({
            kFamilies[family],
            support::TextTable::fmt(m),
            support::TextTable::fmt(d),
            support::TextTable::fmt(oblivious_s.mean(), 4),
            support::TextTable::fmt(adaptive_s.mean(), 4),
            support::TextTable::fmt(max_gap, 5),
            support::TextTable::fmt(worst_heuristic, 5),
        });
      }
    }
  }
  std::cout << table;
  std::cout << "\nd = 2: oblivious OPT == adaptive OPT on every instance: "
            << (d2_gap_zero
                    ? "YES (matches the paper's 'any adaptive d=2 strategy "
                      "is oblivious')"
                    : "NO (UNEXPECTED)")
            << "\nReading: the adaptivity gap exists but is small; the "
               "Section 5 heuristic stays\nclose to the true adaptive "
               "optimum — empirical support for conjecturing a small\n"
               "constant ratio for the open problem.\n";
  return d2_gap_zero ? 0 : 1;
}
