// Experiment E18 — the batched, vectorized locate hot path.
//
// PR7 restructured the evaluator and Fig.-1 DP inner loops onto the
// instance's column-major probability mirror (structure-of-arrays Kahan
// lanes that auto-vectorize without reassociating any device's
// compensated sum), moved per-call scratch onto a thread-local arena,
// and exposed batching end to end through
// LocationService::locate_many. This harness gates the three claims
// that make those changes safe to keep, and emits BENCH_E18.json:
//
//   * Bit-identity of the SoA evaluator: expected_paging /
//     stop_by_round against their *_scalar reference twins
//     (vector<prob::KahanSum>) across a family of instances
//     (uniform / Zipf / peaked / clustered rows; m up to 12, c up to
//     144), greedy strategies and all three objectives. Equality is
//     bitwise (std::bit_cast), not epsilon.
//   * Batch transparency: locate_many over a pre-generated request
//     stream must produce LocateOutcomes field-identical to N single
//     locate() calls on an identically seeded twin service — plan
//     cache on AND off.
//   * Batch throughput: locates/sec through locate_many at batch size
//     8 must clear 2x the E13 single-core baseline of 484k locates/sec
//     (the figure recorded when the scalar path shipped). The ratio
//     batch_locates_per_sec_ratio = batch8 / 484000 is the metric CI
//     gates strictly run-over-run.
//   * Thread invariance of the batched path: run_simulation_batch
//     (whose per-call site now routes through locate_many) must
//     produce bit-identical aggregate SimReports at pool sizes 1/2/8.
//
// Flags (shared bench set): --smoke, --threads N (unused, accepted for
// uniformity), --out FILE (default BENCH_E18.json).
#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cellular/service.h"
#include "cellular/simulator.h"
#include "cellular/topology.h"
#include "core/evaluator.h"
#include "core/greedy.h"
#include "core/instance.h"
#include "prob/distribution.h"
#include "prob/rng.h"
#include "support/cli.h"
#include "support/metrics.h"
#include "support/table.h"

namespace {

using namespace confcall;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The baseline the ratio gate divides by: single-core locates/sec
/// measured by E13 when the scalar evaluator path shipped.
constexpr double kBaselineLocatesPerSec = 484000.0;

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// ---- 1. SoA vs scalar evaluator bit-identity. -------------------------

/// One instance family entry: m devices, c cells, and a row generator.
std::vector<core::Instance> equivalence_instances(prob::Rng& rng) {
  std::vector<core::Instance> instances;
  const std::array<std::pair<std::size_t, std::size_t>, 4> shapes{{
      {2, 9}, {3, 16}, {6, 36}, {12, 144}}};
  for (const auto& [m, c] : shapes) {
    instances.push_back(core::Instance::uniform(m, c));
    std::vector<prob::ProbabilityVector> zipf, mixed;
    for (std::size_t i = 0; i < m; ++i) {
      zipf.push_back(prob::zipf_vector(c, 0.8, rng));
      switch (i % 3) {
        case 0: mixed.push_back(prob::peaked_vector(c, 0.6, rng)); break;
        case 1:
          mixed.push_back(prob::clustered_vector(c, (c + 3) / 4, rng));
          break;
        default: mixed.push_back(prob::geometric_vector(c, 0.5, rng));
      }
    }
    instances.push_back(core::Instance::from_rows(zipf));
    instances.push_back(core::Instance::from_rows(mixed));
  }
  return instances;
}

bool check_evaluator_bit_identity(std::size_t* cases_out) {
  prob::Rng rng(1807);
  bool identical = true;
  std::size_t cases = 0;
  for (const core::Instance& instance : equivalence_instances(rng)) {
    const std::size_t m = instance.num_devices();
    std::vector<core::Objective> objectives{core::Objective::all_of(),
                                            core::Objective::any_of()};
    if (m >= 2) objectives.push_back(core::Objective::k_of_m((m + 1) / 2));
    for (const std::size_t d : {std::size_t{2}, std::size_t{3}}) {
      for (const core::Objective& objective : objectives) {
        const core::PlanResult plan =
            core::plan_greedy(instance, d, objective);
        const double soa =
            core::expected_paging(instance, plan.strategy, objective);
        const double scalar = core::expected_paging_scalar(
            instance, plan.strategy, objective);
        identical = identical && bits_equal(soa, scalar);
        const std::vector<double> by_round_soa =
            core::stop_by_round(instance, plan.strategy, objective);
        const std::vector<double> by_round_scalar =
            core::stop_by_round_scalar(instance, plan.strategy, objective);
        identical =
            identical && by_round_soa.size() == by_round_scalar.size();
        for (std::size_t r = 0;
             identical && r < by_round_soa.size(); ++r) {
          identical = bits_equal(by_round_soa[r], by_round_scalar[r]);
        }
        ++cases;
      }
    }
  }
  *cases_out = cases;
  return identical;
}

// ---- 2/3. Locate harness on the E13 workload shape. -------------------

struct Harness {
  cellular::GridTopology grid{12, 12, true,
                              cellular::Neighborhood::kVonNeumann};
  cellular::LocationAreas areas = cellular::LocationAreas::tiles(grid, 3, 3);
  cellular::MarkovMobility mobility{grid, 0.9};
  prob::Rng rng{1313};
  std::vector<cellular::CellId> cells;
  cellular::LocationService service;

  Harness(support::MetricRegistry& registry, bool plan_cache)
      : cells(make_cells(rng, grid)),
        service(grid, areas, mobility, make_config(registry, plan_cache),
                cells) {}

  static std::vector<cellular::CellId> make_cells(
      prob::Rng& rng, const cellular::GridTopology& grid) {
    std::vector<cellular::CellId> cells(96);
    for (auto& cell : cells) {
      cell = static_cast<cellular::CellId>(rng.next_below(grid.num_cells()));
    }
    return cells;
  }

  static cellular::LocationService::Config make_config(
      support::MetricRegistry& registry, bool plan_cache) {
    cellular::LocationService::Config config;
    config.profile_kind = cellular::ProfileKind::kStationary;
    config.max_paging_rounds = 3;
    config.enable_plan_cache = plan_cache;
    config.metrics = cellular::ServiceMetrics::create(registry);
    return config;
  }
};

/// A pre-generated 3-user call (stable storage for LocateRequest spans).
struct CallFixture {
  std::array<cellular::UserId, 3> users;
  std::array<cellular::CellId, 3> truth;
};

std::vector<CallFixture> make_calls(const Harness& harness, std::size_t n,
                                    std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<CallFixture> calls(n);
  for (CallFixture& call : calls) {
    for (std::size_t i = 0; i < 3; ++i) {
      call.users[i] =
          static_cast<cellular::UserId>(i * 32 + rng.next_below(32));
      call.truth[i] = harness.cells[call.users[i]];
    }
  }
  return calls;
}

bool outcomes_identical(const cellular::LocationService::LocateOutcome& a,
                        const cellular::LocationService::LocateOutcome& b) {
  return a.cells_paged == b.cells_paged && a.rounds_used == b.rounds_used &&
         a.fallback_pages == b.fallback_pages &&
         a.missed_detections == b.missed_detections &&
         a.outage_pages == b.outage_pages &&
         a.dropped_rounds == b.dropped_rounds && a.retries == b.retries &&
         a.backoff_rounds == b.backoff_rounds &&
         a.forced_registrations == b.forced_registrations &&
         a.budget_exhausted == b.budget_exhausted &&
         a.degraded == b.degraded && a.abandoned == b.abandoned &&
         a.deadline_limited == b.deadline_limited;
}

/// Same request stream through N single locate() calls on one service
/// and through locate_many (batches of `batch`) on an identically
/// seeded twin: every outcome must match field for field.
bool check_batch_transparency(bool plan_cache, std::size_t n_calls,
                              std::size_t batch) {
  support::MetricRegistry registry_single, registry_batched;
  Harness single(registry_single, plan_cache);
  Harness batched(registry_batched, plan_cache);
  const std::vector<CallFixture> calls = make_calls(single, n_calls, 77);

  std::vector<cellular::LocationService::LocateOutcome> single_outcomes;
  single_outcomes.reserve(n_calls);
  for (const CallFixture& call : calls) {
    single_outcomes.push_back(
        single.service.locate(call.users, call.truth, single.rng));
  }

  std::vector<cellular::LocationService::LocateOutcome> batched_outcomes;
  batched_outcomes.reserve(n_calls);
  std::vector<cellular::LocationService::LocateRequest> requests;
  for (std::size_t begin = 0; begin < n_calls; begin += batch) {
    const std::size_t end = std::min(begin + batch, n_calls);
    requests.clear();
    for (std::size_t i = begin; i < end; ++i) {
      requests.push_back({calls[i].users, calls[i].truth, {}});
    }
    const std::vector<cellular::LocationService::LocateOutcome> chunk =
        batched.service.locate_many(requests, batched.rng);
    batched_outcomes.insert(batched_outcomes.end(), chunk.begin(),
                            chunk.end());
  }

  if (single_outcomes.size() != batched_outcomes.size()) return false;
  for (std::size_t i = 0; i < single_outcomes.size(); ++i) {
    if (!outcomes_identical(single_outcomes[i], batched_outcomes[i])) {
      return false;
    }
  }
  return true;
}

/// Locates/sec through locate_many at a fixed batch size. The request
/// stream is regenerated per batch from the harness rng (same per-call
/// work as E13's single-call loop: two rng draws + fixture writes).
double run_batched(std::size_t n_calls, std::size_t batch) {
  support::MetricRegistry registry;
  Harness harness(registry, /*plan_cache=*/true);
  std::vector<CallFixture> fixtures(batch);
  std::vector<cellular::LocationService::LocateRequest> requests(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    requests[b] = {fixtures[b].users, fixtures[b].truth, {}};
  }
  std::size_t done = 0;
  const auto start = Clock::now();
  while (done < n_calls) {
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t i = 0; i < 3; ++i) {
        fixtures[b].users[i] = static_cast<cellular::UserId>(
            i * 32 + harness.rng.next_below(32));
        fixtures[b].truth[i] = harness.cells[fixtures[b].users[i]];
      }
    }
    (void)harness.service.locate_many(requests, harness.rng);
    done += batch;
  }
  const double elapsed = seconds_since(start);
  return elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
}

/// Single-call reference loop (the E13 shape).
double run_single(std::size_t n_calls) {
  support::MetricRegistry registry;
  Harness harness(registry, /*plan_cache=*/true);
  CallFixture fixture;
  const auto start = Clock::now();
  for (std::size_t t = 0; t < n_calls; ++t) {
    for (std::size_t i = 0; i < 3; ++i) {
      fixture.users[i] = static_cast<cellular::UserId>(
          i * 32 + harness.rng.next_below(32));
      fixture.truth[i] = harness.cells[fixture.users[i]];
    }
    (void)harness.service.locate(fixture.users, fixture.truth, harness.rng);
  }
  const double elapsed = seconds_since(start);
  return elapsed > 0.0 ? static_cast<double>(n_calls) / elapsed : 0.0;
}

// ---- 4. Thread invariance of the batched simulation path. -------------

bool sim_reports_identical(const cellular::SimReport& a,
                           const cellular::SimReport& b) {
  return a.steps == b.steps && a.calls_arrived == b.calls_arrived &&
         a.calls_served == b.calls_served &&
         a.calls_completed == b.calls_completed &&
         a.calls_shed == b.calls_shed &&
         a.reports_sent == b.reports_sent &&
         a.cells_paged_total == b.cells_paged_total &&
         a.fallback_pages == b.fallback_pages &&
         a.retries_total == b.retries_total &&
         a.calls_degraded == b.calls_degraded &&
         a.calls_abandoned == b.calls_abandoned &&
         a.forced_registrations == b.forced_registrations &&
         bits_equal(a.pages_per_call.mean(), b.pages_per_call.mean()) &&
         bits_equal(a.rounds_per_call.mean(), b.rounds_per_call.mean());
}

bool check_thread_invariance(bool smoke) {
  cellular::SimConfig config;
  config.grid_rows = 12;
  config.grid_cols = 12;
  config.la_tile_rows = 3;
  config.la_tile_cols = 3;
  config.num_users = 96;
  config.stay_probability = 0.9;
  config.call_rate = 0.9;
  config.group_min = 2;
  config.group_max = 4;
  config.max_paging_rounds = 3;
  config.profile_kind = cellular::ProfileKind::kStationary;
  config.steps = smoke ? 300 : 1200;
  config.warmup_steps = 50;
  config.seed = 13;
  const std::size_t replications = smoke ? 3 : 6;
  const cellular::SimBatchReport at1 =
      cellular::run_simulation_batch(config, replications, 1);
  const cellular::SimBatchReport at2 =
      cellular::run_simulation_batch(config, replications, 2);
  const cellular::SimBatchReport at8 =
      cellular::run_simulation_batch(config, replications, 8);
  return sim_reports_identical(at1.aggregate, at2.aggregate) &&
         sim_reports_identical(at1.aggregate, at8.aggregate);
}

}  // namespace

int main(int argc, char** argv) {
  support::BenchFlags flags;
  try {
    flags = support::parse_bench_flags(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "bench_e18_batch: " << error.what() << "\n";
    return 2;
  }
  const bool smoke = flags.smoke;
  const std::size_t hw = support::resolve_threads(0);
  const std::string out_path =
      flags.out.empty() ? "BENCH_E18.json" : flags.out;
  std::cout << "E18: batched locate hot path"
            << (smoke ? " (smoke)" : "") << " — hardware threads: " << hw
            << "\n";

  // ---- 1. Evaluator bit-identity (always gated).
  std::size_t evaluator_cases = 0;
  const bool evaluator_identical =
      check_evaluator_bit_identity(&evaluator_cases);

  // ---- 2. Batch transparency, cache on and off (always gated).
  const std::size_t transparency_calls = smoke ? 1000 : 5000;
  const bool transparent_cached =
      check_batch_transparency(true, transparency_calls, 8);
  const bool transparent_uncached =
      check_batch_transparency(false, transparency_calls, 8);

  // ---- 3. Throughput: single-call loop vs batched loops, best-of-3
  // interleaved passes per shape (same noise defence as E15/E16).
  const std::size_t n = smoke ? 20000 : 200000;
  double best_single = 0.0;
  double best_batch[3] = {0.0, 0.0, 0.0};  // batch 1 / 8 / 64
  constexpr std::size_t kBatchSizes[3] = {1, 8, 64};
  for (int pass = 0; pass < 3; ++pass) {
    best_single = std::max(best_single, run_single(n));
    for (std::size_t s = 0; s < 3; ++s) {
      best_batch[s] = std::max(best_batch[s], run_batched(n, kBatchSizes[s]));
    }
  }
  const double ratio = best_batch[1] / kBaselineLocatesPerSec;
  const bool throughput_ok = ratio >= 2.0;

  // ---- 4. Thread invariance of the batched simulation path.
  const bool threads_invariant = check_thread_invariance(smoke);

  // ---- Report.
  support::TextTable table({"metric", "value"});
  table.add_row({"evaluator bit-identity (" +
                     support::TextTable::fmt(evaluator_cases) + " cases)",
                 evaluator_identical ? "yes" : "NO"});
  table.add_row({"locate_many == N x locate (cache on)",
                 transparent_cached ? "yes" : "NO"});
  table.add_row({"locate_many == N x locate (cache off)",
                 transparent_uncached ? "yes" : "NO"});
  table.add_row(
      {"locates/sec (single)", support::TextTable::fmt(best_single, 0)});
  for (std::size_t s = 0; s < 3; ++s) {
    table.add_row({"locates/sec (batch " +
                       support::TextTable::fmt(kBatchSizes[s]) + ")",
                   support::TextTable::fmt(best_batch[s], 0)});
  }
  table.add_row({"batch8 / 484k baseline",
                 support::TextTable::fmt(ratio, 2) + "x (need >= 2.0x)"});
  table.add_row({"SimReport invariant @1/2/8 threads",
                 threads_invariant ? "yes" : "NO"});
  std::cout << "\n" << table;

  const bool ok = evaluator_identical && transparent_cached &&
                  transparent_uncached && throughput_ok && threads_invariant;
  std::cout << "\ninvariants (SoA evaluator bit-identical to scalar, "
            << "locate_many transparent, batch8 >= 2x the 484k baseline, "
            << "sim thread-invariant): " << (ok ? "PASS" : "FAIL (BUG)")
            << "\n";

  // ---- Machine-readable trajectory record.
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"experiment\": \"E18\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"baseline_locates_per_sec\": " << kBaselineLocatesPerSec
       << ",\n"
       << "  \"equivalence\": {\n"
       << "    \"evaluator_cases\": " << evaluator_cases << ",\n"
       << "    \"evaluator_bit_identical\": "
       << (evaluator_identical ? "true" : "false") << ",\n"
       << "    \"batch_transparent_cached\": "
       << (transparent_cached ? "true" : "false") << ",\n"
       << "    \"batch_transparent_uncached\": "
       << (transparent_uncached ? "true" : "false") << ",\n"
       << "    \"sim_thread_invariant_1_2_8\": "
       << (threads_invariant ? "true" : "false") << "\n  },\n"
       << "  \"throughput\": {\n"
       << "    \"locates_per_sec_single\": " << best_single << ",\n"
       << "    \"locates_per_sec_batch1\": " << best_batch[0] << ",\n"
       << "    \"locates_per_sec_batch8\": " << best_batch[1] << ",\n"
       << "    \"locates_per_sec_batch64\": " << best_batch[2] << "\n"
       << "  },\n"
       << "  \"batch_locates_per_sec_ratio\": " << ratio << ",\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";

  return ok ? 0 : 1;
}
