// Experiment E5 — the cost of exactness (Section 3 NP-hardness, observed).
//
// Paper claim (Lemma 3.2 / Theorem 3.8): the Conference Call problem is
// NP-hard already for m = 2, d = 2, via reduction from Quasipartition1.
// Observable consequences this harness measures:
//   (a) the exact solver's search grows exponentially with c on the
//       reduction instances (2^c subsets), while Fig. 1 stays polynomial;
//   (b) on solvable instances the exact optimum attains the closed-form
//       bound of Lemma 3.2, on unsolvable ones it stays strictly above —
//       i.e., solving the paging problem decides the partition problem;
//   (c) branch-and-bound prunes but cannot escape the exponential wall.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "core/exact.h"
#include "core/greedy.h"
#include "reduction/partition.h"
#include "reduction/reduce.h"
#include "support/table.h"

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace confcall;

  std::cout << "E5: exact search on Lemma 3.2 reduction instances "
               "(m=2, d=2)\n\n";

  support::TextTable table({"c", "subsets", "exact time (ms)",
                            "greedy time (ms)", "optimum", "closed form",
                            "attained", "partition"});
  bool equivalence_holds = true;
  for (const std::size_t c : {6u, 9u, 12u, 15u, 18u, 21u}) {
    const auto sizes =
        reduction::make_quasipartition1_yes_instance(c, 25, c);
    const bool partition = reduction::solve_quasipartition1(sizes).has_value();
    const auto reduction =
        reduction::reduce_quasipartition1_to_conference_call(sizes);
    const core::Instance instance = reduction.instance.to_double_instance();

    auto start = std::chrono::steady_clock::now();
    const auto exact = core::solve_exact_d2(instance);
    const double exact_ms = 1000.0 * seconds_since(start);

    start = std::chrono::steady_clock::now();
    const auto greedy = core::plan_greedy(instance, 2);
    const double greedy_ms = 1000.0 * seconds_since(start);

    const double bound = reduction.quasipartition_optimum.to_double();
    const bool attained = std::abs(exact.expected_paging - bound) < 1e-9;
    equivalence_holds &= attained == partition;

    table.add_row({
        support::TextTable::fmt(c),
        support::TextTable::fmt(exact.nodes_explored),
        support::TextTable::fmt(exact_ms, 3),
        support::TextTable::fmt(greedy_ms, 3),
        support::TextTable::fmt(exact.expected_paging, 6),
        support::TextTable::fmt(bound, 6),
        attained ? "yes" : "no",
        partition ? "yes" : "no",
    });
  }
  std::cout << table;

  std::cout << "\nUnsolvable instances (optimum must stay strictly above "
               "the bound):\n";
  support::TextTable no_table({"c", "optimum", "closed form", "gap"});
  for (const std::size_t c : {6u, 9u, 12u}) {
    std::vector<std::int64_t> sizes(c, 1);
    sizes[0] = 3 * static_cast<std::int64_t>(c);  // dominating size -> no
    if ((sizes[0] + static_cast<std::int64_t>(c) - 1) % 2 != 0) sizes[1] = 2;
    const auto reduction =
        reduction::reduce_quasipartition1_to_conference_call(sizes);
    const auto exact = core::solve_exact_d2_exact(reduction.instance);
    const auto gap =
        exact.expected_paging - reduction.quasipartition_optimum;
    equivalence_holds &= gap.signum() > 0;
    no_table.add_row({
        support::TextTable::fmt(c),
        exact.expected_paging.to_string(),
        reduction.quasipartition_optimum.to_string(),
        support::TextTable::fmt(gap.to_double(), 8),
    });
  }
  std::cout << no_table;

  std::cout << "\nBranch-and-bound vs full enumeration (d = 3, Dirichlet "
               "instances):\n";
  support::TextTable bnb_table(
      {"c", "enumeration nodes", "B&B nodes", "same optimum"});
  for (const std::size_t c : {8u, 10u, 12u}) {
    prob::Rng rng(c);
    std::vector<prob::ProbabilityVector> rows;
    for (int i = 0; i < 2; ++i) {
      rows.push_back(prob::dirichlet_vector(c, 0.3, rng));
    }
    const core::Instance instance = core::Instance::from_rows(rows);
    const auto plain = core::solve_exact(instance, 3);
    const auto bnb = core::solve_branch_and_bound(instance, 3);
    bnb_table.add_row({
        support::TextTable::fmt(c),
        support::TextTable::fmt(plain.nodes_explored),
        support::TextTable::fmt(bnb.nodes_explored),
        std::abs(plain.expected_paging - bnb.expected_paging) < 1e-9
            ? "yes"
            : "NO",
    });
  }
  std::cout << bnb_table;

  std::cout << "\noptimum attains bound <=> partition exists: "
            << (equivalence_holds ? "YES (matches Lemma 3.2)"
                                  : "NO (MISMATCH)")
            << "\n";
  return equivalence_holds ? 0 : 1;
}
