// Experiment E16 — cost and fidelity of the serving surface.
//
// PR5 turned tracing always-on (behind a deterministic 1-in-N sample)
// and put the registry behind a live HTTP scrape endpoint. Both are only
// acceptable if serving stays fast and the scrape tells the truth. This
// harness measures and gates three claims, and emits BENCH_E16.json:
//
//   * Sampled-tracing overhead: locate() throughput on the E15 workload
//     with metrics bound, untraced vs traced through a SamplingTracer at
//     1 in 64 (the serving daemon's default). Sides are interleaved,
//     best-of-N each, like E15. Gate: sampled-traced throughput >= 95%
//     of untraced — the always-on budget E15's full tracer (~71% of
//     untraced throughput, i.e. ~29% overhead) blows.
//   * Scrape fidelity: GET /metrics through the real HTTP server must be
//     BYTE-IDENTICAL to to_prometheus(registry.snapshot()) taken
//     in-process with no concurrent writers. The scrape is the same
//     snapshot, not a parallel bookkeeping path.
//   * Scrape latency under load: p99 of ~200 GET /metrics round-trips
//     while a background thread hammers locate() into the same registry.
//     Gate is deliberately loose (<= 250 ms) — it catches lock-ordering
//     accidents that would make scrapes block behind the hot path, not
//     container jitter.
//
// Flags (shared bench set): --smoke, --threads N (unused, accepted for
// uniformity), --out FILE (default BENCH_E16.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cellular/service.h"
#include "cellular/topology.h"
#include "prob/rng.h"
#include "support/cli.h"
#include "support/http.h"
#include "support/metrics.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace {

using namespace confcall;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr std::size_t kSampleEvery = 64;  // the serving daemon's default

/// A ready-to-locate service over the E15 grid with metrics bound and an
/// optional tracer attached, plus the state the locate loop needs.
struct Harness {
  cellular::GridTopology grid{12, 12, true,
                              cellular::Neighborhood::kVonNeumann};
  cellular::LocationAreas areas = cellular::LocationAreas::tiles(grid, 3, 3);
  cellular::MarkovMobility mobility{grid, 0.9};
  prob::Rng rng{1313};
  std::vector<cellular::CellId> cells;
  cellular::LocationService service;

  Harness(support::MetricRegistry& registry, support::Tracer* tracer)
      : cells(make_cells(rng, grid)),
        service(grid, areas, mobility, make_config(registry, tracer),
                cells) {}

  static std::vector<cellular::CellId> make_cells(
      prob::Rng& rng, const cellular::GridTopology& grid) {
    std::vector<cellular::CellId> cells(96);
    for (auto& cell : cells) {
      cell = static_cast<cellular::CellId>(rng.next_below(grid.num_cells()));
    }
    return cells;
  }

  static cellular::LocationService::Config make_config(
      support::MetricRegistry& registry, support::Tracer* tracer) {
    cellular::LocationService::Config config;
    config.profile_kind = cellular::ProfileKind::kStationary;
    config.max_paging_rounds = 3;
    config.enable_plan_cache = true;
    config.metrics = cellular::ServiceMetrics::create(registry);
    config.tracer = tracer;
    return config;
  }

  void locate_once() {
    cellular::UserId users[3];
    cellular::CellId truth[3];
    for (std::size_t i = 0; i < 3; ++i) {
      users[i] = static_cast<cellular::UserId>(i * 32 + rng.next_below(32));
      truth[i] = cells[users[i]];
    }
    (void)service.locate(users, truth, rng);
  }
};

/// One timed pass: locates per second with metrics bound, either
/// untraced or traced through a 1-in-kSampleEvery SamplingTracer.
double run_side(bool traced, bool smoke, std::size_t* calls_out) {
  support::MetricRegistry registry;
  support::SamplingTracer tracer(kSampleEvery, /*capacity=*/4096);
  Harness harness(registry, traced ? &tracer : nullptr);

  const std::size_t n = smoke ? 2000 : 20000;
  const auto loop_start = Clock::now();
  for (std::size_t t = 0; t < n; ++t) harness.locate_once();
  const double elapsed = seconds_since(loop_start);
  *calls_out = n;
  return elapsed > 0.0 ? static_cast<double>(n) / elapsed : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  support::BenchFlags flags;
  try {
    flags = support::parse_bench_flags(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "bench_e16_serving: " << error.what() << "\n";
    return 2;
  }
  const bool smoke = flags.smoke;
  const std::string out_path =
      flags.out.empty() ? "BENCH_E16.json" : flags.out;
  std::cout << "E16: serving surface — sampled tracing and live scrape"
            << (smoke ? " (smoke)" : "") << "\n";

  // ---- 1. Sampled-tracing overhead: interleaved best-of-N per side
  // (same defence against one-sided interference as E15).
  const int passes = 3;
  std::size_t calls = 0;
  double best_untraced = 0.0, best_sampled = 0.0;
  for (int pass = 0; pass < passes; ++pass) {
    best_untraced =
        std::max(best_untraced, run_side(false, smoke, &calls));
    best_sampled = std::max(best_sampled, run_side(true, smoke, &calls));
  }
  const double sampled_ratio =
      best_untraced > 0.0 ? best_sampled / best_untraced : 0.0;
  const bool overhead_ok = sampled_ratio >= 0.95;

  // ---- 2. Scrape fidelity: populate a registry, then compare the HTTP
  // scrape against the in-process render with no concurrent writers.
  bool scrape_identical = false;
  {
    support::MetricRegistry registry;
    support::SamplingTracer tracer(kSampleEvery, 4096);
    Harness harness(registry, &tracer);
    for (std::size_t t = 0; t < (smoke ? 500 : 5000); ++t) {
      harness.locate_once();
    }
    support::HttpServer server;  // ephemeral port, defaults
    support::install_observability_routes(server, &registry, &tracer);
    server.start();
    const support::HttpClientResponse scraped =
        support::http_get("127.0.0.1", server.port(), "/metrics");
    const std::string in_process =
        support::to_prometheus(registry.snapshot());
    scrape_identical = scraped.status == 200 && scraped.body == in_process;
    server.stop();
  }

  // ---- 3. Scrape latency under load: a writer thread hammers locate()
  // into the registry while we time GET /metrics round-trips.
  double p50_ms = 0.0, p99_ms = 0.0;
  {
    support::MetricRegistry registry;
    support::SamplingTracer tracer(kSampleEvery, 4096);
    Harness harness(registry, &tracer);
    support::HttpServer server;
    support::install_observability_routes(server, &registry, &tracer);
    server.start();
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      while (!stop.load(std::memory_order_relaxed)) harness.locate_once();
    });
    const std::size_t scrapes = smoke ? 50 : 200;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(scrapes);
    for (std::size_t i = 0; i < scrapes; ++i) {
      const auto start = Clock::now();
      const support::HttpClientResponse response =
          support::http_get("127.0.0.1", server.port(), "/metrics");
      if (response.status == 200) {
        latencies_ms.push_back(seconds_since(start) * 1000.0);
      }
    }
    stop.store(true);
    writer.join();
    server.stop();
    std::sort(latencies_ms.begin(), latencies_ms.end());
    if (!latencies_ms.empty()) {
      p50_ms = latencies_ms[latencies_ms.size() / 2];
      p99_ms = latencies_ms[(latencies_ms.size() * 99) / 100];
    }
  }
  const bool latency_ok = p99_ms > 0.0 && p99_ms <= 250.0;

  // ---- Report.
  support::TextTable table({"metric", "value"});
  table.add_row({"locates/sec (metrics, untraced)",
                 support::TextTable::fmt(best_untraced, 0)});
  table.add_row({"locates/sec (metrics, sampled 1/" +
                     support::TextTable::fmt(kSampleEvery) + ")",
                 support::TextTable::fmt(best_sampled, 0)});
  table.add_row({"sampled-trace throughput ratio",
                 support::TextTable::fmt(100.0 * sampled_ratio, 2) + "%"});
  table.add_row({"scrape == in-process snapshot",
                 scrape_identical ? "yes" : "NO"});
  table.add_row({"scrape p50 under load",
                 support::TextTable::fmt(p50_ms, 2) + " ms"});
  table.add_row({"scrape p99 under load",
                 support::TextTable::fmt(p99_ms, 2) + " ms"});
  std::cout << "\n" << table;

  const bool ok = overhead_ok && scrape_identical && latency_ok;
  std::cout << "\ninvariants (sampled tracing >= 95% of untraced, scrape "
            << "byte-identical to the in-process snapshot, scrape p99 <= "
            << "250 ms under load): " << (ok ? "PASS" : "FAIL (BUG)")
            << "\n";

  // ---- Machine-readable trajectory record.
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"experiment\": \"E16\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"locate_calls_per_side\": " << calls << ",\n"
       << "  \"sample_every\": " << kSampleEvery << ",\n"
       << "  \"overhead\": {\n"
       << "    \"locates_per_sec_untraced\": " << best_untraced << ",\n"
       << "    \"locates_per_sec_sampled\": " << best_sampled << ",\n"
       << "    \"sampled_throughput_ratio\": " << sampled_ratio << "\n"
       << "  },\n"
       << "  \"scrape\": {\n"
       << "    \"byte_identical\": "
       << (scrape_identical ? "true" : "false") << ",\n"
       << "    \"p50_ms\": " << p50_ms << ",\n"
       << "    \"p99_ms\": " << p99_ms << "\n"
       << "  },\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";

  return ok ? 0 : 1;
}
