// Experiment E16 — cost and fidelity of the serving surface.
//
// PR5 turned tracing always-on (behind a deterministic 1-in-N sample)
// and put the registry behind a live HTTP scrape endpoint. Both are only
// acceptable if serving stays fast and the scrape tells the truth. This
// harness measures and gates three claims, and emits BENCH_E16.json:
//
//   * Sampled-tracing overhead: locate() throughput on the E15 workload
//     with metrics bound, untraced vs traced through a SamplingTracer at
//     1 in 64 (the serving daemon's default). Sides are interleaved,
//     best-of-N each, like E15. Gate: sampling costs <= 100 ns/call
//     (absolute, derived from the untraced/sampled throughput
//     difference; re-based from the original >= 95% ratio gate when
//     E18's batched/SoA hot path made the protected call ~4x faster —
//     the ratio is still recorded). The always-on budget E15's full
//     every-call tracer blows by an order of magnitude.
//   * Scrape fidelity: GET /metrics through the real HTTP server must be
//     BYTE-IDENTICAL to to_prometheus(registry.snapshot()) taken
//     in-process with no concurrent writers. The scrape is the same
//     snapshot, not a parallel bookkeeping path.
//   * Scrape latency under load: p99 of ~200 GET /metrics round-trips
//     while a background thread hammers locate() into the same registry.
//     Gate is deliberately loose (<= 250 ms) — it catches lock-ordering
//     accidents that would make scrapes block behind the hot path, not
//     container jitter.
//   * Batched POST /locate: arrays of 1/8/64 calls round-trip through
//     the locate_api wire format and LocationService::locate_many on
//     the same loaded server. Every response must be a 200 with one
//     admitted outcome per call, and the round-trips share the scrape
//     latency gate above.
//
// Flags (shared bench set): --smoke, --threads N (unused, accepted for
// uniformity), --out FILE (default BENCH_E16.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cellular/locate_api.h"
#include "cellular/service.h"
#include "cellular/topology.h"
#include "prob/rng.h"
#include "support/cli.h"
#include "support/http.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace {

using namespace confcall;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr std::size_t kSampleEvery = 64;  // the serving daemon's default

/// A ready-to-locate service over the E15 grid with metrics bound and an
/// optional tracer attached, plus the state the locate loop needs.
struct Harness {
  cellular::GridTopology grid{12, 12, true,
                              cellular::Neighborhood::kVonNeumann};
  cellular::LocationAreas areas = cellular::LocationAreas::tiles(grid, 3, 3);
  cellular::MarkovMobility mobility{grid, 0.9};
  prob::Rng rng{1313};
  std::vector<cellular::CellId> cells;
  cellular::LocationService service;

  Harness(support::MetricRegistry& registry, support::Tracer* tracer)
      : cells(make_cells(rng, grid)),
        service(grid, areas, mobility, make_config(registry, tracer),
                cells) {}

  static std::vector<cellular::CellId> make_cells(
      prob::Rng& rng, const cellular::GridTopology& grid) {
    std::vector<cellular::CellId> cells(96);
    for (auto& cell : cells) {
      cell = static_cast<cellular::CellId>(rng.next_below(grid.num_cells()));
    }
    return cells;
  }

  static cellular::LocationService::Config make_config(
      support::MetricRegistry& registry, support::Tracer* tracer) {
    cellular::LocationService::Config config;
    config.profile_kind = cellular::ProfileKind::kStationary;
    config.max_paging_rounds = 3;
    config.enable_plan_cache = true;
    config.metrics = cellular::ServiceMetrics::create(registry);
    config.tracer = tracer;
    return config;
  }

  void locate_once() {
    cellular::UserId users[3];
    cellular::CellId truth[3];
    for (std::size_t i = 0; i < 3; ++i) {
      users[i] = static_cast<cellular::UserId>(i * 32 + rng.next_below(32));
      truth[i] = cells[users[i]];
    }
    (void)service.locate(users, truth, rng);
  }
};

/// One timed pass: locates per second with metrics bound, either
/// untraced or traced through a 1-in-kSampleEvery SamplingTracer.
double run_side(bool traced, bool smoke, std::size_t* calls_out) {
  support::MetricRegistry registry;
  support::SamplingTracer tracer(kSampleEvery, /*capacity=*/4096);
  Harness harness(registry, traced ? &tracer : nullptr);

  const std::size_t n = smoke ? 2000 : 20000;
  const auto loop_start = Clock::now();
  for (std::size_t t = 0; t < n; ++t) harness.locate_once();
  const double elapsed = seconds_since(loop_start);
  *calls_out = n;
  return elapsed > 0.0 ? static_cast<double>(n) / elapsed : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  support::BenchFlags flags;
  try {
    flags = support::parse_bench_flags(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "bench_e16_serving: " << error.what() << "\n";
    return 2;
  }
  const bool smoke = flags.smoke;
  const std::string out_path =
      flags.out.empty() ? "BENCH_E16.json" : flags.out;
  std::cout << "E16: serving surface — sampled tracing and live scrape"
            << (smoke ? " (smoke)" : "") << "\n";

  // ---- 1. Sampled-tracing overhead: interleaved best-of-N per side
  // (same defence against one-sided interference as E15).
  const int passes = 3;
  std::size_t calls = 0;
  double best_untraced = 0.0, best_sampled = 0.0;
  for (int pass = 0; pass < passes; ++pass) {
    best_untraced =
        std::max(best_untraced, run_side(false, smoke, &calls));
    best_sampled = std::max(best_sampled, run_side(true, smoke, &calls));
  }
  const double sampled_ratio =
      best_untraced > 0.0 ? best_sampled / best_untraced : 0.0;
  // Absolute per-call cost, not a ratio — same rationale as E15's
  // metrics gate (a ratio gate punishes speedups of the locate path
  // itself and turns the margin into timing noise).
  const double sampling_overhead_us_per_call =
      best_untraced > 0.0 && best_sampled > 0.0
          ? 1e6 * (1.0 / best_sampled - 1.0 / best_untraced)
          : 1e9;
  const bool overhead_ok = sampling_overhead_us_per_call <= 0.10;

  // ---- 2. Scrape fidelity: populate a registry, then compare the HTTP
  // scrape against the in-process render with no concurrent writers.
  bool scrape_identical = false;
  {
    support::MetricRegistry registry;
    support::SamplingTracer tracer(kSampleEvery, 4096);
    Harness harness(registry, &tracer);
    for (std::size_t t = 0; t < (smoke ? 500 : 5000); ++t) {
      harness.locate_once();
    }
    support::HttpServer server;  // ephemeral port, defaults
    support::install_observability_routes(server, &registry, &tracer);
    server.start();
    const support::HttpClientResponse scraped =
        support::http_get("127.0.0.1", server.port(), "/metrics");
    const std::string in_process =
        support::to_prometheus(registry.snapshot());
    scrape_identical = scraped.status == 200 && scraped.body == in_process;
    server.stop();
  }

  // ---- 3. Scrape + batched-locate latency under load: a writer thread
  // hammers locate() into the registry while we time GET /metrics
  // round-trips AND batched POST /locate round-trips (arrays of 1/8/64
  // calls through cellular/locate_api + locate_many — the HTTP face of
  // the batch API). Both share the same p99 <= 250 ms gate.
  double p50_ms = 0.0, p99_ms = 0.0;
  constexpr std::size_t kBatchSizes[] = {1, 8, 64};
  bool batch_ok = true;
  double batch_p99_ms[3] = {0.0, 0.0, 0.0};
  {
    support::MetricRegistry registry;
    support::SamplingTracer tracer(kSampleEvery, 4096);
    Harness harness(registry, &tracer);
    // The service and its rng are shared between the writer thread and
    // the POST handler — same serialization as the serving daemon.
    std::mutex sim_mutex;
    support::HttpServer server;
    support::install_observability_routes(server, &registry, &tracer);
    server.handle("POST", "/locate", [&](const support::HttpRequest&
                                             request) {
      support::HttpResponse response;
      response.content_type = "application/json";
      cellular::LocateApiRequest api;
      try {
        api = cellular::parse_locate_body(request.body,
                                          harness.cells.size());
      } catch (const std::exception& error) {
        response.status = 400;
        response.body = "{\"error\": \"" +
                        support::json_escape(error.what()) + "\"}\n";
        return response;
      }
      std::lock_guard<std::mutex> lock(sim_mutex);
      std::vector<std::vector<cellular::CellId>> truths(api.calls.size());
      std::vector<cellular::LocationService::LocateRequest> requests;
      requests.reserve(api.calls.size());
      for (std::size_t i = 0; i < api.calls.size(); ++i) {
        const std::vector<cellular::UserId>& users = api.calls[i].users;
        truths[i].reserve(users.size());
        for (const cellular::UserId user : users) {
          truths[i].push_back(harness.cells[user]);
        }
        requests.push_back({users, truths[i], {}});
      }
      const std::vector<cellular::LocationService::LocateOutcome> outcomes =
          harness.service.locate_many(requests, harness.rng);
      std::string body = "[";
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (i > 0) body += ", ";
        cellular::append_outcome_json(body, true, requests[i].users.size(),
                                      &outcomes[i]);
      }
      body += "]\n";
      response.body = std::move(body);
      return response;
    });
    server.start();
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(sim_mutex);
        harness.locate_once();
      }
    });
    const std::size_t scrapes = smoke ? 50 : 200;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(scrapes);
    for (std::size_t i = 0; i < scrapes; ++i) {
      const auto start = Clock::now();
      const support::HttpClientResponse response =
          support::http_get("127.0.0.1", server.port(), "/metrics");
      if (response.status == 200) {
        latencies_ms.push_back(seconds_since(start) * 1000.0);
      }
    }
    // Batched POST /locate: call k of a batch pages users
    // {3k, 3k+1, 3k+2} mod 96 — distinct within each call, so the
    // request is always valid; the response must be a 200 with exactly
    // one admitted outcome per call.
    const std::size_t posts_per_size = smoke ? 5 : 20;
    for (std::size_t s = 0; s < 3; ++s) {
      const std::size_t batch = kBatchSizes[s];
      std::string body = "[";
      for (std::size_t k = 0; k < batch; ++k) {
        if (k > 0) body += ", ";
        body += "{\"users\": [" + std::to_string((3 * k) % 96) + ", " +
                std::to_string((3 * k + 1) % 96) + ", " +
                std::to_string((3 * k + 2) % 96) + "]}";
      }
      body += "]";
      std::vector<double> post_ms;
      post_ms.reserve(posts_per_size);
      for (std::size_t i = 0; i < posts_per_size; ++i) {
        const auto start = Clock::now();
        const support::HttpClientResponse response = support::http_request(
            "127.0.0.1", server.port(), "POST", "/locate", body);
        const double elapsed_ms = seconds_since(start) * 1000.0;
        bool round_trip_ok = response.status == 200;
        if (round_trip_ok) {
          try {
            const support::JsonValue parsed =
                support::JsonValue::parse(response.body);
            round_trip_ok = parsed.is_array() &&
                            parsed.as_array().size() == batch;
            for (const support::JsonValue& outcome : parsed.as_array()) {
              round_trip_ok =
                  round_trip_ok && outcome.find("admitted") != nullptr &&
                  outcome.find("admitted")->as_bool();
            }
          } catch (const support::JsonError&) {
            round_trip_ok = false;
          }
        }
        batch_ok = batch_ok && round_trip_ok;
        if (round_trip_ok) {
          post_ms.push_back(elapsed_ms);
          latencies_ms.push_back(elapsed_ms);
        }
      }
      std::sort(post_ms.begin(), post_ms.end());
      if (!post_ms.empty()) {
        batch_p99_ms[s] = post_ms[(post_ms.size() * 99) / 100];
      } else {
        batch_ok = false;
      }
    }
    stop.store(true);
    writer.join();
    server.stop();
    std::sort(latencies_ms.begin(), latencies_ms.end());
    if (!latencies_ms.empty()) {
      p50_ms = latencies_ms[latencies_ms.size() / 2];
      p99_ms = latencies_ms[(latencies_ms.size() * 99) / 100];
    }
  }
  const bool latency_ok = p99_ms > 0.0 && p99_ms <= 250.0;

  // ---- Report.
  support::TextTable table({"metric", "value"});
  table.add_row({"locates/sec (metrics, untraced)",
                 support::TextTable::fmt(best_untraced, 0)});
  table.add_row({"locates/sec (metrics, sampled 1/" +
                     support::TextTable::fmt(kSampleEvery) + ")",
                 support::TextTable::fmt(best_sampled, 0)});
  table.add_row({"sampled-trace throughput ratio",
                 support::TextTable::fmt(100.0 * sampled_ratio, 2) + "%"});
  table.add_row(
      {"sampling overhead/call",
       support::TextTable::fmt(1000.0 * sampling_overhead_us_per_call, 0) +
           " ns (gate <= 100)"});
  table.add_row({"scrape == in-process snapshot",
                 scrape_identical ? "yes" : "NO"});
  table.add_row({"scrape p50 under load",
                 support::TextTable::fmt(p50_ms, 2) + " ms"});
  table.add_row({"scrape p99 under load",
                 support::TextTable::fmt(p99_ms, 2) + " ms"});
  for (std::size_t s = 0; s < 3; ++s) {
    table.add_row({"POST /locate p99 (batch " +
                       support::TextTable::fmt(kBatchSizes[s]) + ")",
                   support::TextTable::fmt(batch_p99_ms[s], 2) + " ms"});
  }
  table.add_row({"batch POST round-trips ok", batch_ok ? "yes" : "NO"});
  std::cout << "\n" << table;

  const bool ok =
      overhead_ok && scrape_identical && latency_ok && batch_ok;
  std::cout << "\ninvariants (sampling costs <= 100 ns/call over "
            << "untraced, scrape byte-identical to the in-process "
            << "snapshot, scrape + batch POST p99 <= 250 ms under load, "
            << "batch POST 1/8/64 all admitted): "
            << (ok ? "PASS" : "FAIL (BUG)") << "\n";

  // ---- Machine-readable trajectory record.
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"experiment\": \"E16\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_concurrency\": " << support::resolve_threads(0)
       << ",\n"
       << "  \"locate_calls_per_side\": " << calls << ",\n"
       << "  \"sample_every\": " << kSampleEvery << ",\n"
       << "  \"overhead\": {\n"
       << "    \"locates_per_sec_untraced\": " << best_untraced << ",\n"
       << "    \"locates_per_sec_sampled\": " << best_sampled << ",\n"
       << "    \"sampled_throughput_ratio\": " << sampled_ratio << ",\n"
       << "    \"sampling_overhead_us_per_call\": "
       << sampling_overhead_us_per_call << "\n"
       << "  },\n"
       << "  \"scrape\": {\n"
       << "    \"byte_identical\": "
       << (scrape_identical ? "true" : "false") << ",\n"
       << "    \"p50_ms\": " << p50_ms << ",\n"
       << "    \"p99_ms\": " << p99_ms << "\n"
       << "  },\n"
       << "  \"locate_batch\": {\n"
       << "    \"round_trips_ok\": " << (batch_ok ? "true" : "false")
       << ",\n"
       << "    \"p99_ms_batch1\": " << batch_p99_ms[0] << ",\n"
       << "    \"p99_ms_batch8\": " << batch_p99_ms[1] << ",\n"
       << "    \"p99_ms_batch64\": " << batch_p99_ms[2] << "\n"
       << "  },\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";

  return ok ? 0 : 1;
}
