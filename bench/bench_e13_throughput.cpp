// Experiment E13 — signaling-plane throughput of the parallel execution
// engine.
//
// Theorem 4.8 prices ONE plan at O(c(m+dc)); serving paging traffic for
// millions of users also needs that cost amortized across calls (the
// per-area plan cache) and the embarrassingly-parallel work spread over
// cores (thread-pool Monte-Carlo shards and simulation replications).
// This harness measures all three and emits a machine-readable
// BENCH_E13.json so the repo's performance trajectory is recorded run
// over run:
//
//   * locate() throughput and latency percentiles on a steady-profile
//     workload, plan cache on vs off (the off-side p50/p99 is the cold
//     Fig. 1 planning latency; the on-side is the cached hot path);
//   * plan-cache hit rate, plus proof that caching changes nothing but
//     time (same-seed SimReports must be identical with cache on/off);
//   * sharded Monte-Carlo and batched-simulation speedup vs 1 thread,
//     with the substream discipline verified: every thread count must
//     produce bit-identical results.
//
// Determinism checks and the hit-rate floor always gate the exit code;
// the wall-clock speedup gate scales with the hardware actually present
// (a 1-core container cannot exhibit parallel speedup, and pretending
// otherwise would just train people to ignore a red bench).
//
// Flags (shared bench set): --smoke, --threads N (0 = hardware),
// --out FILE (default BENCH_E13.json).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cellular/simulator.h"
#include "core/evaluator.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "prob/rng.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace {

using namespace confcall;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile(std::vector<double> sorted_ascending, double p) {
  if (sorted_ascending.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ascending.size() - 1));
  return sorted_ascending[rank];
}

bool stats_identical(const prob::RunningStats& a,
                     const prob::RunningStats& b) {
  return a.count() == b.count() && a.mean() == b.mean() &&
         a.variance() == b.variance() && a.min() == b.min() &&
         a.max() == b.max();
}

/// Bitwise equality of everything a SimReport carries except the plan
/// cache counters themselves (those legitimately differ cache-on vs off).
bool reports_identical(const cellular::SimReport& a,
                       const cellular::SimReport& b) {
  return a.steps == b.steps && a.calls_served == b.calls_served &&
         a.reports_sent == b.reports_sent &&
         a.cells_paged_total == b.cells_paged_total &&
         a.fallback_pages == b.fallback_pages &&
         a.missed_detections == b.missed_detections &&
         a.reports_lost == b.reports_lost &&
         a.outage_pages == b.outage_pages &&
         a.dropped_rounds == b.dropped_rounds &&
         a.retries_total == b.retries_total &&
         a.backoff_rounds == b.backoff_rounds &&
         a.calls_degraded == b.calls_degraded &&
         a.calls_abandoned == b.calls_abandoned &&
         a.forced_registrations == b.forced_registrations &&
         a.budget_exhaustions == b.budget_exhaustions &&
         stats_identical(a.pages_per_call, b.pages_per_call) &&
         stats_identical(a.rounds_per_call, b.rounds_per_call);
}

/// Steady-profile workload: stationary profiles never change, users never
/// move after attach, so every area's planning inputs repeat call after
/// call — the regime the plan cache is built for.
cellular::SimConfig steady_config(bool smoke) {
  cellular::SimConfig config;
  config.grid_rows = 12;
  config.grid_cols = 12;
  config.la_tile_rows = 3;
  config.la_tile_cols = 3;
  config.num_users = 96;
  // Lazy (not frozen: the chain must be ergodic) mobility; the stationary
  // profile is constant regardless, which is what keeps signatures stable.
  config.stay_probability = 0.9;
  config.call_rate = 0.9;
  config.group_min = 2;
  config.group_max = 4;
  config.max_paging_rounds = 3;
  config.profile_kind = cellular::ProfileKind::kStationary;
  // Long enough that the one-time cold misses (one per area x group-size
  // signature) amortize below the 10% floor even in the smoke run.
  config.steps = smoke ? 1500 : 6000;
  config.warmup_steps = 50;
  config.seed = 13;
  return config;
}

cellular::SimConfig batch_config(bool smoke) {
  cellular::SimConfig config;
  config.grid_rows = 8;
  config.grid_cols = 8;
  config.num_users = 48;
  config.call_rate = 0.4;
  config.steps = smoke ? 200 : 800;
  config.warmup_steps = 50;
  config.seed = 131;
  return config;
}

struct McResult {
  double t1_sec = 0.0;
  double tn_sec = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  support::BenchFlags flags;
  try {
    flags = support::parse_bench_flags(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "bench_e13_throughput: " << error.what() << "\n";
    return 2;
  }
  const bool smoke = flags.smoke;
  const std::size_t hw = support::resolve_threads(0);
  const std::size_t wide = flags.threads != 0 ? flags.threads : 8;
  const std::string out_path =
      flags.out.empty() ? "BENCH_E13.json" : flags.out;
  std::cout << "E13: parallel execution engine throughput"
            << (smoke ? " (smoke)" : "") << " — hardware threads: " << hw
            << ", wide pool: " << wide << "\n";

  bool determinism_ok = true;

  // ---- 1. Plan cache: same workload, cache on vs off.
  cellular::SimConfig cached_config = steady_config(smoke);
  cached_config.enable_plan_cache = true;
  auto start = Clock::now();
  const cellular::SimReport cached = run_simulation(cached_config);
  const double sim_cached_sec = seconds_since(start);

  cellular::SimConfig uncached_config = steady_config(smoke);
  uncached_config.enable_plan_cache = false;
  start = Clock::now();
  const cellular::SimReport uncached = run_simulation(uncached_config);
  const double sim_uncached_sec = seconds_since(start);

  const bool cache_transparent = reports_identical(cached, uncached);
  determinism_ok &= cache_transparent;
  const double hit_rate = cached.plan_cache_hit_rate();
  const double cache_speedup =
      sim_cached_sec > 0.0 ? sim_uncached_sec / sim_cached_sec : 0.0;

  // ---- 2. locate() latency percentiles via per-call pages-planned
  // timing: run the same steady workload calling locate through the
  // simulator is opaque, so time calls directly against a service.
  // The uncached side pays the Fig. 1 DP on every call (cold plan
  // latency); the cached side shows the amortized hot path.
  const auto locate_latencies = [&](bool enable_cache, double* total_sec,
                                    std::size_t* calls) {
    const cellular::GridTopology grid(12, 12, true,
                                      cellular::Neighborhood::kVonNeumann);
    const cellular::LocationAreas areas =
        cellular::LocationAreas::tiles(grid, 3, 3);
    const cellular::MarkovMobility mobility(grid, 0.9);
    cellular::LocationService::Config config;
    config.profile_kind = cellular::ProfileKind::kStationary;
    config.max_paging_rounds = 3;
    config.enable_plan_cache = enable_cache;
    prob::Rng rng(1313);
    std::vector<cellular::CellId> cells(96);
    for (auto& cell : cells) {
      cell = static_cast<cellular::CellId>(rng.next_below(grid.num_cells()));
    }
    cellular::LocationService service(grid, areas, mobility, config, cells);
    const std::size_t n = smoke ? 2000 : 20000;
    std::vector<double> latencies_us;
    latencies_us.reserve(n);
    const auto loop_start = Clock::now();
    for (std::size_t t = 0; t < n; ++t) {
      cellular::UserId users[3];
      cellular::CellId truth[3];
      for (std::size_t i = 0; i < 3; ++i) {
        // Distinct users: offset draws within disjoint thirds.
        users[i] = static_cast<cellular::UserId>(
            i * 32 + rng.next_below(32));
        truth[i] = cells[users[i]];
      }
      const auto call_start = Clock::now();
      (void)service.locate(users, truth, rng);
      latencies_us.push_back(seconds_since(call_start) * 1e6);
    }
    *total_sec = seconds_since(loop_start);
    *calls = n;
    std::sort(latencies_us.begin(), latencies_us.end());
    return latencies_us;
  };

  double cached_total_sec = 0.0, uncached_total_sec = 0.0;
  std::size_t cached_calls = 0, uncached_calls = 0;
  const std::vector<double> lat_cached =
      locate_latencies(true, &cached_total_sec, &cached_calls);
  const std::vector<double> lat_uncached =
      locate_latencies(false, &uncached_total_sec, &uncached_calls);
  const double locates_per_sec =
      cached_total_sec > 0.0
          ? static_cast<double>(cached_calls) / cached_total_sec
          : 0.0;

  // ---- 3. Sharded Monte-Carlo: speedup and thread-count invariance.
  const auto mc_sweep = [&]() {
    prob::Rng rng(7);
    std::vector<prob::ProbabilityVector> rows;
    for (std::size_t i = 0; i < 6; ++i) {
      rows.push_back(prob::dirichlet_vector(192, 1.0, rng));
    }
    const core::Instance instance = core::Instance::from_rows(rows);
    const core::Strategy strategy =
        core::plan_greedy(instance, 6).strategy;
    const std::size_t trials = smoke ? 60'000 : 400'000;

    McResult result;
    core::MonteCarloEstimate reference;
    bool first = true;
    result.bit_identical = true;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, wide}) {
      const support::ThreadPool pool(threads);
      const auto mc_start = Clock::now();
      const core::MonteCarloEstimate estimate =
          core::monte_carlo_paging_parallel(instance, strategy, trials, 99,
                                            pool);
      const double elapsed = seconds_since(mc_start);
      if (threads == 1) result.t1_sec = elapsed;
      if (threads == wide) result.tn_sec = elapsed;
      if (first) {
        reference = estimate;
        first = false;
      } else {
        result.bit_identical &= estimate.mean == reference.mean &&
                                estimate.std_error == reference.std_error &&
                                estimate.trials == reference.trials;
      }
    }
    result.speedup =
        result.tn_sec > 0.0 ? result.t1_sec / result.tn_sec : 0.0;
    return result;
  };
  const McResult mc = mc_sweep();
  determinism_ok &= mc.bit_identical;

  // ---- 4. Batched simulation replications: speedup and invariance.
  const auto batch_sweep = [&]() {
    const cellular::SimConfig base = batch_config(smoke);
    const std::size_t reps = 8;
    McResult result;
    result.bit_identical = true;
    cellular::SimBatchReport reference;
    bool first = true;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, wide}) {
      const auto batch_start = Clock::now();
      cellular::SimBatchReport batch =
          cellular::run_simulation_batch(base, reps, threads);
      const double elapsed = seconds_since(batch_start);
      if (threads == 1) result.t1_sec = elapsed;
      if (threads == wide) result.tn_sec = elapsed;
      if (first) {
        reference = std::move(batch);
        first = false;
      } else {
        result.bit_identical &=
            reports_identical(batch.aggregate, reference.aggregate) &&
            batch.aggregate.plan_cache_hits ==
                reference.aggregate.plan_cache_hits &&
            batch.aggregate.plan_cache_misses ==
                reference.aggregate.plan_cache_misses;
      }
    }
    result.speedup =
        result.tn_sec > 0.0 ? result.t1_sec / result.tn_sec : 0.0;
    return result;
  };
  const McResult batch = batch_sweep();
  determinism_ok &= batch.bit_identical;

  // ---- Report.
  support::TextTable table({"metric", "value"});
  table.add_row({"plan cache hit rate",
                 support::TextTable::fmt(100.0 * hit_rate, 2) + "%"});
  table.add_row({"cache wall speedup (sim)",
                 support::TextTable::fmt(cache_speedup, 2) + "x"});
  table.add_row({"cache transparent", cache_transparent ? "yes" : "NO"});
  table.add_row({"locates/sec (cached)",
                 support::TextTable::fmt(locates_per_sec, 0)});
  table.add_row({"plan p50 (cold)",
                 support::TextTable::fmt(percentile(lat_uncached, 0.50), 1) +
                     " us"});
  table.add_row({"plan p99 (cold)",
                 support::TextTable::fmt(percentile(lat_uncached, 0.99), 1) +
                     " us"});
  table.add_row({"locate p50 (cached)",
                 support::TextTable::fmt(percentile(lat_cached, 0.50), 1) +
                     " us"});
  table.add_row({"locate p99 (cached)",
                 support::TextTable::fmt(percentile(lat_cached, 0.99), 1) +
                     " us"});
  table.add_row({"MC speedup @" + std::to_string(wide) + "t",
                 support::TextTable::fmt(mc.speedup, 2) + "x"});
  table.add_row({"MC thread-invariant", mc.bit_identical ? "yes" : "NO"});
  table.add_row({"sim-batch speedup @" + std::to_string(wide) + "t",
                 support::TextTable::fmt(batch.speedup, 2) + "x"});
  table.add_row(
      {"sim-batch thread-invariant", batch.bit_identical ? "yes" : "NO"});
  std::cout << "\n" << table;

  // ---- Gates. Determinism and the hit-rate floor are unconditional;
  // the speedup floor scales with the cores this machine actually has.
  const bool hit_rate_ok = hit_rate >= 0.90;
  double speedup_floor = 0.0;
  if (hw >= 8) {
    speedup_floor = 3.0;
  } else if (hw >= 4) {
    speedup_floor = 2.0;
  } else if (hw >= 2) {
    speedup_floor = 1.3;
  }
  const bool speedup_ok =
      speedup_floor == 0.0 ||
      std::max(mc.speedup, batch.speedup) >= speedup_floor;
  if (speedup_floor == 0.0) {
    std::cout << "\n(single hardware thread: parallel speedup unmeasurable "
                 "here, gate skipped — determinism still enforced)\n";
  }

  const bool ok = determinism_ok && hit_rate_ok && speedup_ok;
  std::cout << "\ninvariants (cache transparency, thread invariance, "
            << "hit rate >= 90%"
            << (speedup_floor > 0.0
                    ? ", speedup >= " +
                          support::TextTable::fmt(speedup_floor, 1) + "x"
                    : "")
            << "): " << (ok ? "PASS" : "FAIL (BUG)") << "\n";

  // ---- Machine-readable trajectory record.
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"experiment\": \"E13\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"parallel_gate_armed\": "
       << (speedup_floor > 0.0 ? "true" : "false") << ",\n"
       << "  \"wide_pool_threads\": " << wide << ",\n"
       << "  \"plan_cache\": {\n"
       << "    \"hit_rate\": " << hit_rate << ",\n"
       << "    \"sim_wall_speedup\": " << cache_speedup << ",\n"
       << "    \"transparent\": " << (cache_transparent ? "true" : "false")
       << "\n  },\n"
       << "  \"locate\": {\n"
       << "    \"locates_per_sec\": " << locates_per_sec << ",\n"
       << "    \"plan_p50_us_cold\": " << percentile(lat_uncached, 0.50)
       << ",\n"
       << "    \"plan_p99_us_cold\": " << percentile(lat_uncached, 0.99)
       << ",\n"
       << "    \"locate_p50_us_cached\": " << percentile(lat_cached, 0.50)
       << ",\n"
       << "    \"locate_p99_us_cached\": " << percentile(lat_cached, 0.99)
       << "\n  },\n"
       << "  \"monte_carlo\": {\n"
       << "    \"t1_sec\": " << mc.t1_sec << ",\n"
       << "    \"twide_sec\": " << mc.tn_sec << ",\n"
       << "    \"speedup\": " << mc.speedup << ",\n"
       << "    \"bit_identical\": " << (mc.bit_identical ? "true" : "false")
       << "\n  },\n"
       << "  \"sim_batch\": {\n"
       << "    \"t1_sec\": " << batch.t1_sec << ",\n"
       << "    \"twide_sec\": " << batch.tn_sec << ",\n"
       << "    \"speedup\": " << batch.speedup << ",\n"
       << "    \"bit_identical\": "
       << (batch.bit_identical ? "true" : "false") << "\n  },\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";

  return ok ? 0 : 1;
}
