#!/usr/bin/env python3
"""Docs lint: dead links, phantom bench targets, phantom metrics,
endpoint-table drift.

Four checks, all offline (CI must not depend on the network):

1. Dead intra-repo links. Scans the repo's top-level markdown plus
   docs/*.md for inline links [text](target) and checks every relative
   target (after stripping any #anchor) against the working tree.
   External links (http/https/mailto) are ignored.
2. Phantom bench targets. Every `bench_eNN_*` / `bench_aNN_*` name
   mentioned in EXPERIMENTS.md must be an add_executable target in
   bench/CMakeLists.txt — an experiment doc that names a harness that
   does not build is a dead reproduction recipe.
3. Phantom metrics. Every backticked `confcall_*` metric name in
   docs/OBSERVABILITY.md must appear somewhere under src/, tools/,
   bench/ or tests/ — the catalogue may not describe series nothing
   can emit. (tests/test_observability.cpp gates the opposite
   direction: every emitted metric must be catalogued.)
4. Endpoint-table drift, both directions. Every route registered with
   server.handle("METHOD", "/path") in src/support/http.cpp or
   tools/confcall_serve.cpp must have a row in docs/OBSERVABILITY.md's
   Endpoints table, and every `METHOD /path` row in that table must be
   registered by one of those files — the endpoint catalogue may
   neither lag the server nor promise routes that 404.

Exit code 1 lists every violation as file:line.

Usage: python3 tools/docs_lint.py [repo_root]
"""
import glob
import os
import re
import sys

# Inline links, excluding images; the target group stops at the first
# unescaped ')' (no nested-paren targets in this repo).
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")

BENCH_TARGET_RE = re.compile(r"\b(bench_[ea]\d{2}_[a-z0-9_]+)\b")
# A catalogued metric: a backticked name with the confcall_ prefix.
# Label-carrying rows (`name{label="v"}`) contribute the name prefix.
METRIC_RE = re.compile(r"`(confcall_[a-z0-9_]+)[`{]")
SOURCE_DIRS = ("src", "tools", "bench", "tests")
SOURCE_EXTS = (".h", ".cpp", ".cc", ".py")


def lint_links(path, root):
    errors = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            for target in LINK_RE.findall(line):
                if target.startswith(EXTERNAL) or target.startswith("#"):
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target.split("#")[0]))
                if not os.path.exists(resolved):
                    errors.append("%s:%d: dead link -> %s" %
                                  (os.path.relpath(path, root), lineno, target))
    return errors


def cmake_bench_targets(root):
    """add_executable names declared by bench/CMakeLists.txt (both the
    foreach list and standalone add_executable calls)."""
    path = os.path.join(root, "bench", "CMakeLists.txt")
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as handle:
        return set(BENCH_TARGET_RE.findall(handle.read()))


def lint_bench_targets(root):
    """Check 2: EXPERIMENTS.md may only name bench targets that build."""
    path = os.path.join(root, "EXPERIMENTS.md")
    if not os.path.exists(path):
        return []
    declared = cmake_bench_targets(root)
    errors = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            for target in BENCH_TARGET_RE.findall(line):
                if target not in declared:
                    errors.append(
                        "%s:%d: bench target '%s' is not declared in "
                        "bench/CMakeLists.txt" %
                        (os.path.relpath(path, root), lineno, target))
    return errors


def source_tree_text(root):
    chunks = []
    for subdir in SOURCE_DIRS:
        for dirpath, _, filenames in os.walk(os.path.join(root, subdir)):
            for name in filenames:
                if name.endswith(SOURCE_EXTS):
                    with open(os.path.join(dirpath, name),
                              encoding="utf-8", errors="replace") as handle:
                        chunks.append(handle.read())
    return "\n".join(chunks)


def lint_metric_catalogue(root):
    """Check 3: every metric docs/OBSERVABILITY.md catalogues must be
    emittable — its name must appear in the source tree."""
    path = os.path.join(root, "docs", "OBSERVABILITY.md")
    if not os.path.exists(path):
        return []
    source = source_tree_text(root)
    errors = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            for metric in METRIC_RE.findall(line):
                if metric not in source:
                    errors.append(
                        "%s:%d: metric '%s' is catalogued but appears "
                        "nowhere under %s" %
                        (os.path.relpath(path, root), lineno, metric,
                         "/".join(SOURCE_DIRS)))
    return errors


# A registered route: method + literal path in one handle() call.
ROUTE_HANDLE_RE = re.compile(
    r'server\.handle\("(GET|POST)",\s*"(/[A-Za-z0-9_]+)"')
# A documented route: a backticked `METHOD /path` inside a table row.
DOC_ROUTE_RE = re.compile(r"`(GET|POST) (/[A-Za-z0-9_]+)`")
ROUTE_SOURCES = (os.path.join("src", "support", "http.cpp"),
                 os.path.join("tools", "confcall_serve.cpp"))


def lint_endpoints(root):
    """Check 4: docs/OBSERVABILITY.md's Endpoints table and the routes
    the server registers must agree, both directions."""
    doc_path = os.path.join(root, "docs", "OBSERVABILITY.md")
    if not os.path.exists(doc_path):
        return []
    routed = {}
    for rel in ROUTE_SOURCES:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            continue
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                for method, route in ROUTE_HANDLE_RE.findall(line):
                    routed.setdefault((method, route),
                                      "%s:%d" % (rel, lineno))
    documented = {}
    in_endpoints = False
    with open(doc_path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            if line.startswith("## "):
                in_endpoints = line.strip() == "## Endpoints"
            if in_endpoints and line.startswith("| `"):
                for method, route in DOC_ROUTE_RE.findall(line):
                    documented.setdefault((method, route), lineno)
    errors = []
    rel_doc = os.path.relpath(doc_path, root)
    for key in sorted(routed):
        if key not in documented:
            errors.append(
                "%s: route '%s %s' (registered at %s) has no row in the "
                "Endpoints table" % (rel_doc, key[0], key[1], routed[key]))
    for key in sorted(documented):
        if key not in routed:
            errors.append(
                "%s:%d: endpoint '%s %s' is documented but nothing "
                "registers it" % (rel_doc, documented[key], key[0], key[1]))
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), os.pardir))
    files = sorted(
        glob.glob(os.path.join(root, "*.md")) +
        glob.glob(os.path.join(root, "docs", "*.md")))
    if not files:
        print("docs_lint: no markdown files found under %s" % root)
        return 1
    errors = []
    for path in files:
        errors.extend(lint_links(path, root))
    errors.extend(lint_bench_targets(root))
    errors.extend(lint_metric_catalogue(root))
    errors.extend(lint_endpoints(root))
    for error in errors:
        print(error)
    print("docs_lint: %d file(s), %d violation(s)" % (len(files), len(errors)))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())


