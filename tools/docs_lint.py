#!/usr/bin/env python3
"""Markdown link lint: fail on dead intra-repo links.

Scans the repo's top-level markdown plus docs/*.md for inline links
[text](target) and checks every relative target (after stripping any
#anchor) against the working tree. External links (http/https/mailto)
are ignored — CI must not depend on the network. Exit code 1 lists
every dead link as file:line.

Usage: python3 tools/docs_lint.py [repo_root]
"""
import glob
import os
import re
import sys

# Inline links, excluding images; the target group stops at the first
# unescaped ')' (no nested-paren targets in this repo).
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def lint_file(path, root):
    errors = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            for target in LINK_RE.findall(line):
                if target.startswith(EXTERNAL) or target.startswith("#"):
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target.split("#")[0]))
                if not os.path.exists(resolved):
                    errors.append("%s:%d: dead link -> %s" %
                                  (os.path.relpath(path, root), lineno, target))
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), os.pardir))
    files = sorted(
        glob.glob(os.path.join(root, "*.md")) +
        glob.glob(os.path.join(root, "docs", "*.md")))
    if not files:
        print("docs_lint: no markdown files found under %s" % root)
        return 1
    errors = []
    for path in files:
        errors.extend(lint_file(path, root))
    for error in errors:
        print(error)
    print("docs_lint: %d file(s), %d dead link(s)" % (len(files), len(errors)))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
