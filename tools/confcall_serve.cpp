// confcall_serve — the location-management service as a long-running
// daemon with a live observability surface.
//
// Loads a named scenario (cellular/workload.h), builds the same stack the
// simulator builds — grid, location areas, mobility, LocationService,
// fault plan, admission control, resilient planner — but drives it on the
// REAL clock: a paced locate loop moves users and serves arriving
// conference calls while an embedded HTTP server (support/http.h) exposes
//
//   GET  /metrics   Prometheus text, one consistent registry snapshot
//   GET  /vars      the same snapshot as JSON
//   GET  /healthz   JSON health: admission state plus, with
//                   --slo-p99-ms, the SLO controller's verdict and
//                   target vs observed p99. healthy/degraded -> 200,
//                   shedding -> 503; a "degrading" controller verdict
//                   (projected breach) also answers 503 so a load
//                   balancer drains BEFORE the SLO is broken
//                   (scenarios without admission control always
//                   report healthy)
//   GET  /traces    recent sampled spans, Chrome trace_event JSON
//   POST /locate    serve conference calls right now and report the
//                   outcomes as JSON. The body grammar lives in
//                   cellular/locate_api.h: empty body or one object =
//                   one call (503 when admission sheds it); a JSON
//                   array = a batch served through
//                   LocationService::locate_many (200 with per-element
//                   "admitted" verdicts). Malformed bodies get 400
//                   with a JSON error.
//
// Tracing is always on at a deterministic 1-in-N sample (--trace-every,
// default 64; 0 disables) through support::SamplingTracer, so /traces
// stays populated at well under the 5% overhead budget (bench_e16).
//
// Shutdown is graceful: SIGINT/SIGTERM stop the locate loop, drain the
// HTTP server (accepted connections are still answered), dump a final
// registry snapshot (--snapshot-out, JSON), and exit 0.
//
//   confcall_serve [--scenario dense-urban|campus|highway|degraded-urban|
//                              overloaded-urban]
//                  [--port P] [--port-file FILE] [--workers N]
//                  [--steps N] [--step-ms MS]
//                  [--trace-every N] [--trace-capacity N]
//                  [--slo-p99-ms MS] [--control-period-ms MS]
//                  [--seed S] [--snapshot-out FILE]
//
// --slo-p99-ms T attaches a closed-loop SloController (requires a
// scenario with admission control, e.g. overloaded-urban): every
// --control-period-ms of wall time it reads the registry's admitted-
// rounds histogram delta and adapts the admission token rate, degrade
// threshold and breaker cooldowns to hold an admitted-latency p99 of
// T ms. 0 (the default) leaves the static thresholds in charge.
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// resolved port for scripts (the CI smoke test starts the daemon with an
// ephemeral port, reads the file, curls /healthz and /metrics, then
// SIGTERMs and asserts a clean exit). --steps 0 runs until a signal.
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "cellular/locate_api.h"
#include "cellular/simulator.h"
#include "cellular/workload.h"
#include "core/planner.h"
#include "core/resilient_planner.h"
#include "prob/rng.h"
#include "support/cli.h"
#include "support/http.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/overload.h"
#include "support/slo_controller.h"
#include "support/trace.h"

namespace {

using namespace confcall;

// Async-signal-safe stop flag: the handlers only store.
std::atomic<bool> g_stop{false};

void on_signal(int /*signum*/) { g_stop.store(true); }

constexpr const char* kUsage =
    "usage: confcall_serve"
    " [--scenario dense-urban|campus|highway|degraded-urban|"
    "overloaded-urban]"
    " [--port P] [--port-file FILE] [--workers N]"
    " [--steps N] [--step-ms MS]"
    " [--trace-every N] [--trace-capacity N]"
    " [--slo-p99-ms MS] [--control-period-ms MS]"
    " [--seed S] [--snapshot-out FILE]\n"
    "\n"
    "Runs the location-management service as a daemon: a paced locate\n"
    "loop over the chosen scenario plus an HTTP observability surface\n"
    "(GET /metrics /vars /healthz /traces, POST /locate). --port 0 binds\n"
    "an ephemeral port (--port-file writes the resolved one); --steps 0\n"
    "serves until SIGINT/SIGTERM, which drain gracefully and dump a\n"
    "final snapshot to --snapshot-out. --slo-p99-ms T closes the loop:\n"
    "an SloController holds the admitted-latency p99 at T ms by adapting\n"
    "admission and breaker knobs every --control-period-ms (default\n"
    "1000; needs a scenario with admission control).\n";

cellular::Scenario find_scenario(const std::string& name,
                                 std::uint64_t seed) {
  for (cellular::Scenario& scenario : cellular::all_scenarios(seed)) {
    if (scenario.name == name) return std::move(scenario);
  }
  std::string names;
  for (const cellular::Scenario& scenario : cellular::all_scenarios(seed)) {
    names += names.empty() ? scenario.name : "|" + scenario.name;
  }
  throw std::invalid_argument("unknown scenario '" + name + "' (" + names +
                              ")");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const support::Cli cli(argc, argv);
    if (cli.has("help")) {
      std::cout << kUsage;
      return 0;
    }
    const std::string scenario_name =
        cli.get_string("scenario", "dense-urban");
    const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
    const std::string port_file = cli.get_string("port-file", "");
    const auto workers = static_cast<std::size_t>(cli.get_int("workers", 2));
    const std::int64_t steps = cli.get_int("steps", 0);
    const std::int64_t step_ms = cli.get_int("step-ms", 10);
    const std::int64_t trace_every = cli.get_int("trace-every", 64);
    const std::int64_t trace_capacity = cli.get_int("trace-capacity", 2048);
    const std::int64_t slo_p99_ms = cli.get_int("slo-p99-ms", 0);
    const std::int64_t control_period_ms =
        cli.get_int("control-period-ms", 1000);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const std::string snapshot_out = cli.get_string("snapshot-out", "");
    for (const auto& flag : cli.unused()) {
      throw std::invalid_argument("unknown flag --" + flag);
    }
    if (steps < 0 || step_ms < 0 || trace_every < 0 || trace_capacity < 1) {
      throw std::invalid_argument(
          "--steps/--step-ms/--trace-every must be >= 0, "
          "--trace-capacity >= 1");
    }
    if (slo_p99_ms < 0 || control_period_ms < 1) {
      throw std::invalid_argument(
          "--slo-p99-ms must be >= 0, --control-period-ms >= 1");
    }

    const cellular::Scenario scenario = find_scenario(scenario_name, seed);
    const cellular::SimConfig& config = scenario.config;
    config.validate();

    // The simulator's stack, assembled on the REAL clock: token refill,
    // call deadlines and breaker cooldowns all track wall time here,
    // where run_simulation drives them from a virtual ManualClock.
    const support::ClockSource& clock = support::SteadyClockSource::shared();
    const cellular::GridTopology grid(config.grid_rows, config.grid_cols,
                                      config.toroidal, config.neighborhood);
    const cellular::LocationAreas areas = cellular::LocationAreas::tiles(
        grid, config.la_tile_rows, config.la_tile_cols);
    const cellular::MarkovMobility mobility(grid, config.stay_probability);
    prob::Rng rng(config.seed);
    std::vector<cellular::CellId> user_cells;
    user_cells.reserve(config.num_users);
    for (std::size_t u = 0; u < config.num_users; ++u) {
      user_cells.push_back(
          static_cast<cellular::CellId>(rng.next_below(grid.num_cells())));
    }

    support::MetricRegistry registry;
    std::unique_ptr<support::SamplingTracer> tracer;
    if (trace_every > 0) {
      tracer = std::make_unique<support::SamplingTracer>(
          static_cast<std::size_t>(trace_every),
          static_cast<std::size_t>(trace_capacity), clock);
    }

    const cellular::OverloadConfig& overload = config.overload;
    std::unique_ptr<core::ResilientPlanner> resilient;
    std::optional<support::AdmissionController> admission;
    cellular::LocationService::Config service_cfg = config.service_config();
    service_cfg.metrics = cellular::ServiceMetrics::create(registry);
    service_cfg.tracer = tracer.get();
    if (overload.enabled) {
      if (overload.resilient_planner) {
        std::vector<std::unique_ptr<core::Planner>> chain;
        chain.push_back(std::make_unique<core::TypedExactPlanner>(
            core::Objective::all_of(), overload.planner_node_limit));
        chain.push_back(std::make_unique<core::GreedyPlanner>());
        chain.push_back(std::make_unique<core::BlanketPlanner>());
        resilient = std::make_unique<core::ResilientPlanner>(
            std::move(chain), core::ResilientPlanner::Budget{0.0}, clock,
            overload.breaker, &registry);
        service_cfg.planner = resilient.get();
      }
      service_cfg.clock = &clock;
      service_cfg.round_duration_ns = overload.round_duration_ns;
      admission.emplace(overload.admission, clock);
      admission->bind_metrics(registry);
    }
    // The closed loop, on wall time: target and period scale from the
    // simulator's virtual-ns defaults to the flags' milliseconds.
    std::unique_ptr<support::SloController> slo;
    if (slo_p99_ms > 0) {
      if (!admission) {
        throw std::invalid_argument(
            "--slo-p99-ms needs a scenario with admission control "
            "(e.g. overloaded-urban)");
      }
      support::SloOptions slo_options = overload.slo;
      slo_options.enabled = true;
      slo_options.target_p99_ns =
          static_cast<std::uint64_t>(slo_p99_ms) * 1'000'000ULL;
      slo_options.control_period_ns =
          static_cast<std::uint64_t>(control_period_ms) * 1'000'000ULL;
      slo = std::make_unique<support::SloController>(
          slo_options, registry, *admission, clock,
          overload.round_duration_ns);
      if (resilient) {
        for (std::size_t i = 0; i + 1 < resilient->num_tiers(); ++i) {
          slo->add_breaker(&resilient->mutable_breaker(i));
        }
      }
      slo->bind_metrics(registry);
    }

    cellular::LocationService service(grid, areas, mobility, service_cfg,
                                      user_cells);
    cellular::FaultPlan faults(config.faults, grid.num_cells());
    if (config.paging_policy != cellular::PagingPolicy::kAdaptive) {
      service.attach_faults(&faults);
    }
    const cellular::CallGenerator calls(config.call_rate, config.num_users,
                                        config.group_min, config.group_max);
    // Forced arrivals for POST /locate: same group-size law, rate 1.
    const cellular::CallGenerator forced_calls(1.0, config.num_users,
                                               config.group_min,
                                               config.group_max);
    std::optional<cellular::BurstyCallGenerator> bursty;
    if (config.burst.enabled) {
      bursty.emplace(config.burst, config.num_users, config.group_min,
                     config.group_max);
    }

    const support::Counter steps_metric = registry.counter(
        "confcall_serve_steps_total", "Locate-loop steps the daemon ran");
    const support::Counter arrivals_metric = registry.counter(
        "confcall_serve_calls_arrived_total",
        "Conference-call arrivals (loop traffic plus POST /locate)");
    const support::Counter shed_metric = registry.counter(
        "confcall_serve_calls_shed_total",
        "Arrivals rejected by admission control");

    // One mutex serializes every touch of the simulation state (service,
    // user cells, rng, generators) between the locate loop and the POST
    // /locate handler. Registry/tracer/admission are internally locked
    // and stay readable by the scrape handlers without it.
    std::mutex sim_mutex;

    // One paced step: move everyone, then maybe serve one arriving call.
    // Returns false when the call was shed.
    const auto serve_call = [&](const cellular::CallEvent& event,
                                cellular::LocationService::LocateOutcome*
                                    outcome_out) {
      arrivals_metric.inc();
      cellular::LocationService::LocateContext context;
      if (admission) {
        const support::AdmissionController::Decision decision =
            admission->admit(static_cast<double>(event.participants.size()));
        if (decision == support::AdmissionController::Decision::kShed) {
          shed_metric.inc();
          return false;
        }
        if (decision ==
            support::AdmissionController::Decision::kAdmitDegraded) {
          context.plan_cheap = true;
        }
        if (overload.call_deadline_ns != 0) {
          context.deadline =
              support::Deadline::after(overload.call_deadline_ns, clock);
        }
      }
      std::vector<cellular::CellId> true_cells;
      true_cells.reserve(event.participants.size());
      for (const cellular::UserId user : event.participants) {
        true_cells.push_back(user_cells[user]);
      }
      const cellular::LocationService::LocateOutcome outcome =
          service.locate(event.participants, true_cells, rng, context);
      if (outcome_out != nullptr) *outcome_out = outcome;
      return true;
    };

    const auto step_once = [&] {
      std::lock_guard<std::mutex> lock(sim_mutex);
      faults.begin_step();
      for (std::size_t u = 0; u < config.num_users; ++u) {
        user_cells[u] = mobility.step(user_cells[u], rng);
        (void)service.observe_move(static_cast<cellular::UserId>(u),
                                   user_cells[u]);
      }
      service.tick();
      steps_metric.inc();
      const cellular::CallEvent event =
          bursty ? bursty->maybe_call(rng) : calls.maybe_call(rng);
      if (!event.participants.empty()) (void)serve_call(event, nullptr);
      // Controller steps land on the wall-clock period grid; polling it
      // every loop step is one clock read when no boundary passed.
      if (slo) (void)slo->maybe_step();
    };

    // Warmup (movement only, unpaced) so the location database is warm
    // before the first scrape or locate.
    for (std::size_t t = 0; t < config.warmup_steps; ++t) {
      std::lock_guard<std::mutex> lock(sim_mutex);
      faults.begin_step();
      for (std::size_t u = 0; u < config.num_users; ++u) {
        user_cells[u] = mobility.step(user_cells[u], rng);
        (void)service.observe_move(static_cast<cellular::UserId>(u),
                                   user_cells[u]);
      }
      service.tick();
    }

    support::HttpServerOptions http_options;
    http_options.port = port;
    http_options.workers = workers;
    support::HttpServer server(http_options);
    support::install_observability_routes(
        server, &registry, tracer.get(),
        admission ? &*admission : nullptr, slo.get());
    server.handle("POST", "/locate", [&](const support::HttpRequest&
                                             http_request) {
      support::HttpResponse response;
      response.content_type = "application/json";
      // Parse outside the sim lock: malformed input never touches (or
      // blocks) the simulation state.
      cellular::LocateApiRequest api;
      try {
        api = cellular::parse_locate_body(http_request.body,
                                          config.num_users);
      } catch (const std::exception& error) {
        response.status = 400;
        response.body = "{\"error\": \"" +
                        support::json_escape(error.what()) + "\"}\n";
        return response;
      }

      std::lock_guard<std::mutex> lock(sim_mutex);
      // One admission pass over the whole batch, then a single
      // locate_many over the admitted calls — the batch amortizes the
      // span root, the batch-size histogram and every per-call scratch
      // structure inside the service.
      struct PendingCall {
        std::vector<cellular::UserId> users;
        std::vector<cellular::CellId> true_cells;
        cellular::LocationService::LocateContext context;
        bool admitted = false;
      };
      std::vector<PendingCall> pending;
      pending.reserve(api.calls.size());
      std::vector<cellular::LocationService::LocateRequest> admitted;
      admitted.reserve(api.calls.size());
      for (const cellular::LocateCallSpec& spec : api.calls) {
        PendingCall call;
        call.users = spec.users.empty()
                         ? forced_calls.maybe_call(rng).participants
                         : spec.users;
        arrivals_metric.inc();
        call.admitted = true;
        if (admission) {
          const support::AdmissionController::Decision decision =
              admission->admit(static_cast<double>(call.users.size()));
          if (decision == support::AdmissionController::Decision::kShed) {
            shed_metric.inc();
            call.admitted = false;
          } else if (decision ==
                     support::AdmissionController::Decision::
                         kAdmitDegraded) {
            call.context.plan_cheap = true;
          }
          if (call.admitted && overload.call_deadline_ns != 0) {
            call.context.deadline = support::Deadline::after(
                overload.call_deadline_ns, clock);
          }
        }
        if (call.admitted) {
          call.true_cells.reserve(call.users.size());
          for (const cellular::UserId user : call.users) {
            call.true_cells.push_back(user_cells[user]);
          }
        }
        pending.push_back(std::move(call));
      }
      for (const PendingCall& call : pending) {
        if (!call.admitted) continue;
        admitted.push_back({call.users, call.true_cells, call.context});
      }
      const std::vector<cellular::LocationService::LocateOutcome> outcomes =
          service.locate_many(admitted, rng);

      std::string body;
      std::size_t next_outcome = 0;
      if (api.batch) {
        body += "[";
        for (std::size_t i = 0; i < pending.size(); ++i) {
          if (i > 0) body += ", ";
          const PendingCall& call = pending[i];
          cellular::append_outcome_json(
              body, call.admitted, call.users.size(),
              call.admitted ? &outcomes[next_outcome] : nullptr);
          if (call.admitted) ++next_outcome;
        }
        body += "]\n";
      } else {
        // Single-call contract (empty body or one object): 503 on shed.
        const PendingCall& call = pending.front();
        if (!call.admitted) response.status = 503;
        cellular::append_outcome_json(
            body, call.admitted, call.users.size(),
            call.admitted ? &outcomes.front() : nullptr);
        body += "\n";
      }
      response.body = std::move(body);
      return response;
    });

    (void)std::signal(SIGINT, on_signal);
    (void)std::signal(SIGTERM, on_signal);
    server.start();
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      if (!out) {
        throw std::runtime_error("cannot write port file '" + port_file +
                                 "'");
      }
      out << server.port() << "\n";
    }
    std::cout << "confcall_serve: scenario=" << scenario.name
              << " serving on 127.0.0.1:" << server.port()
              << " (trace-every=" << trace_every;
    if (slo) {
      std::cout << ", slo-p99-ms=" << slo_p99_ms
                << ", control-period-ms=" << control_period_ms;
    }
    std::cout << ")" << std::endl;

    std::uint64_t steps_run = 0;
    while (!g_stop.load()) {
      if (steps > 0 && steps_run >= static_cast<std::uint64_t>(steps)) break;
      step_once();
      ++steps_run;
      if (step_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(step_ms));
      }
    }

    // Graceful drain: the listener closes first, accepted connections
    // are still answered, then the final snapshot is cut.
    server.stop();
    const support::RegistrySnapshot snapshot = registry.snapshot();
    if (!snapshot_out.empty()) {
      std::ofstream out(snapshot_out);
      if (!out) {
        throw std::runtime_error("cannot write snapshot file '" +
                                 snapshot_out + "'");
      }
      out << support::to_json(snapshot);
    }
    std::cout << "confcall_serve: stopped after " << steps_run
              << " steps, served " << server.requests_served()
              << " http requests (" << server.connections_shed()
              << " shed)";
    if (tracer) {
      std::cout << ", sampled " << tracer->roots_sampled() << "/"
                << tracer->roots_seen() << " traces";
    }
    if (slo) {
      std::cout << ", ran " << slo->control_steps() << " control steps ("
                << slo->breaches() << " breached, "
                << slo->pre_breach_signals() << " pre-breach)";
    }
    std::cout << std::endl;
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "confcall_serve: " << error.what() << "\n";
    return 1;
  }
}
