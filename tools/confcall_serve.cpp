// confcall_serve — the location-management service as a long-running
// daemon with a live observability surface.
//
// Loads a named scenario (cellular/workload.h), builds the same stack the
// simulator builds — grid, location areas, mobility, LocationService,
// fault plan, admission control, resilient planner — but drives it on the
// REAL clock: a paced locate loop moves users and serves arriving
// conference calls while an embedded HTTP server (support/http.h) exposes
//
//   GET  /metrics   Prometheus text, one consistent registry snapshot
//   GET  /vars      the same snapshot as JSON
//   GET  /healthz   JSON health: admission state plus, with
//                   --slo-p99-ms, the SLO controller's verdict and
//                   target vs observed p99. healthy/degraded -> 200,
//                   shedding -> 503; a "degrading" controller verdict
//                   (projected breach) also answers 503 so a load
//                   balancer drains BEFORE the SLO is broken
//                   (scenarios without admission control always
//                   report healthy)
//   GET  /traces    recent sampled spans, Chrome trace_event JSON
//   POST /locate    serve conference calls right now and report the
//                   outcomes as JSON. The body grammar lives in
//                   cellular/locate_api.h: empty body or one object =
//                   one call (503 when admission sheds it); a JSON
//                   array = a batch served through
//                   LocationService::locate_many (200 with per-element
//                   "admitted" verdicts). Malformed bodies get 400
//                   with a JSON error.
//
// Tracing is always on at a deterministic 1-in-N sample (--trace-every,
// default 64; 0 disables) through support::SamplingTracer, so /traces
// stays populated at well under the 5% overhead budget (bench_e16).
//
// Shutdown is graceful: SIGINT/SIGTERM stop the locate loop, drain the
// HTTP server (accepted connections are still answered), dump a final
// registry snapshot (--snapshot-out, JSON, written atomically), and
// exit 0.
//
// Crash safety (DESIGN.md §13): --state-out F checkpoints the learned
// serving state — the location database, visit statistics, plan cache
// and SLO actuator positions — through support/state_io's atomic
// versioned+checksummed writer, every --checkpoint-every-ms on the
// clock's period grid plus once at shutdown. --state-in F restores a
// checkpoint at startup; a valid one skips warmup entirely (warm
// restart: the DB, cache and controller resume at their converged
// operating point), while a missing, torn, corrupt or version-skewed
// file is REJECTED into a counted cold start
// (confcall_state_restore_total{result=...}) — never a crash. GET
// /readyz stays 503 through restore and warmup so a balancer holds
// traffic until the process is actually warm. --supervise wraps the
// whole daemon in a fork/exec supervisor: the child is restarted on any
// unclean exit with exponential backoff and a bounded crash-loop budget
// (--max-restarts, reset after a healthy run).
//
// Fleet serving (DESIGN.md §14): --shards N|auto swaps the single
// LocationService for a cellular::ServiceFleet — N per-core shard lanes
// executing --fleet-areas independent serving areas (default 4 per
// shard), each a full location-management domain over the scenario's
// topology. Requests route by area (POST /locate accepts an "area"
// member; loop arrivals rotate areas round-robin), shards steal work
// when a lane backs up, and every area's planner shares one process-wide
// signature -> strategy table. Metrics grow a `shard` label
// (confcall_locate_*{shard=...}, confcall_fleet_*); checkpoints carry
// one section per area and /readyz stays 503 until EVERY area restored
// (the restore is all-or-nothing across the fleet; the /readyz body
// reports areas_ready/areas_total while a restore is in flight).
// --slo-p99-ms composes with --shards: the controller senses the
// label-summed fleet-wide rounds window (RegistrySnapshot::sum_by), so
// one controller sees the same admitted-latency distribution at every
// shard count and drives bit-identical control trajectories (the E21
// gate at shard counts 1/2/8). GET /fleetz renders a per-shard JSON
// drill-down (queue depth, steals, task p99, plan-cache hits, exemplar
// trace ids); --metrics-exemplars opts /metrics into OpenMetrics
// exemplar suffixes that carry a sampled trace id on each latency
// bucket (off by default so the exposition stays byte-identical).
//
//   confcall_serve [--scenario dense-urban|campus|highway|degraded-urban|
//                              overloaded-urban]
//                  [--port P] [--port-file FILE] [--workers N]
//                  [--steps N] [--step-ms MS]
//                  [--shards N|auto] [--fleet-areas N]
//                  [--trace-every N] [--trace-capacity N]
//                  [--slo-p99-ms MS] [--control-period-ms MS]
//                  [--metrics-exemplars]
//                  [--seed S] [--snapshot-out FILE]
//                  [--state-in FILE] [--state-out FILE]
//                  [--checkpoint-every-ms MS]
//                  [--supervise] [--max-restarts N]
//
// --slo-p99-ms T attaches a closed-loop SloController (requires a
// scenario with admission control, e.g. overloaded-urban): every
// --control-period-ms of wall time it reads the registry's admitted-
// rounds histogram delta and adapts the admission token rate, degrade
// threshold and breaker cooldowns to hold an admitted-latency p99 of
// T ms. 0 (the default) leaves the static thresholds in charge.
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// resolved port for scripts (the CI smoke test starts the daemon with an
// ephemeral port, reads the file, curls /healthz and /metrics, then
// SIGTERMs and asserts a clean exit). --steps 0 runs until a signal.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "cellular/locate_api.h"
#include "cellular/service_fleet.h"
#include "cellular/simulator.h"
#include "cellular/workload.h"
#include "core/planner.h"
#include "core/resilient_planner.h"
#include "prob/rng.h"
#include "support/cli.h"
#include "support/http.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/overload.h"
#include "support/slo_controller.h"
#include "support/state_io.h"
#include "support/trace.h"

namespace {

using namespace confcall;

// Async-signal-safe stop flag: the handlers only store.
std::atomic<bool> g_stop{false};

void on_signal(int /*signum*/) { g_stop.store(true); }

// Supervisor state: the live child's pid for signal forwarding.
std::atomic<pid_t> g_child{0};
std::atomic<bool> g_supervisor_stop{false};

void on_supervisor_signal(int signum) {
  g_supervisor_stop.store(true);
  const pid_t child = g_child.load();
  if (child > 0) (void)::kill(child, signum);  // async-signal-safe
}

/// --supervise: fork/exec the same command line (minus the supervisor
/// flags) and keep it alive. A clean child exit (status 0) ends the
/// supervisor; any crash or unclean exit earns an exponential-backoff
/// restart from a bounded crash-loop budget. A child that stays up past
/// the healthy threshold refills the budget, so a daemon that crashes
/// once a day restarts forever while a boot-loop dies fast and loudly.
/// SIGINT/SIGTERM are forwarded to the child so graceful drain still
/// works through the supervisor.
int run_supervisor(int argc, char** argv, std::int64_t max_restarts) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--supervise" || arg.rfind("--supervise=", 0) == 0 ||
        arg.rfind("--max-restarts=", 0) == 0) {
      continue;
    }
    if (arg == "--max-restarts") {
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) ++i;
      continue;
    }
    args.push_back(arg);
  }

  (void)std::signal(SIGINT, on_supervisor_signal);
  (void)std::signal(SIGTERM, on_supervisor_signal);

  constexpr std::uint64_t kHealthyRunNs = 10'000'000'000;  // 10 s
  constexpr std::uint64_t kBackoffStartMs = 100;
  constexpr std::uint64_t kBackoffCapMs = 5'000;
  const support::ClockSource& clock = support::SteadyClockSource::shared();
  std::int64_t restarts_left = max_restarts;
  std::uint64_t backoff_ms = kBackoffStartMs;

  while (true) {
    const std::uint64_t started_ns = clock.now_ns();
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::cerr << "confcall_serve: supervisor fork failed\n";
      return 1;
    }
    if (pid == 0) {
      std::vector<char*> child_argv;
      child_argv.reserve(args.size() + 1);
      for (const std::string& a : args) {
        child_argv.push_back(const_cast<char*>(a.c_str()));
      }
      child_argv.push_back(nullptr);
      // /proc/self/exe instead of argv[0]: execv does not search PATH,
      // and the supervisor must relaunch THIS binary regardless of how
      // it was invoked.
      (void)::execv("/proc/self/exe", child_argv.data());
      ::_exit(127);  // exec failed; plain exit would re-run atexit state
    }
    g_child.store(pid);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
      if (errno != EINTR) {
        status = -1;
        break;
      }
    }
    g_child.store(0);

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      std::cout << "confcall_serve: supervised child exited cleanly"
                << std::endl;
      return 0;
    }
    const std::string how =
        WIFSIGNALED(status)
            ? "killed by signal " + std::to_string(WTERMSIG(status))
            : "exited with status " +
                  std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                                   : -1);
    if (g_supervisor_stop.load()) {
      // We asked it to stop; an unclean death during drain is still the
      // end of the line, not a restart.
      std::cerr << "confcall_serve: supervised child " << how
                << " during shutdown\n";
      return 1;
    }
    if (clock.now_ns() - started_ns >= kHealthyRunNs) {
      restarts_left = max_restarts;
      backoff_ms = kBackoffStartMs;
    }
    if (restarts_left <= 0) {
      std::cerr << "confcall_serve: supervised child " << how
                << "; crash-loop budget exhausted, giving up\n";
      return 1;
    }
    --restarts_left;
    std::cout << "confcall_serve: supervised child " << how
              << "; restarting in " << backoff_ms << " ms ("
              << restarts_left << " restarts left)" << std::endl;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    if (g_supervisor_stop.load()) return 1;
    backoff_ms = std::min(backoff_ms * 2, kBackoffCapMs);
  }
}

constexpr const char* kUsage =
    "usage: confcall_serve"
    " [--scenario dense-urban|campus|highway|degraded-urban|"
    "overloaded-urban]"
    " [--port P] [--port-file FILE] [--workers N]"
    " [--steps N] [--step-ms MS]"
    " [--shards N|auto] [--fleet-areas N]"
    " [--trace-every N] [--trace-capacity N]"
    " [--slo-p99-ms MS] [--control-period-ms MS]"
    " [--metrics-exemplars]"
    " [--seed S] [--snapshot-out FILE]"
    " [--state-in FILE] [--state-out FILE] [--checkpoint-every-ms MS]"
    " [--supervise] [--max-restarts N]\n"
    "\n"
    "Runs the location-management service as a daemon: a paced locate\n"
    "loop over the chosen scenario plus an HTTP observability surface\n"
    "(GET /metrics /vars /healthz /readyz /traces — plus /fleetz with\n"
    "--shards — and POST /locate).\n"
    "--port 0 binds an ephemeral port (--port-file writes the resolved\n"
    "one); --steps 0 serves until SIGINT/SIGTERM, which drain gracefully\n"
    "and dump a final snapshot to --snapshot-out. --slo-p99-ms T closes\n"
    "the loop: an SloController holds the admitted-latency p99 at T ms\n"
    "by adapting admission and breaker knobs every --control-period-ms\n"
    "(default 1000; needs a scenario with admission control).\n"
    "\n"
    "Crash safety: --state-out F writes an atomic, checksummed\n"
    "checkpoint of the learned serving state every --checkpoint-every-ms\n"
    "(0 = only at shutdown) and --state-in F restores one at startup —\n"
    "a valid checkpoint skips warmup (warm restart), a damaged one is a\n"
    "counted cold start, never a crash. /readyz answers 503 until the\n"
    "process is warm. --supervise runs the daemon under a fork/exec\n"
    "supervisor with exponential-backoff restarts bounded by\n"
    "--max-restarts (default 5, refilled after a 10 s healthy run).\n"
    "\n"
    "Fleet serving: --shards N (or 'auto' = hardware threads) runs a\n"
    "ServiceFleet of --fleet-areas independent serving areas (default\n"
    "4 per shard) on N per-core lanes with work stealing and a\n"
    "process-wide shared plan table. POST /locate gains an \"area\"\n"
    "member; metrics gain a shard label; checkpoints restore\n"
    "all-or-nothing across every area before /readyz goes 200 (the\n"
    "/readyz body reports areas_ready/areas_total meanwhile). GET\n"
    "/fleetz renders a per-shard JSON drill-down. --slo-p99-ms composes\n"
    "with --shards: the controller senses the label-summed fleet-wide\n"
    "rounds window, so control trajectories are bit-identical at every\n"
    "shard count. --metrics-exemplars opts /metrics into OpenMetrics\n"
    "exemplar suffixes (sampled trace ids on latency buckets).\n";

/// Resolves --shards: absent/"0" = legacy single-service path, "auto" =
/// one shard per hardware thread, otherwise a positive count.
std::size_t parse_shards_flag(const std::string& raw) {
  if (raw.empty() || raw == "0") return 0;
  if (raw == "auto") {
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  std::size_t pos = 0;
  unsigned long value = 0;
  try {
    value = std::stoul(raw, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("--shards must be a positive count or 'auto'");
  }
  if (pos != raw.size() || value == 0) {
    throw std::invalid_argument("--shards must be a positive count or 'auto'");
  }
  return static_cast<std::size_t>(value);
}

cellular::Scenario find_scenario(const std::string& name,
                                 std::uint64_t seed) {
  for (cellular::Scenario& scenario : cellular::all_scenarios(seed)) {
    if (scenario.name == name) return std::move(scenario);
  }
  std::string names;
  for (const cellular::Scenario& scenario : cellular::all_scenarios(seed)) {
    names += names.empty() ? scenario.name : "|" + scenario.name;
  }
  throw std::invalid_argument("unknown scenario '" + name + "' (" + names +
                              ")");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const support::Cli cli(argc, argv);
    if (cli.has("help")) {
      std::cout << kUsage;
      return 0;
    }
    if (cli.has("supervise")) {
      const std::int64_t max_restarts = cli.get_int("max-restarts", 5);
      if (max_restarts < 0) {
        throw std::invalid_argument("--max-restarts must be >= 0");
      }
      return run_supervisor(argc, argv, max_restarts);
    }
    const std::string scenario_name =
        cli.get_string("scenario", "dense-urban");
    const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
    const std::string port_file = cli.get_string("port-file", "");
    const auto workers = static_cast<std::size_t>(cli.get_int("workers", 2));
    const std::int64_t steps = cli.get_int("steps", 0);
    const std::int64_t step_ms = cli.get_int("step-ms", 10);
    const std::int64_t trace_every = cli.get_int("trace-every", 64);
    const std::int64_t trace_capacity = cli.get_int("trace-capacity", 2048);
    const std::int64_t slo_p99_ms = cli.get_int("slo-p99-ms", 0);
    const std::int64_t control_period_ms =
        cli.get_int("control-period-ms", 1000);
    const bool metrics_exemplars = cli.has("metrics-exemplars");
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const std::string snapshot_out = cli.get_string("snapshot-out", "");
    const std::string state_in = cli.get_string("state-in", "");
    const std::string state_out = cli.get_string("state-out", "");
    const std::int64_t checkpoint_every_ms =
        cli.get_int("checkpoint-every-ms", 0);
    const std::size_t num_shards =
        parse_shards_flag(cli.get_string("shards", ""));
    const std::int64_t fleet_areas_flag = cli.get_int("fleet-areas", 0);
    (void)cli.get_int("max-restarts", 5);  // consumed by the supervisor
    for (const auto& flag : cli.unused()) {
      throw std::invalid_argument("unknown flag --" + flag);
    }
    if (checkpoint_every_ms < 0) {
      throw std::invalid_argument("--checkpoint-every-ms must be >= 0");
    }
    if (checkpoint_every_ms > 0 && state_out.empty()) {
      throw std::invalid_argument("--checkpoint-every-ms needs --state-out");
    }
    if (steps < 0 || step_ms < 0 || trace_every < 0 || trace_capacity < 1) {
      throw std::invalid_argument(
          "--steps/--step-ms/--trace-every must be >= 0, "
          "--trace-capacity >= 1");
    }
    if (slo_p99_ms < 0 || control_period_ms < 1) {
      throw std::invalid_argument(
          "--slo-p99-ms must be >= 0, --control-period-ms >= 1");
    }
    if (fleet_areas_flag < 0) {
      throw std::invalid_argument("--fleet-areas must be >= 0");
    }
    if (fleet_areas_flag > 0 && num_shards == 0) {
      throw std::invalid_argument("--fleet-areas needs --shards");
    }

    const cellular::Scenario scenario = find_scenario(scenario_name, seed);
    const cellular::SimConfig& config = scenario.config;
    config.validate();

    if (num_shards > 0) {
      // ---- Fleet serving path (DESIGN.md §14). Independent of the
      // single-service path below: a ServiceFleet of num_areas serving
      // domains on num_shards per-core lanes. Admission control, SLO
      // control (sensing the label-summed fleet-wide rounds window),
      // per-call tracing, checkpointing and the readiness lifecycle are
      // all threaded through; only the resilient-planner chain remains
      // single-service-only (ROADMAP — fleet areas plan with Fig. 1).
      const std::size_t num_areas =
          fleet_areas_flag > 0 ? static_cast<std::size_t>(fleet_areas_flag)
                               : num_shards * 4;

      const support::ClockSource& clock =
          support::SteadyClockSource::shared();
      const cellular::GridTopology grid(config.grid_rows, config.grid_cols,
                                        config.toroidal,
                                        config.neighborhood);
      const cellular::LocationAreas areas = cellular::LocationAreas::tiles(
          grid, config.la_tile_rows, config.la_tile_cols);
      const cellular::MarkovMobility mobility(grid,
                                              config.stay_probability);
      // Every area starts from the same initial cells (drawn exactly as
      // the single-service path draws them); divergence comes from the
      // fleet's per-area mobility substreams.
      prob::Rng rng(config.seed);
      std::vector<cellular::CellId> user_cells;
      user_cells.reserve(config.num_users);
      for (std::size_t u = 0; u < config.num_users; ++u) {
        user_cells.push_back(static_cast<cellular::CellId>(
            rng.next_below(grid.num_cells())));
      }

      support::MetricRegistry registry;
      // One process-wide tracer shared by every area: root sampling is a
      // single atomic counter (exactly 1-in-N fleet-wide) and span stacks
      // are thread_local, so shard lanes trace safely (trace.h audit).
      std::unique_ptr<support::SamplingTracer> tracer;
      if (trace_every > 0) {
        tracer = std::make_unique<support::SamplingTracer>(
            static_cast<std::size_t>(trace_every),
            static_cast<std::size_t>(trace_capacity), clock);
      }
      const cellular::OverloadConfig& overload = config.overload;
      std::optional<support::AdmissionController> admission;
      cellular::LocationService::Config service_cfg =
          config.service_config();
      service_cfg.planner = nullptr;  // fleet areas plan with Fig. 1
      service_cfg.tracer = tracer.get();  // carried into every area
      if (overload.enabled) {
        service_cfg.clock = &clock;
        service_cfg.round_duration_ns = overload.round_duration_ns;
        admission.emplace(overload.admission, clock);
        admission->bind_metrics(registry);
      }
      // The fleet-wide closed loop: ONE controller over ONE shared
      // admission throttle. It senses sum_by("confcall_locate_rounds") —
      // the label-erased union of every shard's window — which is
      // invariant under resharding, so the control trajectory is
      // bit-identical at every shard count (the E21 gate).
      std::unique_ptr<support::SloController> slo;
      if (slo_p99_ms > 0) {
        if (!admission) {
          throw std::invalid_argument(
              "--slo-p99-ms needs a scenario with admission control "
              "(e.g. overloaded-urban)");
        }
        support::SloOptions slo_options = overload.slo;
        slo_options.enabled = true;
        slo_options.target_p99_ns =
            static_cast<std::uint64_t>(slo_p99_ms) * 1'000'000ULL;
        slo_options.control_period_ns =
            static_cast<std::uint64_t>(control_period_ms) * 1'000'000ULL;
        slo = std::make_unique<support::SloController>(
            slo_options, registry, *admission, clock,
            overload.round_duration_ns);
        slo->bind_metrics(registry);
      }

      cellular::FleetConfig fleet_cfg;
      fleet_cfg.num_shards = num_shards;
      fleet_cfg.num_areas = num_areas;
      fleet_cfg.seed = config.seed;
      fleet_cfg.registry = &registry;
      fleet_cfg.pin_threads = true;
      cellular::ServiceFleet fleet(grid, areas, mobility, service_cfg,
                                   user_cells, fleet_cfg);

      const cellular::CallGenerator calls(config.call_rate,
                                          config.num_users,
                                          config.group_min,
                                          config.group_max);
      const cellular::CallGenerator forced_calls(1.0, config.num_users,
                                                 config.group_min,
                                                 config.group_max);

      const support::Counter steps_metric = registry.counter(
          "confcall_serve_steps_total", "Locate-loop steps the daemon ran");
      const support::Counter arrivals_metric = registry.counter(
          "confcall_serve_calls_arrived_total",
          "Conference-call arrivals (loop traffic plus POST /locate)");
      const support::Counter shed_metric = registry.counter(
          "confcall_serve_calls_shed_total",
          "Arrivals rejected by admission control");
      const support::Counter checkpoints_metric = registry.counter(
          "confcall_state_checkpoints_total",
          "State checkpoints written successfully");
      const support::Counter checkpoint_failed_metric = registry.counter(
          "confcall_state_checkpoint_failed_total",
          "State checkpoint writes that failed (I/O)");
      const support::Gauge checkpoint_bytes_metric = registry.gauge(
          "confcall_state_checkpoint_bytes",
          "Size of the last checkpoint file written");
      const auto count_restore = [&registry](const std::string& result) {
        registry
            .counter("confcall_state_restore_total",
                     "Startup state-restore attempts by result: restored, "
                     "or the cold-start cause",
                     {{"result", result}})
            .inc();
      };

      // One mutex serializes every fleet dispatch (loop vs POST /locate
      // vs checkpoints); parallelism happens INSIDE a dispatch, across
      // the fleet's shard lanes.
      std::mutex sim_mutex;
      support::ReadinessGate readiness;

      std::uint64_t checkpoints_written = 0;
      const auto write_checkpoint = [&] {
        support::StateBundle bundle;
        {
          std::lock_guard<std::mutex> lock(sim_mutex);
          fleet.add_state_sections(bundle);
        }
        if (slo) {
          bundle.add(support::SloController::kStateSection,
                     support::SloController::kStateVersion,
                     slo->save_state());
        }
        try {
          const std::size_t bytes =
              support::save_state_file(state_out, bundle);
          checkpoints_metric.inc();
          checkpoint_bytes_metric.set(static_cast<double>(bytes));
          ++checkpoints_written;
          return true;
        } catch (const std::exception& error) {
          checkpoint_failed_metric.inc();
          std::cerr << "confcall_serve: checkpoint failed: " << error.what()
                    << "\n";
          return false;
        }
      };

      // Synthesized arrivals rotate areas round-robin so every serving
      // domain sees loop traffic.
      std::uint64_t area_rotor = 0;
      const auto admit = [&](std::size_t participants,
                             cellular::LocationService::LocateContext*
                                 context) {
        if (!admission) return true;
        const support::AdmissionController::Decision decision =
            admission->admit(static_cast<double>(participants));
        if (decision == support::AdmissionController::Decision::kShed) {
          shed_metric.inc();
          return false;
        }
        if (decision ==
            support::AdmissionController::Decision::kAdmitDegraded) {
          context->plan_cheap = true;
        }
        if (overload.call_deadline_ns != 0) {
          context->deadline =
              support::Deadline::after(overload.call_deadline_ns, clock);
        }
        return true;
      };

      const auto step_once = [&] {
        std::lock_guard<std::mutex> lock(sim_mutex);
        fleet.step_all();
        steps_metric.inc();
        const cellular::CallEvent event = calls.maybe_call(rng);
        if (!event.participants.empty()) {
          arrivals_metric.inc();
          cellular::ServiceFleet::Request request;
          request.area = area_rotor++ % num_areas;
          request.users = event.participants;
          if (admit(request.users.size(), &request.context)) {
            (void)fleet.locate_many({&request, 1});
          }
        }
        // Controller steps land on the wall-clock period grid; polling
        // it every loop step is one clock read when no boundary passed.
        if (slo) (void)slo->maybe_step();
      };

      support::HttpServerOptions http_options;
      http_options.port = port;
      http_options.workers = workers;
      support::HttpServer server(http_options);
      server.bind_metrics(registry);
      // Restore progress in the /readyz body: a balancer (or operator)
      // polling through a warm restart sees how many areas validated so
      // far, not just a bare 503.
      support::ObservabilityOptions observability;
      observability.exemplars = metrics_exemplars;
      observability.readyz_detail = [&fleet, &readiness, num_areas] {
        const support::Readiness phase = readiness.state();
        std::size_t ready = 0;
        if (phase == support::Readiness::kReady ||
            phase == support::Readiness::kDraining) {
          ready = num_areas;
        } else if (phase == support::Readiness::kRestoring) {
          ready = fleet.areas_restored();
        }
        return "\"areas_ready\": " + std::to_string(ready) +
               ", \"areas_total\": " + std::to_string(num_areas);
      };
      support::install_observability_routes(
          server, &registry, tracer.get(),
          admission ? &*admission : nullptr, slo.get(), &readiness,
          observability);
      // Fleet drill-down: ONE consistent registry snapshot rendered as
      // per-shard JSON — queue depth, work stealing, task latency, plan
      // cache traffic and the exemplar trace ids that bridge the rounds
      // histogram to /traces. Counters come from the snapshot rather
      // than FleetStats: the snapshot is a race-free consistent cut the
      // dispatcher thread never has to pause for.
      server.handle("GET", "/fleetz", [&](const support::HttpRequest&) {
        support::HttpResponse response;
        response.content_type = "application/json";
        const support::RegistrySnapshot snap = registry.snapshot();
        const auto find = [&snap](std::string_view name,
                                  const std::string& shard)
            -> const support::MetricSnapshot* {
          for (const support::MetricSnapshot& metric : snap.metrics) {
            if (metric.name != name) continue;
            if (shard.empty() && metric.labels.empty()) return &metric;
            for (const auto& label : metric.labels) {
              if (label.first == "shard" && label.second == shard) {
                return &metric;
              }
            }
          }
          return nullptr;
        };
        const auto counter = [&find](std::string_view name,
                                     const std::string& shard) {
          const support::MetricSnapshot* metric = find(name, shard);
          return metric ? metric->counter_value : std::uint64_t{0};
        };
        const auto hex16 = [](std::uint64_t id) {
          std::ostringstream os;
          os << std::hex << std::setfill('0') << std::setw(16) << id;
          return os.str();
        };
        const support::Readiness phase = readiness.state();
        std::size_t areas_ready = 0;
        if (phase == support::Readiness::kReady ||
            phase == support::Readiness::kDraining) {
          areas_ready = num_areas;
        } else if (phase == support::Readiness::kRestoring) {
          areas_ready = fleet.areas_restored();
        }
        std::ostringstream body;
        body << "{\"shards\": " << num_shards
             << ", \"areas\": " << num_areas
             << ", \"areas_ready\": " << areas_ready
             << ", \"phase\": \"" << support::readiness_name(phase)
             << "\", \"dispatches\": "
             << counter("confcall_fleet_dispatches_total", "")
             << ", \"requests\": "
             << counter("confcall_fleet_requests_total", "")
             << ", \"queue_overflows\": "
             << counter("confcall_fleet_queue_overflow_total", "");
        const support::MetricSnapshot* entries =
            find("confcall_fleet_shared_plan_entries", "");
        body << ", \"shared_plan\": {\"hits\": "
             << counter("confcall_fleet_shared_plan_hits_total", "")
             << ", \"misses\": "
             << counter("confcall_fleet_shared_plan_misses_total", "")
             << ", \"entries\": "
             << (entries != nullptr
                     ? static_cast<std::uint64_t>(entries->gauge_value)
                     : 0)
             << "}, \"per_shard\": [";
        for (std::size_t s = 0; s < num_shards; ++s) {
          const std::string shard = std::to_string(s);
          if (s > 0) body << ", ";
          const support::MetricSnapshot* depth =
              find("confcall_fleet_queue_depth", shard);
          const support::MetricSnapshot* task_ns =
              find("confcall_fleet_task_ns", shard);
          const support::MetricSnapshot* rounds =
              find("confcall_locate_rounds", shard);
          body << "{\"shard\": " << s << ", \"queue_depth\": "
               << (depth != nullptr
                       ? static_cast<std::uint64_t>(depth->gauge_value)
                       : 0)
               << ", \"tasks\": "
               << counter("confcall_fleet_tasks_total", shard)
               << ", \"steals\": "
               << counter("confcall_fleet_steals_total", shard)
               << ", \"task_p99_ns\": "
               << (task_ns != nullptr ? task_ns->histogram.quantile(0.99)
                                      : 0.0)
               << ", \"locate_calls\": "
               << counter("confcall_locate_calls_total", shard)
               << ", \"plan_cache_hits\": "
               << counter("confcall_locate_plan_cache_hits_total", shard)
               << ", \"plan_cache_misses\": "
               << counter("confcall_locate_plan_cache_misses_total", shard)
               << ", \"rounds_p99\": "
               << (rounds != nullptr ? rounds->histogram.quantile(0.99)
                                     : 0.0)
               << ", \"exemplar_trace_ids\": [";
          bool first = true;
          if (rounds != nullptr) {
            for (const support::Exemplar& exemplar :
                 rounds->histogram.exemplars) {
              if (!exemplar.valid()) continue;
              if (!first) body << ", ";
              first = false;
              body << "\"" << hex16(exemplar.trace_id) << "\"";
            }
          }
          body << "]}";
        }
        body << "]}\n";
        response.body = body.str();
        return response;
      });
      server.handle("POST", "/locate", [&](const support::HttpRequest&
                                               http_request) {
        support::HttpResponse response;
        response.content_type = "application/json";
        cellular::LocateApiRequest api;
        try {
          api = cellular::parse_locate_body(http_request.body,
                                            config.num_users, num_areas);
        } catch (const std::exception& error) {
          response.status = 400;
          response.body = "{\"error\": \"" +
                          support::json_escape(error.what()) + "\"}\n";
          return response;
        }

        std::lock_guard<std::mutex> lock(sim_mutex);
        struct PendingCall {
          cellular::ServiceFleet::Request request;
          bool admitted = false;
        };
        std::vector<PendingCall> pending;
        pending.reserve(api.calls.size());
        std::vector<cellular::ServiceFleet::Request> admitted;
        admitted.reserve(api.calls.size());
        for (const cellular::LocateCallSpec& spec : api.calls) {
          PendingCall call;
          call.request.area = spec.area;
          call.request.users =
              spec.users.empty()
                  ? forced_calls.maybe_call(rng).participants
                  : spec.users;
          arrivals_metric.inc();
          call.admitted =
              admit(call.request.users.size(), &call.request.context);
          pending.push_back(std::move(call));
        }
        for (const PendingCall& call : pending) {
          if (call.admitted) admitted.push_back(call.request);
        }
        const std::vector<cellular::LocationService::LocateOutcome>
            outcomes = fleet.locate_many(admitted);

        std::string body;
        std::size_t next_outcome = 0;
        if (api.batch) {
          body += "[";
          for (std::size_t i = 0; i < pending.size(); ++i) {
            if (i > 0) body += ", ";
            const PendingCall& call = pending[i];
            cellular::append_outcome_json(
                body, call.admitted, call.request.users.size(),
                call.admitted ? &outcomes[next_outcome] : nullptr);
            if (call.admitted) ++next_outcome;
          }
          body += "]\n";
        } else {
          const PendingCall& call = pending.front();
          if (!call.admitted) response.status = 503;
          cellular::append_outcome_json(
              body, call.admitted, call.request.users.size(),
              call.admitted ? &outcomes.front() : nullptr);
          body += "\n";
        }
        response.body = std::move(body);
        return response;
      });

      (void)std::signal(SIGINT, on_signal);
      (void)std::signal(SIGTERM, on_signal);
      server.start();
      if (!port_file.empty()) {
        std::ofstream out(port_file);
        if (!out) {
          throw std::runtime_error("cannot write port file '" + port_file +
                                   "'");
        }
        out << server.port() << "\n";
      }
      std::cout << "confcall_serve: scenario=" << scenario.name
                << " serving on 127.0.0.1:" << server.port()
                << " (fleet: " << num_shards << " shards, " << num_areas
                << " areas";
      if (slo) {
        std::cout << ", slo-p99-ms=" << slo_p99_ms
                  << ", control-period-ms=" << control_period_ms;
      }
      std::cout << ")" << std::endl;

      // Warm restart or cold start, fleet-wide. /readyz holds 503 until
      // EVERY area has restored (the fleet restore is all-or-nothing) or
      // the whole fleet has warmed up.
      bool restored = false;
      if (!state_in.empty()) {
        readiness.set(support::Readiness::kRestoring);
        const support::StateLoadResult loaded =
            support::load_state_file(state_in);
        if (!loaded.ok()) {
          count_restore(std::string("cold_") +
                        support::state_load_status_name(loaded.status));
          std::cout << "confcall_serve: state: cold start ("
                    << support::state_load_status_name(loaded.status)
                    << ": " << loaded.message << ")" << std::endl;
        } else {
          bool sections_ok = false;
          {
            std::lock_guard<std::mutex> lock(sim_mutex);
            sections_ok = fleet.restore_state_sections(loaded.bundle);
          }
          if (sections_ok && slo) {
            // Controller actuators resume at their converged operating
            // point together with the fleet state they converged on.
            const support::StateSection* section =
                loaded.bundle.find(support::SloController::kStateSection);
            sections_ok = section != nullptr &&
                          slo->restore_state(section->payload,
                                             section->version);
          }
          if (sections_ok) {
            restored = true;
            count_restore("restored");
            std::cout << "confcall_serve: state: restored all "
                      << num_areas << " fleet areas from " << state_in
                      << std::endl;
          } else {
            count_restore("cold_section_mismatch");
            std::cout << "confcall_serve: state: cold start (fleet "
                         "section missing, version skew, or shape "
                         "mismatch)"
                      << std::endl;
          }
        }
      }
      if (!restored) {
        readiness.set(support::Readiness::kWarmup);
        for (std::size_t t = 0; t < config.warmup_steps; ++t) {
          std::lock_guard<std::mutex> lock(sim_mutex);
          fleet.step_all();
        }
      }
      readiness.set(support::Readiness::kReady);

      const std::uint64_t checkpoint_period_ns =
          static_cast<std::uint64_t>(checkpoint_every_ms) * 1'000'000ULL;
      std::uint64_t next_checkpoint_ns =
          checkpoint_period_ns == 0 ? 0
                                    : clock.now_ns() + checkpoint_period_ns;

      std::uint64_t steps_run = 0;
      while (!g_stop.load()) {
        if (steps > 0 && steps_run >= static_cast<std::uint64_t>(steps)) {
          break;
        }
        step_once();
        ++steps_run;
        if (checkpoint_period_ns != 0) {
          const std::uint64_t now = clock.now_ns();
          if (now >= next_checkpoint_ns) {
            while (next_checkpoint_ns <= now) {
              next_checkpoint_ns += checkpoint_period_ns;
            }
            (void)write_checkpoint();
          }
        }
        if (step_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(step_ms));
        }
      }

      readiness.set(support::Readiness::kDraining);
      server.stop();
      if (!state_out.empty()) (void)write_checkpoint();
      const support::RegistrySnapshot snapshot = registry.snapshot();
      if (!snapshot_out.empty()) {
        std::string error;
        if (!support::write_file_atomic(
                snapshot_out, support::to_json(snapshot), &error)) {
          throw std::runtime_error("cannot write snapshot file: " + error);
        }
      }
      const cellular::ServiceFleet::FleetStats& fleet_stats = fleet.stats();
      std::cout << "confcall_serve: stopped after " << steps_run
                << " steps, served " << server.requests_served()
                << " http requests (" << server.connections_shed()
                << " shed), fleet ran " << fleet_stats.tasks
                << " area-tasks (" << fleet_stats.steals << " stolen, "
                << fleet_stats.overflows << " overflowed)";
      if (!state_out.empty()) {
        std::cout << ", wrote " << checkpoints_written << " checkpoints";
      }
      if (tracer) {
        std::cout << ", sampled " << tracer->roots_sampled() << "/"
                  << tracer->roots_seen() << " traces";
      }
      if (slo) {
        std::cout << ", ran " << slo->control_steps() << " control steps ("
                  << slo->breaches() << " breached, "
                  << slo->pre_breach_signals() << " pre-breach)";
      }
      std::cout << std::endl;
      return 0;
    }

    // The simulator's stack, assembled on the REAL clock: token refill,
    // call deadlines and breaker cooldowns all track wall time here,
    // where run_simulation drives them from a virtual ManualClock.
    const support::ClockSource& clock = support::SteadyClockSource::shared();
    const cellular::GridTopology grid(config.grid_rows, config.grid_cols,
                                      config.toroidal, config.neighborhood);
    const cellular::LocationAreas areas = cellular::LocationAreas::tiles(
        grid, config.la_tile_rows, config.la_tile_cols);
    const cellular::MarkovMobility mobility(grid, config.stay_probability);
    prob::Rng rng(config.seed);
    std::vector<cellular::CellId> user_cells;
    user_cells.reserve(config.num_users);
    for (std::size_t u = 0; u < config.num_users; ++u) {
      user_cells.push_back(
          static_cast<cellular::CellId>(rng.next_below(grid.num_cells())));
    }

    support::MetricRegistry registry;
    std::unique_ptr<support::SamplingTracer> tracer;
    if (trace_every > 0) {
      tracer = std::make_unique<support::SamplingTracer>(
          static_cast<std::size_t>(trace_every),
          static_cast<std::size_t>(trace_capacity), clock);
    }

    const cellular::OverloadConfig& overload = config.overload;
    std::unique_ptr<core::ResilientPlanner> resilient;
    std::optional<support::AdmissionController> admission;
    cellular::LocationService::Config service_cfg = config.service_config();
    service_cfg.metrics = cellular::ServiceMetrics::create(registry);
    service_cfg.tracer = tracer.get();
    if (overload.enabled) {
      if (overload.resilient_planner) {
        std::vector<std::unique_ptr<core::Planner>> chain;
        chain.push_back(std::make_unique<core::TypedExactPlanner>(
            core::Objective::all_of(), overload.planner_node_limit));
        chain.push_back(std::make_unique<core::GreedyPlanner>());
        chain.push_back(std::make_unique<core::BlanketPlanner>());
        resilient = std::make_unique<core::ResilientPlanner>(
            std::move(chain), core::ResilientPlanner::Budget{0.0}, clock,
            overload.breaker, &registry);
        service_cfg.planner = resilient.get();
      }
      service_cfg.clock = &clock;
      service_cfg.round_duration_ns = overload.round_duration_ns;
      admission.emplace(overload.admission, clock);
      admission->bind_metrics(registry);
    }
    // The closed loop, on wall time: target and period scale from the
    // simulator's virtual-ns defaults to the flags' milliseconds.
    std::unique_ptr<support::SloController> slo;
    if (slo_p99_ms > 0) {
      if (!admission) {
        throw std::invalid_argument(
            "--slo-p99-ms needs a scenario with admission control "
            "(e.g. overloaded-urban)");
      }
      support::SloOptions slo_options = overload.slo;
      slo_options.enabled = true;
      slo_options.target_p99_ns =
          static_cast<std::uint64_t>(slo_p99_ms) * 1'000'000ULL;
      slo_options.control_period_ns =
          static_cast<std::uint64_t>(control_period_ms) * 1'000'000ULL;
      slo = std::make_unique<support::SloController>(
          slo_options, registry, *admission, clock,
          overload.round_duration_ns);
      if (resilient) {
        for (std::size_t i = 0; i + 1 < resilient->num_tiers(); ++i) {
          slo->add_breaker(&resilient->mutable_breaker(i));
        }
      }
      slo->bind_metrics(registry);
    }

    cellular::LocationService service(grid, areas, mobility, service_cfg,
                                      user_cells);
    cellular::FaultPlan faults(config.faults, grid.num_cells());
    if (config.paging_policy != cellular::PagingPolicy::kAdaptive) {
      service.attach_faults(&faults);
    }
    const cellular::CallGenerator calls(config.call_rate, config.num_users,
                                        config.group_min, config.group_max);
    // Forced arrivals for POST /locate: same group-size law, rate 1.
    const cellular::CallGenerator forced_calls(1.0, config.num_users,
                                               config.group_min,
                                               config.group_max);
    std::optional<cellular::BurstyCallGenerator> bursty;
    if (config.burst.enabled) {
      bursty.emplace(config.burst, config.num_users, config.group_min,
                     config.group_max);
    }

    const support::Counter steps_metric = registry.counter(
        "confcall_serve_steps_total", "Locate-loop steps the daemon ran");
    const support::Counter arrivals_metric = registry.counter(
        "confcall_serve_calls_arrived_total",
        "Conference-call arrivals (loop traffic plus POST /locate)");
    const support::Counter shed_metric = registry.counter(
        "confcall_serve_calls_shed_total",
        "Arrivals rejected by admission control");

    // One mutex serializes every touch of the simulation state (service,
    // user cells, rng, generators) between the locate loop and the POST
    // /locate handler. Registry/tracer/admission are internally locked
    // and stay readable by the scrape handlers without it.
    std::mutex sim_mutex;

    // Crash-safety surface: the readiness gate the balancer watches, the
    // checkpoint/restore metrics, and the daemon's own state section
    // (ground-truth user cells — without them a restored location
    // database would describe users the freshly randomized world
    // contradicts, and every warm locate would fall into recovery).
    support::ReadinessGate readiness;
    const support::Counter checkpoints_metric = registry.counter(
        "confcall_state_checkpoints_total",
        "State checkpoints written successfully");
    const support::Counter checkpoint_failed_metric = registry.counter(
        "confcall_state_checkpoint_failed_total",
        "State checkpoint writes that failed (I/O)");
    const support::Gauge checkpoint_bytes_metric = registry.gauge(
        "confcall_state_checkpoint_bytes",
        "Size of the last checkpoint file written");
    const auto count_restore = [&registry](const std::string& result) {
      registry
          .counter("confcall_state_restore_total",
                   "Startup state-restore attempts by result: restored, "
                   "or the cold-start cause",
                   {{"result", result}})
          .inc();
    };

    constexpr const char* kDaemonSection = "serve_daemon";
    constexpr std::uint32_t kDaemonVersion = 1;
    const auto save_daemon_state = [&user_cells] {
      support::StateWriter writer;
      writer.put_u64(user_cells.size());
      for (const cellular::CellId cell : user_cells) writer.put_u32(cell);
      return std::move(writer).take();
    };
    const auto restore_daemon_state = [&](std::string_view payload,
                                          std::uint32_t version) {
      if (version != kDaemonVersion) return false;
      try {
        support::StateReader reader(payload);
        if (reader.get_u64() != user_cells.size()) return false;
        std::vector<cellular::CellId> cells;
        cells.reserve(user_cells.size());
        for (std::size_t u = 0; u < user_cells.size(); ++u) {
          const cellular::CellId cell = reader.get_u32();
          if (cell >= grid.num_cells()) return false;
          cells.push_back(cell);
        }
        if (!reader.at_end()) return false;
        user_cells = std::move(cells);
        return true;
      } catch (const support::StateFormatError&) {
        return false;
      }
    };

    std::uint64_t checkpoints_written = 0;
    const auto write_checkpoint = [&] {
      support::StateBundle bundle;
      {
        // The sim lock covers service + user cells; the SLO controller
        // is internally locked and snapshots itself outside it.
        std::lock_guard<std::mutex> lock(sim_mutex);
        bundle.add(cellular::LocationService::kStateSection,
                   cellular::LocationService::kStateVersion,
                   service.save_state());
        bundle.add(kDaemonSection, kDaemonVersion, save_daemon_state());
      }
      if (slo) {
        bundle.add(support::SloController::kStateSection,
                   support::SloController::kStateVersion, slo->save_state());
      }
      try {
        const std::size_t bytes =
            support::save_state_file(state_out, bundle);
        checkpoints_metric.inc();
        checkpoint_bytes_metric.set(static_cast<double>(bytes));
        ++checkpoints_written;
        return true;
      } catch (const std::exception& error) {
        // A full disk must degrade durability, never serving.
        checkpoint_failed_metric.inc();
        std::cerr << "confcall_serve: checkpoint failed: " << error.what()
                  << "\n";
        return false;
      }
    };

    // One paced step: move everyone, then maybe serve one arriving call.
    // Returns false when the call was shed.
    const auto serve_call = [&](const cellular::CallEvent& event,
                                cellular::LocationService::LocateOutcome*
                                    outcome_out) {
      arrivals_metric.inc();
      cellular::LocationService::LocateContext context;
      if (admission) {
        const support::AdmissionController::Decision decision =
            admission->admit(static_cast<double>(event.participants.size()));
        if (decision == support::AdmissionController::Decision::kShed) {
          shed_metric.inc();
          return false;
        }
        if (decision ==
            support::AdmissionController::Decision::kAdmitDegraded) {
          context.plan_cheap = true;
        }
        if (overload.call_deadline_ns != 0) {
          context.deadline =
              support::Deadline::after(overload.call_deadline_ns, clock);
        }
      }
      std::vector<cellular::CellId> true_cells;
      true_cells.reserve(event.participants.size());
      for (const cellular::UserId user : event.participants) {
        true_cells.push_back(user_cells[user]);
      }
      const cellular::LocationService::LocateOutcome outcome =
          service.locate(event.participants, true_cells, rng, context);
      if (outcome_out != nullptr) *outcome_out = outcome;
      return true;
    };

    const auto step_once = [&] {
      std::lock_guard<std::mutex> lock(sim_mutex);
      faults.begin_step();
      for (std::size_t u = 0; u < config.num_users; ++u) {
        user_cells[u] = mobility.step(user_cells[u], rng);
        (void)service.observe_move(static_cast<cellular::UserId>(u),
                                   user_cells[u]);
      }
      service.tick();
      steps_metric.inc();
      const cellular::CallEvent event =
          bursty ? bursty->maybe_call(rng) : calls.maybe_call(rng);
      if (!event.participants.empty()) (void)serve_call(event, nullptr);
      // Controller steps land on the wall-clock period grid; polling it
      // every loop step is one clock read when no boundary passed.
      if (slo) (void)slo->maybe_step();
    };

    support::HttpServerOptions http_options;
    http_options.port = port;
    http_options.workers = workers;
    support::HttpServer server(http_options);
    server.bind_metrics(registry);
    support::ObservabilityOptions observability;
    observability.exemplars = metrics_exemplars;
    support::install_observability_routes(
        server, &registry, tracer.get(),
        admission ? &*admission : nullptr, slo.get(), &readiness,
        observability);
    server.handle("POST", "/locate", [&](const support::HttpRequest&
                                             http_request) {
      support::HttpResponse response;
      response.content_type = "application/json";
      // Parse outside the sim lock: malformed input never touches (or
      // blocks) the simulation state.
      cellular::LocateApiRequest api;
      try {
        api = cellular::parse_locate_body(http_request.body,
                                          config.num_users);
      } catch (const std::exception& error) {
        response.status = 400;
        response.body = "{\"error\": \"" +
                        support::json_escape(error.what()) + "\"}\n";
        return response;
      }

      std::lock_guard<std::mutex> lock(sim_mutex);
      // One admission pass over the whole batch, then a single
      // locate_many over the admitted calls — the batch amortizes the
      // span root, the batch-size histogram and every per-call scratch
      // structure inside the service.
      struct PendingCall {
        std::vector<cellular::UserId> users;
        std::vector<cellular::CellId> true_cells;
        cellular::LocationService::LocateContext context;
        bool admitted = false;
      };
      std::vector<PendingCall> pending;
      pending.reserve(api.calls.size());
      std::vector<cellular::LocationService::LocateRequest> admitted;
      admitted.reserve(api.calls.size());
      for (const cellular::LocateCallSpec& spec : api.calls) {
        PendingCall call;
        call.users = spec.users.empty()
                         ? forced_calls.maybe_call(rng).participants
                         : spec.users;
        arrivals_metric.inc();
        call.admitted = true;
        if (admission) {
          const support::AdmissionController::Decision decision =
              admission->admit(static_cast<double>(call.users.size()));
          if (decision == support::AdmissionController::Decision::kShed) {
            shed_metric.inc();
            call.admitted = false;
          } else if (decision ==
                     support::AdmissionController::Decision::
                         kAdmitDegraded) {
            call.context.plan_cheap = true;
          }
          if (call.admitted && overload.call_deadline_ns != 0) {
            call.context.deadline = support::Deadline::after(
                overload.call_deadline_ns, clock);
          }
        }
        if (call.admitted) {
          call.true_cells.reserve(call.users.size());
          for (const cellular::UserId user : call.users) {
            call.true_cells.push_back(user_cells[user]);
          }
        }
        pending.push_back(std::move(call));
      }
      for (const PendingCall& call : pending) {
        if (!call.admitted) continue;
        admitted.push_back({call.users, call.true_cells, call.context});
      }
      const std::vector<cellular::LocationService::LocateOutcome> outcomes =
          service.locate_many(admitted, rng);

      std::string body;
      std::size_t next_outcome = 0;
      if (api.batch) {
        body += "[";
        for (std::size_t i = 0; i < pending.size(); ++i) {
          if (i > 0) body += ", ";
          const PendingCall& call = pending[i];
          cellular::append_outcome_json(
              body, call.admitted, call.users.size(),
              call.admitted ? &outcomes[next_outcome] : nullptr);
          if (call.admitted) ++next_outcome;
        }
        body += "]\n";
      } else {
        // Single-call contract (empty body or one object): 503 on shed.
        const PendingCall& call = pending.front();
        if (!call.admitted) response.status = 503;
        cellular::append_outcome_json(
            body, call.admitted, call.users.size(),
            call.admitted ? &outcomes.front() : nullptr);
        body += "\n";
      }
      response.body = std::move(body);
      return response;
    });

    (void)std::signal(SIGINT, on_signal);
    (void)std::signal(SIGTERM, on_signal);
    server.start();
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      if (!out) {
        throw std::runtime_error("cannot write port file '" + port_file +
                                 "'");
      }
      out << server.port() << "\n";
    }
    std::cout << "confcall_serve: scenario=" << scenario.name
              << " serving on 127.0.0.1:" << server.port()
              << " (trace-every=" << trace_every;
    if (slo) {
      std::cout << ", slo-p99-ms=" << slo_p99_ms
                << ", control-period-ms=" << control_period_ms;
    }
    std::cout << ")" << std::endl;

    // Warm restart or cold start. The server is already answering, but
    // /readyz holds 503 through restore and warmup so a balancer does
    // not route to a half-warm backend. A valid checkpoint stands in for
    // the whole warmup phase: the location database, visit statistics,
    // plan cache and SLO actuators resume where the previous process
    // left them.
    bool restored = false;
    if (!state_in.empty()) {
      readiness.set(support::Readiness::kRestoring);
      const support::StateLoadResult loaded =
          support::load_state_file(state_in);
      if (!loaded.ok()) {
        count_restore(std::string("cold_") +
                      support::state_load_status_name(loaded.status));
        std::cout << "confcall_serve: state: cold start ("
                  << support::state_load_status_name(loaded.status) << ": "
                  << loaded.message << ")" << std::endl;
      } else {
        bool sections_ok = true;
        {
          std::lock_guard<std::mutex> lock(sim_mutex);
          const support::StateSection* svc =
              loaded.bundle.find(cellular::LocationService::kStateSection);
          sections_ok = svc != nullptr &&
                        service.restore_state(svc->payload, svc->version);
          const support::StateSection* daemon =
              loaded.bundle.find(kDaemonSection);
          sections_ok = sections_ok && daemon != nullptr &&
                        restore_daemon_state(daemon->payload,
                                             daemon->version);
        }
        if (sections_ok && slo) {
          const support::StateSection* section =
              loaded.bundle.find(support::SloController::kStateSection);
          sections_ok = section != nullptr &&
                        slo->restore_state(section->payload,
                                           section->version);
        }
        if (sections_ok) {
          restored = true;
          count_restore("restored");
          std::cout << "confcall_serve: state: restored from " << state_in
                    << " (" << loaded.bundle.sections().size()
                    << " sections)" << std::endl;
        } else {
          count_restore("cold_section_mismatch");
          std::cout << "confcall_serve: state: cold start (section "
                       "missing, version skew, or shape mismatch)"
                    << std::endl;
        }
      }
    }
    if (!restored) {
      // Warmup (movement only, unpaced) so the location database is
      // warm before the first routed locate.
      readiness.set(support::Readiness::kWarmup);
      for (std::size_t t = 0; t < config.warmup_steps; ++t) {
        std::lock_guard<std::mutex> lock(sim_mutex);
        faults.begin_step();
        for (std::size_t u = 0; u < config.num_users; ++u) {
          user_cells[u] = mobility.step(user_cells[u], rng);
          (void)service.observe_move(static_cast<cellular::UserId>(u),
                                     user_cells[u]);
        }
        service.tick();
      }
    }
    readiness.set(support::Readiness::kReady);

    // Checkpoints land on a fixed period grid from here, like the SLO
    // controller's steps: however late a loop iteration polls, the next
    // boundary stays a multiple of the period.
    const std::uint64_t checkpoint_period_ns =
        static_cast<std::uint64_t>(checkpoint_every_ms) * 1'000'000ULL;
    std::uint64_t next_checkpoint_ns =
        checkpoint_period_ns == 0 ? 0
                                  : clock.now_ns() + checkpoint_period_ns;

    std::uint64_t steps_run = 0;
    while (!g_stop.load()) {
      if (steps > 0 && steps_run >= static_cast<std::uint64_t>(steps)) break;
      step_once();
      ++steps_run;
      if (checkpoint_period_ns != 0) {
        const std::uint64_t now = clock.now_ns();
        if (now >= next_checkpoint_ns) {
          while (next_checkpoint_ns <= now) {
            next_checkpoint_ns += checkpoint_period_ns;
          }
          (void)write_checkpoint();
        }
      }
      if (step_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(step_ms));
      }
    }

    // Graceful drain: readiness drops first (the balancer stops routing),
    // the listener closes, accepted connections are still answered, then
    // the final checkpoint and snapshot are cut.
    readiness.set(support::Readiness::kDraining);
    server.stop();
    if (!state_out.empty()) (void)write_checkpoint();
    const support::RegistrySnapshot snapshot = registry.snapshot();
    if (!snapshot_out.empty()) {
      // Atomic temp+rename: a crash mid-dump must never leave a torn
      // snapshot where a complete one is expected.
      std::string error;
      if (!support::write_file_atomic(snapshot_out,
                                      support::to_json(snapshot), &error)) {
        throw std::runtime_error("cannot write snapshot file: " + error);
      }
    }
    std::cout << "confcall_serve: stopped after " << steps_run
              << " steps, served " << server.requests_served()
              << " http requests (" << server.connections_shed()
              << " shed)";
    if (!state_out.empty()) {
      std::cout << ", wrote " << checkpoints_written << " checkpoints";
    }
    if (tracer) {
      std::cout << ", sampled " << tracer->roots_sampled() << "/"
                << tracer->roots_seen() << " traces";
    }
    if (slo) {
      std::cout << ", ran " << slo->control_steps() << " control steps ("
                << slo->breaches() << " breached, "
                << slo->pre_breach_signals() << " pre-breach)";
    }
    std::cout << std::endl;
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "confcall_serve: " << error.what() << "\n";
    return 1;
  }
}
