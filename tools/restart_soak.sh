#!/usr/bin/env bash
# Kill -9 restart soak for confcall_serve's crash-safety path.
#
# Each iteration starts the daemon with --state-in/--state-out pointed
# at the same checkpoint file, waits for it to reach the serving line
# (so at least one 50 ms checkpoint has a chance to land), then kills it
# with SIGKILL — no drain, no atexit, the torn-write worst case. The
# next iteration must come up printing exactly one typed state line:
# "state: restored from ..." (the checkpoint survived) or "state: cold
# start (...)" (it was missing/damaged and the loader said so). A hang,
# a crash on load, or a missing state line fails the soak. The run ends
# with one graceful --steps run that must restore and exit 0.
#
# Usage: restart_soak.sh [path/to/confcall_serve]
#   RESTART_SOAK_ITERS   kill -9 iterations (default 5)
set -u

BIN="${1:-build/tools/confcall_serve}"
ITERS="${RESTART_SOAK_ITERS:-5}"
WORK="$(mktemp -d)"
STATE="$WORK/state.bin"
trap 'rm -rf "$WORK"' EXIT

if [ ! -x "$BIN" ]; then
  echo "restart_soak: daemon binary not found: $BIN" >&2
  exit 2
fi

fail() {
  echo "restart_soak: FAIL: $1" >&2
  echo "---- last daemon log ----" >&2
  cat "$WORK/log" >&2
  exit 1
}

restored=0
for i in $(seq 1 "$ITERS"); do
  : > "$WORK/log"
  "$BIN" --scenario overloaded-urban --port 0 --port-file "$WORK/port" \
    --workers 2 --step-ms 5 --slo-p99-ms 2 --control-period-ms 100 \
    --state-in "$STATE" --state-out "$STATE" --checkpoint-every-ms 50 \
    >"$WORK/log" 2>&1 &
  pid=$!

  # Wait for the serving line (state line prints just after it).
  for _ in $(seq 1 200); do
    grep -q "serving on" "$WORK/log" && break
    kill -0 "$pid" 2>/dev/null || fail "iteration $i: daemon died on startup"
    sleep 0.05
  done
  grep -q "serving on" "$WORK/log" || fail "iteration $i: never started serving"
  for _ in $(seq 1 100); do
    grep -q "state: " "$WORK/log" && break
    sleep 0.05
  done
  grep -q "state: restored from\|state: cold start" "$WORK/log" \
    || fail "iteration $i: no typed state line after startup"
  grep -q "state: restored from" "$WORK/log" && restored=$((restored + 1))

  # Let a few checkpoint grid points pass, then kill without mercy.
  sleep 0.4
  kill -9 "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  echo "restart_soak: iteration $i: $(grep -o 'state: [^)]*)\|state: restored from [^ ]*' "$WORK/log" | head -1)"
done

# Every post-crash restart (iterations 2..N) should have found the
# checkpoint the previous incarnation wrote before dying.
[ "$ITERS" -lt 2 ] || [ "$restored" -ge 1 ] \
  || fail "no iteration ever warm-restored; checkpoints never survive kill -9"

# Final graceful run: restore the last kill -9 survivor's checkpoint,
# serve a bounded number of steps, drain, and exit 0.
: > "$WORK/log"
"$BIN" --scenario overloaded-urban --port 0 --workers 2 --steps 40 \
  --step-ms 5 --slo-p99-ms 2 --control-period-ms 100 \
  --state-in "$STATE" --state-out "$STATE" \
  >"$WORK/log" 2>&1
status=$?
[ "$status" -eq 0 ] || fail "graceful final run exited $status"
grep -q "state: restored from" "$WORK/log" \
  || fail "graceful final run did not warm-restore the soak checkpoint"

echo "restart_soak: PASS ($ITERS kill -9 iterations, $restored warm restores)"
