#!/usr/bin/env python3
"""Prometheus text-exposition lint for the /metrics scrape.

Validates a scrape body (file argument, or stdin with -) against the
text exposition format the way a scraper would parse it:

  * every non-comment line is  name{labels} value  with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a parseable float value
  * label values are well-formed quoted strings (backslash, double-quote
    and newline escaped — the PR5 escaping fix is what this catches)
  * every sample name is covered by a preceding # TYPE (histogram
    samples may extend the family name with _bucket/_sum/_count)
  * # TYPE declares a known type and no family is declared twice
  * NOTHING follows the value — unless --exemplars, which accepts the
    OpenMetrics exemplar suffix  # {labels} value  but ONLY on _bucket
    samples of histogram families (an exemplar anywhere else is a bug)
  * at least one sample exists (an empty scrape means the daemon wired
    no registry)

Exit code 1 lists every violation as line:N. Used by CI's confcall_serve
smoke steps: curl /metrics | python3 tools/prom_lint.py -  (and with
--exemplars when the daemon runs --metrics-exemplars).

Usage: python3 tools/prom_lint.py [--exemplars] FILE|-
"""
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
# One label: name="value" with only escaped \ " and n inside the quotes.
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\[\\"n])*)"')
# OpenMetrics exemplar suffix:  # {label="v",...} value
EXEMPLAR_RE = re.compile(
    r'# \{((?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\[\\"n])*",?)*)\} '
    r"(\S+)$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(sample_name, types):
    """The declared family a sample belongs to, or None."""
    if sample_name in types:
        return sample_name
    for suffix in HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def check_trailer(number, name, trailer, types, allow_exemplars, errors):
    """Validates whatever followed the sample value on this line."""
    if not trailer:
        return
    if not allow_exemplars:
        errors.append(
            f"line:{number} trailing content after value "
            f"(exemplar without --exemplars?): {trailer!r}")
        return
    match = EXEMPLAR_RE.fullmatch(trailer)
    if match is None:
        errors.append(f"line:{number} malformed exemplar: {trailer!r}")
        return
    try:
        float(match.group(2))
    except ValueError:
        errors.append(
            f"line:{number} unparseable exemplar value "
            f"{match.group(2)!r}")
        return
    if not name.endswith("_bucket") or \
            family_of(name, types) is None or \
            types.get(family_of(name, types)) != "histogram":
        errors.append(
            f"line:{number} exemplar on non-histogram-bucket sample "
            f"{name}")


def lint(text, allow_exemplars=False):
    errors = []
    types = {}
    samples = 0
    exemplars = 0
    for number, line in enumerate(text.split("\n"), start=1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in TYPES:
                errors.append(f"line:{number} malformed # TYPE: {line!r}")
                continue
            if parts[2] in types:
                errors.append(f"line:{number} duplicate # TYPE {parts[2]}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP and free comments
        match = NAME_RE.match(line)
        if match is None:
            errors.append(f"line:{number} no metric name: {line!r}")
            continue
        name = match.group(0)
        rest = line[match.end():]
        if rest.startswith("{"):
            closing = rest.find("}")
            if closing < 0:
                errors.append(f"line:{number} unterminated label set")
                continue
            labels = rest[1:closing]
            rest = rest[closing + 1:]
            stripped = LABEL_RE.sub("", labels)
            if stripped.strip(", ") != "":
                errors.append(
                    f"line:{number} malformed labels (bad escaping?): "
                    f"{labels!r}")
        fields = rest.strip().split(" ", 1)
        value = fields[0]
        try:
            float(value)
        except ValueError:
            errors.append(f"line:{number} unparseable value {value!r}")
            continue
        trailer = fields[1].strip() if len(fields) > 1 else ""
        if trailer:
            before = len(errors)
            check_trailer(number, name, trailer, types, allow_exemplars,
                          errors)
            if len(errors) == before:
                exemplars += 1
        if family_of(name, types) is None:
            errors.append(f"line:{number} sample {name} has no # TYPE")
        samples += 1
    if samples == 0:
        errors.append("no samples at all: empty or comment-only scrape")
    return errors, samples, len(types), exemplars


def main():
    args = sys.argv[1:]
    allow_exemplars = "--exemplars" in args
    args = [a for a in args if a != "--exemplars"]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if args[0] == "-":
        text = sys.stdin.read()
    else:
        with open(args[0]) as handle:
            text = handle.read()
    errors, samples, families, exemplars = lint(text, allow_exemplars)
    if errors:
        for error in errors:
            print(error)
        return 1
    suffix = f", {exemplars} exemplars" if allow_exemplars else ""
    print(f"prom_lint: OK ({samples} samples, {families} families"
          f"{suffix})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
