// confcall_plan — command-line paging-strategy planner.
//
// Reads a Conference Call instance from a file (format: core/io.h), plans
// a strategy with the chosen algorithm, and prints the strategy plus its
// expected paging / rounds. Designed for scripting: `--format csv` emits
// machine-readable output, the exit code is non-zero on any error, and
// everything goes to stdout/stderr conventionally.
//
//   confcall_plan --instance FILE --rounds D
//                 [--planner greedy|blanket|exact|typed|cap<N>|resilient]
//                 [--objective all|any|k] [--k K]
//                 [--format text|csv]
//                 [--deadline-ms D] [--batch N]
//                 [--mc TRIALS] [--threads N] [--mc-seed S]
//                 [--metrics[=json|prom]] [--trace-out FILE]
//
// --batch N replans the same instance N times back to back on one warm
// footing (thread-local arena scratch, planner state) and reports the
// batch throughput — the CLI face of the batched locate path. Every
// repeat must reproduce the reported strategy exactly; a mismatch is an
// error (planning is deterministic).
//
// --mc TRIALS cross-checks the analytic expected paging with a sharded
// Monte-Carlo execution of the strategy on --threads N workers (0 = all
// hardware threads). The estimate depends only on (--mc, --mc-seed),
// never on the thread count.
//
// --planner resilient plans through the breaker-guarded fallback chain
// (typed-exact > greedy > blanket) and prints per-tier/breaker telemetry;
// --deadline-ms bounds the whole plan() call by a propagated deadline
// (requires the resilient planner — single-tier planners have no cheaper
// tier to degrade to).
//
// --metrics dumps the run's metric registry after planning, as JSON
// (default) or Prometheus text (--metrics=prom). The resilient-planner
// telemetry printed in text format comes from the same single registry
// snapshot, so its numbers are always mutually consistent.
//
// --trace-out FILE writes the run's spans (a plan_request root with plan
// and monte_carlo children) as Chrome trace_event JSON — load the file
// directly in chrome://tracing or Perfetto. Same exporter as the serving
// daemon's /traces endpoint.
//
// Example:
//   ./tools/confcall_plan --instance area.txt --rounds 3 --planner greedy
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "core/evaluator.h"
#include "core/io.h"
#include "core/planner.h"
#include "core/resilient_planner.h"
#include "support/cli.h"
#include "support/metrics.h"
#include "support/overload.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace {

using namespace confcall;

core::Objective parse_objective(const std::string& name, std::size_t k) {
  if (name == "all") return core::Objective::all_of();
  if (name == "any") return core::Objective::any_of();
  if (name == "k") return core::Objective::k_of_m(k);
  throw std::invalid_argument("unknown objective '" + name +
                              "' (all|any|k)");
}

std::unique_ptr<core::Planner> parse_planner(const std::string& name,
                                             const core::Objective& obj,
                                             support::MetricRegistry& registry) {
  if (name == "greedy") return std::make_unique<core::GreedyPlanner>(obj);
  if (name == "blanket") return std::make_unique<core::BlanketPlanner>();
  if (name == "exact") return std::make_unique<core::ExactPlanner>(obj);
  if (name == "typed") return std::make_unique<core::TypedExactPlanner>(obj);
  if (name == "resilient") {
    return core::ResilientPlanner::standard(
        core::ResilientPlanner::Budget{0.0}, &registry);
  }
  if (name.rfind("cap", 0) == 0) {
    const std::size_t cap = std::stoul(name.substr(3));
    return std::make_unique<core::BandwidthLimitedPlanner>(cap, obj);
  }
  throw std::invalid_argument(
      "unknown planner '" + name +
      "' (greedy|blanket|exact|typed|cap<N>|resilient)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const support::Cli cli(argc, argv);
    const std::string path = cli.get_string("instance", "");
    const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 0));
    const std::string planner_name = cli.get_string("planner", "greedy");
    const std::string objective_name = cli.get_string("objective", "all");
    const auto k = static_cast<std::size_t>(cli.get_int("k", 1));
    const std::string format = cli.get_string("format", "text");
    const std::int64_t mc_trials = cli.get_int("mc", 0);
    const std::int64_t threads = cli.get_int("threads", 0);
    const auto mc_seed =
        static_cast<std::uint64_t>(cli.get_int("mc-seed", 1));
    const std::int64_t deadline_ms = cli.get_int("deadline-ms", 0);
    const std::int64_t batch = cli.get_int("batch", 0);
    const std::string trace_out = cli.get_string("trace-out", "");
    const bool want_metrics = cli.has("metrics");
    const std::string metrics_format =
        want_metrics ? cli.get_string("metrics", "json") : "json";
    if (metrics_format != "json" && metrics_format != "prom" &&
        !metrics_format.empty()) {
      throw std::invalid_argument("--metrics takes json or prom");
    }
    for (const auto& flag : cli.unused()) {
      throw std::invalid_argument("unknown flag --" + flag);
    }
    if (path.empty() || rounds == 0) {
      std::cerr << "usage: confcall_plan --instance FILE --rounds D "
                   "[--planner greedy|blanket|exact|typed|cap<N>|resilient] "
                   "[--objective all|any|k] [--k K] [--format text|csv] "
                   "[--deadline-ms D] [--batch N] "
                   "[--mc TRIALS] [--threads N] [--mc-seed S] "
                   "[--metrics[=json|prom]] [--trace-out FILE]\n";
      return 2;
    }
    if (mc_trials < 0 || threads < 0) {
      throw std::invalid_argument("--mc and --threads must be >= 0");
    }
    if (batch < 0) {
      throw std::invalid_argument("--batch must be >= 0");
    }
    if (deadline_ms < 0) {
      throw std::invalid_argument("--deadline-ms must be >= 0");
    }

    std::ifstream file(path);
    if (!file) {
      throw std::runtime_error("cannot open '" + path + "'");
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    const core::Instance instance =
        core::instance_from_text(buffer.str());

    const core::Objective objective = parse_objective(objective_name, k);
    support::MetricRegistry registry;
    const auto planner = parse_planner(planner_name, objective, registry);
    const auto* resilient =
        dynamic_cast<const core::ResilientPlanner*>(planner.get());
    if (deadline_ms > 0 && resilient == nullptr) {
      throw std::invalid_argument(
          "--deadline-ms requires --planner resilient (single-tier "
          "planners have no cheaper tier to degrade to)");
    }
    // A base Tracer (keep everything) only when --trace-out asks for it;
    // null tracer = every Span below is a free no-op.
    std::unique_ptr<support::Tracer> tracer;
    if (!trace_out.empty()) {
      tracer = std::make_unique<support::Tracer>(256);
    }
    // The root span covers the whole request so the plan / monte_carlo
    // children hang off one tree, exactly like a locate span in the
    // serving daemon's /traces.
    std::optional<support::Span> root_span;
    root_span.emplace(tracer.get(), "plan_request");
    const core::Strategy strategy = [&] {
      const support::Span span(tracer.get(), "plan");
      return deadline_ms > 0
                 ? resilient->plan(
                       instance, rounds,
                       support::Deadline::after(
                           static_cast<std::uint64_t>(deadline_ms) *
                               1'000'000u,
                           support::SteadyClockSource::shared()))
                 : planner->plan(instance, rounds);
    }();
    const double ep = core::expected_paging(instance, strategy, objective);
    const double rounds_used =
        core::expected_rounds(instance, strategy, objective);
    const double stddev =
        std::sqrt(core::paging_variance(instance, strategy, objective));

    // --batch: replan back to back on one warm footing (thread-local
    // arena scratch stays hot) and report the throughput. Determinism
    // check included: every repeat must reproduce the strategy above.
    double batch_plans_per_sec = 0.0;
    if (batch > 0) {
      using Clock = std::chrono::steady_clock;
      const auto start = Clock::now();
      for (std::int64_t i = 0; i < batch; ++i) {
        if (planner->plan(instance, rounds) != strategy) {
          throw std::logic_error(
              "--batch: repeat plan diverged from the reported strategy");
        }
      }
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      batch_plans_per_sec =
          seconds > 0.0 ? static_cast<double>(batch) / seconds : 0.0;
    }

    std::optional<core::MonteCarloEstimate> mc;
    if (mc_trials > 0) {
      const support::Span span(tracer.get(), "monte_carlo");
      const support::ThreadPool pool(static_cast<std::size_t>(threads));
      mc = core::monte_carlo_paging_parallel(
          instance, strategy, static_cast<std::size_t>(mc_trials), mc_seed,
          pool, objective);
    }
    root_span.reset();  // close the root before exporting
    if (tracer) {
      std::ofstream trace_file(trace_out);
      if (!trace_file) {
        throw std::runtime_error("cannot write trace file '" + trace_out +
                                 "'");
      }
      trace_file << support::to_trace_event_json(tracer->snapshot());
    }

    // One consistent cut of the registry, taken after planning finished:
    // every telemetry number below (and the --metrics dump) comes from
    // this snapshot, never from getters racing a live planner.
    const support::RegistrySnapshot metrics_snapshot = registry.snapshot();
    const auto snapshot_counter = [&](const std::string& name,
                                      const support::MetricLabels& labels =
                                          {}) -> std::uint64_t {
      const support::MetricSnapshot* metric =
          metrics_snapshot.find(name, labels);
      return metric == nullptr ? 0 : metric->counter_value;
    };

    if (format == "csv") {
      std::vector<std::string> header{"planner", "objective", "m", "c", "d",
                                      "strategy", "expected_paging",
                                      "expected_rounds", "paging_stddev"};
      std::vector<std::string> row{
          planner->name(), objective.to_string(),
          support::TextTable::fmt(instance.num_devices()),
          support::TextTable::fmt(instance.num_cells()),
          support::TextTable::fmt(rounds),
          strategy.to_string(), support::TextTable::fmt(ep, 6),
          support::TextTable::fmt(rounds_used, 6),
          support::TextTable::fmt(stddev, 6)};
      if (mc) {
        header.insert(header.end(), {"mc_mean", "mc_std_error", "mc_trials"});
        row.insert(row.end(), {support::TextTable::fmt(mc->mean, 6),
                               support::TextTable::fmt(mc->std_error, 6),
                               support::TextTable::fmt(mc->trials)});
      }
      if (batch > 0) {
        header.insert(header.end(), {"batch_plans", "batch_plans_per_sec"});
        row.insert(row.end(),
                   {support::TextTable::fmt(static_cast<std::size_t>(batch)),
                    support::TextTable::fmt(batch_plans_per_sec, 0)});
      }
      support::TextTable table(header);
      table.add_row(row);
      std::cout << table.to_csv();
    } else if (format == "text") {
      std::cout << "instance        : m=" << instance.num_devices()
                << " c=" << instance.num_cells() << " (" << path << ")\n"
                << "planner         : " << planner->name() << "\n"
                << "objective       : " << objective.to_string() << "\n"
                << "strategy        : " << strategy.to_string() << "\n"
                << "expected paging : " << ep << " of "
                << instance.num_cells() << " cells (stddev " << stddev
                << ")\n"
                << "expected rounds : " << rounds_used << " of " << rounds
                << " allowed\n";
      if (mc) {
        std::cout << "monte carlo     : " << mc->mean << " +/- "
                  << mc->std_error << " (" << mc->trials << " trials)\n";
      }
      if (batch > 0) {
        std::cout << "batch replan    : " << batch << " plans, "
                  << static_cast<std::uint64_t>(batch_plans_per_sec)
                  << " plans/sec (all identical)\n";
      }
      if (resilient != nullptr) {
        if (deadline_ms > 0) {
          std::cout << "deadline        : " << deadline_ms << " ms\n";
        }
        std::cout << "served by tier  : ";
        for (std::size_t i = 0; i < resilient->num_tiers(); ++i) {
          std::cout << (i == 0 ? "" : " | ") << resilient->tier(i).name()
                    << "="
                    << snapshot_counter("confcall_planner_tier_served_total",
                                        {{"tier", std::to_string(i)}});
        }
        std::cout << "\nserving tier    : "
                  << resilient->tier(resilient->last_tier()).name()
                  << " (failovers "
                  << snapshot_counter("confcall_planner_failovers_total")
                  << ", breaker skips "
                  << snapshot_counter("confcall_planner_breaker_skips_total")
                  << ")\n"
                  << "breakers        : ";
        for (std::size_t i = 0; i + 1 < resilient->num_tiers(); ++i) {
          std::cout << (i == 0 ? "" : " | ") << resilient->tier(i).name()
                    << "="
                    << support::CircuitBreaker::state_name(
                           resilient->breaker(i).state())
                    << " (trips "
                    << snapshot_counter(
                           "confcall_planner_breaker_trips_total",
                           {{"tier", std::to_string(i)}})
                    << ")";
        }
        std::cout << "\n";
      }
    } else {
      throw std::invalid_argument("unknown format '" + format + "'");
    }
    if (want_metrics) {
      std::cout << (metrics_format == "prom"
                        ? support::to_prometheus(metrics_snapshot)
                        : support::to_json(metrics_snapshot));
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "confcall_plan: " << error.what() << "\n";
    return 1;
  }
}
