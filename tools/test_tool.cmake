# End-to-end exercise of confcall_plan: valid runs in both formats plus
# error-path checks (missing file, bad flag).
file(WRITE ${WORK}/instance.txt
"conference-call-instance v1
m 2
c 4
0.4 0.3 0.2 0.1
0.1 0.1 0.4 0.4
")
execute_process(
  COMMAND ${TOOL} --instance ${WORK}/instance.txt --rounds 2
  OUTPUT_VARIABLE out RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "greedy run failed: ${code}")
endif()
if(NOT out MATCHES "expected paging")
  message(FATAL_ERROR "missing expected paging in output: ${out}")
endif()

execute_process(
  COMMAND ${TOOL} --instance ${WORK}/instance.txt --rounds 2
          --planner exact --objective any --format csv
  OUTPUT_VARIABLE csv RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "csv run failed: ${code}")
endif()
if(NOT csv MATCHES "expected_paging")
  message(FATAL_ERROR "missing csv header: ${csv}")
endif()

execute_process(
  COMMAND ${TOOL} --instance ${WORK}/missing.txt --rounds 2
  ERROR_VARIABLE err RESULT_VARIABLE code)
if(code EQUAL 0)
  message(FATAL_ERROR "missing file should fail")
endif()

execute_process(
  COMMAND ${TOOL} --instance ${WORK}/instance.txt --rounds 2 --oops 1
  ERROR_VARIABLE err RESULT_VARIABLE code)
if(code EQUAL 0)
  message(FATAL_ERROR "unknown flag should fail")
endif()
