#!/usr/bin/env python3
"""Compare two bench JSON files and warn on regressions.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]
                        [--strict] [--strict-paths SUBSTR[,SUBSTR...]]

Walks both JSON trees, pairs numeric leaves by path (array elements pair
by index), and reports every metric that moved by more than the threshold
relative to the baseline. Direction matters: for most metrics bigger is
worse only when the name says so. A metric regresses when

  * its name suggests "lower is better" (latency, time, percentiles,
    shed/abandon counts, failovers, trips) and it grew, or
  * its name suggests "higher is better" (rate as in hit_rate, speedup,
    throughput, *_per_sec, completed) and it shrank.

Other numeric fields (configuration echoes, arrival counts) are reported
as informational drift but never count as regressions.

Exit code is 0 unless --strict is given AND a regression was found, so CI
can run this as a warn-only step by default. --strict-paths upgrades just
the regressions whose path contains one of the given substrings to fatal
(exit 1) while everything else stays warn-only — for gating a few
load-bearing metrics (e.g. metrics_throughput_ratio) without making every
noisy timing a build breaker.
"""

import argparse
import json
import sys

LOWER_IS_BETTER = (
    "p50",
    "p99",
    "latency",
    "_us",
    "_sec",
    "_ms",
    "time",
    "shed",
    "abandoned",
    "failover",
    "trips",
    "skips",
    "deadline_limited",
    "recovery_periods",
)
HIGHER_IS_BETTER = (
    "per_sec",
    "speedup",
    "hit_rate",
    "throughput",
    "completed",
)
# Not performance at all: run-shape echoes that legitimately differ.
IGNORE = ("seed", "smoke", "threads", "replications", "trials", "steps")


def leaves(node, path=""):
    if isinstance(node, dict):
        for key, value in node.items():
            yield from leaves(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from leaves(value, f"{path}[{index}]")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield path, float(node)


def direction(path):
    lowered = path.lower()
    if any(token in lowered for token in IGNORE):
        return "ignore"
    # "per_sec" must win over the generic "_sec" duration suffix.
    if any(token in lowered for token in HIGHER_IS_BETTER):
        return "higher"
    if any(token in lowered for token in LOWER_IS_BETTER):
        return "lower"
    return "info"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10)
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when a regression exceeds the threshold")
    parser.add_argument("--strict-paths", default="",
                        help="comma-separated path substrings whose "
                             "regressions are fatal even without --strict")
    args = parser.parse_args()
    strict_paths = [token for token in args.strict_paths.split(",") if token]

    with open(args.baseline) as handle:
        base = dict(leaves(json.load(handle)))
    with open(args.current) as handle:
        curr = dict(leaves(json.load(handle)))

    regressions = []
    fatal = []
    drifted = []
    for path in sorted(base.keys() & curr.keys()):
        sense = direction(path)
        if sense == "ignore":
            continue
        old, new = base[path], curr[path]
        if old == new:
            continue
        delta = (new - old) / abs(old) if old else float("inf")
        if abs(delta) <= args.threshold:
            continue
        entry = f"{path}: {old:g} -> {new:g} ({delta:+.1%})"
        worse = (sense == "lower" and new > old) or (
            sense == "higher" and new < old)
        if worse:
            regressions.append(entry)
            if any(token in path for token in strict_paths):
                fatal.append(entry)
        else:
            drifted.append(f"{entry} [{sense}]")

    label = f"threshold {args.threshold:.0%}"
    if regressions:
        print(f"::warning::{len(regressions)} bench regression(s) vs "
              f"{args.baseline} ({label}):")
        for entry in regressions:
            print(f"  REGRESSION  {entry}")
    if drifted:
        print(f"drift beyond {label} (not scored as regression):")
        for entry in drifted:
            print(f"  drift       {entry}")
    if not regressions and not drifted:
        print(f"no metric moved beyond {label}")

    missing = sorted(base.keys() - curr.keys())
    if missing:
        print(f"metrics dropped since baseline: {', '.join(missing[:8])}"
              + (" ..." if len(missing) > 8 else ""))
    if fatal:
        print(f"::error::{len(fatal)} gated metric(s) regressed "
              f"(--strict-paths {args.strict_paths}):")
        for entry in fatal:
            print(f"  FATAL       {entry}")

    return 1 if (fatal or (args.strict and regressions)) else 0


if __name__ == "__main__":
    sys.exit(main())
