// Unit tests for the overload-protection primitives (support/overload.h):
// Deadline propagation, CircuitBreaker state machine, AdmissionController
// token bucket + health hysteresis. Everything runs on a ManualClock, so
// every transition is deterministic.
#include "support/overload.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "support/metrics.h"

namespace confcall::support {
namespace {

// ---------------------------------------------------------------- Deadline

TEST(Deadline, DefaultIsUnbounded) {
  const ManualClock clock(123);
  const Deadline deadline;
  EXPECT_TRUE(deadline.is_unbounded());
  EXPECT_FALSE(deadline.expired(clock));
  EXPECT_EQ(deadline.remaining_ns(clock), Deadline::kUnbounded);
  EXPECT_EQ(Deadline::unbounded().expiry_ns(), Deadline::kUnbounded);
}

TEST(Deadline, AfterExpiresExactlyOnTime) {
  ManualClock clock(1'000);
  const Deadline deadline = Deadline::after(500, clock);
  EXPECT_EQ(deadline.expiry_ns(), 1'500u);
  EXPECT_FALSE(deadline.expired(clock));
  EXPECT_EQ(deadline.remaining_ns(clock), 500u);
  clock.advance(499);
  EXPECT_FALSE(deadline.expired(clock));
  EXPECT_EQ(deadline.remaining_ns(clock), 1u);
  clock.advance(1);  // now == expiry: expired, nothing remains
  EXPECT_TRUE(deadline.expired(clock));
  EXPECT_EQ(deadline.remaining_ns(clock), 0u);
}

TEST(Deadline, AfterSaturatesInsteadOfWrapping) {
  const ManualClock clock(Deadline::kUnbounded - 10);
  const Deadline deadline = Deadline::after(100, clock);
  EXPECT_TRUE(deadline.is_unbounded());
}

TEST(Deadline, PropagatesByValueUnchanged) {
  // The point of absolute deadlines: every layer that copies the value
  // sees the SAME expiry, no matter how much time earlier layers burned.
  ManualClock clock(0);
  const Deadline arrival = Deadline::after(1'000, clock);
  clock.advance(600);             // upper layer burned 600ns
  const Deadline copied = arrival;  // passed down by value
  EXPECT_EQ(copied.remaining_ns(clock), 400u);
}

TEST(Deadline, TightenedTakesTheCloserExpiry) {
  ManualClock clock(0);
  const Deadline loose = Deadline::after(1'000, clock);
  const Deadline tight = loose.tightened(300, clock);
  EXPECT_EQ(tight.expiry_ns(), 300u);
  // A local budget LOOSER than the propagated deadline must not extend it.
  const Deadline not_loosened = tight.tightened(10'000, clock);
  EXPECT_EQ(not_loosened.expiry_ns(), 300u);
  // And tightening an unbounded deadline bounds it.
  EXPECT_EQ(Deadline::unbounded().tightened(42, clock).expiry_ns(), 42u);
}

// ---------------------------------------------------------- CircuitBreaker

CircuitBreakerOptions small_breaker() {
  CircuitBreakerOptions options;
  options.window = 4;
  options.min_samples = 2;
  options.failure_threshold = 0.5;
  options.cooldown_ns = 1'000;
  return options;
}

TEST(CircuitBreaker, OptionsValidateRejectsNonsense) {
  CircuitBreakerOptions options;
  options.window = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.min_samples = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.min_samples = options.window + 1;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.failure_threshold = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.failure_threshold = 1.5;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.cooldown_ns = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(CircuitBreaker, StaysClosedBelowMinSamples) {
  const ManualClock clock;
  CircuitBreaker breaker(small_breaker(), clock);
  breaker.record_failure();  // 1/1 failed, but min_samples = 2
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreaker, TripsAtThresholdAndRejectsWhileOpen) {
  const ManualClock clock;
  CircuitBreaker breaker(small_breaker(), clock);
  breaker.record_success();
  breaker.record_failure();  // 1/2 = 0.5 >= threshold, min_samples met
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.rejections(), 2u);
}

TEST(CircuitBreaker, SuccessesAloneNeverTrip) {
  const ManualClock clock;
  CircuitBreaker breaker(small_breaker(), clock);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(breaker.allow());
    breaker.record_success();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreaker, HalfOpenProbeRecovers) {
  ManualClock clock;
  CircuitBreaker breaker(small_breaker(), clock);
  breaker.record_failure();
  breaker.record_failure();  // trips
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  clock.advance(999);
  EXPECT_FALSE(breaker.allow());  // cooldown not elapsed
  clock.advance(1);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow());   // the probe slot
  EXPECT_FALSE(breaker.allow());  // only ONE probe until its outcome lands
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
  // The window was reset on close: one old failure must not re-trip.
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, FailedProbeReopensAndRestartsCooldown) {
  ManualClock clock;
  CircuitBreaker breaker(small_breaker(), clock);
  breaker.record_failure();
  breaker.record_failure();
  clock.advance(1'000);
  ASSERT_TRUE(breaker.allow());  // probe
  breaker.record_failure();      // probe fails
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.allow());
  clock.advance(1'000);  // full fresh cooldown required
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, SlidingWindowForgetsOldFailures) {
  const ManualClock clock;
  CircuitBreakerOptions options = small_breaker();
  options.window = 4;
  options.min_samples = 4;
  options.failure_threshold = 0.5;
  CircuitBreaker breaker(options, clock);
  // Two failures, then enough successes to slide them out: 2/4 would
  // trip, but by the time 4 samples exist the failures are ancient.
  breaker.record_failure();
  breaker.record_success();
  breaker.record_success();
  breaker.record_success();  // window now F S S S: 1/4 < 0.5
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.record_success();  // F slides out: S S S S
  breaker.record_failure();
  breaker.record_failure();  // S S F F: 2/4 = 0.5 -> trip
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

// ----------------------------------------------------- AdmissionController

AdmissionOptions small_bucket() {
  AdmissionOptions options;
  options.bucket_capacity = 10.0;
  options.refill_per_sec = 1.0;  // 1 token per virtual second
  options.degraded_below = 0.5;
  options.healthy_above = 0.75;
  options.shed_below = 0.15;
  options.recover_above = 0.35;
  return options;
}

constexpr std::uint64_t kSecond = 1'000'000'000;

TEST(AdmissionController, OptionsValidateRejectsBrokenLadder) {
  AdmissionOptions options = small_bucket();
  options.bucket_capacity = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = small_bucket();
  options.refill_per_sec = -1.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = small_bucket();
  options.shed_below = 0.0;  // must be > 0
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = small_bucket();
  options.recover_above = options.shed_below;  // must be strictly above
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = small_bucket();
  options.degraded_below = options.recover_above - 0.01;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = small_bucket();
  options.healthy_above = options.degraded_below;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = small_bucket();
  options.healthy_above = 1.01;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(AdmissionController, AdmitsWhileHealthyShedsWhenDrained) {
  const ManualClock clock;
  AdmissionController admission(small_bucket(), clock);
  EXPECT_EQ(admission.health(), Health::kHealthy);
  // Capacity 10, thresholds at fills 5 (degraded) and 1.5 (shed). The
  // health machine steps BEFORE the cost is consumed, so:
  //   fills seen: 10, 9, 8, 7, 6 -> healthy admits
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(admission.admit(1.0), AdmissionController::Decision::kAdmit);
  }
  //   fills seen: 5 (not < 5), 4, 3, 2 -> degraded admits
  EXPECT_EQ(admission.admit(1.0), AdmissionController::Decision::kAdmit);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(admission.admit(1.0),
              AdmissionController::Decision::kAdmitDegraded);
  }
  //   fill 1 < 1.5 -> shedding; sheds cost nothing, so it stays shedding
  EXPECT_EQ(admission.admit(1.0), AdmissionController::Decision::kShed);
  EXPECT_EQ(admission.admit(1.0), AdmissionController::Decision::kShed);
  EXPECT_EQ(admission.health(), Health::kShedding);
  EXPECT_EQ(admission.admitted(), 6u);
  EXPECT_EQ(admission.admitted_degraded(), 3u);
  EXPECT_EQ(admission.shed(), 2u);
}

TEST(AdmissionController, OversizedRequestIsShedEvenWhenHealthy) {
  const ManualClock clock;
  AdmissionController admission(small_bucket(), clock);
  EXPECT_EQ(admission.admit(11.0), AdmissionController::Decision::kShed);
  EXPECT_EQ(admission.health(), Health::kHealthy);  // bucket untouched
  EXPECT_DOUBLE_EQ(admission.tokens(), 10.0);
}

TEST(AdmissionController, RefillIsProportionalToElapsedTimeAndCapped) {
  ManualClock clock;
  AdmissionController admission(small_bucket(), clock);
  for (int i = 0; i < 8; ++i) (void)admission.admit(1.0);
  EXPECT_DOUBLE_EQ(admission.tokens(), 2.0);
  clock.advance(3 * kSecond);  // 1 token/sec
  EXPECT_DOUBLE_EQ(admission.tokens(), 5.0);
  clock.advance(1'000 * kSecond);
  EXPECT_DOUBLE_EQ(admission.tokens(), 10.0);  // capped at capacity
}

TEST(AdmissionController, RecoveryIsStepwiseNeverSheddingToHealthy) {
  ManualClock clock;
  AdmissionController admission(small_bucket(), clock);
  for (int i = 0; i < 10; ++i) (void)admission.admit(1.0);  // drains to 1
  ASSERT_EQ(admission.health(), Health::kShedding);
  // Refill past recover_above (3.5) but below healthy_above (7.5): one
  // step up to degraded only.
  clock.advance(4 * kSecond);  // fill 1 -> 5
  EXPECT_EQ(admission.health(), Health::kDegraded);
  // Refill past healthy_above: the second step completes recovery.
  clock.advance(5 * kSecond);  // fill -> 10
  EXPECT_EQ(admission.health(), Health::kHealthy);
}

TEST(AdmissionController, SheddingToHealthyFillStopsAtDegraded) {
  // Even a single refill that jumps the fill from empty to full must
  // pass through degraded — never shedding -> healthy in one admit().
  ManualClock clock;
  AdmissionController admission(small_bucket(), clock);
  for (int i = 0; i < 10; ++i) (void)admission.admit(1.0);
  ASSERT_EQ(admission.health(), Health::kShedding);
  clock.advance(100 * kSecond);  // fill -> capacity
  EXPECT_EQ(admission.health(), Health::kDegraded);
  EXPECT_EQ(admission.health(), Health::kHealthy);  // next observation
}

TEST(AdmissionController, HysteresisGapPreventsFlapping) {
  // Sit the fill between degraded_below (5) and healthy_above (7.5):
  // a degraded controller must STAY degraded there, not flap.
  ManualClock clock;
  AdmissionController admission(small_bucket(), clock);
  for (int i = 0; i < 6; ++i) (void)admission.admit(1.0);  // fill 4
  ASSERT_EQ(admission.health(), Health::kDegraded);
  const std::uint64_t transitions = admission.health_transitions();
  clock.advance(2 * kSecond);  // fill 6: in the gap
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(admission.health(), Health::kDegraded);
  }
  EXPECT_EQ(admission.health_transitions(), transitions);
}

TEST(AdmissionController, TransitionsAreCounted) {
  ManualClock clock;
  AdmissionController admission(small_bucket(), clock);
  for (int i = 0; i < 10; ++i) (void)admission.admit(1.0);
  // healthy -> degraded -> shedding while draining.
  EXPECT_EQ(admission.health_transitions(), 2u);
  clock.advance(100 * kSecond);
  (void)admission.health();  // shedding -> degraded
  (void)admission.health();  // degraded -> healthy
  EXPECT_EQ(admission.health_transitions(), 4u);
}

TEST(AdmissionController, NonPositiveCostThrows) {
  const ManualClock clock;
  AdmissionController admission(small_bucket(), clock);
  EXPECT_THROW((void)admission.admit(0.0), std::invalid_argument);
  EXPECT_THROW((void)admission.admit(-1.0), std::invalid_argument);
}

// Edge case: every threshold comparison is STRICT, so a fill landing
// exactly on a boundary keeps the current state — the controller only
// moves when the fill is clearly past the line. This is what lets the
// SLO controller park degraded_below exactly at recover_above without
// perturbing a recovering bucket.
TEST(AdmissionController, ExactlyAtThresholdFillStaysPut) {
  ManualClock clock;
  AdmissionController admission(small_bucket(), clock);
  // Exactly at degraded_below (fill 5.0 of 10): still healthy.
  for (int i = 0; i < 5; ++i) (void)admission.admit(1.0);
  EXPECT_DOUBLE_EQ(admission.tokens(), 5.0);
  EXPECT_EQ(admission.health(), Health::kHealthy);
  // One token below the line: degraded.
  (void)admission.admit(1.0);
  EXPECT_EQ(admission.health(), Health::kDegraded);

  // Refill to exactly healthy_above (7.5): still degraded (needs >).
  clock.advance(3'500'000'000);  // fill 4 -> 7.5 at 1 token/sec
  EXPECT_DOUBLE_EQ(admission.tokens(), 7.5);
  EXPECT_EQ(admission.health(), Health::kDegraded);
  clock.advance(500'000'000);  // 8.0 > 7.5: now healthy
  EXPECT_EQ(admission.health(), Health::kHealthy);

  // Drain to shedding, refill to exactly recover_above (3.5): still
  // shedding (needs >).
  for (int i = 0; i < 8; ++i) (void)admission.admit(1.0);
  ASSERT_EQ(admission.health(), Health::kShedding);
  EXPECT_DOUBLE_EQ(admission.tokens(), 1.0);
  clock.advance(2'500'000'000);  // fill 1.0 -> 3.5
  EXPECT_DOUBLE_EQ(admission.tokens(), 3.5);
  EXPECT_EQ(admission.health(), Health::kShedding);
  clock.advance(500'000'000);  // 4.0 > 3.5: one step up, to degraded
  EXPECT_EQ(admission.health(), Health::kDegraded);
}

// Edge case: after recovering to healthy, a fill that dips back into
// the hysteresis gap (degraded_below, healthy_above] must NOT re-enter
// degraded — healthy only leaves below degraded_below. Together with
// HysteresisGapPreventsFlapping this pins both directions of the gap.
TEST(AdmissionController, ReentryIntoTheGapDoesNotFlapBack) {
  ManualClock clock;
  AdmissionController admission(small_bucket(), clock);
  for (int i = 0; i < 6; ++i) (void)admission.admit(1.0);  // fill 4
  ASSERT_EQ(admission.health(), Health::kDegraded);
  clock.advance(4'000'000'000);  // fill 8 > 7.5: recovered
  ASSERT_EQ(admission.health(), Health::kHealthy);
  const std::uint64_t transitions = admission.health_transitions();

  // Dip to fill 6 — inside the gap (5, 7.5]: stays healthy, no flap.
  (void)admission.admit(1.0);
  (void)admission.admit(1.0);
  EXPECT_DOUBLE_EQ(admission.tokens(), 6.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(admission.health(), Health::kHealthy);
  }
  EXPECT_EQ(admission.health_transitions(), transitions);
}

// Edge case: the tokens gauge must match tokens() on EVERY path that
// moves the bucket — admits, pure refills and the SLO controller's
// setters — across a full degraded -> healthy round trip. A gauge only
// updated on admit() would go stale the moment a setter refills.
TEST(AdmissionController, TokenGaugeConsistentAcrossDegradeRoundTrip) {
  ManualClock clock;
  MetricRegistry registry;
  AdmissionController admission(small_bucket(), clock);
  admission.bind_metrics(registry);
  const auto gauge = [&registry] {
    return registry.snapshot().find("confcall_admission_tokens")
        ->gauge_value;
  };

  for (int i = 0; i < 6; ++i) (void)admission.admit(1.0);  // fill 4
  ASSERT_EQ(admission.health(), Health::kDegraded);
  EXPECT_DOUBLE_EQ(gauge(), admission.tokens());

  // A setter-driven refill (no admit in between) must refresh it too.
  clock.advance(1'000'000'000);
  admission.set_refill_per_sec(2.0);
  EXPECT_DOUBLE_EQ(gauge(), 5.0);
  EXPECT_DOUBLE_EQ(gauge(), admission.tokens());

  clock.advance(2'000'000'000);  // fill 5 -> 9 at the new rate
  ASSERT_EQ(admission.health(), Health::kHealthy);
  EXPECT_DOUBLE_EQ(gauge(), 9.0);
  EXPECT_DOUBLE_EQ(gauge(), admission.tokens());
}

TEST(AdmissionController, SetRefillSettlesElapsedTimeAtTheOldRate) {
  ManualClock clock;
  AdmissionController admission(small_bucket(), clock);
  for (int i = 0; i < 8; ++i) (void)admission.admit(1.0);  // fill 2
  // Two seconds pass at the OLD 1 token/sec, then the rate changes:
  // those two seconds must be worth 2 tokens, not 20.
  clock.advance(2'000'000'000);
  admission.set_refill_per_sec(10.0);
  EXPECT_DOUBLE_EQ(admission.tokens(), 4.0);
  EXPECT_DOUBLE_EQ(admission.options().refill_per_sec, 10.0);
  clock.advance(500'000'000);  // half a second at the new rate: +5
  EXPECT_DOUBLE_EQ(admission.tokens(), 9.0);
  EXPECT_THROW(admission.set_refill_per_sec(-1.0), std::invalid_argument);
}

TEST(AdmissionController, SetDegradedBelowRejudgesAndStaysInTheChain) {
  ManualClock clock;
  AdmissionController admission(small_bucket(), clock);
  // Outside recover_above <= v < healthy_above: refused, so the
  // hysteresis ladder can never be broken by the actuator.
  EXPECT_THROW(admission.set_degraded_below(0.3), std::invalid_argument);
  EXPECT_THROW(admission.set_degraded_below(0.75), std::invalid_argument);

  // Raising the threshold past the current fill re-judges immediately:
  // fill 6 of 10 was healthy under degraded_below = 0.5, is degraded
  // under 0.7 — without any admit() in between.
  for (int i = 0; i < 4; ++i) (void)admission.admit(1.0);
  ASSERT_EQ(admission.health(), Health::kHealthy);
  admission.set_degraded_below(0.7);
  EXPECT_EQ(admission.health(), Health::kDegraded);
  EXPECT_DOUBLE_EQ(admission.options().degraded_below, 0.7);
}

TEST(CircuitBreaker, RecoveriesMeasureWholeEpisodes) {
  ManualClock clock;
  CircuitBreaker breaker(small_breaker(), clock);  // cooldown 1000 ns
  EXPECT_EQ(breaker.recoveries(), 0u);
  EXPECT_EQ(breaker.last_recovery_ns(), 0u);

  // First-probe recovery: the episode spans exactly the cooldown.
  breaker.record_failure();
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  clock.advance(1'000);
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.recoveries(), 1u);
  EXPECT_EQ(breaker.last_recovery_ns(), 1'000u);

  // A failed probe re-trips WITHOUT restarting the episode clock: the
  // next recovery measures from the episode's first trip.
  breaker.record_failure();
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  clock.advance(1'000);
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();  // probe fails, cooldown restarts
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  clock.advance(1'000);
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.recoveries(), 2u);
  EXPECT_EQ(breaker.last_recovery_ns(), 2'000u);
}

TEST(CircuitBreaker, SetCooldownAppliesToFutureTrips) {
  ManualClock clock;
  CircuitBreaker breaker(small_breaker(), clock);  // cooldown 1000 ns
  EXPECT_THROW(breaker.set_cooldown_ns(0), std::invalid_argument);

  breaker.set_cooldown_ns(500);
  breaker.record_failure();
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  clock.advance(499);
  EXPECT_FALSE(breaker.allow());
  clock.advance(1);  // the shortened cooldown elapses
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

}  // namespace
}  // namespace confcall::support
