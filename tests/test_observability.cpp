// Integration tests for the observability layer as wired into the
// cellular stack: byte-inert defaults, registry/SimReport agreement,
// snapshot determinism, locate-path spans, and the contract that every
// metric the system can emit is catalogued in docs/OBSERVABILITY.md
// (the doc is diffed against the runtime registry listing, so the
// catalogue cannot silently rot).
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cellular/simulator.h"
#include "cellular/workload.h"
#include "prob/rng.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace confcall::cellular {
namespace {

/// A small overloaded deployment: admission + deadlines + the resilient
/// planner chain, so ALL THREE instrumented components (locate path,
/// planner tiers, admission controller) register their series.
SimConfig observed_config() {
  SimConfig config = overloaded_urban_scenario(77).config;
  config.steps = 250;
  config.warmup_steps = 30;
  config.collect_metrics = true;
  return config;
}

TEST(Observability, MetricsOffByDefaultAndByteInert) {
  SimConfig config = observed_config();
  config.collect_metrics = false;
  const SimReport off = run_simulation(config);
  EXPECT_TRUE(off.metrics.empty());

  // Turning metrics on changes NOTHING about the simulation itself.
  const SimReport on = run_simulation(observed_config());
  EXPECT_FALSE(on.metrics.empty());
  EXPECT_EQ(off.calls_served, on.calls_served);
  EXPECT_EQ(off.cells_paged_total, on.cells_paged_total);
  EXPECT_EQ(off.reports_sent, on.reports_sent);
  EXPECT_EQ(off.calls_shed, on.calls_shed);
  EXPECT_EQ(off.rounds_histogram, on.rounds_histogram);
}

TEST(Observability, SnapshotAgreesWithSimReportCounters) {
  const SimReport report = run_simulation(observed_config());
  const auto counter = [&](const char* name) {
    const support::MetricSnapshot* metric = report.metrics.find(name);
    return metric == nullptr ? std::uint64_t{0} : metric->counter_value;
  };
  EXPECT_EQ(counter("confcall_locate_calls_total"), report.calls_served);
  EXPECT_EQ(counter("confcall_locate_plan_cache_hits_total"),
            report.plan_cache_hits);
  EXPECT_EQ(counter("confcall_locate_plan_cache_misses_total"),
            report.plan_cache_misses);
  EXPECT_EQ(counter("confcall_locate_retries_total"), report.retries_total);
  EXPECT_EQ(counter("confcall_locate_abandoned_total"),
            report.calls_abandoned);
  EXPECT_EQ(counter("confcall_admission_shed_total"), report.calls_shed);
  EXPECT_EQ(counter("confcall_planner_failovers_total"),
            report.planner_failovers);
  EXPECT_EQ(counter("confcall_planner_breaker_skips_total"),
            report.breaker_skips);

  const support::MetricSnapshot* pages =
      report.metrics.find("confcall_locate_pages");
  ASSERT_NE(pages, nullptr);
  EXPECT_EQ(pages->histogram.count, report.calls_served);
  EXPECT_EQ(pages->histogram.sum,
            static_cast<double>(report.cells_paged_total));
}

// The registry's unit-bucket rounds histogram and the SimReport's
// rounds_histogram observe the same per-call values and must agree on
// every percentile (same rank rounding by construction).
TEST(Observability, RoundsPercentileAgreesWithRegistryQuantile) {
  const SimReport report = run_simulation(observed_config());
  ASSERT_GT(report.calls_served, 0u);
  const support::MetricSnapshot* rounds =
      report.metrics.find("confcall_locate_rounds");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->histogram.count, report.calls_served);
  for (const double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(static_cast<double>(report.rounds_percentile(p)),
              rounds->histogram.quantile(p))
        << "percentile " << p;
  }
}

TEST(Observability, SnapshotsDeterministicAcrossRunsAndThreads) {
  const SimConfig config = observed_config();
  const std::string first = support::to_json(run_simulation(config).metrics);
  const std::string second = support::to_json(run_simulation(config).metrics);
  EXPECT_EQ(first, second);

  const SimBatchReport batch1 = run_simulation_batch(config, 4, 1);
  const SimBatchReport batch4 = run_simulation_batch(config, 4, 4);
  EXPECT_EQ(support::to_json(batch1.aggregate.metrics),
            support::to_json(batch4.aggregate.metrics));
}

TEST(Observability, LocateEmitsNestedSpans) {
  const GridTopology grid(6, 6, true, Neighborhood::kVonNeumann);
  const LocationAreas areas = LocationAreas::tiles(grid, 3, 3);
  const MarkovMobility mobility(grid, 0.9);
  LocationService::Config config;
  config.max_paging_rounds = 3;
  support::ManualClock clock(0);
  support::Tracer tracer(64, clock);
  config.tracer = &tracer;
  prob::Rng rng(7);
  std::vector<CellId> cells(8);
  for (auto& cell : cells) {
    cell = static_cast<CellId>(rng.next_below(grid.num_cells()));
  }
  LocationService service(grid, areas, mobility, config, cells);
  const std::vector<UserId> users = {0, 1};
  const std::vector<CellId> truth = {cells[0], cells[1]};
  (void)service.locate(users, truth, rng);

  const std::vector<support::SpanRecord> spans = tracer.snapshot();
  std::uint64_t locate_id = 0;
  for (const auto& span : spans) {
    if (std::string(span.name) == "locate") locate_id = span.span_id;
  }
  ASSERT_NE(locate_id, 0u) << "no locate span recorded";
  std::set<std::string> children;
  for (const auto& span : spans) {
    if (span.parent_id == locate_id) children.insert(span.name);
  }
  EXPECT_TRUE(children.count("plan") == 1) << "missing plan child span";
  EXPECT_TRUE(children.count("page_rounds") == 1)
      << "missing page_rounds child span";
}

// Every metric the instrumented system can register must be documented:
// diff the runtime registry listing against docs/OBSERVABILITY.md.
TEST(Observability, EveryEmittedMetricIsCatalogued) {
  const SimReport report = run_simulation(observed_config());
  ASSERT_FALSE(report.metrics.empty());

  const std::string doc_path =
      std::string(CONFCALL_SOURCE_DIR) + "/docs/OBSERVABILITY.md";
  std::ifstream file(doc_path);
  ASSERT_TRUE(file.is_open()) << "cannot open " << doc_path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string doc = buffer.str();

  std::set<std::string> names;
  for (const auto& metric : report.metrics.metrics) {
    names.insert(metric.name);
  }
  EXPECT_GE(names.size(), 15u);  // all three component families present
  // Labelled metrics are catalogued as `name{label="..."}`, so match the
  // backticked name prefix rather than requiring the closing backtick.
  for (const std::string& name : names) {
    EXPECT_NE(doc.find("`" + name), std::string::npos)
        << "metric '" << name
        << "' is emitted at runtime but missing from docs/OBSERVABILITY.md";
  }
}

}  // namespace
}  // namespace confcall::cellular
