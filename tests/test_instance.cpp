// Tests for core::Instance and core::RationalInstance.
#include "core/instance.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "prob/rational.h"

namespace confcall::core {
namespace {

using prob::Rational;

TEST(Instance, BasicAccessors) {
  const Instance instance(2, 3, {0.5, 0.25, 0.25, 0.1, 0.2, 0.7});
  EXPECT_EQ(instance.num_devices(), 2u);
  EXPECT_EQ(instance.num_cells(), 3u);
  EXPECT_DOUBLE_EQ(instance.prob(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(instance.prob(1, 2), 0.7);
  const auto row = instance.row(1);
  EXPECT_DOUBLE_EQ(row[0], 0.1);
  EXPECT_DOUBLE_EQ(row[2], 0.7);
}

TEST(Instance, CellWeights) {
  const Instance instance(2, 3, {0.5, 0.25, 0.25, 0.1, 0.2, 0.7});
  EXPECT_DOUBLE_EQ(instance.cell_weight(0), 0.6);
  EXPECT_DOUBLE_EQ(instance.cell_weight(2), 0.95);
  const auto weights = instance.cell_weights();
  EXPECT_DOUBLE_EQ(weights[1], 0.45);
}

TEST(Instance, RejectsBadDimensions) {
  EXPECT_THROW(Instance(0, 3, {}), std::invalid_argument);
  EXPECT_THROW(Instance(1, 0, {}), std::invalid_argument);
  EXPECT_THROW(Instance(1, 3, {0.5, 0.5}), std::invalid_argument);
}

TEST(Instance, RejectsBadProbabilities) {
  EXPECT_THROW(Instance(1, 2, {0.5, 0.6}), std::invalid_argument);   // sum>1
  EXPECT_THROW(Instance(1, 2, {0.5, 0.4}), std::invalid_argument);   // sum<1
  EXPECT_THROW(Instance(1, 2, {-0.1, 1.1}), std::invalid_argument);  // neg
}

TEST(Instance, AllowsZeroEntries) {
  // The paper's own Section 4.3 instance uses zeros.
  EXPECT_NO_THROW(Instance(1, 3, {0.0, 0.0, 1.0}));
}

TEST(Instance, FromRowsRejectsRagged) {
  EXPECT_THROW(Instance::from_rows({{0.5, 0.5}, {1.0}}),
               std::invalid_argument);
  EXPECT_THROW(Instance::from_rows({}), std::invalid_argument);
}

TEST(Instance, UniformFactory) {
  const Instance instance = Instance::uniform(3, 4);
  for (DeviceId i = 0; i < 3; ++i) {
    for (CellId j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(instance.prob(i, j), 0.25);
    }
  }
}

TEST(Instance, SelectDevicesReordersRows) {
  const Instance instance(2, 2, {0.3, 0.7, 0.9, 0.1});
  const DeviceId picks[] = {1, 0, 1};
  const Instance sub = instance.select_devices(picks);
  EXPECT_EQ(sub.num_devices(), 3u);
  EXPECT_DOUBLE_EQ(sub.prob(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(sub.prob(1, 1), 0.7);
  EXPECT_DOUBLE_EQ(sub.prob(2, 0), 0.9);
}

TEST(Instance, SelectDevicesValidates) {
  const Instance instance = Instance::uniform(2, 2);
  const DeviceId bad[] = {5};
  EXPECT_THROW(instance.select_devices(bad), std::invalid_argument);
  EXPECT_THROW(instance.select_devices({}), std::invalid_argument);
}

TEST(Instance, RestrictCellsRenormalizes) {
  const Instance instance(1, 4, {0.1, 0.2, 0.3, 0.4});
  const CellId keep[] = {1, 3};
  const Instance sub = instance.restrict_cells(keep);
  EXPECT_EQ(sub.num_cells(), 2u);
  EXPECT_NEAR(sub.prob(0, 0), 0.2 / 0.6, 1e-12);
  EXPECT_NEAR(sub.prob(0, 1), 0.4 / 0.6, 1e-12);
}

TEST(Instance, RestrictCellsRejectsZeroMass) {
  const Instance instance(1, 3, {0.0, 0.0, 1.0});
  const CellId keep[] = {0, 1};
  EXPECT_THROW(instance.restrict_cells(keep), std::invalid_argument);
}

TEST(Instance, ToStringMentionsDimensions) {
  const Instance instance = Instance::uniform(2, 3);
  const std::string text = instance.to_string();
  EXPECT_NE(text.find("m=2"), std::string::npos);
  EXPECT_NE(text.find("c=3"), std::string::npos);
}

TEST(RationalInstance, ExactRowSumEnforced) {
  EXPECT_NO_THROW(RationalInstance(
      1, 3, {Rational(1, 3), Rational(1, 3), Rational(1, 3)}));
  EXPECT_THROW(RationalInstance(
                   1, 3, {Rational(1, 3), Rational(1, 3), Rational(1, 4)}),
               std::invalid_argument);
  EXPECT_THROW(RationalInstance(
                   1, 2, {Rational(-1, 2), Rational(3, 2)}),
               std::invalid_argument);
}

TEST(RationalInstance, ToDoubleInstanceMatches) {
  const RationalInstance exact(
      2, 2, {Rational(2, 7), Rational(5, 7), Rational(1, 3), Rational(2, 3)});
  const Instance approx = exact.to_double_instance();
  EXPECT_NEAR(approx.prob(0, 0), 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(approx.prob(1, 1), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace confcall::core
