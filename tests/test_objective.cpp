// Tests for the stopping objectives, including a brute-force reference for
// the Poisson-binomial tail.
#include "core/objective.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "prob/rng.h"

namespace confcall::core {
namespace {

/// Reference Pr[at least k of the independent events with probs q occur]
/// by full 2^m enumeration.
double brute_force_at_least(const std::vector<double>& q, std::size_t k) {
  const std::size_t m = q.size();
  double total = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << m); ++mask) {
    std::size_t found = 0;
    double probability = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (std::size_t{1} << i)) {
        probability *= q[i];
        ++found;
      } else {
        probability *= 1.0 - q[i];
      }
    }
    if (found >= k) total += probability;
  }
  return total;
}

TEST(Objective, RequiredCounts) {
  EXPECT_EQ(Objective::all_of().required(5), 5u);
  EXPECT_EQ(Objective::any_of().required(5), 1u);
  EXPECT_EQ(Objective::k_of_m(3).required(5), 3u);
  EXPECT_THROW((void)Objective::k_of_m(0).required(5), std::invalid_argument);
  EXPECT_THROW((void)Objective::k_of_m(6).required(5), std::invalid_argument);
}

TEST(Objective, AllOfIsProduct) {
  const std::vector<double> q = {0.5, 0.4, 0.9};
  EXPECT_NEAR(Objective::all_of().stop_probability(q), 0.5 * 0.4 * 0.9,
              1e-15);
}

TEST(Objective, AnyOfIsComplementProduct) {
  const std::vector<double> q = {0.5, 0.4, 0.9};
  EXPECT_NEAR(Objective::any_of().stop_probability(q),
              1.0 - 0.5 * 0.6 * 0.1, 1e-15);
}

TEST(Objective, EmptyPrefixNeverStops) {
  const std::vector<double> q = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(Objective::all_of().stop_probability(q), 0.0);
  EXPECT_DOUBLE_EQ(Objective::any_of().stop_probability(q), 0.0);
  EXPECT_DOUBLE_EQ(Objective::k_of_m(2).stop_probability(q), 0.0);
}

TEST(Objective, FullPrefixAlwaysStops) {
  const std::vector<double> q = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(Objective::all_of().stop_probability(q), 1.0);
  EXPECT_DOUBLE_EQ(Objective::any_of().stop_probability(q), 1.0);
  EXPECT_DOUBLE_EQ(Objective::k_of_m(2).stop_probability(q), 1.0);
}

TEST(Objective, NoDevicesThrows) {
  EXPECT_THROW((void)Objective::all_of().stop_probability({}),
               std::invalid_argument);
}

TEST(Objective, KOfMMatchesBruteForce) {
  prob::Rng rng(21);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t m = 1 + rng.next_below(8);
    std::vector<double> q(m);
    for (double& x : q) x = rng.next_double();
    for (std::size_t k = 1; k <= m; ++k) {
      EXPECT_NEAR(Objective::k_of_m(k).stop_probability(q),
                  brute_force_at_least(q, k), 1e-12)
          << "m=" << m << " k=" << k;
    }
  }
}

TEST(Objective, BoundaryKsMatchNamedObjectives) {
  prob::Rng rng(22);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t m = 2 + rng.next_below(6);
    std::vector<double> q(m);
    for (double& x : q) x = rng.next_double();
    EXPECT_NEAR(Objective::k_of_m(m).stop_probability(q),
                Objective::all_of().stop_probability(q), 1e-13);
    EXPECT_NEAR(Objective::k_of_m(1).stop_probability(q),
                Objective::any_of().stop_probability(q), 1e-13);
  }
}

TEST(Objective, MonotoneInEachCoordinate) {
  const std::vector<double> lo = {0.2, 0.5, 0.3};
  for (const Objective obj :
       {Objective::all_of(), Objective::any_of(), Objective::k_of_m(2)}) {
    std::vector<double> hi = lo;
    hi[1] = 0.8;
    EXPECT_GE(obj.stop_probability(hi), obj.stop_probability(lo))
        << obj.to_string();
  }
}

TEST(Objective, SatisfiedThresholds) {
  EXPECT_TRUE(Objective::all_of().satisfied(3, 3));
  EXPECT_FALSE(Objective::all_of().satisfied(2, 3));
  EXPECT_TRUE(Objective::any_of().satisfied(1, 3));
  EXPECT_FALSE(Objective::any_of().satisfied(0, 3));
  EXPECT_TRUE(Objective::k_of_m(2).satisfied(2, 3));
  EXPECT_FALSE(Objective::k_of_m(2).satisfied(1, 3));
}

TEST(Objective, ToStringDistinguishesModes) {
  EXPECT_NE(Objective::all_of().to_string(), Objective::any_of().to_string());
  EXPECT_NE(Objective::k_of_m(2).to_string(),
            Objective::k_of_m(3).to_string());
}

TEST(Objective, EqualityComparable) {
  EXPECT_EQ(Objective::all_of(), Objective::all_of());
  EXPECT_NE(Objective::all_of(), Objective::any_of());
  EXPECT_EQ(Objective::k_of_m(2), Objective::k_of_m(2));
  EXPECT_NE(Objective::k_of_m(2), Objective::k_of_m(3));
}

}  // namespace
}  // namespace confcall::core
