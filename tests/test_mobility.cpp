// Tests for the Markov mobility model.
#include "cellular/mobility.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace confcall::cellular {
namespace {

TEST(MarkovMobility, ValidatesStayProbability) {
  const GridTopology grid(3, 3);
  EXPECT_THROW(MarkovMobility(grid, -0.1), std::invalid_argument);
  EXPECT_THROW(MarkovMobility(grid, 1.0), std::invalid_argument);
  EXPECT_NO_THROW(MarkovMobility(grid, 0.0));
}

TEST(MarkovMobility, TransitionRowIsDistribution) {
  const GridTopology grid(4, 4);
  const MarkovMobility mobility(grid, 0.3);
  for (std::size_t cell = 0; cell < grid.num_cells(); ++cell) {
    const auto row = mobility.transition_row(static_cast<CellId>(cell));
    EXPECT_NEAR(std::accumulate(row.begin(), row.end(), 0.0), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(row[cell], 0.3);
  }
}

TEST(MarkovMobility, StepFrequenciesMatchRow) {
  const GridTopology grid(3, 3, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.5);
  const CellId start = grid.cell_at(1, 1);
  const auto row = mobility.transition_row(start);
  prob::Rng rng(1);
  std::vector<int> counts(grid.num_cells(), 0);
  const int n = 40000;
  for (int t = 0; t < n; ++t) ++counts[mobility.step(start, rng)];
  for (std::size_t j = 0; j < counts.size(); ++j) {
    EXPECT_NEAR(counts[j] / static_cast<double>(n), row[j], 0.01);
  }
}

TEST(MarkovMobility, EvolvePreservesMass) {
  const GridTopology grid(4, 5);
  const MarkovMobility mobility(grid, 0.4);
  std::vector<double> dist(grid.num_cells(), 0.0);
  dist[7] = 1.0;
  const auto evolved = mobility.evolve(dist, 13);
  EXPECT_NEAR(std::accumulate(evolved.begin(), evolved.end(), 0.0), 1.0,
              1e-12);
  EXPECT_THROW(mobility.evolve(std::vector<double>(3, 0.0), 1),
               std::invalid_argument);
}

TEST(MarkovMobility, EvolveZeroStepsIsIdentity) {
  const GridTopology grid(2, 2);
  const MarkovMobility mobility(grid, 0.2);
  const std::vector<double> dist = {0.1, 0.2, 0.3, 0.4};
  EXPECT_EQ(mobility.evolve(dist, 0), dist);
}

TEST(MarkovMobility, StationaryUniformOnToroidalGrid) {
  // A lazy walk on a vertex-transitive graph has the uniform stationary
  // distribution.
  const GridTopology grid(4, 4, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.25);
  const auto stationary = mobility.stationary_distribution();
  for (const double p : stationary) {
    EXPECT_NEAR(p, 1.0 / 16.0, 1e-9);
  }
}

TEST(MarkovMobility, StationaryProportionalToDegreePlusLazy) {
  // On a bounded grid the lazy walk's stationary mass grows with degree:
  // interior cells (degree 4) carry more than corners (degree 2).
  const GridTopology grid(3, 3, /*toroidal=*/false);
  const MarkovMobility mobility(grid, 0.5);
  const auto stationary = mobility.stationary_distribution();
  EXPECT_GT(stationary[grid.cell_at(1, 1)],
            stationary[grid.cell_at(0, 0)]);
}

TEST(MarkovMobility, StationaryIsFixedPoint) {
  const GridTopology grid(3, 4);
  const MarkovMobility mobility(grid, 0.35);
  const auto stationary = mobility.stationary_distribution();
  const auto advanced = mobility.evolve(stationary, 1);
  for (std::size_t j = 0; j < stationary.size(); ++j) {
    EXPECT_NEAR(advanced[j], stationary[j], 1e-9);
  }
}

TEST(MarkovMobility, TraceStartsAtStartAndStaysAdjacent) {
  const GridTopology grid(5, 5);
  const MarkovMobility mobility(grid, 0.3);
  prob::Rng rng(9);
  const auto trace = mobility.generate_trace(12, 200, rng);
  ASSERT_EQ(trace.size(), 201u);
  EXPECT_EQ(trace[0], 12u);
  for (std::size_t t = 1; t < trace.size(); ++t) {
    if (trace[t] == trace[t - 1]) continue;
    const auto& adj = grid.neighbors(trace[t - 1]);
    EXPECT_NE(std::find(adj.begin(), adj.end(), trace[t]), adj.end());
  }
  EXPECT_THROW(mobility.generate_trace(99, 10, rng), std::invalid_argument);
}

}  // namespace
}  // namespace confcall::cellular
