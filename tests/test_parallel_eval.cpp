// Tests for the sharded Monte-Carlo evaluator (core/evaluator.h,
// monte_carlo_paging_parallel): thread-count invariance, agreement with
// the sequential estimator and the analytic Lemma 2.1 value, and argument
// validation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/evaluator.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "prob/rng.h"
#include "support/thread_pool.h"

namespace confcall::core {
namespace {

Instance random_instance(std::size_t m, std::size_t c, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<prob::ProbabilityVector> rows;
  for (std::size_t i = 0; i < m; ++i) {
    rows.push_back(prob::dirichlet_vector(c, 1.0, rng));
  }
  return Instance::from_rows(rows);
}

TEST(MonteCarloParallel, BitIdenticalAcrossThreadCounts) {
  const Instance instance = random_instance(3, 24, 5);
  const Strategy strategy = plan_greedy(instance, 3).strategy;
  MonteCarloEstimate reference;
  bool first = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const support::ThreadPool pool(threads);
    const MonteCarloEstimate estimate =
        monte_carlo_paging_parallel(instance, strategy, 20'000, 17, pool);
    if (first) {
      reference = estimate;
      first = false;
      continue;
    }
    EXPECT_EQ(estimate.mean, reference.mean) << threads << " threads";
    EXPECT_EQ(estimate.std_error, reference.std_error);
    EXPECT_EQ(estimate.trials, reference.trials);
  }
  EXPECT_EQ(reference.trials, 20'000u);
}

TEST(MonteCarloParallel, ShardCountIsPartOfTheContract) {
  // Different shard counts may legitimately differ (different substream
  // layout); the same shard count must not.
  const Instance instance = random_instance(2, 12, 6);
  const Strategy strategy = plan_greedy(instance, 2).strategy;
  const support::ThreadPool pool(2);
  const MonteCarloEstimate a =
      monte_carlo_paging_parallel(instance, strategy, 5'000, 3, pool,
                                  Objective::all_of(), 16);
  const MonteCarloEstimate b =
      monte_carlo_paging_parallel(instance, strategy, 5'000, 3, pool,
                                  Objective::all_of(), 16);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.std_error, b.std_error);
}

TEST(MonteCarloParallel, AgreesWithAnalyticExpectation) {
  const Instance instance = random_instance(3, 16, 7);
  const Strategy strategy = plan_greedy(instance, 3).strategy;
  const double analytic = expected_paging(instance, strategy);
  const support::ThreadPool pool(4);
  const MonteCarloEstimate estimate =
      monte_carlo_paging_parallel(instance, strategy, 200'000, 11, pool);
  EXPECT_NEAR(estimate.mean, analytic, 5.0 * estimate.std_error);
  EXPECT_GT(estimate.std_error, 0.0);
}

TEST(MonteCarloParallel, UnevenTrialSplitStillRunsAllTrials) {
  // 1000 trials over 64 default shards: 1000 % 64 != 0 exercises the
  // remainder distribution.
  const Instance instance = random_instance(2, 8, 8);
  const Strategy strategy = plan_greedy(instance, 2).strategy;
  const support::ThreadPool pool(3);
  const MonteCarloEstimate estimate =
      monte_carlo_paging_parallel(instance, strategy, 1'000, 2, pool);
  EXPECT_EQ(estimate.trials, 1'000u);
}

TEST(MonteCarloParallel, RejectsBadArguments) {
  const Instance instance = random_instance(2, 8, 9);
  const Strategy strategy = plan_greedy(instance, 2).strategy;
  const support::ThreadPool pool(2);
  EXPECT_THROW(
      monte_carlo_paging_parallel(instance, strategy, 0, 1, pool),
      std::invalid_argument);
  EXPECT_THROW(monte_carlo_paging_parallel(instance, strategy, 4, 1, pool,
                                           Objective::all_of(), 9),
               std::invalid_argument);
}

}  // namespace
}  // namespace confcall::core
