// The solver hierarchy, asserted as one chain on full-support instances:
//
//   lower bounds <= optimal adaptive <= { heuristic adaptive,
//                                         oblivious OPT }
//                <= greedy (Fig. 1)  <= e/(e-1) * oblivious OPT
//                <= blanket (c)
//
// Every inequality is a theorem (or a definition) in the paper's
// framework; running them as one parameterized sweep catches any
// implementation drift that individual module tests might miss.
#include <gtest/gtest.h>

#include <tuple>

#include "core/adaptive.h"
#include "core/adaptive_optimal.h"
#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "test_util.h"

namespace confcall::core {
namespace {

class Hierarchy : public ::testing::TestWithParam<
                      std::tuple<std::size_t, std::size_t, std::uint64_t>> {
};

TEST_P(Hierarchy, FullChainHolds) {
  const auto [m, d, seed] = GetParam();
  const std::size_t c = 7;
  // Dirichlet rows have full support, so the adaptive solvers' support
  // pruning cannot undercut the oblivious convention.
  const Instance instance = testing::random_instance(m, c, seed + 300, 1.0);

  const double blanket = static_cast<double>(c);
  const double greedy = plan_greedy(instance, d).expected_paging;
  const double oblivious_opt =
      solve_branch_and_bound(instance, d).expected_paging;
  const double heuristic_adaptive =
      adaptive_expected_paging_exact(instance, d);
  const double adaptive_opt =
      solve_optimal_adaptive(instance, d).expected_paging;
  // Two bound regimes: the single-user bound holds even for adaptive
  // policies (finding all devices includes finding the hardest one, and
  // single-user adaptivity gains nothing on full-support instances); the
  // AM-GM bound only constrains OBLIVIOUS strategies — the adaptive
  // optimum genuinely beats it at d >= 3 (an observation these tests
  // surfaced; see bounds.h).
  const double adaptive_valid_bound = lower_bound_single_user(instance, d);
  const double oblivious_bound = lower_bound_conference(instance, d);

  constexpr double kEps = 1e-9;
  EXPECT_LE(adaptive_valid_bound, adaptive_opt + kEps);
  EXPECT_LE(oblivious_bound, oblivious_opt + kEps);
  EXPECT_LE(adaptive_opt, heuristic_adaptive + kEps);
  EXPECT_LE(adaptive_opt, oblivious_opt + kEps);
  EXPECT_LE(heuristic_adaptive, greedy + kEps);
  EXPECT_LE(oblivious_opt, greedy + kEps);
  EXPECT_LE(greedy, kApproximationFactor * oblivious_opt + kEps);
  EXPECT_LE(greedy, blanket + kEps);
  // And everything is at least 1 page.
  EXPECT_GE(adaptive_valid_bound, 1.0 - kEps);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Hierarchy,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(0, 1, 2, 3)));

TEST(HierarchyObjectives, ObjectiveDominanceChain) {
  // For the SAME strategy: any-of stops no later than k-of-m stops no
  // later than all-of, so expected paging is ordered accordingly.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = testing::mixed_instance(4, 9, seed + 60);
    const PlanResult plan = plan_greedy(instance, 3);
    double previous = 0.0;
    for (std::size_t k = 1; k <= 4; ++k) {
      const double ep =
          expected_paging(instance, plan.strategy, Objective::k_of_m(k));
      EXPECT_GE(ep, previous - 1e-12) << "seed=" << seed << " k=" << k;
      previous = ep;
    }
    EXPECT_NEAR(
        expected_paging(instance, plan.strategy, Objective::any_of()),
        expected_paging(instance, plan.strategy, Objective::k_of_m(1)),
        1e-12);
    EXPECT_NEAR(
        expected_paging(instance, plan.strategy, Objective::all_of()),
        expected_paging(instance, plan.strategy, Objective::k_of_m(4)),
        1e-12);
  }
}

TEST(HierarchyDevices, MoreDevicesCostMore) {
  // Adding a device to the conference can only increase the optimal
  // expected paging (the search must satisfy a superset of requirements).
  prob::Rng rng(71);
  std::vector<prob::ProbabilityVector> rows;
  for (int i = 0; i < 4; ++i) {
    rows.push_back(prob::dirichlet_vector(7, 0.8, rng));
  }
  double previous = 0.0;
  for (std::size_t m = 1; m <= 4; ++m) {
    const Instance instance = Instance::from_rows(
        std::vector<prob::ProbabilityVector>(rows.begin(),
                                             rows.begin() + m));
    const double optimal =
        solve_branch_and_bound(instance, 3).expected_paging;
    EXPECT_GE(optimal, previous - 1e-9) << "m=" << m;
    previous = optimal;
  }
}

}  // namespace
}  // namespace confcall::core
