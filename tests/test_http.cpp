// Unit tests for the scrape server (support/http.h): option validation,
// route dispatch (exact match, 404/405, POST bodies), the observability
// routes (scrape-vs-snapshot byte identity, health mapping, traces), and
// the read-deadline guard. Every test binds an ephemeral loopback port
// and talks to it through the blocking http client.
#include "support/http.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>
#include <string>

#include "support/metrics.h"
#include "support/overload.h"
#include "support/slo_controller.h"
#include "support/trace.h"

namespace confcall::support {
namespace {

TEST(HttpServerOptions, ValidatesEveryKnob) {
  HttpServerOptions options;
  options.workers = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.max_pending_connections = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.read_deadline_ns = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.max_request_bytes = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  EXPECT_NO_THROW(HttpServerOptions{}.validate());
}

TEST(HttpServer, DispatchesRoutesAndEchoesBody) {
  HttpServer server;
  server.handle("GET", "/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  server.handle("POST", "/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.method + " " + request.path + " " + request.body;
    return response;
  });
  server.start();
  ASSERT_NE(server.port(), 0);

  const HttpClientResponse ping = http_get("127.0.0.1", server.port(),
                                           "/ping");
  EXPECT_EQ(ping.status, 200);
  EXPECT_EQ(ping.body, "pong");

  const HttpClientResponse echo = http_request(
      "127.0.0.1", server.port(), "POST", "/echo", "hello there");
  EXPECT_EQ(echo.status, 200);
  EXPECT_EQ(echo.body, "POST /echo hello there");
  EXPECT_EQ(server.requests_served(), 2u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServer, UnknownPath404KnownPathWrongMethod405) {
  HttpServer server;
  server.handle("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse{};
  });
  server.start();
  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/nope").status, 404);
  EXPECT_EQ(http_request("127.0.0.1", server.port(), "POST", "/ping")
                .status,
            405);
  server.stop();
}

TEST(HttpServer, RegisteringAfterStartThrows) {
  HttpServer server;
  server.start();
  EXPECT_THROW(
      server.handle("GET", "/late",
                    [](const HttpRequest&) { return HttpResponse{}; }),
      std::logic_error);
  server.stop();
}

TEST(HttpServer, SilentClientGets408WhenReadDeadlineExpires) {
  HttpServerOptions options;
  options.read_deadline_ns = 50'000'000;  // 50 ms
  HttpServer server(options);
  server.handle("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse{};
  });
  server.start();

  // Connect and send NOTHING: the worker's deadline-guarded read must
  // answer 408 instead of holding the connection forever.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string raw;
  char chunk[512];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(raw.rfind("HTTP/1.1 408", 0), 0u) << raw;
  server.stop();
}

TEST(ObservabilityRoutes, RequiresARegistry) {
  HttpServer server;
  EXPECT_THROW(install_observability_routes(server, nullptr),
               std::invalid_argument);
}

TEST(ObservabilityRoutes, MetricsScrapeIsByteIdenticalToSnapshot) {
  MetricRegistry registry;
  const Counter calls = registry.counter("confcall_test_calls_total",
                                         "calls served");
  calls.inc(41);
  const Gauge depth = registry.gauge("confcall_test_depth", "queue depth");
  depth.set(2.5);

  HttpServer server;
  install_observability_routes(server, &registry);
  server.start();
  const HttpClientResponse scraped =
      http_get("127.0.0.1", server.port(), "/metrics");
  server.stop();
  EXPECT_EQ(scraped.status, 200);
  // The scrape IS the snapshot — same renderer, same consistent cut.
  EXPECT_EQ(scraped.body, to_prometheus(registry.snapshot()));

  HttpServer json_server;
  install_observability_routes(json_server, &registry);
  json_server.start();
  const HttpClientResponse vars =
      http_get("127.0.0.1", json_server.port(), "/vars");
  json_server.stop();
  EXPECT_EQ(vars.status, 200);
  EXPECT_EQ(vars.body, to_json(registry.snapshot()));
}

TEST(ObservabilityRoutes, HealthzMapsAdmissionHealth) {
  MetricRegistry registry;
  ManualClock clock;
  AdmissionController admission(AdmissionOptions{}, clock);
  HttpServer server;
  install_observability_routes(server, &registry, nullptr, &admission);
  server.start();

  const HttpClientResponse healthy =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(healthy.status, 200);
  EXPECT_EQ(healthy.body, "{\"health\": \"healthy\"}\n");

  // Drain the bucket below the shed threshold (default 15% of 64): the
  // health machine flips to shedding, which must map to 503.
  (void)admission.admit(60.0);
  EXPECT_EQ(admission.health(), Health::kShedding);
  const HttpClientResponse shedding =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(shedding.status, 503);
  EXPECT_EQ(shedding.body, "{\"health\": \"shedding\"}\n");
  server.stop();
}

TEST(ObservabilityRoutes, HealthzWithoutAdmissionIsAlwaysHealthy) {
  MetricRegistry registry;
  HttpServer server;
  install_observability_routes(server, &registry);
  server.start();
  const HttpClientResponse health =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "{\"health\": \"healthy\"}\n");
  server.stop();
}

TEST(ObservabilityRoutes, HealthzReportsSloVerdictAndFlipsPreBreach) {
  MetricRegistry registry;
  ManualClock clock;
  AdmissionController admission(AdmissionOptions{}, clock);
  const Histogram rounds = registry.histogram(
      "confcall_locate_rounds", HistogramSpec::integers(16), "rounds");
  SloOptions options;
  options.target_p99_ns = 4'000'000;  // 4 ms at 1 ms/round
  options.min_interval_calls = 4;
  SloController slo(options, registry, admission, clock, 1'000'000);
  HttpServer server;
  install_observability_routes(server, &registry, nullptr, &admission,
                               &slo);
  server.start();

  // Within SLO: 200, with the slo subdocument in the body.
  for (int i = 0; i < 8; ++i) rounds.observe(2.0);
  slo.step();
  const HttpClientResponse ok =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("\"health\": \"healthy\""), std::string::npos);
  EXPECT_NE(ok.body.find("\"slo\": {\"state\": \"ok\""), std::string::npos);
  EXPECT_NE(ok.body.find("\"target_p99_ms\": 4"), std::string::npos);

  // A rising trend that projects past the target flips /healthz to 503
  // while the measured p99 is still within SLO: the pre-breach drain.
  for (int i = 0; i < 8; ++i) rounds.observe(3.0);
  slo.step();
  ASSERT_EQ(slo.slo_health(), SloHealth::kDegrading);
  const HttpClientResponse degrading =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(degrading.status, 503);
  EXPECT_NE(degrading.body.find("\"state\": \"degrading\""),
            std::string::npos);

  // An actual breach stays 503 with the breached verdict.
  for (int i = 0; i < 8; ++i) rounds.observe(8.0);
  slo.step();
  ASSERT_EQ(slo.slo_health(), SloHealth::kBreached);
  const HttpClientResponse breached =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(breached.status, 503);
  EXPECT_NE(breached.body.find("\"state\": \"breached\""),
            std::string::npos);
  server.stop();
}

TEST(ObservabilityRoutes, TracesServeSampledSpans) {
  MetricRegistry registry;
  ManualClock clock;
  SamplingTracer tracer(1, 64, clock);
  {
    const Span span(&tracer, "locate");
    clock.advance(1'000);
  }
  HttpServer server;
  install_observability_routes(server, &registry, &tracer);
  server.start();
  const HttpClientResponse traces =
      http_get("127.0.0.1", server.port(), "/traces");
  server.stop();
  EXPECT_EQ(traces.status, 200);
  EXPECT_EQ(traces.body, to_trace_event_json(tracer.snapshot()));
  EXPECT_NE(traces.body.find("\"name\": \"locate\""), std::string::npos);

  // No tracer attached: an empty, still-valid trace document.
  HttpServer bare;
  install_observability_routes(bare, &registry);
  bare.start();
  const HttpClientResponse empty =
      http_get("127.0.0.1", bare.port(), "/traces");
  bare.stop();
  EXPECT_EQ(empty.body,
            "{\"traceEvents\": [], \"displayTimeUnit\": \"ns\"}\n");
}

}  // namespace
}  // namespace confcall::support
