// Unit tests for the scrape server (support/http.h): option validation,
// route dispatch (exact match, 404/405, POST bodies), the observability
// routes (scrape-vs-snapshot byte identity, health mapping, traces), and
// the read-deadline guard. Every test binds an ephemeral loopback port
// and talks to it through the blocking http client.
#include "support/http.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "support/metrics.h"
#include "support/overload.h"
#include "support/slo_controller.h"
#include "support/trace.h"

namespace confcall::support {
namespace {

TEST(HttpServerOptions, ValidatesEveryKnob) {
  HttpServerOptions options;
  options.workers = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.max_pending_connections = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.read_deadline_ns = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.max_request_bytes = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  EXPECT_NO_THROW(HttpServerOptions{}.validate());
}

TEST(HttpServer, DispatchesRoutesAndEchoesBody) {
  HttpServer server;
  server.handle("GET", "/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  server.handle("POST", "/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.method + " " + request.path + " " + request.body;
    return response;
  });
  server.start();
  ASSERT_NE(server.port(), 0);

  const HttpClientResponse ping = http_get("127.0.0.1", server.port(),
                                           "/ping");
  EXPECT_EQ(ping.status, 200);
  EXPECT_EQ(ping.body, "pong");

  const HttpClientResponse echo = http_request(
      "127.0.0.1", server.port(), "POST", "/echo", "hello there");
  EXPECT_EQ(echo.status, 200);
  EXPECT_EQ(echo.body, "POST /echo hello there");
  EXPECT_EQ(server.requests_served(), 2u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServer, UnknownPath404KnownPathWrongMethod405) {
  HttpServer server;
  server.handle("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse{};
  });
  server.start();
  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/nope").status, 404);
  EXPECT_EQ(http_request("127.0.0.1", server.port(), "POST", "/ping")
                .status,
            405);
  server.stop();
}

TEST(HttpServer, RegisteringAfterStartThrows) {
  HttpServer server;
  server.start();
  EXPECT_THROW(
      server.handle("GET", "/late",
                    [](const HttpRequest&) { return HttpResponse{}; }),
      std::logic_error);
  server.stop();
}

TEST(HttpServer, SilentClientGets408WhenReadDeadlineExpires) {
  HttpServerOptions options;
  options.read_deadline_ns = 50'000'000;  // 50 ms
  HttpServer server(options);
  server.handle("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse{};
  });
  server.start();

  // Connect and send NOTHING: the worker's deadline-guarded read must
  // answer 408 instead of holding the connection forever.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string raw;
  char chunk[512];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(raw.rfind("HTTP/1.1 408", 0), 0u) << raw;
  server.stop();
}

TEST(ObservabilityRoutes, RequiresARegistry) {
  HttpServer server;
  EXPECT_THROW(install_observability_routes(server, nullptr),
               std::invalid_argument);
}

TEST(ObservabilityRoutes, MetricsScrapeIsByteIdenticalToSnapshot) {
  MetricRegistry registry;
  const Counter calls = registry.counter("confcall_test_calls_total",
                                         "calls served");
  calls.inc(41);
  const Gauge depth = registry.gauge("confcall_test_depth", "queue depth");
  depth.set(2.5);

  HttpServer server;
  install_observability_routes(server, &registry);
  server.start();
  const HttpClientResponse scraped =
      http_get("127.0.0.1", server.port(), "/metrics");
  server.stop();
  EXPECT_EQ(scraped.status, 200);
  // The scrape IS the snapshot — same renderer, same consistent cut.
  EXPECT_EQ(scraped.body, to_prometheus(registry.snapshot()));

  HttpServer json_server;
  install_observability_routes(json_server, &registry);
  json_server.start();
  const HttpClientResponse vars =
      http_get("127.0.0.1", json_server.port(), "/vars");
  json_server.stop();
  EXPECT_EQ(vars.status, 200);
  EXPECT_EQ(vars.body, to_json(registry.snapshot()));
}

TEST(ObservabilityRoutes, HealthzMapsAdmissionHealth) {
  MetricRegistry registry;
  ManualClock clock;
  AdmissionController admission(AdmissionOptions{}, clock);
  HttpServer server;
  install_observability_routes(server, &registry, nullptr, &admission);
  server.start();

  const HttpClientResponse healthy =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(healthy.status, 200);
  EXPECT_EQ(healthy.body, "{\"health\": \"healthy\"}\n");

  // Drain the bucket below the shed threshold (default 15% of 64): the
  // health machine flips to shedding, which must map to 503.
  (void)admission.admit(60.0);
  EXPECT_EQ(admission.health(), Health::kShedding);
  const HttpClientResponse shedding =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(shedding.status, 503);
  EXPECT_EQ(shedding.body, "{\"health\": \"shedding\"}\n");
  server.stop();
}

TEST(ObservabilityRoutes, HealthzWithoutAdmissionIsAlwaysHealthy) {
  MetricRegistry registry;
  HttpServer server;
  install_observability_routes(server, &registry);
  server.start();
  const HttpClientResponse health =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "{\"health\": \"healthy\"}\n");
  server.stop();
}

TEST(ObservabilityRoutes, HealthzReportsSloVerdictAndFlipsPreBreach) {
  MetricRegistry registry;
  ManualClock clock;
  AdmissionController admission(AdmissionOptions{}, clock);
  const Histogram rounds = registry.histogram(
      "confcall_locate_rounds", HistogramSpec::integers(16), "rounds");
  SloOptions options;
  options.target_p99_ns = 4'000'000;  // 4 ms at 1 ms/round
  options.min_interval_calls = 4;
  SloController slo(options, registry, admission, clock, 1'000'000);
  HttpServer server;
  install_observability_routes(server, &registry, nullptr, &admission,
                               &slo);
  server.start();

  // Within SLO: 200, with the slo subdocument in the body.
  for (int i = 0; i < 8; ++i) rounds.observe(2.0);
  slo.step();
  const HttpClientResponse ok =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("\"health\": \"healthy\""), std::string::npos);
  EXPECT_NE(ok.body.find("\"slo\": {\"state\": \"ok\""), std::string::npos);
  EXPECT_NE(ok.body.find("\"target_p99_ms\": 4"), std::string::npos);

  // A rising trend that projects past the target flips /healthz to 503
  // while the measured p99 is still within SLO: the pre-breach drain.
  for (int i = 0; i < 8; ++i) rounds.observe(3.0);
  slo.step();
  ASSERT_EQ(slo.slo_health(), SloHealth::kDegrading);
  const HttpClientResponse degrading =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(degrading.status, 503);
  EXPECT_NE(degrading.body.find("\"state\": \"degrading\""),
            std::string::npos);

  // An actual breach stays 503 with the breached verdict.
  for (int i = 0; i < 8; ++i) rounds.observe(8.0);
  slo.step();
  ASSERT_EQ(slo.slo_health(), SloHealth::kBreached);
  const HttpClientResponse breached =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(breached.status, 503);
  EXPECT_NE(breached.body.find("\"state\": \"breached\""),
            std::string::npos);
  server.stop();
}

TEST(ObservabilityRoutes, TracesServeSampledSpans) {
  MetricRegistry registry;
  ManualClock clock;
  SamplingTracer tracer(1, 64, clock);
  {
    const Span span(&tracer, "locate");
    clock.advance(1'000);
  }
  HttpServer server;
  install_observability_routes(server, &registry, &tracer);
  server.start();
  const HttpClientResponse traces =
      http_get("127.0.0.1", server.port(), "/traces");
  server.stop();
  EXPECT_EQ(traces.status, 200);
  EXPECT_EQ(traces.body, to_trace_event_json(tracer.snapshot()));
  EXPECT_NE(traces.body.find("\"name\": \"locate\""), std::string::npos);

  // No tracer attached: an empty, still-valid trace document.
  HttpServer bare;
  install_observability_routes(bare, &registry);
  bare.start();
  const HttpClientResponse empty =
      http_get("127.0.0.1", bare.port(), "/traces");
  bare.stop();
  EXPECT_EQ(empty.body,
            "{\"traceEvents\": [], \"displayTimeUnit\": \"ns\"}\n");
}

// ---------------------------------------------------------------------------
// Hostile-network behaviour: the fault injector sweep, send-failure
// accounting, readiness, and protocol edge cases.

namespace {

/// Open fds of this process — the leak invariant the sweep asserts.
std::size_t count_open_fds() {
  std::size_t count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;  // includes '.', '..' and the dirfd itself — consistent
}

/// Sends raw bytes to the server, half-closes, reads the full reaction.
std::string raw_exchange(std::uint16_t port, const std::string& bytes,
                         bool trickle = false) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  if (trickle) {
    // Byte-at-a-time delivery: the server's read loop must reassemble an
    // arbitrarily fragmented request (and ride out the EINTR-sized reads
    // that come with it) without misparsing.
    for (const char c : bytes) {
      EXPECT_EQ(::send(fd, &c, 1, MSG_NOSIGNAL), 1);
    }
  } else {
    EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  (void)::shutdown(fd, SHUT_WR);
  std::string raw;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return raw;
}

}  // namespace

TEST(FaultInjector, EveryClassGetsItsDocumentedStatusWithoutFdLeaks) {
  HttpServerOptions options;
  options.read_deadline_ns = 200'000'000;  // keep slow-loris runs short
  MetricRegistry registry;  // before the server: counters must outlive it
  HttpServer server(options);
  server.bind_metrics(registry);
  server.handle("POST", "/locate", [](const HttpRequest&) {
    return HttpResponse{};
  });
  server.start();

  struct Expectation {
    SocketFaultClass fault;
    int status;
    const char* metric_class;
  };
  const Expectation expectations[] = {
      {SocketFaultClass::kTornWrite, 400, "malformed"},
      {SocketFaultClass::kMidBodyDisconnect, 400, "malformed"},
      {SocketFaultClass::kSlowLorisHeaders, 408, "slow_client"},
      {SocketFaultClass::kOversizedHeaders, 431, "header_too_large"},
      {SocketFaultClass::kOversizedBody, 413, "body_too_large"},
      {SocketFaultClass::kGarbagePipelining, 400, "malformed"},
  };

  const std::size_t fds_before = count_open_fds();
  SocketFaultInjector injector(0x5eed);
  for (const Expectation& expected : expectations) {
    for (int round = 0; round < 3; ++round) {
      const SocketFaultInjector::Outcome outcome = injector.run(
          "127.0.0.1", server.port(), expected.fault, 3'000'000'000);
      EXPECT_EQ(outcome.status, expected.status)
          << socket_fault_class_name(expected.fault) << " round " << round
          << " raw: " << outcome.raw.substr(0, 120);
      // The header flood is the one class where the server rightly
      // closes on top of unread abuse, so the response arrives with an
      // RST rather than a FIN; everywhere else the close is orderly.
      if (expected.fault != SocketFaultClass::kOversizedHeaders) {
        EXPECT_TRUE(outcome.clean_close)
            << socket_fault_class_name(expected.fault) << " round "
            << round;
      }
    }
  }

  // Every worker released its connection fd. Brief settle loop: the last
  // worker may still be between our EOF-drain and its close().
  std::size_t fds_after = count_open_fds();
  for (int i = 0; i < 100 && fds_after > fds_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    fds_after = count_open_fds();
  }
  EXPECT_EQ(fds_after, fds_before);

  // And each class landed on its labelled rejection counter.
  server.stop();
  const RegistrySnapshot snapshot = registry.snapshot();
  for (const Expectation& expected : expectations) {
    bool found = false;
    for (const MetricSnapshot& metric : snapshot.metrics) {
      if (metric.name != "confcall_http_rejections_total") continue;
      for (const auto& label : metric.labels) {
        if (label.second == expected.metric_class) {
          found = true;
          EXPECT_GE(metric.counter_value, 3u) << expected.metric_class;
        }
      }
    }
    EXPECT_TRUE(found) << expected.metric_class;
  }
}

TEST(HttpServer, PeerResetDuringResponseIsCountedNotFatal) {
  MetricRegistry registry;  // before the server: counters must outlive it
  HttpServer server;
  server.bind_metrics(registry);
  install_observability_routes(server, &registry);
  server.handle("GET", "/slow", [](const HttpRequest&) {
    // Give the client time to vanish before the response is written.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    HttpResponse response;
    response.body = std::string(1 << 20, 'x');  // larger than socket buffers
    return response;
  });
  server.start();

  // Ask, then slam the door: SO_LINGER(0) close sends an RST, so the
  // worker's send hits ECONNRESET/EPIPE on a half-written response. The
  // contract: counted, never a crash (a SIGPIPE would kill the process)
  // and never a wedged worker.
  for (int i = 0; i < 3; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string request = "GET /slow HTTP/1.1\r\nHost: t\r\n\r\n";
    ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(request.size()));
    struct linger hard_close {1, 0};
    ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close,
                           sizeof(hard_close)),
              0);
    ::close(fd);
  }

  // The server is still fully alive for well-behaved clients...
  std::uint64_t send_failed = 0;
  for (int i = 0; i < 100; ++i) {
    const HttpClientResponse probe =
        http_get("127.0.0.1", server.port(), "/metrics");
    ASSERT_EQ(probe.status, 200);
    // Newline-anchored: the HELP line repeats the metric name.
    const std::size_t at =
        probe.body.find("\nconfcall_http_send_failed_total ");
    ASSERT_NE(at, std::string::npos);
    send_failed = static_cast<std::uint64_t>(
        std::stoull(probe.body.substr(at + 33)));
    if (send_failed >= 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // ...and every torn-off peer was counted.
  EXPECT_GE(send_failed, 3u);
  server.stop();
}

TEST(ObservabilityRoutes, ReadyzTracksTheRestartLifecycle) {
  MetricRegistry registry;
  ReadinessGate readiness;
  HttpServer server;
  install_observability_routes(server, &registry, nullptr, nullptr, nullptr,
                               &readiness);
  server.start();

  // A simulated restart walks the whole lifecycle. Liveness (/healthz)
  // stays 200 throughout — the process is fine — while readiness
  // (/readyz) only opens in kReady: a balancer must not route to a
  // backend that is restoring or draining.
  const struct {
    Readiness state;
    int expected;
  } phases[] = {
      {Readiness::kStarting, 503}, {Readiness::kRestoring, 503},
      {Readiness::kWarmup, 503},   {Readiness::kReady, 200},
      {Readiness::kDraining, 503},
  };
  for (const auto& phase : phases) {
    readiness.set(phase.state);
    const HttpClientResponse ready =
        http_get("127.0.0.1", server.port(), "/readyz");
    EXPECT_EQ(ready.status, phase.expected)
        << readiness_name(phase.state);
    EXPECT_NE(ready.body.find(readiness_name(phase.state)),
              std::string::npos);
    EXPECT_EQ(
        http_get("127.0.0.1", server.port(), "/healthz").status, 200)
        << readiness_name(phase.state);
  }
  server.stop();
}

TEST(ObservabilityRoutes, ScrapeBytesGaugeLagsOneScrapeBehind) {
  // confcall_scrape_bytes reports the PREVIOUS scrape's size: the gauge
  // is set before rendering, so each response stays byte-identical to
  // an in-process render of the same cut (the E16 gate) instead of
  // chasing its own length.
  MetricRegistry registry;
  registry.counter("confcall_test_calls_total", "calls").inc(1);
  HttpServer server;
  install_observability_routes(server, &registry);
  server.start();

  const HttpClientResponse first =
      http_get("127.0.0.1", server.port(), "/metrics");
  EXPECT_NE(first.body.find("confcall_scrape_bytes 0\n"),
            std::string::npos)
      << first.body;

  const HttpClientResponse second =
      http_get("127.0.0.1", server.port(), "/metrics");
  EXPECT_NE(second.body.find("confcall_scrape_bytes " +
                             std::to_string(first.body.size()) + "\n"),
            std::string::npos)
      << second.body;
  // Still byte-identical to the renderer on the post-scrape snapshot.
  EXPECT_EQ(second.body, to_prometheus(registry.snapshot()));
  server.stop();
}

TEST(ObservabilityRoutes, ReadyzDetailMergesIntoTheBody) {
  MetricRegistry registry;
  ReadinessGate readiness;
  ObservabilityOptions options;
  options.readyz_detail = [] {
    return std::string("\"areas_ready\": 3, \"areas_total\": 8");
  };
  HttpServer server;
  install_observability_routes(server, &registry, nullptr, nullptr, nullptr,
                               &readiness, options);
  server.start();

  readiness.set(Readiness::kRestoring);
  const HttpClientResponse restoring =
      http_get("127.0.0.1", server.port(), "/readyz");
  EXPECT_EQ(restoring.status, 503);
  EXPECT_NE(restoring.body.find("\"areas_ready\": 3"), std::string::npos)
      << restoring.body;

  readiness.set(Readiness::kReady);
  const HttpClientResponse ready =
      http_get("127.0.0.1", server.port(), "/readyz");
  EXPECT_EQ(ready.status, 200);
  EXPECT_NE(ready.body.find("\"areas_total\": 8"), std::string::npos)
      << ready.body;
  server.stop();
}

TEST(ObservabilityRoutes, MetricsExemplarsFollowTheOption) {
  MetricRegistry registry;
  const Histogram lat = registry.histogram(
      "confcall_test_lat_ns", HistogramSpec::integers(4), "latency");
  lat.observe(2.0);
  lat.annotate(2.0, 0xfeedULL);

  // Default routes: annotations never reach the wire.
  HttpServer plain_server;
  install_observability_routes(plain_server, &registry);
  plain_server.start();
  const HttpClientResponse plain =
      http_get("127.0.0.1", plain_server.port(), "/metrics");
  plain_server.stop();
  EXPECT_EQ(plain.body.find("trace_id"), std::string::npos);

  // Opted in: the bucket line grows the OpenMetrics exemplar suffix.
  ObservabilityOptions options;
  options.exemplars = true;
  HttpServer exemplar_server;
  install_observability_routes(exemplar_server, &registry, nullptr, nullptr,
                               nullptr, nullptr, options);
  exemplar_server.start();
  const HttpClientResponse annotated =
      http_get("127.0.0.1", exemplar_server.port(), "/metrics");
  exemplar_server.stop();
  EXPECT_NE(
      annotated.body.find("# {trace_id=\"000000000000feed\"} 2"),
      std::string::npos)
      << annotated.body;
}

TEST(HttpServer, ContentLengthEdgeCasesGetSpecificStatuses) {
  HttpServerOptions options;
  options.max_request_bytes = 4096;
  HttpServer server(options);
  server.handle("POST", "/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.body;
    return response;
  });
  server.start();
  const std::uint16_t port = server.port();

  // Missing Content-Length on a POST = empty body, still a valid request
  // (the CI smoke's bodyless locate depends on this).
  EXPECT_EQ(raw_exchange(port, "POST /echo HTTP/1.1\r\nHost: t\r\n\r\n")
                .rfind("HTTP/1.1 200", 0),
            0u);
  // Non-numeric, negative, or absurdly long Content-Length values are
  // malformed — 400, not a crash and not a smuggling vector.
  EXPECT_EQ(raw_exchange(
                port,
                "POST /echo HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
                .rfind("HTTP/1.1 400", 0),
            0u);
  EXPECT_EQ(
      raw_exchange(port, "POST /echo HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
          .rfind("HTTP/1.1 400", 0),
      0u);
  EXPECT_EQ(raw_exchange(port,
                         "POST /echo HTTP/1.1\r\nContent-Length: "
                         "99999999999999999999\r\n\r\n")
                .rfind("HTTP/1.1 400", 0),
            0u);
  // A declaration past the cap is rejected from the header alone — the
  // server must not read (or wait for) a body it will never accept.
  EXPECT_EQ(raw_exchange(port,
                         "POST /echo HTTP/1.1\r\nContent-Length: "
                         "1000000\r\n\r\n")
                .rfind("HTTP/1.1 413", 0),
            0u);
  // A header block that overruns the cap before the blank line is 431.
  EXPECT_EQ(raw_exchange(port,
                         "GET /echo HTTP/1.1\r\nX-Big: " +
                             std::string(8192, 'x') + "\r\n\r\n")
                .rfind("HTTP/1.1 431", 0),
            0u);
  // Byte-at-a-time delivery of a valid request still parses to 200.
  EXPECT_EQ(raw_exchange(port,
                         "POST /echo HTTP/1.1\r\nContent-Length: "
                         "2\r\n\r\nhi",
                         /*trickle=*/true)
                .rfind("HTTP/1.1 200", 0),
            0u);
  server.stop();
}

}  // namespace
}  // namespace confcall::support
