// Cross-module integration tests: full pipelines that thread several
// libraries together the way an application would.
#include <gtest/gtest.h>

#include "cellular/la_design.h"
#include "cellular/profile.h"
#include "cellular/service.h"
#include "cellular/workload.h"
#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "core/io.h"
#include "core/planner.h"
#include "core/scheme.h"
#include "reduction/partition.h"
#include "reduction/reduce.h"
#include "test_util.h"

namespace confcall {
namespace {

using core::CellId;
using core::Instance;
using core::Strategy;

TEST(Integration, SerializePlanDeserializeExecute) {
  // io -> planner -> io -> evaluator round trip.
  const Instance original = testing::mixed_instance(3, 10, 71);
  const Instance instance =
      core::instance_from_text(core::instance_to_text(original));
  const core::PlanResult plan = core::plan_greedy(instance, 3);
  const Strategy parsed =
      core::strategy_from_text(plan.strategy.to_string(), 10);
  EXPECT_EQ(parsed, plan.strategy);
  EXPECT_NEAR(core::expected_paging(instance, parsed),
              plan.expected_paging, 1e-12);
}

TEST(Integration, MobilityProfilePlanningPipeline) {
  // topology -> mobility -> trace -> empirical profile -> plan -> execute.
  const cellular::GridTopology grid(6, 6, /*toroidal=*/true);
  const cellular::MarkovMobility mobility(grid, 0.5);
  const cellular::LocationAreas areas =
      cellular::LocationAreas::tiles(grid, 3, 3);
  prob::Rng rng(5);

  const auto& cells = areas.cells_in(0);
  std::vector<prob::ProbabilityVector> rows;
  std::vector<CellId> trace_ends;
  for (int device = 0; device < 3; ++device) {
    const auto trace = mobility.generate_trace(cells[device], 400, rng);
    rows.push_back(cellular::empirical_profile(trace, cells, 1.0));
    trace_ends.push_back(trace.back());
  }
  const Instance instance = Instance::from_rows(rows);
  const core::PlanResult plan = core::plan_greedy(instance, 3);
  EXPECT_LT(plan.expected_paging, static_cast<double>(cells.size()));

  // Execute against devices that kept moving to the trace end — valid
  // whenever the end cell is inside the area.
  std::vector<CellId> local;
  for (const CellId end : trace_ends) {
    const auto it = std::find(cells.begin(), cells.end(), end);
    if (it != cells.end()) {
      local.push_back(static_cast<CellId>(it - cells.begin()));
    }
  }
  if (local.size() == 3) {
    const auto outcome = core::execute_strategy(
        plan.strategy, local, core::Objective::all_of());
    EXPECT_LE(outcome.cells_paged, cells.size());
  }
}

TEST(Integration, ReductionRoundTripThroughIo) {
  // reduction -> rational instance -> doubles -> io -> greedy vs bound.
  const auto sizes = reduction::make_quasipartition1_yes_instance(6, 9, 3);
  const auto reduced =
      reduction::reduce_quasipartition1_to_conference_call(sizes);
  const Instance doubles = reduced.instance.to_double_instance();
  const Instance restored =
      core::instance_from_text(core::instance_to_text(doubles));
  const double greedy = core::plan_greedy(restored, 2).expected_paging;
  EXPECT_GE(greedy, reduced.quasipartition_optimum.to_double() - 1e-9);
  EXPECT_LE(greedy,
            core::kApproximationFactor *
                    reduced.quasipartition_optimum.to_double() +
                1e-9);
}

TEST(Integration, SchemeBeatsBlanketAndRespectsBounds) {
  const Instance instance = testing::mixed_instance(2, 14, 73);
  const core::SchemePlanResult scheme =
      core::plan_quantized_exact(instance, 3, 3);
  EXPECT_LT(scheme.expected_paging, 14.0);
  EXPECT_GE(scheme.expected_paging,
            core::lower_bound_conference(instance, 3) - 1e-9);
}

TEST(Integration, PlannerComparisonOrderingInvariants) {
  // On every instance: exact <= greedy <= blanket under the same d.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Instance instance = testing::random_instance(2, 8, seed + 80, 0.7);
    const core::BlanketPlanner blanket;
    const core::GreedyPlanner greedy;
    const core::ExactPlanner exact;
    const core::Planner* planners[] = {&blanket, &greedy, &exact};
    const auto rows = core::compare_planners(instance, 3, planners);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_LE(rows[2].expected_paging, rows[1].expected_paging + 1e-9);
    EXPECT_LE(rows[1].expected_paging, rows[0].expected_paging + 1e-9);
  }
}

TEST(Integration, ScenarioServiceConsistency) {
  // Run a scenario through the simulator AND through a hand-rolled
  // service loop with the same parameters; both must produce sane,
  // nonzero traffic (they use different rng streams, so only coarse
  // agreement is expected).
  auto scenario = cellular::campus_scenario(5);
  scenario.config.steps = 300;
  scenario.config.warmup_steps = 50;
  const cellular::SimReport report =
      cellular::run_simulation(scenario.config);
  EXPECT_GT(report.calls_served, 10u);

  const cellular::GridTopology grid(scenario.config.grid_rows,
                                    scenario.config.grid_cols,
                                    scenario.config.toroidal);
  const cellular::LocationAreas areas = cellular::LocationAreas::tiles(
      grid, scenario.config.la_tile_rows, scenario.config.la_tile_cols);
  const cellular::MarkovMobility mobility(
      grid, scenario.config.stay_probability);
  cellular::LocationService::Config config;
  config.max_paging_rounds = scenario.config.max_paging_rounds;
  cellular::LocationService service(grid, areas, mobility, config,
                                    {0, 5, 10, 15});
  prob::Rng rng(9);
  std::vector<CellId> cells = {0, 5, 10, 15};
  std::size_t pages = 0;
  for (int t = 0; t < 200; ++t) {
    for (std::size_t u = 0; u < cells.size(); ++u) {
      cells[u] = mobility.step(cells[u], rng);
      service.observe_move(static_cast<cellular::UserId>(u), cells[u]);
    }
    service.tick();
    const cellular::UserId users[] = {0, 1};
    const CellId truth[] = {cells[0], cells[1]};
    pages += service.locate(users, truth, rng).cells_paged;
  }
  EXPECT_GT(pages, 0u);
  // 200 calls, 2 callees, 32-cell LAs: the greedy planner must stay well
  // under the 64-page double blanket on average.
  EXPECT_LT(static_cast<double>(pages) / 200.0, 48.0);
}

TEST(Integration, LaDesignConsistentWithBoundsMachinery) {
  // The analytic pages/callee for the whole-grid LA equals the optimal
  // single-user paging of the stationary profile — tie the two modules.
  const cellular::GridTopology grid(5, 5, /*toroidal=*/true);
  const cellular::MarkovMobility mobility(grid, 0.4);
  const auto eval = cellular::evaluate_tiling(grid, mobility, 5, 5, 4);
  const auto stationary = mobility.stationary_distribution();
  const Instance instance = Instance::from_rows({stationary});
  EXPECT_NEAR(eval.pages_per_callee,
              core::plan_greedy(instance, 4).expected_paging, 1e-9);
}

}  // namespace
}  // namespace confcall
