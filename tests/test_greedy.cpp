// Tests for the Fig. 1 planner: the greedy order, the Lemma 4.7 DP, the
// e/(e-1) guarantee, optimality for m = 1, and the Section 4.3 lower-bound
// instance.
#include "core/greedy.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <tuple>

#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/exact.h"
#include "core/single_user.h"
#include "test_util.h"

namespace confcall::core {
namespace {

TEST(GreedyOrder, SortsByCellWeightWithIndexTieBreak) {
  // Exactly representable doubles; weights: cell0 = 0.625, cell1 = 0.625,
  // cell2 = 0.75 — cells 0 and 1 tie, index breaks the tie.
  const Instance instance(2, 3, {0.25, 0.375, 0.375, 0.375, 0.25, 0.375});
  const auto order = greedy_cell_order(instance);
  EXPECT_EQ(order, (std::vector<CellId>{2, 0, 1}));
}

TEST(GreedyOrder, HardInstanceOrderMatchesPaper) {
  // Section 4.3: ties between paper-cells 1..6 (weight 2/7) are broken by
  // index, so the heuristic sequence starts 1,2,3,4,5,6 then 7,8.
  const auto order = greedy_cell_order(hard_instance_8cells());
  EXPECT_EQ(order, (std::vector<CellId>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(StopByPrefix, BoundaryValues) {
  const Instance instance = testing::random_instance(2, 5, 9);
  std::vector<CellId> order(5);
  std::iota(order.begin(), order.end(), CellId{0});
  const auto stop = stop_by_prefix(instance, order, Objective::all_of());
  ASSERT_EQ(stop.size(), 6u);
  EXPECT_DOUBLE_EQ(stop.front(), 0.0);
  EXPECT_DOUBLE_EQ(stop.back(), 1.0);
  for (std::size_t j = 1; j < stop.size(); ++j) {
    EXPECT_GE(stop[j], stop[j - 1]);
  }
}

TEST(PlanGreedy, ValidatesArguments) {
  const Instance instance = Instance::uniform(2, 4);
  EXPECT_THROW(plan_greedy(instance, 0), std::invalid_argument);
  EXPECT_THROW(plan_greedy(instance, 5), std::invalid_argument);
  EXPECT_NO_THROW(plan_greedy(instance, 4));
}

TEST(PlanDpOverOrder, ValidatesOrder) {
  const Instance instance = Instance::uniform(1, 3);
  EXPECT_THROW(plan_dp_over_order(instance, {0, 1}, 2),
               std::invalid_argument);
  EXPECT_THROW(plan_dp_over_order(instance, {0, 1, 1}, 2),
               std::invalid_argument);
  EXPECT_THROW(plan_dp_over_order(instance, {0, 1, 5}, 2),
               std::invalid_argument);
}

TEST(PlanGreedy, DOneIsBlanket) {
  const Instance instance = testing::random_instance(2, 6, 10);
  const PlanResult plan = plan_greedy(instance, 1);
  EXPECT_EQ(plan.strategy.num_rounds(), 1u);
  EXPECT_DOUBLE_EQ(plan.expected_paging, 6.0);
}

TEST(PlanGreedy, UniformSingleUserTwoRoundsIsThreeQuartersC) {
  // Section 1.1: uniform, m = 1, d = 2 -> EP = 3c/4 by paging halves.
  for (const std::size_t c : {2u, 8u, 64u, 200u}) {
    const PlanResult plan =
        plan_greedy(Instance::uniform(1, c), 2);
    EXPECT_NEAR(plan.expected_paging, 3.0 * c / 4.0, 1e-9) << c;
    EXPECT_EQ(plan.group_sizes[0], c / 2);
  }
}

TEST(PlanGreedy, GroupSizesPartitionAllCells) {
  const Instance instance = testing::mixed_instance(3, 11, 12);
  for (std::size_t d = 1; d <= 11; ++d) {
    const PlanResult plan = plan_greedy(instance, d);
    EXPECT_EQ(plan.strategy.num_rounds(), d);
    EXPECT_EQ(std::accumulate(plan.group_sizes.begin(),
                              plan.group_sizes.end(), std::size_t{0}),
              11u);
  }
}

TEST(PlanGreedy, ExpectedPagingNonIncreasingInD) {
  const Instance instance = testing::mixed_instance(2, 12, 13);
  double previous = 1e300;
  for (std::size_t d = 1; d <= 12; ++d) {
    const double ep = plan_greedy(instance, d).expected_paging;
    EXPECT_LE(ep, previous + 1e-12) << "d=" << d;
    previous = ep;
  }
}

TEST(PlanGreedy, DpValueMatchesEvaluator) {
  // The strategy the DP reconstructs must evaluate (via Lemma 2.1) to the
  // same EP the DP table computed implicitly; plan_greedy recomputes it,
  // so cross-check against an independent brute force over all splits of
  // the same order for small d.
  const Instance instance = testing::random_instance(2, 8, 14, 0.5);
  const auto order = greedy_cell_order(instance);
  const PlanResult plan = plan_dp_over_order(instance, order, 3);
  double best = 1e300;
  for (std::size_t a = 1; a <= 6; ++a) {
    for (std::size_t b = 1; a + b <= 7; ++b) {
      const std::size_t sizes[] = {a, b, 8 - a - b};
      const Strategy s = Strategy::from_order_and_sizes(order, sizes);
      best = std::min(best, expected_paging(instance, s));
    }
  }
  EXPECT_NEAR(plan.expected_paging, best, 1e-10);
}

TEST(PlanGreedy, OptimalForSingleDevice) {
  // For m = 1 Fig. 1 is the exact Goodman/Krishnan/Rose-Yates algorithm:
  // compare against full exhaustive search over ordered partitions.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = testing::random_instance(1, 7, seed, 0.7);
    for (const std::size_t d : {2u, 3u}) {
      const PlanResult plan = plan_greedy(instance, d);
      const ExactResult exact = solve_exact(instance, d);
      EXPECT_NEAR(plan.expected_paging, exact.expected_paging, 1e-9)
          << "seed=" << seed << " d=" << d;
    }
  }
}

TEST(PlanGreedy, WithinEOverEMinusOneOfOptimal) {
  // Theorem 4.8 on exhaustively solvable instances.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const std::size_t m = 2 + seed % 3;
    const Instance instance = testing::random_instance(m, 8, seed + 40, 0.6);
    const PlanResult plan = plan_greedy(instance, 2);
    const ExactResult exact = solve_exact_d2(instance);
    EXPECT_GE(plan.expected_paging, exact.expected_paging - 1e-9);
    EXPECT_LE(plan.expected_paging,
              kApproximationFactor * exact.expected_paging + 1e-9)
        << "seed=" << seed;
  }
}

TEST(PlanGreedy, WithinFourThirdsForTwoDevicesTwoRounds) {
  // Section 4.1: the m = 2, d = 2 restriction is a 4/3-approximation.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Instance instance = testing::random_instance(2, 9, seed + 70, 0.8);
    const PlanResult plan = plan_greedy(instance, 2);
    const ExactResult exact = solve_exact_d2(instance);
    EXPECT_LE(plan.expected_paging,
              (4.0 / 3.0) * exact.expected_paging + 1e-9)
        << "seed=" << seed;
  }
}

TEST(PlanGreedy, HardInstanceReproducesPaperRatio) {
  // Section 4.3: greedy = 320/49, optimal = 317/49, ratio 320/317.
  const Instance instance = hard_instance_8cells();
  const PlanResult plan = plan_greedy(instance, 2);
  EXPECT_NEAR(plan.expected_paging, 320.0 / 49.0, 1e-9);
  EXPECT_EQ(plan.group_sizes[0], 5u);
  EXPECT_EQ(plan.strategy.group(0), (std::vector<CellId>{0, 1, 2, 3, 4}));

  const ExactResult exact = solve_exact_d2(instance);
  EXPECT_NEAR(exact.expected_paging, 317.0 / 49.0, 1e-9);
  EXPECT_NEAR(plan.expected_paging / exact.expected_paging, 320.0 / 317.0,
              1e-9);
}

TEST(PlanGreedy, PerturbedHardInstanceForcesSameChoice) {
  // Section 4.3's remark: after the epsilon perturbation the heuristic's
  // first five cells are forced regardless of tie-breaking, and the ratio
  // is essentially unchanged.
  const Instance instance = hard_instance_8cells_perturbed(1e-6);
  const PlanResult plan = plan_greedy(instance, 2);
  const ExactResult exact = solve_exact_d2(instance);
  EXPECT_NEAR(plan.expected_paging / exact.expected_paging, 320.0 / 317.0,
              1e-3);
}

TEST(PlanGreedy, FullDelayUsesSingletonRounds) {
  // d = c: the optimal strategy in the family pages one cell per round in
  // non-increasing probability order (classical m = 1 result).
  const Instance instance(1, 5, {0.4, 0.25, 0.2, 0.1, 0.05});
  const PlanResult plan = plan_greedy(instance, 5);
  EXPECT_EQ(plan.group_sizes, std::vector<std::size_t>(5, 1));
  // EP = sum_j j * p(order_j).
  EXPECT_NEAR(plan.expected_paging,
              1 * 0.4 + 2 * 0.25 + 3 * 0.2 + 4 * 0.1 + 5 * 0.05, 1e-12);
}

TEST(PlanDpOverOrder, RespectsMaxGroupSize) {
  const Instance instance = testing::mixed_instance(2, 10, 15);
  const auto order = greedy_cell_order(instance);
  const PlanResult plan = plan_dp_over_order(instance, order, 4,
                                             Objective::all_of(), 3);
  for (const std::size_t size : plan.group_sizes) {
    EXPECT_LE(size, 3u);
  }
  EXPECT_THROW(
      plan_dp_over_order(instance, order, 3, Objective::all_of(), 3),
      std::invalid_argument);  // 3 rounds x 3 cells < 10 cells
}

TEST(PlanDpOverOrder, CapNeverImprovesExpectedPaging) {
  const Instance instance = testing::mixed_instance(2, 12, 16);
  const auto order = greedy_cell_order(instance);
  const double unbounded =
      plan_dp_over_order(instance, order, 4).expected_paging;
  const double capped =
      plan_dp_over_order(instance, order, 4, Objective::all_of(), 4)
          .expected_paging;
  EXPECT_GE(capped, unbounded - 1e-12);
}

TEST(PlanDpOverOrder, WorksForAlternativeObjectives) {
  const Instance instance = testing::mixed_instance(3, 9, 17);
  const auto order = greedy_cell_order(instance);
  for (const Objective obj :
       {Objective::any_of(), Objective::k_of_m(2)}) {
    const PlanResult plan = plan_dp_over_order(instance, order, 3, obj);
    // DP optimum over the family: no worse than equal thirds.
    const std::size_t sizes[] = {3, 3, 3};
    const Strategy thirds = Strategy::from_order_and_sizes(order, sizes);
    EXPECT_LE(plan.expected_paging,
              expected_paging(instance, thirds, obj) + 1e-12)
        << obj.to_string();
  }
}

TEST(PlanDpOverOrder, OptimalOverFamilyForEveryObjective) {
  // Exhaustive split comparison: the DP must beat or match EVERY 3-way
  // split of the given order, under each stopping objective.
  const Instance instance = testing::mixed_instance(3, 8, 18);
  const auto order = greedy_cell_order(instance);
  for (const Objective obj : {Objective::all_of(), Objective::any_of(),
                              Objective::k_of_m(2)}) {
    const PlanResult plan = plan_dp_over_order(instance, order, 3, obj);
    for (std::size_t a = 1; a <= 6; ++a) {
      for (std::size_t b = 1; a + b <= 7; ++b) {
        const std::size_t sizes[] = {a, b, 8 - a - b};
        const Strategy s = Strategy::from_order_and_sizes(order, sizes);
        EXPECT_LE(plan.expected_paging,
                  expected_paging(instance, s, obj) + 1e-10)
            << obj.to_string() << " split " << a << "," << b;
      }
    }
  }
}

TEST(SingleUser, MatchesGreedyOnOneRowInstance) {
  prob::Rng rng(55);
  const auto distribution = prob::zipf_vector(10, 1.0, rng);
  const PlanResult via_single = plan_single_user(distribution, 3);
  const PlanResult via_greedy =
      plan_greedy(Instance::from_rows({distribution}), 3);
  EXPECT_DOUBLE_EQ(via_single.expected_paging, via_greedy.expected_paging);
  EXPECT_DOUBLE_EQ(optimal_single_user_paging(distribution, 3),
                   via_single.expected_paging);
}

TEST(SingleUser, MoreDelayNeverHurts) {
  prob::Rng rng(56);
  const auto distribution = prob::geometric_vector(12, 0.6, rng);
  double previous = 1e300;
  for (std::size_t d = 1; d <= 12; ++d) {
    const double ep = optimal_single_user_paging(distribution, d);
    EXPECT_LE(ep, previous + 1e-12);
    previous = ep;
  }
  // With full delay and a geometric profile, EP approaches the mean rank.
  EXPECT_LT(previous, 12.0 / 2.0);
}

/// Parameterized ratio sweep: greedy vs exact across shapes and families.
class ApproximationSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, double>> {};

TEST_P(ApproximationSweep, GreedyWithinTheoremBound) {
  const auto [m, d, alpha] = GetParam();
  const std::size_t c = 7;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Instance instance =
        testing::random_instance(m, c, 1000 * m + 10 * d + seed, alpha);
    const PlanResult plan = plan_greedy(instance, d);
    const ExactResult exact = solve_exact(instance, d);
    EXPECT_GE(plan.expected_paging, exact.expected_paging - 1e-9);
    EXPECT_LE(plan.expected_paging,
              kApproximationFactor * exact.expected_paging + 1e-9)
        << "m=" << m << " d=" << d << " alpha=" << alpha << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ApproximationSweep,
    ::testing::Combine(::testing::Values(2, 3), ::testing::Values(2, 3),
                       ::testing::Values(0.3, 1.0, 5.0)));

}  // namespace
}  // namespace confcall::core
