// Tests for the Yellow Pages / Signature planners (Section 5 variants)
// and the bandwidth-limited planner.
#include "core/signature.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/bandwidth.h"
#include "core/evaluator.h"
#include "core/exact.h"
#include "test_util.h"

namespace confcall::core {
namespace {

TEST(ScoreCellOrder, SumEqualsGreedyOrder) {
  const Instance instance = testing::mixed_instance(3, 8, 1);
  EXPECT_EQ(score_cell_order(instance, CellScore::kSumProb, 3),
            greedy_cell_order(instance));
}

TEST(ScoreCellOrder, MaxScoreRanksByColumnMax) {
  // Column maxima: cell0 = 0.8 (device 1), cell1 = 0.6, cell2 = 0.4.
  const Instance instance(2, 3, {0.0, 0.6, 0.4,  //
                                 0.8, 0.1, 0.1});
  const auto order = score_cell_order(instance, CellScore::kMaxProb, 1);
  EXPECT_EQ(order, (std::vector<CellId>{0, 1, 2}));
}

TEST(ScoreCellOrder, TopKInterpolates) {
  const Instance instance = testing::mixed_instance(4, 10, 2);
  EXPECT_EQ(score_cell_order(instance, CellScore::kTopK, 1),
            score_cell_order(instance, CellScore::kMaxProb, 1));
  EXPECT_EQ(score_cell_order(instance, CellScore::kTopK, 4),
            score_cell_order(instance, CellScore::kSumProb, 4));
}

TEST(ScoreCellOrder, TopKValidatesK) {
  const Instance instance = Instance::uniform(2, 3);
  EXPECT_THROW(score_cell_order(instance, CellScore::kTopK, 0),
               std::invalid_argument);
  EXPECT_THROW(score_cell_order(instance, CellScore::kTopK, 3),
               std::invalid_argument);
}

TEST(YellowPages, FindsObviousCellFirst) {
  // One device almost surely in cell 2: any-of search should page it
  // first and stop there most of the time.
  const Instance instance(2, 4, {0.05, 0.05, 0.85, 0.05,  //
                                 0.25, 0.25, 0.25, 0.25});
  const PlanResult plan = plan_yellow_pages(instance, 2);
  EXPECT_EQ(plan.strategy.group(0)[0], 2u);
  EXPECT_LT(plan.expected_paging, 4.0);
}

TEST(YellowPages, CheapestObjective) {
  // Finding one of m is never dearer than finding all m with the same
  // strategy; the planners should preserve that ordering.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = testing::mixed_instance(3, 9, seed + 5);
    const double any = plan_yellow_pages(instance, 3).expected_paging;
    const double all = plan_greedy(instance, 3).expected_paging;
    EXPECT_LE(any, all + 1e-9) << "seed=" << seed;
  }
}

TEST(Signature, MonotoneInK) {
  // Needing more signers can only cost more pages.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance instance = testing::mixed_instance(4, 10, seed + 15);
    double previous = 0.0;
    for (std::size_t k = 1; k <= 4; ++k) {
      const double ep = plan_signature(instance, 3, k).expected_paging;
      EXPECT_GE(ep, previous - 1e-9) << "seed=" << seed << " k=" << k;
      previous = ep;
    }
  }
}

TEST(Signature, KEqualsMMatchesConferencePlanner) {
  const Instance instance = testing::mixed_instance(3, 9, 23);
  const PlanResult via_signature = plan_signature(instance, 3, 3);
  const PlanResult via_greedy = plan_greedy(instance, 3);
  // Same order (kTopK with k=m is kSumProb), same DP, same objective
  // (Pr[>=m of m] = Pr[all m]).
  EXPECT_NEAR(via_signature.expected_paging, via_greedy.expected_paging,
              1e-10);
}

TEST(Signature, ValidatesK) {
  const Instance instance = Instance::uniform(3, 5);
  EXPECT_THROW(plan_signature(instance, 2, 0), std::invalid_argument);
  EXPECT_THROW(plan_signature(instance, 2, 4), std::invalid_argument);
}

TEST(Signature, CloseToExactOnSmallInstances) {
  // No approximation guarantee is claimed for k < m (open problem in the
  // paper), but on small instances the planner should stay within a
  // modest factor of the exact optimum.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance instance = testing::random_instance(3, 7, seed + 60, 0.7);
    for (std::size_t k = 1; k <= 3; ++k) {
      const double planned =
          plan_signature(instance, 2, k).expected_paging;
      const double optimal =
          solve_exact_d2(instance, Objective::k_of_m(k)).expected_paging;
      EXPECT_GE(planned, optimal - 1e-9);
      EXPECT_LE(planned, 2.0 * optimal) << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(YellowPagesHardFamily, ConstructionIsValid) {
  EXPECT_THROW(yellow_pages_hard_instance(3), std::invalid_argument);
  const Instance instance = yellow_pages_hard_instance(6);
  EXPECT_EQ(instance.num_devices(), 6u);
  EXPECT_EQ(instance.num_cells(), 5u);
  EXPECT_DOUBLE_EQ(instance.prob(0, 0), 1.0);
  // Decoy sums exceed cell 0's sum, so the sum order pages decoys first.
  EXPECT_GT(instance.cell_weight(1), instance.cell_weight(0));
}

TEST(YellowPagesHardFamily, MaxScoreIsOptimalSumScoreIsNot) {
  const Instance instance = yellow_pages_hard_instance(8);
  const double max_score =
      plan_yellow_pages(instance, 2, CellScore::kMaxProb).expected_paging;
  const double sum_score =
      plan_yellow_pages(instance, 2, CellScore::kSumProb).expected_paging;
  EXPECT_NEAR(max_score, 1.0, 1e-9);  // page the certain cell, stop
  EXPECT_GT(sum_score, 1.5);
}

TEST(YellowPagesHardFamily, SumScoreRatioGrowsWithM) {
  // The paper's "no constant factor" claim: the ratio increases along the
  // family (logarithmically for d = 2).
  double previous = 1.0;
  for (const std::size_t m : {6u, 12u, 24u, 48u}) {
    const Instance instance = yellow_pages_hard_instance(m);
    const double sum_score =
        plan_yellow_pages(instance, 2, CellScore::kSumProb).expected_paging;
    const double optimal =
        plan_yellow_pages(instance, 2, CellScore::kMaxProb).expected_paging;
    const double ratio = sum_score / optimal;
    EXPECT_GT(ratio, previous) << "m=" << m;
    previous = ratio;
  }
  EXPECT_GT(previous, 2.5);  // already past any small constant at m = 48
}

TEST(Bandwidth, PlanRespectsCap) {
  const Instance instance = testing::mixed_instance(2, 12, 31);
  const PlanResult plan = plan_bandwidth_limited(instance, 5, 4);
  for (const std::size_t size : plan.group_sizes) {
    EXPECT_LE(size, 4u);
  }
}

TEST(Bandwidth, InfeasibleCapThrows) {
  const Instance instance = Instance::uniform(1, 10);
  EXPECT_THROW(plan_bandwidth_limited(instance, 3, 3), std::invalid_argument);
  EXPECT_THROW(plan_bandwidth_limited(instance, 3, 0), std::invalid_argument);
}

TEST(Bandwidth, LooserCapNeverHurts) {
  const Instance instance = testing::mixed_instance(2, 12, 32);
  double previous = 1e300;
  for (const std::size_t cap : {3u, 4u, 6u, 12u}) {
    const double ep =
        plan_bandwidth_limited(instance, 4, cap).expected_paging;
    EXPECT_LE(ep, previous + 1e-12) << "cap=" << cap;
    previous = ep;
  }
}

TEST(Bandwidth, MinRoundsForBandwidth) {
  EXPECT_EQ(min_rounds_for_bandwidth(10, 3), 4u);
  EXPECT_EQ(min_rounds_for_bandwidth(9, 3), 3u);
  EXPECT_EQ(min_rounds_for_bandwidth(1, 5), 1u);
  EXPECT_THROW(min_rounds_for_bandwidth(0, 3), std::invalid_argument);
  EXPECT_THROW(min_rounds_for_bandwidth(3, 0), std::invalid_argument);
}

TEST(Bandwidth, ChunkedBlanketCoversInOrder) {
  const Strategy s = chunked_blanket(7, 3);
  EXPECT_EQ(s.num_rounds(), 3u);
  EXPECT_EQ(s.group(0), (std::vector<CellId>{0, 1, 2}));
  EXPECT_EQ(s.group(2), (std::vector<CellId>{6}));
}

TEST(Bandwidth, PlannedBeatsChunkedBlanket) {
  const Instance instance = testing::mixed_instance(2, 12, 33);
  const std::size_t cap = 4;
  const std::size_t rounds = min_rounds_for_bandwidth(12, cap);
  const double planned =
      plan_bandwidth_limited(instance, rounds, cap).expected_paging;
  const double blanket =
      expected_paging(instance, chunked_blanket(12, cap));
  EXPECT_LE(planned, blanket + 1e-9);
}

}  // namespace
}  // namespace confcall::core
