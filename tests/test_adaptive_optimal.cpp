// Tests for the exact optimal adaptive policy solver.
#include "core/adaptive_optimal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/adaptive.h"
#include "core/evaluator.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "core/single_user.h"
#include "test_util.h"

namespace confcall::core {
namespace {

TEST(OptimalAdaptive, ValidatesArguments) {
  const Instance instance = Instance::uniform(2, 4);
  EXPECT_THROW(solve_optimal_adaptive(instance, 0), std::invalid_argument);
  EXPECT_THROW(solve_optimal_adaptive(instance, 5), std::invalid_argument);
  EXPECT_THROW(solve_optimal_adaptive(Instance::uniform(2, 21), 2),
               std::invalid_argument);
  EXPECT_THROW(solve_optimal_adaptive(Instance::uniform(9, 4), 2),
               std::invalid_argument);
  EXPECT_THROW(
      solve_optimal_adaptive(instance, 2, Objective::all_of(), /*limit=*/10),
      std::invalid_argument);
}

TEST(OptimalAdaptive, SingleDeviceMatchesObliviousOptimum) {
  // For m = 1 the adaptive observation carries no extra information, so
  // the oblivious DP optimum is also the adaptive optimum (on instances
  // with full support, where the page-all-cells convention coincides).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance instance = testing::random_instance(1, 8, seed + 2, 1.5);
    for (const std::size_t d : {2u, 3u, 8u}) {
      const auto row = instance.row(0);
      const double oblivious = optimal_single_user_paging(
          prob::ProbabilityVector(row.begin(), row.end()), d);
      const auto adaptive = solve_optimal_adaptive(instance, d);
      EXPECT_NEAR(adaptive.expected_paging, oblivious, 1e-9)
          << "seed=" << seed << " d=" << d;
    }
  }
}

TEST(OptimalAdaptive, NeverWorseThanHeuristicAdaptive) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = testing::random_instance(2, 7, seed + 9, 0.6);
    for (const std::size_t d : {2u, 3u}) {
      const double heuristic =
          adaptive_expected_paging_exact(instance, d);
      const auto optimal = solve_optimal_adaptive(instance, d);
      EXPECT_LE(optimal.expected_paging, heuristic + 1e-9)
          << "seed=" << seed << " d=" << d;
    }
  }
}

TEST(OptimalAdaptive, NeverWorseThanObliviousOptimum) {
  // Any oblivious strategy IS an adaptive policy (that ignores its
  // observations), so the adaptive optimum lower-bounds the oblivious one.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = testing::random_instance(3, 7, seed + 17, 0.8);
    for (const std::size_t d : {2u, 3u}) {
      const double oblivious =
          solve_branch_and_bound(instance, d).expected_paging;
      const auto adaptive = solve_optimal_adaptive(instance, d);
      EXPECT_LE(adaptive.expected_paging, oblivious + 1e-9)
          << "seed=" << seed << " d=" << d;
    }
  }
}

TEST(OptimalAdaptive, TwoRoundAdaptiveEqualsObliviousD2) {
  // The paper notes any d = 2 adaptive strategy is oblivious (the round-1
  // action is chosen before any observation, and round 2 is forced on
  // full-support instances).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance instance = testing::random_instance(2, 7, seed + 25, 2.0);
    const double oblivious = solve_exact_d2(instance).expected_paging;
    const auto adaptive = solve_optimal_adaptive(instance, 2);
    EXPECT_NEAR(adaptive.expected_paging, oblivious, 1e-9)
        << "seed=" << seed;
  }
}

TEST(OptimalAdaptive, PinnedDevicesCostTheirSupport) {
  const Instance pinned(2, 5, {0, 0, 1, 0, 0,  //
                               0, 0, 1, 0, 0});
  const auto result = solve_optimal_adaptive(pinned, 2);
  EXPECT_NEAR(result.expected_paging, 1.0, 1e-12);
}

TEST(OptimalAdaptive, SupportPruningBeatsObliviousBlanket) {
  // With zero-probability cells, an adaptive policy never pages them —
  // even at d = 1 its cost is the support size, below the oblivious c.
  const Instance instance(1, 6, {0.5, 0.5, 0.0, 0.0, 0.0, 0.0});
  const auto result = solve_optimal_adaptive(instance, 1);
  EXPECT_NEAR(result.expected_paging, 2.0, 1e-12);
}

TEST(OptimalAdaptive, KOfMCheaperThanAllOf) {
  const Instance instance = testing::mixed_instance(3, 7, 31);
  const auto all = solve_optimal_adaptive(instance, 3);
  const auto two = solve_optimal_adaptive(instance, 3, Objective::k_of_m(2));
  const auto one = solve_optimal_adaptive(instance, 3, Objective::any_of());
  EXPECT_LE(one.expected_paging, two.expected_paging + 1e-9);
  EXPECT_LE(two.expected_paging, all.expected_paging + 1e-9);
}

TEST(OptimalAdaptive, MoreRoundsNeverHurt) {
  const Instance instance = testing::random_instance(2, 8, 41, 0.5);
  double previous = 1e300;
  for (const std::size_t d : {1u, 2u, 3u, 4u}) {
    const auto result = solve_optimal_adaptive(instance, d);
    EXPECT_LE(result.expected_paging, previous + 1e-9) << "d=" << d;
    previous = result.expected_paging;
  }
}

TEST(OptimalAdaptive, FirstActionMatchesObliviousOptimumAtDTwo) {
  // d = 2 adaptive == oblivious: the first action must be an optimal
  // first-round subset.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Instance instance = testing::random_instance(2, 7, seed + 51, 1.2);
    auto first = optimal_adaptive_first_action(instance, 2);
    auto oblivious = solve_exact_d2(instance).strategy.group(0);
    std::sort(oblivious.begin(), oblivious.end());
    // Equal EP is what matters (ties possible): evaluate both splits.
    std::vector<CellId> rest;
    for (CellId j = 0; j < 7; ++j) {
      if (std::find(first.begin(), first.end(), j) == first.end()) {
        rest.push_back(j);
      }
    }
    const Strategy via_first = Strategy::from_groups({first, rest}, 7);
    EXPECT_NEAR(expected_paging(instance, via_first),
                solve_exact_d2(instance).expected_paging, 1e-9)
        << "seed=" << seed;
  }
}

TEST(OptimalAdaptive, FirstActionIsSupportAtDOne) {
  const Instance instance(1, 5, {0.5, 0.5, 0.0, 0.0, 0.0});
  const auto first = optimal_adaptive_first_action(instance, 1);
  EXPECT_EQ(first, (std::vector<CellId>{0, 1}));
}

TEST(OptimalAdaptive, FirstActionValidates) {
  EXPECT_THROW(
      optimal_adaptive_first_action(Instance::uniform(2, 4), 0),
      std::invalid_argument);
}

TEST(OptimalAdaptive, ReportsStateCount) {
  const Instance instance = testing::random_instance(2, 6, 43, 1.0);
  const auto result = solve_optimal_adaptive(instance, 3);
  EXPECT_GT(result.states_evaluated, 0u);
}

}  // namespace
}  // namespace confcall::core
