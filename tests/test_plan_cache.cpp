// Tests for the per-area plan cache (cellular/service.h) and the batched
// parallel simulator (cellular/simulator.h, run_simulation_batch).
//
// The cache's contract is transparency: because the key is a content
// signature of everything the planner reads, a hit returns exactly the
// strategy a fresh plan would produce, so observable results must be
// identical with the cache on or off — only planning cost differs. The
// batch runner's contract is thread-count invariance via RNG substreams.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cellular/faults.h"
#include "cellular/service.h"
#include "cellular/simulator.h"
#include "prob/rng.h"

namespace confcall::cellular {
namespace {

bool stats_equal(const prob::RunningStats& a, const prob::RunningStats& b) {
  return a.count() == b.count() && a.mean() == b.mean() &&
         a.variance() == b.variance() && a.min() == b.min() &&
         a.max() == b.max();
}

void expect_same_observables(const SimReport& a, const SimReport& b) {
  EXPECT_EQ(a.calls_served, b.calls_served);
  EXPECT_EQ(a.reports_sent, b.reports_sent);
  EXPECT_EQ(a.cells_paged_total, b.cells_paged_total);
  EXPECT_EQ(a.fallback_pages, b.fallback_pages);
  EXPECT_EQ(a.reports_lost, b.reports_lost);
  EXPECT_EQ(a.outage_pages, b.outage_pages);
  EXPECT_EQ(a.dropped_rounds, b.dropped_rounds);
  EXPECT_EQ(a.retries_total, b.retries_total);
  EXPECT_EQ(a.calls_degraded, b.calls_degraded);
  EXPECT_EQ(a.calls_abandoned, b.calls_abandoned);
  EXPECT_TRUE(stats_equal(a.pages_per_call, b.pages_per_call));
  EXPECT_TRUE(stats_equal(a.rounds_per_call, b.rounds_per_call));
}

SimConfig small_config() {
  SimConfig config;
  config.grid_rows = 6;
  config.grid_cols = 6;
  config.la_tile_rows = 3;
  config.la_tile_cols = 3;
  config.num_users = 24;
  config.call_rate = 0.5;
  config.steps = 300;
  config.warmup_steps = 30;
  config.seed = 99;
  return config;
}

TEST(PlanCache, SimReportIdenticalWithCacheOnAndOff) {
  SimConfig on = small_config();
  on.enable_plan_cache = true;
  SimConfig off = small_config();
  off.enable_plan_cache = false;

  const SimReport with_cache = run_simulation(on);
  const SimReport without_cache = run_simulation(off);
  expect_same_observables(with_cache, without_cache);

  EXPECT_GT(with_cache.plan_cache_hits, 0u);
  EXPECT_GT(with_cache.plan_cache_misses, 0u);
  EXPECT_EQ(without_cache.plan_cache_hits, 0u);
  EXPECT_EQ(without_cache.plan_cache_misses, 0u);
}

TEST(PlanCache, TransparentUnderFaultsToo) {
  SimConfig on = small_config();
  on.faults.cell_outage_rate = 0.05;
  on.faults.outage_duration = 10;
  on.faults.report_loss_rate = 0.1;
  on.faults.seed = 0xabc;
  SimConfig off = on;
  off.enable_plan_cache = false;
  expect_same_observables(run_simulation(on), run_simulation(off));
}

TEST(PlanCache, SteadyProfileWorkloadHitsOverNinetyPercent) {
  SimConfig config = small_config();
  config.profile_kind = ProfileKind::kStationary;
  config.steps = 1000;
  const SimReport report = run_simulation(config);
  EXPECT_GE(report.plan_cache_hit_rate(), 0.90)
      << report.plan_cache_hits << " hits / " << report.plan_cache_misses
      << " misses";
}

// Direct service-level test of the fault-invalidation path: taking a cell
// of the area down must change the plan signature (forcing a replan), and
// the outage expiring must restore the original signature (hitting the
// still-resident entry).
TEST(PlanCache, OutageInvalidatesAndRecoveryRestores) {
  const GridTopology grid(2, 2, true, Neighborhood::kVonNeumann);
  const LocationAreas areas = LocationAreas::tiles(grid, 2, 2);
  const MarkovMobility mobility(grid, 0.5);
  LocationService::Config config;
  config.profile_kind = ProfileKind::kStationary;
  config.enable_plan_cache = true;
  LocationService service(grid, areas, mobility, config, {0, 1, 2, 3});

  FaultConfig fault_config;
  fault_config.cell_outage_rate = 1.0;  // begin_step() darkens a cell
  fault_config.outage_duration = 3;
  fault_config.seed = 5;
  FaultPlan faults(fault_config, grid.num_cells());
  service.attach_faults(&faults);

  prob::Rng rng(1);
  const UserId users[] = {0, 1};
  const CellId cells[] = {0, 1};

  (void)service.locate(users, cells, rng);  // cold miss
  (void)service.locate(users, cells, rng);  // hit: nothing changed
  EXPECT_EQ(service.plan_cache_stats().misses, 1u);
  EXPECT_EQ(service.plan_cache_stats().hits, 1u);

  faults.begin_step();  // a cell goes dark
  ASSERT_GT(faults.cells_out(), 0u);
  (void)service.locate(users, cells, rng);  // outage state: must replan
  EXPECT_EQ(service.plan_cache_stats().misses, 2u);

  // Let every outage expire (rate 1.0 keeps starting new ones, so step a
  // detached copy of the clock instead: detach, then the all-up signature
  // must match the original cached entry again).
  service.attach_faults(nullptr);
  (void)service.locate(users, cells, rng);
  EXPECT_EQ(service.plan_cache_stats().misses, 2u);
  EXPECT_EQ(service.plan_cache_stats().hits, 2u);
}

TEST(PlanCache, BlanketPolicyBypassesTheCache) {
  SimConfig config = small_config();
  config.paging_policy = PagingPolicy::kBlanketArea;
  const SimReport report = run_simulation(config);
  EXPECT_EQ(report.plan_cache_hits + report.plan_cache_misses, 0u);
}

TEST(PlanCache, ChurningProfilesStayCorrect) {
  // kLastSeen advances the prediction horizon every tick, so signatures
  // churn; the bounded cache must keep returning correct (= uncached)
  // results while evicting.
  SimConfig on = small_config();
  on.profile_kind = ProfileKind::kLastSeen;
  SimConfig off = on;
  off.enable_plan_cache = false;
  expect_same_observables(run_simulation(on), run_simulation(off));
}

TEST(SimBatch, BitIdenticalAcrossThreadCounts) {
  const SimConfig base = small_config();
  const SimBatchReport one = run_simulation_batch(base, 5, 1);
  const SimBatchReport two = run_simulation_batch(base, 5, 2);
  const SimBatchReport eight = run_simulation_batch(base, 5, 8);

  ASSERT_EQ(one.runs.size(), 5u);
  for (std::size_t r = 0; r < 5; ++r) {
    expect_same_observables(one.runs[r], two.runs[r]);
    expect_same_observables(one.runs[r], eight.runs[r]);
  }
  expect_same_observables(one.aggregate, two.aggregate);
  expect_same_observables(one.aggregate, eight.aggregate);
  EXPECT_EQ(one.aggregate.plan_cache_hits, eight.aggregate.plan_cache_hits);
}

TEST(SimBatch, ReplicationsAreIndependentButDeterministic) {
  const SimConfig base = small_config();
  const SimBatchReport batch = run_simulation_batch(base, 3, 2);
  EXPECT_EQ(batch.replications, 3u);
  // Substream reseeding: replications must not be copies of each other.
  EXPECT_FALSE(stats_equal(batch.runs[0].pages_per_call,
                           batch.runs[1].pages_per_call));
  // The aggregate is the in-order merge of the runs.
  SimReport manual;
  for (const SimReport& run : batch.runs) manual.merge(run);
  expect_same_observables(manual, batch.aggregate);
}

TEST(SimBatch, RejectsZeroReplications) {
  EXPECT_THROW(run_simulation_batch(small_config(), 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace confcall::cellular
