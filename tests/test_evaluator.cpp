// Tests for expected-paging evaluation: Lemma 2.1 against the definitional
// sum, Monte-Carlo execution, exact rationals, and the paper's worked
// examples.
#include "core/evaluator.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <tuple>

#include "core/bounds.h"
#include "core/greedy.h"
#include "prob/rational.h"
#include "prob/stats.h"
#include "test_util.h"

namespace confcall::core {
namespace {

using prob::Rational;

TEST(Evaluator, BlanketPagesAllCells) {
  const Instance instance = Instance::uniform(3, 6);
  const Strategy blanket = Strategy::blanket(6);
  EXPECT_DOUBLE_EQ(expected_paging(instance, blanket), 6.0);
  EXPECT_DOUBLE_EQ(expected_rounds(instance, blanket), 1.0);
}

TEST(Evaluator, UniformHalfSplitSingleUser) {
  // Section 1.1 example: uniform device, c even, d = 2, halves -> 3c/4.
  for (const std::size_t c : {2u, 4u, 10u, 100u}) {
    const Instance instance = Instance::uniform(1, c);
    std::vector<CellId> order(c);
    std::iota(order.begin(), order.end(), CellId{0});
    const std::size_t sizes[] = {c / 2, c / 2};
    const Strategy halves = Strategy::from_order_and_sizes(order, sizes);
    EXPECT_NEAR(expected_paging(instance, halves), 3.0 * c / 4.0, 1e-9)
        << "c=" << c;
  }
}

TEST(Evaluator, TwoDeviceWorkedExample) {
  // Hand-computed: c=3, groups {0},{1},{2}.
  // Device probs p=(0.5,0.3,0.2), q=(0.2,0.3,0.5).
  const Instance instance(2, 3, {0.5, 0.3, 0.2, 0.2, 0.3, 0.5});
  const Strategy s = Strategy::from_groups({{0}, {1}, {2}}, 3);
  // EP = 3 - 1*(0.5*0.2) - 1*(0.8*0.5) = 3 - 0.1 - 0.4 = 2.5.
  EXPECT_NEAR(expected_paging(instance, s), 2.5, 1e-12);
}

TEST(Evaluator, StopByRoundEndsAtOne) {
  const Instance instance = testing::random_instance(3, 7, 1);
  const Strategy s = Strategy::from_groups({{0, 1}, {2, 3, 4}, {5, 6}}, 7);
  const auto by_round = stop_by_round(instance, s, Objective::all_of());
  ASSERT_EQ(by_round.size(), 3u);
  EXPECT_DOUBLE_EQ(by_round.back(), 1.0);
  for (std::size_t r = 1; r < by_round.size(); ++r) {
    EXPECT_GE(by_round[r], by_round[r - 1]);  // monotone
  }
}

TEST(Evaluator, StopAtRoundSumsToOne) {
  const Instance instance = testing::random_instance(2, 6, 2);
  const Strategy s = Strategy::from_groups({{5, 0}, {1, 2}, {3, 4}}, 6);
  for (const Objective obj :
       {Objective::all_of(), Objective::any_of(), Objective::k_of_m(2)}) {
    const auto at_round = stop_at_round(instance, s, obj);
    double total = 0.0;
    for (const double p : at_round) total += p;
    EXPECT_NEAR(total, 1.0, 1e-12) << obj.to_string();
  }
}

TEST(Evaluator, Lemma21MatchesDefinitionalSum) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const std::size_t m = 1 + seed % 4;
    const std::size_t c = 5 + seed % 5;
    const Instance instance = testing::random_instance(m, c, seed + 100);
    // Arbitrary 3-round strategy over shuffled cells.
    prob::Rng rng(seed);
    std::vector<CellId> order(c);
    std::iota(order.begin(), order.end(), CellId{0});
    rng.shuffle(order);
    const std::size_t sizes[] = {1, c / 2, c - 1 - c / 2};
    const Strategy s = Strategy::from_order_and_sizes(order, sizes);
    for (const Objective obj :
         {Objective::all_of(), Objective::any_of(), Objective::k_of_m(m)}) {
      EXPECT_NEAR(expected_paging(instance, s, obj),
                  expected_paging_definitional(instance, s, obj), 1e-10)
          << "seed=" << seed << " " << obj.to_string();
    }
  }
}

TEST(Evaluator, MismatchedStrategyThrows) {
  const Instance instance = Instance::uniform(1, 4);
  const Strategy s = Strategy::blanket(5);
  EXPECT_THROW(expected_paging(instance, s), std::invalid_argument);
}

TEST(Evaluator, ExecuteStrategyStopsWhenAllFound) {
  const Strategy s = Strategy::from_groups({{0, 1}, {2}, {3}}, 4);
  {
    const CellId locations[] = {0, 1};
    const auto outcome =
        execute_strategy(s, locations, Objective::all_of());
    EXPECT_EQ(outcome.cells_paged, 2u);
    EXPECT_EQ(outcome.rounds_used, 1u);
  }
  {
    const CellId locations[] = {0, 3};
    const auto outcome =
        execute_strategy(s, locations, Objective::all_of());
    EXPECT_EQ(outcome.cells_paged, 4u);
    EXPECT_EQ(outcome.rounds_used, 3u);
  }
  {
    const CellId locations[] = {0, 3};
    const auto outcome = execute_strategy(s, locations, Objective::any_of());
    EXPECT_EQ(outcome.cells_paged, 2u);
    EXPECT_EQ(outcome.rounds_used, 1u);
  }
}

TEST(Evaluator, SampleLocationsFollowsDistribution) {
  const Instance instance(1, 3, {0.6, 0.3, 0.1});
  prob::Rng rng(77);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int t = 0; t < n; ++t) {
    ++counts[sample_locations(instance, rng)[0]];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.6, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.1, 0.02);
}

TEST(Evaluator, MonteCarloAgreesWithAnalytic) {
  const Instance instance = testing::mixed_instance(3, 8, 5);
  const Strategy s = Strategy::from_groups({{0, 1, 2}, {3, 4}, {5, 6, 7}}, 8);
  prob::Rng rng(8);
  for (const Objective obj :
       {Objective::all_of(), Objective::any_of(), Objective::k_of_m(2)}) {
    const auto estimate = monte_carlo_paging(instance, s, 40000, rng, obj);
    const double analytic = expected_paging(instance, s, obj);
    EXPECT_NEAR(estimate.mean, analytic,
                5.0 * estimate.std_error + 1e-9)
        << obj.to_string();
  }
}

TEST(Evaluator, MonteCarloRejectsZeroTrials) {
  const Instance instance = Instance::uniform(1, 2);
  prob::Rng rng(1);
  EXPECT_THROW(
      monte_carlo_paging(instance, Strategy::blanket(2), 0, rng),
      std::invalid_argument);
}

TEST(Evaluator, ExpectedRoundsMatchesMonteCarlo) {
  const Instance instance = testing::mixed_instance(2, 8, 44);
  const Strategy s = Strategy::from_groups({{0, 1, 2}, {3, 4}, {5, 6, 7}}, 8);
  prob::Rng rng(45);
  prob::RunningStats rounds;
  for (int t = 0; t < 40000; ++t) {
    const auto locations = sample_locations(instance, rng);
    rounds.add(static_cast<double>(
        execute_strategy(s, locations, Objective::all_of()).rounds_used));
  }
  EXPECT_NEAR(expected_rounds(instance, s), rounds.mean(),
              5.0 * rounds.sem() + 1e-9);
}

TEST(Evaluator, VarianceMatchesMonteCarlo) {
  const Instance instance = testing::mixed_instance(2, 8, 41);
  const Strategy s = Strategy::from_groups({{0, 1, 2}, {3, 4}, {5, 6, 7}}, 8);
  const double variance = paging_variance(instance, s);
  prob::Rng rng(42);
  // Sample variance of executed runs.
  prob::RunningStats stats;
  for (int t = 0; t < 40000; ++t) {
    const auto locations = sample_locations(instance, rng);
    stats.add(static_cast<double>(
        execute_strategy(s, locations, Objective::all_of()).cells_paged));
  }
  EXPECT_NEAR(variance, stats.variance(), 0.05 * variance + 0.05);
}

TEST(Evaluator, VarianceZeroForBlanket) {
  const Instance instance = testing::mixed_instance(2, 6, 43);
  EXPECT_NEAR(paging_variance(instance, Strategy::blanket(6)), 0.0, 1e-12);
}

TEST(Evaluator, VarianceConsistentWithMoments) {
  // Hand-checkable: c=2, single device p=(0.5,0.5), groups {0},{1}:
  // P=1 w.p. 0.5, P=2 w.p. 0.5 -> Var = 0.25.
  const Instance instance(1, 2, {0.5, 0.5});
  const Strategy s = Strategy::from_groups({{0}, {1}}, 2);
  EXPECT_NEAR(paging_variance(instance, s), 0.25, 1e-12);
}

TEST(Evaluator, ExactRationalHardInstanceValues) {
  // Section 4.3: optimal pages paper-cells {2..6} (0-based {1..5}) first:
  // EP = 317/49; heuristic pages {1..5} (0-based {0..4}): EP = 320/49.
  const RationalInstance instance = hard_instance_8cells_exact();
  const Strategy optimal =
      Strategy::from_groups({{1, 2, 3, 4, 5}, {0, 6, 7}}, 8);
  const Strategy heuristic =
      Strategy::from_groups({{0, 1, 2, 3, 4}, {5, 6, 7}}, 8);
  EXPECT_EQ(expected_paging_exact(instance, optimal), Rational(317, 49));
  EXPECT_EQ(expected_paging_exact(instance, heuristic), Rational(320, 49));
}

TEST(Evaluator, ExactMatchesDoubleEvaluator) {
  const RationalInstance exact(
      2, 4,
      {Rational(1, 2), Rational(1, 4), Rational(1, 8), Rational(1, 8),
       Rational(1, 10), Rational(2, 10), Rational(3, 10), Rational(4, 10)});
  const Strategy s = Strategy::from_groups({{0, 3}, {1}, {2}}, 4);
  const double via_double =
      expected_paging(exact.to_double_instance(), s);
  EXPECT_NEAR(expected_paging_exact(exact, s).to_double(), via_double, 1e-12);
}

TEST(Evaluator, ExpectedRoundsWithinBounds) {
  const Instance instance = testing::random_instance(2, 9, 3);
  const Strategy s = Strategy::from_groups({{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}, 9);
  const double rounds = expected_rounds(instance, s);
  EXPECT_GE(rounds, 1.0);
  EXPECT_LE(rounds, 3.0);
}

/// Property sweep: Lemma 2.1 equals the definitional expectation and
/// Monte Carlo across instance shapes.
class EvaluatorSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(EvaluatorSweep, AnalyticDefinitionalAndSimulationAgree) {
  const auto [m, c] = GetParam();
  const Instance instance = testing::mixed_instance(m, c, 31 * m + c);
  // Split into min(3, c) rounds of near-equal size.
  const std::size_t d = std::min<std::size_t>(3, c);
  std::vector<CellId> order(c);
  std::iota(order.begin(), order.end(), CellId{0});
  std::vector<std::size_t> sizes(d, c / d);
  sizes.back() += c % d;
  const Strategy s = Strategy::from_order_and_sizes(order, sizes);

  const double analytic = expected_paging(instance, s);
  EXPECT_NEAR(analytic, expected_paging_definitional(instance, s), 1e-10);
  prob::Rng rng(m * 1000 + c);
  const auto estimate = monte_carlo_paging(instance, s, 20000, rng);
  EXPECT_NEAR(estimate.mean, analytic, 5.0 * estimate.std_error + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EvaluatorSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(2, 5, 9, 16)));

// ---- SoA vs scalar bit-identity -------------------------------------
//
// The production stop_by_round / expected_paging run on the instance's
// column-major mirror with structure-of-arrays Kahan lanes; the
// *_scalar twins keep the historical vector<prob::KahanSum> sweep. The
// lanes replay each device's compensated-add sequence in the same
// order, so the contract is BIT-identity, not epsilon-closeness.

std::uint64_t bits_of(double x) { return std::bit_cast<std::uint64_t>(x); }

TEST(EvaluatorSoA, StopByRoundBitIdenticalToScalar) {
  constexpr std::pair<std::size_t, std::size_t> kShapes[] = {
      {1, 4}, {3, 9}, {5, 16}, {8, 36}};
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const auto& [m, c] : kShapes) {
      const Instance instance =
          confcall::testing::mixed_instance(m, c, seed);
      for (const std::size_t d : {std::size_t{1}, std::size_t{3}}) {
        if (d > c) continue;
        const Strategy strategy = plan_greedy(instance, d).strategy;
        for (const Objective& objective :
             {Objective::all_of(), Objective::any_of(),
              Objective::k_of_m((m + 1) / 2)}) {
          const std::vector<double> soa =
              stop_by_round(instance, strategy, objective);
          const std::vector<double> scalar =
              stop_by_round_scalar(instance, strategy, objective);
          ASSERT_EQ(soa.size(), scalar.size());
          for (std::size_t r = 0; r < soa.size(); ++r) {
            EXPECT_EQ(bits_of(soa[r]), bits_of(scalar[r]))
                << "m=" << m << " c=" << c << " d=" << d << " r=" << r;
          }
          EXPECT_EQ(
              bits_of(expected_paging(instance, strategy, objective)),
              bits_of(
                  expected_paging_scalar(instance, strategy, objective)))
              << "m=" << m << " c=" << c << " d=" << d;
        }
      }
    }
  }
}

TEST(EvaluatorSoA, GoldenSeedValuesStable) {
  // Frozen EP values from the scalar evaluator on fixed seeds. A change
  // here means the evaluator's arithmetic changed — which the SoA
  // refactor explicitly must not do.
  const Instance instance = confcall::testing::random_instance(3, 9, 42);
  const Strategy strategy = plan_greedy(instance, 3).strategy;
  const double ep = expected_paging(instance, strategy);
  EXPECT_EQ(bits_of(ep), bits_of(expected_paging_scalar(instance, strategy)));
  // Cross-check against the definitional sum: the SoA path still
  // computes the true Lemma 2.1 value, not merely its twin's output.
  EXPECT_NEAR(ep, expected_paging_definitional(instance, strategy), 1e-10);
}

}  // namespace
}  // namespace confcall::core
