// Unit and property tests for prob::Rational.
#include "prob/rational.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "prob/rng.h"

namespace confcall::prob {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_TRUE(zero.is_integer());
  EXPECT_EQ(zero.to_string(), "0");
}

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num().to_int64(), 3);
  EXPECT_EQ(r.den().to_int64(), 4);
}

TEST(Rational, NegativeDenominatorMovesSign) {
  const Rational r(3, -4);
  EXPECT_EQ(r.num().to_int64(), -3);
  EXPECT_EQ(r.den().to_int64(), 4);
  EXPECT_EQ(r.signum(), -1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
}

TEST(Rational, ToStringForms) {
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(1, 3).to_string(), "1/3");
  EXPECT_EQ(Rational(-2, 6).to_string(), "-1/3");
}

TEST(Rational, ArithmeticExact) {
  EXPECT_EQ(Rational(1, 3) + Rational(1, 6), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
  EXPECT_THROW(Rational(0).reciprocal(), std::domain_error);
}

TEST(Rational, Reciprocal) {
  EXPECT_EQ(Rational(2, 3).reciprocal(), Rational(3, 2));
  EXPECT_EQ(Rational(-2).reciprocal(), Rational(-1, 2));
}

TEST(Rational, OrderingCrossMultiplies) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LT(Rational(-1), Rational(1, 1000000));
  EXPECT_EQ(Rational(2, 4) <=> Rational(1, 2), std::strong_ordering::equal);
}

TEST(Rational, AbsAndNegation) {
  EXPECT_EQ((-Rational(1, 2)).to_string(), "-1/2");
  EXPECT_EQ(Rational(-3, 4).abs(), Rational(3, 4));
}

TEST(Rational, PowExact) {
  EXPECT_EQ(Rational::pow(Rational(2, 3), 0), Rational(1));
  EXPECT_EQ(Rational::pow(Rational(2, 3), 3), Rational(8, 27));
  EXPECT_EQ(Rational::pow(Rational(-1, 2), 2), Rational(1, 4));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-7, 2).to_double(), -3.5);
}

TEST(Rational, SumOfUnitFractionsTelescopes) {
  // sum 1/(k(k+1)) = 1 - 1/(n+1), a classic exactness check.
  Rational sum;
  const int n = 50;
  for (int k = 1; k <= n; ++k) {
    sum += Rational(1, static_cast<std::int64_t>(k) * (k + 1));
  }
  EXPECT_EQ(sum, Rational(n, n + 1));
}

TEST(Rational, FieldAxiomsRandomized) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    const Rational a(rng.next_in(-50, 50), rng.next_in(1, 20));
    const Rational b(rng.next_in(-50, 50), rng.next_in(1, 20));
    const Rational c(rng.next_in(-50, 50), rng.next_in(1, 20));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + (-a), Rational(0));
    if (!b.is_zero()) EXPECT_EQ(a / b * b, a);
  }
}

TEST(Rational, ImplicitConversionsReadNaturally) {
  const Rational half(1, 2);
  EXPECT_EQ(half + 1, Rational(3, 2));
  EXPECT_EQ(half * 4, Rational(2));
}

}  // namespace
}  // namespace confcall::prob
