// Tests for the polymorphic Planner interface.
#include "core/planner.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/evaluator.h"
#include "core/greedy.h"
#include "test_util.h"

namespace confcall::core {
namespace {

TEST(Planner, BlanketIgnoresBudget) {
  const Instance instance = testing::mixed_instance(2, 6, 1);
  const BlanketPlanner planner;
  const Strategy s = planner.plan(instance, 4);
  EXPECT_EQ(s.num_rounds(), 1u);
  EXPECT_EQ(s.group(0).size(), 6u);
}

TEST(Planner, GreedyMatchesFreeFunction) {
  const Instance instance = testing::mixed_instance(3, 8, 2);
  const GreedyPlanner planner;
  EXPECT_EQ(planner.plan(instance, 3), plan_greedy(instance, 3).strategy);
}

TEST(Planner, BandwidthRespectsCap) {
  const Instance instance = testing::mixed_instance(2, 10, 3);
  const BandwidthLimitedPlanner planner(3);
  const Strategy s = planner.plan(instance, 4);
  for (const auto& group : s.groups()) {
    EXPECT_LE(group.size(), 3u);
  }
  EXPECT_THROW(BandwidthLimitedPlanner(0), std::invalid_argument);
  EXPECT_NE(planner.name().find("3"), std::string::npos);
}

TEST(Planner, ExactPlannersAgree) {
  const Instance instance = testing::random_instance(2, 7, 4, 0.6);
  const ExactPlanner bnb;
  const Strategy via_bnb = bnb.plan(instance, 2);
  const double optimal = expected_paging(instance, via_bnb);
  // Typed planner only helps with duplicate columns; on uniform:
  const Instance uniform = Instance::uniform(2, 7);
  const TypedExactPlanner typed;
  const ExactPlanner exact;
  EXPECT_NEAR(expected_paging(uniform, typed.plan(uniform, 2)),
              expected_paging(uniform, exact.plan(uniform, 2)), 1e-10);
  // And bnb's result is no worse than greedy.
  EXPECT_LE(optimal,
            plan_greedy(instance, 2).expected_paging + 1e-10);
}

TEST(Planner, CompareRunsAllAndSkipsInfeasible) {
  const Instance instance = testing::mixed_instance(2, 8, 5);
  const BlanketPlanner blanket;
  const GreedyPlanner greedy;
  const BandwidthLimitedPlanner infeasible(1);  // 3 rounds x 1 < 8 cells
  const Planner* planners[] = {&blanket, &greedy, &infeasible};
  const auto rows = compare_planners(instance, 3, planners);
  ASSERT_EQ(rows.size(), 2u);  // infeasible cap skipped
  EXPECT_EQ(rows[0].name, "blanket");
  EXPECT_EQ(rows[1].name, "greedy-fig1");
  EXPECT_LE(rows[1].expected_paging, rows[0].expected_paging + 1e-12);
  EXPECT_GE(rows[1].expected_rounds, rows[0].expected_rounds - 1e-12);
}

TEST(Planner, CompareRejectsNull) {
  const Instance instance = Instance::uniform(1, 3);
  const Planner* planners[] = {nullptr};
  EXPECT_THROW(compare_planners(instance, 2, planners),
               std::invalid_argument);
}

TEST(Planner, DefaultPlannersPlanUniformInstances) {
  const Instance instance = Instance::uniform(2, 10);
  const auto planners = default_planners();
  std::vector<const Planner*> raw;
  for (const auto& p : planners) raw.push_back(p.get());
  const auto rows = compare_planners(instance, 2, raw);
  ASSERT_EQ(rows.size(), 4u);
  // Typed exact <= greedy <= blanket on a uniform instance.
  EXPECT_LE(rows[2].expected_paging, rows[1].expected_paging + 1e-9);
  EXPECT_LE(rows[1].expected_paging, rows[0].expected_paging + 1e-9);
  // The resilient chain serves this instance via its typed-exact tier,
  // so its cost ties the standalone typed-exact row.
  EXPECT_NEAR(rows[3].expected_paging, rows[2].expected_paging, 1e-9);
}

TEST(Planner, AlternativeObjectivesFlowThrough) {
  const Instance instance = testing::mixed_instance(3, 9, 6);
  const GreedyPlanner any(Objective::any_of());
  const Strategy s = any.plan(instance, 3);
  // Evaluated under any-of, the planned strategy beats the blanket's
  // any-of cost scaled... at minimum it is feasible and cheap:
  EXPECT_LT(expected_paging(instance, s, Objective::any_of()), 9.0);
}

}  // namespace
}  // namespace confcall::core
