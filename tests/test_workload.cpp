// Tests for the named simulation scenarios.
#include "cellular/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace confcall::cellular {
namespace {

TEST(Workload, AllScenariosAreDistinctAndNamed) {
  const auto scenarios = all_scenarios();
  ASSERT_EQ(scenarios.size(), 5u);
  std::set<std::string> names;
  for (const auto& scenario : scenarios) {
    EXPECT_FALSE(scenario.name.empty());
    EXPECT_FALSE(scenario.description.empty());
    names.insert(scenario.name);
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(Workload, ScenariosRunToCompletion) {
  for (auto scenario : all_scenarios(7)) {
    // Shrink for test speed; shape parameters stay as configured.
    scenario.config.steps = 150;
    scenario.config.warmup_steps = 30;
    const SimReport report = run_simulation(scenario.config);
    EXPECT_GT(report.calls_served, 0u) << scenario.name;
    EXPECT_GT(report.cells_paged_total, 0u) << scenario.name;
  }
}

TEST(Workload, SeedPropagates) {
  const auto a = campus_scenario(1);
  const auto b = campus_scenario(2);
  EXPECT_EQ(a.config.seed, 1u);
  EXPECT_EQ(b.config.seed, 2u);
}

TEST(Workload, UrbanCarriesMoreTotalTrafficThanCampus) {
  // Dense urban has ~2.5x the call rate and triple the users; over the
  // same horizon its total paging bill must dominate the campus's (even
  // though its smaller LAs make each individual call cheaper).
  auto urban = dense_urban_scenario(3);
  auto campus = campus_scenario(3);
  urban.config.steps = 400;
  urban.config.warmup_steps = 50;
  campus.config.steps = 400;
  campus.config.warmup_steps = 50;
  const SimReport urban_report = run_simulation(urban.config);
  const SimReport campus_report = run_simulation(campus.config);
  EXPECT_GT(urban_report.calls_served, campus_report.calls_served);
  EXPECT_GT(urban_report.cells_paged_total,
            campus_report.cells_paged_total);
}

TEST(Workload, DegradedUrbanActuallyDegrades) {
  // The degraded preset must exercise every fault class and the bounded
  // retry policy: faults are injected, observed, and some calls end up
  // on the degraded path.
  auto degraded = degraded_urban_scenario(6);
  degraded.config.steps = 400;
  degraded.config.warmup_steps = 50;
  const SimReport report = run_simulation(degraded.config);
  EXPECT_GT(report.faults_injected.outages_started, 0u);
  EXPECT_GT(report.faults_injected.reports_dropped, 0u);
  EXPECT_GT(report.faults_injected.rounds_dropped, 0u);
  EXPECT_GT(report.reports_lost, 0u);
  EXPECT_GT(report.calls_degraded, 0u);
  // And the same run without faults is strictly cheaper per call.
  auto clean = degraded;
  clean.config.faults = FaultConfig{};
  const SimReport clean_report = run_simulation(clean.config);
  EXPECT_LT(clean_report.pages_per_call.mean(),
            report.pages_per_call.mean());
}

TEST(Workload, HighwayReportsDominatePaging) {
  // Fast movement over LA boundaries with sparse calls: uplink reports
  // outnumber pages (the other end of the paper's tradeoff).
  auto highway = highway_scenario(4);
  highway.config.steps = 800;
  highway.config.warmup_steps = 50;
  const SimReport report = run_simulation(highway.config);
  EXPECT_GT(report.reports_sent, report.cells_paged_total);
}

}  // namespace
}  // namespace confcall::cellular
