// Tests for the exact solvers: agreement among the three methods, node
// accounting, guards, and the exact-rational d = 2 optimum.
#include "core/exact.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/bounds.h"
#include "core/evaluator.h"
#include "prob/rational.h"
#include "test_util.h"

namespace confcall::core {
namespace {

using prob::Rational;

TEST(ExactD2, TrivialTwoCells) {
  const Instance instance(1, 2, {0.9, 0.1});
  const ExactResult result = solve_exact_d2(instance);
  // Page the 0.9 cell first: EP = 2 - 1*0.9 = 1.1.
  EXPECT_NEAR(result.expected_paging, 1.1, 1e-12);
  EXPECT_EQ(result.strategy.group(0), (std::vector<CellId>{0}));
}

TEST(ExactD2, MatchesGeneralEnumeration) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = testing::random_instance(2, 8, seed + 7, 0.7);
    const ExactResult d2 = solve_exact_d2(instance);
    const ExactResult general = solve_exact(instance, 2);
    EXPECT_NEAR(d2.expected_paging, general.expected_paging, 1e-10)
        << "seed=" << seed;
  }
}

TEST(ExactD2, ReturnedStrategyEvaluatesToReportedValue) {
  const Instance instance = testing::mixed_instance(3, 9, 1);
  const ExactResult result = solve_exact_d2(instance);
  EXPECT_NEAR(expected_paging(instance, result.strategy),
              result.expected_paging, 1e-10);
}

TEST(ExactD2, NodeCountIsAllProperSubsets) {
  const Instance instance = Instance::uniform(2, 6);
  const ExactResult result = solve_exact_d2(instance);
  EXPECT_EQ(result.nodes_explored, (1u << 6) - 2u);
}

TEST(ExactD2, GuardsAgainstHugeInstances) {
  const Instance instance = Instance::uniform(1, 30);
  EXPECT_THROW(solve_exact_d2(instance), std::invalid_argument);
  EXPECT_THROW(solve_exact_d2(Instance::uniform(1, 1)),
               std::invalid_argument);
}

TEST(ExactD2, AlternativeObjectives) {
  const Instance instance = testing::mixed_instance(3, 7, 2);
  for (const Objective obj :
       {Objective::any_of(), Objective::k_of_m(2)}) {
    const ExactResult result = solve_exact_d2(instance, obj);
    const ExactResult general = solve_exact(instance, 2, obj);
    EXPECT_NEAR(result.expected_paging, general.expected_paging, 1e-10)
        << obj.to_string();
    EXPECT_NEAR(expected_paging(instance, result.strategy, obj),
                result.expected_paging, 1e-10);
  }
}

TEST(ExactGeneral, DOneIsBlanket) {
  const Instance instance = testing::random_instance(2, 5, 3);
  const ExactResult result = solve_exact(instance, 1);
  EXPECT_DOUBLE_EQ(result.expected_paging, 5.0);
  EXPECT_EQ(result.strategy.num_rounds(), 1u);
}

TEST(ExactGeneral, ValidatesArguments) {
  const Instance instance = Instance::uniform(1, 4);
  EXPECT_THROW(solve_exact(instance, 0), std::invalid_argument);
  EXPECT_THROW(solve_exact(instance, 5), std::invalid_argument);
  // Node limit guard.
  EXPECT_THROW(solve_exact(Instance::uniform(1, 20), 20, Objective::all_of(),
                           /*node_limit=*/1000),
               std::invalid_argument);
}

TEST(ExactGeneral, OptimalUsesAllRounds) {
  // Strategies of length exactly d dominate shorter ones (Section 2).
  const Instance instance = testing::mixed_instance(2, 7, 4);
  for (const std::size_t d : {2u, 3u}) {
    const ExactResult result = solve_exact(instance, d);
    EXPECT_EQ(result.strategy.num_rounds(), d);
    for (const auto& group : result.strategy.groups()) {
      EXPECT_FALSE(group.empty());
    }
  }
}

TEST(BranchAndBound, MatchesExhaustiveSearch) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const std::size_t m = 1 + seed % 3;
    const Instance instance =
        testing::random_instance(m, 8, seed + 21, 0.5);
    for (const std::size_t d : {2u, 3u}) {
      const ExactResult plain = solve_exact(instance, d);
      const ExactResult bnb = solve_branch_and_bound(instance, d);
      EXPECT_NEAR(plain.expected_paging, bnb.expected_paging, 1e-9)
          << "seed=" << seed << " d=" << d;
    }
  }
}

TEST(BranchAndBound, PrunesOnSkewedInstances) {
  const Instance instance = testing::random_instance(2, 10, 9, 0.15);
  const ExactResult plain = solve_exact(instance, 3);
  const ExactResult bnb = solve_branch_and_bound(instance, 3);
  EXPECT_NEAR(plain.expected_paging, bnb.expected_paging, 1e-9);
  EXPECT_LT(bnb.nodes_explored, plain.nodes_explored);
}

TEST(ExactRationalD2, HardInstanceIsExactly317Over49) {
  const ExactRationalD2Result result =
      solve_exact_d2_exact(hard_instance_8cells_exact());
  EXPECT_EQ(result.expected_paging, Rational(317, 49));
  EXPECT_EQ(result.first_round, (std::vector<CellId>{1, 2, 3, 4, 5}));
}

TEST(ExactRationalD2, AgreesWithDoubleSolver) {
  const RationalInstance exact(
      2, 6,
      {Rational(1, 6), Rational(1, 6), Rational(1, 6), Rational(1, 6),
       Rational(1, 6), Rational(1, 6),  //
       Rational(1, 2), Rational(1, 10), Rational(1, 10), Rational(1, 10),
       Rational(1, 10), Rational(1, 10)});
  const auto rational = solve_exact_d2_exact(exact);
  const auto floating = solve_exact_d2(exact.to_double_instance());
  EXPECT_NEAR(rational.expected_paging.to_double(),
              floating.expected_paging, 1e-10);
}

TEST(ExactRationalD2, GuardsSize) {
  std::vector<Rational> flat(30, Rational(1, 30));
  const RationalInstance instance(1, 30, std::move(flat));
  EXPECT_THROW(solve_exact_d2_exact(instance), std::invalid_argument);
}

}  // namespace
}  // namespace confcall::core
