// Tests for the Section 5.1 Quadratic Assignment bridge.
#include "reduction/qap.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/evaluator.h"
#include "core/bounds.h"
#include "core/exact.h"
#include "test_util.h"

namespace confcall::reduction {
namespace {

using core::Instance;

QapInstance tiny_qap() {
  // A rewards adjacency of positions 0-1; B rewards co-placing items 1-2.
  return QapInstance({{0, 5, 0}, {5, 0, 1}, {0, 1, 0}},
                     {{0, 1, 2}, {1, 0, 9}, {2, 9, 0}});
}

TEST(Qap, ValidatesMatrices) {
  EXPECT_THROW(QapInstance({{0, 1}}, {{0, 1}, {1, 0}}),
               std::invalid_argument);
  EXPECT_THROW(QapInstance({{0, 1}, {2, 0}}, {{0, 1}, {1, 0}}),
               std::invalid_argument);  // asymmetric A
  EXPECT_THROW(QapInstance({}, {}), std::invalid_argument);
}

TEST(Qap, ObjectiveValidatesPermutation) {
  const QapInstance qap = tiny_qap();
  EXPECT_THROW((void)qap.objective({0, 1}), std::invalid_argument);
  EXPECT_THROW((void)qap.objective({0, 1, 1}), std::invalid_argument);
  EXPECT_THROW((void)qap.objective({0, 1, 5}), std::invalid_argument);
}

TEST(Qap, ExactSolverFindsKnownOptimum) {
  // Best: put the heavy B pair (1,2) on the heavy A pair (0,1).
  const QapResult result = solve_qap_exact(tiny_qap());
  // Objective = 2*5*9 + 2*1*B[pi(1)][pi(2)] etc.; verify against direct
  // enumeration by re-evaluating.
  EXPECT_DOUBLE_EQ(result.objective,
                   tiny_qap().objective(result.permutation));
  const bool heavy_pair_on_heavy_edge =
      (result.permutation[0] == 1 && result.permutation[1] == 2) ||
      (result.permutation[0] == 2 && result.permutation[1] == 1);
  EXPECT_TRUE(heavy_pair_on_heavy_edge);
}

TEST(Qap, ExactSolverGuardsSize) {
  const std::size_t n = 10;
  std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
  EXPECT_THROW(solve_qap_exact(QapInstance(zero, zero)),
               std::invalid_argument);
}

TEST(Qap, LocalSearchMatchesExactOnSmallInstances) {
  prob::Rng rng(5);
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = 5;
    std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
    std::vector<std::vector<double>> b(n, std::vector<double>(n, 0.0));
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t l = k + 1; l < n; ++l) {
        a[k][l] = a[l][k] = rng.next_double();
        b[k][l] = b[l][k] = rng.next_double();
      }
    }
    const QapInstance qap(a, b);
    const QapResult exact = solve_qap_exact(qap);
    const QapResult local = solve_qap_local_search(qap, 10, rng);
    EXPECT_NEAR(local.objective, exact.objective, 1e-9) << "iter=" << iter;
  }
}

TEST(Qap, WeightMatrixCountsPrefixRounds) {
  // sizes {2, 1, 1}: prefixes 2, 3, 4.
  const auto w = qap_weight_matrix({2, 1, 1});
  // Positions 0,1 are in L_1 (next group size 1) and L_2 (next size 1).
  EXPECT_DOUBLE_EQ(w[0][1], 2.0);
  EXPECT_DOUBLE_EQ(w[0][0], 2.0);
  // Position 2 joins at L_2 only.
  EXPECT_DOUBLE_EQ(w[0][2], 1.0);
  EXPECT_DOUBLE_EQ(w[2][2], 1.0);
  // Position 3 never inside a proper prefix.
  EXPECT_DOUBLE_EQ(w[0][3], 0.0);
  EXPECT_DOUBLE_EQ(w[3][3], 0.0);
}

TEST(Qap, ProfileMatrixIsSymmetricRankCombination) {
  const Instance instance(2, 3, {0.5, 0.3, 0.2, 0.1, 0.6, 0.3});
  const auto b = qap_profile_matrix(instance);
  for (std::size_t x = 0; x < 3; ++x) {
    for (std::size_t y = 0; y < 3; ++y) {
      EXPECT_DOUBLE_EQ(b[x][y], b[y][x]);
    }
  }
  EXPECT_DOUBLE_EQ(b[0][1], (0.5 * 0.6 + 0.3 * 0.1) / 2.0);
  EXPECT_THROW(qap_profile_matrix(Instance::uniform(3, 3)),
               std::invalid_argument);
}

TEST(Qap, BridgeObjectiveEqualsLemma21) {
  // For any strategy: c - QAP objective (with that strategy's sizes and
  // order-as-permutation) equals Lemma 2.1's expected paging.
  const Instance instance = testing::random_instance(2, 6, 9, 0.7);
  const std::vector<std::size_t> sizes = {2, 3, 1};
  const std::vector<std::size_t> permutation = {4, 0, 2, 5, 1, 3};
  const QapInstance qap(qap_weight_matrix(sizes),
                        qap_profile_matrix(instance));
  std::vector<core::CellId> order(permutation.begin(), permutation.end());
  const core::Strategy strategy =
      core::Strategy::from_order_and_sizes(order, sizes);
  EXPECT_NEAR(6.0 - qap.objective(permutation),
              core::expected_paging(instance, strategy), 1e-12);
}

TEST(Qap, BridgeMatchesExactSolver) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance instance = testing::random_instance(2, 6, seed + 3, 0.6);
    for (const std::size_t d : {2u, 3u}) {
      const QapBridgeResult bridge = conference_call_via_qap(instance, d);
      const core::ExactResult exact = core::solve_exact(instance, d);
      EXPECT_NEAR(bridge.expected_paging, exact.expected_paging, 1e-9)
          << "seed=" << seed << " d=" << d;
      EXPECT_GT(bridge.qap_instances_solved, 0u);
    }
  }
}

TEST(Qap, BridgeHardInstance) {
  // Only 7 size vectors for d = 2 at c = 8; bridge must find 317/49.
  const QapBridgeResult bridge =
      conference_call_via_qap(core::hard_instance_8cells(), 2);
  EXPECT_NEAR(bridge.expected_paging, 317.0 / 49.0, 1e-9);
  EXPECT_EQ(bridge.qap_instances_solved, 7u);
}

TEST(Qap, BridgeValidatesArguments) {
  const Instance three = Instance::uniform(3, 4);
  EXPECT_THROW(conference_call_via_qap(three, 2), std::invalid_argument);
  const Instance two = Instance::uniform(2, 4);
  EXPECT_THROW(conference_call_via_qap(two, 0), std::invalid_argument);
  EXPECT_THROW(conference_call_via_qap(two, 5), std::invalid_argument);
}

}  // namespace
}  // namespace confcall::reduction
