// Unit tests for the durable-state file format (support/state_io.h):
// writer/reader round trips, bounds-checked decoding, bundle framing,
// atomic file replacement, and the load-side corruption taxonomy — a
// truncation sweep over every prefix length, single-bit flips across the
// whole file, version skew and magic damage must all come back as typed
// cold-start statuses, never a throw or a silent acceptance.
#include "support/state_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

namespace confcall::support {
namespace {

// Unique-per-test temp path in the build directory; removed on teardown.
class StateIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "state_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
  }
  void TearDown() override { (void)std::remove(path_.c_str()); }

  static std::string read_raw(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void write_raw(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static StateBundle sample_bundle() {
    StateWriter alpha;
    alpha.put_u8(7);
    alpha.put_u32(0xdeadbeef);
    alpha.put_u64(std::numeric_limits<std::uint64_t>::max());
    alpha.put_f64(0.1);
    alpha.put_bytes("hello");
    StateWriter beta;
    beta.put_f64(-0.0);
    beta.put_bytes("");
    StateBundle bundle;
    bundle.add("alpha", 1, std::move(alpha).take());
    bundle.add("beta", 3, std::move(beta).take());
    return bundle;
  }

  std::string path_;
};

TEST_F(StateIoTest, WriterReaderRoundTripIsBitExact) {
  StateWriter writer;
  writer.put_u8(0xff);
  writer.put_u32(0x01020304);
  writer.put_u64(0x0102030405060708ull);
  writer.put_f64(3.14159265358979);
  writer.put_f64(-0.0);
  writer.put_f64(std::numeric_limits<double>::infinity());
  writer.put_bytes("payload with \0 byte inside" /* stops at NUL */);
  writer.put_bytes(std::string_view("\x00\x01\x02", 3));

  StateReader reader(writer.bytes());
  EXPECT_EQ(reader.get_u8(), 0xff);
  EXPECT_EQ(reader.get_u32(), 0x01020304u);
  EXPECT_EQ(reader.get_u64(), 0x0102030405060708ull);
  EXPECT_DOUBLE_EQ(reader.get_f64(), 3.14159265358979);
  const double negzero = reader.get_f64();
  EXPECT_EQ(negzero, 0.0);
  EXPECT_TRUE(std::signbit(negzero));  // bit-exact, not value-equal
  EXPECT_EQ(reader.get_f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(reader.get_bytes(), "payload with ");
  EXPECT_EQ(reader.get_bytes(), std::string_view("\x00\x01\x02", 3));
  EXPECT_TRUE(reader.at_end());
}

TEST_F(StateIoTest, ReaderThrowsOnEveryShortRead) {
  StateWriter writer;
  writer.put_u32(42);
  const std::string bytes = std::move(writer).take();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    StateReader reader(std::string_view(bytes).substr(0, len));
    EXPECT_THROW((void)reader.get_u32(), StateFormatError) << "len=" << len;
  }
  StateReader ok(bytes);
  EXPECT_EQ(ok.get_u32(), 42u);
}

TEST_F(StateIoTest, ReaderRejectsByteStringPastEnd) {
  StateWriter writer;
  writer.put_u64(1000);  // length prefix promising bytes that are not there
  StateReader reader(writer.bytes());
  EXPECT_THROW((void)reader.get_bytes(), StateFormatError);
}

TEST_F(StateIoTest, GetCountCapsAllocationSizes) {
  StateWriter writer;
  writer.put_u64(std::numeric_limits<std::uint64_t>::max());
  StateReader reader(writer.bytes());
  EXPECT_THROW((void)reader.get_count(1 << 20), StateFormatError);
  StateWriter small;
  small.put_u64(17);
  StateReader ok(small.bytes());
  EXPECT_EQ(ok.get_count(17), 17u);
}

TEST_F(StateIoTest, BundleRoundTripPreservesSectionsAndOrder) {
  const StateBundle bundle = sample_bundle();
  const std::string payload = bundle.serialize();
  const StateBundle back = StateBundle::deserialize(payload);
  ASSERT_EQ(back.sections().size(), 2u);
  EXPECT_EQ(back.sections()[0].name, "alpha");
  EXPECT_EQ(back.sections()[1].name, "beta");
  EXPECT_EQ(back.sections()[1].version, 3u);
  const StateSection* alpha = back.find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->payload, bundle.sections()[0].payload);
  EXPECT_EQ(back.find("gamma"), nullptr);
}

TEST_F(StateIoTest, BundleRejectsTrailingBytes) {
  std::string payload = sample_bundle().serialize();
  payload.push_back('\x00');
  EXPECT_THROW((void)StateBundle::deserialize(payload), StateFormatError);
}

TEST_F(StateIoTest, SerializationIsDeterministic) {
  EXPECT_EQ(sample_bundle().serialize(), sample_bundle().serialize());
}

TEST_F(StateIoTest, AtomicWriteReplacesWithoutTornIntermediate) {
  ASSERT_TRUE(write_file_atomic(path_, "first version"));
  EXPECT_EQ(read_raw(path_), "first version");
  ASSERT_TRUE(write_file_atomic(path_, "second"));
  EXPECT_EQ(read_raw(path_), "second");
  // No temp droppings left behind.
  EXPECT_EQ(read_raw(path_ + ".tmp." + std::to_string(::getpid())), "");
}

TEST_F(StateIoTest, AtomicWriteReportsUnwritableDirectory) {
  std::string error;
  EXPECT_FALSE(write_file_atomic("/nonexistent-dir/x/y.bin", "x", &error));
  EXPECT_NE(error.find("open"), std::string::npos);
}

TEST_F(StateIoTest, SaveLoadRoundTrip) {
  const std::size_t bytes = save_state_file(path_, sample_bundle());
  EXPECT_EQ(bytes, read_raw(path_).size());
  const StateLoadResult result = load_state_file(path_);
  ASSERT_TRUE(result.ok()) << result.message;
  ASSERT_EQ(result.bundle.sections().size(), 2u);
  const StateSection* beta = result.bundle.find("beta");
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(beta->version, 3u);
  StateReader reader(beta->payload);
  const double negzero = reader.get_f64();
  EXPECT_TRUE(std::signbit(negzero));
  EXPECT_EQ(reader.get_bytes(), "");
  EXPECT_TRUE(reader.at_end());
}

TEST_F(StateIoTest, MissingFileIsAcountedColdStartNotAnError) {
  const StateLoadResult result = load_state_file("no_such_state_file.bin");
  EXPECT_EQ(result.status, StateLoadStatus::kMissing);
  EXPECT_STREQ(state_load_status_name(result.status), "missing");
}

TEST_F(StateIoTest, TruncationSweepEveryPrefixIsRejected) {
  (void)save_state_file(path_, sample_bundle());
  const std::string whole = read_raw(path_);
  ASSERT_GT(whole.size(), 28u);
  // Every strict prefix must load as a typed failure — never ok, never an
  // uncaught exception. This is the torn-write model: rename makes torn
  // files unreachable in practice, but the loader must still hold.
  for (std::size_t len = 0; len < whole.size(); ++len) {
    write_raw(path_, whole.substr(0, len));
    const StateLoadResult result = load_state_file(path_);
    EXPECT_FALSE(result.ok()) << "prefix length " << len;
    EXPECT_TRUE(result.status == StateLoadStatus::kTruncated ||
                result.status == StateLoadStatus::kBadChecksum)
        << "prefix length " << len << " -> "
        << state_load_status_name(result.status);
  }
}

TEST_F(StateIoTest, BitFlipSweepIsDetected) {
  (void)save_state_file(path_, sample_bundle());
  const std::string whole = read_raw(path_);
  // Flip one bit per byte position across the file; every variant must be
  // rejected (magic/version/length damage hits the header checks, payload
  // damage hits the checksum, checksum-field damage mismatches payload).
  for (std::size_t pos = 0; pos < whole.size(); ++pos) {
    std::string bent = whole;
    bent[pos] = static_cast<char>(bent[pos] ^ (1 << (pos % 8)));
    write_raw(path_, bent);
    const StateLoadResult result = load_state_file(path_);
    EXPECT_FALSE(result.ok()) << "flipped bit at byte " << pos;
  }
  // And the pristine bytes still load.
  write_raw(path_, whole);
  EXPECT_TRUE(load_state_file(path_).ok());
}

TEST_F(StateIoTest, VersionSkewIsTypedNotFatal) {
  (void)save_state_file(path_, sample_bundle());
  std::string bent = read_raw(path_);
  bent[8] = static_cast<char>(kStateFileVersion + 1);  // u32 LE low byte
  write_raw(path_, bent);
  const StateLoadResult result = load_state_file(path_);
  EXPECT_EQ(result.status, StateLoadStatus::kBadVersion);
  EXPECT_NE(result.message.find("version"), std::string::npos);
}

TEST_F(StateIoTest, ForeignMagicIsRejected) {
  write_raw(path_, std::string("NOTCONFC") + std::string(40, 'x'));
  EXPECT_EQ(load_state_file(path_).status, StateLoadStatus::kBadMagic);
}

TEST_F(StateIoTest, GarbagePayloadUnderValidChecksumIsBadFormat) {
  // Forge a file whose header is internally consistent but whose payload
  // is not valid bundle framing: the checksum passes, deserialize must
  // catch it as kBadFormat.
  const std::string payload(16, '\xff');  // section count is huge
  std::string file;
  file.append("CONFCKPT");
  for (int i = 0; i < 4; ++i) {
    file.push_back(static_cast<char>((kStateFileVersion >> (8 * i)) & 0xff));
  }
  for (int i = 0; i < 8; ++i) {
    file.push_back(static_cast<char>((payload.size() >> (8 * i)) & 0xff));
  }
  const std::uint64_t sum = state_checksum(payload);
  for (int i = 0; i < 8; ++i) {
    file.push_back(static_cast<char>((sum >> (8 * i)) & 0xff));
  }
  file.append(payload);
  write_raw(path_, file);
  const StateLoadResult result = load_state_file(path_);
  EXPECT_EQ(result.status, StateLoadStatus::kBadFormat);
}

}  // namespace
}  // namespace confcall::support
