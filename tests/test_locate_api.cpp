// The POST /locate wire format (cellular/locate_api.h): request grammar
// acceptance/rejection and the response object shape. The HTTP path on
// top of it is exercised end to end by bench_e16 and the CI serve
// smoke; here we pin the contract itself.
#include "cellular/locate_api.h"

#include <gtest/gtest.h>

#include "support/json.h"

namespace confcall::cellular {
namespace {

constexpr std::size_t kNumUsers = 96;

TEST(LocateApi, EmptyBodyIsOneSyntheticCall) {
  for (const char* body : {"", "   ", "\r\n \t"}) {
    const LocateApiRequest request = parse_locate_body(body, kNumUsers);
    EXPECT_FALSE(request.batch);
    ASSERT_EQ(request.calls.size(), 1u);
    EXPECT_TRUE(request.calls[0].users.empty());
  }
}

TEST(LocateApi, EmptyObjectIsOneSyntheticCall) {
  const LocateApiRequest request = parse_locate_body("{}", kNumUsers);
  EXPECT_FALSE(request.batch);
  ASSERT_EQ(request.calls.size(), 1u);
  EXPECT_TRUE(request.calls[0].users.empty());
}

TEST(LocateApi, ExplicitUsersParsed) {
  const LocateApiRequest request =
      parse_locate_body("{\"users\": [3, 17, 41]}", kNumUsers);
  EXPECT_FALSE(request.batch);
  ASSERT_EQ(request.calls.size(), 1u);
  EXPECT_EQ(request.calls[0].users,
            (std::vector<UserId>{3u, 17u, 41u}));
}

TEST(LocateApi, AreaMemberRoutesTheCall) {
  const LocateApiRequest request = parse_locate_body(
      "{\"users\": [3], \"area\": 5}", kNumUsers, /*num_areas=*/8);
  ASSERT_EQ(request.calls.size(), 1u);
  EXPECT_EQ(request.calls[0].area, 5u);
  EXPECT_EQ(request.calls[0].users, (std::vector<UserId>{3u}));
}

TEST(LocateApi, AreaDefaultsToZero) {
  const LocateApiRequest request =
      parse_locate_body("{\"users\": [3]}", kNumUsers, /*num_areas=*/8);
  ASSERT_EQ(request.calls.size(), 1u);
  EXPECT_EQ(request.calls[0].area, 0u);
}

TEST(LocateApi, AreaRejectedOutsideTheFleet) {
  // Single-service deployments (the num_areas = 1 default) accept only
  // area 0; everything else is a 400, not a silent clamp.
  EXPECT_NO_THROW((void)parse_locate_body("{\"area\": 0}", kNumUsers));
  const char* bad[] = {
      "{\"area\": 1}",          // out of range at the default num_areas
      "{\"area\": -1}",         // negative
      "{\"area\": 1.5}",        // non-integer
      "{\"area\": \"2\"}",      // non-numeric
  };
  for (const char* body : bad) {
    EXPECT_THROW((void)parse_locate_body(body, kNumUsers),
                 std::invalid_argument)
        << "accepted: " << body;
  }
  EXPECT_THROW((void)parse_locate_body("{\"area\": 8}", kNumUsers,
                                       /*num_areas=*/8),
               std::invalid_argument);
}

TEST(LocateApi, ArrayIsABatch) {
  const LocateApiRequest request = parse_locate_body(
      "[{\"users\": [1, 2]}, {}, {\"users\": [95]}]", kNumUsers);
  EXPECT_TRUE(request.batch);
  ASSERT_EQ(request.calls.size(), 3u);
  EXPECT_EQ(request.calls[0].users, (std::vector<UserId>{1u, 2u}));
  EXPECT_TRUE(request.calls[1].users.empty());
  EXPECT_EQ(request.calls[2].users, (std::vector<UserId>{95u}));
}

TEST(LocateApi, EmptyArrayIsAnEmptyBatch) {
  const LocateApiRequest request = parse_locate_body("[]", kNumUsers);
  EXPECT_TRUE(request.batch);
  EXPECT_TRUE(request.calls.empty());
}

TEST(LocateApi, RejectsMalformedBodies) {
  const char* bad[] = {
      "{\"users\": [1,",            // malformed JSON
      "42",                         // not object or array
      "\"users\"",                  // not object or array
      "{\"cells\": [1]}",           // unknown member
      "{\"users\": 3}",             // users not an array
      "{\"users\": [\"a\"]}",       // non-numeric id
      "{\"users\": [1.5]}",         // non-integer id
      "{\"users\": [-1]}",          // negative id
      "{\"users\": [96]}",          // out of range (num_users = 96)
      "{\"users\": [5, 5]}",        // duplicate within a call
      "[{\"users\": [1]}, 7]",      // non-object batch element
  };
  for (const char* body : bad) {
    EXPECT_THROW((void)parse_locate_body(body, kNumUsers),
                 std::invalid_argument)
        << "accepted: " << body;
  }
}

TEST(LocateApi, DuplicatesAllowedAcrossBatchElements) {
  const LocateApiRequest request = parse_locate_body(
      "[{\"users\": [1, 2]}, {\"users\": [1, 2]}]", kNumUsers);
  EXPECT_EQ(request.calls.size(), 2u);
}

TEST(LocateApi, ShedOutcomeJson) {
  std::string out;
  append_outcome_json(out, /*admitted=*/false, /*participants=*/4,
                      nullptr);
  const support::JsonValue parsed = support::JsonValue::parse(out);
  EXPECT_FALSE(parsed.find("admitted")->as_bool());
  EXPECT_DOUBLE_EQ(parsed.find("participants")->as_number(), 4.0);
  EXPECT_EQ(parsed.find("cells_paged"), nullptr);
}

TEST(LocateApi, AdmittedOutcomeJsonCarriesTheContractFields) {
  LocationService::LocateOutcome outcome;
  outcome.cells_paged = 12;
  outcome.rounds_used = 2;
  outcome.retries = 1;
  outcome.abandoned = false;
  outcome.degraded = true;
  outcome.deadline_limited = false;
  std::string out;
  append_outcome_json(out, /*admitted=*/true, /*participants=*/3,
                      &outcome);
  const support::JsonValue parsed = support::JsonValue::parse(out);
  EXPECT_TRUE(parsed.find("admitted")->as_bool());
  EXPECT_DOUBLE_EQ(parsed.find("participants")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(parsed.find("cells_paged")->as_number(), 12.0);
  EXPECT_DOUBLE_EQ(parsed.find("rounds_used")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(parsed.find("retries")->as_number(), 1.0);
  EXPECT_FALSE(parsed.find("abandoned")->as_bool());
  EXPECT_TRUE(parsed.find("degraded")->as_bool());
  EXPECT_FALSE(parsed.find("deadline_limited")->as_bool());
}

}  // namespace
}  // namespace confcall::cellular
