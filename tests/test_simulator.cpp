// End-to-end tests for the location-management simulator.
#include "cellular/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace confcall::cellular {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.grid_rows = 6;
  config.grid_cols = 6;
  config.la_tile_rows = 3;
  config.la_tile_cols = 3;
  config.num_users = 12;
  config.steps = 300;
  config.warmup_steps = 50;
  config.call_rate = 0.4;
  config.group_min = 2;
  config.group_max = 3;
  config.seed = 42;
  return config;
}

TEST(Simulator, RunsAndServesCalls) {
  const SimReport report = run_simulation(small_config());
  EXPECT_EQ(report.steps, 350u);
  EXPECT_GT(report.calls_served, 50u);
  EXPECT_GT(report.cells_paged_total, 0u);
  EXPECT_EQ(report.pages_per_call.count(), report.calls_served);
}

TEST(Simulator, DeterministicForFixedSeed) {
  const SimReport a = run_simulation(small_config());
  const SimReport b = run_simulation(small_config());
  EXPECT_EQ(a.calls_served, b.calls_served);
  EXPECT_EQ(a.cells_paged_total, b.cells_paged_total);
  EXPECT_EQ(a.reports_sent, b.reports_sent);
}

TEST(Simulator, DifferentSeedsDiffer) {
  SimConfig config = small_config();
  config.seed = 43;
  const SimReport a = run_simulation(small_config());
  const SimReport b = run_simulation(config);
  EXPECT_NE(a.cells_paged_total, b.cells_paged_total);
}

TEST(Simulator, ValidatesConfig) {
  SimConfig config = small_config();
  config.num_users = 0;
  EXPECT_THROW(run_simulation(config), std::invalid_argument);
  config = small_config();
  config.max_paging_rounds = 0;
  EXPECT_THROW(run_simulation(config), std::invalid_argument);
}

TEST(Simulator, GreedyPagesNoMoreThanBlanket) {
  // With an up-to-date database (area-crossing reports), multi-round
  // greedy paging must beat paging the whole LA every time.
  SimConfig blanket = small_config();
  blanket.paging_policy = PagingPolicy::kBlanketArea;
  SimConfig greedy = small_config();
  greedy.paging_policy = PagingPolicy::kGreedy;
  const SimReport blanket_report = run_simulation(blanket);
  const SimReport greedy_report = run_simulation(greedy);
  EXPECT_EQ(blanket_report.calls_served, greedy_report.calls_served);
  EXPECT_LT(greedy_report.pages_per_call.mean(),
            blanket_report.pages_per_call.mean());
}

TEST(Simulator, MoreRoundsReduceMeanPaging) {
  SimConfig d1 = small_config();
  d1.max_paging_rounds = 1;
  SimConfig d4 = small_config();
  d4.max_paging_rounds = 4;
  const SimReport report1 = run_simulation(d1);
  const SimReport report4 = run_simulation(d4);
  EXPECT_LT(report4.pages_per_call.mean(), report1.pages_per_call.mean());
  EXPECT_GE(report4.rounds_per_call.mean(), report1.rounds_per_call.mean());
}

TEST(Simulator, ReportPolicyTradeoff) {
  // The paper's framing: silence => no uplink reports but huge paging;
  // area-crossing reporting => some reports, far less paging.
  SimConfig silent = small_config();
  silent.report_policy = ReportPolicy::kNever;
  SimConfig crossing = small_config();
  crossing.report_policy = ReportPolicy::kOnAreaCrossing;
  const SimReport silent_report = run_simulation(silent);
  const SimReport crossing_report = run_simulation(crossing);
  EXPECT_EQ(silent_report.reports_sent, 0u);
  EXPECT_GT(crossing_report.reports_sent, 0u);
  EXPECT_GT(silent_report.pages_per_call.mean(),
            crossing_report.pages_per_call.mean());
}

TEST(Simulator, HexAndMooreTopologiesRun) {
  for (const Neighborhood hood :
       {Neighborhood::kMoore, Neighborhood::kHexagonal}) {
    SimConfig config = small_config();
    config.neighborhood = hood;
    config.steps = 150;
    const SimReport report = run_simulation(config);
    EXPECT_GT(report.calls_served, 20u);
    EXPECT_GT(report.cells_paged_total, 0u);
  }
}

TEST(Simulator, TimerAndDistancePoliciesRun) {
  for (const ReportPolicy policy :
       {ReportPolicy::kEveryTSteps, ReportPolicy::kDistanceThreshold}) {
    SimConfig config = small_config();
    config.report_policy = policy;
    config.timer_period = 8;
    config.distance_threshold = 2;
    const SimReport report = run_simulation(config);
    EXPECT_GT(report.calls_served, 20u);
    EXPECT_GT(report.reports_sent, 0u);
  }
}

TEST(Simulator, TimerReportVolumeMatchesPeriod) {
  SimConfig config = small_config();
  config.report_policy = ReportPolicy::kEveryTSteps;
  config.timer_period = 10;
  config.call_rate = 0.0;  // reporting only
  const SimReport report = run_simulation(config);
  const double expected = static_cast<double>(config.num_users) *
                          static_cast<double>(report.steps) / 10.0;
  EXPECT_NEAR(static_cast<double>(report.reports_sent), expected,
              0.05 * expected + config.num_users);
}

TEST(Simulator, TighterDistanceThresholdReportsMore) {
  SimConfig loose = small_config();
  loose.report_policy = ReportPolicy::kDistanceThreshold;
  loose.distance_threshold = 4;
  loose.call_rate = 0.0;
  SimConfig tight = loose;
  tight.distance_threshold = 1;
  const SimReport loose_report = run_simulation(loose);
  const SimReport tight_report = run_simulation(tight);
  EXPECT_GT(tight_report.reports_sent, loose_report.reports_sent);
}

TEST(Simulator, CellCrossingEliminatesFallback) {
  // Reporting every cell keeps the database exact, so the search never
  // needs the whole-grid recovery sweep.
  SimConfig config = small_config();
  config.report_policy = ReportPolicy::kOnCellCrossing;
  const SimReport report = run_simulation(config);
  EXPECT_EQ(report.fallback_pages, 0u);
}

TEST(Simulator, AdaptivePolicyRuns) {
  SimConfig config = small_config();
  config.paging_policy = PagingPolicy::kAdaptive;
  config.steps = 150;
  const SimReport report = run_simulation(config);
  EXPECT_GT(report.calls_served, 20u);
  // Rounds never exceed the delay constraint plus the recovery sweep.
  EXPECT_LE(report.rounds_per_call.max(),
            static_cast<double>(config.max_paging_rounds) + 1.0);
}

TEST(Simulator, ProfileKindsAllWork) {
  for (const ProfileKind kind :
       {ProfileKind::kEmpirical, ProfileKind::kStationary,
        ProfileKind::kLastSeen}) {
    SimConfig config = small_config();
    config.profile_kind = kind;
    config.steps = 120;
    const SimReport report = run_simulation(config);
    EXPECT_GT(report.calls_served, 10u);
  }
}

TEST(Simulator, WirelessCostCombinesWeights) {
  const SimReport report = run_simulation(small_config());
  EXPECT_DOUBLE_EQ(
      report.wireless_cost(2.0, 0.5),
      2.0 * report.reports_sent + 0.5 * report.cells_paged_total);
}

TEST(Simulator, ImperfectDetectionCostsMorePaging) {
  // Section 5's extension: pages go unanswered with probability 1 - q,
  // so misses trigger re-sweeps and the paging bill grows as q falls.
  double previous = 0.0;
  for (const double q : {1.0, 0.8, 0.5}) {
    SimConfig config = small_config();
    config.detection_probability = q;
    const SimReport report = run_simulation(config);
    EXPECT_GE(report.pages_per_call.mean(), previous - 1e-9) << "q=" << q;
    previous = report.pages_per_call.mean();
    if (q < 1.0) {
      EXPECT_GT(report.missed_detections, 0u);
    } else {
      EXPECT_EQ(report.missed_detections, 0u);
    }
  }
}

TEST(Simulator, CollisionLossesCostEvenMore) {
  SimConfig plain = small_config();
  plain.detection_probability = 0.7;
  SimConfig collide = plain;
  collide.collision_losses = true;
  const SimReport plain_report = run_simulation(plain);
  const SimReport collide_report = run_simulation(collide);
  // Collisions can only add misses on average (callees do share cells on
  // a 36-cell grid with 12 users).
  EXPECT_GE(collide_report.missed_detections + 5,
            plain_report.missed_detections);
}

TEST(Simulator, DetectionModelValidation) {
  SimConfig config = small_config();
  config.detection_probability = 0.0;
  EXPECT_THROW(run_simulation(config), std::invalid_argument);
  config.detection_probability = 1.5;
  EXPECT_THROW(run_simulation(config), std::invalid_argument);
  config.detection_probability = 0.5;
  config.paging_policy = PagingPolicy::kAdaptive;
  EXPECT_THROW(run_simulation(config), std::invalid_argument);
}

TEST(Simulator, EveryCalleeEventuallyRegistered) {
  // Even with heavy losses the recovery path terminates and the call is
  // served (force-registration after max sweeps).
  SimConfig config = small_config();
  config.detection_probability = 0.3;
  config.collision_losses = true;
  config.max_recovery_sweeps = 2;
  config.steps = 200;
  const SimReport report = run_simulation(config);
  EXPECT_GT(report.calls_served, 20u);
  EXPECT_GT(report.fallback_pages, 0u);
}

TEST(Simulator, SingleCalleeWorkload) {
  // min = max = 1 reproduces the classical one-device paging workload.
  SimConfig config = small_config();
  config.group_min = 1;
  config.group_max = 1;
  const SimReport report = run_simulation(config);
  EXPECT_GT(report.calls_served, 50u);
  // A single callee in a 9-cell LA: mean paging must stay below 9 plus
  // occasional fallback sweeps.
  EXPECT_LT(report.pages_per_call.mean(), 12.0);
}

}  // namespace
}  // namespace confcall::cellular
