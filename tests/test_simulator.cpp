// End-to-end tests for the location-management simulator.
#include "cellular/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace confcall::cellular {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.grid_rows = 6;
  config.grid_cols = 6;
  config.la_tile_rows = 3;
  config.la_tile_cols = 3;
  config.num_users = 12;
  config.steps = 300;
  config.warmup_steps = 50;
  config.call_rate = 0.4;
  config.group_min = 2;
  config.group_max = 3;
  config.seed = 42;
  return config;
}

TEST(Simulator, RunsAndServesCalls) {
  const SimReport report = run_simulation(small_config());
  EXPECT_EQ(report.steps, 350u);
  EXPECT_GT(report.calls_served, 50u);
  EXPECT_GT(report.cells_paged_total, 0u);
  EXPECT_EQ(report.pages_per_call.count(), report.calls_served);
}

TEST(Simulator, DeterministicForFixedSeed) {
  const SimReport a = run_simulation(small_config());
  const SimReport b = run_simulation(small_config());
  EXPECT_EQ(a.calls_served, b.calls_served);
  EXPECT_EQ(a.cells_paged_total, b.cells_paged_total);
  EXPECT_EQ(a.reports_sent, b.reports_sent);
}

TEST(Simulator, DifferentSeedsDiffer) {
  SimConfig config = small_config();
  config.seed = 43;
  const SimReport a = run_simulation(small_config());
  const SimReport b = run_simulation(config);
  EXPECT_NE(a.cells_paged_total, b.cells_paged_total);
}

TEST(Simulator, ValidatesConfig) {
  SimConfig config = small_config();
  config.num_users = 0;
  EXPECT_THROW(run_simulation(config), std::invalid_argument);
  config = small_config();
  config.max_paging_rounds = 0;
  EXPECT_THROW(run_simulation(config), std::invalid_argument);
}

TEST(Simulator, GreedyPagesNoMoreThanBlanket) {
  // With an up-to-date database (area-crossing reports), multi-round
  // greedy paging must beat paging the whole LA every time.
  SimConfig blanket = small_config();
  blanket.paging_policy = PagingPolicy::kBlanketArea;
  SimConfig greedy = small_config();
  greedy.paging_policy = PagingPolicy::kGreedy;
  const SimReport blanket_report = run_simulation(blanket);
  const SimReport greedy_report = run_simulation(greedy);
  EXPECT_EQ(blanket_report.calls_served, greedy_report.calls_served);
  EXPECT_LT(greedy_report.pages_per_call.mean(),
            blanket_report.pages_per_call.mean());
}

TEST(Simulator, MoreRoundsReduceMeanPaging) {
  SimConfig d1 = small_config();
  d1.max_paging_rounds = 1;
  SimConfig d4 = small_config();
  d4.max_paging_rounds = 4;
  const SimReport report1 = run_simulation(d1);
  const SimReport report4 = run_simulation(d4);
  EXPECT_LT(report4.pages_per_call.mean(), report1.pages_per_call.mean());
  EXPECT_GE(report4.rounds_per_call.mean(), report1.rounds_per_call.mean());
}

TEST(Simulator, ReportPolicyTradeoff) {
  // The paper's framing: silence => no uplink reports but huge paging;
  // area-crossing reporting => some reports, far less paging.
  SimConfig silent = small_config();
  silent.report_policy = ReportPolicy::kNever;
  SimConfig crossing = small_config();
  crossing.report_policy = ReportPolicy::kOnAreaCrossing;
  const SimReport silent_report = run_simulation(silent);
  const SimReport crossing_report = run_simulation(crossing);
  EXPECT_EQ(silent_report.reports_sent, 0u);
  EXPECT_GT(crossing_report.reports_sent, 0u);
  EXPECT_GT(silent_report.pages_per_call.mean(),
            crossing_report.pages_per_call.mean());
}

TEST(Simulator, HexAndMooreTopologiesRun) {
  for (const Neighborhood hood :
       {Neighborhood::kMoore, Neighborhood::kHexagonal}) {
    SimConfig config = small_config();
    config.neighborhood = hood;
    config.steps = 150;
    const SimReport report = run_simulation(config);
    EXPECT_GT(report.calls_served, 20u);
    EXPECT_GT(report.cells_paged_total, 0u);
  }
}

TEST(Simulator, TimerAndDistancePoliciesRun) {
  for (const ReportPolicy policy :
       {ReportPolicy::kEveryTSteps, ReportPolicy::kDistanceThreshold}) {
    SimConfig config = small_config();
    config.report_policy = policy;
    config.timer_period = 8;
    config.distance_threshold = 2;
    const SimReport report = run_simulation(config);
    EXPECT_GT(report.calls_served, 20u);
    EXPECT_GT(report.reports_sent, 0u);
  }
}

TEST(Simulator, TimerReportVolumeMatchesPeriod) {
  SimConfig config = small_config();
  config.report_policy = ReportPolicy::kEveryTSteps;
  config.timer_period = 10;
  config.call_rate = 0.0;  // reporting only
  const SimReport report = run_simulation(config);
  const double expected = static_cast<double>(config.num_users) *
                          static_cast<double>(report.steps) / 10.0;
  EXPECT_NEAR(static_cast<double>(report.reports_sent), expected,
              0.05 * expected + config.num_users);
}

TEST(Simulator, TighterDistanceThresholdReportsMore) {
  SimConfig loose = small_config();
  loose.report_policy = ReportPolicy::kDistanceThreshold;
  loose.distance_threshold = 4;
  loose.call_rate = 0.0;
  SimConfig tight = loose;
  tight.distance_threshold = 1;
  const SimReport loose_report = run_simulation(loose);
  const SimReport tight_report = run_simulation(tight);
  EXPECT_GT(tight_report.reports_sent, loose_report.reports_sent);
}

TEST(Simulator, CellCrossingEliminatesFallback) {
  // Reporting every cell keeps the database exact, so the search never
  // needs the whole-grid recovery sweep.
  SimConfig config = small_config();
  config.report_policy = ReportPolicy::kOnCellCrossing;
  const SimReport report = run_simulation(config);
  EXPECT_EQ(report.fallback_pages, 0u);
}

TEST(Simulator, AdaptivePolicyRuns) {
  SimConfig config = small_config();
  config.paging_policy = PagingPolicy::kAdaptive;
  config.steps = 150;
  const SimReport report = run_simulation(config);
  EXPECT_GT(report.calls_served, 20u);
  // Rounds never exceed the delay constraint plus the recovery sweep.
  EXPECT_LE(report.rounds_per_call.max(),
            static_cast<double>(config.max_paging_rounds) + 1.0);
}

TEST(Simulator, ProfileKindsAllWork) {
  for (const ProfileKind kind :
       {ProfileKind::kEmpirical, ProfileKind::kStationary,
        ProfileKind::kLastSeen}) {
    SimConfig config = small_config();
    config.profile_kind = kind;
    config.steps = 120;
    const SimReport report = run_simulation(config);
    EXPECT_GT(report.calls_served, 10u);
  }
}

TEST(Simulator, WirelessCostCombinesWeights) {
  const SimReport report = run_simulation(small_config());
  EXPECT_DOUBLE_EQ(
      report.wireless_cost(2.0, 0.5),
      2.0 * report.reports_sent + 0.5 * report.cells_paged_total);
}

TEST(Simulator, ImperfectDetectionCostsMorePaging) {
  // Section 5's extension: pages go unanswered with probability 1 - q,
  // so misses trigger re-sweeps and the paging bill grows as q falls.
  double previous = 0.0;
  for (const double q : {1.0, 0.8, 0.5}) {
    SimConfig config = small_config();
    config.detection_probability = q;
    const SimReport report = run_simulation(config);
    EXPECT_GE(report.pages_per_call.mean(), previous - 1e-9) << "q=" << q;
    previous = report.pages_per_call.mean();
    if (q < 1.0) {
      EXPECT_GT(report.missed_detections, 0u);
    } else {
      EXPECT_EQ(report.missed_detections, 0u);
    }
  }
}

TEST(Simulator, CollisionLossesCostEvenMore) {
  SimConfig plain = small_config();
  plain.detection_probability = 0.7;
  SimConfig collide = plain;
  collide.collision_losses = true;
  const SimReport plain_report = run_simulation(plain);
  const SimReport collide_report = run_simulation(collide);
  // Collisions can only add misses on average (callees do share cells on
  // a 36-cell grid with 12 users).
  EXPECT_GE(collide_report.missed_detections + 5,
            plain_report.missed_detections);
}

TEST(Simulator, DetectionModelValidation) {
  SimConfig config = small_config();
  config.detection_probability = 0.0;
  EXPECT_THROW(run_simulation(config), std::invalid_argument);
  config.detection_probability = 1.5;
  EXPECT_THROW(run_simulation(config), std::invalid_argument);
  config.detection_probability = 0.5;
  config.paging_policy = PagingPolicy::kAdaptive;
  EXPECT_THROW(run_simulation(config), std::invalid_argument);
}

TEST(Simulator, EveryCalleeEventuallyRegistered) {
  // Even with heavy losses the recovery path terminates and the call is
  // served (force-registration after max sweeps).
  SimConfig config = small_config();
  config.detection_probability = 0.3;
  config.collision_losses = true;
  config.retry.max_retries = 2;
  config.steps = 200;
  const SimReport report = run_simulation(config);
  EXPECT_GT(report.calls_served, 20u);
  EXPECT_GT(report.fallback_pages, 0u);
}

TEST(Simulator, SeedRegressionPinned) {
  // Byte-for-byte pins captured from the pre-fault-layer seed build.
  // With all fault rates zero and the retry policy at defaults the
  // simulation must not consume a single extra rng draw; any drift here
  // means the fault layer is not inert when disabled.
  const SimReport plain = run_simulation(small_config());
  EXPECT_EQ(plain.calls_served, 113u);
  EXPECT_EQ(plain.reports_sent, 556u);
  EXPECT_EQ(plain.cells_paged_total, 853u);
  EXPECT_EQ(plain.fallback_pages, 0u);
  EXPECT_EQ(plain.missed_detections, 0u);
  EXPECT_EQ(plain.pages_per_call.mean(), 7.5486725663716809);
  EXPECT_EQ(plain.rounds_per_call.mean(), 1.9469026548672574);

  SimConfig lossy = small_config();
  lossy.detection_probability = 0.6;
  lossy.collision_losses = true;
  const SimReport noisy = run_simulation(lossy);
  EXPECT_EQ(noisy.calls_served, 121u);
  EXPECT_EQ(noisy.reports_sent, 558u);
  EXPECT_EQ(noisy.cells_paged_total, 7874u);
  EXPECT_EQ(noisy.fallback_pages, 6264u);
  EXPECT_EQ(noisy.missed_detections, 236u);
  EXPECT_EQ(noisy.pages_per_call.mean(), 65.074380165289256);
  EXPECT_EQ(noisy.rounds_per_call.mean(), 4.2975206611570265);
}

TEST(Simulator, ZeroRetriesAbandonsInsteadOfLooping) {
  // max_retries = 0 with heavy losses: the recovery loop never runs, so
  // any callee missed on the first sweep is force-registered and the
  // call is counted abandoned — previously this was silently folded
  // into the sweep stats.
  SimConfig config = small_config();
  config.detection_probability = 0.3;
  config.collision_losses = true;
  config.retry.max_retries = 0;
  config.steps = 200;
  const SimReport report = run_simulation(config);
  EXPECT_GT(report.calls_served, 20u);
  EXPECT_GT(report.calls_abandoned, 0u);
  EXPECT_GT(report.forced_registrations, 0u);
  EXPECT_GE(report.forced_registrations, report.calls_abandoned);
  EXPECT_EQ(report.retries_total, 0u);
  // Abandoned calls still count as served (the conference proceeds with
  // whoever answered), so abandoned <= served.
  EXPECT_LE(report.calls_abandoned, report.calls_served);
}

TEST(Simulator, ValidationMessagesAreSpecific) {
  const auto message_of = [](SimConfig config) -> std::string {
    try {
      config.validate();
    } catch (const std::invalid_argument& error) {
      return error.what();
    }
    return "";
  };

  SimConfig config = small_config();
  config.num_users = 0;
  EXPECT_NE(message_of(config).find("num_users"), std::string::npos);

  config = small_config();
  config.stay_probability = 1.5;
  EXPECT_NE(message_of(config).find("stay_probability"), std::string::npos);

  config = small_config();
  config.group_min = 5;
  config.group_max = 4;
  EXPECT_NE(message_of(config).find("group_min"), std::string::npos);

  config = small_config();
  config.faults.report_loss_rate = -0.5;
  EXPECT_NE(message_of(config).find("report_loss_rate"), std::string::npos);

  config = small_config();
  config.retry.backoff_base = 9;
  config.retry.backoff_cap = 2;
  EXPECT_NE(message_of(config).find("backoff"), std::string::npos);

  config = small_config();
  config.paging_policy = PagingPolicy::kAdaptive;
  config.faults.cell_outage_rate = 0.1;
  EXPECT_NE(message_of(config).find("adaptive"), std::string::npos);
}

TEST(Simulator, FaultConservationInjectedEqualsObserved) {
  // Every injected fault must surface in exactly one observation-side
  // counter: dropped uplink reports in reports_lost, dropped paging
  // rounds in dropped_rounds. Outages are time-based (counted per
  // outage event, observed per page), so they are asserted as activity
  // rather than equality.
  SimConfig config = small_config();
  config.faults.cell_outage_rate = 0.05;
  config.faults.outage_duration = 30;
  config.faults.report_loss_rate = 0.2;
  config.faults.round_drop_rate = 0.1;
  config.retry.max_retries = 4;
  const SimReport report = run_simulation(config);
  EXPECT_EQ(report.reports_lost, report.faults_injected.reports_dropped);
  EXPECT_EQ(report.dropped_rounds, report.faults_injected.rounds_dropped);
  EXPECT_GT(report.faults_injected.outages_started, 0u);
  EXPECT_GT(report.outage_pages, 0u);
  EXPECT_GT(report.reports_lost, 0u);
  EXPECT_GT(report.dropped_rounds, 0u);
}

TEST(Simulator, BackoffRoundsInflateRoundsPerCall) {
  // Exponential backoff spends rounds between retries; under heavy
  // losses, a policy with backoff must report more rounds per call than
  // the same policy retrying immediately.
  SimConfig immediate = small_config();
  immediate.detection_probability = 0.4;
  immediate.retry.max_retries = 4;
  immediate.retry.backoff_base = 0;
  SimConfig backoff = immediate;
  backoff.retry.backoff_base = 2;
  backoff.retry.backoff_cap = 16;
  const SimReport fast = run_simulation(immediate);
  const SimReport slow = run_simulation(backoff);
  EXPECT_EQ(fast.backoff_rounds, 0u);
  EXPECT_GT(slow.backoff_rounds, 0u);
  EXPECT_GT(slow.rounds_per_call.mean(), fast.rounds_per_call.mean());
}

TEST(Simulator, PageBudgetBoundsRecoveryCost) {
  // A tight per-call page budget must cut recovery sweeps short (budget
  // exhaustions recorded, remaining callees force-registered) and hence
  // strictly bound the worst-case paging bill per call.
  SimConfig unbounded = small_config();
  unbounded.detection_probability = 0.3;
  unbounded.collision_losses = true;
  unbounded.retry.max_retries = 8;
  SimConfig capped = unbounded;
  capped.retry.page_budget = 50;
  const SimReport free_report = run_simulation(unbounded);
  const SimReport capped_report = run_simulation(capped);
  EXPECT_EQ(free_report.budget_exhaustions, 0u);
  EXPECT_GT(capped_report.budget_exhaustions, 0u);
  EXPECT_LE(capped_report.pages_per_call.max(), 50.0 + 36.0);
  EXPECT_LT(capped_report.pages_per_call.max(),
            free_report.pages_per_call.max());
}

TEST(Simulator, SingleCalleeWorkload) {
  // min = max = 1 reproduces the classical one-device paging workload.
  SimConfig config = small_config();
  config.group_min = 1;
  config.group_max = 1;
  const SimReport report = run_simulation(config);
  EXPECT_GT(report.calls_served, 50u);
  // A single callee in a 9-cell LA: mean paging must stay below 9 plus
  // occasional fallback sweeps.
  EXPECT_LT(report.pages_per_call.mean(), 12.0);
}

}  // namespace
}  // namespace confcall::cellular
