// Unit tests for the metrics substrate (support/metrics.h): handle
// semantics (unbound no-ops), registry identity rules, histogram bucket
// arithmetic and quantile edge cases, snapshot merging, and both
// exporters' wire formats.
#include "support/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace confcall::support {
namespace {

// ----------------------------------------------------------- handles

TEST(MetricHandles, UnboundHandlesNoOp) {
  const Counter counter;
  const Gauge gauge;
  const Histogram histogram;
  EXPECT_FALSE(counter.bound());
  EXPECT_FALSE(gauge.bound());
  EXPECT_FALSE(histogram.bound());
  counter.inc();
  counter.inc(41);
  gauge.set(3.5);
  histogram.observe(7.0);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(MetricHandles, CounterAndGaugeReadBack) {
  MetricRegistry registry;
  const Counter counter = registry.counter("calls_total", "calls");
  const Gauge gauge = registry.gauge("tokens", "token fill");
  counter.inc();
  counter.inc(9);
  gauge.set(2.5);
  EXPECT_EQ(counter.value(), 10u);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.set(-1.0);
  EXPECT_EQ(gauge.value(), -1.0);
}

TEST(MetricHandles, CopiedHandlesShareTheCell) {
  MetricRegistry registry;
  const Counter a = registry.counter("shared_total", "help");
  const Counter b = a;
  b.inc(3);
  EXPECT_EQ(a.value(), 3u);
}

// ---------------------------------------------------------- registry

TEST(MetricRegistry, RegistrationIsIdempotent) {
  MetricRegistry registry;
  const Counter a = registry.counter("hits_total", "help");
  const Counter b = registry.counter("hits_total", "help");
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(registry.snapshot().metrics.size(), 1u);
}

TEST(MetricRegistry, LabelsMakeDistinctSeries) {
  MetricRegistry registry;
  const Counter t0 =
      registry.counter("served_total", "help", {{"tier", "0"}});
  const Counter t1 =
      registry.counter("served_total", "help", {{"tier", "1"}});
  t0.inc(5);
  t1.inc(7);
  const RegistrySnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 2u);
  const MetricSnapshot* m0 = snapshot.find("served_total", {{"tier", "0"}});
  const MetricSnapshot* m1 = snapshot.find("served_total", {{"tier", "1"}});
  ASSERT_NE(m0, nullptr);
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(m0->counter_value, 5u);
  EXPECT_EQ(m1->counter_value, 7u);
  EXPECT_EQ(snapshot.find("served_total", {{"tier", "2"}}), nullptr);
}

TEST(MetricRegistry, TypeMismatchThrows) {
  MetricRegistry registry;
  (void)registry.counter("thing", "help");
  EXPECT_THROW((void)registry.gauge("thing", "help"), std::invalid_argument);
  EXPECT_THROW(
      (void)registry.histogram("thing", HistogramSpec::integers(4), "help"),
      std::invalid_argument);
}

TEST(MetricRegistry, HistogramSpecMismatchThrows) {
  MetricRegistry registry;
  (void)registry.histogram("lat", HistogramSpec::integers(4), "help");
  EXPECT_THROW(
      (void)registry.histogram("lat", HistogramSpec::integers(5), "help"),
      std::invalid_argument);
  // Identical spec re-registers fine.
  (void)registry.histogram("lat", HistogramSpec::integers(4), "help");
}

TEST(MetricRegistry, MalformedNamesThrow) {
  MetricRegistry registry;
  EXPECT_THROW((void)registry.counter("", "help"), std::invalid_argument);
  EXPECT_THROW((void)registry.counter("9lives", "help"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.counter("has space", "help"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.counter("ok_total", "help", {{"bad-label", "v"}}),
               std::invalid_argument);
  // Label VALUES are free-form (they get escaped on export).
  (void)registry.counter("ok_total", "help", {{"label", "spaces are fine"}});
}

TEST(MetricRegistry, SnapshotSortedByKey) {
  MetricRegistry registry;
  (void)registry.counter("zeta_total", "help");
  (void)registry.counter("alpha_total", "help");
  (void)registry.counter("alpha_total", "help", {{"tier", "1"}});
  const RegistrySnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 3u);
  for (std::size_t i = 1; i < snapshot.metrics.size(); ++i) {
    EXPECT_LT(snapshot.metrics[i - 1].key(), snapshot.metrics[i].key());
  }
}

TEST(MetricRegistry, ConcurrentIncrementsAreExact) {
  MetricRegistry registry;
  const Counter counter = registry.counter("racing_total", "help");
  const Histogram histogram =
      registry.histogram("racing_hist", HistogramSpec::integers(8), "help");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.observe(static_cast<double>(i % 8));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const RegistrySnapshot snapshot = registry.snapshot();
  const MetricSnapshot* hist = snapshot.find("racing_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->histogram.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// --------------------------------------------------------- histograms

TEST(HistogramSpec, ExponentialLayout) {
  const HistogramSpec spec = HistogramSpec::exponential(1.0, 2.0, 4);
  ASSERT_EQ(spec.upper_bounds.size(), 4u);
  EXPECT_EQ(spec.upper_bounds, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  spec.validate();
}

TEST(HistogramSpec, IntegersLayout) {
  const HistogramSpec spec = HistogramSpec::integers(3);
  EXPECT_EQ(spec.upper_bounds, (std::vector<double>{0.0, 1.0, 2.0, 3.0}));
  spec.validate();
}

TEST(HistogramSpec, ValidateRejectsBadBounds) {
  EXPECT_THROW(HistogramSpec{}.validate(), std::invalid_argument);
  EXPECT_THROW((HistogramSpec{{1.0, 1.0}}).validate(), std::invalid_argument);
  EXPECT_THROW((HistogramSpec{{2.0, 1.0}}).validate(), std::invalid_argument);
}

/// Observations land by Prometheus `le` semantics: bucket i counts
/// values <= bound[i]; anything past the last bound is overflow.
TEST(Histogram, LeBucketSemantics) {
  MetricRegistry registry;
  const Histogram histogram = registry.histogram(
      "lat", HistogramSpec{{1.0, 2.0, 4.0}}, "help");
  histogram.observe(1.0);   // == bound -> bucket 0
  histogram.observe(1.5);   // bucket 1
  histogram.observe(4.0);   // bucket 2 (le)
  histogram.observe(99.0);  // overflow
  const RegistrySnapshot snapshot = registry.snapshot();
  const MetricSnapshot* m = snapshot.find("lat");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->histogram.counts,
            (std::vector<std::uint64_t>{1, 1, 1, 1}));
  EXPECT_EQ(m->histogram.count, 4u);
  EXPECT_EQ(m->histogram.sum, 1.0 + 1.5 + 4.0 + 99.0);
}

// Edge case: a histogram nobody observed reads 0 at every quantile and
// exports without dividing by zero.
TEST(Histogram, ZeroObservationsQuantileIsZero) {
  MetricRegistry registry;
  (void)registry.histogram("empty", HistogramSpec::integers(4), "help");
  const RegistrySnapshot snapshot = registry.snapshot();
  const MetricSnapshot* m = snapshot.find("empty");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->histogram.quantile(0.0), 0.0);
  EXPECT_EQ(m->histogram.quantile(0.5), 0.0);
  EXPECT_EQ(m->histogram.quantile(1.0), 0.0);
  EXPECT_NE(to_json(registry.snapshot()).find("\"empty\""),
            std::string::npos);
}

// Edge case: all mass saturating one bucket — including the overflow
// bucket, where quantile() must clamp to the last finite bound instead
// of inventing +Inf.
TEST(Histogram, SingleBucketSaturation) {
  MetricRegistry registry;
  const Histogram mid =
      registry.histogram("mid", HistogramSpec{{1.0, 2.0, 4.0}}, "help");
  for (int i = 0; i < 100; ++i) mid.observe(1.5);
  const Histogram over =
      registry.histogram("over", HistogramSpec{{1.0, 2.0, 4.0}}, "help");
  for (int i = 0; i < 100; ++i) over.observe(1000.0);
  const RegistrySnapshot snapshot = registry.snapshot();
  const MetricSnapshot* m = snapshot.find("mid");
  const MetricSnapshot* o = snapshot.find("over");
  ASSERT_NE(m, nullptr);
  ASSERT_NE(o, nullptr);
  for (const double p : {0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(m->histogram.quantile(p), 2.0) << "p=" << p;
    EXPECT_EQ(o->histogram.quantile(p), 4.0) << "p=" << p;
  }
}

TEST(Histogram, QuantileRankRounding) {
  // 10 observations of value i in bucket i (integers spec): the rank
  // target is uint64(p*total + 0.5), matching SimReport::rounds_percentile.
  MetricRegistry registry;
  const Histogram histogram =
      registry.histogram("ranks", HistogramSpec::integers(9), "help");
  for (int i = 0; i < 10; ++i) histogram.observe(static_cast<double>(i));
  const RegistrySnapshot snapshot = registry.snapshot();
  const MetricSnapshot* m = snapshot.find("ranks");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->histogram.quantile(0.0), 0.0);
  EXPECT_EQ(m->histogram.quantile(0.5), 4.0);   // target 5 -> 5th obs
  EXPECT_EQ(m->histogram.quantile(0.95), 9.0);  // target 10 (9.5 + .5)
  EXPECT_EQ(m->histogram.quantile(1.0), 9.0);
}

// ------------------------------------------------------------- merge

TEST(RegistrySnapshotMerge, CountersGaugesHistogramsFold) {
  MetricRegistry a;
  MetricRegistry b;
  a.counter("calls_total", "help").inc(3);
  b.counter("calls_total", "help").inc(4);
  a.gauge("tokens", "help").set(1.5);
  b.gauge("tokens", "help").set(2.25);
  const HistogramSpec spec = HistogramSpec::integers(4);
  a.histogram("rounds", spec, "help").observe(1.0);
  b.histogram("rounds", spec, "help").observe(1.0);
  b.histogram("rounds", spec, "help").observe(3.0);

  RegistrySnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.find("calls_total")->counter_value, 7u);
  EXPECT_EQ(merged.find("tokens")->gauge_value, 3.75);
  const HistogramSnapshot& h = merged.find("rounds")->histogram;
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 5.0);
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{0, 2, 0, 1, 0, 0}));
}

// Edge case: merging snapshots with disjoint metric sets keeps both
// sides (a batch where only some replications tripped a breaker still
// aggregates), and the result stays key-sorted.
TEST(RegistrySnapshotMerge, DisjointRangesUnion) {
  MetricRegistry a;
  MetricRegistry b;
  a.counter("aaa_total", "help").inc(1);
  a.counter("mmm_total", "help").inc(2);
  b.counter("bbb_total", "help").inc(3);
  b.counter("zzz_total", "help").inc(4);
  RegistrySnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  ASSERT_EQ(merged.metrics.size(), 4u);
  EXPECT_EQ(merged.find("aaa_total")->counter_value, 1u);
  EXPECT_EQ(merged.find("bbb_total")->counter_value, 3u);
  EXPECT_EQ(merged.find("mmm_total")->counter_value, 2u);
  EXPECT_EQ(merged.find("zzz_total")->counter_value, 4u);
  for (std::size_t i = 1; i < merged.metrics.size(); ++i) {
    EXPECT_LT(merged.metrics[i - 1].key(), merged.metrics[i].key());
  }
}

TEST(RegistrySnapshotMerge, MergeIntoEmptyEqualsCopy) {
  MetricRegistry a;
  a.counter("calls_total", "help").inc(5);
  a.histogram("rounds", HistogramSpec::integers(2), "help").observe(1.0);
  RegistrySnapshot merged;
  merged.merge(a.snapshot());
  EXPECT_EQ(to_json(merged), to_json(a.snapshot()));
}

TEST(RegistrySnapshotMerge, MismatchesThrow) {
  MetricRegistry a;
  MetricRegistry b;
  MetricRegistry c;
  a.counter("thing", "help").inc();
  b.gauge("thing", "help").set(1.0);
  RegistrySnapshot merged = a.snapshot();
  EXPECT_THROW(merged.merge(b.snapshot()), std::invalid_argument);

  MetricRegistry d;
  MetricRegistry e;
  (void)d.histogram("lat", HistogramSpec::integers(4), "help");
  (void)e.histogram("lat", HistogramSpec::integers(5), "help");
  RegistrySnapshot dm = d.snapshot();
  EXPECT_THROW(dm.merge(e.snapshot()), std::invalid_argument);
}

// ------------------------------------------------------------- delta

TEST(RegistrySnapshotDelta, CountersAndBucketsSubtractGaugesStay) {
  MetricRegistry registry;
  const Counter calls = registry.counter("calls_total", "help");
  const Gauge tokens = registry.gauge("tokens", "help");
  const Histogram rounds =
      registry.histogram("rounds", HistogramSpec::integers(4), "help");
  calls.inc(3);
  tokens.set(10.0);
  rounds.observe(1.0);
  const RegistrySnapshot before = registry.snapshot();
  calls.inc(4);
  tokens.set(2.5);
  rounds.observe(1.0);
  rounds.observe(3.0);

  const RegistrySnapshot window = registry.snapshot().delta(before);
  // Counters and histogram buckets are rates over the window; a gauge
  // is a level and keeps its CURRENT value.
  EXPECT_EQ(window.find("calls_total")->counter_value, 4u);
  EXPECT_EQ(window.find("tokens")->gauge_value, 2.5);
  const HistogramSnapshot& h = window.find("rounds")->histogram;
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 4.0);
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{0, 1, 0, 1, 0, 0}));
}

// Edge case: a series that appeared DURING the window (registered after
// `prev` was cut — the SLO controller binds its own metrics after
// taking its baseline) is kept verbatim, while a key `prev` holds that
// the current snapshot lacks means the snapshots come from different
// registries and must throw rather than fabricate a rate.
TEST(RegistrySnapshotDelta, DisjointKeysAppearOrThrow) {
  MetricRegistry registry;
  registry.counter("early_total", "help").inc(2);
  const RegistrySnapshot before = registry.snapshot();
  registry.counter("late_total", "help").inc(7);
  const RegistrySnapshot window = registry.snapshot().delta(before);
  EXPECT_EQ(window.find("early_total")->counter_value, 0u);
  EXPECT_EQ(window.find("late_total")->counter_value, 7u);

  MetricRegistry other;
  other.counter("other_total", "help").inc(1);
  EXPECT_THROW((void)registry.snapshot().delta(other.snapshot()),
               std::invalid_argument);
}

// Edge case: a counter or histogram that went BACKWARDS relative to
// `prev` means the registry restarted between the snapshots; a silent
// negative delta would poison every percentile computed from the
// window, so delta refuses.
TEST(RegistrySnapshotDelta, ResetRegistriesThrow) {
  MetricRegistry before_registry;
  before_registry.counter("calls_total", "help").inc(10);
  const RegistrySnapshot before = before_registry.snapshot();
  MetricRegistry restarted;
  restarted.counter("calls_total", "help").inc(3);  // 3 < 10
  EXPECT_THROW((void)restarted.snapshot().delta(before),
               std::invalid_argument);

  MetricRegistry h_before;
  h_before.histogram("rounds", HistogramSpec::integers(4), "help")
      .observe(2.0);
  const RegistrySnapshot h_prev = h_before.snapshot();
  MetricRegistry h_restarted;
  h_restarted.histogram("rounds", HistogramSpec::integers(4), "help")
      .observe(1.0);  // same count, but bucket 2 went 1 -> 0
  EXPECT_THROW((void)h_restarted.snapshot().delta(h_prev),
               std::invalid_argument);
}

TEST(RegistrySnapshotDelta, TypeMismatchThrows) {
  MetricRegistry a;
  MetricRegistry b;
  a.counter("thing", "help").inc();
  b.gauge("thing", "help").set(1.0);
  EXPECT_THROW((void)b.snapshot().delta(a.snapshot()),
               std::invalid_argument);
}

TEST(RegistrySnapshotDelta, IdenticalSnapshotsGiveZeroWindow) {
  MetricRegistry registry;
  registry.counter("calls_total", "help").inc(5);
  registry.histogram("rounds", HistogramSpec::integers(2), "help")
      .observe(1.0);
  const RegistrySnapshot cut = registry.snapshot();
  const RegistrySnapshot window = registry.snapshot().delta(cut);
  EXPECT_EQ(window.find("calls_total")->counter_value, 0u);
  EXPECT_EQ(window.find("rounds")->histogram.count, 0u);
  EXPECT_EQ(window.find("rounds")->histogram.sum, 0.0);
}

// Labelled series appearing or disappearing between windows (areas come
// and go, a fleet restarts a lane): an appearing series is kept
// verbatim with its labels, every surviving series subtracts
// key-aligned, and nothing in the window may ever be negative.
TEST(RegistrySnapshotDelta, LabelledSeriesAppearWithoutNegativeDeltas) {
  MetricRegistry registry;
  registry.counter("calls_total", "help", {{"shard", "0"}}).inc(5);
  const RegistrySnapshot before = registry.snapshot();
  registry.counter("calls_total", "help", {{"shard", "0"}}).inc(2);
  registry.counter("calls_total", "help", {{"shard", "1"}}).inc(9);
  const RegistrySnapshot window = registry.snapshot().delta(before);
  EXPECT_EQ(window.find("calls_total", {{"shard", "0"}})->counter_value,
            2u);
  EXPECT_EQ(window.find("calls_total", {{"shard", "1"}})->counter_value,
            9u);
  for (const MetricSnapshot& metric : window.metrics) {
    if (metric.type == MetricType::kCounter) {
      EXPECT_GE(metric.counter_value, 0u);
    }
  }
}

// A labelled series present in `prev` but absent now means the
// registries differ (a shard's series cannot unregister): delta must
// throw, never fabricate a window.
TEST(RegistrySnapshotDelta, LabelledSeriesDisappearThrows) {
  MetricRegistry wide;
  wide.counter("calls_total", "help", {{"shard", "0"}}).inc(1);
  wide.counter("calls_total", "help", {{"shard", "1"}}).inc(1);
  const RegistrySnapshot before = wide.snapshot();
  MetricRegistry narrow;
  narrow.counter("calls_total", "help", {{"shard", "0"}}).inc(2);
  EXPECT_THROW((void)narrow.snapshot().delta(before),
               std::invalid_argument);
}

// ----------------------------------------------------- label algebra

TEST(RegistrySnapshotLabelAlgebra, EraseLabelsFoldsCollidingSeries) {
  MetricRegistry registry;
  registry.counter("calls_total", "help", {{"shard", "0"}}).inc(3);
  registry.counter("calls_total", "help", {{"shard", "1"}}).inc(4);
  registry.gauge("depth", "help", {{"shard", "0"}}).set(1.5);
  registry.gauge("depth", "help", {{"shard", "1"}}).set(2.0);
  const HistogramSpec spec = HistogramSpec::integers(4);
  registry.histogram("rounds", spec, "help", {{"shard", "0"}}).observe(1.0);
  registry.histogram("rounds", spec, "help", {{"shard", "1"}}).observe(3.0);

  const RegistrySnapshot view =
      registry.snapshot().erase_labels({"shard"});
  ASSERT_EQ(view.metrics.size(), 3u);
  EXPECT_EQ(view.find("calls_total")->counter_value, 7u);
  EXPECT_EQ(view.find("depth")->gauge_value, 3.5);
  const HistogramSnapshot& h = view.find("rounds")->histogram;
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{0, 1, 0, 1, 0, 0}));
}

// `sum without (keys)` keeps the labels it was not asked to erase:
// {shard, result} minus shard folds to per-result series.
TEST(RegistrySnapshotLabelAlgebra, EraseLabelsKeepsOtherKeys) {
  MetricRegistry registry;
  registry
      .counter("ops_total", "help", {{"result", "ok"}, {"shard", "0"}})
      .inc(1);
  registry
      .counter("ops_total", "help", {{"result", "ok"}, {"shard", "1"}})
      .inc(2);
  registry
      .counter("ops_total", "help", {{"result", "err"}, {"shard", "1"}})
      .inc(5);
  const RegistrySnapshot view =
      registry.snapshot().erase_labels({"shard"});
  ASSERT_EQ(view.metrics.size(), 2u);
  EXPECT_EQ(view.find("ops_total", {{"result", "ok"}})->counter_value, 3u);
  EXPECT_EQ(view.find("ops_total", {{"result", "err"}})->counter_value,
            5u);
}

TEST(RegistrySnapshotLabelAlgebra, EraseUnknownKeyIsIdentity) {
  MetricRegistry registry;
  registry.counter("calls_total", "help", {{"shard", "0"}}).inc(3);
  registry.histogram("rounds", HistogramSpec::integers(2), "help")
      .observe(1.0);
  const RegistrySnapshot original = registry.snapshot();
  const RegistrySnapshot view = original.erase_labels({"nonexistent"});
  EXPECT_EQ(to_json(view), to_json(original));
}

TEST(RegistrySnapshotLabelAlgebra, SumByFoldsWholeFamily) {
  MetricRegistry registry;
  const HistogramSpec spec = HistogramSpec::integers(4);
  registry.histogram("rounds", spec, "help", {{"shard", "0"}}).observe(1.0);
  registry.histogram("rounds", spec, "help", {{"shard", "1"}}).observe(1.0);
  registry.histogram("rounds", spec, "help", {{"shard", "1"}}).observe(3.0);
  registry.counter("unrelated_total", "help").inc(9);

  const std::optional<MetricSnapshot> summed =
      registry.snapshot().sum_by("rounds");
  ASSERT_TRUE(summed.has_value());
  EXPECT_TRUE(summed->labels.empty());
  EXPECT_EQ(summed->histogram.count, 3u);
  EXPECT_EQ(summed->histogram.counts,
            (std::vector<std::uint64_t>{0, 2, 0, 1, 0, 0}));
  EXPECT_FALSE(registry.snapshot().sum_by("missing").has_value());
}

// The invariance the fleet-wide SLO sensor rests on: however the same
// observations are split across label sets, the label-summed family is
// the same histogram — so quantiles over it cannot depend on the shard
// count.
TEST(RegistrySnapshotLabelAlgebra, SumByIsShardingInvariant) {
  const HistogramSpec spec = HistogramSpec::integers(4);
  const std::vector<double> observations{1.0, 1.0, 2.0, 3.0, 3.0, 3.0};

  MetricRegistry one;
  for (const double v : observations) {
    one.histogram("rounds", spec, "help", {{"shard", "0"}}).observe(v);
  }
  MetricRegistry three;
  for (std::size_t i = 0; i < observations.size(); ++i) {
    three
        .histogram("rounds", spec, "help",
                   {{"shard", std::to_string(i % 3)}})
        .observe(observations[i]);
  }
  const std::optional<MetricSnapshot> a = one.snapshot().sum_by("rounds");
  const std::optional<MetricSnapshot> b =
      three.snapshot().sum_by("rounds");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->histogram.counts, b->histogram.counts);
  EXPECT_EQ(a->histogram.count, b->histogram.count);
  EXPECT_EQ(a->histogram.sum, b->histogram.sum);
  EXPECT_EQ(a->histogram.quantile(0.99), b->histogram.quantile(0.99));
}

// Unlabelled families degenerate gracefully: sum_by of a single
// label-less series is that series (what the SLO controller reads on
// the single-service path).
TEST(RegistrySnapshotLabelAlgebra, SumByOfUnlabelledSeriesIsIdentity) {
  MetricRegistry registry;
  registry.histogram("rounds", HistogramSpec::integers(2), "help")
      .observe(1.0);
  const std::optional<MetricSnapshot> summed =
      registry.snapshot().sum_by("rounds");
  ASSERT_TRUE(summed.has_value());
  EXPECT_EQ(summed->histogram.count, 1u);
}

// ---------------------------------------------------------- exemplars

TEST(HistogramExemplars, AnnotateRecordsBucketExemplar) {
  MetricRegistry registry;
  const Histogram rounds =
      registry.histogram("rounds", HistogramSpec::integers(4), "help");
  rounds.observe(2.0);
  rounds.annotate(2.0, 0xabcdULL);
  rounds.observe(9.0);           // overflow bucket
  rounds.annotate(9.0, 0x99ULL);
  const HistogramSnapshot h = registry.snapshot().find("rounds")->histogram;
  ASSERT_EQ(h.exemplars.size(), h.counts.size());
  EXPECT_EQ(h.exemplars[2].trace_id, 0xabcdULL);
  EXPECT_EQ(h.exemplars[2].value, 2.0);
  EXPECT_EQ(h.exemplars.back().trace_id, 0x99ULL);  // +Inf bucket
  EXPECT_FALSE(h.exemplars[0].valid());
}

// trace_id 0 means "this call was not sampled": annotate must be a
// no-op, and a histogram never annotated snapshots with an EMPTY
// exemplar vector (the common path stays allocation-free).
TEST(HistogramExemplars, ZeroTraceIdAndUnannotatedStayEmpty) {
  MetricRegistry registry;
  const Histogram rounds =
      registry.histogram("rounds", HistogramSpec::integers(4), "help");
  rounds.observe(1.0);
  rounds.annotate(1.0, 0);
  EXPECT_TRUE(registry.snapshot().find("rounds")->histogram.exemplars
                  .empty());
}

TEST(HistogramExemplars, MergeKeepsFirstOperandAndFillsGaps) {
  MetricRegistry a;
  MetricRegistry b;
  const HistogramSpec spec = HistogramSpec::integers(4);
  a.histogram("rounds", spec, "help").observe(1.0);
  a.histogram("rounds", spec, "help").annotate(1.0, 0x1ULL);
  b.histogram("rounds", spec, "help").observe(1.0);
  b.histogram("rounds", spec, "help").annotate(1.0, 0x2ULL);
  b.histogram("rounds", spec, "help").observe(3.0);
  b.histogram("rounds", spec, "help").annotate(3.0, 0x3ULL);

  RegistrySnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HistogramSnapshot& h = merged.find("rounds")->histogram;
  ASSERT_FALSE(h.exemplars.empty());
  EXPECT_EQ(h.exemplars[1].trace_id, 0x1ULL);  // first operand wins
  EXPECT_EQ(h.exemplars[3].trace_id, 0x3ULL);  // gap filled from second
}

TEST(Exporters, PrometheusExemplarsAreOptIn) {
  MetricRegistry registry;
  const Histogram lat =
      registry.histogram("confcall_lat_ns", HistogramSpec{{1.0, 2.0}},
                         "latency");
  lat.observe(1.5);
  const std::string before_annotation = to_prometheus(registry.snapshot());
  lat.annotate(1.5, 0xdeadbeefULL);

  // Default exposition: byte-for-byte identical to the pre-annotation
  // render — the E16 scrape-identity gate must not notice annotations.
  const std::string plain = to_prometheus(registry.snapshot());
  EXPECT_EQ(plain, before_annotation);
  EXPECT_EQ(plain.find("trace_id"), std::string::npos);

  lat.observe(9.0);
  lat.annotate(9.0, 0x7ULL);

  PrometheusOptions options;
  options.exemplars = true;
  const std::string annotated =
      to_prometheus(registry.snapshot(), options);
  EXPECT_NE(annotated.find(
                "confcall_lat_ns_bucket{le=\"2\"} 1 "
                "# {trace_id=\"00000000deadbeef\"} 1.5"),
            std::string::npos)
      << annotated;
  EXPECT_NE(annotated.find(
                "confcall_lat_ns_bucket{le=\"+Inf\"} 2 "
                "# {trace_id=\"0000000000000007\"} 9"),
            std::string::npos)
      << annotated;
}

// --------------------------------------------------------- exporters

TEST(Exporters, JsonShapeAndStability) {
  MetricRegistry registry;
  registry.counter("confcall_x_total", "help").inc(2);
  registry.gauge("confcall_fill", "help").set(0.5);
  registry.histogram("confcall_lat", HistogramSpec{{1.0, 2.0}}, "help")
      .observe(1.5);
  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"confcall_x_total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [0, 1, 0]"), std::string::npos);
  // Same registry state -> byte-identical export (the E15 determinism
  // gate rests on this).
  EXPECT_EQ(json, to_json(registry.snapshot()));
}

TEST(Exporters, PrometheusTextFormat) {
  MetricRegistry registry;
  registry
      .counter("confcall_served_total", "served calls", {{"tier", "0"}})
      .inc(3);
  registry.histogram("confcall_lat_ns", HistogramSpec{{1.0, 2.0}}, "latency")
      .observe(1.5);
  registry.histogram("confcall_lat_ns", HistogramSpec{{1.0, 2.0}}, "latency")
      .observe(9.0);
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# HELP confcall_served_total served calls"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE confcall_served_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("confcall_served_total{tier=\"0\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE confcall_lat_ns histogram"),
            std::string::npos);
  // Cumulative le buckets: 0 <= 1.0, 1 <= 2.0, 2 total at +Inf.
  EXPECT_NE(text.find("confcall_lat_ns_bucket{le=\"1\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("confcall_lat_ns_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("confcall_lat_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("confcall_lat_ns_count 2"), std::string::npos);
  EXPECT_NE(text.find("confcall_lat_ns_sum 10.5"), std::string::npos);
}

TEST(Exporters, PrometheusEscapesLabelValuesAndHelp) {
  // The exposition format requires backslash, double-quote and newline
  // escaped inside label values, and backslash/newline inside HELP text
  // — an unescaped value silently corrupts the whole scrape for parsers.
  MetricRegistry registry;
  registry
      .counter("confcall_escape_total", "line one\nwith a \\ backslash",
               {{"path", "C:\\temp\n\"quoted\""}})
      .inc(1);
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(
      text.find(
          "confcall_escape_total{path=\"C:\\\\temp\\n\\\"quoted\\\"\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP confcall_escape_total "
                      "line one\\nwith a \\\\ backslash"),
            std::string::npos)
      << text;
  // No raw newline may survive inside any line: every line starts with
  // '#' or the metric name.
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    if (!line.empty()) {
      EXPECT_TRUE(line[0] == '#' ||
                  line.rfind("confcall_escape_total", 0) == 0)
          << line;
    }
    pos = end + 1;
  }
}

}  // namespace
}  // namespace confcall::support
