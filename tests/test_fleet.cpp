// ServiceFleet (cellular/service_fleet.h) and the fleet substrate
// (support/fleet.h): routing determinism across shard counts, the
// NOVA-style steal-limit discipline, the process-wide signature table,
// and fleet-wide checkpointing. Every TEST name starts with "Fleet" so
// the sanitizer CI rows can select the concurrency storm with
// --gtest_filter=Fleet*.
#include "cellular/service_fleet.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cellular/service.h"
#include "cellular/topology.h"
#include "prob/rng.h"
#include "support/fleet.h"
#include "support/metrics.h"
#include "support/state_io.h"
#include "support/trace.h"

namespace confcall::cellular {
namespace {

// ---- support::SignatureTable ------------------------------------------

TEST(FleetSignatureTable, InsertOnceFirstWriterWins) {
  support::SignatureTable<int> table;
  EXPECT_TRUE(table.insert(7, 1));
  EXPECT_FALSE(table.insert(7, 2));  // already present: not replaced
  const std::optional<int> value = table.lookup(7);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 1);
  EXPECT_FALSE(table.lookup(8).has_value());
  const auto stats = table.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(FleetSignatureTable, CapacityBoundsInserts) {
  support::SignatureTable<int> table(/*capacity=*/2);
  EXPECT_TRUE(table.insert(1, 10));
  EXPECT_TRUE(table.insert(2, 20));
  EXPECT_FALSE(table.insert(3, 30));  // at capacity: rejected, not evicted
  EXPECT_EQ(table.stats().rejected, 1u);
  EXPECT_EQ(table.size(), 2u);
  ASSERT_TRUE(table.lookup(1).has_value());
  ASSERT_TRUE(table.lookup(2).has_value());
  EXPECT_FALSE(table.lookup(3).has_value());
}

// ---- support::ShardQueueSet -------------------------------------------

TEST(FleetQueues, StealRequiresDepthBeyondTheLimit) {
  support::ShardQueueSet queues(/*num_shards=*/2, /*capacity=*/8,
                                /*steal_limit=*/2);
  ASSERT_TRUE(queues.push(0, 100));
  ASSERT_TRUE(queues.push(0, 101));
  // Depth == steal_limit: the owner is keeping up, nobody may raid it.
  EXPECT_FALSE(queues.steal(1).has_value());
  ASSERT_TRUE(queues.push(0, 102));
  // Depth == steal_limit + 1: the thief takes the BACK task — the one
  // the owner would reach last.
  const std::optional<support::ShardQueueSet::Steal> steal = queues.steal(1);
  ASSERT_TRUE(steal.has_value());
  EXPECT_EQ(steal->task, 102u);
  EXPECT_EQ(steal->victim, 0u);
  EXPECT_EQ(queues.depth(0), 2u);
  // And the owner still drains front-first.
  EXPECT_EQ(queues.pop_local(0), std::optional<std::size_t>{100});
  EXPECT_EQ(queues.pop_local(0), std::optional<std::size_t>{101});
  EXPECT_FALSE(queues.pop_local(0).has_value());
}

TEST(FleetQueues, PushBoundedByCapacityAndHighWaterTracked) {
  support::ShardQueueSet queues(/*num_shards=*/1, /*capacity=*/2,
                                /*steal_limit=*/0);
  EXPECT_TRUE(queues.push(0, 1));
  EXPECT_TRUE(queues.push(0, 2));
  EXPECT_FALSE(queues.push(0, 3));  // full: caller overflow-routes
  EXPECT_EQ(queues.high_water(0), 2u);
  (void)queues.pop_local(0);
  EXPECT_EQ(queues.high_water(0), 2u);  // high-water survives drains
}

// ---- ServiceFleet -----------------------------------------------------

struct FleetWorld {
  GridTopology grid{12, 12, true, Neighborhood::kVonNeumann};
  LocationAreas areas = LocationAreas::tiles(grid, 3, 3);
  MarkovMobility mobility{grid, 0.9};
  std::vector<CellId> initial_cells;

  FleetWorld() {
    prob::Rng rng(99);
    initial_cells.resize(64);
    for (auto& cell : initial_cells) {
      cell = static_cast<CellId>(rng.next_below(grid.num_cells()));
    }
  }

  static LocationService::Config service_config() {
    LocationService::Config config;
    config.profile_kind = ProfileKind::kStationary;
    config.max_paging_rounds = 3;
    config.enable_plan_cache = true;
    return config;
  }

  [[nodiscard]] ServiceFleet make_fleet(std::size_t num_shards,
                                        std::size_t num_areas = 6,
                                        std::size_t steal_limit = 2) const {
    FleetConfig config;
    config.num_shards = num_shards;
    config.num_areas = num_areas;
    config.steal_limit = steal_limit;
    config.seed = 7;
    return ServiceFleet(grid, areas, mobility, service_config(),
                        initial_cells, config);
  }
};

/// One deterministic mixed drive: steps interleaved with locate batches
/// spread over every area. Returns every outcome in request order.
std::vector<LocationService::LocateOutcome> drive(ServiceFleet& fleet,
                                                  std::size_t n_batches) {
  prob::Rng fixture_rng(4242);
  std::vector<LocationService::LocateOutcome> all;
  for (std::size_t b = 0; b < n_batches; ++b) {
    fleet.step_all();
    std::vector<ServiceFleet::Request> batch(fleet.num_areas() * 2);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].area = i % fleet.num_areas();
      for (std::size_t k = 0; k < 3; ++k) {
        batch[i].users.push_back(static_cast<UserId>(
            k * 16 + fixture_rng.next_below(16)));
      }
    }
    const auto outcomes = fleet.locate_many(batch);
    all.insert(all.end(), outcomes.begin(), outcomes.end());
  }
  return all;
}

bool same_outcomes(const std::vector<LocationService::LocateOutcome>& a,
                   const std::vector<LocationService::LocateOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].cells_paged != b[i].cells_paged ||
        a[i].rounds_used != b[i].rounds_used ||
        a[i].retries != b[i].retries || a[i].abandoned != b[i].abandoned ||
        a[i].degraded != b[i].degraded ||
        a[i].deadline_limited != b[i].deadline_limited) {
      return false;
    }
  }
  return true;
}

std::string save_bytes(const ServiceFleet& fleet) {
  support::StateBundle bundle;
  fleet.add_state_sections(bundle);
  return bundle.serialize();
}

TEST(Fleet, ResultsIdenticalAcrossShardCounts) {
  const FleetWorld world;
  ServiceFleet reference = world.make_fleet(1);
  const auto reference_outcomes = drive(reference, 6);
  const std::string reference_state = save_bytes(reference);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    ServiceFleet fleet = world.make_fleet(shards);
    const auto outcomes = drive(fleet, 6);
    EXPECT_TRUE(same_outcomes(reference_outcomes, outcomes))
        << "outcomes diverged at " << shards << " shards";
    EXPECT_EQ(save_bytes(fleet), reference_state)
        << "state diverged at " << shards << " shards";
  }
}

TEST(Fleet, RoutingMapIsAreaModuloShards) {
  const FleetWorld world;
  const ServiceFleet fleet = world.make_fleet(3, /*num_areas=*/7);
  for (std::size_t area = 0; area < fleet.num_areas(); ++area) {
    EXPECT_EQ(fleet.shard_of(area), area % 3);
  }
}

TEST(Fleet, SharedPlanTableAnswersAcrossAreas) {
  const FleetWorld world;
  // One shard: the dispatch order is sequential, so the hit accounting
  // is deterministic — area 0 plans and publishes, area 1's first plan
  // is answered from the table.
  ServiceFleet fleet = world.make_fleet(1, /*num_areas=*/2);
  std::vector<ServiceFleet::Request> batch(2);
  batch[0].area = 0;
  batch[0].users = {1, 2, 3};
  batch[1].area = 1;
  batch[1].users = {1, 2, 3};
  (void)fleet.locate_many(batch);
  const auto stats = fleet.shared_table().stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.entries, 1u);
}

TEST(Fleet, SaveRestoreRoundTrip) {
  const FleetWorld world;
  ServiceFleet original = world.make_fleet(2);
  (void)drive(original, 4);
  support::StateBundle bundle;
  original.add_state_sections(bundle);

  ServiceFleet restored = world.make_fleet(2);
  ASSERT_TRUE(restored.restore_state_sections(bundle));
  EXPECT_EQ(save_bytes(restored), save_bytes(original));
  // And the restored fleet serves the exact future the original would.
  EXPECT_TRUE(same_outcomes(drive(original, 2), drive(restored, 2)));
}

TEST(Fleet, RestoreIntoDifferentShardCount) {
  // Shards are execution, not state: a 1-shard checkpoint restores into
  // an 8-shard fleet and the served future is unchanged.
  const FleetWorld world;
  ServiceFleet original = world.make_fleet(1);
  (void)drive(original, 4);
  support::StateBundle bundle;
  original.add_state_sections(bundle);
  ServiceFleet wide = world.make_fleet(8);
  ASSERT_TRUE(wide.restore_state_sections(bundle));
  EXPECT_TRUE(same_outcomes(drive(original, 2), drive(wide, 2)));
}

TEST(Fleet, RestoreIsAllOrNothing) {
  const FleetWorld world;
  ServiceFleet original = world.make_fleet(2);
  (void)drive(original, 2);
  support::StateBundle bundle;
  original.add_state_sections(bundle);

  // Drop one area's section: the whole restore must fail and leave the
  // target fleet exactly as it was (cold state, still serving).
  support::StateBundle missing_area;
  for (const support::StateSection& section : bundle.sections()) {
    if (section.name == ServiceFleet::area_section_name(1)) continue;
    missing_area.add(section.name, section.version, section.payload);
  }
  ServiceFleet target = world.make_fleet(2);
  const std::string before = save_bytes(target);
  EXPECT_FALSE(target.restore_state_sections(missing_area));
  EXPECT_EQ(save_bytes(target), before);

  // Master-section version skew: same verdict.
  support::StateBundle skewed;
  for (const support::StateSection& section : bundle.sections()) {
    const bool master = section.name == ServiceFleet::kStateSection;
    skewed.add(section.name,
               master ? ServiceFleet::kStateVersion + 1 : section.version,
               section.payload);
  }
  EXPECT_FALSE(target.restore_state_sections(skewed));
  EXPECT_EQ(save_bytes(target), before);

  // A truncated master payload: rejected as a format error, not a crash.
  support::StateBundle truncated;
  for (const support::StateSection& section : bundle.sections()) {
    const bool master = section.name == ServiceFleet::kStateSection;
    truncated.add(section.name, section.version,
                  master ? section.payload.substr(0, 8) : section.payload);
  }
  EXPECT_FALSE(target.restore_state_sections(truncated));
  EXPECT_EQ(save_bytes(target), before);
}

TEST(Fleet, RejectsInvalidConfigAndRequests) {
  const FleetWorld world;
  FleetConfig zero_shards;
  zero_shards.num_shards = 0;
  EXPECT_THROW(ServiceFleet(world.grid, world.areas, world.mobility,
                            FleetWorld::service_config(),
                            world.initial_cells, zero_shards),
               std::invalid_argument);

  ServiceFleet fleet = world.make_fleet(2, /*num_areas=*/4);
  std::vector<ServiceFleet::Request> bad_area(1);
  bad_area[0].area = 4;  // num_areas = 4: out of range
  bad_area[0].users = {1};
  EXPECT_THROW((void)fleet.locate_many(bad_area), std::invalid_argument);
  std::vector<ServiceFleet::Request> bad_user(1);
  bad_user[0].users = {static_cast<UserId>(fleet.num_users())};
  EXPECT_THROW((void)fleet.locate_many(bad_user), std::invalid_argument);
}

TEST(Fleet, ConcurrentLocateStormIsRaceFreeAndDeterministic) {
  // The TSan row: 8 lanes over 16 areas, a steal limit of zero (every
  // queue raidable) and repeated wide dispatches — maximal concurrent
  // traffic through the queues, the shared signature table and the
  // per-area services. Results must still match the 1-shard run.
  const FleetWorld world;
  ServiceFleet wide = world.make_fleet(8, /*num_areas=*/16,
                                       /*steal_limit=*/0);
  ServiceFleet narrow = world.make_fleet(1, /*num_areas=*/16,
                                         /*steal_limit=*/0);
  const auto wide_outcomes = drive(wide, 8);
  const auto narrow_outcomes = drive(narrow, 8);
  EXPECT_TRUE(same_outcomes(wide_outcomes, narrow_outcomes));
  EXPECT_EQ(save_bytes(wide), save_bytes(narrow));
  EXPECT_GT(wide.stats().tasks, 0u);
}

TEST(Fleet, TracedConcurrentStormSamplesAndAnnotatesRaceFree) {
  // The tracing TSan row: ONE SamplingTracer shared by every lane while
  // 8 shards storm 16 areas with a steal limit of zero — the sampling
  // counter, the span ring and histogram exemplar annotation all take
  // maximal concurrent traffic. Paging outcomes must still match the
  // untraced 1-shard run (tracing observes, never steers).
  const FleetWorld world;
  support::MetricRegistry registry;
  support::SamplingTracer tracer(2, 256);
  LocationService::Config traced = FleetWorld::service_config();
  traced.tracer = &tracer;
  FleetConfig config;
  config.num_shards = 8;
  config.num_areas = 16;
  config.steal_limit = 0;
  config.seed = 7;
  config.registry = &registry;
  ServiceFleet wide(world.grid, world.areas, world.mobility, traced,
                    world.initial_cells, config);
  ServiceFleet narrow = world.make_fleet(1, /*num_areas=*/16,
                                         /*steal_limit=*/0);
  const auto wide_outcomes = drive(wide, 8);
  const auto narrow_outcomes = drive(narrow, 8);
  EXPECT_TRUE(same_outcomes(wide_outcomes, narrow_outcomes));
  EXPECT_GT(tracer.roots_seen(), 0u);
  EXPECT_GT(tracer.roots_sampled(), 0u);
  EXPECT_LE(tracer.roots_sampled(), tracer.roots_seen());

  // Sampled lanes annotated the per-shard rounds family: the label-
  // summed view carries at least one live exemplar.
  const std::optional<support::MetricSnapshot> rounds =
      registry.snapshot().sum_by("confcall_locate_rounds");
  ASSERT_TRUE(rounds.has_value());
  bool any_exemplar = false;
  for (const support::Exemplar& exemplar : rounds->histogram.exemplars) {
    any_exemplar = any_exemplar || exemplar.valid();
  }
  EXPECT_TRUE(any_exemplar);
}

}  // namespace
}  // namespace confcall::cellular
