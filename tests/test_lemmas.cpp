// Numerical verification of the paper's lemmas and propositions — the
// inequalities behind the e/(e-1) analysis, checked over randomized and
// gridded domains. These are tests of the PAPER (and of our reading of
// it), pinned here so that any implementation change that silently
// violates an assumption the analysis needs will fail loudly.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/evaluator.h"
#include "core/greedy.h"
#include "core/strategy.h"
#include "prob/rng.h"
#include "test_util.h"

namespace confcall::core {
namespace {

constexpr double kE = 2.718281828459045;

// Proposition 4.1: for 1 <= x <= 2, a_i, b_i >= 0, a_i + b_i <= 1 and
// a_1 + a_2 >= x - (b_1 + b_2), we have (a_1+b_1)(a_2+b_2) >= x - 1.
TEST(Proposition41, HoldsOnRandomFeasiblePoints) {
  prob::Rng rng(1);
  int checked = 0;
  while (checked < 2000) {
    const double a1 = rng.next_double();
    const double a2 = rng.next_double();
    const double b1 = rng.next_double() * (1.0 - a1);
    const double b2 = rng.next_double() * (1.0 - a2);
    const double x = 1.0 + rng.next_double();  // [1, 2)
    if (a1 + a2 < x - (b1 + b2)) continue;  // infeasible draw
    ++checked;
    EXPECT_GE((a1 + b1) * (a2 + b2), x - 1.0 - 1e-12)
        << a1 << ' ' << a2 << ' ' << b1 << ' ' << b2 << ' ' << x;
  }
}

// Proposition 4.2: for 0 < s <= c, 1 <= x <= 2,
// c - s(x-1) <= (4/3)(c - s(x/2)^2).
TEST(Proposition42, HoldsOnGrid) {
  for (const double c : {1.0, 5.0, 50.0}) {
    for (double s = 0.05; s <= c; s += c / 40.0) {
      for (double x = 1.0; x <= 2.0 + 1e-12; x += 0.01) {
        EXPECT_LE(c - s * (x - 1.0),
                  4.0 / 3.0 * (c - s * (x / 2.0) * (x / 2.0)) + 1e-9)
            << "c=" << c << " s=" << s << " x=" << x;
      }
    }
  }
}

// Lemma 4.4: m >= 2, m-1 <= x <= m, a_i, b_i >= 0, a_i + b_i <= 1,
// sum a_i >= x - sum b_i  =>  prod (a_i + b_i) >= x - m + 1.
TEST(Lemma44, HoldsOnRandomFeasiblePoints) {
  prob::Rng rng(2);
  for (const std::size_t m : {2u, 3u, 5u, 8u}) {
    int checked = 0;
    while (checked < 500) {
      std::vector<double> a(m), b(m);
      double sum_ab = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        a[i] = rng.next_double();
        b[i] = rng.next_double() * (1.0 - a[i]);
        sum_ab += a[i] + b[i];
      }
      const double x =
          static_cast<double>(m) - 1.0 + rng.next_double();  // [m-1, m)
      double sum_a = 0.0, sum_b = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        sum_a += a[i];
        sum_b += b[i];
      }
      if (sum_a < x - sum_b) continue;
      ++checked;
      double product = 1.0;
      for (std::size_t i = 0; i < m; ++i) product *= a[i] + b[i];
      EXPECT_GE(product, x - static_cast<double>(m) + 1.0 - 1e-12)
          << "m=" << m;
    }
  }
}

// Lemma 4.5: for m-1 <= x_r <= m (r = 1..k), positive s_2..s_d with
// sum <= c:
//   c - sum_r s_{r+1} (x_r - m + 1)
//     <= e/(e-1) (c - sum_r s_{r+1} (x_r/m)^m - (s_{k+2}+..+s_d)/e).
TEST(Lemma45, HoldsOnRandomPoints) {
  prob::Rng rng(3);
  for (int iter = 0; iter < 3000; ++iter) {
    const std::size_t m = 2 + rng.next_below(4);
    const std::size_t d = 2 + rng.next_below(4);
    const std::size_t k = 1 + rng.next_below(d - 1);  // k <= d-1
    const double c = 10.0 + 90.0 * rng.next_double();
    // s_2..s_d positive with total <= c.
    std::vector<double> s(d + 1, 0.0);  // 1-based: s[2..d]
    double total = 0.0;
    for (std::size_t r = 2; r <= d; ++r) {
      s[r] = 0.01 + rng.next_double();
      total += s[r];
    }
    const double scale = (0.2 + 0.8 * rng.next_double()) * c / total;
    for (std::size_t r = 2; r <= d; ++r) s[r] *= scale;

    double lhs = c;
    double rhs_inner = c;
    for (std::size_t r = 1; r <= k; ++r) {
      const double x =
          static_cast<double>(m) - 1.0 + rng.next_double();
      lhs -= s[r + 1] * (x - static_cast<double>(m) + 1.0);
      rhs_inner -=
          s[r + 1] * std::pow(x / static_cast<double>(m),
                              static_cast<double>(m));
    }
    double tail = 0.0;
    for (std::size_t r = k + 2; r <= d; ++r) tail += s[r];
    rhs_inner -= tail / kE;
    EXPECT_LE(lhs, kE / (kE - 1.0) * rhs_inner + 1e-9)
        << "m=" << m << " d=" << d << " k=" << k;
  }
}

// Lemma 3.1's objective f(x, y) = (c-y)((1-3/(2c))y + x)(y - x) is
// maximized over [0,1] x [0,c] at (1/2, 2c/3), with the closed-form value
// 4c^3/27 - 2c^2/9 + c/12.
TEST(Lemma31, GridScanConfirmsUniqueMaximizer) {
  const double c = 9.0;
  const auto f = [c](double x, double y) {
    return (c - y) * ((1.0 - 3.0 / (2.0 * c)) * y + x) * (y - x);
  };
  const double best = f(0.5, 2.0 * c / 3.0);
  EXPECT_NEAR(best, 4 * c * c * c / 27 - 2 * c * c / 9 + c / 12, 1e-9);
  for (double x = 0.0; x <= 1.0 + 1e-12; x += 0.01) {
    for (double y = 0.0; y <= c + 1e-12; y += 0.05) {
      EXPECT_LE(f(x, y), best + 1e-9) << "x=" << x << " y=" << y;
    }
  }
}

// Lemma 4.6 (the heart of Theorem 4.8): for ANY strategy S with group
// sizes s_1..s_d, the sorted-family strategy T with the SAME sizes has
// EP_T <= e/(e-1) EP_S.
TEST(Lemma46, HoldsForRandomStrategiesAndInstances) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const std::size_t m = 1 + seed % 5;
    const std::size_t c = 8 + seed % 7;
    const Instance instance =
        confcall::testing::random_instance(m, c, seed + 11, 0.6);
    prob::Rng rng(seed);
    const std::size_t d = 2 + rng.next_below(std::min<std::size_t>(4, c - 1));
    // Random sizes summing to c, all positive.
    std::vector<std::size_t> sizes(d, 1);
    for (std::size_t extra = 0; extra < c - d; ++extra) {
      ++sizes[rng.next_below(d)];
    }
    // Random strategy S with those sizes.
    std::vector<CellId> shuffled(c);
    std::iota(shuffled.begin(), shuffled.end(), CellId{0});
    rng.shuffle(shuffled);
    const Strategy random_s = Strategy::from_order_and_sizes(shuffled, sizes);
    // Sorted-family strategy T with the same sizes.
    const Strategy sorted_t = Strategy::from_order_and_sizes(
        greedy_cell_order(instance), sizes);
    EXPECT_LE(expected_paging(instance, sorted_t),
              kE / (kE - 1.0) * expected_paging(instance, random_s) + 1e-9)
        << "seed=" << seed;
  }
}

// Section 2's remark: extending a strategy of length t-1 < c by splitting
// a group strictly lowers expected paging (hence optima use all d rounds).
TEST(Section2, LongerStrategiesStrictlyImprove) {
  const Instance instance = confcall::testing::random_instance(2, 8, 5, 0.8);
  // Split the last group of a 2-round strategy into two.
  const Strategy two = Strategy::from_groups({{0, 1, 2, 3}, {4, 5, 6, 7}}, 8);
  const Strategy three =
      Strategy::from_groups({{0, 1, 2, 3}, {4, 5}, {6, 7}}, 8);
  EXPECT_LT(expected_paging(instance, three),
            expected_paging(instance, two));
}

}  // namespace
}  // namespace confcall::core
