// Tests for the Section 5 quantize-then-solve approximation scheme.
#include "core/scheme.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/evaluator.h"
#include "core/exact.h"
#include "test_util.h"

namespace confcall::core {
namespace {

TEST(Quantize, ZeroLevelsThrows) {
  EXPECT_THROW(quantize_instance(Instance::uniform(1, 3), 0),
               std::invalid_argument);
}

TEST(Quantize, ConstantRowsAreFixedPoints) {
  const Instance uniform = Instance::uniform(2, 5);
  const Instance quantized = quantize_instance(uniform, 3);
  for (DeviceId i = 0; i < 2; ++i) {
    for (CellId j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(quantized.prob(i, j), 0.2);
    }
  }
}

TEST(Quantize, ManyLevelsApproachOriginal) {
  const Instance instance = testing::random_instance(2, 8, 1, 0.8);
  const Instance fine = quantize_instance(instance, 4096);
  for (DeviceId i = 0; i < 2; ++i) {
    for (CellId j = 0; j < 8; ++j) {
      EXPECT_NEAR(fine.prob(i, j), instance.prob(i, j), 1e-3);
    }
  }
}

TEST(Quantize, ReducesColumnTypes) {
  const Instance instance = testing::random_instance(3, 12, 2, 1.0);
  EXPECT_EQ(column_types(instance).count.size(), 12u);
  const Instance coarse = quantize_instance(instance, 2);
  EXPECT_LT(column_types(coarse).count.size(), 12u);
}

TEST(Quantize, RowsStillSumToOne) {
  const Instance instance = testing::mixed_instance(3, 10, 3);
  for (const std::size_t levels : {1u, 2u, 5u, 50u}) {
    EXPECT_NO_THROW(quantize_instance(instance, levels));  // ctor validates
  }
}

TEST(Scheme, ExactOnAlreadyTypedInstances) {
  // A two-level instance is a fixed point for levels >= 2, so the scheme
  // returns the true optimum.
  std::vector<double> row;
  const std::size_t c = 10;
  for (std::size_t j = 0; j < c; ++j) {
    row.push_back(j < 5 ? 2.0 / 15.0 : 1.0 / 15.0);
  }
  const Instance instance = Instance::from_rows({row, row});
  const SchemePlanResult scheme = plan_quantized_exact(instance, 3, 4);
  const ExactResult exact = solve_exact(instance, 3);
  EXPECT_NEAR(scheme.expected_paging, exact.expected_paging, 1e-9);
  // Midpoint snapping shifts both levels by less than one bucket width,
  // preserving the two-type ORDER (and hence the optimal strategy).
  EXPECT_LT(scheme.max_entry_error, (2.0 / 15.0 - 1.0 / 15.0) / 4.0 + 1e-12);
  EXPECT_EQ(scheme.distinct_columns, 2u);
}

TEST(Scheme, NeverBelowTrueOptimum) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = testing::random_instance(2, 8, seed + 5, 0.7);
    const ExactResult exact = solve_exact(instance, 2);
    for (const std::size_t levels : {2u, 4u, 8u}) {
      const SchemePlanResult scheme =
          plan_quantized_exact(instance, 2, levels);
      EXPECT_GE(scheme.expected_paging, exact.expected_paging - 1e-9)
          << "seed=" << seed << " levels=" << levels;
    }
  }
}

TEST(Scheme, MoreLevelsGenerallyTightens) {
  // Not guaranteed monotone per instance, but the coarse-to-fine average
  // must not degrade.
  double coarse_total = 0.0;
  double fine_total = 0.0;
  double optimal_total = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = testing::random_instance(2, 8, seed + 50, 0.7);
    coarse_total += plan_quantized_exact(instance, 2, 2).expected_paging;
    fine_total += plan_quantized_exact(instance, 2, 16).expected_paging;
    optimal_total += solve_exact_d2(instance).expected_paging;
  }
  EXPECT_LE(fine_total, coarse_total + 1e-9);
  EXPECT_GE(fine_total, optimal_total - 1e-9);
  // Fine quantization should land very close to optimal on average.
  EXPECT_LT(fine_total - optimal_total, 0.05 * optimal_total);
}

TEST(Scheme, ReportsDiagnostics) {
  const Instance instance = testing::random_instance(2, 9, 9, 0.6);
  const SchemePlanResult scheme = plan_quantized_exact(instance, 2, 3);
  EXPECT_GT(scheme.distinct_columns, 0u);
  EXPECT_LE(scheme.distinct_columns, 9u);
  EXPECT_GT(scheme.max_entry_error, 0.0);
  EXPECT_TRUE(std::isfinite(scheme.quantized_expected_paging));
}

TEST(Scheme, PropagatesNodeLimit) {
  const Instance instance = testing::random_instance(3, 16, 11, 1.0);
  EXPECT_THROW(plan_quantized_exact(instance, 8, 64, Objective::all_of(),
                                    /*node_limit=*/100),
               std::invalid_argument);
}

}  // namespace
}  // namespace confcall::core
