// Unit tests for the span tracer (support/trace.h): RAII timing against
// a ManualClock, parent linkage through the thread_local stack, ring
// eviction, null-tracer no-ops, and the JSON dump.
#include "support/trace.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace confcall::support {
namespace {

TEST(Tracer, RejectsZeroCapacity) {
  EXPECT_THROW(Tracer tracer(0), std::invalid_argument);
}

TEST(Tracer, NullTracerSpansAreFreeNoOps) {
  const Span span(nullptr, "nothing");
  EXPECT_EQ(span.id(), 0u);
}

TEST(Tracer, SpanRecordsManualClockBounds) {
  ManualClock clock(1'000);
  Tracer tracer(8, clock);
  {
    const Span span(&tracer, "work");
    clock.advance(250);
  }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].start_ns, 1'000u);
  EXPECT_EQ(spans[0].end_ns, 1'250u);
  EXPECT_EQ(spans[0].duration_ns(), 250u);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(Tracer, NestedSpansLinkToParent) {
  ManualClock clock(0);
  Tracer tracer(8, clock);
  std::uint64_t outer_id = 0;
  {
    const Span outer(&tracer, "locate");
    outer_id = outer.id();
    clock.advance(10);
    {
      const Span inner(&tracer, "plan");
      clock.advance(5);
    }
    {
      const Span inner(&tracer, "page_rounds");
      clock.advance(7);
    }
  }
  // Children close (and record) before the parent: plan, page_rounds,
  // locate, oldest first.
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "plan");
  EXPECT_STREQ(spans[1].name, "page_rounds");
  EXPECT_STREQ(spans[2].name, "locate");
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[1].parent_id, outer_id);
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_EQ(spans[2].span_id, outer_id);
  EXPECT_EQ(spans[0].start_ns, 10u);
  EXPECT_EQ(spans[0].end_ns, 15u);
  EXPECT_EQ(spans[2].duration_ns(), 22u);
}

TEST(Tracer, RingEvictsOldestAndCountsAll) {
  ManualClock clock(0);
  Tracer tracer(3, clock);
  for (int i = 0; i < 5; ++i) {
    const Span span(&tracer, i % 2 == 0 ? "even" : "odd");
    clock.advance(1);
  }
  EXPECT_EQ(tracer.recorded(), 5u);
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Oldest-first window over the last three spans (indices 2, 3, 4).
  EXPECT_EQ(spans[0].start_ns, 2u);
  EXPECT_EQ(spans[1].start_ns, 3u);
  EXPECT_EQ(spans[2].start_ns, 4u);
}

TEST(Tracer, ParentStackIsPerThread) {
  ManualClock clock(0);
  Tracer tracer(8, clock);
  const Span outer(&tracer, "main_thread_root");
  std::thread worker([&] {
    // A span on another thread must NOT pick up this thread-unrelated
    // open span as its parent.
    const Span span(&tracer, "worker_root");
  });
  worker.join();
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "worker_root");
  EXPECT_EQ(spans[0].parent_id, 0u);
}

TEST(Tracer, JsonDump) {
  ManualClock clock(100);
  Tracer tracer(4, clock);
  {
    const Span span(&tracer, "work");
    clock.advance(11);
  }
  const std::string json = to_json(tracer.snapshot());
  EXPECT_NE(json.find("\"name\": \"work\""), std::string::npos);
  EXPECT_NE(json.find("\"start_ns\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"end_ns\": 111"), std::string::npos);
  EXPECT_EQ(to_json(std::vector<SpanRecord>{}), "[]\n");
}

}  // namespace
}  // namespace confcall::support
