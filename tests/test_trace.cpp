// Unit tests for the span tracer (support/trace.h): RAII timing against
// a ManualClock, parent linkage through the thread_local stack, ring
// eviction, null-tracer no-ops, the deterministic 1-in-N SamplingTracer
// (whole-tree suppression, wraparound, thread-pool integrity), and the
// JSON / trace_event dumps.
#include "support/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/thread_pool.h"

namespace confcall::support {
namespace {

TEST(Tracer, RejectsZeroCapacity) {
  EXPECT_THROW(Tracer tracer(0), std::invalid_argument);
}

TEST(Tracer, NullTracerSpansAreFreeNoOps) {
  const Span span(nullptr, "nothing");
  EXPECT_EQ(span.id(), 0u);
}

TEST(Tracer, SpanRecordsManualClockBounds) {
  ManualClock clock(1'000);
  Tracer tracer(8, clock);
  {
    const Span span(&tracer, "work");
    clock.advance(250);
  }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].start_ns, 1'000u);
  EXPECT_EQ(spans[0].end_ns, 1'250u);
  EXPECT_EQ(spans[0].duration_ns(), 250u);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(Tracer, NestedSpansLinkToParent) {
  ManualClock clock(0);
  Tracer tracer(8, clock);
  std::uint64_t outer_id = 0;
  {
    const Span outer(&tracer, "locate");
    outer_id = outer.id();
    clock.advance(10);
    {
      const Span inner(&tracer, "plan");
      clock.advance(5);
    }
    {
      const Span inner(&tracer, "page_rounds");
      clock.advance(7);
    }
  }
  // Children close (and record) before the parent: plan, page_rounds,
  // locate, oldest first.
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "plan");
  EXPECT_STREQ(spans[1].name, "page_rounds");
  EXPECT_STREQ(spans[2].name, "locate");
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[1].parent_id, outer_id);
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_EQ(spans[2].span_id, outer_id);
  EXPECT_EQ(spans[0].start_ns, 10u);
  EXPECT_EQ(spans[0].end_ns, 15u);
  EXPECT_EQ(spans[2].duration_ns(), 22u);
}

TEST(Tracer, RingEvictsOldestAndCountsAll) {
  ManualClock clock(0);
  Tracer tracer(3, clock);
  for (int i = 0; i < 5; ++i) {
    const Span span(&tracer, i % 2 == 0 ? "even" : "odd");
    clock.advance(1);
  }
  EXPECT_EQ(tracer.recorded(), 5u);
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Oldest-first window over the last three spans (indices 2, 3, 4).
  EXPECT_EQ(spans[0].start_ns, 2u);
  EXPECT_EQ(spans[1].start_ns, 3u);
  EXPECT_EQ(spans[2].start_ns, 4u);
}

TEST(Tracer, ParentStackIsPerThread) {
  ManualClock clock(0);
  Tracer tracer(8, clock);
  const Span outer(&tracer, "main_thread_root");
  std::thread worker([&] {
    // A span on another thread must NOT pick up this thread-unrelated
    // open span as its parent.
    const Span span(&tracer, "worker_root");
  });
  worker.join();
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "worker_root");
  EXPECT_EQ(spans[0].parent_id, 0u);
}

TEST(SamplingTracer, RejectsZeroSampleRateAndCapacity) {
  EXPECT_THROW(SamplingTracer tracer(0), std::invalid_argument);
  EXPECT_THROW(SamplingTracer tracer(4, 0), std::invalid_argument);
}

TEST(SamplingTracer, KeepsExactlyOneInN) {
  ManualClock clock(0);
  SamplingTracer tracer(4, 64, clock);
  for (int i = 0; i < 16; ++i) {
    const Span span(&tracer, "root");
    clock.advance(1);
  }
  // Deterministic stride: roots 0, 4, 8, 12 of the 16 are kept.
  EXPECT_EQ(tracer.roots_seen(), 16u);
  EXPECT_EQ(tracer.roots_sampled(), 4u);
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].start_ns, 0u);
  EXPECT_EQ(spans[1].start_ns, 4u);
  EXPECT_EQ(spans[2].start_ns, 8u);
  EXPECT_EQ(spans[3].start_ns, 12u);
}

TEST(SamplingTracer, SampleEveryOneKeepsEverything) {
  ManualClock clock(0);
  SamplingTracer tracer(1, 64, clock);
  for (int i = 0; i < 5; ++i) {
    const Span span(&tracer, "root");
  }
  EXPECT_EQ(tracer.roots_sampled(), 5u);
  EXPECT_EQ(tracer.recorded(), 5u);
}

TEST(SamplingTracer, TracesAreNeverTorn) {
  // The sampling decision is made once, at the root: children of a kept
  // root are all kept, children of a dropped root are all dropped — a
  // retained trace is always a complete tree.
  ManualClock clock(0);
  SamplingTracer tracer(2, 64, clock);
  for (int call = 0; call < 6; ++call) {
    const Span locate(&tracer, "locate");
    clock.advance(1);
    {
      const Span plan(&tracer, "plan");
      {
        const Span inner(&tracer, "dp");
        clock.advance(1);
      }
    }
    const Span pages(&tracer, "page_rounds");
    clock.advance(1);
  }
  // Calls 0, 2, 4 are kept, each contributing the full 4-span tree.
  EXPECT_EQ(tracer.roots_seen(), 6u);
  EXPECT_EQ(tracer.roots_sampled(), 3u);
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 12u);
  std::set<std::uint64_t> roots;
  std::map<std::uint64_t, int> children_of;
  for (const SpanRecord& span : spans) {
    if (span.parent_id == 0) {
      EXPECT_STREQ(span.name, "locate");
      roots.insert(span.span_id);
    }
  }
  EXPECT_EQ(roots.size(), 3u);
  for (const SpanRecord& span : spans) {
    if (span.parent_id == 0) continue;
    // Every non-root span hangs off a kept locate (directly or through
    // the kept plan span) — never off a dropped trace.
    const bool parent_present =
        std::any_of(spans.begin(), spans.end(), [&](const SpanRecord& other) {
          return other.span_id == span.parent_id;
        });
    EXPECT_TRUE(parent_present) << span.name;
    ++children_of[span.parent_id];
  }
  // Each kept locate parents plan + page_rounds, each kept plan parents
  // the dp span.
  for (const std::uint64_t root : roots) {
    EXPECT_EQ(children_of[root], 2);
  }
}

TEST(SamplingTracer, SuppressedSpansPayNoClockReads) {
  // An unsampled trace must not touch the clock: with every_ = 2 and two
  // calls, only the first call's spans read the ManualClock.
  ManualClock clock(0);
  SamplingTracer tracer(2, 64, clock);
  {
    const Span kept(&tracer, "kept");
    clock.advance(10);
  }
  {
    const Span dropped(&tracer, "dropped");
    const Span child(&tracer, "dropped_child");
    EXPECT_EQ(dropped.id(), 0u);
    EXPECT_EQ(child.id(), 0u);
  }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "kept");
}

TEST(SamplingTracer, RingWrapsUnderSampling) {
  // Capacity 3, keep 1 in 2 over 10 roots -> 5 recorded, ring keeps the
  // newest 3 (roots 4, 6, 8) and recorded() exposes the drop.
  ManualClock clock(0);
  SamplingTracer tracer(2, 3, clock);
  for (int i = 0; i < 10; ++i) {
    const Span span(&tracer, "root");
    clock.advance(1);
  }
  EXPECT_EQ(tracer.roots_sampled(), 5u);
  EXPECT_EQ(tracer.recorded(), 5u);
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].start_ns, 4u);
  EXPECT_EQ(spans[1].start_ns, 6u);
  EXPECT_EQ(spans[2].start_ns, 8u);
}

TEST(SamplingTracer, ThreadPoolWorkersKeepTreesIntact) {
  // Spans opened concurrently on thread-pool workers: the suppressed
  // depth and parent stack are thread-local, so every kept trace is a
  // complete root+child pair and exactly one trace per N roots survives
  // in total (arrival order decides which).
  SamplingTracer tracer(4, 4096);
  const ThreadPool pool(4);
  constexpr std::size_t kCalls = 400;
  pool.parallel_for(kCalls, [&](std::size_t) {
    const Span root(&tracer, "locate");
    const Span child(&tracer, "plan");
  });
  EXPECT_EQ(tracer.roots_seen(), kCalls);
  EXPECT_EQ(tracer.roots_sampled(), kCalls / 4);
  const std::vector<SpanRecord> spans = tracer.snapshot();
  EXPECT_EQ(spans.size(), 2 * (kCalls / 4));
  std::set<std::uint64_t> root_ids;
  for (const SpanRecord& span : spans) {
    if (span.parent_id == 0) {
      EXPECT_STREQ(span.name, "locate");
      root_ids.insert(span.span_id);
    }
  }
  EXPECT_EQ(root_ids.size(), kCalls / 4);
  for (const SpanRecord& span : spans) {
    if (span.parent_id == 0) continue;
    EXPECT_STREQ(span.name, "plan");
    // Each child's parent is one of the kept roots — never a dropped one.
    EXPECT_TRUE(root_ids.count(span.parent_id) == 1) << span.parent_id;
  }
}

TEST(Tracer, JsonDump) {
  ManualClock clock(100);
  Tracer tracer(4, clock);
  {
    const Span span(&tracer, "work");
    clock.advance(11);
  }
  const std::string json = to_json(tracer.snapshot());
  EXPECT_NE(json.find("\"name\": \"work\""), std::string::npos);
  EXPECT_NE(json.find("\"start_ns\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"end_ns\": 111"), std::string::npos);
  EXPECT_EQ(to_json(std::vector<SpanRecord>{}), "[]\n");
}

TEST(Tracer, TraceEventJsonDump) {
  ManualClock clock(1'234'567);
  Tracer tracer(4, clock);
  {
    const Span outer(&tracer, "locate");
    clock.advance(2'500);
    const Span inner(&tracer, "plan \"quoted\"");
    clock.advance(499);
  }
  const std::string json = to_trace_event_json(tracer.snapshot());
  // Complete events with microsecond ts/dur carrying full ns precision
  // as fixed three-decimal fractions.
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"locate\", \"cat\": \"confcall\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1234.567"), std::string::npos);   // start
  EXPECT_NE(json.find("\"dur\": 2.999"), std::string::npos);     // locate
  EXPECT_NE(json.find("\"ts\": 1237.067"), std::string::npos);   // plan
  EXPECT_NE(json.find("\"dur\": 0.499"), std::string::npos);
  EXPECT_NE(json.find("plan \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  EXPECT_EQ(to_trace_event_json({}),
            "{\"traceEvents\": [], \"displayTimeUnit\": \"ns\"}\n");
}

}  // namespace
}  // namespace confcall::support
