// Unit tests for the closed-loop SLO controller
// (support/slo_controller.h): option validation, the fixed control-
// period grid under a ManualClock, the AIMD law on both admission
// actuators (including every clamp), anti-windup on thin intervals, the
// pre-breach trend projection, the breaker-cooldown EWMA, the metric
// mirrors, and bit-exact reproducibility of a whole control trajectory.
#include "support/slo_controller.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/metrics.h"
#include "support/overload.h"

namespace confcall::support {
namespace {

constexpr std::uint64_t kRoundNs = 1'000'000;  // 1 ms per paging round

/// One test stand: registry + rounds sensor + admission + controller on
/// a shared ManualClock.
struct Stand {
  explicit Stand(SloOptions options, AdmissionOptions admission_options = {})
      : rounds(registry.histogram("confcall_locate_rounds",
                                  HistogramSpec::integers(16), "rounds")),
        admission(admission_options, clock),
        slo(options, registry, admission, clock, kRoundNs) {}

  /// Feeds `calls` admitted calls of `rounds_used` rounds each and runs
  /// one control step.
  void interval(int calls, double rounds_used) {
    for (int i = 0; i < calls; ++i) rounds.observe(rounds_used);
    slo.step();
  }

  MetricRegistry registry;
  ManualClock clock;
  Histogram rounds;
  AdmissionController admission;
  SloController slo;
};

SloOptions test_options() {
  SloOptions options;
  options.target_p99_ns = 4'000'000;  // 4 ms
  options.control_period_ns = 100'000'000;
  options.min_interval_calls = 4;
  return options;
}

TEST(SloOptions, ValidatesEveryKnob) {
  EXPECT_NO_THROW(SloOptions{}.validate());
  SloOptions options;
  options.target_p99_ns = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.control_period_ns = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.additive_increase = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.multiplicative_decrease = 1.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.min_refill_per_sec = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.min_refill_per_sec = 10.0;
  options.max_refill_per_sec = 1.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.degrade_step = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.min_interval_calls = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.breach_horizon_periods = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.recovery_ewma_alpha = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.cooldown_recovery_multiplier = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.min_cooldown_ns = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.min_cooldown_ns = 10;
  options.max_cooldown_ns = 1;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(SloController, RejectsZeroRoundDuration) {
  MetricRegistry registry;
  ManualClock clock;
  AdmissionController admission(AdmissionOptions{}, clock);
  EXPECT_THROW(
      SloController(test_options(), registry, admission, clock, 0),
      std::invalid_argument);
}

TEST(SloController, MaybeStepLandsOnThePeriodGrid) {
  Stand stand(test_options());
  // Not yet: the first boundary is one full period after construction.
  stand.clock.advance(99'000'000);
  EXPECT_FALSE(stand.slo.maybe_step());
  EXPECT_EQ(stand.slo.control_steps(), 0u);
  // Crossing the boundary runs exactly one step, however late the poll.
  stand.clock.advance(1'000'000);
  EXPECT_TRUE(stand.slo.maybe_step());
  EXPECT_EQ(stand.slo.control_steps(), 1u);
  EXPECT_FALSE(stand.slo.maybe_step());
  // A poll that skips several boundaries collapses them into ONE step
  // and re-anchors on the grid (multiples of the period), so the number
  // of steps depends on boundaries crossed, not poll cadence.
  stand.clock.advance(250'000'000);  // now at t=350ms, boundaries 200, 300
  EXPECT_TRUE(stand.slo.maybe_step());
  EXPECT_EQ(stand.slo.control_steps(), 2u);
  EXPECT_FALSE(stand.slo.maybe_step());
  stand.clock.advance(50'000'000);  // t=400ms: the next grid point
  EXPECT_TRUE(stand.slo.maybe_step());
  EXPECT_EQ(stand.slo.control_steps(), 3u);
}

TEST(SloController, AimdCutsOnBreachAndRecoversInSlo) {
  Stand stand(test_options());
  const AdmissionOptions start = stand.admission.options();
  ASSERT_DOUBLE_EQ(start.refill_per_sec, 64.0);
  ASSERT_DOUBLE_EQ(start.degraded_below, 0.5);

  // Breached interval (p99 = 8 ms > 4 ms): the token rate halves and
  // degradation starts one step earlier — and both land on the
  // admission controller, not just the controller's mirror.
  stand.interval(8, 8.0);
  EXPECT_EQ(stand.slo.slo_health(), SloHealth::kBreached);
  EXPECT_EQ(stand.slo.breaches(), 1u);
  EXPECT_EQ(stand.slo.observed_p99_ns(), 8 * kRoundNs);
  EXPECT_DOUBLE_EQ(stand.slo.refill_per_sec(), 32.0);
  EXPECT_DOUBLE_EQ(stand.slo.degrade_threshold(), 0.58);
  EXPECT_DOUBLE_EQ(stand.admission.options().refill_per_sec, 32.0);
  EXPECT_DOUBLE_EQ(stand.admission.options().degraded_below, 0.58);

  stand.interval(8, 8.0);
  EXPECT_DOUBLE_EQ(stand.slo.refill_per_sec(), 16.0);

  // In-SLO intervals recover additively (+8/s per period) and relax the
  // degrade threshold back down.
  stand.interval(8, 1.0);
  EXPECT_EQ(stand.slo.slo_health(), SloHealth::kOk);
  EXPECT_DOUBLE_EQ(stand.slo.refill_per_sec(), 24.0);
  EXPECT_DOUBLE_EQ(stand.admission.options().refill_per_sec, 24.0);
  EXPECT_NEAR(stand.slo.degrade_threshold(), 0.58, 1e-12);
}

TEST(SloController, ActuatorsClampToTheirRanges) {
  SloOptions options = test_options();
  options.min_refill_per_sec = 10.0;
  options.max_refill_per_sec = 80.0;
  Stand stand(options);
  const AdmissionOptions start = stand.admission.options();

  // Keep breaching: the rate floors at min_refill_per_sec and the
  // degrade threshold ceilings just under healthy_above, so the
  // admission hysteresis chain's validation keeps holding.
  for (int i = 0; i < 12; ++i) stand.interval(8, 8.0);
  EXPECT_DOUBLE_EQ(stand.slo.refill_per_sec(), 10.0);
  EXPECT_LT(stand.slo.degrade_threshold(), start.healthy_above);
  EXPECT_GT(stand.slo.degrade_threshold(), start.healthy_above - 0.01);

  // Keep meeting the SLO: the rate caps at max_refill_per_sec and the
  // threshold floors at recover_above.
  for (int i = 0; i < 20; ++i) stand.interval(8, 1.0);
  EXPECT_DOUBLE_EQ(stand.slo.refill_per_sec(), 80.0);
  EXPECT_DOUBLE_EQ(stand.slo.degrade_threshold(), start.recover_above);
  EXPECT_DOUBLE_EQ(stand.admission.options().degraded_below,
                   start.recover_above);
}

TEST(SloController, ThinIntervalsHoldEveryActuator) {
  Stand stand(test_options());
  stand.interval(8, 8.0);  // establish a breach first
  const double refill = stand.slo.refill_per_sec();
  const double degrade = stand.slo.degrade_threshold();

  // Three calls < min_interval_calls (4): too thin to estimate a p99.
  // The step counts but neither actuator nor the verdict moves — an
  // idle window must not ramp the rate back up (anti-windup) and the
  // standing breached signal must not be erased.
  stand.interval(3, 1.0);
  EXPECT_EQ(stand.slo.control_steps(), 2u);
  EXPECT_DOUBLE_EQ(stand.slo.refill_per_sec(), refill);
  EXPECT_DOUBLE_EQ(stand.slo.degrade_threshold(), degrade);
  EXPECT_EQ(stand.slo.slo_health(), SloHealth::kBreached);
  EXPECT_EQ(stand.slo.observed_p99_ns(), 8 * kRoundNs);
}

TEST(SloController, PreBreachProjectionFlagsDegrading) {
  Stand stand(test_options());  // horizon = 3 periods
  stand.interval(8, 1.0);
  EXPECT_EQ(stand.slo.slo_health(), SloHealth::kOk);

  // p99 2 ms, slope +1 ms/period, projected 2 + 3*1 = 5 ms > 4 ms:
  // degrading, while the measured p99 is still within SLO. The degrade
  // threshold leans on the brake; the token rate is NOT cut.
  const double refill_before = stand.slo.refill_per_sec();
  const double degrade_before = stand.slo.degrade_threshold();
  stand.interval(8, 2.0);
  EXPECT_EQ(stand.slo.slo_health(), SloHealth::kDegrading);
  EXPECT_EQ(stand.slo.pre_breach_signals(), 1u);
  EXPECT_EQ(stand.slo.breaches(), 0u);
  EXPECT_DOUBLE_EQ(stand.slo.refill_per_sec(), refill_before);
  EXPECT_NEAR(stand.slo.degrade_threshold(), degrade_before + 0.08, 1e-12);

  // A flat trend at the same safe level clears the signal.
  stand.interval(8, 2.0);
  EXPECT_EQ(stand.slo.slo_health(), SloHealth::kOk);
  EXPECT_EQ(stand.slo.pre_breach_signals(), 1u);
}

TEST(SloController, BreakerCooldownTracksRecoveryEwma) {
  SloOptions options = test_options();
  options.min_cooldown_ns = 1'000'000;
  Stand stand(options);
  CircuitBreakerOptions breaker_options;  // cooldown 100 ms, min_samples 4
  CircuitBreaker breaker(breaker_options, stand.clock);
  stand.slo.add_breaker(&breaker);
  EXPECT_EQ(stand.slo.breaker_cooldown_ns(), 0u);

  // Trip, wait out the cooldown, recover on the first probe: the
  // observed recovery is ~cooldown (100 ms), and the controller derives
  // the new cooldown = 0.5 * EWMA = 50 ms on every attached breaker.
  for (int i = 0; i < 4; ++i) breaker.record_failure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  stand.clock.advance(100'000'000);
  ASSERT_TRUE(breaker.allow());  // half-open probe
  breaker.record_success();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_EQ(breaker.recoveries(), 1u);
  stand.slo.step();
  EXPECT_EQ(stand.slo.breaker_cooldown_ns(), 50'000'000u);

  // Second episode under the shorter cooldown, again first-probe: the
  // sample is ~50 ms, EWMA = 0.3*50 + 0.7*100 = 85 ms, cooldown 42.5 ms
  // — the loop probes downward when recoveries complete immediately.
  for (int i = 0; i < 4; ++i) breaker.record_failure();
  stand.clock.advance(50'000'000);
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  stand.slo.step();
  EXPECT_EQ(stand.slo.breaker_cooldown_ns(), 42'500'000u);
}

TEST(SloController, BindMetricsMirrorsSensorAndActuators) {
  Stand stand(test_options());
  stand.slo.bind_metrics(stand.registry);
  const RegistrySnapshot initial = stand.registry.snapshot();
  const MetricSnapshot* target = initial.find("confcall_slo_target_p99_ns");
  ASSERT_NE(target, nullptr);
  EXPECT_DOUBLE_EQ(target->gauge_value, 4'000'000.0);

  stand.interval(8, 8.0);
  const RegistrySnapshot after = stand.registry.snapshot();
  EXPECT_DOUBLE_EQ(after.find("confcall_slo_observed_p99_ns")->gauge_value,
                   8'000'000.0);
  EXPECT_DOUBLE_EQ(after.find("confcall_slo_refill_per_sec")->gauge_value,
                   stand.slo.refill_per_sec());
  EXPECT_DOUBLE_EQ(
      after.find("confcall_slo_degrade_threshold")->gauge_value,
      stand.slo.degrade_threshold());
  EXPECT_DOUBLE_EQ(after.find("confcall_slo_health")->gauge_value, 2.0);
  EXPECT_EQ(after.find("confcall_slo_control_steps_total")->counter_value,
            1u);
  EXPECT_EQ(after.find("confcall_slo_breaches_total")->counter_value, 1u);
}

TEST(SloController, TrajectoryIsBitReproducible) {
  // The same driven sequence must leave two independent stands in
  // bit-identical states: the E17 determinism gate leans on this.
  const auto drive = [](Stand& stand) {
    const int loads[] = {8, 8, 12, 3, 8, 20, 8, 8, 5, 16};
    const double rounds[] = {1, 3, 8, 8, 2, 1, 6, 8, 1, 2};
    for (int i = 0; i < 10; ++i) {
      stand.clock.advance(100'000'000);
      for (int c = 0; c < loads[i]; ++c) stand.rounds.observe(rounds[i]);
      (void)stand.slo.maybe_step();
    }
  };
  Stand a(test_options());
  Stand b(test_options());
  drive(a);
  drive(b);
  EXPECT_EQ(a.slo.control_steps(), b.slo.control_steps());
  EXPECT_EQ(a.slo.breaches(), b.slo.breaches());
  EXPECT_EQ(a.slo.pre_breach_signals(), b.slo.pre_breach_signals());
  EXPECT_EQ(a.slo.observed_p99_ns(), b.slo.observed_p99_ns());
  EXPECT_EQ(a.slo.slo_health(), b.slo.slo_health());
  // Bit-identical doubles, not just approximately equal.
  EXPECT_EQ(a.slo.refill_per_sec(), b.slo.refill_per_sec());
  EXPECT_EQ(a.slo.degrade_threshold(), b.slo.degrade_threshold());
}

TEST(SloControllerState, SaveRestoreReappliesActuators) {
  // Converge one stand to a non-default operating point, carry its
  // save_state() into a fresh stand, and the fresh stand's actuators —
  // including the admission controller itself, not just the mirror —
  // must land on the same position without re-paying the transient.
  Stand warm(test_options());
  for (int i = 0; i < 3; ++i) warm.interval(8, 8.0);  // 64 -> 8 /s
  warm.interval(8, 1.0);                              // recover to 16 /s
  const std::string payload = warm.slo.save_state();

  Stand fresh(test_options());
  ASSERT_DOUBLE_EQ(fresh.slo.refill_per_sec(), 64.0);
  ASSERT_TRUE(fresh.slo.restore_state(payload, SloController::kStateVersion));
  EXPECT_EQ(fresh.slo.refill_per_sec(), warm.slo.refill_per_sec());
  EXPECT_EQ(fresh.slo.degrade_threshold(), warm.slo.degrade_threshold());
  EXPECT_EQ(fresh.slo.observed_p99_ns(), warm.slo.observed_p99_ns());
  EXPECT_DOUBLE_EQ(fresh.admission.options().refill_per_sec,
                   warm.slo.refill_per_sec());
  EXPECT_DOUBLE_EQ(fresh.admission.options().degraded_below,
                   warm.slo.degrade_threshold());

  // Round trip is exact: the restored controller re-saves identical
  // bytes (the E19 byte-identity gate leans on this).
  EXPECT_EQ(fresh.slo.save_state(), payload);
}

TEST(SloControllerState, RestoreClampsIntoThisBuildsRanges) {
  // A checkpoint converged under wide limits must not install an
  // out-of-range actuator into a build configured with narrow ones.
  Stand wide(test_options());
  for (int i = 0; i < 25; ++i) wide.interval(8, 1.0);  // ramp to the cap
  ASSERT_GT(wide.slo.refill_per_sec(), 100.0);
  const std::string payload = wide.slo.save_state();

  SloOptions narrow = test_options();
  narrow.min_refill_per_sec = 10.0;
  narrow.max_refill_per_sec = 80.0;
  Stand stand(narrow);
  ASSERT_TRUE(stand.slo.restore_state(payload, SloController::kStateVersion));
  EXPECT_DOUBLE_EQ(stand.slo.refill_per_sec(), 80.0);
  EXPECT_DOUBLE_EQ(stand.admission.options().refill_per_sec, 80.0);
}

TEST(SloControllerState, RestoreRejectsDamageWithoutSideEffects) {
  Stand donor(test_options());
  donor.interval(8, 8.0);
  const std::string good = donor.slo.save_state();

  Stand stand(test_options());
  const double refill_before = stand.slo.refill_per_sec();

  // Version skew.
  EXPECT_FALSE(
      stand.slo.restore_state(good, SloController::kStateVersion + 1));
  // Truncated at every prefix length.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(stand.slo.restore_state(
        std::string_view(good).substr(0, len), SloController::kStateVersion))
        << "prefix " << len;
  }
  // Trailing garbage.
  EXPECT_FALSE(stand.slo.restore_state(good + "x",
                                       SloController::kStateVersion));
  // Non-finite actuator positions (NaN refill).
  std::string nan_payload = good;
  StateWriter nan_writer;
  nan_writer.put_f64(std::numeric_limits<double>::quiet_NaN());
  nan_payload.replace(0, 8, nan_writer.bytes());
  EXPECT_FALSE(stand.slo.restore_state(nan_payload,
                                       SloController::kStateVersion));

  // Every rejection left the controller untouched.
  EXPECT_DOUBLE_EQ(stand.slo.refill_per_sec(), refill_before);
  EXPECT_EQ(stand.slo.control_steps(), 0u);

  // And the undamaged payload still restores.
  EXPECT_TRUE(stand.slo.restore_state(good, SloController::kStateVersion));
}

// Fleet-wide sensing: the controller reads the LABEL-SUMMED rounds
// family (RegistrySnapshot::sum_by), so a registry whose observations
// are split across {shard="..."} series must drive the exact same
// control trajectory as one unlabelled series holding the same
// observations. This is the unit-level half of the E21 sharding-
// invariance gate.
TEST(SloController, SensesLabelSummedFleetWindow) {
  Stand flat(test_options());

  MetricRegistry registry;
  ManualClock clock;
  std::vector<Histogram> shards;
  for (int s = 0; s < 3; ++s) {
    shards.push_back(registry.histogram(
        "confcall_locate_rounds", HistogramSpec::integers(16), "rounds",
        {{"shard", std::to_string(s)}}));
  }
  AdmissionController admission(AdmissionOptions{}, clock);
  SloController slo(test_options(), registry, admission, clock, kRoundNs);

  const auto drive = [&](int calls, double rounds_used) {
    flat.interval(calls, rounds_used);
    for (int i = 0; i < calls; ++i) shards[i % 3].observe(rounds_used);
    slo.step();
    EXPECT_DOUBLE_EQ(slo.refill_per_sec(), flat.slo.refill_per_sec());
    EXPECT_DOUBLE_EQ(slo.degrade_threshold(),
                     flat.slo.degrade_threshold());
    EXPECT_EQ(slo.breaches(), flat.slo.breaches());
    EXPECT_EQ(slo.pre_breach_signals(), flat.slo.pre_breach_signals());
  };
  drive(32, 8.0);  // 8 ms p99 against the 4 ms target: breach, cut
  drive(32, 8.0);  // still breaching: cut again
  drive(32, 1.0);  // back inside SLO: additive recovery
  drive(32, 1.0);
  EXPECT_GT(slo.breaches(), 0u);
  EXPECT_EQ(slo.control_steps(), flat.slo.control_steps());
}

}  // namespace
}  // namespace confcall::support
