// Tests for the table printer and CLI parser.
#include <gtest/gtest.h>

#include <stdexcept>

#include "support/cli.h"
#include "support/table.h"

namespace confcall::support {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.set_align(0, Align::kLeft);
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  // Right-aligned numbers: "22" ends flush with header column.
  const auto line_end = text.find('\n');
  ASSERT_NE(line_end, std::string::npos);
  // Every data line has the same width as the header line.
  std::size_t prev = 0;
  std::size_t width = line_end;
  std::size_t pos;
  while ((pos = text.find('\n', prev)) != std::string::npos) {
    EXPECT_EQ(pos - prev, width);
    prev = pos + 1;
  }
}

TEST(TextTable, ValidatesShape) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.set_align(2, Align::kLeft), std::invalid_argument);
}

TEST(TextTable, SeparatorRendersRule) {
  TextTable table({"x"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string text = table.to_string();
  // Header rule plus explicit separator -> at least two dashed lines.
  std::size_t dashes = 0;
  std::size_t pos = 0;
  while ((pos = text.find("-", pos)) != std::string::npos) {
    ++dashes;
    pos += 1;
  }
  EXPECT_GE(dashes, 2u);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable table({"name", "note"});
  table.add_row({"plain", "ok"});
  table.add_separator();  // dropped in CSV
  table.add_row({"with,comma", "with \"quote\""});
  const std::string csv = table.to_csv();
  EXPECT_EQ(csv,
            "name,note\n"
            "plain,ok\n"
            "\"with,comma\",\"with \"\"quote\"\"\"\n");
}

TEST(TextTable, CsvHasOneLinePerDataRow) {
  TextTable table({"x", "y"});
  for (int i = 0; i < 5; ++i) {
    table.add_row({std::to_string(i), std::to_string(i * i)});
  }
  const std::string csv = table.to_csv();
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 6);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(std::size_t{42}), "42");
  EXPECT_EQ(TextTable::fmt(-7LL), "-7");
}

TEST(Cli, ParsesBothFlagForms) {
  const char* argv[] = {"prog", "--alpha=1.5", "--beta", "7", "--verbose"};
  const Cli cli(5, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get_string("missing", "fallback"), "fallback");
}

TEST(Cli, BooleanValues) {
  const char* argv[] = {"prog", "--a=true", "--b=false", "--c=1"};
  const Cli cli(4, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Cli(2, argv), std::invalid_argument);
}

TEST(Cli, TracksUnusedFlags) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  const Cli cli(3, argv);
  (void)cli.get_int("used", 0);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, HasMarksFlagUsed) {
  const char* argv[] = {"prog", "--present"};
  const Cli cli(2, argv);
  EXPECT_TRUE(cli.has("present"));
  EXPECT_FALSE(cli.has("absent"));
  EXPECT_TRUE(cli.unused().empty());
}

}  // namespace
}  // namespace confcall::support
