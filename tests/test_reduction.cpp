// Tests for the Section 3 NP-hardness machinery: partition solvers, the
// Lemma 3.2 transformation (both directions, exact arithmetic), the
// Lemma 3.4 constants, and the Lemma 3.7 Partition -> Quasipartition2
// reduction.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/evaluator.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "reduction/multipartition.h"
#include "reduction/partition.h"
#include "reduction/reduce.h"

namespace confcall::reduction {
namespace {

using core::CellId;
using prob::BigInt;
using prob::Rational;

// ---------------------------------------------------------------- partition

TEST(SubsetSum, FindsWitness) {
  const std::int64_t sizes[] = {3, 1, 4, 1, 5};
  const auto witness = solve_cardinality_subset_sum(sizes, 2, 8);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->size(), 2u);
  std::int64_t total = 0;
  for (const std::size_t idx : *witness) total += sizes[idx];
  EXPECT_EQ(total, 8);
}

TEST(SubsetSum, DetectsInfeasible) {
  const std::int64_t sizes[] = {2, 4, 6};
  EXPECT_FALSE(solve_cardinality_subset_sum(sizes, 2, 5).has_value());
  EXPECT_FALSE(solve_cardinality_subset_sum(sizes, 4, 6).has_value());
  EXPECT_FALSE(solve_cardinality_subset_sum(sizes, 1, -1).has_value());
}

TEST(SubsetSum, HandlesZerosAndEmptyTarget) {
  const std::int64_t sizes[] = {0, 0, 3};
  const auto witness = solve_cardinality_subset_sum(sizes, 2, 0);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->size(), 2u);
}

TEST(SubsetSum, RejectsNegativeSizesAndHugeWork) {
  const std::int64_t negative[] = {1, -2};
  EXPECT_THROW(solve_cardinality_subset_sum(negative, 1, 1),
               std::invalid_argument);
  const std::int64_t big[] = {1000000000, 1000000000};
  EXPECT_THROW(
      solve_cardinality_subset_sum(big, 1, 1000000000, /*work_limit=*/1000),
      std::invalid_argument);
}

TEST(Partition, ClassicYesInstance) {
  const std::int64_t sizes[] = {3, 1, 1, 3};
  const auto witness = solve_partition(sizes);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->size(), 2u);
  std::int64_t total = 0;
  for (const std::size_t idx : *witness) total += sizes[idx];
  EXPECT_EQ(total, 4);
}

TEST(Partition, NoInstances) {
  const std::int64_t odd_total[] = {1, 1, 1, 2};
  EXPECT_FALSE(solve_partition(odd_total).has_value());
  const std::int64_t odd_count[] = {2, 2, 2};
  EXPECT_FALSE(solve_partition(odd_count).has_value());
  const std::int64_t skewed[] = {10, 1, 1, 2};  // even total, no equal split
  EXPECT_FALSE(solve_partition(skewed).has_value());
}

TEST(Quasipartition1, YesInstance) {
  // c = 6, need |I| = 4 summing to half of 12 = 6: {1,1,2,2}.
  const std::int64_t sizes[] = {1, 1, 2, 2, 3, 3};
  const auto witness = solve_quasipartition1(sizes);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->size(), 4u);
  std::int64_t total = 0;
  for (const std::size_t idx : *witness) total += sizes[idx];
  EXPECT_EQ(total, 6);
}

TEST(Quasipartition1, NoInstance) {
  // Total 18, half 9; any 4 of {9,9,0,0,0,0} sums to 0, 9 or 18 but the
  // witness must also have cardinality 4: {9,0,0,0} works -> actually a
  // YES. Use strictly unbalanced sizes instead.
  const std::int64_t sizes[] = {14, 1, 1, 1, 1, 2};
  EXPECT_FALSE(solve_quasipartition1(sizes).has_value());
}

TEST(Quasipartition1, ValidatesCount) {
  const std::int64_t sizes[] = {1, 2};
  EXPECT_THROW(solve_quasipartition1(sizes), std::invalid_argument);
}

TEST(Quasipartition1, GeneratedYesInstancesSolve) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto sizes = make_quasipartition1_yes_instance(9, 20, seed);
    ASSERT_EQ(sizes.size(), 9u);
    EXPECT_TRUE(solve_quasipartition1(sizes).has_value()) << "seed=" << seed;
  }
}

// ------------------------------------------------------------- Lemma 3.1/3.2

TEST(Lemma31, MaximizedAtHalfAndTwoThirdsC) {
  const std::size_t c = 9;
  const Rational best = lemma31_objective(c, Rational(1, 2), Rational(6));
  // Check against the closed form 4c^3/27 - 2c^2/9 + c/12.
  const Rational closed_form =
      Rational(4 * 9 * 9 * 9, 27) - Rational(2 * 9 * 9, 9) + Rational(9, 12);
  EXPECT_EQ(best, closed_form);
  // Any perturbed point scores strictly less.
  for (const auto& [x, y] :
       {std::pair{Rational(1, 3), Rational(6)},
        std::pair{Rational(1, 2), Rational(5)},
        std::pair{Rational(2, 3), Rational(7)},
        std::pair{Rational(0), Rational(6)},
        std::pair{Rational(1), Rational(3)}}) {
    EXPECT_LT(lemma31_objective(c, x, y), best)
        << "x=" << x.to_string() << " y=" << y.to_string();
  }
}

TEST(Reduce32, ProbabilitiesFormValidInstance) {
  const std::int64_t sizes[] = {1, 2, 3, 4, 5, 6};
  const auto reduction = reduce_quasipartition1_to_conference_call(sizes);
  EXPECT_EQ(reduction.instance.num_devices(), 2u);
  EXPECT_EQ(reduction.instance.num_cells(), 6u);
  // Spot-check the formulas for cell 0 (s = 1, S = 21, c = 6):
  // p_0 = (1/5.5)(1/21 + 1 - 1/4) = (2/11)(1/21 + 3/4)
  const Rational p0 = Rational(2, 11) * (Rational(1, 21) + Rational(3, 4));
  EXPECT_EQ(reduction.instance.prob(0, 0), p0);
  // q_0 = (1/5)(1 - 1/21) = 4/21.
  EXPECT_EQ(reduction.instance.prob(1, 0), Rational(4, 21));
}

TEST(Reduce32, ValidatesInput) {
  const std::int64_t not_multiple[] = {1, 2, 3, 4};
  EXPECT_THROW(reduce_quasipartition1_to_conference_call(not_multiple),
               std::invalid_argument);
  const std::int64_t negative[] = {1, -1, 3};
  EXPECT_THROW(reduce_quasipartition1_to_conference_call(negative),
               std::invalid_argument);
  const std::int64_t zeros[] = {0, 0, 0};
  EXPECT_THROW(reduce_quasipartition1_to_conference_call(zeros),
               std::invalid_argument);
  const std::int64_t dominated[] = {6, 0, 0, 0, 0, 0};
  EXPECT_THROW(reduce_quasipartition1_to_conference_call(dominated),
               std::invalid_argument);
}

TEST(Reduce32, YesInstanceAchievesClosedFormOptimum) {
  // {1,1,2,2,3,3}: I = {1,1,2,2} has |I| = 4 = 2c/3 and sum 6 = S/2.
  const std::int64_t sizes[] = {1, 1, 2, 2, 3, 3};
  ASSERT_TRUE(solve_quasipartition1(sizes).has_value());
  const auto reduction = reduce_quasipartition1_to_conference_call(sizes);
  const auto optimum = core::solve_exact_d2_exact(reduction.instance);
  EXPECT_EQ(optimum.expected_paging, reduction.quasipartition_optimum);
  // The optimal first round IS a quasipartition witness.
  EXPECT_EQ(optimum.first_round.size(), 4u);
  std::int64_t witness_sum = 0;
  for (const CellId cell : optimum.first_round) witness_sum += sizes[cell];
  EXPECT_EQ(witness_sum, 6);
}

TEST(Reduce32, NoInstanceStaysStrictlyAboveOptimum) {
  const std::int64_t sizes[] = {14, 1, 1, 1, 1, 2};
  ASSERT_FALSE(solve_quasipartition1(sizes).has_value());
  const auto reduction = reduce_quasipartition1_to_conference_call(sizes);
  const auto optimum = core::solve_exact_d2_exact(reduction.instance);
  EXPECT_GT(optimum.expected_paging, reduction.quasipartition_optimum);
}

TEST(Reduce32, EquivalenceOnGeneratedInstances) {
  // Both directions on a batch of generated yes-instances and hand no-
  // instances: OPT == closed form <=> quasipartition exists.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto sizes = make_quasipartition1_yes_instance(6, 12, seed);
    const auto reduction = reduce_quasipartition1_to_conference_call(sizes);
    const auto optimum = core::solve_exact_d2_exact(reduction.instance);
    EXPECT_EQ(optimum.expected_paging, reduction.quasipartition_optimum)
        << "seed=" << seed;
  }
}

// ----------------------------------------------------------- Lemma 3.4/3.7

TEST(MultipartitionParams, TwoByTwoMatchesLemma31) {
  const auto params = multipartition_params(2, 2);
  ASSERT_EQ(params.alpha.size(), 1u);
  EXPECT_EQ(params.alpha[0], Rational(2, 3));
  EXPECT_EQ(params.beta[1], Rational(2, 3));  // b_1 = 2c/3
  EXPECT_EQ(params.r[0], Rational(2, 3));
  EXPECT_EQ(params.r[1], Rational(1, 3));
  EXPECT_EQ(params.x[0], Rational(1, 3));
  EXPECT_EQ(params.x[1], Rational(2, 3));
  EXPECT_EQ(params.lcm_denominator, BigInt(3));
}

TEST(MultipartitionParams, StructuralInvariants) {
  for (const std::size_t m : {2u, 3u, 4u}) {
    for (const std::size_t d : {2u, 3u, 4u}) {
      const auto params = multipartition_params(m, d);
      // alphas strictly increasing in (0, 1) (paper, proof of Lemma 3.4).
      for (std::size_t k = 0; k < params.alpha.size(); ++k) {
        EXPECT_GT(params.alpha[k], Rational(0));
        EXPECT_LT(params.alpha[k], Rational(1));
        if (k > 0) EXPECT_GT(params.alpha[k], params.alpha[k - 1]);
      }
      // betas strictly increasing from 0 to 1.
      for (std::size_t j = 1; j <= d; ++j) {
        EXPECT_GT(params.beta[j], params.beta[j - 1]);
      }
      EXPECT_EQ(params.beta[d], Rational(1));
      // r and x are positive and sum to 1.
      Rational r_sum, x_sum;
      for (const auto& r : params.r) {
        EXPECT_GT(r, Rational(0));
        r_sum += r;
      }
      for (const auto& x : params.x) {
        EXPECT_GT(x, Rational(0));
        x_sum += x;
      }
      EXPECT_EQ(r_sum, Rational(1));
      EXPECT_EQ(x_sum, Rational(1));
    }
  }
}

TEST(MultipartitionParams, ValidatesArguments) {
  EXPECT_THROW(multipartition_params(1, 2), std::invalid_argument);
  EXPECT_THROW(multipartition_params(2, 1), std::invalid_argument);
}

TEST(QuasipartitionSpec, DerivedFromParams) {
  const auto spec = quasipartition_spec(multipartition_params(2, 2));
  EXPECT_EQ(spec.r_u, Rational(1, 3));
  EXPECT_EQ(spec.r_v, Rational(2, 3));
  EXPECT_EQ(spec.x_u, Rational(2, 3));
  EXPECT_EQ(spec.x_v, Rational(1, 3));
  EXPECT_EQ(spec.M, BigInt(3));
  // u must always carry the smaller group fraction.
  for (const std::size_t m : {2u, 3u}) {
    for (const std::size_t d : {2u, 3u, 4u}) {
      const auto s = quasipartition_spec(multipartition_params(m, d));
      EXPECT_LE(s.r_u, s.r_v);
    }
  }
}

TEST(Lemma37, PartitionYesMapsToQuasipartitionYes) {
  const std::int64_t partition_sizes[] = {3, 1, 1, 3};
  ASSERT_TRUE(solve_partition(partition_sizes).has_value());
  for (const auto& spec :
       {quasipartition1_spec(),
        quasipartition_spec(multipartition_params(2, 2))}) {
    const auto instance =
        reduce_partition_to_quasipartition2(partition_sizes, spec);
    EXPECT_TRUE(solve_quasipartition2(instance).has_value());
  }
}

TEST(Lemma37, PartitionNoMapsToQuasipartitionNo) {
  const std::int64_t partition_sizes[] = {10, 1, 1, 2};
  ASSERT_FALSE(solve_partition(partition_sizes).has_value());
  for (const auto& spec :
       {quasipartition1_spec(),
        quasipartition_spec(multipartition_params(2, 2))}) {
    const auto instance =
        reduce_partition_to_quasipartition2(partition_sizes, spec);
    EXPECT_FALSE(solve_quasipartition2(instance).has_value());
  }
}

TEST(Lemma37, EquivalenceSweep) {
  // Random small Partition instances, checked in both directions against
  // the DP ground truth.
  prob::Rng rng(77);
  const auto spec = quasipartition1_spec();
  for (int iter = 0; iter < 12; ++iter) {
    std::vector<std::int64_t> sizes(6);
    for (auto& s : sizes) s = rng.next_in(1, 9);
    const bool partition_yes = solve_partition(sizes).has_value();
    const auto instance = reduce_partition_to_quasipartition2(sizes, spec);
    const bool quasi_yes = solve_quasipartition2(instance).has_value();
    EXPECT_EQ(partition_yes, quasi_yes) << "iter=" << iter;
  }
}

TEST(Lemma37, InstanceShapeMatchesSpec) {
  const std::int64_t partition_sizes[] = {2, 3, 4, 5, 6, 8};
  const auto spec = quasipartition1_spec();
  const auto instance =
      reduce_partition_to_quasipartition2(partition_sizes, spec);
  // n = M*(r_u + r_v)*h = 3h with h = g = 6 -> 18 sizes.
  EXPECT_EQ(instance.h, 6);
  EXPECT_EQ(instance.sizes.size(), 18u);
  // The two specials are equal (x_u == x_v) and positive.
  const auto n = instance.sizes.size();
  EXPECT_GT(instance.sizes[n - 1], 0);
  EXPECT_EQ(instance.sizes[n - 1], instance.sizes[n - 2]);
}

TEST(Lemma37, ValidatesInput) {
  const auto spec = quasipartition1_spec();
  const std::int64_t odd[] = {1, 2, 3};
  EXPECT_THROW(reduce_partition_to_quasipartition2(odd, spec),
               std::invalid_argument);
  const std::int64_t nonpositive[] = {1, 0};
  EXPECT_THROW(reduce_partition_to_quasipartition2(nonpositive, spec),
               std::invalid_argument);
}

// ----------------------------------------------------------- Section 5 lift

TEST(Lift, ProducesValidLiftedInstance) {
  const core::Instance base(2, 3, {0.5, 0.3, 0.2, 0.1, 0.2, 0.7});
  const core::Instance lifted = lift_two_device_instance(base, 4, 0.999);
  EXPECT_EQ(lifted.num_devices(), 4u);
  EXPECT_EQ(lifted.num_cells(), 4u);
  EXPECT_DOUBLE_EQ(lifted.prob(2, 3), 1.0);
  EXPECT_DOUBLE_EQ(lifted.prob(3, 3), 1.0);
  EXPECT_NEAR(lifted.prob(0, 0), 0.5 * 0.001, 1e-15);
  EXPECT_NEAR(lifted.prob(0, 3), 0.999, 1e-15);
}

TEST(Lift, OptimalFirstRoundIsTheExtraCell) {
  // With a >= 1 - 1/c^2 the optimal (d+1)-round strategy pages the new
  // cell alone first (Section 5's observation).
  const core::Instance base(2, 3, {0.6, 0.3, 0.1, 0.2, 0.3, 0.5});
  const core::Instance lifted = lift_two_device_instance(base, 3, 0.995);
  const auto result = core::solve_exact(lifted, 3);
  EXPECT_EQ(result.strategy.group(0), (std::vector<CellId>{3}));
}

TEST(Lift, ValidatesArguments) {
  const core::Instance base = core::Instance::uniform(2, 3);
  EXPECT_THROW(lift_two_device_instance(base, 1, 0.9),
               std::invalid_argument);
  EXPECT_THROW(lift_two_device_instance(base, 3, 0.0),
               std::invalid_argument);
  EXPECT_THROW(lift_two_device_instance(base, 3, 1.0),
               std::invalid_argument);
  const core::Instance three = core::Instance::uniform(3, 3);
  EXPECT_THROW(lift_two_device_instance(three, 4, 0.9),
               std::invalid_argument);
}

}  // namespace
}  // namespace confcall::reduction
