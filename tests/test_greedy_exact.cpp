// Tests for the exact-rational Fig. 1 planner.
#include "core/greedy_exact.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "prob/rational.h"

namespace confcall::core {
namespace {

using prob::Rational;

RationalInstance small_rational_instance() {
  return RationalInstance(
      2, 5,
      {Rational(3, 10), Rational(1, 5), Rational(1, 5), Rational(1, 5),
       Rational(1, 10),  //
       Rational(1, 10), Rational(2, 5), Rational(1, 5), Rational(1, 5),
       Rational(1, 10)});
}

TEST(GreedyExact, ValidatesArguments) {
  const RationalInstance instance = small_rational_instance();
  EXPECT_THROW(plan_greedy_exact(instance, 0), std::invalid_argument);
  EXPECT_THROW(plan_greedy_exact(instance, 6), std::invalid_argument);
}

TEST(GreedyExact, OrderMatchesDoublePlanner) {
  const RationalInstance instance = small_rational_instance();
  EXPECT_EQ(greedy_cell_order_exact(instance),
            greedy_cell_order(instance.to_double_instance()));
}

TEST(GreedyExact, HardInstancePlannerProducesExactly320Over49) {
  // The paper's Section 4.3 ratio, produced end-to-end by the planner.
  const RationalPlanResult plan =
      plan_greedy_exact(hard_instance_8cells_exact(), 2);
  EXPECT_EQ(plan.expected_paging, Rational(320, 49));
  EXPECT_EQ(plan.strategy.group(0), (std::vector<CellId>{0, 1, 2, 3, 4}));

  const auto optimum = solve_exact_d2_exact(hard_instance_8cells_exact());
  EXPECT_EQ(plan.expected_paging / optimum.expected_paging,
            Rational(320, 317));
}

TEST(GreedyExact, AgreesWithDoublePlannerEverywhere) {
  const RationalInstance instance = small_rational_instance();
  const Instance doubles = instance.to_double_instance();
  for (std::size_t d = 1; d <= 5; ++d) {
    const RationalPlanResult exact = plan_greedy_exact(instance, d);
    const PlanResult approx = plan_greedy(doubles, d);
    EXPECT_EQ(exact.group_sizes, approx.group_sizes) << "d=" << d;
    EXPECT_NEAR(exact.expected_paging.to_double(), approx.expected_paging,
                1e-12)
        << "d=" << d;
  }
}

TEST(GreedyExact, DpIsOptimalOverTheOrderFamilyExactly) {
  // Brute-force all splits of the exact order for d = 3 and compare.
  const RationalInstance instance = small_rational_instance();
  const RationalPlanResult plan = plan_greedy_exact(instance, 3);
  const auto order = greedy_cell_order_exact(instance);
  bool found_equal = false;
  for (std::size_t a = 1; a <= 3; ++a) {
    for (std::size_t b = 1; a + b <= 4; ++b) {
      const std::size_t sizes[] = {a, b, 5 - a - b};
      const Strategy s = Strategy::from_order_and_sizes(order, sizes);
      const Rational ep = expected_paging_exact(instance, s);
      EXPECT_LE(plan.expected_paging, ep) << a << "," << b;
      if (ep == plan.expected_paging) found_equal = true;
    }
  }
  EXPECT_TRUE(found_equal);
}

TEST(GreedyExact, DOneIsBlanket) {
  const RationalInstance instance = small_rational_instance();
  const RationalPlanResult plan = plan_greedy_exact(instance, 1);
  EXPECT_EQ(plan.expected_paging, Rational(5));
}

}  // namespace
}  // namespace confcall::core
