// Unit and property tests for prob::BigInt.
#include "prob/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "prob/rng.h"

namespace confcall::prob {
namespace {

TEST(BigInt, DefaultIsZero) {
  const BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_EQ(zero.signum(), 0);
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_EQ(zero.to_int64(), 0);
  EXPECT_EQ(zero.bit_length(), 0u);
}

TEST(BigInt, Int64RoundTrip) {
  for (const std::int64_t value :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
        std::int64_t{42}, std::int64_t{-42}, std::int64_t{1} << 40,
        -(std::int64_t{1} << 40), INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(BigInt(value).to_int64(), value) << value;
  }
}

TEST(BigInt, Int64MinHandledWithoutOverflow) {
  const BigInt value(INT64_MIN);
  EXPECT_TRUE(value.is_negative());
  EXPECT_EQ(value.to_string(), "-9223372036854775808");
}

TEST(BigInt, ToStringSmall) {
  EXPECT_EQ(BigInt(12345).to_string(), "12345");
  EXPECT_EQ(BigInt(-9).to_string(), "-9");
}

TEST(BigInt, FromStringRoundTrip) {
  const char* const cases[] = {
      "0", "7", "-7", "123456789012345678901234567890",
      "-999999999999999999999999999999999999"};
  for (const char* text : cases) {
    EXPECT_EQ(BigInt::from_string(text).to_string(), text);
  }
}

TEST(BigInt, FromStringAcceptsPlusSign) {
  EXPECT_EQ(BigInt::from_string("+15").to_int64(), 15);
}

TEST(BigInt, FromStringRejectsGarbage) {
  EXPECT_THROW(BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("12a3"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string(" 1"), std::invalid_argument);
}

TEST(BigInt, NegativeZeroNormalizes) {
  EXPECT_FALSE((-BigInt(0)).is_negative());
  EXPECT_EQ(BigInt::from_string("-0").to_string(), "0");
  EXPECT_FALSE((BigInt(5) - BigInt(5)).is_negative());
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  const BigInt b = BigInt::from_string("18446744073709551615");  // 2^64-1
  EXPECT_EQ((b + BigInt(1)).to_string(), "18446744073709551616");
}

TEST(BigInt, SubtractionBorrows) {
  const BigInt a = BigInt::from_string("18446744073709551616");
  EXPECT_EQ((a - BigInt(1)).to_string(), "18446744073709551615");
}

TEST(BigInt, MixedSignArithmetic) {
  EXPECT_EQ((BigInt(10) + BigInt(-4)).to_int64(), 6);
  EXPECT_EQ((BigInt(-10) + BigInt(4)).to_int64(), -6);
  EXPECT_EQ((BigInt(4) - BigInt(10)).to_int64(), -6);
  EXPECT_EQ((BigInt(-4) * BigInt(-5)).to_int64(), 20);
  EXPECT_EQ((BigInt(-4) * BigInt(5)).to_int64(), -20);
}

TEST(BigInt, MultiplicationLarge) {
  const BigInt a = BigInt::from_string("123456789123456789");
  const BigInt b = BigInt::from_string("987654321987654321");
  EXPECT_EQ((a * b).to_string(), "121932631356500531347203169112635269");
}

TEST(BigInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).to_int64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_int64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_int64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).to_int64(), 3);
}

TEST(BigInt, RemainderFollowsDividendSign) {
  EXPECT_EQ((BigInt(7) % BigInt(3)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(3)).to_int64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-3)).to_int64(), 1);
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), std::domain_error);
  EXPECT_THROW(BigInt(1) % BigInt(0), std::domain_error);
}

TEST(BigInt, DivmodIdentityRandomized) {
  Rng rng(2024);
  for (int iter = 0; iter < 300; ++iter) {
    const auto a = static_cast<std::int64_t>(rng.next_u64() >> 2) *
                   (iter % 2 == 0 ? 1 : -1);
    auto b = static_cast<std::int64_t>(rng.next_u64() >> 40);
    if (b == 0) b = 1;
    if (iter % 3 == 0) b = -b;
    BigInt quotient, remainder;
    BigInt::divmod(BigInt(a), BigInt(b), quotient, remainder);
    EXPECT_EQ(quotient.to_int64(), a / b) << a << " / " << b;
    EXPECT_EQ(remainder.to_int64(), a % b) << a << " % " << b;
  }
}

TEST(BigInt, ArithmeticMatchesInt128Randomized) {
  Rng rng(7);
  for (int iter = 0; iter < 300; ++iter) {
    const auto a = static_cast<std::int64_t>(rng.next_u64() >> 8) -
                   (std::int64_t{1} << 55);
    const auto b = static_cast<std::int64_t>(rng.next_u64() >> 8) -
                   (std::int64_t{1} << 55);
    const __int128 product = static_cast<__int128>(a) * b;
    const BigInt big = BigInt(a) * BigInt(b);
    // Reconstruct the reference through decimal text.
    __int128 abs_product = product < 0 ? -product : product;
    std::string text;
    if (abs_product == 0) text = "0";
    while (abs_product != 0) {
      text.insert(text.begin(),
                  static_cast<char>('0' + static_cast<int>(abs_product % 10)));
      abs_product /= 10;
    }
    if (product < 0) text.insert(text.begin(), '-');
    EXPECT_EQ(big.to_string(), text);
    EXPECT_EQ((BigInt(a) + BigInt(b)).to_int64(), a + b);
    EXPECT_EQ((BigInt(a) - BigInt(b)).to_int64(), a - b);
  }
}

TEST(BigInt, DivmodReconstructionForHugeOperands) {
  // 200-bit operands: verify a == q*b + r and |r| < |b| structurally.
  Rng rng(31);
  for (int iter = 0; iter < 50; ++iter) {
    BigInt a(1);
    BigInt b(1);
    for (int limb = 0; limb < 4; ++limb) {
      a = a * BigInt(static_cast<std::int64_t>(rng.next_u64() >> 16)) +
          BigInt(static_cast<std::int64_t>(rng.next_u64() >> 40));
      if (limb < 2) {
        b = b * BigInt(static_cast<std::int64_t>(rng.next_u64() >> 16)) +
            BigInt(static_cast<std::int64_t>(rng.next_u64() >> 40) + 1);
      }
    }
    if (iter % 2 == 0) a = -a;
    if (iter % 3 == 0) b = -b;
    BigInt quotient, remainder;
    BigInt::divmod(a, b, quotient, remainder);
    EXPECT_EQ(quotient * b + remainder, a) << iter;
    EXPECT_LT(remainder.abs(), b.abs()) << iter;
    if (!remainder.is_zero()) {
      EXPECT_EQ(remainder.signum(), a.signum()) << iter;
    }
  }
}

TEST(BigInt, GcdDividesBothHugeOperands) {
  Rng rng(32);
  for (int iter = 0; iter < 20; ++iter) {
    const BigInt base(static_cast<std::int64_t>(rng.next_u64() >> 34) + 2);
    const BigInt a =
        base * BigInt(static_cast<std::int64_t>(rng.next_u64() >> 34) + 1);
    const BigInt b =
        base * BigInt(static_cast<std::int64_t>(rng.next_u64() >> 34) + 1);
    const BigInt g = BigInt::gcd(a, b);
    EXPECT_TRUE((a % g).is_zero());
    EXPECT_TRUE((b % g).is_zero());
    EXPECT_TRUE((g % base).is_zero());  // common factor preserved
  }
}

TEST(BigInt, ComparisonTotalOrder) {
  EXPECT_LT(BigInt(-5), BigInt(-4));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt(5), BigInt::from_string("123456789012345678901"));
  EXPECT_LT(BigInt::from_string("-123456789012345678901"), BigInt(-5));
  EXPECT_EQ(BigInt(3), BigInt(3));
}

TEST(BigInt, GcdBasics) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_int64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt(7), BigInt(0)).to_int64(), 7);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)).to_int64(), 1);
}

TEST(BigInt, PowMatchesRepeatedMultiplication) {
  EXPECT_EQ(BigInt::pow(BigInt(2), 0).to_int64(), 1);
  EXPECT_EQ(BigInt::pow(BigInt(2), 10).to_int64(), 1024);
  EXPECT_EQ(BigInt::pow(BigInt(10), 30).to_string(),
            "1000000000000000000000000000000");
  EXPECT_EQ(BigInt::pow(BigInt(-3), 3).to_int64(), -27);
  EXPECT_EQ(BigInt::pow(BigInt(-3), 4).to_int64(), 81);
}

TEST(BigInt, ShiftedLeft) {
  EXPECT_EQ(BigInt(1).shifted_left(0).to_int64(), 1);
  EXPECT_EQ(BigInt(1).shifted_left(5).to_int64(), 32);
  EXPECT_EQ(BigInt(3).shifted_left(33).to_string(), "25769803776");
  EXPECT_EQ(BigInt(-1).shifted_left(4).to_int64(), -16);
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(2).bit_length(), 2u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ(BigInt::from_string("18446744073709551616").bit_length(), 65u);
}

TEST(BigInt, ToInt64OverflowThrows) {
  const BigInt big = BigInt::from_string("9223372036854775808");  // 2^63
  EXPECT_THROW((void)big.to_int64(), std::overflow_error);
  EXPECT_EQ(BigInt::from_string("-9223372036854775808").to_int64(),
            INT64_MIN);
  EXPECT_THROW((void)BigInt::from_string("-9223372036854775809").to_int64(),
               std::overflow_error);
}

TEST(BigInt, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigInt(1000).to_double(), 1000.0);
  EXPECT_NEAR(BigInt::from_string("1000000000000000000000").to_double(),
              1e21, 1e6);
  EXPECT_DOUBLE_EQ(BigInt(-8).to_double(), -8.0);
}

}  // namespace
}  // namespace confcall::prob
