// Tests for support/thread_pool.h and the deterministic-parallelism
// substrate it rests on (prob::mix_seed / Rng::substream).
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "prob/rng.h"
#include "support/cli.h"

namespace confcall::support {
namespace {

TEST(ResolveThreads, ZeroMeansHardwareAndNeverZero) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    constexpr std::size_t kTasks = 500;
    std::vector<std::atomic<int>> hits(kTasks);
    pool.parallel_for(kTasks, [&](std::size_t task) {
      hits[task].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    }
  }
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  const ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, IndexAddressedResultsAreThreadCountInvariant) {
  // The engine's core discipline: write to slot [task], merge in index
  // order, and the result cannot depend on the thread count.
  const auto run = [](std::size_t threads) {
    const ThreadPool pool(threads);
    std::vector<double> slots(257);
    pool.parallel_for(slots.size(), [&](std::size_t task) {
      prob::Rng rng = prob::Rng::substream(42, task);
      slots[task] = rng.next_double();
    });
    return slots;
  };
  const std::vector<double> one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

TEST(ThreadPool, PropagatesTheFirstException) {
  const ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t task) {
                          if (task % 3 == 0) {
                            throw std::runtime_error("boom");
                          }
                        }),
      std::runtime_error);
}

TEST(Substream, DistinctIndicesGiveDistinctStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(prob::mix_seed(7, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  // Consecutive seeds must differ from consecutive substream seeds (the
  // double-mix breaks the "seed + 1" correlation of naive reseeding).
  EXPECT_NE(prob::mix_seed(7, 1), prob::mix_seed(8, 0));
}

TEST(Substream, IsDeterministic) {
  prob::Rng a = prob::Rng::substream(123, 45);
  prob::Rng b = prob::Rng::substream(123, 45);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(BenchFlags, ParsesSharedFlagSet) {
  const char* argv[] = {"bench", "--smoke", "--threads", "4", "--out",
                        "x.json"};
  const BenchFlags flags = parse_bench_flags(6, argv);
  EXPECT_TRUE(flags.smoke);
  EXPECT_EQ(flags.threads, 4u);
  EXPECT_EQ(flags.out, "x.json");

  const char* defaults[] = {"bench"};
  const BenchFlags none = parse_bench_flags(1, defaults);
  EXPECT_FALSE(none.smoke);
  EXPECT_EQ(none.threads, 0u);
  EXPECT_TRUE(none.out.empty());
}

TEST(BenchFlags, RejectsUnknownAndNegative) {
  const char* unknown[] = {"bench", "--smok"};
  EXPECT_THROW(parse_bench_flags(2, unknown), std::invalid_argument);
  const char* negative[] = {"bench", "--threads", "-1"};
  EXPECT_THROW(parse_bench_flags(3, negative), std::invalid_argument);
}

}  // namespace
}  // namespace confcall::support
