// Chaos/soak harness: a seed-pinned randomized fault + burst schedule
// driven through the full overload stack (bursty arrivals -> admission
// control -> deadline-bound locate() over a breaker-guarded resilient
// planner, with cell outages and channel drops injected throughout), with
// the system invariants checked after EVERY event:
//
//   * counter conservation: arrived == completed + abandoned + shed
//   * no admitted call ever exceeds its propagated deadline
//   * circuit-breaker state/trip coherence (a breaker only reaches open
//     through a trip; trip and rejection counters never go backwards)
//   * admission health legality (never shedding -> healthy in one hop;
//     the transitions counter accounts every observed change)
//   * with the SLO controller in the loop: every actuator stays inside
//     its clamp range and the admission options remain valid after each
//     controller move (the feedback loop can never wedge the stack into
//     an illegal configuration)
//
// The event count defaults to 10'000 and can be reduced for sanitizer CI
// rows via the SOAK_EVENTS environment variable.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cellular/events.h"
#include "cellular/faults.h"
#include "cellular/mobility.h"
#include "cellular/service.h"
#include "cellular/topology.h"
#include "core/planner.h"
#include "core/resilient_planner.h"
#include "prob/rng.h"
#include "support/metrics.h"
#include "support/overload.h"
#include "support/slo_controller.h"

namespace confcall::cellular {
namespace {

std::size_t soak_events() {
  if (const char* env = std::getenv("SOAK_EVENTS")) {
    const unsigned long long parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 10'000;
}

/// Everything the soak accumulates; also the determinism fingerprint.
struct SoakCounters {
  std::uint64_t arrived = 0;
  std::uint64_t completed = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded_admits = 0;
  std::uint64_t deadline_limited = 0;
  std::uint64_t cells_paged = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_skips = 0;
  std::uint64_t failovers = 0;
  std::uint64_t health_transitions = 0;
  std::uint64_t bursts = 0;
  /// SLO-controller telemetry (zero when the soak runs without it).
  std::uint64_t slo_steps = 0;
  std::uint64_t slo_breaches = 0;
  std::uint64_t slo_pre_breach = 0;

  bool operator==(const SoakCounters&) const = default;
};

constexpr std::uint64_t kRoundNs = 1'000'000;       // 1 ms per round
constexpr std::uint64_t kStepNs = 10'000'000;       // 10 ms per event
constexpr std::uint64_t kDeadlineNs = 8 * kRoundNs; // 8 rounds per call

/// Runs the pinned schedule, checking invariants after every event.
/// `check` toggles the per-event EXPECTs so the determinism replay can
/// run silently. `with_slo` closes the loop: an SloController reads the
/// run's registry and adapts admission + breaker knobs while the chaos
/// schedule plays.
SoakCounters run_soak(std::uint64_t seed, std::size_t events, bool check,
                      bool with_slo = false) {
  const GridTopology grid(8, 8, /*toroidal=*/true);
  const LocationAreas areas = LocationAreas::tiles(grid, 4, 4);
  const MarkovMobility mobility(grid, 0.5);
  prob::Rng rng(seed);

  constexpr std::size_t kUsers = 48;
  std::vector<CellId> cells;
  cells.reserve(kUsers);
  for (std::size_t u = 0; u < kUsers; ++u) {
    cells.push_back(static_cast<CellId>(rng.next_below(grid.num_cells())));
  }

  support::ManualClock clock;

  support::CircuitBreakerOptions breaker_options;
  breaker_options.window = 8;
  breaker_options.min_samples = 4;
  breaker_options.failure_threshold = 0.5;
  breaker_options.cooldown_ns = 5 * kStepNs;

  std::vector<std::unique_ptr<core::Planner>> chain;
  chain.push_back(std::make_unique<core::TypedExactPlanner>(
      core::Objective::all_of(), /*node_limit=*/50'000));
  chain.push_back(std::make_unique<core::GreedyPlanner>());
  chain.push_back(std::make_unique<core::BlanketPlanner>());
  support::MetricRegistry registry;
  core::ResilientPlanner planner(std::move(chain),
                                 core::ResilientPlanner::Budget{0.0},
                                 clock, breaker_options,
                                 with_slo ? &registry : nullptr);

  support::AdmissionOptions admission_options;
  admission_options.bucket_capacity = 48.0;
  admission_options.refill_per_sec = 80.0;
  support::AdmissionController admission(admission_options, clock);

  LocationService::Config config;
  config.max_paging_rounds = 3;
  config.retry.max_retries = 4;
  config.retry.backoff_base = 1;
  config.retry.backoff_cap = 8;
  config.planner = &planner;
  config.clock = &clock;
  config.round_duration_ns = kRoundNs;
  if (with_slo) config.metrics = ServiceMetrics::create(registry);
  LocationService service(grid, areas, mobility, config, cells);

  support::SloOptions slo_options;
  slo_options.target_p99_ns = 5 * kRoundNs;
  slo_options.control_period_ns = 50 * kStepNs;  // 500 ms virtual
  std::unique_ptr<support::SloController> slo;
  if (with_slo) {
    admission.bind_metrics(registry);
    slo = std::make_unique<support::SloController>(
        slo_options, registry, admission, clock, kRoundNs);
    for (std::size_t i = 0; i + 1 < planner.num_tiers(); ++i) {
      slo->add_breaker(&planner.mutable_breaker(i));
    }
    slo->bind_metrics(registry);
  }

  FaultConfig fault_config;
  fault_config.cell_outage_rate = 0.02;
  fault_config.outage_duration = 40;
  fault_config.report_loss_rate = 0.05;
  fault_config.round_drop_rate = 0.02;
  fault_config.seed = seed ^ 0xfa17;
  FaultPlan faults(fault_config, grid.num_cells());
  service.attach_faults(&faults);

  BurstConfig burst;
  burst.enabled = true;
  burst.base_rate = 0.15;
  burst.burst_rate = 1.0;
  burst.p_enter = 0.03;
  burst.p_exit = 0.10;
  BurstyCallGenerator generator(burst, kUsers, 2, 4);

  SoakCounters counters;
  support::Health last_health = admission.health();
  std::vector<support::CircuitBreaker::State> last_state;
  std::vector<std::uint64_t> last_trips;
  for (std::size_t i = 0; i + 1 < planner.num_tiers(); ++i) {
    last_state.push_back(planner.breaker(i).state());
    last_trips.push_back(planner.breaker(i).trips());
  }
  std::uint64_t last_rejections = 0;
  std::uint64_t last_transitions = admission.health_transitions();

  for (std::size_t event = 0; event < events; ++event) {
    clock.advance(kStepNs);
    faults.begin_step();
    for (std::size_t u = 0; u < kUsers; ++u) {
      cells[u] = mobility.step(cells[u], rng);
      service.observe_move(static_cast<UserId>(u), cells[u]);
    }
    service.tick();
    if (slo) (void)slo->maybe_step();

    const CallEvent call = generator.maybe_call(rng);
    if (!call.participants.empty()) {
      ++counters.arrived;
      const auto decision =
          admission.admit(static_cast<double>(call.participants.size()));
      if (decision == support::AdmissionController::Decision::kShed) {
        ++counters.shed;
      } else {
        LocationService::LocateContext context;
        context.plan_cheap =
            decision == support::AdmissionController::Decision::kAdmitDegraded;
        if (context.plan_cheap) ++counters.degraded_admits;
        context.deadline = support::Deadline::after(kDeadlineNs, clock);
        const std::size_t round_cap = kDeadlineNs / kRoundNs;

        std::vector<CellId> truth;
        truth.reserve(call.participants.size());
        for (const UserId user : call.participants) {
          truth.push_back(cells[user]);
        }
        const auto outcome =
            service.locate(call.participants, truth, rng, context);
        outcome.abandoned ? ++counters.abandoned : ++counters.completed;
        if (outcome.deadline_limited) ++counters.deadline_limited;
        counters.cells_paged += outcome.cells_paged;

        // Invariant: an admitted call never overruns its deadline. The
        // clock did not move during locate(), so the cap is exact.
        if (check) {
          EXPECT_LE(outcome.rounds_used, round_cap)
              << "deadline overrun at event " << event;
        }
      }
    }

    if (!check) continue;

    // Invariant: exact conservation, every event.
    EXPECT_EQ(counters.arrived,
              counters.completed + counters.abandoned + counters.shed)
        << "conservation broken at event " << event;

    // Invariant: breaker coherence. Trips and rejections are monotonic,
    // and a breaker only reaches open through a counted trip.
    std::uint64_t rejections = 0;
    for (std::size_t i = 0; i + 1 < planner.num_tiers(); ++i) {
      const auto& breaker = planner.breaker(i);
      const auto state = breaker.state();
      const std::uint64_t trips = breaker.trips();
      EXPECT_GE(trips, last_trips[i]) << "trips went backwards";
      if (state == support::CircuitBreaker::State::kOpen &&
          last_state[i] != support::CircuitBreaker::State::kOpen) {
        EXPECT_GT(trips, last_trips[i])
            << "breaker " << i << " opened without a trip at event "
            << event;
      }
      last_state[i] = state;
      last_trips[i] = trips;
      rejections += breaker.rejections();
    }
    EXPECT_GE(rejections, last_rejections) << "rejections went backwards";
    last_rejections = rejections;

    // Invariant: admission health legality. Shedding never jumps back
    // to healthy in a single machine step — observing that pair demands
    // at least the two counted transitions of the stepwise path.
    const support::Health health = admission.health();
    const std::uint64_t transitions = admission.health_transitions();
    EXPECT_GE(transitions, last_transitions);
    if (last_health == support::Health::kShedding &&
        health == support::Health::kHealthy) {
      EXPECT_GE(transitions - last_transitions, 2u)
          << "shedding -> healthy in one hop at event " << event;
    }
    if (health != last_health) {
      EXPECT_GT(transitions, last_transitions)
          << "health changed without a counted transition at event "
          << event;
    }
    last_health = health;
    last_transitions = transitions;

    // Invariant: the feedback loop can move the knobs, but never out of
    // their clamp ranges, and never into an invalid admission config.
    if (slo) {
      EXPECT_GE(slo->refill_per_sec(), slo_options.min_refill_per_sec);
      EXPECT_LE(slo->refill_per_sec(), slo_options.max_refill_per_sec);
      EXPECT_GE(slo->degrade_threshold(), admission_options.recover_above);
      EXPECT_LT(slo->degrade_threshold(), admission_options.healthy_above);
      EXPECT_NO_THROW(admission.options().validate())
          << "controller wedged admission into an illegal config at event "
          << event;
      const std::uint64_t cooldown = slo->breaker_cooldown_ns();
      if (cooldown != 0) {
        EXPECT_GE(cooldown, slo_options.min_cooldown_ns);
        EXPECT_LE(cooldown, slo_options.max_cooldown_ns);
      }
    }
  }

  counters.breaker_trips = planner.breaker_trips();
  counters.breaker_skips = planner.breaker_skips();
  counters.failovers = planner.failovers();
  counters.health_transitions = admission.health_transitions();
  counters.bursts = generator.bursts_entered();
  if (slo) {
    counters.slo_steps = slo->control_steps();
    counters.slo_breaches = slo->breaches();
    counters.slo_pre_breach = slo->pre_breach_signals();
  }
  return counters;
}

TEST(Soak, InvariantsHoldOverRandomizedFaultBurstSchedule) {
  const std::size_t events = soak_events();
  const SoakCounters counters = run_soak(/*seed=*/20020715, events, true);
  // The schedule must actually exercise the machinery it soaks.
  EXPECT_GT(counters.arrived, 0u);
  EXPECT_GT(counters.completed, 0u);
  EXPECT_GT(counters.bursts, 0u);
  EXPECT_EQ(counters.arrived,
            counters.completed + counters.abandoned + counters.shed);
  if (events >= 10'000) {
    // At full length the bursts overwhelm the token bucket and the
    // exact tier's node limit: shedding, degraded admits and breaker
    // activity all occur. (Short sanitizer runs may not get there.)
    EXPECT_GT(counters.shed, 0u);
    EXPECT_GT(counters.degraded_admits, 0u);
    EXPECT_GT(counters.health_transitions, 0u);
  }
}

TEST(Soak, SloControllerHoldsInvariantsUnderChaos) {
  // The same chaos schedule with the feedback loop closed: all the base
  // invariants plus the actuator-range checks hold after every event,
  // and the controller actually runs (one step per 50 events).
  const std::size_t events = soak_events();
  const SoakCounters counters =
      run_soak(/*seed=*/20020715, events, true, /*with_slo=*/true);
  EXPECT_GT(counters.arrived, 0u);
  EXPECT_GT(counters.completed, 0u);
  EXPECT_EQ(counters.arrived,
            counters.completed + counters.abandoned + counters.shed);
  EXPECT_GE(counters.slo_steps, events / 50);
}

TEST(Soak, SloCountersAreBitIdenticalAcrossReplays) {
  const std::size_t events = std::min<std::size_t>(soak_events(), 2'000);
  const SoakCounters first =
      run_soak(/*seed=*/7, events, false, /*with_slo=*/true);
  const SoakCounters second =
      run_soak(/*seed=*/7, events, false, /*with_slo=*/true);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.slo_steps, 0u);
}

TEST(Soak, CountersAreBitIdenticalAcrossReplays) {
  const std::size_t events = std::min<std::size_t>(soak_events(), 2'000);
  const SoakCounters first = run_soak(/*seed=*/7, events, false);
  const SoakCounters second = run_soak(/*seed=*/7, events, false);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.arrived, 0u);
  // And a different seed gives a genuinely different schedule.
  const SoakCounters other = run_soak(/*seed=*/8, events, false);
  EXPECT_NE(first, other);
}

}  // namespace
}  // namespace confcall::cellular
