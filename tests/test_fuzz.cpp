// Randomized operation-sequence fuzzing: drive LocationService and the
// planners with random but legal operation streams and assert structural
// invariants after every step. Complements the deterministic tests by
// exploring interleavings no hand-written scenario covers.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "cellular/service.h"
#include "core/evaluator.h"
#include "core/greedy.h"
#include "core/io.h"
#include "prob/distribution.h"
#include "test_util.h"

namespace confcall {
namespace {

using cellular::CellId;
using cellular::UserId;

TEST(Fuzz, LocationServiceInvariantsUnderRandomOps) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    prob::Rng rng(seed * 7919 + 13);
    const std::size_t rows = 2 + rng.next_below(5);
    const std::size_t cols = 2 + rng.next_below(5);
    const cellular::GridTopology grid(rows, cols, seed % 2 == 0);
    const cellular::LocationAreas areas = cellular::LocationAreas::tiles(
        grid, 1 + rng.next_below(rows), 1 + rng.next_below(cols));
    const cellular::MarkovMobility mobility(grid, 0.3);

    const std::size_t users = 2 + rng.next_below(6);
    std::vector<CellId> cells(users);
    for (auto& cell : cells) {
      cell = static_cast<CellId>(rng.next_below(grid.num_cells()));
    }
    cellular::LocationService::Config config;
    config.report_policy = static_cast<cellular::ReportPolicy>(
        rng.next_below(5));
    config.paging_policy =
        rng.next_below(2) == 0 ? cellular::PagingPolicy::kGreedy
                               : cellular::PagingPolicy::kBlanketArea;
    config.profile_kind = static_cast<cellular::ProfileKind>(
        rng.next_below(3));
    config.max_paging_rounds = 1 + rng.next_below(4);
    if (rng.next_below(3) == 0) config.detection_probability = 0.6;
    if (config.paging_policy == cellular::PagingPolicy::kGreedy &&
        rng.next_below(2) == 0) {
      config.retry.max_retries = rng.next_below(4);
      config.retry.backoff_base = rng.next_below(3);
      config.retry.page_budget = rng.next_below(2) == 0
                                     ? 0
                                     : 5 + rng.next_below(100);
    }
    cellular::LocationService service(grid, areas, mobility, config, cells);

    // Half the runs get random structured faults on top.
    cellular::FaultConfig fault_config;
    if (rng.next_below(2) == 0) {
      fault_config.cell_outage_rate = 0.2 * rng.next_double();
      fault_config.outage_duration = 1 + rng.next_below(30);
      fault_config.report_loss_rate = 0.4 * rng.next_double();
      fault_config.round_drop_rate = 0.3 * rng.next_double();
      fault_config.seed = seed ^ 0xfa17;
    }
    cellular::FaultPlan faults(fault_config, grid.num_cells());
    service.attach_faults(&faults);

    for (int op = 0; op < 300; ++op) {
      faults.begin_step();
      switch (rng.next_below(3)) {
        case 0: {  // move everyone one step
          for (std::size_t u = 0; u < users; ++u) {
            cells[u] = mobility.step(cells[u], rng);
            service.observe_move(static_cast<UserId>(u), cells[u]);
          }
          service.tick();
          break;
        }
        case 1: {  // locate a random nonempty subset
          std::vector<UserId> who;
          std::vector<CellId> truth;
          for (std::size_t u = 0; u < users; ++u) {
            if (rng.next_below(2) == 0) {
              who.push_back(static_cast<UserId>(u));
              truth.push_back(cells[u]);
            }
          }
          if (who.empty()) {
            who.push_back(0);
            truth.push_back(cells[0]);
          }
          const auto outcome = service.locate(who, truth, rng);
          // Sanity: a locate pages something and finishes.
          EXPECT_GE(outcome.cells_paged, 1u);
          // After a successful locate every callee's record is current.
          for (std::size_t k = 0; k < who.size(); ++k) {
            EXPECT_EQ(service.database().reported_cell(who[k]), truth[k]);
          }
          break;
        }
        default: {  // inspect profiles: always valid distributions
          const auto user = static_cast<UserId>(rng.next_below(users));
          const std::size_t area = service.database().reported_area(user);
          const auto profile = service.profile_for(user, area);
          double total = 0.0;
          for (const double p : profile) {
            EXPECT_GE(p, 0.0);
            total += p;
          }
          EXPECT_NEAR(total, 1.0, 1e-9);
          break;
        }
      }
      // Database coherence after every operation.
      for (std::size_t u = 0; u < users; ++u) {
        const CellId reported =
            service.database().reported_cell(static_cast<UserId>(u));
        EXPECT_LT(reported, grid.num_cells());
        EXPECT_EQ(service.database().reported_area(static_cast<UserId>(u)),
                  areas.area_of(reported));
      }
    }
    // Fault conservation: every report the plan swallowed was observed
    // by the service as lost, and vice versa.
    EXPECT_EQ(service.reports_lost(), faults.stats().reports_dropped);
  }
}

TEST(Fuzz, ParsersRejectGarbageWithoutCrashing) {
  // Hostile-input sweep: random byte soup into both text parsers. The
  // only acceptable outcomes are a parsed value or std::invalid_argument
  // — never a crash, hang, or any other exception type.
  const char charset[] =
      "0123456789.eE+-{}|, \t\n#nanifconference-call-instance vmc";
  prob::Rng rng(0xbadf00d);
  for (int iter = 0; iter < 400; ++iter) {
    std::string text;
    const std::size_t length = rng.next_below(120);
    for (std::size_t k = 0; k < length; ++k) {
      text.push_back(charset[rng.next_below(sizeof(charset) - 1)]);
    }
    // Half the instance attempts get a valid header prefix so the row
    // parser and Instance validation see plenty of traffic too.
    std::string instance_text = text;
    if (iter % 2 == 0) {
      instance_text = "conference-call-instance v1 m 2 c 3\n" + text;
    }
    try {
      const core::Instance parsed = core::instance_from_text(instance_text);
      EXPECT_GE(parsed.num_devices(), 1u);
      EXPECT_GE(parsed.num_cells(), 1u);
    } catch (const std::invalid_argument&) {
      // expected for garbage
    }
    try {
      const core::Strategy parsed =
          core::strategy_from_text(text, 1 + rng.next_below(12));
      EXPECT_GE(parsed.num_rounds(), 1u);
    } catch (const std::invalid_argument&) {
      // expected for garbage
    }
  }
}

TEST(Fuzz, PlannerOnRandomShapesNeverProducesInvalidStrategies) {
  prob::Rng rng(4242);
  for (int iter = 0; iter < 60; ++iter) {
    const std::size_t m = 1 + rng.next_below(5);
    const std::size_t c = 2 + rng.next_below(14);
    const std::size_t d = 1 + rng.next_below(c);
    // Mix of spiky and flat rows, occasionally with zero entries.
    std::vector<prob::ProbabilityVector> rows;
    for (std::size_t i = 0; i < m; ++i) {
      if (rng.next_below(4) == 0) {
        rows.push_back(prob::clustered_vector(c, 1 + rng.next_below(c),
                                              rng));
      } else {
        rows.push_back(prob::dirichlet_vector(c, 0.2 + rng.next_double(),
                                              rng));
      }
    }
    const core::Instance instance = core::Instance::from_rows(rows);
    const core::PlanResult plan = core::plan_greedy(instance, d);
    // Structural: partition validated by Strategy; EP within [1, c].
    EXPECT_EQ(plan.strategy.num_rounds(), d);
    EXPECT_GE(plan.expected_paging, 1.0 - 1e-9);
    EXPECT_LE(plan.expected_paging, static_cast<double>(c) + 1e-9);
    // Consistency with the evaluator.
    EXPECT_NEAR(plan.expected_paging,
                core::expected_paging(instance, plan.strategy), 1e-10);
  }
}

}  // namespace
}  // namespace confcall
