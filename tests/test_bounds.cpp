// Tests for the lower bounds and the named hard instances.
#include "core/bounds.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/evaluator.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "test_util.h"

namespace confcall::core {
namespace {

TEST(LowerBounds, SingleUserBoundBelowOptimal) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::size_t m = 2 + seed % 3;
    const Instance instance = testing::random_instance(m, 8, seed + 1, 0.8);
    for (const std::size_t d : {2u, 3u}) {
      const double bound = lower_bound_single_user(instance, d);
      const double optimal = solve_exact(instance, d).expected_paging;
      EXPECT_LE(bound, optimal + 1e-9)
          << "seed=" << seed << " d=" << d;
      EXPECT_GT(bound, 0.0);
    }
  }
}

TEST(LowerBounds, AmgmBoundBelowOptimal) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::size_t m = 2 + seed % 3;
    const Instance instance = testing::random_instance(m, 8, seed + 31, 0.8);
    for (const std::size_t d : {2u, 3u}) {
      const double bound = lower_bound_amgm(instance, d);
      const double optimal = solve_exact(instance, d).expected_paging;
      EXPECT_LE(bound, optimal + 1e-9)
          << "seed=" << seed << " d=" << d;
    }
  }
}

TEST(LowerBounds, CombinedBoundIsMax) {
  const Instance instance = testing::mixed_instance(3, 9, 5);
  const double combined = lower_bound_conference(instance, 3);
  EXPECT_DOUBLE_EQ(combined,
                   std::max(lower_bound_single_user(instance, 3),
                            lower_bound_amgm(instance, 3)));
}

TEST(LowerBounds, TightForSingleDevice) {
  // For m = 1 the single-user bound IS the optimum.
  const Instance instance = testing::random_instance(1, 9, 3, 0.6);
  const double bound = lower_bound_single_user(instance, 3);
  const double optimal = plan_greedy(instance, 3).expected_paging;
  EXPECT_NEAR(bound, optimal, 1e-12);
}

TEST(LowerBounds, DOneEqualsCellCount) {
  const Instance instance = testing::mixed_instance(2, 7, 6);
  EXPECT_DOUBLE_EQ(lower_bound_single_user(instance, 1), 7.0);
  EXPECT_DOUBLE_EQ(lower_bound_amgm(instance, 1), 7.0);
}

TEST(LowerBounds, ValidateArguments) {
  const Instance instance = Instance::uniform(2, 4);
  EXPECT_THROW(lower_bound_single_user(instance, 0), std::invalid_argument);
  EXPECT_THROW(lower_bound_amgm(instance, 5), std::invalid_argument);
}

TEST(LowerBounds, CertifyGreedyRatioOnLargerInstances)
{
  // Where exact search is infeasible (c = 24), the bounds still certify
  // the Theorem 4.8 factor.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Instance instance = testing::mixed_instance(3, 24, seed + 50);
    for (const std::size_t d : {2u, 4u}) {
      const double greedy = plan_greedy(instance, d).expected_paging;
      const double bound = lower_bound_conference(instance, d);
      EXPECT_GT(bound, 0.0);
      EXPECT_LE(greedy, kApproximationFactor * bound * 1.35)
          << "seed=" << seed << " d=" << d;
      // And the bound is never above the achievable value.
      EXPECT_LE(bound, greedy + 1e-9);
    }
  }
}

TEST(HardInstance, MatchesPaperDefinition) {
  const Instance instance = hard_instance_8cells();
  EXPECT_EQ(instance.num_devices(), 2u);
  EXPECT_EQ(instance.num_cells(), 8u);
  EXPECT_NEAR(instance.prob(0, 0), 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(instance.prob(0, 6), 0.0, 1e-12);
  EXPECT_NEAR(instance.prob(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(instance.prob(1, 7), 1.0 / 7.0, 1e-12);
}

TEST(HardInstance, ExactAndDoubleAgree) {
  const Instance a = hard_instance_8cells();
  const Instance b = hard_instance_8cells_exact().to_double_instance();
  for (DeviceId i = 0; i < 2; ++i) {
    for (CellId j = 0; j < 8; ++j) {
      EXPECT_NEAR(a.prob(i, j), b.prob(i, j), 1e-12);
    }
  }
}

TEST(HardInstance, PerturbedValidatesEpsilon) {
  EXPECT_THROW(hard_instance_8cells_perturbed(0.0), std::invalid_argument);
  EXPECT_THROW(hard_instance_8cells_perturbed(1.0 / 7.0),
               std::invalid_argument);
  EXPECT_NO_THROW(hard_instance_8cells_perturbed(1e-9));
}

TEST(HardInstance, PerturbedMakesCellZeroStrictMaximum) {
  const Instance instance = hard_instance_8cells_perturbed(1e-4);
  const auto weights = instance.cell_weights();
  for (CellId j = 1; j < 8; ++j) {
    EXPECT_GT(weights[0], weights[j]);
  }
}

}  // namespace
}  // namespace confcall::core
