// Tests for the streaming statistics accumulator.
#include "prob/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "prob/rng.h"

namespace confcall::prob {
namespace {

TEST(RunningStats, EmptyState) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sem(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(4.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.5);
  EXPECT_DOUBLE_EQ(stats.max(), 4.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0, 7.5, -1.25};
  RunningStats stats;
  for (const double x : xs) stats.add(x);

  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -1.25);
  EXPECT_DOUBLE_EQ(stats.max(), 7.5);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(42);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_normal() * 3.0 + 1.0;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 1.5);

  RunningStats other;
  other.merge(stats);
  EXPECT_EQ(other.count(), 2u);
  EXPECT_DOUBLE_EQ(other.mean(), 1.5);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(43);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 100; ++i) small.add(rng.next_double());
  for (int i = 0; i < 10000; ++i) large.add(rng.next_double());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
  // 95% CI of 10k uniforms should comfortably contain 0.5.
  EXPECT_LT(std::abs(large.mean() - 0.5), 3.0 * large.ci95_half_width());
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    stats.add(1e12 + static_cast<double>(i % 2));
  }
  EXPECT_NEAR(stats.mean(), 1e12 + 0.5, 1e-3);
  EXPECT_NEAR(stats.variance(), 0.25025, 1e-3);
}

}  // namespace
}  // namespace confcall::prob
