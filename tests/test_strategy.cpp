// Tests for core::Strategy.
#include "core/strategy.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace confcall::core {
namespace {

TEST(Strategy, FromGroupsBasic) {
  const Strategy s = Strategy::from_groups({{2, 0}, {1}, {3, 4}}, 5);
  EXPECT_EQ(s.num_rounds(), 3u);
  EXPECT_EQ(s.num_cells(), 5u);
  EXPECT_EQ(s.group(0), (std::vector<CellId>{2, 0}));
  EXPECT_EQ(s.group_sizes(), (std::vector<std::size_t>{2, 1, 2}));
}

TEST(Strategy, RoundOf) {
  const Strategy s = Strategy::from_groups({{2, 0}, {1}, {3, 4}}, 5);
  EXPECT_EQ(s.round_of(0), 0u);
  EXPECT_EQ(s.round_of(1), 1u);
  EXPECT_EQ(s.round_of(4), 2u);
}

TEST(Strategy, CellsPagedThrough) {
  const Strategy s = Strategy::from_groups({{2, 0}, {1}, {3, 4}}, 5);
  EXPECT_EQ(s.cells_paged_through(0), 2u);
  EXPECT_EQ(s.cells_paged_through(1), 3u);
  EXPECT_EQ(s.cells_paged_through(2), 5u);
  EXPECT_THROW((void)s.cells_paged_through(3), std::invalid_argument);
}

TEST(Strategy, RejectsNonPartitions) {
  // Missing a cell.
  EXPECT_THROW(Strategy::from_groups({{0}, {1}}, 3), std::invalid_argument);
  // Duplicate cell.
  EXPECT_THROW(Strategy::from_groups({{0, 1}, {1, 2}}, 3),
               std::invalid_argument);
  // Out of range cell.
  EXPECT_THROW(Strategy::from_groups({{0, 3}}, 3), std::invalid_argument);
  // Empty group.
  EXPECT_THROW(Strategy::from_groups({{0, 1, 2}, {}}, 3),
               std::invalid_argument);
  // No groups at all.
  EXPECT_THROW(Strategy::from_groups({}, 3), std::invalid_argument);
}

TEST(Strategy, FromOrderAndSizes) {
  const CellId order[] = {3, 1, 0, 2};
  const std::size_t sizes[] = {1, 3};
  const Strategy s = Strategy::from_order_and_sizes(order, sizes);
  EXPECT_EQ(s.num_rounds(), 2u);
  EXPECT_EQ(s.group(0), (std::vector<CellId>{3}));
  EXPECT_EQ(s.group(1), (std::vector<CellId>{1, 0, 2}));
}

TEST(Strategy, FromOrderAndSizesValidates) {
  const CellId order[] = {0, 1, 2};
  const std::size_t wrong_total[] = {1, 1};
  EXPECT_THROW(Strategy::from_order_and_sizes(order, wrong_total),
               std::invalid_argument);
  const std::size_t zero_group[] = {3, 0};
  EXPECT_THROW(Strategy::from_order_and_sizes(order, zero_group),
               std::invalid_argument);
  const CellId not_permutation[] = {0, 1, 1};
  const std::size_t sizes[] = {1, 2};
  EXPECT_THROW(Strategy::from_order_and_sizes(not_permutation, sizes),
               std::invalid_argument);
}

TEST(Strategy, BlanketPagesEverythingInOneRound) {
  const Strategy s = Strategy::blanket(4);
  EXPECT_EQ(s.num_rounds(), 1u);
  EXPECT_EQ(s.group(0), (std::vector<CellId>{0, 1, 2, 3}));
}

TEST(Strategy, ToStringFormat) {
  const Strategy s = Strategy::from_groups({{1, 0}, {2}}, 3);
  EXPECT_EQ(s.to_string(), "{1,0}|{2}");
}

TEST(Strategy, EqualityIsStructural) {
  const Strategy a = Strategy::from_groups({{0}, {1}}, 2);
  const Strategy b = Strategy::from_groups({{0}, {1}}, 2);
  const Strategy c = Strategy::from_groups({{1}, {0}}, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace confcall::core
