// Tests for the deterministic random generator.
#include "prob/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace confcall::prob {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u64() != b.next_u64()) ++differences;
  }
  EXPECT_GT(differences, 28);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(8);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.next_below(10)];
  }
  for (const int count : counts) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GammaMeanEqualsShape) {
  Rng rng(12);
  for (const double shape : {0.5, 1.0, 3.0}) {
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.next_gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.05) << "shape " << shape;
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(items.begin(), items.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ShuffleUniformFirstPosition) {
  Rng rng(14);
  std::vector<int> counts(5, 0);
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<int> items = {0, 1, 2, 3, 4};
    rng.shuffle(items);
    ++counts[items[0]];
  }
  for (const int count : counts) {
    EXPECT_GT(count, 3600);
    EXPECT_LT(count, 4400);
  }
}

TEST(SplitMix64, KnownStream) {
  // Reference values from the published SplitMix64 algorithm, seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

}  // namespace
}  // namespace confcall::prob
