// Tests for the location-profile estimators.
#include "cellular/profile.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace confcall::cellular {
namespace {

TEST(RestrictToArea, Renormalizes) {
  const double full[] = {0.1, 0.4, 0.2, 0.3};
  const CellId area[] = {1, 3};
  const auto profile = restrict_to_area(full, area);
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_NEAR(profile[0], 0.4 / 0.7, 1e-12);
  EXPECT_NEAR(profile[1], 0.3 / 0.7, 1e-12);
}

TEST(RestrictToArea, Validates) {
  const double full[] = {0.5, 0.5, 0.0};
  const CellId zero_mass[] = {2};
  EXPECT_THROW(restrict_to_area(full, zero_mass), std::invalid_argument);
  const CellId out_of_range[] = {5};
  EXPECT_THROW(restrict_to_area(full, out_of_range), std::invalid_argument);
  EXPECT_THROW(restrict_to_area(full, {}), std::invalid_argument);
}

TEST(EmpiricalProfile, CountsWithSmoothing) {
  const CellId trace[] = {0, 0, 1, 0, 2, 9};  // cell 9 outside the area
  const CellId area[] = {0, 1, 2};
  const auto profile = empirical_profile(trace, area, 1.0);
  // Counts 3,1,1 plus alpha 1 each: 4/8, 2/8, 2/8.
  EXPECT_NEAR(profile[0], 0.5, 1e-12);
  EXPECT_NEAR(profile[1], 0.25, 1e-12);
  EXPECT_NEAR(profile[2], 0.25, 1e-12);
}

TEST(EmpiricalProfile, ZeroAlphaRequiresVisits) {
  const CellId trace[] = {7};
  const CellId area[] = {0, 1};
  EXPECT_THROW(empirical_profile(trace, area, 0.0), std::invalid_argument);
  EXPECT_THROW(empirical_profile(trace, area, -1.0), std::invalid_argument);
}

TEST(EmpiricalProfile, SmoothingKeepsAllCellsPositive) {
  const CellId trace[] = {0, 0, 0};
  const CellId area[] = {0, 1, 2, 3};
  const auto profile = empirical_profile(trace, area, 0.5);
  for (const double p : profile) EXPECT_GT(p, 0.0);
  EXPECT_NEAR(std::accumulate(profile.begin(), profile.end(), 0.0), 1.0,
              1e-12);
}

TEST(ProfileFromCounts, MatchesEmpirical) {
  const CellId trace[] = {0, 0, 1, 0, 2};
  const CellId area[] = {0, 1, 2};
  std::vector<double> counts(5, 0.0);
  for (const CellId cell : trace) counts[cell] += 1.0;
  const auto a = empirical_profile(trace, area, 1.0);
  const auto b = profile_from_counts(counts, area, 1.0);
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_NEAR(a[j], b[j], 1e-12);
  }
}

TEST(StationaryProfile, UniformOnTorus) {
  const GridTopology grid(4, 4, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.3);
  const CellId area[] = {0, 1, 2, 3};
  const auto profile = stationary_profile(mobility, area);
  for (const double p : profile) EXPECT_NEAR(p, 0.25, 1e-9);
}

TEST(LastSeenProfile, ZeroStepsIsPointMass) {
  const GridTopology grid(3, 3);
  const MarkovMobility mobility(grid, 0.5);
  const CellId area[] = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  const auto profile = last_seen_profile(mobility, 4, 0, area);
  EXPECT_DOUBLE_EQ(profile[4], 1.0);
}

TEST(LastSeenProfile, SpreadsWithTime) {
  const GridTopology grid(5, 5, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.5);
  std::vector<CellId> area(25);
  std::iota(area.begin(), area.end(), CellId{0});
  const auto after1 = last_seen_profile(mobility, 12, 1, area);
  const auto after50 = last_seen_profile(mobility, 12, 50, area);
  // Mass at the origin decays toward the uniform stationary level.
  EXPECT_GT(after1[12], after50[12]);
  EXPECT_NEAR(after50[12], 1.0 / 25.0, 0.01);
}

TEST(LastSeenProfile, RestrictsToArea) {
  const GridTopology grid(4, 4);
  const MarkovMobility mobility(grid, 0.4);
  const CellId area[] = {0, 1, 4, 5};
  const auto profile = last_seen_profile(mobility, 0, 3, area);
  ASSERT_EQ(profile.size(), 4u);
  EXPECT_NEAR(std::accumulate(profile.begin(), profile.end(), 0.0), 1.0,
              1e-12);
  EXPECT_THROW(last_seen_profile(mobility, 99, 1, area),
               std::invalid_argument);
}

}  // namespace
}  // namespace confcall::cellular
