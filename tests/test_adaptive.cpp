// Tests for the Section 5 adaptive search.
#include "core/adaptive.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/greedy.h"
#include "test_util.h"

namespace confcall::core {
namespace {

TEST(Adaptive, ValidatesArguments) {
  const Instance instance = Instance::uniform(2, 4);
  const CellId locations[] = {0, 1};
  EXPECT_THROW(run_adaptive(instance, 0, locations), std::invalid_argument);
  EXPECT_THROW(run_adaptive(instance, 5, locations), std::invalid_argument);
  const CellId wrong_count[] = {0};
  EXPECT_THROW(run_adaptive(instance, 2, wrong_count),
               std::invalid_argument);
  const CellId out_of_range[] = {0, 9};
  EXPECT_THROW(run_adaptive(instance, 2, out_of_range),
               std::invalid_argument);
}

TEST(Adaptive, DOneIsBlanket) {
  const Instance instance = testing::random_instance(2, 6, 1);
  const CellId locations[] = {2, 5};
  const AdaptiveOutcome outcome = run_adaptive(instance, 1, locations);
  EXPECT_EQ(outcome.cells_paged, 6u);
  EXPECT_EQ(outcome.rounds_used, 1u);
  EXPECT_EQ(outcome.devices_found, 2u);
}

TEST(Adaptive, AlwaysFindsEveryoneWithinDelay) {
  const Instance instance = testing::mixed_instance(3, 10, 2);
  prob::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto locations = sample_locations(instance, rng);
    for (const std::size_t d : {1u, 2u, 4u, 10u}) {
      const AdaptiveOutcome outcome = run_adaptive(instance, d, locations);
      EXPECT_EQ(outcome.devices_found, 3u);
      EXPECT_LE(outcome.rounds_used, d);
      EXPECT_LE(outcome.cells_paged, 10u);
      EXPECT_GE(outcome.cells_paged, 1u);
    }
  }
}

TEST(Adaptive, FirstRoundMatchesObliviousPlan) {
  // Before any observation the adaptive planner has the same information
  // as Fig. 1, so round 1 pages the same number of cells.
  const Instance instance = testing::mixed_instance(2, 9, 4);
  const PlanResult oblivious = plan_greedy(instance, 3);
  prob::Rng rng(5);
  const auto locations = sample_locations(instance, rng);
  // Force the search past round 1 only if the devices are not in group 0;
  // either way round 1 size equals the oblivious group 0.
  const AdaptiveOutcome outcome = run_adaptive(instance, 3, locations);
  EXPECT_GE(outcome.cells_paged, oblivious.group_sizes[0]);
}

TEST(Adaptive, NotWorseThanObliviousInExpectation) {
  // The paper's motivation for adaptivity: re-planning with conditional
  // distributions can only help on average.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Instance instance =
        testing::random_instance(2, 10, seed + 8, 0.4);
    const std::size_t d = 3;
    const PlanResult oblivious = plan_greedy(instance, d);
    prob::Rng rng(seed);
    const MonteCarloEstimate adaptive =
        adaptive_expected_paging(instance, d, 6000, rng);
    EXPECT_LE(adaptive.mean,
              oblivious.expected_paging + 4.0 * adaptive.std_error)
        << "seed=" << seed;
  }
}

TEST(Adaptive, YellowPagesStopsAtFirstDevice) {
  // Device 0 sits in cell 0 with certainty; any-of search must stop in
  // round 1 having found it.
  const Instance instance(2, 4, {1.0, 0.0, 0.0, 0.0,  //
                                 0.25, 0.25, 0.25, 0.25});
  const CellId locations[] = {0, 3};
  const AdaptiveOutcome outcome =
      run_adaptive(instance, 2, locations, Objective::any_of());
  EXPECT_EQ(outcome.rounds_used, 1u);
  EXPECT_GE(outcome.devices_found, 1u);
}

TEST(Adaptive, SignatureObjectiveFindsKDevices) {
  const Instance instance = testing::mixed_instance(4, 8, 9);
  prob::Rng rng(10);
  for (int trial = 0; trial < 30; ++trial) {
    const auto locations = sample_locations(instance, rng);
    const AdaptiveOutcome outcome =
        run_adaptive(instance, 3, locations, Objective::k_of_m(2));
    EXPECT_GE(outcome.devices_found, 2u);
    EXPECT_LE(outcome.rounds_used, 3u);
  }
}

TEST(Adaptive, DeterministicForFixedLocations) {
  const Instance instance = testing::mixed_instance(3, 9, 11);
  const CellId locations[] = {1, 4, 7};
  const AdaptiveOutcome a = run_adaptive(instance, 3, locations);
  const AdaptiveOutcome b = run_adaptive(instance, 3, locations);
  EXPECT_EQ(a.cells_paged, b.cells_paged);
  EXPECT_EQ(a.rounds_used, b.rounds_used);
}

TEST(Adaptive, ExactExpectationMatchesMonteCarlo) {
  const Instance instance = testing::mixed_instance(2, 7, 21);
  const double exact = adaptive_expected_paging_exact(instance, 3);
  prob::Rng rng(22);
  const MonteCarloEstimate estimate =
      adaptive_expected_paging(instance, 3, 40000, rng);
  EXPECT_NEAR(exact, estimate.mean, 5.0 * estimate.std_error + 1e-9);
}

TEST(Adaptive, ExactExpectationNeverWorseThanOblivious) {
  // Sampling-noise-free version of the "adaptivity can only help" claim.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = testing::random_instance(2, 8, seed + 33, 0.5);
    for (const std::size_t d : {2u, 3u, 4u}) {
      const double adaptive = adaptive_expected_paging_exact(instance, d);
      const double oblivious = plan_greedy(instance, d).expected_paging;
      EXPECT_LE(adaptive, oblivious + 1e-9)
          << "seed=" << seed << " d=" << d;
    }
  }
}

TEST(Adaptive, ExactExpectationDOneIsCellCount) {
  const Instance instance = testing::mixed_instance(3, 5, 1);
  EXPECT_NEAR(adaptive_expected_paging_exact(instance, 1), 5.0, 1e-12);
}

TEST(Adaptive, ExactExpectationGuardsEnumerationSize) {
  const Instance instance = Instance::uniform(8, 16);  // 16^8 vectors
  EXPECT_THROW(adaptive_expected_paging_exact(instance, 2),
               std::invalid_argument);
}

TEST(Adaptive, MonteCarloRejectsZeroTrials) {
  const Instance instance = Instance::uniform(1, 3);
  prob::Rng rng(1);
  EXPECT_THROW(adaptive_expected_paging(instance, 2, 0, rng),
               std::invalid_argument);
}

TEST(Adaptive, HandlesZeroProbabilityCellsGracefully) {
  // Device 1's model gives zero mass to cells 2,3; if it is "found late"
  // the conditional would degenerate — the uniform fallback must kick in
  // rather than throwing.
  const Instance instance(2, 4, {0.5, 0.5, 0.0, 0.0,  //
                                 0.0, 0.0, 0.5, 0.5});
  // Model-inconsistent location (device 0 in cell 3).
  const CellId locations[] = {3, 2};
  EXPECT_NO_THROW({
    const AdaptiveOutcome outcome = run_adaptive(instance, 3, locations);
    EXPECT_EQ(outcome.devices_found, 2u);
  });
}

}  // namespace
}  // namespace confcall::core
