// Tests for the analytic location-area design module, including
// cross-validation against the discrete-event simulator.
#include "cellular/la_design.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cellular/simulator.h"

namespace confcall::cellular {
namespace {

TEST(LaDesign, WholeGridTilingNeverReports) {
  const GridTopology grid(6, 6, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.5);
  const TilingEvaluation eval = evaluate_tiling(grid, mobility, 6, 6, 2);
  EXPECT_EQ(eval.num_areas, 1u);
  EXPECT_NEAR(eval.report_rate, 0.0, 1e-12);
  // One 36-cell LA, uniform stationary profile, d = 2: EP = 3c/4 = 27.
  EXPECT_NEAR(eval.pages_per_callee, 27.0, 1e-6);
}

TEST(LaDesign, SingleCellTilingAlwaysPagesOne) {
  const GridTopology grid(4, 4, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.5);
  const TilingEvaluation eval = evaluate_tiling(grid, mobility, 1, 1, 2);
  EXPECT_EQ(eval.num_areas, 16u);
  EXPECT_NEAR(eval.pages_per_callee, 1.0, 1e-9);
  // Every actual move crosses an LA boundary: rate = 1 - stay.
  EXPECT_NEAR(eval.report_rate, 0.5, 1e-9);
}

TEST(LaDesign, ReportRateDecreasesWithAreaSize) {
  const GridTopology grid(8, 8, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.4);
  double previous = 1e300;
  for (const std::size_t tile : {1u, 2u, 4u, 8u}) {
    const TilingEvaluation eval =
        evaluate_tiling(grid, mobility, tile, tile, 2);
    EXPECT_LT(eval.report_rate, previous) << tile;
    previous = eval.report_rate;
  }
}

TEST(LaDesign, PagingCostIncreasesWithAreaSize) {
  const GridTopology grid(8, 8, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.4);
  double previous = 0.0;
  for (const std::size_t tile : {1u, 2u, 4u, 8u}) {
    const TilingEvaluation eval =
        evaluate_tiling(grid, mobility, tile, tile, 2);
    EXPECT_GT(eval.pages_per_callee, previous) << tile;
    previous = eval.pages_per_callee;
  }
}

TEST(LaDesign, EvaluateAllCoversDivisorTilings) {
  const GridTopology grid(4, 6, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.5);
  const auto evaluations = evaluate_all_tilings(grid, mobility, 2);
  // Divisors: rows {1,2,4} x cols {1,2,3,6} = 12 tilings.
  EXPECT_EQ(evaluations.size(), 12u);
  // Sorted by tile area ascending.
  for (std::size_t i = 1; i < evaluations.size(); ++i) {
    EXPECT_LE(evaluations[i - 1].tile_rows * evaluations[i - 1].tile_cols,
              evaluations[i].tile_rows * evaluations[i].tile_cols);
  }
}

TEST(LaDesign, BestTilingTracksCostWeights) {
  const GridTopology grid(8, 8, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.3);
  // Reports free -> smallest LAs win; pages free -> biggest LAs win.
  const TilingEvaluation cheap_reports =
      best_tiling(grid, mobility, 2, /*report=*/0.0, /*page=*/1.0,
                  /*callee_rate=*/0.05);
  EXPECT_EQ(cheap_reports.tile_rows * cheap_reports.tile_cols, 1u);
  const TilingEvaluation cheap_pages =
      best_tiling(grid, mobility, 2, /*report=*/1.0, /*page=*/0.0,
                  /*callee_rate=*/0.05);
  EXPECT_EQ(cheap_pages.tile_rows * cheap_pages.tile_cols, 64u);
}

TEST(LaDesign, InteriorOptimumForBalancedWeights) {
  // The classic U-curve: with both costs real, the best LA is neither a
  // single cell nor the whole grid.
  const GridTopology grid(8, 8, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.3);
  const TilingEvaluation best =
      best_tiling(grid, mobility, 2, 1.0, 1.0, /*callee_rate=*/0.05);
  const std::size_t size = best.tile_rows * best.tile_cols;
  EXPECT_GT(size, 1u);
  EXPECT_LT(size, 64u);
}

TEST(LaDesign, ValidatesArguments) {
  const GridTopology grid(4, 4);
  const MarkovMobility mobility(grid, 0.5);
  EXPECT_THROW(evaluate_tiling(grid, mobility, 0, 2, 2),
               std::invalid_argument);
  EXPECT_THROW(evaluate_tiling(grid, mobility, 2, 2, 0),
               std::invalid_argument);
}

TEST(LaDesign, AnalyticReportRateMatchesSimulation) {
  const GridTopology grid(6, 6, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.5);
  const TilingEvaluation analytic = evaluate_tiling(grid, mobility, 3, 3, 2);

  SimConfig config;
  config.grid_rows = 6;
  config.grid_cols = 6;
  config.toroidal = true;
  config.la_tile_rows = 3;
  config.la_tile_cols = 3;
  config.num_users = 40;
  config.stay_probability = 0.5;
  config.call_rate = 0.0;  // reporting only
  config.group_min = 1;
  config.group_max = 1;
  config.steps = 4000;
  config.warmup_steps = 400;
  config.seed = 99;
  const SimReport report = run_simulation(config);
  const double simulated_rate =
      static_cast<double>(report.reports_sent) /
      (static_cast<double>(config.num_users) *
       static_cast<double>(config.steps + config.warmup_steps));
  EXPECT_NEAR(simulated_rate, analytic.report_rate,
              0.05 * analytic.report_rate + 0.005);
}

TEST(LaDesign, AnalyticPagingMatchesSimulatedSingleCallee) {
  // Single-callee calls, LA-crossing reporting, stationary-profile paging
  // in the simulator: per-call pages should match the analytic estimate
  // within a modest margin (the simulator's callees are found mid-search,
  // the analytic model uses the exact stationary conditional).
  const GridTopology grid(6, 6, /*toroidal=*/true);
  const MarkovMobility mobility(grid, 0.5);
  const TilingEvaluation analytic = evaluate_tiling(grid, mobility, 3, 3, 3);

  SimConfig config;
  config.grid_rows = 6;
  config.grid_cols = 6;
  config.toroidal = true;
  config.la_tile_rows = 3;
  config.la_tile_cols = 3;
  config.num_users = 40;
  config.stay_probability = 0.5;
  config.call_rate = 0.5;
  config.group_min = 1;
  config.group_max = 1;
  config.max_paging_rounds = 3;
  config.profile_kind = ProfileKind::kStationary;
  config.steps = 3000;
  config.warmup_steps = 300;
  config.seed = 7;
  const SimReport report = run_simulation(config);
  EXPECT_NEAR(report.pages_per_call.mean(), analytic.pages_per_callee,
              0.15 * analytic.pages_per_callee);
}

}  // namespace
}  // namespace confcall::cellular
