// Tests for the ResilientPlanner fallback chain.
#include "core/resilient_planner.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/evaluator.h"
#include "test_util.h"

namespace confcall::core {
namespace {

/// A tier that always fails with a configurable exception class.
class ThrowingPlanner final : public Planner {
 public:
  explicit ThrowingPlanner(bool runtime = false) : runtime_(runtime) {}
  [[nodiscard]] std::string name() const override { return "throwing"; }
  [[nodiscard]] Strategy plan(const Instance&, std::size_t) const override {
    if (runtime_) throw std::runtime_error("tier exploded");
    throw std::invalid_argument("tier rejected the instance");
  }

 private:
  bool runtime_;
};

/// A tier that answers correctly but only after busy-waiting, to drive
/// the wall-clock budget path deterministically.
class SlowPlanner final : public Planner {
 public:
  explicit SlowPlanner(double seconds) : seconds_(seconds) {}
  [[nodiscard]] std::string name() const override { return "slow"; }
  [[nodiscard]] Strategy plan(const Instance& instance,
                              std::size_t) const override {
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() < seconds_) {
      // spin
    }
    return Strategy::blanket(instance.num_cells());
  }

 private:
  double seconds_;
};

std::vector<std::unique_ptr<Planner>> chain_of(
    std::unique_ptr<Planner> a, std::unique_ptr<Planner> b) {
  std::vector<std::unique_ptr<Planner>> chain;
  chain.push_back(std::move(a));
  chain.push_back(std::move(b));
  return chain;
}

TEST(ResilientPlanner, ConstructorValidates) {
  EXPECT_THROW(ResilientPlanner(std::vector<std::unique_ptr<Planner>>{}),
               std::invalid_argument);
  std::vector<std::unique_ptr<Planner>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(ResilientPlanner(std::move(with_null)),
               std::invalid_argument);
  std::vector<std::unique_ptr<Planner>> ok;
  ok.push_back(std::make_unique<BlanketPlanner>());
  EXPECT_THROW(ResilientPlanner(std::move(ok), {-1.0}),
               std::invalid_argument);
}

TEST(ResilientPlanner, StandardChainShapeAndName) {
  const auto planner = ResilientPlanner::standard();
  ASSERT_EQ(planner->num_tiers(), 3u);
  EXPECT_EQ(planner->tier(0).name(), "exact-typed");
  EXPECT_EQ(planner->tier(1).name(), "greedy-fig1");
  EXPECT_EQ(planner->tier(2).name(), "blanket");
  EXPECT_EQ(planner->name(), "resilient(exact-typed>greedy-fig1>blanket)");
}

TEST(ResilientPlanner, HealthyChainServesFromPreferredTier) {
  const Instance instance = Instance::uniform(2, 8);
  const auto planner = ResilientPlanner::standard();
  const Strategy s = planner->plan(instance, 3);
  EXPECT_EQ(planner->last_tier(), 0u);
  EXPECT_EQ(planner->failovers(), 0u);
  ASSERT_EQ(planner->served_counts().size(), 3u);
  EXPECT_EQ(planner->served_counts()[0], 1u);
  EXPECT_EQ(planner->served_counts()[1], 0u);
  // And the answer is exactly what the preferred tier alone would give.
  EXPECT_NEAR(expected_paging(instance, s),
              expected_paging(instance, TypedExactPlanner().plan(instance, 3)),
              1e-12);
}

TEST(ResilientPlanner, InvalidArgumentDegradesToNextTier) {
  const Instance instance = testing::mixed_instance(2, 6, 3);
  const ResilientPlanner planner(chain_of(
      std::make_unique<ThrowingPlanner>(), std::make_unique<GreedyPlanner>()));
  const Strategy s = planner.plan(instance, 2);
  EXPECT_EQ(planner.last_tier(), 1u);
  EXPECT_EQ(planner.failovers(), 1u);
  EXPECT_EQ(planner.served_counts()[1], 1u);
  EXPECT_EQ(s, GreedyPlanner().plan(instance, 2));
}

TEST(ResilientPlanner, RuntimeErrorAlsoDegrades) {
  const Instance instance = Instance::uniform(1, 5);
  const ResilientPlanner planner(
      chain_of(std::make_unique<ThrowingPlanner>(/*runtime=*/true),
               std::make_unique<BlanketPlanner>()));
  const Strategy s = planner.plan(instance, 2);
  EXPECT_EQ(planner.last_tier(), 1u);
  EXPECT_EQ(s.num_rounds(), 1u);
  EXPECT_EQ(s.group(0).size(), 5u);
}

TEST(ResilientPlanner, NodeLimitOverrunDegradesRealExactTier) {
  // A starved typed-exact tier rejects any non-trivial instance; the
  // chain must absorb that and serve from the greedy tier.
  const Instance instance = testing::mixed_instance(3, 9, 4);
  const ResilientPlanner planner(
      chain_of(std::make_unique<TypedExactPlanner>(Objective::all_of(),
                                                   /*node_limit=*/1),
               std::make_unique<GreedyPlanner>()));
  const Strategy s = planner.plan(instance, 3);
  EXPECT_EQ(planner.last_tier(), 1u);
  EXPECT_GE(planner.failovers(), 1u);
  EXPECT_EQ(s, GreedyPlanner().plan(instance, 3));
}

TEST(ResilientPlanner, BlownBudgetSkipsToFinalTier) {
  // Tier 0 answers, but after the 1 ms budget: its (valid) result must
  // be discarded and the final safety-net tier serves instead.
  const Instance instance = Instance::uniform(2, 7);
  const ResilientPlanner planner(
      chain_of(std::make_unique<SlowPlanner>(/*seconds=*/0.05),
               std::make_unique<BlanketPlanner>()),
      {/*time_limit_seconds=*/0.001});
  const Strategy s = planner.plan(instance, 2);
  EXPECT_EQ(planner.last_tier(), 1u);
  EXPECT_EQ(planner.failovers(), 1u);
  EXPECT_EQ(s.group(0).size(), 7u);
}

TEST(ResilientPlanner, FinalTierRunsEvenWhenBudgetAlreadyBlown) {
  // Both tiers are slow, but the final tier is exempt from the budget:
  // the caller always gets an answer.
  const Instance instance = Instance::uniform(1, 4);
  const ResilientPlanner planner(
      chain_of(std::make_unique<SlowPlanner>(0.01),
               std::make_unique<SlowPlanner>(0.01)),
      {0.001});
  const Strategy s = planner.plan(instance, 2);
  EXPECT_EQ(planner.last_tier(), 1u);
  EXPECT_EQ(s.group(0).size(), 4u);
}

TEST(ResilientPlanner, AllTiersFailingRethrowsLastError) {
  const Instance instance = Instance::uniform(1, 3);
  const ResilientPlanner planner(
      chain_of(std::make_unique<ThrowingPlanner>(),
               std::make_unique<ThrowingPlanner>(/*runtime=*/true)));
  EXPECT_THROW(planner.plan(instance, 2), std::runtime_error);
  EXPECT_EQ(planner.failovers(), 2u);
}

TEST(ResilientPlanner, ServedCountsAccumulateAcrossCalls) {
  const Instance easy = Instance::uniform(2, 6);
  const auto planner = ResilientPlanner::standard();
  for (int call = 0; call < 5; ++call) {
    (void)planner->plan(easy, 2);
  }
  EXPECT_EQ(planner->served_counts()[0], 5u);
  EXPECT_EQ(planner->failovers(), 0u);
}

/// Fails its first `failures` calls, then serves blanket strategies —
/// the shape that exercises breaker trip + half-open recovery.
class FlakyPlanner final : public Planner {
 public:
  explicit FlakyPlanner(int failures) : failures_left_(failures) {}
  [[nodiscard]] std::string name() const override { return "flaky"; }
  [[nodiscard]] Strategy plan(const Instance& instance,
                              std::size_t) const override {
    if (failures_left_ > 0) {
      --failures_left_;
      throw std::invalid_argument("flaky tier still warming up");
    }
    return Strategy::blanket(instance.num_cells());
  }

 private:
  mutable int failures_left_;
};

support::CircuitBreakerOptions fast_breaker() {
  support::CircuitBreakerOptions options;
  options.window = 4;
  options.min_samples = 2;
  options.failure_threshold = 0.5;
  options.cooldown_ns = 1'000;
  return options;
}

TEST(ResilientPlanner, BreakerOpensAndSkipsRepeatedlyFailingTier) {
  const Instance instance = Instance::uniform(1, 4);
  const support::ManualClock clock;
  const ResilientPlanner planner(
      chain_of(std::make_unique<ThrowingPlanner>(),
               std::make_unique<BlanketPlanner>()),
      {0.0}, clock, fast_breaker());
  // Two failing calls fill min_samples and trip the breaker...
  (void)planner.plan(instance, 2);
  (void)planner.plan(instance, 2);
  EXPECT_EQ(planner.breaker(0).state(),
            support::CircuitBreaker::State::kOpen);
  EXPECT_EQ(planner.breaker_trips(), 1u);
  EXPECT_EQ(planner.breaker_skips(), 0u);
  // ...so the third call skips tier 0 outright (no attempt, no trip).
  (void)planner.plan(instance, 2);
  EXPECT_EQ(planner.breaker_skips(), 1u);
  EXPECT_EQ(planner.breaker_trips(), 1u);
  EXPECT_EQ(planner.served_counts()[1], 3u);
}

TEST(ResilientPlanner, HalfOpenProbeRestoresRecoveredTier) {
  const Instance instance = Instance::uniform(1, 4);
  support::ManualClock clock;
  const ResilientPlanner planner(
      chain_of(std::make_unique<FlakyPlanner>(/*failures=*/2),
               std::make_unique<BlanketPlanner>()),
      {0.0}, clock, fast_breaker());
  (void)planner.plan(instance, 2);
  (void)planner.plan(instance, 2);  // second failure trips the breaker
  ASSERT_EQ(planner.breaker(0).state(),
            support::CircuitBreaker::State::kOpen);
  clock.advance(1'000);  // cooldown elapses on the virtual clock
  // The next call is the half-open probe; the tier has recovered, so the
  // probe succeeds, the breaker closes, and tier 0 serves again.
  (void)planner.plan(instance, 2);
  EXPECT_EQ(planner.breaker(0).state(),
            support::CircuitBreaker::State::kClosed);
  EXPECT_EQ(planner.last_tier(), 0u);
  (void)planner.plan(instance, 2);
  EXPECT_EQ(planner.served_counts()[0], 2u);
  EXPECT_EQ(planner.breaker_skips(), 0u);
}

TEST(ResilientPlanner, ExpiredDeadlineSkipsStraightToFinalTier) {
  const Instance instance = Instance::uniform(2, 6);
  support::ManualClock clock;
  const ResilientPlanner planner(
      chain_of(std::make_unique<TypedExactPlanner>(),
               std::make_unique<BlanketPlanner>()),
      {0.0}, clock, fast_breaker());
  const support::Deadline deadline = support::Deadline::after(10, clock);
  clock.advance(11);
  const Strategy s = planner.plan(instance, 2, deadline);
  EXPECT_EQ(planner.last_tier(), 1u);
  EXPECT_EQ(s.group(0).size(), 6u);
  // A deadline skip is not the tier's fault: its breaker saw nothing.
  EXPECT_EQ(planner.breaker(0).state(),
            support::CircuitBreaker::State::kClosed);
  EXPECT_EQ(planner.breaker_skips(), 0u);
  EXPECT_EQ(planner.failovers(), 1u);
  // With time on the clock, the same deadline value is honoured as live.
  const support::Deadline fresh = support::Deadline::after(1'000'000, clock);
  (void)planner.plan(instance, 2, fresh);
  EXPECT_EQ(planner.last_tier(), 0u);
}

TEST(ResilientPlanner, SharedAcrossThreadsCountsEveryCall) {
  // The header promises one planner may serve concurrent callers; the
  // atomic counters must not lose increments.
  const Instance instance = Instance::uniform(2, 6);
  const auto planner = ResilientPlanner::standard();
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int call = 0; call < kCallsPerThread; ++call) {
        (void)planner->plan(instance, 2);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  std::uint64_t total = 0;
  for (const std::uint64_t count : planner->served_counts()) total += count;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads * kCallsPerThread));
  EXPECT_EQ(planner->failovers(), 0u);
}

}  // namespace
}  // namespace confcall::core
