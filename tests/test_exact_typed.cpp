// Tests for the symmetry-exploiting typed exact solver (the Section 5
// approximation-scheme idea made exact).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/evaluator.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "prob/distribution.h"
#include "test_util.h"

namespace confcall::core {
namespace {

TEST(ColumnTypes, DetectsDuplicateColumns) {
  // Columns 0 and 2 identical, 1 and 3 identical.
  const Instance instance(2, 4, {0.3, 0.2, 0.3, 0.2,  //
                                 0.1, 0.4, 0.1, 0.4});
  const ColumnTypes types = column_types(instance);
  EXPECT_EQ(types.count.size(), 2u);
  EXPECT_EQ(types.type_of, (std::vector<std::size_t>{0, 1, 0, 1}));
  EXPECT_EQ(types.count, (std::vector<std::size_t>{2, 2}));
  EXPECT_EQ(types.representative, (std::vector<CellId>{0, 1}));
}

TEST(ColumnTypes, UniformInstanceHasOneType) {
  const ColumnTypes types = column_types(Instance::uniform(3, 10));
  EXPECT_EQ(types.count.size(), 1u);
  EXPECT_EQ(types.count[0], 10u);
}

TEST(ColumnTypes, GenericInstanceAllDistinct) {
  const Instance instance = testing::random_instance(2, 6, 4);
  EXPECT_EQ(column_types(instance).count.size(), 6u);
}

TEST(TypedExact, MatchesBruteForceOnUniform) {
  for (const std::size_t m : {1u, 2u, 3u}) {
    for (const std::size_t d : {2u, 3u}) {
      const Instance instance = Instance::uniform(m, 7);
      const ExactResult typed = solve_exact_typed(instance, d);
      const ExactResult plain = solve_exact(instance, d);
      EXPECT_NEAR(typed.expected_paging, plain.expected_paging, 1e-10)
          << "m=" << m << " d=" << d;
      EXPECT_LT(typed.nodes_explored, plain.nodes_explored);
    }
  }
}

TEST(TypedExact, MatchesBruteForceOnTwoTypeInstances) {
  // Half the cells "hot", half "cold" — two column types.
  for (const std::size_t d : {2u, 3u}) {
    std::vector<double> row;
    const std::size_t c = 8;
    const double hot = 2.0 / (1.5 * c);
    const double cold = 1.0 / (1.5 * c);
    for (std::size_t j = 0; j < c; ++j) row.push_back(j < c / 2 ? hot : cold);
    const Instance instance = Instance::from_rows({row, row});
    const ExactResult typed = solve_exact_typed(instance, d);
    const ExactResult plain = solve_exact(instance, d);
    EXPECT_NEAR(typed.expected_paging, plain.expected_paging, 1e-10)
        << "d=" << d;
  }
}

TEST(TypedExact, SolvesLargeUniformInstancesExactly) {
  // d^c enumeration is hopeless at c = 60; compositions are trivial.
  const Instance instance = Instance::uniform(2, 60);
  const ExactResult typed = solve_exact_typed(instance, 3);
  // Sanity: optimal EP lies between the AM-GM bound and the greedy EP.
  const double greedy = plan_greedy(instance, 3).expected_paging;
  EXPECT_LE(typed.expected_paging, greedy + 1e-9);
  EXPECT_GE(typed.expected_paging, 30.0);  // must page at least half on avg
  EXPECT_NEAR(expected_paging(instance, typed.strategy),
              typed.expected_paging, 1e-9);
}

TEST(TypedExact, GreedyIsOptimalOnUniformInstances) {
  // On fully symmetric instances the sorted family contains an optimum,
  // so Fig. 1 should match the typed exact solver.
  for (const std::size_t d : {2u, 4u}) {
    const Instance instance = Instance::uniform(3, 24);
    const double exact = solve_exact_typed(instance, d).expected_paging;
    const double greedy = plan_greedy(instance, d).expected_paging;
    EXPECT_NEAR(greedy, exact, 1e-9) << "d=" << d;
  }
}

TEST(TypedExact, StrategyIsValidPartition) {
  const Instance instance = Instance::uniform(2, 12);
  const ExactResult typed = solve_exact_typed(instance, 4);
  EXPECT_EQ(typed.strategy.num_rounds(), 4u);
  EXPECT_EQ(typed.strategy.num_cells(), 12u);  // from_groups validated it
}

TEST(TypedExact, AlternativeObjectives) {
  const Instance instance = Instance::uniform(3, 8);
  for (const Objective obj : {Objective::any_of(), Objective::k_of_m(2)}) {
    const ExactResult typed = solve_exact_typed(instance, 2, obj);
    const ExactResult plain = solve_exact_d2(instance, obj);
    EXPECT_NEAR(typed.expected_paging, plain.expected_paging, 1e-10)
        << obj.to_string();
  }
}

TEST(TypedExact, ValidatesArguments) {
  const Instance instance = Instance::uniform(1, 4);
  EXPECT_THROW(solve_exact_typed(instance, 0), std::invalid_argument);
  EXPECT_THROW(solve_exact_typed(instance, 5), std::invalid_argument);
  // All-distinct columns at scale exceed the node limit.
  const Instance big = testing::random_instance(2, 30, 9);
  EXPECT_THROW(solve_exact_typed(big, 5, Objective::all_of(),
                                 /*node_limit=*/1000),
               std::invalid_argument);
}

TEST(TypedExact, HardInstanceOptimum) {
  // The Section 4.3 instance has 3 column types: {cell 1}, {cells 2..6},
  // {cells 7,8} — typed search must find the 317/49 optimum.
  const Instance instance(
      2, 8,
      {2.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7, 0.0, 0.0,
       0.0, 1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7});
  EXPECT_EQ(column_types(instance).count.size(), 3u);
  const ExactResult typed = solve_exact_typed(instance, 2);
  EXPECT_NEAR(typed.expected_paging, 317.0 / 49.0, 1e-9);
}

}  // namespace
}  // namespace confcall::core
