// Tests for instance/strategy text serialization.
#include "core/io.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.h"

namespace confcall::core {
namespace {

TEST(InstanceIo, RoundTripIsLossless) {
  const Instance original = testing::mixed_instance(3, 9, 77);
  const Instance parsed = instance_from_text(instance_to_text(original));
  ASSERT_EQ(parsed.num_devices(), original.num_devices());
  ASSERT_EQ(parsed.num_cells(), original.num_cells());
  for (DeviceId i = 0; i < 3; ++i) {
    for (CellId j = 0; j < 9; ++j) {
      EXPECT_DOUBLE_EQ(parsed.prob(i, j), original.prob(i, j));
    }
  }
}

TEST(InstanceIo, ParsesHandWrittenFile) {
  const Instance parsed = instance_from_text(
      "# a comment\n"
      "conference-call-instance v1\n"
      "m 2\n"
      "c 3\n"
      "0.5 0.25 0.25   # device 0\n"
      "0.1 0.2 0.7\n");
  EXPECT_EQ(parsed.num_devices(), 2u);
  EXPECT_DOUBLE_EQ(parsed.prob(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(parsed.prob(1, 2), 0.7);
}

TEST(InstanceIo, RejectsMalformedInput) {
  EXPECT_THROW(instance_from_text(""), std::invalid_argument);
  EXPECT_THROW(instance_from_text("wrong-header v1 m 1 c 1 1.0"),
               std::invalid_argument);
  // Wrong probability count.
  EXPECT_THROW(
      instance_from_text("conference-call-instance v1 m 1 c 2 0.5"),
      std::invalid_argument);
  // Non-numeric token.
  EXPECT_THROW(
      instance_from_text("conference-call-instance v1 m 1 c 2 0.5 abc"),
      std::invalid_argument);
  // Row does not sum to one (Instance validation still applies).
  EXPECT_THROW(
      instance_from_text("conference-call-instance v1 m 1 c 2 0.5 0.4"),
      std::invalid_argument);
}

TEST(InstanceIo, RejectsTruncatedHeaders) {
  // Every prefix of a valid header must be rejected cleanly, never read
  // past the end or crash.
  const char* truncations[] = {
      "conference-call-instance",
      "conference-call-instance v1",
      "conference-call-instance v1 m",
      "conference-call-instance v1 m 2",
      "conference-call-instance v1 m 2 c",
      "conference-call-instance v1 m 2 c 3",  // header ok, no rows
      "# only a comment\n",
  };
  for (const char* text : truncations) {
    EXPECT_THROW(instance_from_text(text), std::invalid_argument) << text;
  }
}

TEST(InstanceIo, RejectsNonFiniteProbabilities) {
  // std::from_chars accepts "nan"/"inf" spellings; Instance validation
  // must catch them (and negatives) before they poison a planner.
  EXPECT_THROW(
      instance_from_text("conference-call-instance v1 m 1 c 2 nan nan"),
      std::invalid_argument);
  EXPECT_THROW(
      instance_from_text("conference-call-instance v1 m 1 c 2 inf 0.0"),
      std::invalid_argument);
  EXPECT_THROW(
      instance_from_text("conference-call-instance v1 m 1 c 2 -inf 1.0"),
      std::invalid_argument);
  EXPECT_THROW(
      instance_from_text("conference-call-instance v1 m 1 c 2 -0.5 1.5"),
      std::invalid_argument);
}

TEST(InstanceIo, RejectsOversizedCounts) {
  // Counts that overflow size_t parse as out-of-range, not as garbage
  // allocations.
  EXPECT_THROW(instance_from_text("conference-call-instance v1 "
                                  "m 99999999999999999999999 c 1 1.0"),
               std::invalid_argument);
  EXPECT_THROW(instance_from_text("conference-call-instance v1 "
                                  "m 1 c 18446744073709551616 1.0"),
               std::invalid_argument);
  // Huge but parseable counts fail the token-count check, not allocate.
  EXPECT_THROW(instance_from_text("conference-call-instance v1 "
                                  "m 4294967295 c 4294967295 1.0"),
               std::invalid_argument);
  EXPECT_THROW(instance_from_text("conference-call-instance v1 "
                                  "m -1 c 1 1.0"),
               std::invalid_argument);
}

TEST(StrategyIo, RejectsOversizedCellIds) {
  // 2^32 does not fit CellId: out-of-range, not wraparound.
  EXPECT_THROW(strategy_from_text("{4294967296}|{0}", 2),
               std::invalid_argument);
  // In-range number, out-of-partition cell.
  EXPECT_THROW(strategy_from_text("{5}|{0,1}", 2), std::invalid_argument);
}

TEST(StrategyIo, RoundTripThroughToString) {
  const Strategy original = Strategy::from_groups({{2, 0}, {1}, {3, 4}}, 5);
  const Strategy parsed = strategy_from_text(original.to_string(), 5);
  EXPECT_EQ(parsed, original);
}

TEST(StrategyIo, AcceptsWhitespace) {
  const Strategy parsed = strategy_from_text("{ 1 , 0 } | { 2 }", 3);
  EXPECT_EQ(parsed, Strategy::from_groups({{1, 0}, {2}}, 3));
}

TEST(StrategyIo, RejectsMalformedInput) {
  EXPECT_THROW(strategy_from_text("{0,1", 2), std::invalid_argument);
  EXPECT_THROW(strategy_from_text("{0}{1}}", 2), std::invalid_argument);
  EXPECT_THROW(strategy_from_text("0|1", 2), std::invalid_argument);
  EXPECT_THROW(strategy_from_text("{0},{1}", 2), std::invalid_argument);
  EXPECT_THROW(strategy_from_text("{0,x}", 2), std::invalid_argument);
  // Valid syntax, invalid partition.
  EXPECT_THROW(strategy_from_text("{0}|{0}", 2), std::invalid_argument);
  EXPECT_THROW(strategy_from_text("{0}", 2), std::invalid_argument);
}

}  // namespace
}  // namespace confcall::core
