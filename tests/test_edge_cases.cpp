// Degenerate-shape and failure-injection sweep: every planner and solver
// against the boundary of its domain (c = 1, m = 1, d = 1, d = c,
// zero-probability columns, point masses, near-underflow entries), plus
// cross-solver agreement on those shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/adaptive.h"
#include "core/bandwidth.h"
#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "core/signature.h"
#include "test_util.h"

namespace confcall::core {
namespace {

TEST(EdgeCases, SingleCellEverything) {
  const Instance instance(2, 1, {1.0, 1.0});
  const PlanResult plan = plan_greedy(instance, 1);
  EXPECT_DOUBLE_EQ(plan.expected_paging, 1.0);
  const CellId locations[] = {0, 0};
  EXPECT_EQ(run_adaptive(instance, 1, locations).cells_paged, 1u);
  EXPECT_DOUBLE_EQ(lower_bound_conference(instance, 1), 1.0);
  EXPECT_DOUBLE_EQ(solve_exact(instance, 1).expected_paging, 1.0);
  EXPECT_DOUBLE_EQ(solve_exact_typed(instance, 1).expected_paging, 1.0);
}

TEST(EdgeCases, TwoCellsAllSolversAgree) {
  const Instance instance(2, 2, {0.9, 0.1, 0.3, 0.7});
  const double greedy = plan_greedy(instance, 2).expected_paging;
  const double exact = solve_exact_d2(instance).expected_paging;
  const double typed = solve_exact_typed(instance, 2).expected_paging;
  const double bnb = solve_branch_and_bound(instance, 2).expected_paging;
  EXPECT_NEAR(exact, typed, 1e-12);
  EXPECT_NEAR(exact, bnb, 1e-12);
  EXPECT_GE(greedy, exact - 1e-12);
}

TEST(EdgeCases, PointMassDevice) {
  // A device pinned to one cell: the search is really about the others.
  const Instance instance(2, 4, {0.0, 0.0, 1.0, 0.0,  //
                                 0.25, 0.25, 0.25, 0.25});
  const PlanResult plan = plan_greedy(instance, 2);
  // Cell 2 has the top weight, so it must be paged in round 1.
  EXPECT_EQ(plan.strategy.round_of(2), 0u);
  const double exact = solve_exact_d2(instance).expected_paging;
  EXPECT_LE(plan.expected_paging,
            kApproximationFactor * exact + 1e-9);
}

TEST(EdgeCases, AllDevicesPinnedToSameCell) {
  const Instance instance(3, 5, {0, 0, 1, 0, 0,  //
                                 0, 0, 1, 0, 0,  //
                                 0, 0, 1, 0, 0});
  for (const std::size_t d : {1u, 2u, 5u}) {
    const PlanResult plan = plan_greedy(instance, d);
    if (d > 1) {
      // Page the certain cell alone, then (never) the rest.
      EXPECT_EQ(plan.strategy.group(0), (std::vector<CellId>{2}));
      EXPECT_NEAR(plan.expected_paging, 1.0, 1e-12);
    }
  }
}

TEST(EdgeCases, ZeroColumnNeverHelpsFirstRound) {
  // A cell where no device can be adds pure cost when paged early; with
  // d = c the planner must page it last.
  const Instance instance(1, 4, {0.5, 0.0, 0.3, 0.2});
  const PlanResult plan = plan_greedy(instance, 4);
  EXPECT_EQ(plan.strategy.round_of(1), 3u);
}

TEST(EdgeCases, TinyProbabilitiesDoNotUnderflowPlanning) {
  std::vector<double> row(12, 0.0);
  row[0] = 1.0 - 11e-12;
  for (std::size_t j = 1; j < 12; ++j) row[j] = 1e-12;
  const Instance instance = Instance::from_rows({row, row, row});
  const PlanResult plan = plan_greedy(instance, 3);
  EXPECT_TRUE(std::isfinite(plan.expected_paging));
  EXPECT_EQ(plan.strategy.round_of(0), 0u);
  EXPECT_NEAR(plan.expected_paging, 1.0, 1e-6);
}

TEST(EdgeCases, DEqualsCMatchesExactForTwoDevices) {
  const Instance instance = testing::random_instance(2, 6, 12, 0.6);
  const PlanResult plan = plan_greedy(instance, 6);
  const ExactResult exact = solve_exact(instance, 6);
  EXPECT_GE(plan.expected_paging, exact.expected_paging - 1e-9);
  EXPECT_LE(plan.expected_paging,
            kApproximationFactor * exact.expected_paging + 1e-9);
}

TEST(EdgeCases, SignaturePlannersOnDegenerateShapes) {
  const Instance one_cell(3, 1, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(plan_signature(one_cell, 1, 2).expected_paging, 1.0);
  EXPECT_DOUBLE_EQ(plan_yellow_pages(one_cell, 1).expected_paging, 1.0);

  const Instance single_device = testing::random_instance(1, 6, 13);
  // k-of-m with m = 1 must equal conference and yellow pages.
  const double conference = plan_greedy(single_device, 3).expected_paging;
  EXPECT_NEAR(plan_signature(single_device, 3, 1).expected_paging,
              conference, 1e-12);
  EXPECT_NEAR(plan_yellow_pages(single_device, 3).expected_paging,
              conference, 1e-9);
}

TEST(EdgeCases, BandwidthCapOfOneIsFullSequential) {
  const Instance instance = testing::random_instance(1, 5, 14);
  const PlanResult plan = plan_bandwidth_limited(instance, 5, 1);
  EXPECT_EQ(plan.group_sizes, std::vector<std::size_t>(5, 1));
  // Equivalent to unconstrained d = c for m = 1.
  EXPECT_NEAR(plan.expected_paging,
              plan_greedy(instance, 5).expected_paging, 1e-12);
}

TEST(EdgeCases, AdaptiveDegenerateShapes) {
  // m devices all pinned: adaptive should page exactly the pinned cell
  // when d >= 2.
  const Instance pinned(2, 4, {0, 1, 0, 0, 0, 1, 0, 0});
  const CellId locations[] = {1, 1};
  const AdaptiveOutcome outcome = run_adaptive(pinned, 2, locations);
  EXPECT_EQ(outcome.cells_paged, 1u);
  EXPECT_EQ(outcome.devices_found, 2u);
}

TEST(EdgeCases, EvaluatorHandlesManyDevices) {
  // 32 devices: the all-of product underflows gracefully toward 0 and EP
  // approaches c (someone is almost surely in the last group).
  const Instance instance = Instance::uniform(32, 8);
  const Strategy halves =
      Strategy::from_groups({{0, 1, 2, 3}, {4, 5, 6, 7}}, 8);
  const double ep = expected_paging(instance, halves);
  EXPECT_GT(ep, 7.99);
  EXPECT_LE(ep, 8.0 + 1e-12);
}

TEST(EdgeCases, KOfMWithLargeMAndMidK) {
  const Instance instance = Instance::uniform(24, 10);
  const Strategy s = Strategy::from_groups(
      {{0, 1, 2}, {3, 4, 5}, {6, 7, 8, 9}}, 10);
  const double ep12 =
      expected_paging(instance, s, Objective::k_of_m(12));
  const double ep20 =
      expected_paging(instance, s, Objective::k_of_m(20));
  EXPECT_LE(ep12, ep20 + 1e-12);  // needing fewer signatures is cheaper
  EXPECT_TRUE(std::isfinite(ep12));
}

TEST(EdgeCases, RestrictAfterSelectComposes) {
  const Instance instance = testing::mixed_instance(4, 8, 15);
  const DeviceId devices[] = {1, 3};
  const CellId cells[] = {0, 2, 4, 6};
  const Instance sub = instance.select_devices(devices);
  const Instance subsub = sub.restrict_cells(cells);
  EXPECT_EQ(subsub.num_devices(), 2u);
  EXPECT_EQ(subsub.num_cells(), 4u);
  // Rows renormalized over the kept cells.
  double row_sum = 0.0;
  for (CellId j = 0; j < 4; ++j) row_sum += subsub.prob(0, j);
  EXPECT_NEAR(row_sum, 1.0, 1e-12);
}

TEST(EdgeCases, MonteCarloOnDeterministicInstanceHasZeroError) {
  const Instance pinned(1, 3, {0.0, 1.0, 0.0});
  const Strategy s = Strategy::from_groups({{1}, {0, 2}}, 3);
  prob::Rng rng(16);
  const auto estimate = monte_carlo_paging(pinned, s, 500, rng);
  EXPECT_DOUBLE_EQ(estimate.mean, 1.0);
  EXPECT_DOUBLE_EQ(estimate.std_error, 0.0);
}

}  // namespace
}  // namespace confcall::core
