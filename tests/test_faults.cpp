// Tests for the deterministic fault-injection layer.
#include "cellular/faults.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace confcall::cellular {
namespace {

FaultConfig all_on() {
  FaultConfig config;
  config.cell_outage_rate = 0.3;
  config.outage_duration = 5;
  config.report_loss_rate = 0.4;
  config.round_drop_rate = 0.2;
  config.seed = 99;
  return config;
}

TEST(FaultConfig, ValidateNamesTheOffendingField) {
  const auto message_of = [](const FaultConfig& config) -> std::string {
    try {
      config.validate();
    } catch (const std::invalid_argument& error) {
      return error.what();
    }
    return "";
  };
  FaultConfig config;
  config.cell_outage_rate = -0.1;
  EXPECT_NE(message_of(config).find("cell_outage_rate"), std::string::npos);
  config = {};
  config.report_loss_rate = 1.5;
  EXPECT_NE(message_of(config).find("report_loss_rate"), std::string::npos);
  config = {};
  config.round_drop_rate = 2.0;
  EXPECT_NE(message_of(config).find("round_drop_rate"), std::string::npos);
  config = {};
  config.cell_outage_rate = 0.1;
  config.outage_duration = 0;
  EXPECT_NE(message_of(config).find("outage_duration"), std::string::npos);
  // NaN rates must not sneak through the comparisons.
  config = {};
  config.report_loss_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(message_of(config).find("report_loss_rate"), std::string::npos);
  // A duration of zero is fine while outages are disabled.
  config = {};
  config.outage_duration = 0;
  EXPECT_NO_THROW(config.validate());
}

TEST(FaultConfig, AnyEnabledReflectsRates) {
  FaultConfig config;
  EXPECT_FALSE(config.any_enabled());
  config.report_loss_rate = 0.01;
  EXPECT_TRUE(config.any_enabled());
}

TEST(FaultPlan, RejectsZeroCellsAndBadConfig) {
  EXPECT_THROW(FaultPlan(FaultConfig{}, 0), std::invalid_argument);
  FaultConfig bad;
  bad.round_drop_rate = -1.0;
  EXPECT_THROW(FaultPlan(bad, 4), std::invalid_argument);
}

TEST(FaultPlan, ZeroRatesAreCompletelyInert) {
  FaultPlan plan(FaultConfig{}, 16);
  for (int step = 0; step < 200; ++step) {
    plan.begin_step();
    EXPECT_FALSE(plan.drop_report());
    EXPECT_FALSE(plan.drop_round());
  }
  EXPECT_EQ(plan.cells_out(), 0u);
  EXPECT_EQ(plan.stats().outages_started, 0u);
  EXPECT_EQ(plan.stats().reports_dropped, 0u);
  EXPECT_EQ(plan.stats().rounds_dropped, 0u);
  for (CellId cell = 0; cell < 16; ++cell) {
    EXPECT_FALSE(plan.cell_out(cell));
  }
}

TEST(FaultPlan, DeterministicGivenSeed) {
  FaultPlan a(all_on(), 36);
  FaultPlan b(all_on(), 36);
  for (int step = 0; step < 300; ++step) {
    a.begin_step();
    b.begin_step();
    EXPECT_EQ(a.cells_out(), b.cells_out());
    EXPECT_EQ(a.drop_report(), b.drop_report());
    EXPECT_EQ(a.drop_round(), b.drop_round());
    for (CellId cell = 0; cell < 36; ++cell) {
      ASSERT_EQ(a.cell_out(cell), b.cell_out(cell)) << "step " << step;
    }
  }
  EXPECT_EQ(a.stats().outages_started, b.stats().outages_started);
  EXPECT_EQ(a.stats().reports_dropped, b.stats().reports_dropped);
  EXPECT_EQ(a.stats().rounds_dropped, b.stats().rounds_dropped);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultConfig other = all_on();
  other.seed = 100;
  FaultPlan a(all_on(), 36);
  FaultPlan b(other, 36);
  std::size_t disagreements = 0;
  for (int step = 0; step < 300; ++step) {
    a.begin_step();
    b.begin_step();
    if (a.drop_report() != b.drop_report()) ++disagreements;
  }
  EXPECT_GT(disagreements, 0u);
}

TEST(FaultPlan, OutageClocksExpireOnSchedule) {
  // rate = 1 with duration 1: every begin_step expires yesterday's
  // outage and starts today's, so exactly one cell is ever dark.
  FaultConfig config;
  config.cell_outage_rate = 1.0;
  config.outage_duration = 1;
  config.seed = 7;
  FaultPlan plan(config, 9);
  for (int step = 0; step < 50; ++step) {
    plan.begin_step();
    EXPECT_EQ(plan.cells_out(), 1u);
    std::size_t dark = 0;
    for (CellId cell = 0; cell < 9; ++cell) {
      if (plan.cell_out(cell)) ++dark;
    }
    EXPECT_EQ(dark, plan.cells_out());
  }
  EXPECT_EQ(plan.stats().outages_started, 50u);
}

TEST(FaultPlan, LongerOutagesAccumulate) {
  FaultConfig config;
  config.cell_outage_rate = 1.0;
  config.outage_duration = 100;  // longer than the horizon: nothing expires
  config.seed = 8;
  FaultPlan plan(config, 64);
  for (int step = 0; step < 30; ++step) plan.begin_step();
  // One outage draw per step; repeats refresh instead of double-count.
  EXPECT_GT(plan.cells_out(), 10u);
  EXPECT_LE(plan.cells_out(), 30u);
  EXPECT_EQ(plan.stats().outages_started, plan.cells_out());
}

TEST(FaultPlan, CertainDropRatesAlwaysFireAndCount) {
  FaultConfig config;
  config.report_loss_rate = 1.0;
  config.round_drop_rate = 1.0;
  FaultPlan plan(config, 4);
  for (int i = 0; i < 25; ++i) {
    EXPECT_TRUE(plan.drop_report());
    EXPECT_TRUE(plan.drop_round());
  }
  EXPECT_EQ(plan.stats().reports_dropped, 25u);
  EXPECT_EQ(plan.stats().rounds_dropped, 25u);
}

TEST(FaultPlan, DropRatesApproximateTheirProbability) {
  FaultConfig config;
  config.report_loss_rate = 0.25;
  config.seed = 11;
  FaultPlan plan(config, 4);
  std::size_t dropped = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (plan.drop_report()) ++dropped;
  }
  const double rate = static_cast<double>(dropped) / trials;
  EXPECT_NEAR(rate, 0.25, 0.02);
  EXPECT_EQ(plan.stats().reports_dropped, dropped);
}

}  // namespace
}  // namespace confcall::cellular
