// Tests for the grid topology and location areas.
#include "cellular/topology.h"

#include "cellular/mobility.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace confcall::cellular {
namespace {

TEST(GridTopology, DimensionsAndIndexing) {
  const GridTopology grid(3, 4);
  EXPECT_EQ(grid.num_cells(), 12u);
  EXPECT_EQ(grid.cell_at(0, 0), 0u);
  EXPECT_EQ(grid.cell_at(2, 3), 11u);
  EXPECT_EQ(grid.row_of(7), 1u);
  EXPECT_EQ(grid.col_of(7), 3u);
  EXPECT_THROW((void)grid.cell_at(3, 0), std::invalid_argument);
  EXPECT_THROW(GridTopology(0, 4), std::invalid_argument);
}

TEST(GridTopology, InteriorCellHasFourNeighbors) {
  const GridTopology grid(3, 3);
  const auto& adj = grid.neighbors(grid.cell_at(1, 1));
  EXPECT_EQ(adj.size(), 4u);
}

TEST(GridTopology, CornerHasTwoNeighborsWhenBounded) {
  const GridTopology grid(3, 3, /*toroidal=*/false);
  EXPECT_EQ(grid.neighbors(grid.cell_at(0, 0)).size(), 2u);
  EXPECT_EQ(grid.neighbors(grid.cell_at(2, 2)).size(), 2u);
}

TEST(GridTopology, ToroidalIsRegular) {
  const GridTopology grid(3, 4, /*toroidal=*/true);
  for (std::size_t cell = 0; cell < grid.num_cells(); ++cell) {
    EXPECT_EQ(grid.neighbors(static_cast<CellId>(cell)).size(), 4u);
  }
}

TEST(GridTopology, NeighborsAreSymmetric) {
  for (const bool toroidal : {false, true}) {
    const GridTopology grid(4, 5, toroidal);
    for (std::size_t cell = 0; cell < grid.num_cells(); ++cell) {
      for (const CellId n : grid.neighbors(static_cast<CellId>(cell))) {
        const auto& back = grid.neighbors(n);
        EXPECT_NE(std::find(back.begin(), back.end(),
                            static_cast<CellId>(cell)),
                  back.end());
      }
    }
  }
}

TEST(GridTopology, DegenerateSingleRow) {
  const GridTopology line(1, 5);
  EXPECT_EQ(line.neighbors(0).size(), 1u);
  EXPECT_EQ(line.neighbors(2).size(), 2u);
  const GridTopology dot(1, 1);
  EXPECT_TRUE(dot.neighbors(0).empty());
}

TEST(GridTopology, MooreNeighborhoodHasEightInteriorNeighbors) {
  const GridTopology grid(4, 4, /*toroidal=*/false, Neighborhood::kMoore);
  EXPECT_EQ(grid.neighbors(grid.cell_at(1, 1)).size(), 8u);
  EXPECT_EQ(grid.neighbors(grid.cell_at(0, 0)).size(), 3u);
  const GridTopology torus(4, 4, /*toroidal=*/true, Neighborhood::kMoore);
  for (std::size_t cell = 0; cell < torus.num_cells(); ++cell) {
    EXPECT_EQ(torus.neighbors(static_cast<CellId>(cell)).size(), 8u);
  }
}

TEST(GridTopology, HexNeighborhoodHasSixNeighbors) {
  const GridTopology torus(4, 5, /*toroidal=*/true,
                           Neighborhood::kHexagonal);
  for (std::size_t cell = 0; cell < torus.num_cells(); ++cell) {
    EXPECT_EQ(torus.neighbors(static_cast<CellId>(cell)).size(), 6u);
  }
  // Bounded hex grid: interior cells still have 6.
  const GridTopology flat(5, 5, /*toroidal=*/false,
                          Neighborhood::kHexagonal);
  EXPECT_EQ(flat.neighbors(flat.cell_at(2, 2)).size(), 6u);
}

TEST(GridTopology, HexToroidalNeedsEvenRows) {
  EXPECT_THROW(GridTopology(3, 4, /*toroidal=*/true,
                            Neighborhood::kHexagonal),
               std::invalid_argument);
  EXPECT_NO_THROW(GridTopology(3, 4, /*toroidal=*/false,
                               Neighborhood::kHexagonal));
}

TEST(GridTopology, AllNeighborhoodsAreSymmetricSimpleGraphs) {
  for (const Neighborhood hood :
       {Neighborhood::kVonNeumann, Neighborhood::kMoore,
        Neighborhood::kHexagonal}) {
    for (const bool toroidal : {false, true}) {
      const GridTopology grid(4, 5, toroidal, hood);
      for (std::size_t cell = 0; cell < grid.num_cells(); ++cell) {
        const auto& adj = grid.neighbors(static_cast<CellId>(cell));
        // No self loops, no duplicates.
        EXPECT_EQ(std::count(adj.begin(), adj.end(),
                             static_cast<CellId>(cell)),
                  0);
        auto sorted = adj;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
                  sorted.end());
        // Symmetry.
        for (const CellId n : adj) {
          const auto& back = grid.neighbors(n);
          EXPECT_NE(std::find(back.begin(), back.end(),
                              static_cast<CellId>(cell)),
                    back.end());
        }
      }
    }
  }
}

TEST(GridTopology, TinyToroidalGridsStaySimple) {
  // 2-wide wrap would duplicate left/right neighbours; must be deduped.
  const GridTopology grid(1, 2, /*toroidal=*/true);
  EXPECT_EQ(grid.neighbors(0), (std::vector<CellId>{1}));
  const GridTopology square(2, 2, /*toroidal=*/true, Neighborhood::kMoore);
  EXPECT_EQ(square.neighbors(0).size(), 3u);  // the other three cells
}

TEST(GridTopology, MooreDistanceIsChebyshev) {
  const GridTopology grid(5, 5, /*toroidal=*/false, Neighborhood::kMoore);
  EXPECT_EQ(grid.distance(grid.cell_at(0, 0), grid.cell_at(3, 1)), 3u);
  EXPECT_EQ(grid.distance(grid.cell_at(0, 0), grid.cell_at(2, 2)), 2u);
}

TEST(GridTopology, HexDistanceMatchesBfsExpectations) {
  const GridTopology grid(6, 6, /*toroidal=*/false,
                          Neighborhood::kHexagonal);
  // Every neighbor at distance 1, and distance is a metric on samples.
  const CellId center = grid.cell_at(2, 2);
  for (const CellId n : grid.neighbors(center)) {
    EXPECT_EQ(grid.distance(center, n), 1u);
  }
  // Row 0 to row 5 straight down: odd-r hex rows advance one per step.
  EXPECT_EQ(grid.distance(grid.cell_at(0, 2), grid.cell_at(5, 2)), 5u);
  EXPECT_EQ(grid.distance(center, center), 0u);
}

TEST(GridTopology, MobilityWorksOnHexGrid) {
  const GridTopology grid(4, 4, /*toroidal=*/true,
                          Neighborhood::kHexagonal);
  const MarkovMobility mobility(grid, 0.4);
  const auto stationary = mobility.stationary_distribution();
  // Vertex-transitive hex torus: uniform stationary distribution.
  for (const double p : stationary) EXPECT_NEAR(p, 1.0 / 16.0, 1e-9);
}

TEST(GridTopology, ManhattanDistanceBounded) {
  const GridTopology grid(4, 5, /*toroidal=*/false);
  EXPECT_EQ(grid.distance(grid.cell_at(0, 0), grid.cell_at(0, 0)), 0u);
  EXPECT_EQ(grid.distance(grid.cell_at(0, 0), grid.cell_at(3, 4)), 7u);
  EXPECT_EQ(grid.distance(grid.cell_at(1, 2), grid.cell_at(2, 0)), 3u);
  // Symmetric.
  EXPECT_EQ(grid.distance(grid.cell_at(3, 4), grid.cell_at(0, 0)), 7u);
  EXPECT_THROW((void)grid.distance(0, 99), std::invalid_argument);
}

TEST(GridTopology, ToroidalDistanceWraps) {
  const GridTopology grid(4, 6, /*toroidal=*/true);
  // (0,0) -> (3,5): direct 3+5, wrapped 1+1.
  EXPECT_EQ(grid.distance(grid.cell_at(0, 0), grid.cell_at(3, 5)), 2u);
  EXPECT_EQ(grid.distance(grid.cell_at(0, 0), grid.cell_at(2, 3)), 5u);
}

TEST(GridTopology, DistanceOneForNeighbors) {
  for (const bool toroidal : {false, true}) {
    const GridTopology grid(3, 4, toroidal);
    for (std::size_t cell = 0; cell < grid.num_cells(); ++cell) {
      for (const CellId n : grid.neighbors(static_cast<CellId>(cell))) {
        EXPECT_EQ(grid.distance(static_cast<CellId>(cell), n), 1u);
      }
    }
  }
}

TEST(LocationAreas, TilesPartitionTheGrid) {
  const GridTopology grid(4, 6);
  const LocationAreas areas = LocationAreas::tiles(grid, 2, 3);
  EXPECT_EQ(areas.num_areas(), 4u);
  std::size_t covered = 0;
  for (std::size_t area = 0; area < areas.num_areas(); ++area) {
    covered += areas.cells_in(area).size();
    for (const CellId cell : areas.cells_in(area)) {
      EXPECT_EQ(areas.area_of(cell), area);
    }
  }
  EXPECT_EQ(covered, grid.num_cells());
}

TEST(LocationAreas, UnevenTilesStillPartition) {
  const GridTopology grid(5, 5);
  const LocationAreas areas = LocationAreas::tiles(grid, 2, 2);
  std::size_t covered = 0;
  for (std::size_t area = 0; area < areas.num_areas(); ++area) {
    covered += areas.cells_in(area).size();
  }
  EXPECT_EQ(covered, 25u);
  EXPECT_EQ(areas.num_areas(), 9u);  // 3x3 tiles, edges smaller
}

TEST(LocationAreas, WholeGridSingleArea) {
  const GridTopology grid(3, 3);
  const LocationAreas areas = LocationAreas::whole_grid(grid);
  EXPECT_EQ(areas.num_areas(), 1u);
  EXPECT_EQ(areas.cells_in(0).size(), 9u);
  EXPECT_EQ(areas.area_of(5), 0u);
}

TEST(LocationAreas, ValidatesTileDimensions) {
  const GridTopology grid(3, 3);
  EXPECT_THROW(LocationAreas::tiles(grid, 0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace confcall::cellular
