// Tests for the location database and reporting policies, plus the call
// generator.
#include "cellular/location_db.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "cellular/events.h"

namespace confcall::cellular {
namespace {

class LocationDbTest : public ::testing::Test {
 protected:
  LocationDbTest()
      : grid_(4, 4),
        areas_(LocationAreas::tiles(grid_, 2, 2)),
        db_(2, areas_, {grid_.cell_at(0, 0), grid_.cell_at(3, 3)}) {}

  GridTopology grid_;
  LocationAreas areas_;
  LocationDatabase db_;
};

TEST_F(LocationDbTest, InitialRegistration) {
  EXPECT_EQ(db_.reported_cell(0), grid_.cell_at(0, 0));
  EXPECT_EQ(db_.reported_area(0), areas_.area_of(grid_.cell_at(0, 0)));
  EXPECT_EQ(db_.steps_since_report(0), 0u);
}

TEST_F(LocationDbTest, ConstructorValidates) {
  EXPECT_THROW(LocationDatabase(3, areas_, {0}), std::invalid_argument);
}

TEST_F(LocationDbTest, NeverPolicyStaysSilent) {
  EXPECT_FALSE(db_.observe_move(0, grid_.cell_at(3, 3),
                                ReportPolicy::kNever));
  // The database record is untouched.
  EXPECT_EQ(db_.reported_cell(0), grid_.cell_at(0, 0));
}

TEST_F(LocationDbTest, AreaCrossingReportsOnlyOnCrossing) {
  // (0,0) -> (0,1): same 2x2 area, no report.
  EXPECT_FALSE(db_.observe_move(0, grid_.cell_at(0, 1),
                                ReportPolicy::kOnAreaCrossing));
  // (0,1) -> (0,2): crosses into the next tile.
  EXPECT_TRUE(db_.observe_move(0, grid_.cell_at(0, 2),
                               ReportPolicy::kOnAreaCrossing));
  EXPECT_EQ(db_.reported_area(0), areas_.area_of(grid_.cell_at(0, 2)));
  EXPECT_EQ(db_.reported_cell(0), grid_.cell_at(0, 2));
}

TEST_F(LocationDbTest, CellCrossingReportsEveryChange) {
  EXPECT_TRUE(db_.observe_move(0, grid_.cell_at(0, 1),
                               ReportPolicy::kOnCellCrossing));
  EXPECT_FALSE(db_.observe_move(0, grid_.cell_at(0, 1),
                                ReportPolicy::kOnCellCrossing));
}

TEST_F(LocationDbTest, TickAndReportResetClock) {
  db_.tick();
  db_.tick();
  EXPECT_EQ(db_.steps_since_report(0), 2u);
  db_.record_report(0, grid_.cell_at(1, 1));
  EXPECT_EQ(db_.steps_since_report(0), 0u);
  EXPECT_EQ(db_.steps_since_report(1), 2u);
}

TEST(CallGenerator, ValidatesConfiguration) {
  EXPECT_THROW(CallGenerator(-0.1, 5, 1, 2), std::invalid_argument);
  EXPECT_THROW(CallGenerator(1.1, 5, 1, 2), std::invalid_argument);
  EXPECT_THROW(CallGenerator(0.5, 5, 0, 2), std::invalid_argument);
  EXPECT_THROW(CallGenerator(0.5, 5, 3, 2), std::invalid_argument);
  EXPECT_THROW(CallGenerator(0.5, 5, 2, 6), std::invalid_argument);
}

TEST(CallGenerator, RateZeroNeverCalls) {
  const CallGenerator generator(0.0, 5, 2, 3);
  prob::Rng rng(1);
  for (int t = 0; t < 100; ++t) {
    EXPECT_TRUE(generator.maybe_call(rng).participants.empty());
  }
}

TEST(CallGenerator, RateOneAlwaysCalls) {
  const CallGenerator generator(1.0, 5, 2, 3);
  prob::Rng rng(2);
  for (int t = 0; t < 100; ++t) {
    const auto event = generator.maybe_call(rng);
    EXPECT_GE(event.participants.size(), 2u);
    EXPECT_LE(event.participants.size(), 3u);
  }
}

TEST(CallGenerator, ParticipantsAreDistinctAndInRange) {
  const CallGenerator generator(1.0, 6, 4, 6);
  prob::Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    const auto event = generator.maybe_call(rng);
    std::set<UserId> unique(event.participants.begin(),
                            event.participants.end());
    EXPECT_EQ(unique.size(), event.participants.size());
    for (const UserId user : event.participants) EXPECT_LT(user, 6u);
  }
}

TEST(CallGenerator, RateMatchesFrequency) {
  const CallGenerator generator(0.3, 4, 1, 1);
  prob::Rng rng(4);
  int calls = 0;
  const int n = 20000;
  for (int t = 0; t < n; ++t) {
    if (!generator.maybe_call(rng).participants.empty()) ++calls;
  }
  EXPECT_NEAR(calls / static_cast<double>(n), 0.3, 0.015);
}

TEST(CallGenerator, EveryUserGetsCalled) {
  const CallGenerator generator(1.0, 8, 2, 3);
  prob::Rng rng(5);
  std::set<UserId> seen;
  for (int t = 0; t < 500; ++t) {
    for (const UserId user : generator.maybe_call(rng).participants) {
      seen.insert(user);
    }
  }
  EXPECT_EQ(seen.size(), 8u);
}

}  // namespace
}  // namespace confcall::cellular
