// Integration tests for the LocationService facade.
#include "cellular/service.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "cellular/profile.h"
#include "core/resilient_planner.h"
#include "support/metrics.h"

namespace confcall::cellular {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : grid_(6, 6, /*toroidal=*/true),
        areas_(LocationAreas::tiles(grid_, 3, 3)),
        mobility_(grid_, 0.5) {}

  LocationService make_service(LocationService::Config config,
                               std::vector<CellId> cells = {0, 7, 20, 35}) {
    return LocationService(grid_, areas_, mobility_, config,
                           std::move(cells));
  }

  GridTopology grid_;
  LocationAreas areas_;
  MarkovMobility mobility_;
};

TEST_F(ServiceTest, ValidatesConfiguration) {
  LocationService::Config config;
  EXPECT_THROW(make_service(config, {}), std::invalid_argument);
  config.max_paging_rounds = 0;
  EXPECT_THROW(make_service(config), std::invalid_argument);
  config = {};
  config.detection_probability = 0.0;
  EXPECT_THROW(make_service(config), std::invalid_argument);
  config = {};
  config.detection_probability = 0.5;
  config.paging_policy = PagingPolicy::kAdaptive;
  EXPECT_THROW(make_service(config), std::invalid_argument);
  config = {};
  EXPECT_THROW(make_service(config, {99}), std::invalid_argument);
}

TEST_F(ServiceTest, AttachRegistersEveryone) {
  const LocationService service = make_service({});
  EXPECT_EQ(service.num_users(), 4u);
  EXPECT_EQ(service.database().reported_cell(0), 0u);
  EXPECT_EQ(service.database().reported_area(2), areas_.area_of(20));
}

TEST_F(ServiceTest, ObserveMoveAppliesPolicy) {
  LocationService::Config config;
  config.report_policy = ReportPolicy::kOnAreaCrossing;
  LocationService service = make_service(config);
  // Within-area move (cell 0 -> cell 1, both in the top-left 3x3 tile).
  EXPECT_FALSE(service.observe_move(0, 1));
  // Crossing move (cell 1 -> cell 3 lies in the next tile).
  EXPECT_TRUE(service.observe_move(0, 3));
  EXPECT_EQ(service.database().reported_cell(0), 3u);
  EXPECT_THROW(service.observe_move(9, 0), std::invalid_argument);
}

TEST_F(ServiceTest, LocateFindsFreshUsersWithoutFallback) {
  LocationService service = make_service({});
  prob::Rng rng(1);
  const UserId users[] = {0, 1};
  const CellId truth[] = {0, 7};  // exactly where they registered
  const auto outcome = service.locate(users, truth, rng);
  EXPECT_EQ(outcome.fallback_pages, 0u);
  EXPECT_EQ(outcome.missed_detections, 0u);
  EXPECT_GE(outcome.cells_paged, 1u);
  EXPECT_LE(outcome.cells_paged, 18u);  // two 9-cell areas at most
}

TEST_F(ServiceTest, LocateValidatesArguments) {
  LocationService service = make_service({});
  prob::Rng rng(1);
  const UserId users[] = {0, 1};
  const CellId short_truth[] = {0};
  EXPECT_THROW(service.locate(users, short_truth, rng),
               std::invalid_argument);
  EXPECT_THROW(service.locate({}, {}, rng), std::invalid_argument);
  const CellId bad_cell[] = {0, 99};
  EXPECT_THROW(service.locate(users, bad_cell, rng), std::invalid_argument);
}

TEST_F(ServiceTest, StaleUserTriggersRecoverySweep) {
  LocationService::Config config;
  config.report_policy = ReportPolicy::kNever;
  LocationService service = make_service(config);
  prob::Rng rng(2);
  // User 0 registered at cell 0 (area 0) but actually sits in cell 35
  // (the opposite corner's area).
  const UserId users[] = {0};
  const CellId truth[] = {35};
  const auto outcome = service.locate(users, truth, rng);
  EXPECT_GT(outcome.fallback_pages, 0u);
  // The implicit report refreshed the record.
  EXPECT_EQ(service.database().reported_cell(0), 35u);
  // A repeat locate now needs no sweep.
  const auto again = service.locate(users, truth, rng);
  EXPECT_EQ(again.fallback_pages, 0u);
}

TEST_F(ServiceTest, TimerPolicyReportsEveryTSteps) {
  LocationService::Config config;
  config.report_policy = ReportPolicy::kEveryTSteps;
  config.timer_period = 4;
  LocationService service = make_service(config, {0});
  int reports = 0;
  for (int t = 0; t < 20; ++t) {
    if (service.observe_move(0, 0)) ++reports;  // not even moving
    service.tick();
  }
  EXPECT_EQ(reports, 4);  // steps 4, 8, 12, 16: exact period 4
}

TEST_F(ServiceTest, DistancePolicyReportsOnThreshold) {
  LocationService::Config config;
  config.report_policy = ReportPolicy::kDistanceThreshold;
  config.distance_threshold = 2;
  LocationService service = make_service(config, {0});
  // One hop: below threshold.
  EXPECT_FALSE(service.observe_move(0, 1));
  // Two hops from the reported cell 0: reports and re-anchors.
  EXPECT_TRUE(service.observe_move(0, 2));
  EXPECT_EQ(service.database().reported_cell(0), 2u);
  // One hop from the new anchor: silent again.
  EXPECT_FALSE(service.observe_move(0, 3));
}

TEST_F(ServiceTest, ExtendedPolicyParametersValidated) {
  LocationService::Config config;
  config.timer_period = 0;
  EXPECT_THROW(make_service(config), std::invalid_argument);
  config = {};
  config.distance_threshold = 0;
  EXPECT_THROW(make_service(config), std::invalid_argument);
}

TEST_F(ServiceTest, DatabaseRejectsExtendedPoliciesDirectly) {
  LocationDatabase db(1, areas_, {0});
  EXPECT_THROW(db.observe_move(0, 1, ReportPolicy::kEveryTSteps),
               std::invalid_argument);
  EXPECT_THROW(db.observe_move(0, 1, ReportPolicy::kDistanceThreshold),
               std::invalid_argument);
}

TEST_F(ServiceTest, ImperfectDetectionReportsMisses) {
  LocationService::Config config;
  config.detection_probability = 0.2;
  LocationService service = make_service(config);
  prob::Rng rng(3);
  std::size_t total_misses = 0;
  const UserId users[] = {0, 1, 2, 3};
  const CellId truth[] = {0, 7, 20, 35};
  for (int call = 0; call < 30; ++call) {
    total_misses += service.locate(users, truth, rng).missed_detections;
  }
  EXPECT_GT(total_misses, 0u);
}

TEST_F(ServiceTest, ProfileForRespectsKind) {
  LocationService::Config empirical;
  empirical.profile_kind = ProfileKind::kEmpirical;
  empirical.laplace_alpha = 1.0;
  LocationService service = make_service(empirical);
  // Feed a heavily-biased trace for user 0 inside area 0.
  for (int t = 0; t < 50; ++t) {
    service.observe_move(0, 1);
    service.tick();
  }
  const auto profile = service.profile_for(0, 0);
  ASSERT_EQ(profile.size(), 9u);
  // Cell 1 is local index 1 in area 0's cell list {0,1,2,6,7,8,12,13,14}.
  const auto top =
      std::max_element(profile.begin(), profile.end()) - profile.begin();
  EXPECT_EQ(top, 1);
  EXPECT_NEAR(std::accumulate(profile.begin(), profile.end(), 0.0), 1.0,
              1e-12);
}

TEST_F(ServiceTest, StationaryProfileIsUniformOnTorus) {
  LocationService::Config config;
  config.profile_kind = ProfileKind::kStationary;
  const LocationService service = make_service(config);
  const auto profile = service.profile_for(0, 0);
  for (const double p : profile) EXPECT_NEAR(p, 1.0 / 9.0, 1e-9);
}

TEST_F(ServiceTest, AdaptivePolicyLocates) {
  LocationService::Config config;
  config.paging_policy = PagingPolicy::kAdaptive;
  LocationService service = make_service(config);
  prob::Rng rng(11);
  const UserId users[] = {0, 1, 2};
  const CellId truth[] = {0, 7, 20};
  const auto outcome = service.locate(users, truth, rng);
  EXPECT_EQ(outcome.fallback_pages, 0u);
  EXPECT_GE(outcome.cells_paged, 3u);
  EXPECT_LE(outcome.rounds_used, config.max_paging_rounds);
  // Implicit reports landed.
  EXPECT_EQ(service.database().reported_cell(2), 20u);
}

TEST_F(ServiceTest, AdaptiveFallsBackForStaleUsers) {
  LocationService::Config config;
  config.paging_policy = PagingPolicy::kAdaptive;
  config.report_policy = ReportPolicy::kNever;
  LocationService service = make_service(config);
  prob::Rng rng(12);
  const UserId users[] = {0};
  const CellId truth[] = {35};  // registered at 0, actually far away
  const auto outcome = service.locate(users, truth, rng);
  EXPECT_GT(outcome.fallback_pages, 0u);
  EXPECT_EQ(service.database().reported_cell(0), 35u);
}

TEST_F(ServiceTest, GreedyLocatePagesNoMoreThanBlanketOnAverage) {
  LocationService::Config greedy_config;
  greedy_config.paging_policy = PagingPolicy::kGreedy;
  LocationService::Config blanket_config;
  blanket_config.paging_policy = PagingPolicy::kBlanketArea;
  LocationService greedy = make_service(greedy_config);
  LocationService blanket = make_service(blanket_config);
  prob::Rng rng_a(4);
  prob::Rng rng_b(4);
  std::size_t greedy_pages = 0;
  std::size_t blanket_pages = 0;
  prob::Rng walk(5);
  std::vector<CellId> cells = {0, 7, 20, 35};
  for (int call = 0; call < 60; ++call) {
    for (std::size_t u = 0; u < cells.size(); ++u) {
      cells[u] = mobility_.step(cells[u], walk);
      greedy.observe_move(static_cast<UserId>(u), cells[u]);
      blanket.observe_move(static_cast<UserId>(u), cells[u]);
    }
    greedy.tick();
    blanket.tick();
    const UserId users[] = {0, 1, 2, 3};
    greedy_pages += greedy.locate(users, cells, rng_a).cells_paged;
    blanket_pages += blanket.locate(users, cells, rng_b).cells_paged;
  }
  EXPECT_LT(greedy_pages, blanket_pages);
}

TEST_F(ServiceTest, RetryPolicyValidated) {
  LocationService::Config config;
  config.retry.backoff_base = 16;
  config.retry.backoff_cap = 4;
  EXPECT_THROW(make_service(config), std::invalid_argument);
  config = {};
  config.retry.backoff_base = 4;
  config.retry.backoff_cap = 4;  // equal is fine
  EXPECT_NO_THROW(make_service(config));
}

TEST_F(ServiceTest, AttachFaultsRejectsAdaptivePolicy) {
  LocationService::Config config;
  config.paging_policy = PagingPolicy::kAdaptive;
  LocationService service = make_service(config);
  FaultPlan plan(FaultConfig{}, grid_.num_cells());
  EXPECT_THROW(service.attach_faults(&plan), std::invalid_argument);
  // nullptr detach is always allowed.
  LocationService greedy = make_service({});
  greedy.attach_faults(&plan);
  greedy.attach_faults(nullptr);
}

TEST_F(ServiceTest, DroppedReportLeavesDatabaseStale) {
  FaultConfig faulty;
  faulty.report_loss_rate = 1.0;  // every report is swallowed
  FaultPlan plan(faulty, grid_.num_cells());
  LocationService service = make_service({});
  service.attach_faults(&plan);
  // An area-crossing move fires the policy (uplink cost paid)...
  EXPECT_TRUE(service.observe_move(0, 3));
  // ...but the network never heard it.
  EXPECT_EQ(service.database().reported_cell(0), 0u);
  EXPECT_EQ(service.reports_lost(), 1u);
  EXPECT_EQ(plan.stats().reports_dropped, 1u);
}

TEST_F(ServiceTest, DarkCellPagesAreCountedAndCallAbandoned) {
  // One fresh outage per step that never expires: after enough steps the
  // callee's cell is dark, every page on it is wasted, and the bounded
  // retry policy must abandon rather than spin.
  FaultConfig faulty;
  faulty.cell_outage_rate = 1.0;
  faulty.outage_duration = 10000;
  faulty.seed = 3;
  FaultPlan plan(faulty, grid_.num_cells());
  for (int step = 0; step < 400; ++step) plan.begin_step();
  ASSERT_TRUE(plan.cell_out(0));
  LocationService::Config config;
  config.retry.max_retries = 2;
  LocationService service = make_service(config);
  service.attach_faults(&plan);
  prob::Rng rng(5);
  const UserId users[] = {0};
  const CellId truth[] = {0};
  const auto outcome = service.locate(users, truth, rng);
  // Strategy phase + both recovery sweeps all paged the dark cell.
  EXPECT_GE(outcome.outage_pages, 3u);
  EXPECT_EQ(outcome.retries, 2u);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_TRUE(outcome.abandoned);
  EXPECT_EQ(outcome.forced_registrations, 1u);
}

TEST_F(ServiceTest, PageBudgetAbandonsInsteadOfSweeping) {
  LocationService::Config config;
  config.report_policy = ReportPolicy::kNever;
  config.retry.page_budget = 10;  // less than one 36-cell sweep
  LocationService service = make_service(config);
  prob::Rng rng(6);
  // Stale: registered at 0, actually at 35 — recovery would need a full
  // sweep, which the budget forbids.
  const UserId users[] = {0};
  const CellId truth[] = {35};
  const auto outcome = service.locate(users, truth, rng);
  EXPECT_TRUE(outcome.budget_exhausted);
  EXPECT_TRUE(outcome.abandoned);
  EXPECT_EQ(outcome.forced_registrations, 1u);
  EXPECT_EQ(outcome.fallback_pages, 0u);
  EXPECT_LE(outcome.cells_paged, 10u);
  // Force-registration still commits the truth.
  EXPECT_EQ(service.database().reported_cell(0), 35u);
}

TEST_F(ServiceTest, RoundDeadlineCutsRecoveryShort) {
  LocationService::Config config;
  config.report_policy = ReportPolicy::kNever;
  config.retry.backoff_base = 4;
  config.retry.backoff_cap = 8;
  config.retry.round_deadline = 4;  // search rounds alone nearly fill it
  LocationService service = make_service(config);
  prob::Rng rng(7);
  const UserId users[] = {0};
  const CellId truth[] = {35};
  const auto outcome = service.locate(users, truth, rng);
  // The first retry needs 4 backoff rounds + 1 sweep round: over the
  // deadline, so recovery never starts.
  EXPECT_TRUE(outcome.budget_exhausted);
  EXPECT_TRUE(outcome.abandoned);
  EXPECT_EQ(outcome.retries, 0u);
  EXPECT_LE(outcome.rounds_used, 4u);
}

TEST_F(ServiceTest, BackoffSpendsRoundsNotPages) {
  LocationService::Config config;
  config.report_policy = ReportPolicy::kNever;
  config.retry.backoff_base = 2;
  config.retry.backoff_cap = 8;
  LocationService with_backoff = make_service(config);
  LocationService::Config plain;
  plain.report_policy = ReportPolicy::kNever;
  LocationService without_backoff = make_service(plain);
  prob::Rng rng_a(8);
  prob::Rng rng_b(8);
  const UserId users[] = {0};
  const CellId truth[] = {35};
  const auto slow = with_backoff.locate(users, truth, rng_a);
  const auto fast = without_backoff.locate(users, truth, rng_b);
  EXPECT_GT(slow.backoff_rounds, 0u);
  EXPECT_EQ(fast.backoff_rounds, 0u);
  EXPECT_EQ(slow.cells_paged, fast.cells_paged);
  EXPECT_EQ(slow.rounds_used, fast.rounds_used + slow.backoff_rounds);
}

TEST_F(ServiceTest, ZeroPageBudgetNeverGatesRecovery) {
  // page_budget = 0 is "no budget", not "no pages": recovery must run.
  LocationService::Config config;
  config.report_policy = ReportPolicy::kNever;
  config.retry.page_budget = 0;
  LocationService service = make_service(config);
  prob::Rng rng(21);
  const UserId users[] = {0};
  const CellId truth[] = {35};
  const auto outcome = service.locate(users, truth, rng);
  EXPECT_FALSE(outcome.budget_exhausted);
  EXPECT_GT(outcome.fallback_pages, 0u);
  EXPECT_FALSE(outcome.abandoned);
}

TEST_F(ServiceTest, ZeroRoundDeadlineNeverGatesRecovery) {
  // round_deadline = 0 is "no deadline": even an 8-round backoff before
  // the first sweep must not be refused.
  LocationService::Config config;
  config.report_policy = ReportPolicy::kNever;
  config.retry.round_deadline = 0;
  config.retry.backoff_base = 8;
  config.retry.backoff_cap = 8;
  LocationService service = make_service(config);
  prob::Rng rng(22);
  const UserId users[] = {0};
  const CellId truth[] = {35};
  const auto outcome = service.locate(users, truth, rng);
  EXPECT_FALSE(outcome.budget_exhausted);
  EXPECT_GE(outcome.retries, 1u);
  EXPECT_GE(outcome.backoff_rounds, 8u);
  EXPECT_FALSE(outcome.abandoned);
}

TEST_F(ServiceTest, BackoffShiftSaturatesAtCapForLargeAttempts) {
  // 80 retries with exponential backoff: attempts past 63 would shift
  // past the width of the type; the policy must saturate at backoff_cap
  // instead of hitting undefined behaviour (ASan/UBSan CI guards this).
  FaultConfig faulty;
  faulty.cell_outage_rate = 1.0;
  faulty.outage_duration = 100000;
  faulty.seed = 3;
  FaultPlan plan(faulty, grid_.num_cells());
  for (int step = 0; step < 400; ++step) plan.begin_step();
  ASSERT_TRUE(plan.cell_out(0));
  LocationService::Config config;
  config.retry.max_retries = 80;
  config.retry.backoff_base = 1;
  config.retry.backoff_cap = 4;
  LocationService service = make_service(config);
  service.attach_faults(&plan);
  prob::Rng rng(23);
  const UserId users[] = {0};
  const CellId truth[] = {0};  // a dark cell: never answered
  const auto outcome = service.locate(users, truth, rng);
  EXPECT_EQ(outcome.retries, 80u);
  // Backoffs 1, 2, then 4 for the remaining 78 attempts.
  EXPECT_EQ(outcome.backoff_rounds, 1u + 2u + 78u * 4u);
  EXPECT_TRUE(outcome.abandoned);
}

TEST_F(ServiceTest, RetryExactlyAtRoundDeadlineBoundaryStillRuns) {
  // The planned round plus the sweep land EXACTLY on the deadline: the
  // sweep must run (the gate is strictly "cannot finish by", not "would
  // touch").
  LocationService::Config config;
  config.report_policy = ReportPolicy::kNever;
  config.max_paging_rounds = 1;
  config.retry.round_deadline = 2;  // 1 planned round + 1 sweep round
  LocationService service = make_service(config);
  prob::Rng rng(24);
  const UserId users[] = {0};
  const CellId truth[] = {35};
  const auto outcome = service.locate(users, truth, rng);
  EXPECT_EQ(outcome.retries, 1u);
  EXPECT_EQ(outcome.rounds_used, 2u);
  EXPECT_FALSE(outcome.budget_exhausted);
  EXPECT_FALSE(outcome.abandoned);
  // One round tighter and the same sweep is refused before it starts.
  LocationService::Config tight = config;
  tight.retry.round_deadline = 1;
  LocationService cramped = make_service(tight);
  prob::Rng rng_tight(24);
  const auto cut = cramped.locate(users, truth, rng_tight);
  EXPECT_EQ(cut.retries, 0u);
  EXPECT_TRUE(cut.budget_exhausted);
  EXPECT_TRUE(cut.abandoned);
}

TEST_F(ServiceTest, BoundedDeadlineNeedsClockAndRoundDuration) {
  LocationService service = make_service({});
  prob::Rng rng(25);
  const support::ManualClock clock;
  LocationService::LocateContext context;
  context.deadline = support::Deadline::after(1'000, clock);
  const UserId users[] = {0};
  const CellId truth[] = {0};
  EXPECT_THROW(service.locate(users, truth, rng, context),
               std::invalid_argument);
}

TEST_F(ServiceTest, DeadlineCapsPlannedRoundsAndCutsRecovery) {
  support::ManualClock clock;
  LocationService::Config config;
  config.report_policy = ReportPolicy::kNever;
  config.max_paging_rounds = 3;
  config.clock = &clock;
  config.round_duration_ns = 100;
  LocationService service = make_service(config);
  prob::Rng rng(26);
  LocationService::LocateContext context;
  context.deadline = support::Deadline::after(250, clock);  // 2 rounds
  const UserId users[] = {0};
  const CellId truth[] = {35};  // stale: recovery would need a sweep
  const auto outcome = service.locate(users, truth, rng, context);
  // The planning budget dropped from 3 to 2 rounds, and the sweep that
  // would have been round 3 was refused: the call abandoned instead of
  // overrunning its deadline.
  EXPECT_TRUE(outcome.deadline_limited);
  EXPECT_LE(outcome.rounds_used, 2u);
  EXPECT_TRUE(outcome.abandoned);
}

TEST_F(ServiceTest, ExpiredDeadlineAbandonsWithoutPaging) {
  support::ManualClock clock;
  LocationService::Config config;
  config.clock = &clock;
  config.round_duration_ns = 100;
  LocationService service = make_service(config);
  prob::Rng rng(27);
  LocationService::LocateContext context;
  context.deadline = support::Deadline::after(50, clock);  // < one round
  const UserId users[] = {0};
  const CellId truth[] = {0};
  const auto outcome = service.locate(users, truth, rng, context);
  EXPECT_TRUE(outcome.deadline_limited);
  EXPECT_EQ(outcome.cells_paged, 0u);
  EXPECT_EQ(outcome.rounds_used, 0u);
  EXPECT_TRUE(outcome.abandoned);
  EXPECT_EQ(outcome.forced_registrations, 1u);
}

TEST_F(ServiceTest, PlanCheapBlanketPagesTheArea) {
  LocationService service = make_service({});
  prob::Rng rng(28);
  LocationService::LocateContext context;
  context.plan_cheap = true;
  const UserId users[] = {0};
  const CellId truth[] = {0};
  const auto outcome = service.locate(users, truth, rng, context);
  // The cheap tier pages the whole 9-cell area in one round — no
  // planning, maximum bandwidth, minimum latency.
  EXPECT_EQ(outcome.cells_paged, 9u);
  EXPECT_EQ(outcome.rounds_used, 1u);
  EXPECT_FALSE(outcome.abandoned);
}

TEST_F(ServiceTest, ResilientPlannerServesLocate) {
  const auto resilient = core::ResilientPlanner::standard();
  LocationService::Config config;
  config.planner = resilient.get();
  LocationService service = make_service(config);
  prob::Rng rng(9);
  // Users 0 and 2 registered in different location areas, so the chain
  // plans two independent instances.
  const UserId users[] = {0, 2};
  const CellId truth[] = {0, 20};
  const auto outcome = service.locate(users, truth, rng);
  EXPECT_EQ(outcome.fallback_pages, 0u);
  EXPECT_GE(outcome.cells_paged, 1u);
  // The chain served from some tier for each of the two areas planned.
  std::uint64_t total_served = 0;
  for (const std::uint64_t count : resilient->served_counts()) {
    total_served += count;
  }
  EXPECT_EQ(total_served, 2u);
}

TEST_F(ServiceTest, PlannerOverrideRejectedUnderAdaptive) {
  const auto resilient = core::ResilientPlanner::standard();
  LocationService::Config config;
  config.planner = resilient.get();
  config.paging_policy = PagingPolicy::kAdaptive;
  EXPECT_THROW(make_service(config), std::invalid_argument);
}

// ---- locate_many batch transparency ---------------------------------

bool outcomes_equal(const LocationService::LocateOutcome& a,
                    const LocationService::LocateOutcome& b) {
  return a.cells_paged == b.cells_paged && a.rounds_used == b.rounds_used &&
         a.fallback_pages == b.fallback_pages &&
         a.missed_detections == b.missed_detections &&
         a.outage_pages == b.outage_pages &&
         a.dropped_rounds == b.dropped_rounds && a.retries == b.retries &&
         a.backoff_rounds == b.backoff_rounds &&
         a.forced_registrations == b.forced_registrations &&
         a.budget_exhausted == b.budget_exhausted &&
         a.degraded == b.degraded && a.abandoned == b.abandoned &&
         a.deadline_limited == b.deadline_limited;
}

class LocateManyTest : public ServiceTest,
                       public ::testing::WithParamInterface<bool> {};

TEST_P(LocateManyTest, MatchesSingleLocatesWithSameSeeds) {
  // Same request stream through N single locate() calls and through one
  // locate_many on an identically seeded twin service: outcomes must be
  // field-identical, plan cache on or off (the test parameter).
  LocationService::Config config;
  config.enable_plan_cache = GetParam();
  // Imperfect detection makes locate consume rng draws, so this also
  // pins the draw ORDER inside the batch, not just the plan.
  config.detection_probability = 0.7;
  LocationService single = make_service(config);
  LocationService batched = make_service(config);
  prob::Rng rng_single(99);
  prob::Rng rng_batched(99);

  const std::vector<std::vector<UserId>> groups = {
      {0, 1}, {2, 3}, {0, 2, 3}, {1}, {0, 1, 2, 3}, {3, 1}};
  const CellId cells[] = {0, 7, 20, 35};  // where the users registered

  std::vector<LocationService::LocateOutcome> single_outcomes;
  std::vector<std::vector<CellId>> truths;
  for (const std::vector<UserId>& users : groups) {
    std::vector<CellId> truth;
    for (const UserId user : users) truth.push_back(cells[user]);
    truths.push_back(std::move(truth));
    single_outcomes.push_back(
        single.locate(users, truths.back(), rng_single));
  }

  std::vector<LocationService::LocateRequest> requests;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    requests.push_back({groups[i], truths[i], {}});
  }
  const std::vector<LocationService::LocateOutcome> batched_outcomes =
      batched.locate_many(requests, rng_batched);

  ASSERT_EQ(batched_outcomes.size(), single_outcomes.size());
  for (std::size_t i = 0; i < single_outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes_equal(single_outcomes[i], batched_outcomes[i]))
        << "call " << i;
  }
  // The rng streams stayed in lockstep too.
  EXPECT_EQ(rng_single.next_u64(), rng_batched.next_u64());
}

INSTANTIATE_TEST_SUITE_P(PlanCacheOnOff, LocateManyTest,
                         ::testing::Bool());

TEST_F(ServiceTest, LocateManyEmptyBatchIsANoOp) {
  LocationService service = make_service({});
  prob::Rng rng(5);
  EXPECT_TRUE(service.locate_many({}, rng).empty());
}

// ---------------------------------------------------------------------------
// Durable state (save_state / restore_state)

namespace {

/// Drives a service through a deterministic mobility + locate history so
/// its database, visit statistics and plan cache hold non-trivial state.
void warm_up(LocationService& service, prob::Rng& rng,
             std::vector<CellId>& cells, const MarkovMobility& mobility) {
  for (int step = 0; step < 40; ++step) {
    for (std::size_t u = 0; u < cells.size(); ++u) {
      cells[u] = mobility.step(cells[u], rng);
      (void)service.observe_move(static_cast<UserId>(u), cells[u]);
    }
    service.tick();
    if (step % 4 == 0) {
      const UserId user = static_cast<UserId>(step / 4 % cells.size());
      const CellId true_cell = cells[user];
      (void)service.locate({&user, 1}, {&true_cell, 1}, rng);
    }
  }
}

}  // namespace

TEST_F(ServiceTest, StateRoundTripRestoresLocateParity) {
  LocationService::Config config;
  config.paging_policy = PagingPolicy::kGreedy;
  LocationService warm = make_service(config);
  prob::Rng rng(17);
  std::vector<CellId> cells = {0, 7, 20, 35};
  warm_up(warm, rng, cells, mobility_);
  const std::string payload = warm.save_state();

  LocationService fresh = make_service(config);
  ASSERT_TRUE(
      fresh.restore_state(payload, LocationService::kStateVersion));

  // The restored database matches record for record (area re-derived).
  for (UserId u = 0; u < 4; ++u) {
    EXPECT_EQ(fresh.database().reported_cell(u),
              warm.database().reported_cell(u));
    EXPECT_EQ(fresh.database().reported_area(u),
              warm.database().reported_area(u));
    EXPECT_EQ(fresh.database().steps_since_report(u),
              warm.database().steps_since_report(u));
  }

  // Re-saving the restored service reproduces the bytes exactly (before
  // any further traffic mutates either side).
  EXPECT_EQ(fresh.save_state(), payload);

  // Locate parity: identical RNG streams against identical state must
  // produce identical outcomes — the restored service IS the warm one.
  prob::Rng rng_a(99);
  prob::Rng rng_b(99);
  for (UserId u = 0; u < 4; ++u) {
    const CellId true_cell = cells[u];
    const auto a = warm.locate({&u, 1}, {&true_cell, 1}, rng_a);
    const auto b = fresh.locate({&u, 1}, {&true_cell, 1}, rng_b);
    EXPECT_EQ(a.cells_paged, b.cells_paged);
    EXPECT_EQ(a.rounds_used, b.rounds_used);
    EXPECT_EQ(a.fallback_pages, b.fallback_pages);
    EXPECT_EQ(a.degraded, b.degraded);
  }

  // Both sides took the same post-restore traffic, so they still agree.
  EXPECT_EQ(fresh.save_state(), warm.save_state());
}

TEST_F(ServiceTest, RestoredPlanCacheServesHitsImmediately) {
  // Stationary profiles make planning inputs a pure function of the
  // topology, so a cached plan's signature is stable across save/restore
  // and the hit below is deterministic.
  LocationService::Config config;
  config.paging_policy = PagingPolicy::kGreedy;
  config.profile_kind = ProfileKind::kStationary;
  LocationService warm = make_service(config);
  prob::Rng rng(3);
  std::vector<CellId> cells = {0, 7, 20, 35};
  warm_up(warm, rng, cells, mobility_);
  // Two locates pin user 0 to a fixed point: the first may re-register
  // the user in a new area, the second plans (and caches) that area.
  const UserId user = 0;
  const CellId true_cell = cells[0];
  (void)warm.locate({&user, 1}, {&true_cell, 1}, rng);
  (void)warm.locate({&user, 1}, {&true_cell, 1}, rng);
  const std::string payload = warm.save_state();

  support::MetricRegistry registry;
  LocationService::Config fresh_config = config;
  fresh_config.metrics = ServiceMetrics::create(registry);
  LocationService fresh = make_service(fresh_config);
  ASSERT_TRUE(
      fresh.restore_state(payload, LocationService::kStateVersion));
  // Same planning inputs as the checkpoint -> the first locate after a
  // warm restart replans nothing. That is the warm-restart speedup.
  (void)fresh.locate({&user, 1}, {&true_cell, 1}, rng);
  EXPECT_EQ(fresh_config.metrics.cache_hits.value(), 1u);
  EXPECT_EQ(fresh_config.metrics.cache_misses.value(), 0u);
}

TEST_F(ServiceTest, RestoreRejectsShapeAndContentMismatches) {
  LocationService::Config config;
  config.paging_policy = PagingPolicy::kGreedy;
  LocationService warm = make_service(config);
  prob::Rng rng(11);
  std::vector<CellId> cells = {0, 7, 20, 35};
  warm_up(warm, rng, cells, mobility_);
  const std::string payload = warm.save_state();

  // Version skew.
  LocationService fresh = make_service(config);
  EXPECT_FALSE(
      fresh.restore_state(payload, LocationService::kStateVersion + 1));

  // Different user count (shape guard).
  LocationService narrow = make_service(config, {0, 7});
  EXPECT_FALSE(
      narrow.restore_state(payload, LocationService::kStateVersion));

  // Different paging policy (shape guard).
  LocationService::Config blanket_config;
  blanket_config.paging_policy = PagingPolicy::kBlanketArea;
  LocationService blanket = make_service(blanket_config);
  EXPECT_FALSE(
      blanket.restore_state(payload, LocationService::kStateVersion));

  // Truncation at a sweep of prefix lengths (all of them would be slow
  // under ASan; every 7th covers each field kind).
  for (std::size_t len = 0; len < payload.size(); len += 7) {
    EXPECT_FALSE(fresh.restore_state(
        std::string_view(payload).substr(0, len),
        LocationService::kStateVersion))
        << "prefix " << len;
  }
  // Trailing garbage.
  EXPECT_FALSE(fresh.restore_state(payload + "zz",
                                   LocationService::kStateVersion));

  // An out-of-range cell id in the first database record.
  std::string bent = payload;
  const std::size_t first_record = 8 * 3 + 3 + 8;  // after the shape guard
  bent[first_record] = '\xff';
  bent[first_record + 1] = '\xff';
  EXPECT_FALSE(
      fresh.restore_state(bent, LocationService::kStateVersion));

  // Every rejection left the fresh service cold: records still at the
  // power-on attach positions.
  EXPECT_EQ(fresh.database().reported_cell(0), 0u);
  EXPECT_EQ(fresh.database().steps_since_report(0), 0u);

  // The pristine payload still restores after all those rejections.
  EXPECT_TRUE(
      fresh.restore_state(payload, LocationService::kStateVersion));
}

}  // namespace
}  // namespace confcall::cellular
