// Tests for the location-distribution generators.
#include "prob/distribution.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace confcall::prob {
namespace {

double sum(const ProbabilityVector& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(Normalized, ScalesToUnitSum) {
  const auto v = normalized({1.0, 3.0});
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(Normalized, RejectsBadInput) {
  EXPECT_THROW(normalized({}), std::invalid_argument);
  EXPECT_THROW(normalized({1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(normalized({0.0, 0.0}), std::invalid_argument);
}

TEST(UniformVector, AllEqual) {
  const auto v = uniform_vector(8);
  ASSERT_EQ(v.size(), 8u);
  for (const double p : v) EXPECT_DOUBLE_EQ(p, 0.125);
}

TEST(UniformVector, RejectsZeroCells) {
  EXPECT_THROW(uniform_vector(0), std::invalid_argument);
}

TEST(ZipfVectorSorted, NonIncreasingAndNormalized) {
  const auto v = zipf_vector_sorted(10, 1.0);
  EXPECT_NEAR(sum(v), 1.0, 1e-12);
  for (std::size_t j = 1; j < v.size(); ++j) EXPECT_GE(v[j - 1], v[j]);
  // Entry ratio matches 1/(j+1)^alpha.
  EXPECT_NEAR(v[0] / v[1], 2.0, 1e-9);
}

TEST(ZipfVectorSorted, AlphaZeroIsUniform) {
  const auto v = zipf_vector_sorted(5, 0.0);
  for (const double p : v) EXPECT_NEAR(p, 0.2, 1e-12);
}

TEST(ZipfVector, ShuffledButSameMultiset) {
  Rng rng(3);
  auto shuffled = zipf_vector(16, 1.5, rng);
  auto sorted_ref = zipf_vector_sorted(16, 1.5);
  EXPECT_NEAR(sum(shuffled), 1.0, 1e-12);
  std::sort(shuffled.begin(), shuffled.end(), std::greater<>());
  for (std::size_t j = 0; j < shuffled.size(); ++j) {
    EXPECT_NEAR(shuffled[j], sorted_ref[j], 1e-12);
  }
}

TEST(GeometricVector, NormalizedAndBounded) {
  Rng rng(4);
  const auto v = geometric_vector(12, 0.5, rng);
  EXPECT_NEAR(sum(v), 1.0, 1e-12);
  EXPECT_THROW(geometric_vector(12, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(geometric_vector(12, 1.0, rng), std::invalid_argument);
}

TEST(DirichletVector, NormalizedAndPositive) {
  Rng rng(5);
  for (const double alpha : {0.2, 1.0, 10.0}) {
    const auto v = dirichlet_vector(20, alpha, rng);
    EXPECT_NEAR(sum(v), 1.0, 1e-9) << alpha;
    for (const double p : v) EXPECT_GT(p, 0.0);
  }
  EXPECT_THROW(dirichlet_vector(20, 0.0, rng), std::invalid_argument);
}

TEST(DirichletVector, LargeAlphaConcentratesNearUniform) {
  Rng rng(6);
  const auto v = dirichlet_vector(10, 500.0, rng);
  for (const double p : v) EXPECT_NEAR(p, 0.1, 0.03);
}

TEST(PeakedVector, MassOnOneCell) {
  Rng rng(7);
  const auto v = peaked_vector(10, 0.82, rng);
  EXPECT_NEAR(sum(v), 1.0, 1e-12);
  const auto top = std::max_element(v.begin(), v.end());
  EXPECT_DOUBLE_EQ(*top, 0.82);
  for (const double p : v) {
    if (p != *top) EXPECT_NEAR(p, 0.18 / 9.0, 1e-12);
  }
}

TEST(PeakedVector, SingleCellDegenerates) {
  Rng rng(8);
  const auto v = peaked_vector(1, 0.3, rng);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
}

TEST(PeakedVector, RejectsBadMass) {
  Rng rng(9);
  EXPECT_THROW(peaked_vector(4, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(peaked_vector(4, 1.1, rng), std::invalid_argument);
}

TEST(ClusteredVector, SupportSizeRespected) {
  Rng rng(10);
  const auto v = clustered_vector(12, 4, rng);
  EXPECT_NEAR(sum(v), 1.0, 1e-12);
  int support = 0;
  for (const double p : v) {
    if (p > 0.0) {
      EXPECT_DOUBLE_EQ(p, 0.25);
      ++support;
    }
  }
  EXPECT_EQ(support, 4);
}

TEST(ClusteredVector, RejectsBadSupport) {
  Rng rng(11);
  EXPECT_THROW(clustered_vector(5, 0, rng), std::invalid_argument);
  EXPECT_THROW(clustered_vector(5, 6, rng), std::invalid_argument);
}

class DistributionFamilies
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DistributionFamilies, EveryGeneratorYieldsValidVector) {
  const std::size_t cells = GetParam();
  Rng rng(cells);
  const ProbabilityVector vectors[] = {
      uniform_vector(cells),
      zipf_vector(cells, 1.0, rng),
      geometric_vector(cells, 0.7, rng),
      dirichlet_vector(cells, 0.8, rng),
      peaked_vector(cells, 0.5, rng),
      clustered_vector(cells, (cells + 1) / 2, rng),
  };
  for (const auto& v : vectors) {
    ASSERT_EQ(v.size(), cells);
    EXPECT_NEAR(sum(v), 1.0, 1e-9);
    for (const double p : v) EXPECT_GE(p, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DistributionFamilies,
                         ::testing::Values(1, 2, 3, 8, 17, 64, 257));

}  // namespace
}  // namespace confcall::prob
