// ScratchArena: the thread-local bump allocator behind the evaluator
// and DP hot paths. The properties that matter: scopes restore the
// watermark exactly (reuse across calls returns the same memory without
// leaking or double-freeing — ASan in CI would catch either), chunks
// are retained across reset, alignment requests are honoured, and
// nested scopes (evaluate inside plan inside locate) unwind correctly.
#include "support/arena.h"

#include <cstdint>
#include <gtest/gtest.h>

namespace confcall::support {
namespace {

TEST(Arena, AllocReturnsZeroFilledSpanWithFill) {
  ScratchArena arena(1024);
  const ScratchArena::Scope scope(arena);
  const std::span<double> values = arena.alloc<double>(16, 0.0);
  ASSERT_EQ(values.size(), 16u);
  for (const double v : values) EXPECT_EQ(v, 0.0);
}

TEST(Arena, ScopeRestoresWatermarkAndMemoryIsReused) {
  ScratchArena arena(1024);
  double* first_ptr = nullptr;
  {
    const ScratchArena::Scope scope(arena);
    const std::span<double> a = arena.alloc<double>(32, 1.0);
    first_ptr = a.data();
    EXPECT_GE(arena.bytes_in_use(), 32 * sizeof(double));
  }
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  {
    // Same thread, same arena: the next scope's first allocation of the
    // same shape lands on the same memory (reuse, not growth).
    const ScratchArena::Scope scope(arena);
    const std::span<double> b = arena.alloc<double>(32, 2.0);
    EXPECT_EQ(b.data(), first_ptr);
    for (const double v : b) EXPECT_EQ(v, 2.0);
  }
}

TEST(Arena, NestedScopesUnwindInOrder) {
  ScratchArena arena(256);
  const ScratchArena::Scope outer(arena);
  const std::span<std::uint32_t> a = arena.alloc<std::uint32_t>(8, 7u);
  const std::size_t outer_watermark = arena.bytes_in_use();
  {
    const ScratchArena::Scope inner(arena);
    const std::span<std::uint32_t> b = arena.alloc<std::uint32_t>(64, 9u);
    EXPECT_GT(arena.bytes_in_use(), outer_watermark);
    // Inner allocations never corrupt outer ones.
    for (const std::uint32_t v : a) EXPECT_EQ(v, 7u);
    for (const std::uint32_t v : b) EXPECT_EQ(v, 9u);
  }
  EXPECT_EQ(arena.bytes_in_use(), outer_watermark);
  for (const std::uint32_t v : a) EXPECT_EQ(v, 7u);
}

TEST(Arena, GrowsBeyondInitialChunkAndRetainsOnReset) {
  ScratchArena arena(64);  // tiny first chunk forces growth
  {
    const ScratchArena::Scope scope(arena);
    const std::span<double> big = arena.alloc<double>(1000, 3.0);
    ASSERT_EQ(big.size(), 1000u);
    for (const double v : big) EXPECT_EQ(v, 3.0);
  }
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GE(reserved, 1000 * sizeof(double));
  {
    // Chunks are retained: a second pass of the same shape allocates
    // without growing the reservation.
    const ScratchArena::Scope scope(arena);
    (void)arena.alloc<double>(1000, 4.0);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
  }
}

TEST(Arena, AlignmentHonoured) {
  ScratchArena arena(256);
  const ScratchArena::Scope scope(arena);
  // Deliberately misalign the bump pointer with a char allocation, then
  // ask for doubles and uint64s: both must come back aligned.
  (void)arena.alloc<char>(3);
  const std::span<double> d = arena.alloc<double>(4, 0.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double),
            0u);
  (void)arena.alloc<char>(1);
  const std::span<std::uint64_t> q = arena.alloc<std::uint64_t>(4, 0u);
  EXPECT_EQ(
      reinterpret_cast<std::uintptr_t>(q.data()) % alignof(std::uint64_t),
      0u);
}

TEST(Arena, ThreadLocalInstanceIsStable) {
  ScratchArena& a = ScratchArena::local();
  ScratchArena& b = ScratchArena::local();
  EXPECT_EQ(&a, &b);
  // Safe to use like the hot paths do: scope, alloc, drop.
  const ScratchArena::Scope scope(a);
  const std::span<double> values = a.alloc<double>(8, 1.5);
  for (const double v : values) EXPECT_EQ(v, 1.5);
}

TEST(Arena, ManySmallAllocationsAcrossRepeatedScopes) {
  // The hot-path shape: thousands of evaluate calls, each a scope with
  // a few small allocations. Reservation must plateau (no leak).
  ScratchArena arena(4096);
  std::size_t plateau = 0;
  for (int call = 0; call < 2000; ++call) {
    const ScratchArena::Scope scope(arena);
    (void)arena.alloc<double>(12, 0.0);
    (void)arena.alloc<double>(12, 0.0);
    (void)arena.alloc<std::uint32_t>(40, 0u);
    if (call == 10) plateau = arena.bytes_reserved();
  }
  EXPECT_EQ(arena.bytes_reserved(), plateau);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

}  // namespace
}  // namespace confcall::support
