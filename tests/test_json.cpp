// The minimal JSON parser behind POST /locate. The interesting surface
// is rejection: every malformed shape must throw JsonError with a
// sensible offset (the endpoint turns that into a 400), and accepted
// documents must round-trip values exactly.
#include "support/json.h"

#include <gtest/gtest.h>

namespace confcall::support {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructure) {
  const JsonValue doc = JsonValue::parse(
      " { \"users\" : [1, 2, 3], \"nested\": {\"deep\": [true, null]} } ");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* users = doc.find("users");
  ASSERT_NE(users, nullptr);
  ASSERT_TRUE(users->is_array());
  ASSERT_EQ(users->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(users->as_array()[1].as_number(), 2.0);
  const JsonValue* nested = doc.find("nested");
  ASSERT_NE(nested, nullptr);
  const JsonValue* deep = nested->find("deep");
  ASSERT_NE(deep, nullptr);
  EXPECT_TRUE(deep->as_array()[0].as_bool());
  EXPECT_TRUE(deep->as_array()[1].is_null());
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(Json, ObjectKeepsMemberOrderAndFirstDuplicateWins) {
  const JsonValue doc = JsonValue::parse("{\"a\": 1, \"b\": 2, \"a\": 3}");
  ASSERT_EQ(doc.as_object().size(), 3u);
  EXPECT_EQ(doc.as_object()[0].first, "a");
  EXPECT_EQ(doc.as_object()[1].first, "b");
  EXPECT_DOUBLE_EQ(doc.find("a")->as_number(), 1.0);
}

TEST(Json, DecodesEscapes) {
  EXPECT_EQ(JsonValue::parse("\"a\\n\\t\\\"\\\\b\"").as_string(),
            "a\n\t\"\\b");
  // \u0041 = 'A'; \u00e9 = é (2-byte UTF-8); surrogate pair = U+1F600.
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(JsonValue::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                   // empty
      "  ",                 // whitespace only
      "{",                  // unterminated object
      "[1, 2",              // unterminated array
      "[1, ]",              // trailing comma
      "{\"a\" 1}",          // missing colon
      "{'a': 1}",           // single quotes
      "truth",              // bad literal
      "01",                 // leading zero
      "1.",                 // digit required after point
      "1e",                 // digit required in exponent
      "\"abc",              // unterminated string
      "\"\\x\"",            // invalid escape
      "\"\\ud83d\"",        // lone high surrogate
      "\"\\udc00\"",        // lone low surrogate
      "\"a\nb\"",           // raw control character
      "nan",                // not a JSON literal
      "{} x",               // trailing characters
      "[1] [2]",            // two documents
  };
  for (const char* input : bad) {
    EXPECT_THROW((void)JsonValue::parse(input), JsonError)
        << "accepted: " << input;
  }
}

TEST(Json, ReportsOffsets) {
  try {
    (void)JsonValue::parse("[1, 2, oops]");
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    EXPECT_EQ(error.offset(), 7u);
  }
}

TEST(Json, DepthCapBoundsRecursion) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_THROW((void)JsonValue::parse(deep, 64), JsonError);
  EXPECT_NO_THROW((void)JsonValue::parse(deep, 128));
}

TEST(Json, AccessorsThrowOnTypeMismatch) {
  const JsonValue doc = JsonValue::parse("[1]");
  EXPECT_THROW((void)doc.as_bool(), JsonError);
  EXPECT_THROW((void)doc.as_number(), JsonError);
  EXPECT_THROW((void)doc.as_string(), JsonError);
  EXPECT_THROW((void)doc.as_object(), JsonError);
  EXPECT_THROW((void)doc.find("x"), JsonError);
  EXPECT_NO_THROW((void)doc.as_array());
}

TEST(Json, EscapeProducesParseableStrings) {
  const std::string nasty = "quote\" slash\\ newline\n tab\t ctrl\x01 end";
  const std::string body = "\"" + json_escape(nasty) + "\"";
  EXPECT_EQ(JsonValue::parse(body).as_string(), nasty);
}

}  // namespace
}  // namespace confcall::support
