// Shared helpers for the test suite: deterministic random instance
// generators and brute-force reference implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "prob/distribution.h"
#include "prob/rng.h"

namespace confcall::testing {

/// A random instance with Dirichlet(alpha) rows — alpha = 1 gives flat
/// random distributions, alpha < 1 spiky ones.
inline core::Instance random_instance(std::size_t m, std::size_t c,
                                      std::uint64_t seed,
                                      double alpha = 1.0) {
  prob::Rng rng(seed);
  std::vector<prob::ProbabilityVector> rows;
  rows.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    rows.push_back(prob::dirichlet_vector(c, alpha, rng));
  }
  return core::Instance::from_rows(rows);
}

/// A random instance whose rows come from a mix of families, to stress
/// planners with heterogeneous devices.
inline core::Instance mixed_instance(std::size_t m, std::size_t c,
                                     std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<prob::ProbabilityVector> rows;
  rows.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    switch (i % 4) {
      case 0:
        rows.push_back(prob::uniform_vector(c));
        break;
      case 1:
        rows.push_back(prob::zipf_vector(c, 1.2, rng));
        break;
      case 2:
        rows.push_back(prob::peaked_vector(c, 0.7, rng));
        break;
      default:
        rows.push_back(prob::dirichlet_vector(c, 0.5, rng));
        break;
    }
  }
  return core::Instance::from_rows(rows);
}

}  // namespace confcall::testing
