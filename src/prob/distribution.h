// Generators for location-probability vectors.
//
// The Conference Call problem consumes one probability vector per mobile
// device (where in the location area is the device likely to be?). The
// paper's analysis is distribution-free; the families below span the
// shapes that matter empirically, from flat (uniform — worst case for
// paging savings) to heavily skewed (Zipf / geometric / peaked — where a
// good strategy pages very few cells on average). Section 1.1 cites
// [15,16] for estimating such vectors from mobility data; the estimators
// themselves live in src/cellular/profile.h.
#pragma once

#include <cstddef>
#include <vector>

#include "prob/rng.h"

namespace confcall::prob {

/// A probability vector over cells: non-negative entries summing to 1.
using ProbabilityVector = std::vector<double>;

/// Rescales `weights` (non-negative, not all zero) to sum to exactly 1.0.
/// Throws std::invalid_argument on a negative entry or an all-zero vector.
ProbabilityVector normalized(std::vector<double> weights);

/// Uniform distribution over `cells` cells: every entry 1/cells.
ProbabilityVector uniform_vector(std::size_t cells);

/// Zipf distribution with exponent `alpha` over a random permutation of the
/// cells (so the popular cell is not always cell 0). alpha = 0 degenerates
/// to uniform; larger alpha is more skewed.
ProbabilityVector zipf_vector(std::size_t cells, double alpha, Rng& rng);

/// Zipf without shuffling: entry j proportional to 1/(j+1)^alpha.
ProbabilityVector zipf_vector_sorted(std::size_t cells, double alpha);

/// Truncated geometric distribution: entry j proportional to ratio^j,
/// 0 < ratio < 1, over a random permutation of the cells.
ProbabilityVector geometric_vector(std::size_t cells, double ratio, Rng& rng);

/// Symmetric Dirichlet(alpha) sample: alpha >> 1 concentrates near uniform,
/// alpha << 1 produces sparse, spiky vectors.
ProbabilityVector dirichlet_vector(std::size_t cells, double alpha, Rng& rng);

/// A "home cell" profile: probability `mass` on one random cell, the rest
/// spread uniformly. Models a device that is usually at a known location
/// (the common case motivating paging in few rounds).
ProbabilityVector peaked_vector(std::size_t cells, double mass, Rng& rng);

/// Uniform over a random subset of `support` cells, zero elsewhere. Models
/// a device known to roam inside a neighbourhood of the location area.
ProbabilityVector clustered_vector(std::size_t cells, std::size_t support,
                                   Rng& rng);

}  // namespace confcall::prob
