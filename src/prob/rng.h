// Deterministic, seedable pseudo-random number generation.
//
// We deliberately avoid std::mt19937 + <random> distributions for anything
// that affects test expectations: libstdc++/libc++ implement the
// distributions differently, so results would not be reproducible across
// platforms. xoshiro256** plus hand-rolled uniform/exponential transforms
// gives bit-identical streams everywhere.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace confcall::prob {

/// SplitMix64 — used to seed the main generator from a single 64-bit seed.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA'14).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the library's workhorse generator.
/// Satisfies UniformRandomBitGenerator so it can also feed <random> if a
/// caller insists, but the member helpers below are the supported API.
/// Collapses a (seed, stream) pair into one well-mixed 64-bit sub-seed.
/// Two SplitMix64 finalizations keep distinct streams of the same seed —
/// and the same stream of adjacent seeds — statistically independent.
/// Parallel code derives one sub-seed per TASK INDEX (never per thread),
/// which is what makes sharded results thread-count invariant.
constexpr std::uint64_t mix_seed(std::uint64_t seed,
                                 std::uint64_t stream) noexcept {
  SplitMix64 outer(seed);
  SplitMix64 inner(outer.next() ^
                   (stream * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  return inner.next();
}

class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through SplitMix64 as recommended by the
  /// xoshiro authors (avoids the all-zero state and correlated seeds).
  explicit Rng(std::uint64_t seed = 0x5eedc0ffee123456ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  /// An independent generator for substream `stream` of `seed`. Shards of
  /// a parallel computation each take substream(seed, shard_index); the
  /// resulting draws depend only on (seed, shard_index), never on which
  /// thread ran the shard.
  [[nodiscard]] static Rng substream(std::uint64_t seed,
                                     std::uint64_t stream) noexcept {
    return Rng(mix_seed(seed, stream));
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// with rejection).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      const __uint128_t m = static_cast<__uint128_t>(r) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Exponential variate with the given rate (inverse of the mean).
  double next_exponential(double rate) noexcept {
    // 1 - next_double() is in (0, 1], so log() is finite.
    return -std::log(1.0 - next_double()) / rate;
  }

  /// Standard normal variate (Marsaglia polar method).
  double next_normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Gamma(shape, 1) variate (Marsaglia & Tsang for shape >= 1, boosting
  /// for shape < 1). Used for Dirichlet sampling.
  double next_gamma(double shape) noexcept {
    if (shape < 1.0) {
      const double u = next_double();
      return next_gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double cc = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x, v;
      do {
        x = next_normal();
        v = 1.0 + cc * x;
      } while (v <= 0.0);
      v = v * v * v;
      const double u = next_double();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
    }
  }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace confcall::prob
