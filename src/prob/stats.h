// Streaming statistics for simulation and benchmark output.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace confcall::prob {

/// Kahan compensated accumulator. Probability prefix sums (the q_i of
/// Lemma 2.1 and the F[j] of Fig. 1) add thousands of small terms on
/// large-c instances; naive summation drifts by O(c·eps) which then has
/// to be clamped away at 1.0, silently flattening the tail of the
/// stop-probability curve. Compensated summation keeps the error at
/// O(eps) independent of the term count.
class KahanSum {
 public:
  void add(double x) noexcept {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  /// add() spelled as an accumulator operator, so generic sweeps can use
  /// KahanSum and exact types (prob::Rational) interchangeably.
  KahanSum& operator+=(double x) noexcept {
    add(x);
    return *this;
  }

  [[nodiscard]] double value() const noexcept { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Welford online accumulator: numerically stable running mean/variance,
/// plus min/max. Value semantics; merging two accumulators is supported so
/// per-shard results can be combined.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Chan et al. parallel merge of two Welford accumulators.
  void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta *
                           (static_cast<double>(count_) *
                            static_cast<double>(other.count_) / total);
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept {
    return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_))
                      : 0.0;
  }

  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95_half_width() const noexcept {
    return 1.959963984540054 * sem();
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace confcall::prob
