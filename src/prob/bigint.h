// Arbitrary-precision signed integers.
//
// The NP-hardness reduction of Bar-Noy & Malewicz (Section 3) and the exact
// verification of expected-paging values (e.g., 317/49 vs 320/49 in
// Section 4.3) require exact arithmetic: the reduction scales partition
// sizes by 2^p with p = ceil(log2(sum + 1)), which rapidly overflows 64-bit
// integers, and floating point cannot certify "OPT equals the closed-form
// lower bound exactly". This is a small, self-contained implementation
// (base 2^32 magnitude, sign-magnitude representation) sized for those
// workloads — hundreds of bits, not cryptographic sizes.
#pragma once

#include <cstdint>
#include <compare>
#include <string>
#include <string_view>
#include <vector>

namespace confcall::prob {

/// Arbitrary-precision signed integer with value semantics.
///
/// Representation invariants:
///  * magnitude `limbs_` is little-endian base-2^32 with no leading zero limb;
///  * zero is represented by an empty limb vector and `negative_ == false`.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Conversion from built-in integers (implicit on purpose: arithmetic
  /// expressions like `x + 1` should read naturally).
  BigInt(std::int64_t value);    // NOLINT(google-explicit-constructor)
  BigInt(int value) : BigInt(static_cast<std::int64_t>(value)) {}  // NOLINT

  /// Parses an optionally signed decimal string. Throws std::invalid_argument
  /// on malformed input (empty, non-digit characters).
  static BigInt from_string(std::string_view text);

  /// Decimal representation, with a leading '-' when negative.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const noexcept { return negative_; }

  /// Sign as -1, 0 or +1.
  [[nodiscard]] int signum() const noexcept {
    return is_zero() ? 0 : (negative_ ? -1 : 1);
  }

  /// Number of bits in the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;

  /// Converts to int64 when the value fits; throws std::overflow_error
  /// otherwise.
  [[nodiscard]] std::int64_t to_int64() const;

  /// Converts to the nearest double (may lose precision; infinite values
  /// saturate to +/-inf).
  [[nodiscard]] double to_double() const noexcept;

  [[nodiscard]] BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  BigInt& operator/=(const BigInt& rhs);  ///< Truncating division; throws on /0.
  BigInt& operator%=(const BigInt& rhs);  ///< Sign follows the dividend.

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }

  /// Quotient and remainder in one pass (remainder has the dividend's sign).
  /// Throws std::domain_error on division by zero.
  static void divmod(const BigInt& dividend, const BigInt& divisor,
                     BigInt& quotient, BigInt& remainder);

  /// Greatest common divisor (always non-negative).
  static BigInt gcd(BigInt a, BigInt b);

  /// this * 2^shift.
  [[nodiscard]] BigInt shifted_left(std::size_t shift) const;

  /// Base^exponent for a non-negative exponent.
  static BigInt pow(const BigInt& base, unsigned exponent);

  friend bool operator==(const BigInt& lhs, const BigInt& rhs) noexcept {
    return lhs.negative_ == rhs.negative_ && lhs.limbs_ == rhs.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& lhs,
                                          const BigInt& rhs) noexcept;

 private:
  // |this| vs |other| comparison.
  [[nodiscard]] std::strong_ordering compare_magnitude(
      const BigInt& other) const noexcept;
  void add_magnitude(const BigInt& other);
  // Requires |this| >= |other|.
  void sub_magnitude(const BigInt& other);
  void trim() noexcept;

  std::vector<std::uint32_t> limbs_;
  bool negative_ = false;
};

}  // namespace confcall::prob
