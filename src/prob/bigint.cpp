#include "prob/bigint.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace confcall::prob {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}  // namespace

BigInt::BigInt(std::int64_t value) {
  negative_ = value < 0;
  // Negate through uint64 to handle INT64_MIN without UB.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffULL));
    magnitude >>= 32;
  }
}

BigInt BigInt::from_string(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt: empty string");
  bool negative = false;
  std::size_t pos = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) throw std::invalid_argument("BigInt: sign only");
  BigInt result;
  for (; pos < text.size(); ++pos) {
    const char ch = text[pos];
    if (ch < '0' || ch > '9') {
      throw std::invalid_argument("BigInt: non-digit character");
    }
    result *= BigInt(10);
    result += BigInt(ch - '0');
  }
  result.negative_ = negative && !result.is_zero();
  return result;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Repeated division by 10^9 to peel decimal chunks.
  std::vector<std::uint32_t> work(limbs_);
  std::string digits;
  constexpr std::uint32_t kChunk = 1000000000U;
  while (!work.empty()) {
    std::uint64_t remainder = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const std::uint64_t cur = (remainder << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(cur / kChunk);
      remainder = cur % kChunk;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::size_t BigInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  const std::uint32_t top = limbs_.back();
  return (limbs_.size() - 1) * 32 +
         (32 - static_cast<std::size_t>(__builtin_clz(top)));
}

std::int64_t BigInt::to_int64() const {
  if (limbs_.size() > 2) throw std::overflow_error("BigInt: to_int64");
  std::uint64_t magnitude = 0;
  if (!limbs_.empty()) magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (magnitude > 0x8000000000000000ULL) {
      throw std::overflow_error("BigInt: to_int64");
    }
    return static_cast<std::int64_t>(~magnitude + 1);
  }
  if (magnitude > 0x7fffffffffffffffULL) {
    throw std::overflow_error("BigInt: to_int64");
  }
  return static_cast<std::int64_t>(magnitude);
}

double BigInt::to_double() const noexcept {
  double value = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    value = value * static_cast<double>(kBase) + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -value : value;
}

BigInt BigInt::operator-() const {
  BigInt result(*this);
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::abs() const {
  BigInt result(*this);
  result.negative_ = false;
  return result;
}

std::strong_ordering BigInt::compare_magnitude(
    const BigInt& other) const noexcept {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

std::strong_ordering operator<=>(const BigInt& lhs,
                                 const BigInt& rhs) noexcept {
  if (lhs.negative_ != rhs.negative_) {
    return lhs.negative_ ? std::strong_ordering::less
                         : std::strong_ordering::greater;
  }
  const auto mag = lhs.compare_magnitude(rhs);
  return lhs.negative_ ? 0 <=> mag : mag;
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

void BigInt::add_magnitude(const BigInt& other) {
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry + limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(sum & 0xffffffffULL);
    carry = sum >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<std::uint32_t>(carry));
}

void BigInt::sub_magnitude(const BigInt& other) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) {
      diff -= static_cast<std::int64_t>(other.limbs_[i]);
    }
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  trim();
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (negative_ == rhs.negative_) {
    add_magnitude(rhs);
  } else if (compare_magnitude(rhs) >= 0) {
    sub_magnitude(rhs);
  } else {
    BigInt result(rhs);
    result.sub_magnitude(*this);
    *this = std::move(result);
  }
  trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) { return *this += -rhs; }

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (is_zero() || rhs.is_zero()) {
    *this = BigInt();
    return *this;
  }
  std::vector<std::uint32_t> product(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(product[i + j]) + carry +
          a * rhs.limbs_[j];
      product[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry != 0) {
      const std::uint64_t cur = product[k] + carry;
      product[k] = static_cast<std::uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  const bool negative = negative_ != rhs.negative_;
  limbs_ = std::move(product);
  negative_ = negative;
  trim();
  return *this;
}

BigInt BigInt::shifted_left(std::size_t shift) const {
  if (is_zero() || shift == 0) return *this;
  BigInt result;
  result.negative_ = negative_;
  const std::size_t limb_shift = shift / 32;
  const unsigned bit_shift = static_cast<unsigned>(shift % 32);
  result.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t shifted =
        static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    result.limbs_[i + limb_shift] |=
        static_cast<std::uint32_t>(shifted & 0xffffffffULL);
    result.limbs_[i + limb_shift + 1] |=
        static_cast<std::uint32_t>(shifted >> 32);
  }
  result.trim();
  return result;
}

void BigInt::divmod(const BigInt& dividend, const BigInt& divisor,
                    BigInt& quotient, BigInt& remainder) {
  if (divisor.is_zero()) throw std::domain_error("BigInt: division by zero");
  const BigInt abs_dividend = dividend.abs();
  const BigInt abs_divisor = divisor.abs();
  if (abs_dividend.compare_magnitude(abs_divisor) < 0) {
    quotient = BigInt();
    remainder = dividend;
    return;
  }
  // Binary long division: scan dividend bits from most significant down,
  // maintaining the running remainder. O(bits * limbs), plenty fast for the
  // few-hundred-bit numbers the reduction produces.
  const std::size_t bits = abs_dividend.bit_length();
  BigInt q;
  q.limbs_.assign((bits + 31) / 32, 0);
  BigInt rem;
  for (std::size_t bit = bits; bit-- > 0;) {
    rem = rem.shifted_left(1);
    const bool dividend_bit =
        (abs_dividend.limbs_[bit / 32] >> (bit % 32)) & 1U;
    if (dividend_bit) {
      if (rem.limbs_.empty()) rem.limbs_.push_back(0);
      rem.limbs_[0] |= 1U;
    }
    if (rem.compare_magnitude(abs_divisor) >= 0) {
      rem.sub_magnitude(abs_divisor);
      q.limbs_[bit / 32] |= 1U << (bit % 32);
    }
  }
  q.trim();
  rem.trim();
  q.negative_ = !q.is_zero() && (dividend.negative_ != divisor.negative_);
  rem.negative_ = !rem.is_zero() && dividend.negative_;
  quotient = std::move(q);
  remainder = std::move(rem);
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  BigInt quotient, remainder;
  divmod(*this, rhs, quotient, remainder);
  *this = std::move(quotient);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  BigInt quotient, remainder;
  divmod(*this, rhs, quotient, remainder);
  *this = std::move(remainder);
  return *this;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt quotient, remainder;
    divmod(a, b, quotient, remainder);
    a = std::move(b);
    b = std::move(remainder);
  }
  return a;
}

BigInt BigInt::pow(const BigInt& base, unsigned exponent) {
  BigInt result(1);
  BigInt acc(base);
  while (exponent != 0) {
    if (exponent & 1U) result *= acc;
    exponent >>= 1U;
    if (exponent != 0) acc *= acc;
  }
  return result;
}

}  // namespace confcall::prob
