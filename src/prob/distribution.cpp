#include "prob/distribution.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace confcall::prob {

ProbabilityVector normalized(std::vector<double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("normalized: empty weight vector");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("normalized: negative or non-finite weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("normalized: weights sum to zero");
  }
  for (double& w : weights) w /= total;
  return weights;
}

ProbabilityVector uniform_vector(std::size_t cells) {
  if (cells == 0) throw std::invalid_argument("uniform_vector: zero cells");
  return ProbabilityVector(cells, 1.0 / static_cast<double>(cells));
}

ProbabilityVector zipf_vector_sorted(std::size_t cells, double alpha) {
  if (cells == 0) throw std::invalid_argument("zipf_vector: zero cells");
  std::vector<double> weights(cells);
  for (std::size_t j = 0; j < cells; ++j) {
    weights[j] = std::pow(static_cast<double>(j + 1), -alpha);
  }
  return normalized(std::move(weights));
}

ProbabilityVector zipf_vector(std::size_t cells, double alpha, Rng& rng) {
  ProbabilityVector vec = zipf_vector_sorted(cells, alpha);
  rng.shuffle(vec);
  return vec;
}

ProbabilityVector geometric_vector(std::size_t cells, double ratio, Rng& rng) {
  if (cells == 0) throw std::invalid_argument("geometric_vector: zero cells");
  if (ratio <= 0.0 || ratio >= 1.0) {
    throw std::invalid_argument("geometric_vector: ratio must be in (0,1)");
  }
  std::vector<double> weights(cells);
  double w = 1.0;
  for (std::size_t j = 0; j < cells; ++j) {
    weights[j] = w;
    w *= ratio;
  }
  ProbabilityVector vec = normalized(std::move(weights));
  rng.shuffle(vec);
  return vec;
}

ProbabilityVector dirichlet_vector(std::size_t cells, double alpha, Rng& rng) {
  if (cells == 0) throw std::invalid_argument("dirichlet_vector: zero cells");
  if (alpha <= 0.0) {
    throw std::invalid_argument("dirichlet_vector: alpha must be positive");
  }
  std::vector<double> weights(cells);
  for (double& w : weights) {
    w = rng.next_gamma(alpha);
    // Guard against underflow to an all-zero vector for tiny alpha.
    if (w <= 0.0) w = 1e-300;
  }
  return normalized(std::move(weights));
}

ProbabilityVector peaked_vector(std::size_t cells, double mass, Rng& rng) {
  if (cells == 0) throw std::invalid_argument("peaked_vector: zero cells");
  if (mass < 0.0 || mass > 1.0) {
    throw std::invalid_argument("peaked_vector: mass must be in [0,1]");
  }
  const std::size_t home = static_cast<std::size_t>(rng.next_below(cells));
  const double rest =
      cells > 1 ? (1.0 - mass) / static_cast<double>(cells - 1) : 0.0;
  ProbabilityVector vec(cells, rest);
  vec[home] = cells > 1 ? mass : 1.0;
  return vec;
}

ProbabilityVector clustered_vector(std::size_t cells, std::size_t support,
                                   Rng& rng) {
  if (cells == 0) throw std::invalid_argument("clustered_vector: zero cells");
  if (support == 0 || support > cells) {
    throw std::invalid_argument("clustered_vector: support out of range");
  }
  std::vector<std::size_t> order(cells);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  ProbabilityVector vec(cells, 0.0);
  for (std::size_t k = 0; k < support; ++k) {
    vec[order[k]] = 1.0 / static_cast<double>(support);
  }
  return vec;
}

}  // namespace confcall::prob
