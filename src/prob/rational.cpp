#include "prob/rational.h"

#include <stdexcept>
#include <utility>

namespace confcall::prob {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  if (den_.is_zero()) throw std::domain_error("Rational: zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  const BigInt divisor = BigInt::gcd(num_, den_);
  if (divisor != BigInt(1)) {
    num_ /= divisor;
    den_ /= divisor;
  }
}

std::string Rational::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

Rational Rational::operator-() const {
  Rational result(*this);
  result.num_ = -result.num_;
  return result;
}

Rational Rational::abs() const {
  Rational result(*this);
  result.num_ = result.num_.abs();
  return result;
}

Rational Rational::reciprocal() const {
  if (is_zero()) throw std::domain_error("Rational: reciprocal of zero");
  return Rational(den_, num_);
}

Rational& Rational::operator+=(const Rational& rhs) {
  num_ = num_ * rhs.den_ + rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  num_ = num_ * rhs.den_ - rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  num_ *= rhs.num_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.is_zero()) throw std::domain_error("Rational: division by zero");
  num_ *= rhs.den_;
  den_ *= rhs.num_;
  normalize();
  return *this;
}

std::strong_ordering operator<=>(const Rational& lhs,
                                 const Rational& rhs) noexcept {
  // Denominators are positive by invariant, so cross-multiplying preserves
  // the ordering.
  return lhs.num_ * rhs.den_ <=> rhs.num_ * lhs.den_;
}

Rational Rational::pow(const Rational& base, unsigned exponent) {
  return Rational(BigInt::pow(base.num_, exponent),
                  BigInt::pow(base.den_, exponent));
}

}  // namespace confcall::prob
