// Exact rational arithmetic on top of BigInt.
//
// Used wherever the paper's statements are exact equalities that floating
// point cannot certify: the Section 4.3 lower-bound instance (EP values
// 317/49 and 320/49), the Lemma 3.2 reduction (OPT equals the closed-form
// bound iff a quasipartition exists), and exact expected-paging evaluation
// in tests.
#pragma once

#include <compare>
#include <string>

#include "prob/bigint.h"

namespace confcall::prob {

/// Immutable-style exact rational number. Invariants: denominator > 0 and
/// gcd(|num|, den) == 1 (canonical form), so equality is structural.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}

  /// Integer value.
  Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT
  Rational(int value) : num_(value), den_(1) {}           // NOLINT
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT

  /// num/den; throws std::domain_error when den == 0.
  Rational(BigInt num, BigInt den);
  Rational(std::int64_t num, std::int64_t den)
      : Rational(BigInt(num), BigInt(den)) {}

  [[nodiscard]] const BigInt& num() const noexcept { return num_; }
  [[nodiscard]] const BigInt& den() const noexcept { return den_; }

  [[nodiscard]] bool is_zero() const noexcept { return num_.is_zero(); }
  [[nodiscard]] int signum() const noexcept { return num_.signum(); }
  [[nodiscard]] bool is_integer() const noexcept { return den_ == BigInt(1); }

  [[nodiscard]] double to_double() const noexcept {
    return num_.to_double() / den_.to_double();
  }

  /// "num/den" (or just "num" for integers).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] Rational operator-() const;
  [[nodiscard]] Rational abs() const;
  /// Multiplicative inverse; throws std::domain_error on zero.
  [[nodiscard]] Rational reciprocal() const;

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  Rational& operator/=(const Rational& rhs);  ///< Throws on /0.

  friend Rational operator+(Rational lhs, const Rational& rhs) {
    return lhs += rhs;
  }
  friend Rational operator-(Rational lhs, const Rational& rhs) {
    return lhs -= rhs;
  }
  friend Rational operator*(Rational lhs, const Rational& rhs) {
    return lhs *= rhs;
  }
  friend Rational operator/(Rational lhs, const Rational& rhs) {
    return lhs /= rhs;
  }

  friend bool operator==(const Rational& lhs, const Rational& rhs) noexcept {
    return lhs.num_ == rhs.num_ && lhs.den_ == rhs.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& lhs,
                                          const Rational& rhs) noexcept;

  /// a^exponent for a non-negative exponent.
  static Rational pow(const Rational& base, unsigned exponent);

 private:
  void normalize();

  BigInt num_;
  BigInt den_;
};

}  // namespace confcall::prob
