#include "cellular/service_fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>

namespace confcall::cellular {

namespace {

/// Substream tags separating the two randomness lanes every area owns.
/// locate call k of area a draws from substream(mix(area_seed, kLocate), k)
/// and mobility step t from substream(mix(area_seed, kStep), t) — both a
/// pure function of (fleet seed, area, ordinal), never of threads.
constexpr std::uint64_t kLocateStream = 0x10c47e;
constexpr std::uint64_t kStepStream = 0x57e9;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void FleetConfig::validate() const {
  if (num_shards == 0) {
    throw std::invalid_argument("FleetConfig: num_shards must be >= 1");
  }
  if (num_areas == 0) {
    throw std::invalid_argument("FleetConfig: num_areas must be >= 1");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument("FleetConfig: queue_capacity must be >= 1");
  }
}

ServiceFleet::ServiceFleet(const GridTopology& grid, const LocationAreas& areas,
                           const MarkovMobility& mobility,
                           LocationService::Config base_config,
                           std::vector<CellId> initial_cells,
                           FleetConfig config)
    : grid_(&grid),
      la_(&areas),
      mobility_(&mobility),
      base_config_(std::move(base_config)),
      initial_cells_(std::move(initial_cells)),
      config_(std::move(config)),
      shared_table_(std::make_unique<support::SignatureTable<core::Strategy>>(
          config_.shared_table_capacity)),
      pool_(config_.num_shards),
      core_map_(support::ShardCoreMap::round_robin(config_.num_shards)) {
  config_.validate();
  base_config_.shared_plan_table = shared_table_.get();
  if (config_.registry != nullptr) {
    support::MetricRegistry& registry = *config_.registry;
    shard_metrics_.resize(config_.num_shards);
    for (std::size_t s = 0; s < config_.num_shards; ++s) {
      const support::MetricLabels labels{{"shard", std::to_string(s)}};
      shard_metrics_[s].tasks =
          registry.counter("confcall_fleet_tasks_total",
                           "Area-tasks executed, by owning shard", labels);
      shard_metrics_[s].steals = registry.counter(
          "confcall_fleet_steals_total",
          "Area-tasks stolen from this shard's queue by idle shards",
          labels);
      shard_metrics_[s].queue_depth = registry.gauge(
          "confcall_fleet_queue_depth",
          "Deepest backlog of this shard's queue during the last dispatch",
          labels);
      shard_metrics_[s].task_ns = registry.histogram(
          "confcall_fleet_task_ns",
          support::HistogramSpec::exponential(1000.0, 2.0, 22),
          "Wall time per area-task, by owning shard", labels);
    }
    requests_metric_ =
        registry.counter("confcall_fleet_requests_total",
                         "Locate requests routed through the fleet");
    dispatches_metric_ = registry.counter(
        "confcall_fleet_dispatches_total", "locate_many fleet dispatches");
    overflow_metric_ = registry.counter(
        "confcall_fleet_queue_overflow_total",
        "Area-tasks routed through the overflow lane (queue full; work "
        "is rerouted, never dropped)");
    shared_hits_metric_ = registry.counter(
        "confcall_fleet_shared_plan_hits_total",
        "Local plan-cache misses answered by the process-wide "
        "signature table");
    shared_misses_metric_ = registry.counter(
        "confcall_fleet_shared_plan_misses_total",
        "Signature-table lookups that fell through to the planner");
    shared_entries_metric_ = registry.gauge(
        "confcall_fleet_shared_plan_entries",
        "Strategies resident in the process-wide signature table");
  }
  areas_state_.reserve(config_.num_areas);
  for (std::size_t a = 0; a < config_.num_areas; ++a) {
    areas_state_.push_back(build_area(a));
  }
  area_groups_.resize(config_.num_areas);
}

std::uint64_t ServiceFleet::area_seed(std::size_t area) const noexcept {
  return prob::mix_seed(config_.seed, area);
}

std::unique_ptr<ServiceFleet::AreaState> ServiceFleet::build_area(
    std::size_t area) const {
  auto state = std::make_unique<AreaState>();
  // The copy carries base_config_.tracer into every area: one tracer is
  // shared by all shards. That is safe by the trace.h fleet-lane audit —
  // the root-sampling counter is atomic (exactly 1-in-N fleet-wide), the
  // parent/suppression stacks are thread_local and an area-task runs to
  // completion on one pool thread, and ring appends are mutex'd. The
  // Fleet tracing storm test pins this under TSan.
  LocationService::Config cfg = base_config_;
  if (config_.registry != nullptr) {
    // Per-SHARD label on the locate family: areas sharing a lane share a
    // series (registration is idempotent per (name, labels)).
    cfg.metrics = ServiceMetrics::create(
        *config_.registry,
        {{"shard", std::to_string(shard_of(area))}});
  }
  state->service = std::make_unique<LocationService>(
      *grid_, *la_, *mobility_, std::move(cfg), initial_cells_);
  state->user_cells = initial_cells_;
  return state;
}

void ServiceFleet::run_area_task(
    std::size_t area, std::span<const Request> requests,
    std::span<const std::size_t> indices,
    std::span<LocationService::LocateOutcome> outcomes) {
  AreaState& state = *areas_state_[area];
  const std::uint64_t locate_seed =
      prob::mix_seed(area_seed(area), kLocateStream);
  std::vector<CellId> true_cells;
  for (const std::size_t idx : indices) {
    const Request& request = requests[idx];
    true_cells.clear();
    true_cells.reserve(request.users.size());
    for (const UserId user : request.users) {
      true_cells.push_back(state.user_cells[user]);
    }
    prob::Rng call_rng =
        prob::Rng::substream(locate_seed, state.locate_counter++);
    outcomes[idx] = state.service->locate(request.users, true_cells, call_rng,
                                          request.context);
  }
}

std::vector<LocationService::LocateOutcome> ServiceFleet::locate_many(
    std::span<const Request> requests) {
  std::vector<LocationService::LocateOutcome> outcomes(requests.size());
  if (requests.empty()) return outcomes;

  // Validate before any state is touched: a bad element must not leave a
  // half-executed batch behind.
  for (const Request& request : requests) {
    if (request.area >= config_.num_areas) {
      throw std::invalid_argument("ServiceFleet: area out of range");
    }
    for (const UserId user : request.users) {
      if (user >= initial_cells_.size()) {
        throw std::invalid_argument("ServiceFleet: user out of range");
      }
    }
  }

  // Group by area, preserving within-area request order (the scatter
  // half; index-addressed outcome slots are the gather half).
  active_areas_.clear();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    std::vector<std::size_t>& group = area_groups_[requests[i].area];
    if (group.empty()) active_areas_.push_back(requests[i].area);
    group.push_back(i);
  }
  std::sort(active_areas_.begin(), active_areas_.end());

  // Route area-tasks to their shards. The queue set is rebuilt per
  // dispatch (a handful of deques) so high-water marks describe THIS
  // dispatch; overflow routes through a shared lane any worker drains.
  support::ShardQueueSet queues(config_.num_shards, config_.queue_capacity,
                                config_.steal_limit);
  std::vector<std::size_t> overflow;
  for (const std::size_t area : active_areas_) {
    if (!queues.push(shard_of(area), area)) overflow.push_back(area);
  }
  for (std::size_t s = 0; s < shard_metrics_.size(); ++s) {
    shard_metrics_[s].queue_depth.set(
        static_cast<double>(queues.high_water(s)));
  }

  std::atomic<std::size_t> overflow_next{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> tasks_run{0};
  const bool instrumented = !shard_metrics_.empty();
  pool_.parallel_for(config_.num_shards, [&](std::size_t worker) {
    if (config_.pin_threads) {
      (void)support::pin_current_thread_to_core(
          core_map_.core_of_shard[worker]);
    }
    for (;;) {
      std::size_t area;
      std::size_t owner;
      if (const auto local = queues.pop_local(worker)) {
        area = *local;
        owner = worker;
      } else if (const std::size_t slot =
                     overflow_next.fetch_add(1, std::memory_order_relaxed);
                 slot < overflow.size()) {
        area = overflow[slot];
        owner = shard_of(area);
      } else if (const auto stolen = queues.steal(worker)) {
        area = stolen->task;
        owner = stolen->victim;
        steals.fetch_add(1, std::memory_order_relaxed);
        if (instrumented) shard_metrics_[stolen->victim].steals.inc();
      } else {
        break;
      }
      tasks_run.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t start_ns = instrumented ? now_ns() : 0;
      run_area_task(area, requests, area_groups_[area], outcomes);
      if (instrumented) {
        shard_metrics_[owner].tasks.inc();
        shard_metrics_[owner].task_ns.observe(
            static_cast<double>(now_ns() - start_ns));
      }
    }
  });

  stats_.dispatches += 1;
  stats_.requests += requests.size();
  stats_.tasks += tasks_run.load();
  stats_.steals += steals.load();
  stats_.overflows += overflow.size();
  requests_metric_.inc(requests.size());
  dispatches_metric_.inc();
  overflow_metric_.inc(overflow.size());
  export_shared_table_metrics();

  for (const std::size_t area : active_areas_) area_groups_[area].clear();
  return outcomes;
}

void ServiceFleet::step_all() {
  pool_.parallel_for(config_.num_areas, [&](std::size_t area) {
    AreaState& state = *areas_state_[area];
    prob::Rng step_rng = prob::Rng::substream(
        prob::mix_seed(area_seed(area), kStepStream), state.step_counter++);
    for (std::size_t u = 0; u < state.user_cells.size(); ++u) {
      state.user_cells[u] = mobility_->step(state.user_cells[u], step_rng);
      (void)state.service->observe_move(static_cast<UserId>(u),
                                        state.user_cells[u]);
    }
    state.service->tick();
  });
}

void ServiceFleet::export_shared_table_metrics() {
  if (config_.registry == nullptr) return;
  const auto stats = shared_table_->stats();
  shared_hits_metric_.inc(stats.hits - exported_shared_hits_);
  shared_misses_metric_.inc(stats.misses - exported_shared_misses_);
  exported_shared_hits_ = stats.hits;
  exported_shared_misses_ = stats.misses;
  shared_entries_metric_.set(static_cast<double>(stats.entries));
}

std::string ServiceFleet::area_section_name(std::size_t area) {
  return "service_fleet_area_" + std::to_string(area);
}

void ServiceFleet::add_state_sections(support::StateBundle& bundle) const {
  support::StateWriter writer;
  writer.put_u64(config_.num_areas);
  writer.put_u64(initial_cells_.size());
  writer.put_u64(config_.seed);
  writer.put_u64(grid_->num_cells());
  for (const auto& area : areas_state_) {
    writer.put_u64(area->locate_counter);
    writer.put_u64(area->step_counter);
    for (const CellId cell : area->user_cells) writer.put_u32(cell);
  }
  bundle.add(kStateSection, kStateVersion, std::move(writer).take());
  for (std::size_t a = 0; a < config_.num_areas; ++a) {
    bundle.add(area_section_name(a), LocationService::kStateVersion,
               areas_state_[a]->service->save_state());
  }
}

bool ServiceFleet::restore_state_sections(const support::StateBundle& bundle) {
  areas_restored_.store(0, std::memory_order_relaxed);
  const support::StateSection* master = bundle.find(kStateSection);
  if (master == nullptr || master->version != kStateVersion) return false;
  std::vector<std::unique_ptr<AreaState>> fresh;
  try {
    support::StateReader reader(master->payload);
    if (reader.get_u64() != config_.num_areas) return false;
    if (reader.get_u64() != initial_cells_.size()) return false;
    if (reader.get_u64() != config_.seed) return false;
    if (reader.get_u64() != grid_->num_cells()) return false;
    fresh.reserve(config_.num_areas);
    for (std::size_t a = 0; a < config_.num_areas; ++a) {
      auto state = build_area(a);
      state->locate_counter = reader.get_u64();
      state->step_counter = reader.get_u64();
      for (CellId& cell : state->user_cells) {
        cell = reader.get_u32();
        if (cell >= grid_->num_cells()) return false;
      }
      const support::StateSection* section =
          bundle.find(area_section_name(a));
      if (section == nullptr ||
          !state->service->restore_state(section->payload,
                                         section->version)) {
        return false;
      }
      fresh.push_back(std::move(state));
      areas_restored_.store(fresh.size(), std::memory_order_relaxed);
    }
    if (!reader.at_end()) return false;
  } catch (const support::StateFormatError&) {
    return false;
  }
  // Every area parsed, validated and restored — swap the whole fleet at
  // once (the all-or-nothing contract, fleet-wide).
  areas_state_ = std::move(fresh);
  return true;
}

}  // namespace confcall::cellular
