// Cell-grid topology and location areas.
//
// The paper's setting (Section 1.1): a wireless system is a set of cells;
// GSM MAP / IS-41 partition the cells into location areas (LAs), page a
// whole LA per call, and make devices report on LA crossings. We model the
// deployment as a rectangular grid of cells (optionally toroidal so border
// effects vanish in long simulations) tiled into rectangular LAs.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"

namespace confcall::cellular {

using core::CellId;

/// Cell adjacency pattern. Real deployments plan cells hexagonally;
/// kHexagonal models that with "odd-r" offset coordinates on the same
/// rows x cols array (6 neighbours), so location-area tiling, mobility
/// and profiles work unchanged. kVonNeumann (4) is the simple default,
/// kMoore (8) adds diagonals.
enum class Neighborhood {
  kVonNeumann,
  kMoore,
  kHexagonal,
};

/// A rectangular array of cells with configurable adjacency.
class GridTopology {
 public:
  /// rows x cols cells; `toroidal` wraps the edges. Hexagonal wrap
  /// requires an even number of rows (odd-r offsets must line up across
  /// the seam) — violations throw std::invalid_argument, as do zero
  /// dimensions.
  GridTopology(std::size_t rows, std::size_t cols, bool toroidal = false,
               Neighborhood neighborhood = Neighborhood::kVonNeumann);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool toroidal() const noexcept { return toroidal_; }
  [[nodiscard]] Neighborhood neighborhood() const noexcept {
    return neighborhood_;
  }
  [[nodiscard]] std::size_t num_cells() const noexcept {
    return rows_ * cols_;
  }

  [[nodiscard]] CellId cell_at(std::size_t row, std::size_t col) const;
  [[nodiscard]] std::size_t row_of(CellId cell) const { return cell / cols_; }
  [[nodiscard]] std::size_t col_of(CellId cell) const { return cell % cols_; }

  /// The adjacent cells (2-4 of them; 4 when toroidal or interior).
  [[nodiscard]] const std::vector<CellId>& neighbors(CellId cell) const {
    return adjacency_.at(cell);
  }

  /// Hop distance between two cells under this grid's neighbourhood
  /// (Manhattan for kVonNeumann, Chebyshev for kMoore, BFS-computed for
  /// kHexagonal/toroidal cases), i.e., the length of a shortest walk.
  /// Throws std::invalid_argument on out-of-range cells.
  [[nodiscard]] std::size_t distance(CellId a, CellId b) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  bool toroidal_;
  Neighborhood neighborhood_;
  std::vector<std::vector<CellId>> adjacency_;
};

/// A partition of a grid's cells into location areas.
class LocationAreas {
 public:
  /// Tiles the grid into blocks of tile_rows x tile_cols cells (the last
  /// row/column of tiles may be smaller when the dimensions do not
  /// divide). Throws std::invalid_argument on zero tile dimensions.
  static LocationAreas tiles(const GridTopology& grid, std::size_t tile_rows,
                             std::size_t tile_cols);

  /// One location area covering the whole grid (degenerate baseline).
  static LocationAreas whole_grid(const GridTopology& grid);

  [[nodiscard]] std::size_t num_areas() const noexcept {
    return cells_in_area_.size();
  }

  /// Which area a cell belongs to.
  [[nodiscard]] std::size_t area_of(CellId cell) const {
    return area_of_.at(cell);
  }

  /// The cells of one area, ascending.
  [[nodiscard]] const std::vector<CellId>& cells_in(std::size_t area) const {
    return cells_in_area_.at(area);
  }

 private:
  LocationAreas(std::vector<std::size_t> area_of,
                std::vector<std::vector<CellId>> cells_in_area)
      : area_of_(std::move(area_of)),
        cells_in_area_(std::move(cells_in_area)) {}

  std::vector<std::size_t> area_of_;
  std::vector<std::vector<CellId>> cells_in_area_;
};

}  // namespace confcall::cellular
