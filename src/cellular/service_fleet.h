// ServiceFleet — multi-area sharded serving with core-aware placement.
//
// The paper's setting is an MSC whose location management service tracks
// users across MANY location areas at once; until this layer the serving
// stack drove exactly one LocationService. A ServiceFleet owns a set of
// independent serving AREAS — each one a full location-management domain:
// its own LocationService over the shared topology, its own ground-truth
// user cells, its own deterministic randomness — and executes them on N
// SHARDS, per-core executor lanes with cache-line-aligned queues. (A
// fleet "area" is a whole serving domain, one level above the in-grid
// location areas a single LocationService already plans per.)
//
// Determinism contract (the PR 2 substream idiom, one level up): the
// unit of sequential state is the AREA, not the shard. Every request
// names its area; a dispatch groups the batch by area preserving
// within-area order, and each area-group runs as ONE task against
// area-local state, drawing randomness from per-(area, call-index)
// substreams — never from a shared stream, never per thread. Work
// stealing moves whole area-tasks between shards, so WHICH lane executes
// an area never changes WHAT the area computes: outcomes, learned state
// and checkpoint bytes are bit-identical at every shard count (the E20
// gate at shard counts 1/2/8).
//
// Routing and placement: area -> shard is the static map area %
// num_shards; shard -> core is round-robin (support::ShardCoreMap), with
// optional best-effort thread pinning. Each shard drains its own bounded
// FIFO queue; when a queue's backlog exceeds FleetConfig::steal_limit,
// idle shards steal from its BACK (support::ShardQueueSet — the NOVA
// core-map/steal-limit idiom, DESIGN.md §14). A dispatch that overflows
// a queue routes the excess through a shared overflow lane and counts
// it; work is never dropped.
//
// Cross-shard plan sharing: every area's LocationService is wired to one
// process-wide support::SignatureTable<core::Strategy>. Identically
// distributed areas produce identical plan signatures (the signature
// hashes planning inputs, not the area index), so the first area to plan
// a signature publishes the strategy and every other area — on any shard
// — copies it into its local plan cache instead of re-running the
// Fig. 1 DP.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "cellular/mobility.h"
#include "cellular/service.h"
#include "cellular/topology.h"
#include "core/strategy.h"
#include "prob/rng.h"
#include "support/fleet.h"
#include "support/metrics.h"
#include "support/state_io.h"
#include "support/thread_pool.h"

namespace confcall::cellular {

/// Fleet shape and scheduling knobs.
struct FleetConfig {
  /// Executor lanes. Each shard gets its own queue, metrics label and
  /// (round-robin) core; areas map to shards statically. 0 is invalid —
  /// resolve "auto" to hardware_concurrency before constructing.
  std::size_t num_shards = 1;
  /// Independent serving domains. Fixed per deployment and independent
  /// of num_shards — the shard count scales execution, never semantics.
  std::size_t num_areas = 8;
  /// Queue depth a shard must EXCEED before idle shards steal from it.
  std::size_t steal_limit = 2;
  /// Per-shard queue capacity; a dispatch overflowing it routes the
  /// excess through the shared overflow lane (counted, never dropped).
  std::size_t queue_capacity = 1024;
  /// Root of every area substream (areas derive mix_seed(seed, area)).
  std::uint64_t seed = 1;
  /// Capacity of the process-wide signature -> strategy table.
  std::size_t shared_table_capacity = 4096;
  /// Optional: registers the confcall_fleet_* family (per-shard labelled
  /// series plus fleet-wide aggregates). Must outlive the fleet.
  support::MetricRegistry* registry = nullptr;
  /// Best-effort pinning of shard workers to their mapped cores
  /// (Linux-only; purely a locality hint, results never depend on it).
  bool pin_threads = false;

  /// Throws std::invalid_argument with a specific message on nonsense.
  void validate() const;
};

/// N location-management domains executed on M sharded lanes. The
/// topology objects must outlive the fleet. Not itself thread-safe:
/// one dispatcher at a time calls locate_many / step_all / save /
/// restore (the daemon's sim_mutex discipline); parallelism happens
/// INSIDE a dispatch, across area-tasks.
class ServiceFleet {
 public:
  /// Every area starts as a clone of the same world: `base_config` (its
  /// metrics handles are replaced with per-shard labelled ones when
  /// FleetConfig::registry is set) and `initial_cells` (one starting
  /// cell per user, identical across areas — divergence comes from the
  /// per-area mobility substreams). Throws std::invalid_argument on an
  /// invalid config.
  ServiceFleet(const GridTopology& grid, const LocationAreas& areas,
               const MarkovMobility& mobility,
               LocationService::Config base_config,
               std::vector<CellId> initial_cells, FleetConfig config);

  /// One element of a fleet batch: which area serves it and who is
  /// sought. Ground truth lives inside the fleet (each area tracks its
  /// own user cells), so callers name users, not cells.
  struct Request {
    std::size_t area = 0;
    std::vector<UserId> users;
    LocationService::LocateContext context{};
  };

  /// Serves a batch: groups by area (preserving within-area order),
  /// routes area-tasks to shards, executes with work stealing, and
  /// gathers outcomes back into request order — outcomes[i] answers
  /// requests[i]. Bit-identical results at every shard count. Throws
  /// std::invalid_argument on an out-of-range area or user id.
  std::vector<LocationService::LocateOutcome> locate_many(
      std::span<const Request> requests);

  /// Advances every area one mobility step (moves, reports, tick) in
  /// parallel, deterministically: area a's step t draws from substream
  /// (area step seed, t) regardless of execution order.
  void step_all();

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return config_.num_shards;
  }
  [[nodiscard]] std::size_t num_areas() const noexcept {
    return config_.num_areas;
  }
  [[nodiscard]] std::size_t num_users() const noexcept {
    return initial_cells_.size();
  }
  /// The static routing map: area -> area % num_shards.
  [[nodiscard]] std::size_t shard_of(std::size_t area) const noexcept {
    return area % config_.num_shards;
  }
  [[nodiscard]] const LocationService& service(std::size_t area) const {
    return *areas_state_[area]->service;
  }
  [[nodiscard]] CellId user_cell(std::size_t area, UserId user) const {
    return areas_state_[area]->user_cells[user];
  }

  /// Scheduling counters since construction (aggregated over dispatches;
  /// steal/overflow counts are timing-dependent, results are not).
  struct FleetStats {
    std::uint64_t dispatches = 0;
    std::uint64_t requests = 0;
    std::uint64_t tasks = 0;
    std::uint64_t steals = 0;
    std::uint64_t overflows = 0;
  };
  [[nodiscard]] const FleetStats& stats() const noexcept { return stats_; }

  [[nodiscard]] const support::SignatureTable<core::Strategy>& shared_table()
      const noexcept {
    return *shared_table_;
  }

  /// Checkpointing: one master section guarding the fleet shape plus one
  /// LocationService section per area. Section names are stable and
  /// derived from the area index, so a bundle restores into a fleet of
  /// any shard count (shards are execution, not state).
  static constexpr const char* kStateSection = "service_fleet";
  static constexpr std::uint32_t kStateVersion = 1;
  [[nodiscard]] static std::string area_section_name(std::size_t area);

  /// Appends the master section and every per-area section to `bundle`.
  /// Pure function of the logical fleet state: identical state yields
  /// identical bytes at any shard count.
  void add_state_sections(support::StateBundle& bundle) const;

  /// All-or-nothing restore across the WHOLE fleet: every section is
  /// parsed and validated against freshly built services first; only
  /// when every area restores does the fleet swap state. Returns false
  /// (leaving the current state untouched) on any missing section,
  /// version skew, shape mismatch or malformed payload. Never throws on
  /// bad input.
  [[nodiscard]] bool restore_state_sections(const support::StateBundle& bundle);

  /// Areas validated so far by an in-flight restore_state_sections call
  /// (monotone 0 → num_areas within one attempt; reset when the next
  /// attempt starts). Readable from any thread — the daemon's /readyz
  /// handler renders it while the dispatcher thread is mid-restore, so
  /// operators can watch a partial restore progress.
  [[nodiscard]] std::size_t areas_restored() const noexcept {
    return areas_restored_.load(std::memory_order_relaxed);
  }

 private:
  /// Everything one area owns. Heap-allocated so hot per-area state
  /// never false-shares across the areas a dispatch runs in parallel.
  struct AreaState {
    std::unique_ptr<LocationService> service;
    std::vector<CellId> user_cells;
    std::uint64_t locate_counter = 0;  ///< calls served (rng substream index)
    std::uint64_t step_counter = 0;    ///< mobility steps run
  };

  /// Per-shard metric handles (labelled {shard="s"}); unbound without a
  /// registry.
  struct ShardMetrics {
    support::Counter tasks;
    support::Counter steals;  ///< tasks stolen FROM this shard's queue
    support::Gauge queue_depth;
    support::Histogram task_ns;
  };

  [[nodiscard]] std::unique_ptr<AreaState> build_area(std::size_t area) const;
  [[nodiscard]] std::uint64_t area_seed(std::size_t area) const noexcept;
  void run_area_task(std::size_t area, std::span<const Request> requests,
                     std::span<const std::size_t> indices,
                     std::span<LocationService::LocateOutcome> outcomes);
  void export_shared_table_metrics();

  const GridTopology* grid_;
  const LocationAreas* la_;
  const MarkovMobility* mobility_;
  LocationService::Config base_config_;
  std::vector<CellId> initial_cells_;
  FleetConfig config_;

  std::unique_ptr<support::SignatureTable<core::Strategy>> shared_table_;
  std::vector<std::unique_ptr<AreaState>> areas_state_;
  support::ThreadPool pool_;
  support::ShardCoreMap core_map_;

  std::vector<ShardMetrics> shard_metrics_;
  support::Counter requests_metric_;
  support::Counter dispatches_metric_;
  support::Counter overflow_metric_;
  support::Counter shared_hits_metric_;
  support::Counter shared_misses_metric_;
  support::Gauge shared_entries_metric_;
  std::uint64_t exported_shared_hits_ = 0;
  std::uint64_t exported_shared_misses_ = 0;

  FleetStats stats_;
  std::atomic<std::size_t> areas_restored_{0};

  /// Dispatch scratch, reused across locate_many calls (single
  /// dispatcher, so no locking): per-area request-index groups and the
  /// list of areas touched by the current batch.
  std::vector<std::vector<std::size_t>> area_groups_;
  std::vector<std::size_t> active_areas_;
};

}  // namespace confcall::cellular
