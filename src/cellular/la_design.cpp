#include "cellular/la_design.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "cellular/profile.h"
#include "core/single_user.h"

namespace confcall::cellular {

TilingEvaluation evaluate_tiling(const GridTopology& grid,
                                 const MarkovMobility& mobility,
                                 std::size_t tile_rows, std::size_t tile_cols,
                                 std::size_t paging_rounds) {
  if (paging_rounds == 0) {
    throw std::invalid_argument("evaluate_tiling: zero paging rounds");
  }
  const LocationAreas areas = LocationAreas::tiles(grid, tile_rows, tile_cols);
  const std::vector<double> stationary = mobility.stationary_distribution();

  TilingEvaluation eval;
  eval.tile_rows = tile_rows;
  eval.tile_cols = tile_cols;
  eval.num_areas = areas.num_areas();

  // Report rate: stationary flow across LA boundaries.
  for (std::size_t j = 0; j < grid.num_cells(); ++j) {
    const auto row = mobility.transition_row(static_cast<CellId>(j));
    const std::size_t home = areas.area_of(static_cast<CellId>(j));
    double crossing = 0.0;
    for (std::size_t j2 = 0; j2 < grid.num_cells(); ++j2) {
      if (row[j2] > 0.0 && areas.area_of(static_cast<CellId>(j2)) != home) {
        crossing += row[j2];
      }
    }
    eval.report_rate += stationary[j] * crossing;
  }

  // Paging cost: mass-weighted optimal d-round search per LA.
  for (std::size_t area = 0; area < areas.num_areas(); ++area) {
    const auto& cells = areas.cells_in(area);
    double area_mass = 0.0;
    for (const CellId cell : cells) area_mass += stationary[cell];
    if (area_mass <= 0.0) continue;
    const prob::ProbabilityVector profile =
        restrict_to_area(stationary, cells);
    const std::size_t d = std::min(paging_rounds, cells.size());
    eval.pages_per_callee +=
        area_mass * core::optimal_single_user_paging(profile, d);
  }
  return eval;
}

std::vector<TilingEvaluation> evaluate_all_tilings(
    const GridTopology& grid, const MarkovMobility& mobility,
    std::size_t paging_rounds) {
  std::vector<TilingEvaluation> evaluations;
  for (std::size_t tr = 1; tr <= grid.rows(); ++tr) {
    if (grid.rows() % tr != 0) continue;
    for (std::size_t tc = 1; tc <= grid.cols(); ++tc) {
      if (grid.cols() % tc != 0) continue;
      evaluations.push_back(
          evaluate_tiling(grid, mobility, tr, tc, paging_rounds));
    }
  }
  std::sort(evaluations.begin(), evaluations.end(),
            [](const TilingEvaluation& a, const TilingEvaluation& b) {
              const std::size_t size_a = a.tile_rows * a.tile_cols;
              const std::size_t size_b = b.tile_rows * b.tile_cols;
              if (size_a != size_b) return size_a < size_b;
              return a.tile_rows < b.tile_rows;
            });
  return evaluations;
}

TilingEvaluation best_tiling(const GridTopology& grid,
                             const MarkovMobility& mobility,
                             std::size_t paging_rounds, double report_cost,
                             double page_cost, double callee_rate) {
  const auto evaluations =
      evaluate_all_tilings(grid, mobility, paging_rounds);
  if (evaluations.empty()) {
    throw std::logic_error("best_tiling: no tilings (bug)");
  }
  const TilingEvaluation* best = &evaluations.front();
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& eval : evaluations) {
    const double cost =
        eval.cost_per_user_step(report_cost, page_cost, callee_rate);
    if (cost < best_cost) {
      best_cost = cost;
      best = &eval;
    }
  }
  return *best;
}

}  // namespace confcall::cellular
