// HLR-style location database and reporting policies.
//
// GSM MAP / IS-41 (paper Section 1.1): every cell broadcasts its location
// area id; a device reports when it crosses into a new LA, and the network
// persists the most recently reported LA per device. This module models
// that database plus the two extreme policies the paper uses to frame the
// reporting/paging tradeoff — never report (maximal paging) and report
// every cell crossing (maximal reporting, zero search).
#pragma once

#include <cstdint>
#include <vector>

#include "cellular/topology.h"

namespace confcall::cellular {

using UserId = std::uint32_t;

/// When a device sends a location report over the wireless uplink. The
/// first three are the boundary-based policies of GSM MAP / IS-41 and the
/// two extremes the paper uses to frame the tradeoff; the last two are
/// the classic update-strategy alternatives from the location-management
/// literature the paper cites ([4]: "to update or not to update?").
enum class ReportPolicy {
  kNever,           ///< devices stay silent; the whole system must be paged
  kOnAreaCrossing,  ///< GSM MAP / IS-41: report on LA change
  kOnCellCrossing,  ///< report every cell change; paging becomes trivial
  kEveryTSteps,     ///< timer-based: report every T steps regardless
  kDistanceThreshold,  ///< distance-based: report after moving >= D cells
};

/// The network-side record of the last report per device.
class LocationDatabase {
 public:
  /// `num_users` devices; everyone initially registered at their starting
  /// cell/area (as a real network would after power-on attach).
  LocationDatabase(std::size_t num_users, const LocationAreas& areas,
                   const std::vector<CellId>& initial_cells);

  /// Called by the simulator after a device moves; returns true when the
  /// policy triggers a report (which the caller accounts as uplink cost).
  bool observe_move(UserId user, CellId new_cell, ReportPolicy policy);

  /// Most recently reported location area.
  [[nodiscard]] std::size_t reported_area(UserId user) const {
    return reported_area_.at(user);
  }

  /// Most recently reported cell (only current under kOnCellCrossing).
  [[nodiscard]] CellId reported_cell(UserId user) const {
    return reported_cell_.at(user);
  }

  /// Steps since the last report of this device (for last-seen profiles).
  [[nodiscard]] std::size_t steps_since_report(UserId user) const {
    return steps_since_report_.at(user);
  }

  /// Advances every device's "steps since report" clock by one.
  void tick();

  /// Registers a report (updates the record, resets the clock). Exposed
  /// for call handling: after a device is found by paging it implicitly
  /// reports its location (it answered a base station).
  void record_report(UserId user, CellId cell);

  /// Overwrites one device's record wholesale — checkpoint restore. The
  /// reported area is re-derived from the cell (the class invariant).
  /// Throws std::out_of_range on an unknown user or cell.
  void restore_record(UserId user, CellId cell, std::size_t steps);

 private:
  const LocationAreas* areas_;
  std::vector<std::size_t> reported_area_;
  std::vector<CellId> reported_cell_;
  std::vector<std::size_t> steps_since_report_;
};

}  // namespace confcall::cellular
