#include "cellular/service.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "cellular/profile.h"
#include "core/adaptive.h"
#include "core/evaluator.h"
#include "core/greedy.h"
#include "core/planner.h"
#include "support/state_io.h"

namespace confcall::cellular {

ServiceMetrics ServiceMetrics::create(support::MetricRegistry& registry,
                                      const support::MetricLabels& labels) {
  ServiceMetrics metrics;
  metrics.calls = registry.counter("confcall_locate_calls_total",
                                   "locate() calls served", labels);
  metrics.cache_hits =
      registry.counter("confcall_locate_plan_cache_hits_total",
                       "Planned searches answered from the plan cache",
                       labels);
  metrics.cache_misses =
      registry.counter("confcall_locate_plan_cache_misses_total",
                       "Planned searches that ran the planner", labels);
  metrics.retries = registry.counter(
      "confcall_locate_retries_total",
      "Recovery sweeps run across all locate() calls", labels);
  metrics.abandoned = registry.counter(
      "confcall_locate_abandoned_total",
      "locate() calls that force-registered at least one callee unfound",
      labels);
  metrics.deadline_limited = registry.counter(
      "confcall_locate_deadline_limited_total",
      "locate() calls truncated by their propagated deadline", labels);
  // Pages and EP share one bucket layout so the realized paging cost and
  // the paper's Lemma 2.1 prediction compare bucket-for-bucket.
  const support::HistogramSpec paging_spec =
      support::HistogramSpec::exponential(1.0, 2.0, 12);
  metrics.pages = registry.histogram("confcall_locate_pages", paging_spec,
                                     "Cells paged per locate() call", labels);
  metrics.ep_predicted = registry.histogram(
      "confcall_locate_ep_predicted", paging_spec,
      "Lemma 2.1 expected paging of each planned per-area strategy", labels);
  metrics.rounds = registry.histogram(
      "confcall_locate_rounds", support::HistogramSpec::integers(128),
      "Paging rounds used per locate() call (unit buckets; quantile() "
      "agrees exactly with SimReport::rounds_percentile)",
      labels);
  metrics.batch_size = registry.histogram(
      "confcall_locate_batch_size",
      support::HistogramSpec::exponential(1.0, 2.0, 8),
      "locate_many() batch sizes (one observation per batch)", labels);
  return metrics;
}

namespace {

/// Splitmix64-style chained mix over 64-bit words, used to fingerprint a
/// planning input (word-at-a-time — ~5 ALU ops per word where the old
/// byte-wise FNV-1a took 16; the signature runs on every planned locate(),
/// so its cost is hot-path cost). A collision would silently serve a stale
/// strategy; at 64 bits and a few thousand live signatures per service
/// that risk is negligible for a simulation component (and the worst case
/// is one suboptimally-ordered search, not an incorrect one — every
/// strategy still pages every cell).
class SignatureHasher {
 public:
  void add(std::uint64_t word) noexcept {
    std::uint64_t x = hash_ + word + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    hash_ = x ^ (x >> 31);
  }
  void add(double value) noexcept { add(std::bit_cast<std::uint64_t>(value)); }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Validated before LocationDatabase construction (which would otherwise
/// surface out-of-range cells as std::out_of_range from area lookups).
std::vector<CellId> checked_initial_cells(const GridTopology& grid,
                                          std::vector<CellId> cells) {
  if (cells.empty()) {
    throw std::invalid_argument("LocationService: no users");
  }
  for (const CellId cell : cells) {
    if (cell >= grid.num_cells()) {
      throw std::invalid_argument("LocationService: initial cell range");
    }
  }
  return cells;
}

}  // namespace

void RetryPolicy::validate() const {
  if (backoff_base != 0 && backoff_base > backoff_cap) {
    throw std::invalid_argument(
        "RetryPolicy: backoff_base exceeds backoff_cap");
  }
}

void LocationService::Config::validate() const {
  if (max_paging_rounds == 0) {
    throw std::invalid_argument(
        "LocationService: max_paging_rounds must be >= 1");
  }
  if (timer_period == 0) {
    throw std::invalid_argument("LocationService: timer_period must be >= 1");
  }
  if (distance_threshold == 0) {
    throw std::invalid_argument(
        "LocationService: distance_threshold must be >= 1");
  }
  if (!(laplace_alpha >= 0.0)) {
    throw std::invalid_argument(
        "LocationService: laplace_alpha must be >= 0");
  }
  if (!(detection_probability > 0.0 && detection_probability <= 1.0)) {
    throw std::invalid_argument(
        "LocationService: detection_probability must be in (0, 1]");
  }
  if (detection_probability < 1.0 &&
      paging_policy == PagingPolicy::kAdaptive) {
    throw std::invalid_argument(
        "LocationService: the adaptive policy assumes perfect detection");
  }
  if (planner != nullptr && paging_policy == PagingPolicy::kAdaptive) {
    throw std::invalid_argument(
        "LocationService: planner override is incompatible with the "
        "adaptive policy");
  }
  retry.validate();
}

LocationService::LocationService(const GridTopology& grid,
                                 const LocationAreas& areas,
                                 const MarkovMobility& mobility,
                                 Config config,
                                 std::vector<CellId> initial_cells)
    : grid_(&grid),
      areas_(&areas),
      mobility_(&mobility),
      config_(config),
      db_(checked_initial_cells(grid, initial_cells).size(), areas,
          checked_initial_cells(grid, initial_cells)) {
  config_.validate();
  visit_counts_.assign(initial_cells.size(),
                       std::vector<double>(grid_->num_cells(), 0.0));
  if (config_.profile_kind == ProfileKind::kStationary) {
    stationary_ = mobility_->stationary_distribution();
    // The stationary profile is user-independent, so its per-area
    // restriction can be computed once here instead of per callee per
    // call (profile_for returns a copy of these rows).
    stationary_area_.reserve(areas_->num_areas());
    for (std::size_t area = 0; area < areas_->num_areas(); ++area) {
      stationary_area_.push_back(
          restrict_to_area(stationary_, areas_->cells_in(area)));
    }
  }
  plan_cache_.resize(areas_->num_areas());
}

void LocationService::attach_faults(FaultPlan* faults) {
  if (faults != nullptr &&
      config_.paging_policy == PagingPolicy::kAdaptive) {
    throw std::invalid_argument(
        "LocationService: the adaptive policy assumes a fault-free "
        "network");
  }
  faults_ = faults;
}

bool LocationService::observe_move(UserId user, CellId new_cell) {
  if (user >= num_users() || new_cell >= grid_->num_cells()) {
    throw std::invalid_argument("observe_move: out of range");
  }
  visit_counts_[user][new_cell] += 1.0;
  bool wants_report = false;
  switch (config_.report_policy) {
    case ReportPolicy::kNever:
      break;
    case ReportPolicy::kOnAreaCrossing:
      wants_report = areas_->area_of(new_cell) != db_.reported_area(user);
      break;
    case ReportPolicy::kOnCellCrossing:
      wants_report = new_cell != db_.reported_cell(user);
      break;
    case ReportPolicy::kEveryTSteps:
      // tick() runs after the per-step observe batch, so the clock reads
      // the number of completed steps since the last report; reporting at
      // clock == T gives an exact period of T steps.
      wants_report = db_.steps_since_report(user) >= config_.timer_period;
      break;
    case ReportPolicy::kDistanceThreshold:
      wants_report = grid_->distance(db_.reported_cell(user), new_cell) >=
                     config_.distance_threshold;
      break;
  }
  if (!wants_report) return false;
  if (faults_ != nullptr && faults_->drop_report()) {
    // The device paid the uplink cost but the network never heard it:
    // the record stays stale, and the device will keep re-triggering on
    // later movement because the stale record still violates the policy.
    ++reports_lost_;
    return true;
  }
  db_.record_report(user, new_cell);
  return true;
}

void LocationService::tick() { db_.tick(); }

prob::ProbabilityVector LocationService::profile_for(
    UserId user, std::size_t area) const {
  const auto& cells = areas_->cells_in(area);
  switch (config_.profile_kind) {
    case ProfileKind::kEmpirical:
      return profile_from_counts(visit_counts_.at(user), cells,
                                 config_.laplace_alpha);
    case ProfileKind::kStationary:
      return stationary_area_.at(area);
    case ProfileKind::kLastSeen: {
      const std::size_t steps = std::min(db_.steps_since_report(user),
                                         config_.last_seen_horizon);
      return last_seen_profile(*mobility_, db_.reported_cell(user), steps,
                               cells);
    }
  }
  throw std::logic_error("profile_for: unknown profile kind");
}

bool LocationService::page_answered(std::size_t cohabitants,
                                    prob::Rng& rng) const {
  double q = config_.detection_probability;
  if (q >= 1.0) return true;
  if (config_.collision_losses && cohabitants > 1) {
    q /= static_cast<double>(cohabitants);
  }
  return rng.next_double() < q;
}

std::uint64_t LocationService::plan_signature(
    std::span<const prob::ProbabilityVector* const> rows,
    std::size_t num_cells, std::size_t area, std::size_t d) const {
  SignatureHasher hasher;
  hasher.add(static_cast<std::uint64_t>(d));
  hasher.add(static_cast<std::uint64_t>(num_cells));
  hasher.add(static_cast<std::uint64_t>(rows.size()));
  for (const prob::ProbabilityVector* row : rows) {
    for (const double p : *row) {
      hasher.add(p);
    }
  }
  // Fold in the area's outage state so a fault taking cells down (or
  // bringing them back) forces a replan. Only hashed while some cell of
  // THIS area is dark: the all-up state signs identically whether or not
  // a fault plan is attached, keeping a zero-rate plan perfectly inert.
  if (faults_ != nullptr) {
    const auto& cells = areas_->cells_in(area);
    bool any_out = false;
    for (const CellId cell : cells) any_out |= faults_->cell_out(cell);
    if (any_out) {
      hasher.add(std::uint64_t{0x07a6efa17ULL});  // outage-state marker
      for (const CellId cell : cells) {
        hasher.add(static_cast<std::uint64_t>(faults_->cell_out(cell)));
      }
    }
  }
  return hasher.value();
}

namespace {

/// Materializes the Instance a row-pointer set describes (rows may alias,
/// e.g. every callee sharing one cached stationary profile). Equivalent to
/// Instance::from_rows on the copied rows.
core::Instance instance_from_row_ptrs(
    std::span<const prob::ProbabilityVector* const> rows) {
  const std::size_t cells = rows.front()->size();
  std::vector<double> flat;
  flat.reserve(rows.size() * cells);
  for (const prob::ProbabilityVector* row : rows) {
    if (row->size() != cells) {
      throw std::invalid_argument("Instance: ragged rows");
    }
    flat.insert(flat.end(), row->begin(), row->end());
  }
  return core::Instance(rows.size(), cells, std::move(flat));
}

}  // namespace

const core::Strategy* LocationService::plan_area_strategy(
    std::span<const UserId> group_users, std::size_t area,
    std::size_t num_cells, std::size_t d, bool plan_cheap,
    double* ep_out) const {
  if (config_.paging_policy == PagingPolicy::kBlanketArea || plan_cheap) {
    // Degraded health plans with the cheap tier directly: a blanket area
    // page costs zero planning work and one round, which is exactly what
    // an overloaded control plane can still afford.
    scratch_.planned = core::Strategy::blanket(num_cells);
    return &*scratch_.planned;
  }
  // Stage one profile-row pointer per callee. Under the stationary
  // profile every callee shares the area's cached row, so the hot
  // cache-hit path does no profile work at all; other profile kinds
  // materialize into the reused scratch rows.
  auto& rows = scratch_.rows;
  auto& row_ptrs = scratch_.row_ptrs;
  rows.clear();
  row_ptrs.clear();
  if (config_.profile_kind == ProfileKind::kStationary) {
    const prob::ProbabilityVector& shared = stationary_area_[area];
    row_ptrs.assign(group_users.size(), &shared);
  } else {
    rows.reserve(group_users.size());
    for (const UserId user : group_users) {
      rows.push_back(profile_for(user, area));
    }
    for (const auto& row : rows) row_ptrs.push_back(&row);
  }

  if (config_.enable_plan_cache) {
    const std::uint64_t signature =
        plan_signature(row_ptrs, num_cells, area, d);
    PlanCacheShard& shard = plan_cache_[area];
    for (PlanCacheEntry& entry : shard.entries) {
      if (entry.signature == signature) {
        ++plan_cache_stats_.hits;
        config_.metrics.cache_hits.inc();
        if (ep_out != nullptr) {
          // Lazily fill the cached EP: a cache populated before the EP
          // histogram was wanted (or by an uninstrumented service) holds
          // the -1 sentinel until the first asking hit. Only this slow
          // lane ever builds an Instance on a hit.
          if (entry.expected_paging < 0.0) {
            entry.expected_paging = core::expected_paging(
                instance_from_row_ptrs(row_ptrs), entry.strategy);
          }
          *ep_out = entry.expected_paging;
        }
        return &entry.strategy;
      }
    }
    if (config_.shared_plan_table != nullptr) {
      // Local miss: before paying the planner, ask the process-wide
      // signature table whether another service (another fleet area,
      // usually on another shard) already planned these exact inputs.
      // The copy lands in the local cache so subsequent hits stay on
      // the lock-free local path.
      if (std::optional<core::Strategy> shared_strategy =
              config_.shared_plan_table->lookup(signature)) {
        PlanCacheEntry entry{signature, std::move(*shared_strategy), -1.0};
        if (ep_out != nullptr) {
          entry.expected_paging = core::expected_paging(
              instance_from_row_ptrs(row_ptrs), entry.strategy);
          *ep_out = entry.expected_paging;
        }
        ++plan_cache_stats_.hits;
        config_.metrics.cache_hits.inc();
        if (shard.entries.size() < PlanCacheShard::kCapacity) {
          shard.entries.push_back(std::move(entry));
          return &shard.entries.back().strategy;
        }
        const std::size_t slot = shard.next_slot;
        shard.entries[slot] = std::move(entry);
        shard.next_slot = (slot + 1) % PlanCacheShard::kCapacity;
        return &shard.entries[slot].strategy;
      }
    }
    const core::Instance instance = instance_from_row_ptrs(row_ptrs);
    core::Strategy strategy =
        config_.planner != nullptr
            ? config_.planner->plan(instance, d)
            : core::plan_greedy(instance, d).strategy;
    if (config_.shared_plan_table != nullptr) {
      (void)config_.shared_plan_table->insert(signature, strategy);
    }
    PlanCacheEntry entry{signature, std::move(strategy), -1.0};
    if (ep_out != nullptr) {
      entry.expected_paging = core::expected_paging(instance, entry.strategy);
      *ep_out = entry.expected_paging;
    }
    ++plan_cache_stats_.misses;
    config_.metrics.cache_misses.inc();
    if (shard.entries.size() < PlanCacheShard::kCapacity) {
      shard.entries.push_back(std::move(entry));
      return &shard.entries.back().strategy;
    }
    const std::size_t slot = shard.next_slot;
    shard.entries[slot] = std::move(entry);
    shard.next_slot = (slot + 1) % PlanCacheShard::kCapacity;
    return &shard.entries[slot].strategy;
  }

  const core::Instance instance = instance_from_row_ptrs(row_ptrs);
  scratch_.planned = config_.planner != nullptr
                         ? config_.planner->plan(instance, d)
                         : core::plan_greedy(instance, d).strategy;
  if (ep_out != nullptr) {
    *ep_out = core::expected_paging(instance, *scratch_.planned);
  }
  return &*scratch_.planned;
}

LocationService::AreaOutcome LocationService::execute_area_strategy(
    const core::Strategy& strategy, std::span<const UserId> users,
    std::span<const CellId> true_cells,
    const std::vector<std::size_t>& local_of, std::vector<bool>& found,
    LocateOutcome& outcome, prob::Rng& rng) {
  const auto cohabitant_count = [&](CellId cell) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < users.size(); ++i) {
      if (!found[i] && true_cells[i] == cell) ++count;
    }
    return count;
  };

  AreaOutcome area;
  for (std::size_t r = 0; r < strategy.num_rounds(); ++r) {
    area.pages += strategy.group(r).size();
    area.rounds = r + 1;
    if (faults_ != nullptr && faults_->drop_round()) {
      // Channel overload: the round's pages are spent, nobody hears them.
      ++outcome.dropped_rounds;
    } else {
      for (std::size_t i = 0; i < users.size(); ++i) {
        if (found[i] || local_of[i] == kUnknownLocal) continue;
        if (strategy.round_of(static_cast<core::CellId>(local_of[i])) !=
            r) {
          continue;
        }
        if (faults_ != nullptr && faults_->cell_out(true_cells[i])) {
          // The device's base station is dark: the page is spent but can
          // never be answered. No detection draw happens.
          ++outcome.outage_pages;
          continue;
        }
        if (page_answered(cohabitant_count(true_cells[i]), rng)) {
          found[i] = true;
        } else {
          ++outcome.missed_detections;
        }
      }
    }
    bool everyone_found = true;
    for (std::size_t i = 0; i < users.size(); ++i) {
      everyone_found &= found[i];
    }
    if (everyone_found) {
      area.ran_all_rounds = r + 1 == strategy.num_rounds();
      return area;
    }
  }
  area.ran_all_rounds = true;
  return area;
}

void LocationService::run_recovery(std::span<const UserId> users,
                                   std::span<const CellId> true_cells,
                                   std::vector<std::size_t> missing,
                                   std::size_t first_sweep_pages,
                                   std::size_t round_cap,
                                   LocateOutcome& outcome, prob::Rng& rng) {
  const RetryPolicy& retry = config_.retry;
  std::size_t attempt = 0;
  while (!missing.empty() && attempt < retry.max_retries) {
    const std::size_t sweep_pages =
        attempt == 0 ? first_sweep_pages : grid_->num_cells();
    if (retry.page_budget != 0 &&
        outcome.cells_paged + sweep_pages > retry.page_budget) {
      outcome.budget_exhausted = true;
      break;
    }
    std::size_t backoff = 0;
    if (retry.backoff_base != 0) {
      backoff = retry.backoff_cap;
      if (attempt < 63 && (retry.backoff_base << attempt) < backoff) {
        backoff = retry.backoff_base << attempt;
      }
    }
    if (retry.round_deadline != 0 &&
        outcome.rounds_used + backoff + 1 > retry.round_deadline) {
      outcome.budget_exhausted = true;
      break;
    }
    // The propagated deadline is a hard wall: a sweep that cannot finish
    // before it is not started, so an admitted call never runs past its
    // deadline — it abandons instead.
    if (outcome.rounds_used + backoff + 1 > round_cap) {
      outcome.deadline_limited = true;
      break;
    }
    outcome.rounds_used += backoff;
    outcome.backoff_rounds += backoff;

    outcome.cells_paged += sweep_pages;
    outcome.fallback_pages += sweep_pages;
    outcome.rounds_used += 1;
    ++outcome.retries;

    if (faults_ != nullptr && faults_->drop_round()) {
      ++outcome.dropped_rounds;
    } else {
      std::vector<std::size_t> still_missing;
      for (const std::size_t i : missing) {
        if (faults_ != nullptr && faults_->cell_out(true_cells[i])) {
          // Sweeping pages the dark cell too; the device cannot answer.
          ++outcome.outage_pages;
          still_missing.push_back(i);
          continue;
        }
        std::size_t cohabitants = 0;
        for (const std::size_t other : missing) {
          if (true_cells[other] == true_cells[i]) ++cohabitants;
        }
        if (page_answered(cohabitants, rng)) {
          db_.record_report(users[i], true_cells[i]);
        } else {
          ++outcome.missed_detections;
          still_missing.push_back(i);
        }
      }
      missing = std::move(still_missing);
    }
    ++attempt;
  }
  // Whatever recovery could not find is force-registered: the network
  // commits the caller-supplied truth (modelling the device eventually
  // answering a persistent page out-of-band) but the call is accounted
  // as abandoned — it never heard those callees within its budget.
  if (!missing.empty()) {
    outcome.abandoned = true;
    outcome.forced_registrations += missing.size();
    for (const std::size_t i : missing) {
      db_.record_report(users[i], true_cells[i]);
    }
  }
  outcome.degraded = outcome.retries > 0 || outcome.abandoned;
}

LocationService::LocateOutcome LocationService::locate(
    std::span<const UserId> users, std::span<const CellId> true_cells,
    prob::Rng& rng, const LocateContext& context) {
  if (users.size() != true_cells.size() || users.empty()) {
    throw std::invalid_argument(
        "locate: need one true cell per user, at least one user");
  }
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (users[i] >= num_users() || true_cells[i] >= grid_->num_cells()) {
      throw std::invalid_argument("locate: out of range");
    }
  }
  if (config_.paging_policy == PagingPolicy::kAdaptive &&
      (!context.deadline.is_unbounded() || context.plan_cheap)) {
    throw std::invalid_argument(
        "locate: the adaptive policy assumes the full delay budget");
  }
  const support::Span locate_span(config_.tracer, "locate");
  config_.metrics.calls.inc();
  // Convert the propagated deadline into this call's round budget.
  // kUnknownLocal doubles as "no cap" (it is SIZE_MAX).
  std::size_t round_cap = kUnknownLocal;
  if (!context.deadline.is_unbounded()) {
    if (config_.clock == nullptr || config_.round_duration_ns == 0) {
      throw std::invalid_argument(
          "locate: a bounded deadline needs Config::clock and a nonzero "
          "round_duration_ns");
    }
    round_cap = static_cast<std::size_t>(
        context.deadline.remaining_ns(*config_.clock) /
        config_.round_duration_ns);
  }

  LocateOutcome outcome;

  // Group callees by their last-reported location area — each group is
  // one Conference Call instance over that area's cells. A stable sort of
  // (area, index) pairs visits areas in ascending order with callees in
  // request order inside each, exactly the iteration the old std::map
  // grouping produced, without a node allocation per area.
  auto& by_area = scratch_.area_of_index;
  by_area.clear();
  for (std::size_t i = 0; i < users.size(); ++i) {
    by_area.emplace_back(db_.reported_area(users[i]), i);
  }
  std::stable_sort(by_area.begin(), by_area.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  auto& area_paged_fully = scratch_.area_paged_fully;
  area_paged_fully.assign(areas_->num_areas(), false);
  std::vector<std::size_t> missing;  // indices into users
  bool any_missed_detection = false;
  for (std::size_t begin = 0; begin < by_area.size();) {
    const std::size_t area = by_area[begin].first;
    std::size_t end = begin + 1;
    while (end < by_area.size() && by_area[end].first == area) ++end;
    const std::span<const std::pair<std::size_t, std::size_t>> group(
        by_area.data() + begin, end - begin);
    begin = end;

    const auto& cells = areas_->cells_in(area);
    auto& group_users = scratch_.group_users;
    auto& group_cells = scratch_.group_cells;
    group_users.clear();
    group_cells.clear();
    for (const auto& pair : group) {
      group_users.push_back(users[pair.second]);
      group_cells.push_back(true_cells[pair.second]);
    }

    // Local (within-area) cell index per callee; kUnknownLocal = stale.
    auto& local_of = scratch_.local_of;
    local_of.assign(group.size(), kUnknownLocal);
    bool all_present = true;
    for (std::size_t k = 0; k < group.size(); ++k) {
      const auto it =
          std::find(cells.begin(), cells.end(), group_cells[k]);
      if (it == cells.end()) {
        all_present = false;
      } else {
        local_of[k] = static_cast<std::size_t>(it - cells.begin());
      }
    }

    std::size_t d = std::min(config_.max_paging_rounds, cells.size());
    if (round_cap < d) {
      // Not enough time for the configured delay budget: plan for the
      // rounds the deadline still affords (a tighter d pages more
      // aggressively — quality degrades before latency). With no rounds
      // left at all the planned phase is skipped outright and the
      // callees fall through to abandonment accounting below.
      d = round_cap;
      outcome.deadline_limited = true;
    }
    auto& found = scratch_.found;
    found.assign(group.size(), false);
    AreaOutcome area_outcome;
    if (d == 0) {
      area_outcome.ran_all_rounds = false;
    } else if (config_.paging_policy == PagingPolicy::kAdaptive &&
               all_present) {
      std::vector<core::CellId> local_true(group.size());
      for (std::size_t k = 0; k < group.size(); ++k) {
        local_true[k] = static_cast<core::CellId>(local_of[k]);
      }
      std::vector<prob::ProbabilityVector> rows;
      rows.reserve(group.size());
      for (const UserId user : group_users) {
        rows.push_back(profile_for(user, area));
      }
      const core::AdaptiveOutcome adaptive = core::run_adaptive(
          core::Instance::from_rows(rows), d, local_true);
      area_outcome.pages = adaptive.cells_paged;
      area_outcome.rounds = adaptive.rounds_used;
      area_outcome.ran_all_rounds = adaptive.cells_paged == cells.size();
      found.assign(group.size(), true);
    } else {
      double ep = -1.0;
      const core::Strategy* strategy = [&] {
        const support::Span plan_span(config_.tracer, "plan");
        return plan_area_strategy(
            group_users, area, cells.size(), d, context.plan_cheap,
            config_.metrics.ep_predicted.bound() ? &ep : nullptr);
      }();
      if (ep >= 0.0) config_.metrics.ep_predicted.observe(ep);
      const support::Span page_span(config_.tracer, "page_rounds");
      area_outcome = execute_area_strategy(*strategy, group_users,
                                           group_cells, local_of, found,
                                           outcome, rng);
    }
    outcome.cells_paged += area_outcome.pages;
    outcome.rounds_used =
        std::max(outcome.rounds_used, area_outcome.rounds);
    area_paged_fully[area] = area_outcome.ran_all_rounds;

    for (std::size_t k = 0; k < group.size(); ++k) {
      if (found[k]) {
        // A found callee answered a base station: implicit location
        // report, free of uplink-report cost (rides on the response).
        db_.record_report(group_users[k], group_cells[k]);
      } else {
        missing.push_back(group[k].second);
        if (local_of[k] != kUnknownLocal) any_missed_detection = true;
      }
    }
  }

  // Recovery sweeps: blanket-page until every callee answers or the
  // retry policy cuts the call off. The first sweep may skip areas
  // already paged in full — but only when nothing was MISSED inside them
  // (a missed device needs its cell re-paged).
  std::size_t not_fully_paged = 0;
  for (std::size_t area = 0; area < areas_->num_areas(); ++area) {
    if (!area_paged_fully[area]) {
      not_fully_paged += areas_->cells_in(area).size();
    }
  }
  const std::size_t first_sweep_pages =
      any_missed_detection ? grid_->num_cells() : not_fully_paged;
  {
    const support::Span recovery_span(config_.tracer, "recovery");
    run_recovery(users, true_cells, std::move(missing), first_sweep_pages,
                 round_cap, outcome, rng);
  }
  config_.metrics.pages.observe(static_cast<double>(outcome.cells_paged));
  config_.metrics.rounds.observe(static_cast<double>(outcome.rounds_used));
  // Exemplar: when this call's trace was sampled (nonzero span id), pin
  // its trace id on the rounds bucket it landed in — the metric→trace
  // bridge a high-p99 investigation follows. Unsampled calls pass a
  // zero id, which annotate() ignores without taking the exemplar lock.
  config_.metrics.rounds.annotate(static_cast<double>(outcome.rounds_used),
                                  locate_span.id());
  if (outcome.retries > 0) config_.metrics.retries.inc(outcome.retries);
  if (outcome.abandoned) config_.metrics.abandoned.inc();
  if (outcome.deadline_limited) config_.metrics.deadline_limited.inc();
  return outcome;
}

std::vector<LocationService::LocateOutcome> LocationService::locate_many(
    std::span<const LocateRequest> requests, prob::Rng& rng) {
  std::vector<LocateOutcome> outcomes;
  if (requests.empty()) return outcomes;
  // One span roots the whole batch; the per-call locate spans nest under
  // it, so a sampled trace shows the batch boundary. The requests run
  // sequentially against the shared rng, which is what makes the
  // outcomes bit-identical to issuing the same locate() calls one by
  // one — batching amortizes scratch, cache and wire-layer cost, never
  // reorders randomness.
  const support::Span batch_span(config_.tracer, "locate_batch");
  config_.metrics.batch_size.observe(static_cast<double>(requests.size()));
  outcomes.reserve(requests.size());
  for (const LocateRequest& request : requests) {
    outcomes.push_back(
        locate(request.users, request.true_cells, rng, request.context));
  }
  return outcomes;
}

std::string LocationService::save_state() const {
  support::StateWriter writer;
  // Shape guard: everything the payload's interpretation depends on. A
  // restore against a different topology or policy set must reject
  // before touching a single record.
  writer.put_u64(num_users());
  writer.put_u64(grid_->num_cells());
  writer.put_u64(areas_->num_areas());
  writer.put_u8(static_cast<std::uint8_t>(config_.report_policy));
  writer.put_u8(static_cast<std::uint8_t>(config_.paging_policy));
  writer.put_u8(static_cast<std::uint8_t>(config_.profile_kind));
  writer.put_u64(config_.max_paging_rounds);

  // Location database: the reported area re-derives from the cell.
  for (UserId user = 0; user < num_users(); ++user) {
    writer.put_u32(db_.reported_cell(user));
    writer.put_u64(db_.steps_since_report(user));
  }

  // Visit statistics — the learned empirical distribution the paper's
  // planner quality rides on.
  for (const std::vector<double>& row : visit_counts_) {
    for (const double count : row) writer.put_f64(count);
  }

  // Plan cache: per-area shards with every live entry. Entries carry
  // their input signature, so restored entries self-invalidate on lookup
  // when planning inputs drifted since the checkpoint.
  for (const PlanCacheShard& shard : plan_cache_) {
    writer.put_u64(shard.next_slot);
    writer.put_u64(shard.entries.size());
    for (const PlanCacheEntry& entry : shard.entries) {
      writer.put_u64(entry.signature);
      writer.put_f64(entry.expected_paging);
      writer.put_u64(entry.strategy.num_cells());
      const auto& groups = entry.strategy.groups();
      writer.put_u64(groups.size());
      for (const std::vector<CellId>& group : groups) {
        writer.put_u64(group.size());
        for (const CellId cell : group) writer.put_u32(cell);
      }
    }
  }
  return std::move(writer).take();
}

bool LocationService::restore_state(std::string_view payload,
                                    std::uint32_t version) {
  if (version != kStateVersion) return false;
  try {
    support::StateReader reader(payload);

    // Shape guard first: any mismatch is a clean cold start.
    if (reader.get_u64() != num_users()) return false;
    if (reader.get_u64() != grid_->num_cells()) return false;
    if (reader.get_u64() != areas_->num_areas()) return false;
    if (reader.get_u8() != static_cast<std::uint8_t>(config_.report_policy)) {
      return false;
    }
    if (reader.get_u8() != static_cast<std::uint8_t>(config_.paging_policy)) {
      return false;
    }
    if (reader.get_u8() != static_cast<std::uint8_t>(config_.profile_kind)) {
      return false;
    }
    if (reader.get_u64() != config_.max_paging_rounds) return false;

    // Parse everything into temporaries and validate before committing:
    // a payload rejected halfway must not leave the service half-warm.
    const std::size_t users = num_users();
    const std::size_t cells = grid_->num_cells();
    std::vector<std::pair<CellId, std::size_t>> records;
    records.reserve(users);
    for (std::size_t user = 0; user < users; ++user) {
      const CellId cell = reader.get_u32();
      if (cell >= cells) return false;
      const std::uint64_t steps = reader.get_u64();
      records.emplace_back(cell, static_cast<std::size_t>(steps));
    }

    std::vector<std::vector<double>> visits(users);
    for (std::size_t user = 0; user < users; ++user) {
      visits[user].reserve(cells);
      for (std::size_t cell = 0; cell < cells; ++cell) {
        const double count = reader.get_f64();
        if (!std::isfinite(count) || count < 0.0) return false;
        visits[user].push_back(count);
      }
    }

    std::vector<PlanCacheShard> cache(areas_->num_areas());
    for (std::size_t area = 0; area < cache.size(); ++area) {
      PlanCacheShard& shard = cache[area];
      const std::uint64_t next_slot =
          reader.get_count(PlanCacheShard::kCapacity);
      shard.next_slot = static_cast<std::size_t>(next_slot);
      const std::uint64_t entries =
          reader.get_count(PlanCacheShard::kCapacity);
      const std::size_t area_cells = areas_->cells_in(area).size();
      for (std::uint64_t i = 0; i < entries; ++i) {
        PlanCacheEntry entry{0, core::Strategy::blanket(1), -1.0};
        entry.signature = reader.get_u64();
        entry.expected_paging = reader.get_f64();
        if (std::isnan(entry.expected_paging)) return false;
        const std::uint64_t num_cells = reader.get_u64();
        if (num_cells != area_cells) return false;
        const std::uint64_t num_groups = reader.get_count(num_cells);
        std::vector<std::vector<CellId>> groups(num_groups);
        for (std::uint64_t g = 0; g < num_groups; ++g) {
          const std::uint64_t group_size = reader.get_count(num_cells);
          groups[g].reserve(group_size);
          for (std::uint64_t c = 0; c < group_size; ++c) {
            groups[g].push_back(reader.get_u32());
          }
        }
        // from_groups re-checks every strategy invariant (partition,
        // ranges, non-empty groups) — a forged payload that survives the
        // checksum still cannot install a malformed strategy.
        entry.strategy = core::Strategy::from_groups(
            std::move(groups), static_cast<std::size_t>(num_cells));
        shard.entries.push_back(std::move(entry));
      }
    }
    if (!reader.at_end()) return false;

    // Commit.
    for (std::size_t user = 0; user < users; ++user) {
      db_.restore_record(static_cast<UserId>(user), records[user].first,
                         records[user].second);
    }
    visit_counts_ = std::move(visits);
    plan_cache_ = std::move(cache);
    return true;
  } catch (const support::StateFormatError&) {
    return false;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

}  // namespace confcall::cellular
