#include "cellular/service.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "cellular/profile.h"
#include "core/adaptive.h"
#include "core/evaluator.h"
#include "core/greedy.h"

namespace confcall::cellular {

namespace {

/// Validated before LocationDatabase construction (which would otherwise
/// surface out-of-range cells as std::out_of_range from area lookups).
std::vector<CellId> checked_initial_cells(const GridTopology& grid,
                                          std::vector<CellId> cells) {
  if (cells.empty()) {
    throw std::invalid_argument("LocationService: no users");
  }
  for (const CellId cell : cells) {
    if (cell >= grid.num_cells()) {
      throw std::invalid_argument("LocationService: initial cell range");
    }
  }
  return cells;
}

}  // namespace

LocationService::LocationService(const GridTopology& grid,
                                 const LocationAreas& areas,
                                 const MarkovMobility& mobility,
                                 Config config,
                                 std::vector<CellId> initial_cells)
    : grid_(&grid),
      areas_(&areas),
      mobility_(&mobility),
      config_(config),
      db_(checked_initial_cells(grid, initial_cells).size(), areas,
          checked_initial_cells(grid, initial_cells)) {
  if (config_.max_paging_rounds == 0) {
    throw std::invalid_argument("LocationService: zero paging rounds");
  }
  if (config_.timer_period == 0) {
    throw std::invalid_argument("LocationService: zero timer period");
  }
  if (config_.distance_threshold == 0) {
    throw std::invalid_argument("LocationService: zero distance threshold");
  }
  if (config_.detection_probability <= 0.0 ||
      config_.detection_probability > 1.0) {
    throw std::invalid_argument(
        "LocationService: detection_probability must be in (0, 1]");
  }
  if (config_.detection_probability < 1.0 &&
      config_.paging_policy == PagingPolicy::kAdaptive) {
    throw std::invalid_argument(
        "LocationService: the adaptive policy assumes perfect detection");
  }
  visit_counts_.assign(initial_cells.size(),
                       std::vector<double>(grid_->num_cells(), 0.0));
  if (config_.profile_kind == ProfileKind::kStationary) {
    stationary_ = mobility_->stationary_distribution();
  }
}

bool LocationService::observe_move(UserId user, CellId new_cell) {
  if (user >= num_users() || new_cell >= grid_->num_cells()) {
    throw std::invalid_argument("observe_move: out of range");
  }
  visit_counts_[user][new_cell] += 1.0;
  switch (config_.report_policy) {
    case ReportPolicy::kEveryTSteps:
      // tick() runs after the per-step observe batch, so the clock reads
      // the number of completed steps since the last report; reporting at
      // clock == T gives an exact period of T steps.
      if (db_.steps_since_report(user) >= config_.timer_period) {
        db_.record_report(user, new_cell);
        return true;
      }
      return false;
    case ReportPolicy::kDistanceThreshold:
      if (grid_->distance(db_.reported_cell(user), new_cell) >=
          config_.distance_threshold) {
        db_.record_report(user, new_cell);
        return true;
      }
      return false;
    default:
      return db_.observe_move(user, new_cell, config_.report_policy);
  }
}

void LocationService::tick() { db_.tick(); }

prob::ProbabilityVector LocationService::profile_for(
    UserId user, std::size_t area) const {
  const auto& cells = areas_->cells_in(area);
  switch (config_.profile_kind) {
    case ProfileKind::kEmpirical:
      return profile_from_counts(visit_counts_.at(user), cells,
                                 config_.laplace_alpha);
    case ProfileKind::kStationary:
      return restrict_to_area(stationary_, cells);
    case ProfileKind::kLastSeen: {
      const std::size_t steps = std::min(db_.steps_since_report(user),
                                         config_.last_seen_horizon);
      return last_seen_profile(*mobility_, db_.reported_cell(user), steps,
                               cells);
    }
  }
  throw std::logic_error("profile_for: unknown profile kind");
}

bool LocationService::page_answered(std::size_t cohabitants,
                                    prob::Rng& rng) const {
  double q = config_.detection_probability;
  if (q >= 1.0) return true;
  if (config_.collision_losses && cohabitants > 1) {
    q /= static_cast<double>(cohabitants);
  }
  return rng.next_double() < q;
}

LocationService::AreaOutcome LocationService::execute_area_strategy(
    const core::Strategy& strategy, std::span<const UserId> users,
    std::span<const CellId> true_cells,
    const std::vector<std::size_t>& local_of, std::vector<bool>& found,
    LocateOutcome& outcome, prob::Rng& rng) {
  const auto cohabitant_count = [&](CellId cell) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < users.size(); ++i) {
      if (!found[i] && true_cells[i] == cell) ++count;
    }
    return count;
  };

  AreaOutcome area;
  for (std::size_t r = 0; r < strategy.num_rounds(); ++r) {
    area.pages += strategy.group(r).size();
    area.rounds = r + 1;
    for (std::size_t i = 0; i < users.size(); ++i) {
      if (found[i] || local_of[i] == kUnknownLocal) continue;
      if (strategy.round_of(static_cast<core::CellId>(local_of[i])) != r) {
        continue;
      }
      if (page_answered(cohabitant_count(true_cells[i]), rng)) {
        found[i] = true;
      } else {
        ++outcome.missed_detections;
      }
    }
    bool everyone_found = true;
    for (std::size_t i = 0; i < users.size(); ++i) {
      everyone_found &= found[i];
    }
    if (everyone_found) {
      area.ran_all_rounds = r + 1 == strategy.num_rounds();
      return area;
    }
  }
  area.ran_all_rounds = true;
  return area;
}

LocationService::LocateOutcome LocationService::locate(
    std::span<const UserId> users, std::span<const CellId> true_cells,
    prob::Rng& rng) {
  if (users.size() != true_cells.size() || users.empty()) {
    throw std::invalid_argument(
        "locate: need one true cell per user, at least one user");
  }
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (users[i] >= num_users() || true_cells[i] >= grid_->num_cells()) {
      throw std::invalid_argument("locate: out of range");
    }
  }

  LocateOutcome outcome;

  // Group callees by their last-reported location area — each group is
  // one Conference Call instance over that area's cells.
  std::map<std::size_t, std::vector<std::size_t>> by_area;  // -> indices
  for (std::size_t i = 0; i < users.size(); ++i) {
    by_area[db_.reported_area(users[i])].push_back(i);
  }

  std::vector<bool> area_paged_fully(areas_->num_areas(), false);
  std::vector<std::size_t> missing;  // indices into users
  bool any_missed_detection = false;
  for (const auto& [area, indices] : by_area) {
    const auto& cells = areas_->cells_in(area);
    std::vector<UserId> group_users;
    std::vector<CellId> group_cells;
    for (const std::size_t i : indices) {
      group_users.push_back(users[i]);
      group_cells.push_back(true_cells[i]);
    }

    // Local (within-area) cell index per callee; kUnknownLocal = stale.
    std::vector<std::size_t> local_of(indices.size(), kUnknownLocal);
    bool all_present = true;
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const auto it =
          std::find(cells.begin(), cells.end(), group_cells[k]);
      if (it == cells.end()) {
        all_present = false;
      } else {
        local_of[k] = static_cast<std::size_t>(it - cells.begin());
      }
    }

    const std::size_t d =
        std::min(config_.max_paging_rounds, cells.size());
    std::vector<bool> found(indices.size(), false);
    AreaOutcome area_outcome;
    if (config_.paging_policy == PagingPolicy::kAdaptive && all_present) {
      std::vector<core::CellId> local_true(indices.size());
      for (std::size_t k = 0; k < indices.size(); ++k) {
        local_true[k] = static_cast<core::CellId>(local_of[k]);
      }
      std::vector<prob::ProbabilityVector> rows;
      rows.reserve(indices.size());
      for (const UserId user : group_users) {
        rows.push_back(profile_for(user, area));
      }
      const core::AdaptiveOutcome adaptive = core::run_adaptive(
          core::Instance::from_rows(rows), d, local_true);
      area_outcome.pages = adaptive.cells_paged;
      area_outcome.rounds = adaptive.rounds_used;
      area_outcome.ran_all_rounds = adaptive.cells_paged == cells.size();
      found.assign(indices.size(), true);
    } else {
      core::Strategy strategy = core::Strategy::blanket(cells.size());
      if (config_.paging_policy != PagingPolicy::kBlanketArea) {
        std::vector<prob::ProbabilityVector> rows;
        rows.reserve(indices.size());
        for (const UserId user : group_users) {
          rows.push_back(profile_for(user, area));
        }
        strategy =
            core::plan_greedy(core::Instance::from_rows(rows), d).strategy;
      }
      area_outcome = execute_area_strategy(strategy, group_users,
                                           group_cells, local_of, found,
                                           outcome, rng);
    }
    outcome.cells_paged += area_outcome.pages;
    outcome.rounds_used =
        std::max(outcome.rounds_used, area_outcome.rounds);
    area_paged_fully[area] = area_outcome.ran_all_rounds;

    for (std::size_t k = 0; k < indices.size(); ++k) {
      if (found[k]) {
        // A found callee answered a base station: implicit location
        // report, free of uplink-report cost (rides on the response).
        db_.record_report(group_users[k], group_cells[k]);
      } else {
        missing.push_back(indices[k]);
        if (local_of[k] != kUnknownLocal) any_missed_detection = true;
      }
    }
  }

  // Recovery sweeps: blanket-page until every callee answers. The first
  // sweep may skip areas already paged in full — but only when nothing
  // was MISSED inside them (a missed device needs its cell re-paged).
  std::size_t not_fully_paged = 0;
  for (std::size_t area = 0; area < areas_->num_areas(); ++area) {
    if (!area_paged_fully[area]) {
      not_fully_paged += areas_->cells_in(area).size();
    }
  }
  std::size_t sweep = 0;
  while (!missing.empty() && sweep < config_.max_recovery_sweeps) {
    const std::size_t sweep_pages =
        (sweep == 0 && !any_missed_detection) ? not_fully_paged
                                              : grid_->num_cells();
    outcome.cells_paged += sweep_pages;
    outcome.fallback_pages += sweep_pages;
    outcome.rounds_used += 1;
    std::vector<std::size_t> still_missing;
    for (const std::size_t i : missing) {
      std::size_t cohabitants = 0;
      for (const std::size_t other : missing) {
        if (true_cells[other] == true_cells[i]) ++cohabitants;
      }
      if (page_answered(cohabitants, rng)) {
        db_.record_report(users[i], true_cells[i]);
      } else {
        ++outcome.missed_detections;
        still_missing.push_back(i);
      }
    }
    missing = std::move(still_missing);
    ++sweep;
  }
  // Persistent paging always succeeds eventually; model the tail as the
  // device finally answering without further accounted sweeps.
  for (const std::size_t i : missing) {
    db_.record_report(users[i], true_cells[i]);
  }
  return outcome;
}

}  // namespace confcall::cellular
