// Location-probability profile estimators.
//
// The paging algorithms need, per device, a probability vector over the
// cells of a location area. The paper points to [15,16] for how real
// systems obtain such vectors; this module implements the three standard
// estimator families those lines of work describe:
//
//  * empirical   — visit frequencies from an observed trace, with Laplace
//                  smoothing so unvisited cells keep non-zero mass (the
//                  paper's model assumes positive probabilities);
//  * stationary  — the mobility chain's long-run distribution (what a
//                  system knowing only the mobility model would use);
//  * last-seen   — the t-step predictive distribution given the cell where
//                  the device last contacted the network t steps ago.
//
// Each estimator returns the distribution conditioned on (restricted and
// renormalized to) the cells of one location area.
#pragma once

#include <cstddef>
#include <span>

#include "cellular/mobility.h"
#include "cellular/topology.h"
#include "prob/distribution.h"

namespace confcall::cellular {

/// Restricts a full-grid distribution to `area_cells` and renormalizes.
/// Throws std::invalid_argument when the restricted mass is zero.
prob::ProbabilityVector restrict_to_area(std::span<const double> full,
                                         std::span<const CellId> area_cells);

/// Laplace-smoothed visit frequencies of `trace` over `area_cells`:
/// (count_j + alpha) / (total + alpha * |area|). alpha > 0 guarantees the
/// positive-probability assumption of the paper's model. Visits outside
/// the area are ignored. Throws std::invalid_argument when alpha <= 0 and
/// the trace never visits the area.
prob::ProbabilityVector empirical_profile(std::span<const CellId> trace,
                                          std::span<const CellId> area_cells,
                                          double laplace_alpha = 1.0);

/// The mobility chain's stationary distribution, restricted to the area.
prob::ProbabilityVector stationary_profile(const MarkovMobility& mobility,
                                           std::span<const CellId> area_cells);

/// Laplace-smoothed profile from a full-grid visit-count vector (what the
/// simulator maintains incrementally): (counts[j] + alpha) normalized over
/// the area cells.
prob::ProbabilityVector profile_from_counts(std::span<const double> counts,
                                            std::span<const CellId> area_cells,
                                            double laplace_alpha = 1.0);

/// The `steps_since`-step predictive distribution from `last_seen`,
/// restricted to the area. steps_since = 0 returns a point mass (requires
/// last_seen to be inside the area).
prob::ProbabilityVector last_seen_profile(const MarkovMobility& mobility,
                                          CellId last_seen,
                                          std::size_t steps_since,
                                          std::span<const CellId> area_cells);

}  // namespace confcall::cellular
