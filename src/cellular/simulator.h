// End-to-end location-management simulator.
//
// Ties the substrate together into the system of the paper's Section 1.1:
// devices roam a cell grid (mobility.h), conference calls arrive
// (events.h), and a LocationService (service.h) tracks reports and pages
// callees under a delay constraint. Wireless cost = uplink reports +
// downlink pages, reproducing the reporting/paging tradeoff the paper
// frames (experiment E9). A FaultConfig (faults.h) additionally injects
// cell outages, report loss and paging-channel drops, and a RetryPolicy
// bounds the degraded-mode recovery (experiment E12).
#pragma once

#include <cstdint>
#include <vector>

#include "cellular/events.h"
#include "cellular/faults.h"
#include "cellular/service.h"
#include "prob/stats.h"
#include "support/metrics.h"
#include "support/overload.h"
#include "support/slo_controller.h"

namespace confcall::cellular {

/// Overload-protection configuration for a simulated deployment. The
/// simulator runs a virtual clock (a support::ManualClock advanced
/// step_duration_ns per step), so token refill, deadlines and breaker
/// cooldowns are all deterministic: a pinned seed reproduces identical
/// shed/degrade/breaker counters across runs and thread counts.
struct OverloadConfig {
  bool enabled = false;
  /// Token bucket + health machine. Costs are charged per CALLEE, so a
  /// 5-way conference weighs five tokens.
  support::AdmissionOptions admission{};
  /// Call-setup deadline per admitted call, in virtual ns (0 = none).
  /// LocationService turns it into a round budget via round_duration_ns.
  std::uint64_t call_deadline_ns = 0;
  /// Virtual cost of one paging round / duration of one step.
  std::uint64_t round_duration_ns = 1'000'000;    // 1 ms
  std::uint64_t step_duration_ns = 10'000'000;    // 10 ms
  /// Serve locate() through a breaker-guarded ResilientPlanner chain
  /// (typed-exact capped at planner_node_limit -> greedy -> blanket)
  /// instead of the built-in Fig. 1 call, so E14 can watch tiers fail
  /// over and breakers trip under load. The node limit is the
  /// deterministic failure signal: instances that would search past it
  /// are rejected by the exact tier.
  bool resilient_planner = false;
  std::uint64_t planner_node_limit = 20'000'000;
  support::CircuitBreakerOptions breaker{};
  /// Closed-loop SLO control (slo.enabled): a SloController reads the
  /// run's registry on the virtual clock's control-period grid and
  /// adapts the admission token rate, degrade threshold and breaker
  /// cooldowns to hold slo.target_p99_ns. The registry is created for
  /// the run even when SimConfig::collect_metrics is off (the sensor
  /// needs it); SimReport::metrics still follows collect_metrics. All
  /// controller state is driven by the ManualClock, so runs stay
  /// bit-identical across repeats and thread counts.
  support::SloOptions slo{};

  /// Throws std::invalid_argument with a specific message per rejection.
  void validate() const;
};

/// Simulation parameters. Defaults give a moderate system that runs in
/// milliseconds.
struct SimConfig {
  std::size_t grid_rows = 8;
  std::size_t grid_cols = 8;
  bool toroidal = true;
  /// Cell adjacency: 4-neighbour grid, 8-neighbour, or hexagonal (the
  /// usual cellular-planning layout).
  Neighborhood neighborhood = Neighborhood::kVonNeumann;
  std::size_t la_tile_rows = 4;  ///< location areas tile the grid
  std::size_t la_tile_cols = 4;
  std::size_t num_users = 32;
  double stay_probability = 0.6;  ///< mobility laziness
  double call_rate = 0.2;         ///< P[a call arrives] per step
  std::size_t group_min = 2;      ///< conference size range
  std::size_t group_max = 4;
  std::size_t max_paging_rounds = 3;  ///< the delay constraint d
  ReportPolicy report_policy = ReportPolicy::kOnAreaCrossing;
  std::size_t timer_period = 16;       ///< for kEveryTSteps
  std::size_t distance_threshold = 2;  ///< for kDistanceThreshold
  PagingPolicy paging_policy = PagingPolicy::kGreedy;
  ProfileKind profile_kind = ProfileKind::kLastSeen;
  double laplace_alpha = 1.0;    ///< smoothing for empirical profiles
  std::size_t last_seen_horizon = 100;  ///< cap on prediction steps
  std::size_t steps = 2000;       ///< simulated steps with traffic
  std::size_t warmup_steps = 200;  ///< movement-only steps beforehand
  /// When true, warmup steps also draw call arrivals and run them
  /// through the full admission/locate path, but leave every SimReport
  /// counter untouched. This lets closed-loop components (the SLO
  /// controller's AIMD convergence, bucket drain to its operating
  /// point) reach steady state before the measured window opens, so
  /// the report captures steady-state behaviour instead of the
  /// transient. Default off: byte-identical to the historical runs.
  bool warmup_calls = false;
  /// Section 5's imperfect-detection extension: paging a cell finds a
  /// device located there only with this probability (1 = classic model).
  /// Missed devices are recovered by repeated whole-grid sweeps, all
  /// accounted as paging cost. Requires kBlanketArea or kGreedy paging
  /// (the adaptive planner's conditioning assumes perfect detection).
  double detection_probability = 1.0;
  /// Section 5's response-collision refinement: when several SOUGHT
  /// devices share a paged cell, each answers the page successfully with
  /// probability detection_probability / (devices in that cell).
  bool collision_losses = false;
  /// Recovery behaviour: sweep count, backoff, page budget, deadline
  /// (replaces the old max_recovery_sweeps knob; retry.max_retries is
  /// its direct successor).
  RetryPolicy retry;
  /// Structured fault injection (all rates zero = fault-free; the run is
  /// then byte-identical to a build without the fault layer).
  FaultConfig faults;
  /// Bursty (Markov-modulated on/off) arrivals. When enabled, burst
  /// rates replace call_rate. Disabled = the classic Bernoulli stream,
  /// byte-identical to builds without the burst layer.
  BurstConfig burst;
  /// Admission control, deadlines and breaker-guarded planning. Disabled
  /// = no admission layer at all, byte-identical to older builds.
  OverloadConfig overload;
  /// Per-area strategy reuse while planning inputs are unchanged (see
  /// LocationService::Config::enable_plan_cache). Results are identical
  /// either way; only planning cost differs.
  bool enable_plan_cache = true;
  /// Attach a per-run MetricRegistry (locate / planner / admission
  /// series) and return its snapshot in SimReport::metrics. Off by
  /// default: the uninstrumented run is byte-identical to older builds.
  /// With it on, every metric is driven by the deterministic virtual
  /// clock and the seeded call sequence, so snapshots are bit-identical
  /// across runs and (after the batch's fixed-order merge) across
  /// thread counts.
  bool collect_metrics = false;
  double report_cost = 1.0;  ///< uplink cost per location report
  double page_cost = 1.0;    ///< downlink cost per cell paged
  std::uint64_t seed = 1;

  /// Consolidated validation: one specific std::invalid_argument message
  /// per rejected field/combination (zero users, group sizes out of
  /// range, rates outside [0, 1], zero paging rounds, adaptive policy
  /// with imperfect detection or faults, ...). run_simulation calls it
  /// first; exposed so harnesses can check configs up front.
  void validate() const;

  /// The LocationService::Config this simulation drives (also used by
  /// validate() so service-level rules are checked in one place).
  [[nodiscard]] LocationService::Config service_config() const;
};

/// Aggregated results of one simulation run.
struct SimReport {
  std::size_t steps = 0;
  /// Conference-call arrivals. Conservation invariant (checked by E14
  /// and the soak harness): calls_arrived == calls_completed +
  /// calls_abandoned + calls_shed, with calls_served = completed +
  /// abandoned (every admitted call is served one way or the other).
  std::size_t calls_arrived = 0;
  std::size_t calls_served = 0;
  /// Admitted calls where every callee answered within budget.
  std::size_t calls_completed = 0;
  /// Arrivals rejected by admission control (never reached locate()).
  std::size_t calls_shed = 0;
  /// Calls admitted under degraded health (served with the cheap plan).
  std::size_t calls_degraded_admit = 0;
  /// Admitted calls the propagated deadline truncated (planning budget
  /// cut or recovery cut off; see LocateOutcome::deadline_limited).
  std::size_t calls_deadline_limited = 0;
  /// Planner telemetry when OverloadConfig::resilient_planner is on.
  std::size_t breaker_trips = 0;
  std::size_t breaker_skips = 0;
  std::size_t planner_failovers = 0;
  /// Admission health-state changes (flap metric) and burst episodes.
  std::size_t health_transitions = 0;
  std::size_t bursts_entered = 0;
  /// SLO-controller telemetry when OverloadConfig::slo.enabled: control
  /// steps run, breached control periods, and pre-breach (degrading)
  /// periods signalled.
  std::size_t slo_control_steps = 0;
  std::size_t slo_breaches = 0;
  std::size_t slo_pre_breach_signals = 0;
  std::size_t reports_sent = 0;
  std::size_t cells_paged_total = 0;
  /// Pages spent blanket-covering the rest of the grid because a callee
  /// had left its reported area (stale database) or was missed by an
  /// unanswered page (detection_probability < 1).
  std::size_t fallback_pages = 0;
  /// Pages that hit a sought device's cell but went unanswered
  /// (detection_probability < 1 only).
  std::size_t missed_detections = 0;
  /// Uplink reports swallowed by injected faults (counted inside
  /// reports_sent: the device paid for them, the database missed them).
  std::size_t reports_lost = 0;
  /// Pages spent on sought callees' cells while those cells were dark.
  std::size_t outage_pages = 0;
  /// Paging rounds lost whole to injected channel drops.
  std::size_t dropped_rounds = 0;
  /// Recovery sweeps run across all calls.
  std::size_t retries_total = 0;
  /// Idle rounds spent in retry backoff across all calls.
  std::size_t backoff_rounds = 0;
  /// Calls that needed the degraded path (any retry or abandonment).
  std::size_t calls_degraded = 0;
  /// Calls that force-registered at least one callee unfound.
  std::size_t calls_abandoned = 0;
  /// Callees force-registered without answering, across all calls.
  std::size_t forced_registrations = 0;
  /// Calls whose recovery was cut short by page budget / deadline.
  std::size_t budget_exhaustions = 0;
  /// Injection-side fault counters (what the FaultPlan actually did),
  /// for conservation checks against the observation counters above.
  FaultStats faults_injected;
  /// Plan-cache counters (planned searches only; see
  /// LocationService::PlanCacheStats).
  std::size_t plan_cache_hits = 0;
  std::size_t plan_cache_misses = 0;
  prob::RunningStats pages_per_call;
  prob::RunningStats rounds_per_call;
  /// rounds_histogram[r] = admitted calls that used exactly r rounds.
  /// Exact percentiles (admitted-call setup latency in rounds; multiply
  /// by round_duration_ns for time) that merge losslessly across
  /// replications, unlike a RunningStats.
  std::vector<std::uint64_t> rounds_histogram;

  /// Smallest r with at least `p` of the admitted-call mass at or below
  /// it (0 when no calls were admitted). p in [0, 1].
  [[nodiscard]] std::size_t rounds_percentile(double p) const noexcept;

  /// Registry snapshot of the run (empty unless SimConfig::collect_metrics).
  /// merge() folds these too — counters and histogram buckets sum — so a
  /// batch aggregate carries one merged registry view.
  support::RegistrySnapshot metrics;

  [[nodiscard]] double plan_cache_hit_rate() const noexcept {
    const std::size_t total = plan_cache_hits + plan_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(plan_cache_hits) /
                            static_cast<double>(total);
  }

  /// Folds another run's counters and statistics into this report
  /// (replication aggregation). Counter sums are order-free; the
  /// RunningStats merges are floating-point, so callers that need
  /// reproducible aggregates must merge in a fixed order
  /// (run_simulation_batch merges in replication order).
  void merge(const SimReport& other);

  /// report_cost * reports + page_cost * pages, with the weights used.
  [[nodiscard]] double wireless_cost(double report_cost,
                                     double page_cost) const {
    return report_cost * static_cast<double>(reports_sent) +
           page_cost * static_cast<double>(cells_paged_total);
  }
};

/// Runs one simulation to completion. Deterministic given the config
/// (including its seeds). Throws std::invalid_argument on inconsistent
/// configuration (see SimConfig::validate).
SimReport run_simulation(const SimConfig& config);

/// A batch of independent replications of one configuration.
struct SimBatchReport {
  std::size_t replications = 0;
  /// Every counter summed and every RunningStats merged across the
  /// replications, in replication order.
  SimReport aggregate;
  /// Per-replication reports, in replication order.
  std::vector<SimReport> runs;
};

/// Runs `replications` independent copies of `base` across up to
/// `num_threads` threads (0 = all hardware threads). Replication r
/// reseeds both streams by substream index — prob::mix_seed(seed, r) for
/// the simulation and prob::mix_seed(faults.seed, r) for the fault plan —
/// and results are collected and merged in replication order, so the
/// batch output depends only on (config, replications): bit-identical
/// for every thread count. Throws std::invalid_argument on zero
/// replications or an invalid base config.
SimBatchReport run_simulation_batch(const SimConfig& base,
                                    std::size_t replications,
                                    std::size_t num_threads = 0);

}  // namespace confcall::cellular
