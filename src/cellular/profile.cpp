#include "cellular/profile.h"

#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace confcall::cellular {

prob::ProbabilityVector restrict_to_area(std::span<const double> full,
                                         std::span<const CellId> area_cells) {
  if (area_cells.empty()) {
    throw std::invalid_argument("restrict_to_area: empty area");
  }
  std::vector<double> weights;
  weights.reserve(area_cells.size());
  for (const CellId cell : area_cells) {
    if (cell >= full.size()) {
      throw std::invalid_argument("restrict_to_area: cell out of range");
    }
    weights.push_back(full[cell]);
  }
  return prob::normalized(std::move(weights));
}

prob::ProbabilityVector empirical_profile(std::span<const CellId> trace,
                                          std::span<const CellId> area_cells,
                                          double laplace_alpha) {
  if (area_cells.empty()) {
    throw std::invalid_argument("empirical_profile: empty area");
  }
  if (laplace_alpha < 0.0) {
    throw std::invalid_argument("empirical_profile: negative alpha");
  }
  std::unordered_map<CellId, std::size_t> slot_of;
  slot_of.reserve(area_cells.size());
  for (std::size_t k = 0; k < area_cells.size(); ++k) {
    slot_of.emplace(area_cells[k], k);
  }
  std::vector<double> weights(area_cells.size(), laplace_alpha);
  for (const CellId visited : trace) {
    const auto it = slot_of.find(visited);
    if (it != slot_of.end()) weights[it->second] += 1.0;
  }
  return prob::normalized(std::move(weights));
}

prob::ProbabilityVector profile_from_counts(std::span<const double> counts,
                                            std::span<const CellId> area_cells,
                                            double laplace_alpha) {
  if (area_cells.empty()) {
    throw std::invalid_argument("profile_from_counts: empty area");
  }
  if (laplace_alpha < 0.0) {
    throw std::invalid_argument("profile_from_counts: negative alpha");
  }
  std::vector<double> weights;
  weights.reserve(area_cells.size());
  for (const CellId cell : area_cells) {
    if (cell >= counts.size()) {
      throw std::invalid_argument("profile_from_counts: cell out of range");
    }
    weights.push_back(counts[cell] + laplace_alpha);
  }
  return prob::normalized(std::move(weights));
}

prob::ProbabilityVector stationary_profile(
    const MarkovMobility& mobility, std::span<const CellId> area_cells) {
  const std::vector<double> stationary = mobility.stationary_distribution();
  return restrict_to_area(stationary, area_cells);
}

prob::ProbabilityVector last_seen_profile(
    const MarkovMobility& mobility, CellId last_seen, std::size_t steps_since,
    std::span<const CellId> area_cells) {
  const std::size_t c = mobility.grid().num_cells();
  if (last_seen >= c) {
    throw std::invalid_argument("last_seen_profile: cell out of range");
  }
  std::vector<double> dist(c, 0.0);
  dist[last_seen] = 1.0;
  dist = mobility.evolve(std::move(dist), steps_since);
  return restrict_to_area(dist, area_cells);
}

}  // namespace confcall::cellular
