#include "cellular/locate_api.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "support/json.h"

namespace confcall::cellular {

namespace {

[[noreturn]] void reject(const std::string& message) {
  throw std::invalid_argument(message);
}

LocateCallSpec parse_call_object(const support::JsonValue& value,
                                 std::size_t num_users,
                                 std::size_t num_areas) {
  if (!value.is_object()) {
    reject("each call must be a JSON object");
  }
  LocateCallSpec spec;
  for (const auto& [key, member] : value.as_object()) {
    if (key == "area") {
      if (!member.is_number()) {
        reject("\"area\" must be a number");
      }
      const double raw = member.as_number();
      if (raw < 0 || raw != std::floor(raw) ||
          raw >= static_cast<double>(num_areas)) {
        reject("area out of range [0, " + std::to_string(num_areas) + ")");
      }
      spec.area = static_cast<std::size_t>(raw);
      continue;
    }
    if (key != "users") {
      reject("unknown call member '" + key +
             "' (only \"users\" and \"area\" are known)");
    }
    if (!member.is_array()) {
      reject("\"users\" must be an array of user ids");
    }
    std::unordered_set<UserId> seen;
    for (const support::JsonValue& id : member.as_array()) {
      if (!id.is_number()) {
        reject("user ids must be numbers");
      }
      const double raw = id.as_number();
      if (raw < 0 || raw != std::floor(raw) ||
          raw >= static_cast<double>(num_users)) {
        reject("user id out of range [0, " + std::to_string(num_users) +
               ")");
      }
      const auto user = static_cast<UserId>(raw);
      if (!seen.insert(user).second) {
        reject("duplicate user id " + std::to_string(user));
      }
      spec.users.push_back(user);
    }
  }
  return spec;
}

}  // namespace

LocateApiRequest parse_locate_body(std::string_view body,
                                   std::size_t num_users,
                                   std::size_t num_areas) {
  LocateApiRequest request;
  // Historical contract: an empty body serves one synthetic call.
  const bool blank =
      body.find_first_not_of(" \t\r\n") == std::string_view::npos;
  if (blank) {
    request.calls.emplace_back();
    return request;
  }
  support::JsonValue document;
  try {
    document = support::JsonValue::parse(body);
  } catch (const support::JsonError& error) {
    reject(std::string("malformed JSON at byte ") +
           std::to_string(error.offset()) + ": " + error.what());
  }
  if (document.is_array()) {
    request.batch = true;
    for (const support::JsonValue& element : document.as_array()) {
      request.calls.push_back(
          parse_call_object(element, num_users, num_areas));
    }
    return request;
  }
  if (document.is_object()) {
    request.calls.push_back(parse_call_object(document, num_users, num_areas));
    return request;
  }
  reject("request body must be a call object or an array of call objects");
}

void append_outcome_json(std::string& out, bool admitted,
                         std::size_t participants,
                         const LocationService::LocateOutcome* outcome) {
  if (!admitted) {
    out += "{\"admitted\": false, \"participants\": ";
    out += std::to_string(participants);
    out += "}";
    return;
  }
  out += "{\"admitted\": true, \"participants\": ";
  out += std::to_string(participants);
  out += ", \"cells_paged\": ";
  out += std::to_string(outcome->cells_paged);
  out += ", \"rounds_used\": ";
  out += std::to_string(outcome->rounds_used);
  out += ", \"retries\": ";
  out += std::to_string(outcome->retries);
  out += ", \"abandoned\": ";
  out += outcome->abandoned ? "true" : "false";
  out += ", \"degraded\": ";
  out += outcome->degraded ? "true" : "false";
  out += ", \"deadline_limited\": ";
  out += outcome->deadline_limited ? "true" : "false";
  out += "}";
}

}  // namespace confcall::cellular
