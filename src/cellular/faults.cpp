#include "cellular/faults.h"

#include <stdexcept>

namespace confcall::cellular {

namespace {

void check_rate(double rate, const char* what) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    throw std::invalid_argument(std::string("FaultConfig: ") + what +
                                " must be in [0, 1]");
  }
}

}  // namespace

void FaultConfig::validate() const {
  check_rate(cell_outage_rate, "cell_outage_rate");
  check_rate(report_loss_rate, "report_loss_rate");
  check_rate(round_drop_rate, "round_drop_rate");
  if (cell_outage_rate > 0.0 && outage_duration == 0) {
    throw std::invalid_argument(
        "FaultConfig: outage_duration must be >= 1 when outages are "
        "enabled");
  }
}

FaultPlan::FaultPlan(const FaultConfig& config, std::size_t num_cells)
    : config_(config), rng_(config.seed), outage_remaining_(num_cells, 0) {
  config_.validate();
  if (num_cells == 0) {
    throw std::invalid_argument("FaultPlan: zero cells");
  }
}

void FaultPlan::begin_step() {
  if (config_.cell_outage_rate <= 0.0) return;
  for (std::size_t& remaining : outage_remaining_) {
    if (remaining > 0 && --remaining == 0) --cells_out_;
  }
  if (rng_.next_double() < config_.cell_outage_rate) {
    const std::size_t cell = static_cast<std::size_t>(
        rng_.next_below(outage_remaining_.size()));
    if (outage_remaining_[cell] == 0) {
      ++cells_out_;
      ++stats_.outages_started;
    }
    outage_remaining_[cell] = config_.outage_duration;
  }
}

bool FaultPlan::drop_report() {
  if (config_.report_loss_rate <= 0.0) return false;
  if (rng_.next_double() >= config_.report_loss_rate) return false;
  ++stats_.reports_dropped;
  return true;
}

bool FaultPlan::drop_round() {
  if (config_.round_drop_rate <= 0.0) return false;
  if (rng_.next_double() >= config_.round_drop_rate) return false;
  ++stats_.rounds_dropped;
  return true;
}

}  // namespace confcall::cellular
