// Call-arrival workload for the simulator.
//
// Conference calls arrive as a Bernoulli-thinned Poisson process in
// discrete time (at most one call setup per step, with probability
// `rate`); each call draws its participant set uniformly without
// replacement, with a group size uniform in [min, max]. min = max = 1
// reproduces the classical single-callee paging workload the prior work
// ([11,16,17]) optimizes for; larger groups exercise the paper's
// conference-call setting.
#pragma once

#include <cstddef>
#include <vector>

#include "cellular/location_db.h"
#include "prob/rng.h"

namespace confcall::cellular {

/// One conference-call setup request.
struct CallEvent {
  std::vector<UserId> participants;  ///< distinct callees to locate
};

/// Generates the per-step call workload.
class CallGenerator {
 public:
  /// Throws std::invalid_argument unless 0 <= rate <= 1,
  /// 1 <= min <= max <= num_users.
  CallGenerator(double rate_per_step, std::size_t num_users,
                std::size_t group_min, std::size_t group_max);

  /// At most one call per step; empty optional-like: a CallEvent with no
  /// participants means "no call this step".
  [[nodiscard]] CallEvent maybe_call(prob::Rng& rng) const;

 private:
  double rate_;
  std::size_t num_users_;
  std::size_t group_min_;
  std::size_t group_max_;
};

}  // namespace confcall::cellular
