// Call-arrival workload for the simulator.
//
// Conference calls arrive as a Bernoulli-thinned Poisson process in
// discrete time (at most one call setup per step, with probability
// `rate`); each call draws its participant set uniformly without
// replacement, with a group size uniform in [min, max]. min = max = 1
// reproduces the classical single-callee paging workload the prior work
// ([11,16,17]) optimizes for; larger groups exercise the paper's
// conference-call setting.
#pragma once

#include <cstddef>
#include <vector>

#include "cellular/location_db.h"
#include "prob/rng.h"

namespace confcall::cellular {

/// One conference-call setup request.
struct CallEvent {
  std::vector<UserId> participants;  ///< distinct callees to locate
};

/// Generates the per-step call workload.
class CallGenerator {
 public:
  /// Throws std::invalid_argument unless 0 <= rate <= 1,
  /// 1 <= min <= max <= num_users.
  CallGenerator(double rate_per_step, std::size_t num_users,
                std::size_t group_min, std::size_t group_max);

  /// At most one call per step; empty optional-like: a CallEvent with no
  /// participants means "no call this step".
  [[nodiscard]] CallEvent maybe_call(prob::Rng& rng) const;

 private:
  double rate_;
  std::size_t num_users_;
  std::size_t group_min_;
  std::size_t group_max_;
};

/// Markov-modulated on/off arrivals: the burst workload that actually
/// creates overload. A two-state background chain (off = quiet, on =
/// burst) modulates the per-step call probability; the paper's regime of
/// interest — sequential paging under heavy traffic — lives inside the
/// bursts, where demand transiently exceeds the admission controller's
/// sustained token rate.
struct BurstConfig {
  bool enabled = false;
  double base_rate = 0.1;   ///< call probability per step while quiet
  double burst_rate = 1.0;  ///< call probability per step while bursting
  double p_enter = 0.02;    ///< P[quiet -> burst] per step
  double p_exit = 0.10;     ///< P[burst -> quiet] per step

  /// Throws std::invalid_argument when any probability leaves [0, 1].
  void validate() const;
};

/// The modulated generator. One rng draw per step advances the on/off
/// chain, then the state's CallGenerator draws the arrival, so the
/// sequence is deterministic given the seed (and statefully burst-y:
/// mean burst length 1/p_exit steps, duty cycle
/// p_enter / (p_enter + p_exit)).
class BurstyCallGenerator {
 public:
  /// Throws std::invalid_argument on a bad BurstConfig or group range
  /// (see CallGenerator).
  BurstyCallGenerator(const BurstConfig& config, std::size_t num_users,
                      std::size_t group_min, std::size_t group_max);

  /// Advances the modulation chain, then draws at most one call.
  [[nodiscard]] CallEvent maybe_call(prob::Rng& rng);

  [[nodiscard]] bool in_burst() const noexcept { return in_burst_; }
  /// Quiet -> burst transitions so far.
  [[nodiscard]] std::size_t bursts_entered() const noexcept {
    return bursts_entered_;
  }

 private:
  BurstConfig config_;
  CallGenerator quiet_;
  CallGenerator bursting_;
  bool in_burst_ = false;
  std::size_t bursts_entered_ = 0;
};

}  // namespace confcall::cellular
