// Wire format of the POST /locate endpoint, shared between the serving
// daemon (tools/confcall_serve), the serving bench (bench_e16) and the
// tests — so the request grammar and the response shape live in exactly
// one place instead of being re-implemented per caller.
//
// Request body grammar (parse_locate_body):
//
//   ""  / whitespace      one synthetic call (the historical behaviour
//                         of a bare `curl -X POST`, kept so existing
//                         smoke scripts stay valid)
//   {...}                 one call; the optional "users" member names
//                         the participants explicitly, and the optional
//                         "area" member picks the serving fleet area
//                         (default 0):
//                            {"users": [3, 17, 41], "area": 2}
//                         an empty object (or omitted "users") asks the
//                         server to synthesize the call from its
//                         workload model
//   [{...}, {...}, ...]   a batch: each element is a call object as
//                         above. Served through
//                         LocationService::locate_many after a single
//                         admission pass, answered as a JSON array.
//
// Anything else — malformed JSON, wrong value types, out-of-range or
// duplicate user ids, unknown members — throws std::invalid_argument
// with a message fit for the endpoint's 400 response body.
//
// Response rendering (append_outcome_json) emits the field set the
// endpoint has always produced, one object per call:
//
//   {"admitted": false, "participants": N}
//   {"admitted": true, "participants": N, "cells_paged": ...,
//    "rounds_used": ..., "retries": ..., "abandoned": ...,
//    "degraded": ..., "deadline_limited": ...}
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "cellular/service.h"

namespace confcall::cellular {

/// One requested call. Empty `users` = synthesize the participants
/// server-side from the workload's call generator.
struct LocateCallSpec {
  std::vector<UserId> users;
  /// Which fleet area serves the call (the optional "area" member).
  /// Single-service deployments have exactly one area, 0; the fleet
  /// daemon (--shards) routes by it. Bounded by parse_locate_body's
  /// num_areas.
  std::size_t area = 0;
};

/// A parsed POST /locate body.
struct LocateApiRequest {
  /// The body was a JSON array — answer with a JSON array, one element
  /// per call, HTTP 200 even when some calls were shed (per-element
  /// "admitted" carries the verdict). A single object (or an empty
  /// body) keeps the historical single-call contract: 503 on shed.
  bool batch = false;
  std::vector<LocateCallSpec> calls;  ///< may be empty only when batch
};

/// Parses a POST /locate request body; see the grammar above.
/// `num_users` bounds the valid user-id range [0, num_users) and
/// `num_areas` the optional "area" member's range [0, num_areas) — the
/// default 1 keeps the single-service contract, where only area 0 (or
/// an omitted member) is accepted. Throws std::invalid_argument on
/// malformed input.
[[nodiscard]] LocateApiRequest parse_locate_body(std::string_view body,
                                                 std::size_t num_users,
                                                 std::size_t num_areas = 1);

/// Appends one call's JSON response object to `out`. `outcome` may be
/// null only when `admitted` is false.
void append_outcome_json(std::string& out, bool admitted,
                         std::size_t participants,
                         const LocationService::LocateOutcome* outcome);

}  // namespace confcall::cellular
